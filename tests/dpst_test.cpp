//===- dpst_test.cpp - S-DPST structure and query tests -------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// Structure checks on the paper's Fibonacci example (Figure 9), LCA /
// NS-LCA queries (Definitions 3-5), the Theorem-1 parallelism criterion,
// and finish-node insertion (Figure 14).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "dpst/Dpst.h"
#include "race/Detect.h"

using namespace tdr;
using namespace tdr::test;

namespace {

/// Builds the S-DPST of a program (no race detection).
struct BuiltTree {
  ParsedProgram P;
  std::unique_ptr<Dpst> Tree;
  ExecResult Exec;
};

BuiltTree buildTree(const std::string &Src, std::vector<int64_t> Args = {}) {
  BuiltTree B;
  B.P = parseAndCheck(Src);
  EXPECT_TRUE(B.P.ok()) << B.P.errors();
  B.Tree = std::make_unique<Dpst>();
  DpstBuilder Builder(*B.Tree);
  ExecOptions Opts;
  Opts.Args = std::move(Args);
  Opts.Monitor = &Builder;
  B.Exec = runProgram(*B.P.Prog, Opts);
  EXPECT_TRUE(B.Exec.Ok) << B.Exec.Error;
  return B;
}

/// Collects all step leaves in left-to-right order.
void collectSteps(const DpstNode *N, std::vector<const DpstNode *> &Out) {
  if (N->isStep()) {
    Out.push_back(N);
    return;
  }
  for (const DpstNode *C : N->children())
    collectSteps(C, Out);
}

/// Collects all nodes of a kind.
void collectKind(const DpstNode *N, DpstKind K,
                 std::vector<const DpstNode *> &Out) {
  if (N->kind() == K)
    Out.push_back(N);
  for (const DpstNode *C : N->children())
    collectKind(C, K, Out);
}

TEST(Dpst, SequentialProgramIsOneStepUnderMainScope) {
  BuiltTree B = buildTree(R"(
var X: int = 0;
func main() {
  X = 1;
  X = X + 2;
  print(X);
}
)");
  // Root -> init step? (X's initializer runs as a root-level step) and the
  // main call scope containing one merged step.
  const DpstNode *Root = B.Tree->root();
  ASSERT_TRUE(Root->isRoot());
  std::vector<const DpstNode *> Steps;
  collectSteps(Root, Steps);
  ASSERT_EQ(Steps.size(), 2u); // global-init step + main body step
  EXPECT_EQ(Steps[1]->parent()->kind(), DpstKind::Scope);
  EXPECT_EQ(Steps[1]->parent()->scopeKind(), ScopeKind::Call);
}

TEST(Dpst, AsyncAndScopeNodesForFibonacci) {
  // The Figure 8/9 program shape (n = 3): each fib call scope contains a
  // step, two asyncs, and a trailing step (the If scope appears on the
  // base-case path).
  BuiltTree B = buildTree(R"(
func fib(ret: int[], n: int) {
  if (n < 2) {
    ret[0] = n;
    return;
  }
  var x: int[] = new int[1];
  var y: int[] = new int[1];
  async fib(x, n - 1);
  async fib(y, n - 2);
  ret[0] = x[0] + y[0];
}
func main() {
  var result: int[] = new int[1];
  async fib(result, 3);
  print(result[0]);
}
)");
  std::vector<const DpstNode *> Asyncs;
  collectKind(B.Tree->root(), DpstKind::Async, Asyncs);
  // fib(3): asyncs = 1 (main) + 2 (n=3) + 2 (n=2) = 5.
  EXPECT_EQ(Asyncs.size(), 5u);

  std::vector<const DpstNode *> Scopes;
  collectKind(B.Tree->root(), DpstKind::Scope, Scopes);
  // Call scopes: main, fib(3), fib(2), fib(1) x2, fib(0); block scopes for
  // the taken if-branches (n<2 three times).
  unsigned CallScopes = 0, BlockScopes = 0;
  for (const DpstNode *S : Scopes)
    if (S->scopeKind() == ScopeKind::Call)
      ++CallScopes;
    else
      ++BlockScopes;
  EXPECT_EQ(CallScopes, 6u);
  EXPECT_EQ(BlockScopes, 3u);
}

TEST(Dpst, LcaAndNsLcaSkipScopeChains) {
  BuiltTree B = buildTree(R"(
var X: int = 0;
func main() {
  if (true) {
    async { X = 1; }
  }
  print(X);
}
)");
  std::vector<const DpstNode *> Asyncs;
  collectKind(B.Tree->root(), DpstKind::Async, Asyncs);
  ASSERT_EQ(Asyncs.size(), 1u);
  std::vector<const DpstNode *> Steps;
  collectSteps(Asyncs[0], Steps);
  ASSERT_EQ(Steps.size(), 1u);
  const DpstNode *WriteStep = Steps[0];

  // The print step is the last step overall.
  std::vector<const DpstNode *> AllSteps;
  collectSteps(B.Tree->root(), AllSteps);
  const DpstNode *ReadStep = AllSteps.back();

  const DpstNode *L = B.Tree->lca(WriteStep, ReadStep);
  EXPECT_TRUE(L->isScope()); // the main call scope
  const DpstNode *NL = B.Tree->nsLca(WriteStep, ReadStep);
  EXPECT_TRUE(NL->isRoot()); // first non-scope above it

  // Theorem 1: parallel, because the write's non-scope child of the
  // NS-LCA is the async.
  EXPECT_EQ(B.Tree->nonScopeChildToward(NL, WriteStep), Asyncs[0]);
  EXPECT_TRUE(B.Tree->mayHappenInParallel(WriteStep, ReadStep));
}

TEST(Dpst, MayHappenInParallelMatrix) {
  BuiltTree B = buildTree(R"(
var A: int[];
func main() {
  A = new int[8];
  A[0] = 1;          // S0 (with init)
  finish {
    async { A[1] = 1; }  // S1
    async { A[2] = 1; }  // S2
  }
  A[3] = 1;          // S3 (+ finish continuation)
  async { A[4] = 1; }    // S4
  A[5] = 1;          // S5
}
)");
  std::vector<const DpstNode *> Steps;
  collectSteps(B.Tree->root(), Steps);
  // Locate the step writing each cell by weight order; simpler: use the
  // async steps directly.
  std::vector<const DpstNode *> Asyncs;
  collectKind(B.Tree->root(), DpstKind::Async, Asyncs);
  ASSERT_EQ(Asyncs.size(), 3u);
  std::vector<const DpstNode *> S1, S2, S4;
  collectSteps(Asyncs[0], S1);
  collectSteps(Asyncs[1], S2);
  collectSteps(Asyncs[2], S4);

  // Siblings in one finish are parallel.
  EXPECT_TRUE(B.Tree->mayHappenInParallel(S1[0], S2[0]));
  // Steps after the finish are ordered after the finish's asyncs.
  const DpstNode *Last = Steps.back();
  EXPECT_FALSE(B.Tree->mayHappenInParallel(S1[0], Last->parent()->isRoot()
                                                      ? Last
                                                      : Last));
  EXPECT_FALSE(B.Tree->mayHappenInParallel(S2[0], Last));
  // The unfinished async is parallel with the trailing step.
  EXPECT_TRUE(B.Tree->mayHappenInParallel(S4[0], Last));
  // Order query.
  EXPECT_TRUE(B.Tree->isLeftOf(S1[0], S2[0]));
  EXPECT_FALSE(B.Tree->isLeftOf(S2[0], S1[0]));
}

TEST(Dpst, InsertFinishChangesParallelism) {
  // Figure 14: inserting a finish above the two asyncs serializes them
  // against the trailing step.
  BuiltTree B = buildTree(R"(
var X: int = 0;
var Y: int = 0;
func main() {
  async { X = 1; }
  async { Y = 2; }
  print(X + Y);
}
)");
  std::vector<const DpstNode *> Asyncs;
  collectKind(B.Tree->root(), DpstKind::Async, Asyncs);
  ASSERT_EQ(Asyncs.size(), 2u);
  std::vector<const DpstNode *> WX, WY, All;
  collectSteps(Asyncs[0], WX);
  collectSteps(Asyncs[1], WY);
  collectSteps(B.Tree->root(), All);
  const DpstNode *ReadStep = All.back();

  ASSERT_TRUE(B.Tree->mayHappenInParallel(WX[0], ReadStep));
  ASSERT_TRUE(B.Tree->mayHappenInParallel(WY[0], ReadStep));

  // Insert a finish adopting both asyncs under their common parent.
  DpstNode *Parent = const_cast<DpstNode *>(Asyncs[0]->parent());
  ASSERT_EQ(Parent, Asyncs[1]->parent());
  size_t B0 = Asyncs[0]->indexInParent();
  size_t E0 = Asyncs[1]->indexInParent();
  DpstNode *F = B.Tree->insertFinish(Parent, B0, E0, nullptr);
  ASSERT_TRUE(F->isFinish());
  EXPECT_EQ(F->children().size(), 2u);
  EXPECT_EQ(Asyncs[0]->parent(), F);
  EXPECT_EQ(Asyncs[0]->depth(), F->depth() + 1);

  // Now the writes are ordered before the read, but still mutually
  // parallel.
  EXPECT_FALSE(B.Tree->mayHappenInParallel(WX[0], ReadStep));
  EXPECT_FALSE(B.Tree->mayHappenInParallel(WY[0], ReadStep));
  EXPECT_TRUE(B.Tree->mayHappenInParallel(WX[0], WY[0]));
}

TEST(Dpst, StepWeightsAccumulateWork) {
  BuiltTree B = buildTree(R"(
func main() {
  var s: int = 0;
  for (var i: int = 0; i < 10; i = i + 1) { s = s + i; }
  print(s);
}
)");
  EXPECT_GT(B.Tree->subtreeWork(B.Tree->root()), 50u);
  EXPECT_EQ(B.Tree->subtreeWork(B.Tree->root()), B.Exec.TotalWork);
}

TEST(Dpst, CplOfSequentialEqualsWork) {
  BuiltTree B = buildTree(R"(
func main() {
  var s: int = 0;
  for (var i: int = 0; i < 20; i = i + 1) { s = s + i; }
  print(s);
}
)");
  EXPECT_EQ(B.Tree->subtreeCpl(B.Tree->root()),
            B.Tree->subtreeWork(B.Tree->root()));
}

TEST(Dpst, CplOfParallelIsLessThanWork) {
  BuiltTree B = buildTree(R"(
var A: int[];
func work(i: int) {
  var s: int = 0;
  for (var k: int = 0; k < 200; k = k + 1) { s = s + k; }
  A[i] = s;
}
func main() {
  A = new int[4];
  finish {
    async work(0);
    async work(1);
    async work(2);
    async work(3);
  }
  print(A[0]);
}
)");
  uint64_t Work = B.Tree->subtreeWork(B.Tree->root());
  uint64_t Cpl = B.Tree->subtreeCpl(B.Tree->root());
  EXPECT_LT(Cpl * 2, Work); // at least 2x parallelism from 4 equal tasks
}

TEST(Dpst, OwnersPointIntoTheirContainers) {
  BuiltTree B = buildTree(R"(
var X: int = 0;
func main() {
  X = 1;
  async { X = 2; }
  X = 3;
}
)");
  // The main call scope's children: step(X=1), async, step(X=3); the
  // steps' owners must be statements of main's body block.
  std::vector<const DpstNode *> Scopes;
  collectKind(B.Tree->root(), DpstKind::Scope, Scopes);
  const DpstNode *MainScope = nullptr;
  for (const DpstNode *S : Scopes)
    if (S->scopeKind() == ScopeKind::Call)
      MainScope = S;
  ASSERT_NE(MainScope, nullptr);
  ASSERT_EQ(MainScope->children().size(), 3u);
  const BlockStmt *Body = MainScope->container();
  ASSERT_NE(Body, nullptr);
  for (const DpstNode *C : MainScope->children()) {
    ASSERT_NE(C->owner(), nullptr);
    bool Found = false;
    for (const Stmt *S : Body->stmts())
      if (S == C->owner())
        Found = true;
    EXPECT_TRUE(Found);
  }
}

TEST(Dpst, DotDumpContainsAllNodes) {
  BuiltTree B = buildTree("func main() { print(1); }");
  std::string Dot = B.Tree->dumpDot();
  EXPECT_NE(Dot.find("digraph"), std::string::npos);
  EXPECT_NE(Dot.find("Root:0"), std::string::npos);
}

TEST(Dpst, DeepChainQueriesStayCorrect) {
  // Regression for the walk-once childToward / nonScopeChildToward /
  // mayHappenInParallel rewrite: a path of thousands of scope nodes
  // between the queried ancestor and the step leaves. The old
  // hop-from-the-top formulation was quadratic in this depth; answers must
  // be identical now that each query walks the chain once. Built from raw
  // monitor events (null statements) — no program needed.
  const int Depth = 4000;
  Dpst Tree;
  DpstBuilder B(Tree);

  // finish { scopes^Depth { async { SA } } } ... SB
  B.onFinishEnter(nullptr, nullptr);
  for (int I = 0; I != Depth; ++I)
    B.onScopeEnter(ScopeKind::Block, nullptr, nullptr, nullptr);
  B.onAsyncEnter(nullptr, nullptr);
  const DpstNode *SA = B.currentStep();
  B.onAsyncExit(nullptr);
  for (int I = 0; I != Depth; ++I)
    B.onScopeExit();
  B.onFinishExit(nullptr);
  const DpstNode *SB = B.currentStep();

  ASSERT_NE(SA, nullptr);
  ASSERT_NE(SB, nullptr);
  ASSERT_GE(SA->depth(), static_cast<uint32_t>(Depth));

  const DpstNode *Root = Tree.root();
  const DpstNode *Finish = Tree.childToward(Root, SA);
  ASSERT_NE(Finish, nullptr);
  EXPECT_EQ(Finish->kind(), DpstKind::Finish);
  // childToward from the deep chain's top returns its first scope...
  const DpstNode *TopScope = Tree.childToward(Finish, SA);
  ASSERT_NE(TopScope, nullptr);
  EXPECT_EQ(TopScope->kind(), DpstKind::Scope);
  // ...while the non-scope child skips the whole chain down to the async.
  const DpstNode *Ns = Tree.nonScopeChildToward(Finish, SA);
  ASSERT_NE(Ns, nullptr);
  EXPECT_EQ(Ns->kind(), DpstKind::Async);

  EXPECT_EQ(Tree.lca(SA, SB), Root);
  // The LCA (root) is itself non-scope, so it is its own NS-LCA.
  EXPECT_EQ(Tree.nsLca(SA, SB), Root);
  // SA runs in an async joined by the finish; SB is the continuation after
  // it, so they are ordered.
  EXPECT_FALSE(Tree.mayHappenInParallel(SA, SB));

  // Same deep chain without the joining finish: async { scopes^Depth
  // { SC } } ... SD — now the deep step and the continuation step are
  // parallel and the NS-LCA's left non-scope child is the async itself.
  B.onAsyncEnter(nullptr, nullptr);
  for (int I = 0; I != Depth; ++I)
    B.onScopeEnter(ScopeKind::Block, nullptr, nullptr, nullptr);
  const DpstNode *SC = B.currentStep();
  for (int I = 0; I != Depth; ++I)
    B.onScopeExit();
  B.onAsyncExit(nullptr);
  const DpstNode *SD = B.currentStep();

  const DpstNode *DeepAsync = Tree.childToward(Root, SC);
  ASSERT_NE(DeepAsync, nullptr);
  EXPECT_EQ(DeepAsync->kind(), DpstKind::Async);
  EXPECT_EQ(Tree.nonScopeChildToward(DeepAsync, SC), SC);
  EXPECT_TRUE(Tree.mayHappenInParallel(SC, SD));
}

} // namespace
