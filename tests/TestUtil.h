//===- TestUtil.h - Shared test helpers --------------------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef TDR_TESTS_TESTUTIL_H
#define TDR_TESTS_TESTUTIL_H

#include "ast/AstContext.h"
#include "frontend/Parser.h"
#include "sema/Sema.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace tdr {
namespace test {

/// A parsed-and-checked program plus everything that owns it.
struct ParsedProgram {
  std::unique_ptr<SourceManager> SM;
  std::unique_ptr<DiagnosticsEngine> Diags;
  std::unique_ptr<AstContext> Ctx;
  Program *Prog = nullptr;

  bool ok() const { return Prog && !Diags->hasErrors(); }
  std::string errors() const { return Diags->render(*SM); }
};

/// Parses \p Source; does not run sema.
inline ParsedProgram parseOnly(const std::string &Source) {
  ParsedProgram R;
  R.SM = std::make_unique<SourceManager>("test.hj", Source);
  R.Diags = std::make_unique<DiagnosticsEngine>();
  R.Ctx = std::make_unique<AstContext>();
  Parser P(R.SM->buffer(), *R.Ctx, *R.Diags);
  R.Prog = P.parseProgram();
  return R;
}

/// Parses and type-checks \p Source; use ASSERT_TRUE(R.ok()) << R.errors().
inline ParsedProgram parseAndCheck(const std::string &Source) {
  ParsedProgram R = parseOnly(Source);
  if (!R.Diags->hasErrors())
    runSema(*R.Prog, *R.Ctx, *R.Diags);
  return R;
}

} // namespace test
} // namespace tdr

#endif // TDR_TESTS_TESTUTIL_H
