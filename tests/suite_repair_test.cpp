//===- suite_repair_test.cpp - §7.1 experiment on all 12 benchmarks -------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// The paper's central evaluation (§7.1): remove all finish statements from
// each benchmark, run the repair tool on the buggy program with the repair
// input, and check that one tool run yields a program that (a) is race
// free for that input, (b) has the serial elision's semantics, and (c)
// retains parallelism comparable to the expert-written original.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ast/Transforms.h"
#include "suite/Experiment.h"

using namespace tdr;

namespace {

class SuiteRepairTest : public ::testing::TestWithParam<const char *> {};

TEST_P(SuiteRepairTest, OriginalIsRaceFree) {
  const BenchmarkSpec *Spec = findBenchmark(GetParam());
  ASSERT_NE(Spec, nullptr);
  LoadedBenchmark B = loadBenchmark(Spec->Source);
  ExecOptions Exec;
  Exec.Args = Spec->RepairArgs;
  Detection D = detectRaces(*B.Prog, EspBagsDetector::Mode::MRW, Exec);
  ASSERT_TRUE(D.ok()) << D.Exec.Error;
  EXPECT_TRUE(D.Report.Pairs.empty())
      << Spec->Name << ": expert version must be race free, found "
      << D.Report.Pairs.size() << " racing pairs, first at "
      << D.Report.Pairs.front().Loc.str();
}

TEST_P(SuiteRepairTest, StrippedHasRaces) {
  const BenchmarkSpec *Spec = findBenchmark(GetParam());
  ASSERT_NE(Spec, nullptr);
  LoadedBenchmark B = loadBenchmark(Spec->Source);
  unsigned Removed = stripFinishes(*B.Prog);
  EXPECT_GT(Removed, 0u) << Spec->Name << " has no finishes to strip";
  ExecOptions Exec;
  Exec.Args = Spec->RepairArgs;
  Detection D = detectRaces(*B.Prog, EspBagsDetector::Mode::MRW, Exec);
  ASSERT_TRUE(D.ok()) << D.Exec.Error;
  EXPECT_GT(D.Report.Pairs.size(), 0u)
      << Spec->Name << ": stripping finishes must introduce races";
}

TEST_P(SuiteRepairTest, RepairRestoresCorrectnessAndParallelism) {
  const BenchmarkSpec *Spec = findBenchmark(GetParam());
  ASSERT_NE(Spec, nullptr);
  RepairExperiment R =
      runRepairExperiment(*Spec, EspBagsDetector::Mode::MRW);
  ASSERT_TRUE(R.Ok) << Spec->Name << ": " << R.Error << "\n"
                    << R.RepairedSource;
  EXPECT_TRUE(R.RaceFreeAfter);
  EXPECT_TRUE(R.OutputMatchesElision);
  EXPECT_GT(R.Finishes, 0u);

  // Parallelism of the repair is comparable to the expert original: the
  // repaired critical path is within 25% of the original's (paper §7.1:
  // "comparable parallelism to that created by the experts").
  EXPECT_LE(R.Repaired.Tinf,
            R.Original.Tinf + R.Original.Tinf / 4)
      << Spec->Name << ": original Tinf=" << R.Original.Tinf
      << " repaired Tinf=" << R.Repaired.Tinf << "\n"
      << R.RepairedSource;
  // And the work is essentially unchanged (finishes add no work).
  EXPECT_NEAR(static_cast<double>(R.Repaired.T1),
              static_cast<double>(R.Original.T1),
              static_cast<double>(R.Original.T1) * 0.02);
}

TEST_P(SuiteRepairTest, SrwRepairConvergesWithinTwoIterations) {
  const BenchmarkSpec *Spec = findBenchmark(GetParam());
  ASSERT_NE(Spec, nullptr);
  RepairExperiment R =
      runRepairExperiment(*Spec, EspBagsDetector::Mode::SRW);
  ASSERT_TRUE(R.Ok) << Spec->Name << ": " << R.Error;
  // Paper §7.3: "only two SRW iterations were needed in each case (one for
  // repair, and one to confirm)". Allow three for safety on our suite.
  EXPECT_LE(R.Iterations, 3u) << Spec->Name;
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, SuiteRepairTest,
    ::testing::Values("Fibonacci", "Quicksort", "Mergesort", "Spanning Tree",
                      "Nqueens", "Series", "SOR", "Crypt", "Sparse", "LUFact",
                      "FannKuch", "Mandelbrot"),
    [](const ::testing::TestParamInfo<const char *> &Info) {
      std::string Name = Info.param;
      Name.erase(std::remove(Name.begin(), Name.end(), ' '), Name.end());
      return Name;
    });

} // namespace
