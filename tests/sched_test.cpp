//===- sched_test.cpp - Computation DAG and schedule simulation tests -----===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "RandomProgram.h"
#include "TestUtil.h"

#include "dpst/Dpst.h"
#include "interp/Interpreter.h"
#include "sched/Schedule.h"

using namespace tdr;
using namespace tdr::test;

namespace {

struct BuiltTree {
  ParsedProgram P;
  std::unique_ptr<Dpst> Tree;
};

BuiltTree buildTree(const std::string &Src, std::vector<int64_t> Args = {}) {
  BuiltTree B;
  B.P = parseAndCheck(Src);
  EXPECT_TRUE(B.P.ok()) << B.P.errors();
  B.Tree = std::make_unique<Dpst>();
  DpstBuilder Builder(*B.Tree);
  ExecOptions Opts;
  Opts.Args = std::move(Args);
  Opts.Monitor = &Builder;
  ExecResult R = runProgram(*B.P.Prog, Opts);
  EXPECT_TRUE(R.Ok) << R.Error;
  return B;
}

TEST(Sched, HandBuiltDiamondDag) {
  // n0 -> n1, n0 -> n2, n1 -> n3, n2 -> n3; weights 1, 10, 20, 1.
  CompGraph G;
  G.Nodes.resize(4);
  G.Nodes[0].Weight = 1;
  G.Nodes[1].Weight = 10;
  G.Nodes[2].Weight = 20;
  G.Nodes[3].Weight = 1;
  auto AddEdge = [&](uint32_t F, uint32_t T) {
    G.Nodes[F].Succs.push_back(T);
    ++G.Nodes[T].NumPreds;
  };
  AddEdge(0, 1);
  AddEdge(0, 2);
  AddEdge(1, 3);
  AddEdge(2, 3);
  EXPECT_EQ(G.totalWork(), 32u);
  EXPECT_EQ(criticalPathLength(G), 22u);
  EXPECT_EQ(greedySchedule(G, 1), 32u);
  EXPECT_EQ(greedySchedule(G, 2), 22u);
  EXPECT_EQ(greedySchedule(G, 16), 22u);
}

TEST(Sched, GreedyRespectsDependences) {
  // Chain: 3 nodes, any processor count gives the serial time.
  CompGraph G;
  G.Nodes.resize(3);
  for (int I = 0; I != 3; ++I)
    G.Nodes[static_cast<size_t>(I)].Weight = 5;
  G.Nodes[0].Succs.push_back(1);
  G.Nodes[1].Succs.push_back(2);
  G.Nodes[1].NumPreds = 1;
  G.Nodes[2].NumPreds = 1;
  EXPECT_EQ(greedySchedule(G, 4), 15u);
}

TEST(Sched, EmptyGraph) {
  CompGraph G;
  EXPECT_EQ(criticalPathLength(G), 0u);
  EXPECT_EQ(greedySchedule(G, 4), 0u);
}

TEST(Sched, DpstGraphMatchesStructure) {
  BuiltTree B = buildTree(R"(
var A: int[];
func busy(i: int, n: int) {
  var s: int = 0;
  for (var k: int = 0; k < n; k = k + 1) { s = s + k; }
  A[i] = s;
}
func main() {
  A = new int[3];
  finish {
    async busy(0, 100);
    async busy(1, 100);
    async busy(2, 100);
  }
  print(A[0] + A[1] + A[2]);
}
)");
  CompGraph G = buildCompGraph(*B.Tree);
  ParallelismStats S = analyzeDpst(*B.Tree, 3);
  EXPECT_EQ(S.T1, B.Tree->subtreeWork(B.Tree->root()));
  EXPECT_EQ(S.Tinf, B.Tree->subtreeCpl(B.Tree->root()));
  EXPECT_GT(S.parallelism(), 1.8);
  EXPECT_GE(S.TP, S.Tinf);
  EXPECT_LE(S.TP, S.T1);
}

//===----------------------------------------------------------------------===//
// Properties on random programs
//===----------------------------------------------------------------------===//

class SchedProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SchedProperty, DagCplEqualsRecursiveDpstCpl) {
  // Two independent CPL computations — the recursive S-DPST evaluation and
  // the longest path of the constructed DAG — must agree exactly.
  Rng SeedGen(GetParam());
  for (int Trial = 0; Trial != 20; ++Trial) {
    RandomProgramGen Gen(SeedGen.next());
    BuiltTree B = buildTree(Gen.generate());
    CompGraph G = buildCompGraph(*B.Tree);
    EXPECT_EQ(criticalPathLength(G), B.Tree->subtreeCpl(B.Tree->root()))
        << "trial " << Trial;
    EXPECT_EQ(G.totalWork(), B.Tree->subtreeWork(B.Tree->root()));
  }
}

TEST_P(SchedProperty, GreedyObeysClassicBounds) {
  // max(T1/P, Tinf) <= TP <= T1/P + Tinf (greedy scheduling / Brent).
  Rng SeedGen(GetParam() * 131 + 17);
  for (int Trial = 0; Trial != 20; ++Trial) {
    RandomProgramGen Gen(SeedGen.next());
    BuiltTree B = buildTree(Gen.generate());
    CompGraph G = buildCompGraph(*B.Tree);
    uint64_t T1 = G.totalWork();
    uint64_t Tinf = criticalPathLength(G);
    for (unsigned P : {1u, 2u, 4u, 12u}) {
      uint64_t TP = greedySchedule(G, P);
      EXPECT_GE(TP, Tinf);
      EXPECT_GE(TP, (T1 + P - 1) / P);
      EXPECT_LE(TP, T1 / P + Tinf);
      if (P == 1) {
        EXPECT_EQ(TP, T1);
      }
    }
    // More processors never hurt a greedy schedule of the same graph.
    EXPECT_GE(greedySchedule(G, 2), greedySchedule(G, 4));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedProperty,
                         ::testing::Values(7u, 77u, 777u));

} // namespace
