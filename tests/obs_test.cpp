//===- obs_test.cpp - Tracer, metrics registry, and pipeline hooks --------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// The observability layer: span recording and nesting, Chrome trace / JSONL
// rendering, the metrics registry, end-to-end counter increments from a
// repairSource run, and the near-zero disabled path.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "repair/RepairDriver.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

using namespace tdr;

namespace {

/// The per-detector counter family tracks the active backend: the suite
/// also runs under TDR_BACKEND=vc (see CI), where espbags.* stays flat and
/// vc.* moves instead.
std::string detectorCounter(const char *Suffix) {
  return std::string(detectBackendName(defaultDetectBackend())) + "." + Suffix;
}

/// Minimal recursive-descent JSON validity checker (values, objects,
/// arrays, strings with escapes, numbers, true/false/null). Enough to
/// assert the emitters produce well-formed JSON without a dependency.
class JsonChecker {
public:
  explicit JsonChecker(const std::string &S) : S(S) {}

  bool valid() {
    skipWs();
    return value() && (skipWs(), Pos == S.size());
  }

private:
  bool value() {
    if (Pos >= S.size())
      return false;
    switch (S[Pos]) {
    case '{':
      return object();
    case '[':
      return array();
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }

  bool object() {
    ++Pos; // '{'
    skipWs();
    if (peek() == '}')
      return ++Pos, true;
    while (true) {
      skipWs();
      if (!string())
        return false;
      skipWs();
      if (peek() != ':')
        return false;
      ++Pos;
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == '}')
        return ++Pos, true;
      return false;
    }
  }

  bool array() {
    ++Pos; // '['
    skipWs();
    if (peek() == ']')
      return ++Pos, true;
    while (true) {
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == ']')
        return ++Pos, true;
      return false;
    }
  }

  bool string() {
    if (peek() != '"')
      return false;
    ++Pos;
    while (Pos < S.size() && S[Pos] != '"') {
      if (S[Pos] == '\\') {
        ++Pos;
        if (Pos >= S.size())
          return false;
      }
      ++Pos;
    }
    if (Pos >= S.size())
      return false;
    ++Pos;
    return true;
  }

  bool number() {
    size_t Start = Pos;
    if (peek() == '-')
      ++Pos;
    while (Pos < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[Pos])) ||
            S[Pos] == '.' || S[Pos] == 'e' || S[Pos] == 'E' ||
            S[Pos] == '+' || S[Pos] == '-'))
      ++Pos;
    return Pos > Start;
  }

  bool literal(const char *L) {
    size_t Len = std::strlen(L);
    if (S.compare(Pos, Len, L) != 0)
      return false;
    Pos += Len;
    return true;
  }

  void skipWs() {
    while (Pos < S.size() &&
           std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }

  char peek() const { return Pos < S.size() ? S[Pos] : '\0'; }

  const std::string &S;
  size_t Pos = 0;
};

/// A two-async racy accumulator; repairSource inserts at least one finish.
const char *RacySource = R"(
func main() {
  var a: int[] = new int[1];
  async a[0] = a[0] + 1;
  async a[0] = a[0] + 2;
  print(a[0]);
}
)";

/// RAII guard: enables tracing for one test and restores the disabled
/// state (and an empty buffer) afterwards so tests stay independent.
struct TracingOn {
  TracingOn() {
    obs::Tracer::global().clear();
    obs::Tracer::global().enable();
  }
  ~TracingOn() {
    obs::Tracer::global().disable();
    obs::Tracer::global().clear();
  }
};

TEST(Timer, NowNsMonotonic) {
  uint64_t A = Timer::nowNs();
  uint64_t B = Timer::nowNs();
  EXPECT_LE(A, B);
  Timer T;
  EXPECT_GE(T.elapsedMs(), 0.0);
}

TEST(Tracer, SpanNestingAndOrdering) {
  TracingOn Guard;
  {
    obs::ScopedSpan Outer("outer", "test");
    {
      obs::ScopedSpan Inner("inner", "test");
    }
    {
      obs::ScopedSpan Inner2("inner2", "test");
    }
  }
  std::vector<obs::TraceEvent> Events = obs::Tracer::global().snapshot();
  ASSERT_EQ(Events.size(), 3u);

  // Spans complete innermost-first.
  EXPECT_EQ(Events[0].Name, "inner");
  EXPECT_EQ(Events[1].Name, "inner2");
  EXPECT_EQ(Events[2].Name, "outer");

  const obs::TraceEvent &Inner = Events[0];
  const obs::TraceEvent &Inner2 = Events[1];
  const obs::TraceEvent &Outer = Events[2];
  // Nesting: both inner spans lie within the outer span's interval.
  EXPECT_GE(Inner.TsNs, Outer.TsNs);
  EXPECT_LE(Inner.TsNs + Inner.DurNs, Outer.TsNs + Outer.DurNs);
  EXPECT_GE(Inner2.TsNs, Outer.TsNs);
  EXPECT_LE(Inner2.TsNs + Inner2.DurNs, Outer.TsNs + Outer.DurNs);
  // Ordering: inner precedes inner2.
  EXPECT_LE(Inner.TsNs + Inner.DurNs, Inner2.TsNs);
  // All on the same thread.
  EXPECT_EQ(Inner.Tid, Outer.Tid);
  EXPECT_EQ(Inner2.Tid, Outer.Tid);
}

TEST(Tracer, DisabledSpansRecordNothing) {
  obs::Tracer::global().disable();
  obs::Tracer::global().clear();
  size_t Before = obs::Tracer::global().numEvents();
  {
    obs::ScopedSpan Span("ignored", "test");
    obs::Tracer::global().recordInstant("also-ignored");
  }
  EXPECT_EQ(obs::Tracer::global().numEvents(), Before);
  EXPECT_EQ(Before, 0u);
}

TEST(Tracer, ChromeTraceIsValidJsonWithRequiredFields) {
  TracingOn Guard;
  {
    obs::ScopedSpan Span("phase \"quoted\"\n", "test");
  }
  obs::Tracer::global().recordInstant("marker");
  std::string Json = obs::Tracer::global().renderChromeJson();
  EXPECT_TRUE(JsonChecker(Json).valid()) << Json;
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(Json.find("\\\"quoted\\\""), std::string::npos);

  // Every JSONL line is itself valid JSON.
  std::string Jsonl = obs::Tracer::global().renderJsonl();
  std::istringstream Lines(Jsonl);
  std::string Line;
  size_t NumLines = 0;
  while (std::getline(Lines, Line)) {
    EXPECT_TRUE(JsonChecker(Line).valid()) << Line;
    ++NumLines;
  }
  EXPECT_EQ(NumLines, 2u);
}

TEST(Tracer, WriteToDispatchesOnExtension) {
  TracingOn Guard;
  {
    obs::ScopedSpan Span("io", "test");
  }
  std::string Chrome = testing::TempDir() + "obs_test_trace.json";
  std::string Jsonl = testing::TempDir() + "obs_test_trace.jsonl";
  ASSERT_TRUE(obs::Tracer::global().writeTo(Chrome));
  ASSERT_TRUE(obs::Tracer::global().writeTo(Jsonl));

  auto Slurp = [](const std::string &Path) {
    std::ifstream In(Path);
    std::stringstream SS;
    SS << In.rdbuf();
    return SS.str();
  };
  std::string ChromeText = Slurp(Chrome);
  std::string JsonlText = Slurp(Jsonl);
  EXPECT_TRUE(JsonChecker(ChromeText).valid());
  EXPECT_NE(ChromeText.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(JsonlText.find("\"traceEvents\""), std::string::npos);
  std::remove(Chrome.c_str());
  std::remove(Jsonl.c_str());
}

TEST(Metrics, CountersGaugesHistograms) {
  obs::MetricsRegistry R;
  obs::Counter &C = R.counter("test.counter");
  C.inc();
  C.inc(4);
  EXPECT_EQ(C.value(), 5u);
  EXPECT_EQ(&R.counter("test.counter"), &C);
  EXPECT_EQ(R.counterValue("test.counter"), 5u);
  EXPECT_EQ(R.counterValue("test.missing"), 0u);

  obs::Gauge &G = R.gauge("test.gauge");
  G.set(-7);
  EXPECT_EQ(G.value(), -7);
  EXPECT_EQ(R.gaugeValue("test.gauge"), -7);

  obs::Histogram &H = R.histogram("test.hist");
  H.observe(2.0);
  H.observe(4.0);
  obs::Histogram::Snapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 2u);
  EXPECT_DOUBLE_EQ(S.Sum, 6.0);
  EXPECT_DOUBLE_EQ(S.Min, 2.0);
  EXPECT_DOUBLE_EQ(S.Max, 4.0);
  EXPECT_DOUBLE_EQ(S.mean(), 3.0);

  EXPECT_EQ(R.size(), 3u);
  std::string Json = R.dumpJson();
  EXPECT_TRUE(JsonChecker(Json).valid()) << Json;
  EXPECT_NE(Json.find("\"test.counter\": 5"), std::string::npos);
  EXPECT_NE(Json.find("\"test.gauge\": -7"), std::string::npos);
  EXPECT_NE(Json.find("\"count\":2"), std::string::npos);

  R.reset();
  EXPECT_EQ(C.value(), 0u);
  EXPECT_EQ(G.value(), 0);
  EXPECT_EQ(H.snapshot().Count, 0u);
  EXPECT_EQ(R.size(), 3u); // registrations survive reset
}

TEST(Metrics, ScopedMetricsRedirectsAndNests) {
  EXPECT_EQ(&obs::MetricsRegistry::current(), &obs::MetricsRegistry::global());

  obs::MetricsRegistry Outer, Inner;
  {
    obs::ScopedMetrics OuterScope(Outer);
    EXPECT_EQ(&obs::MetricsRegistry::current(), &Outer);
    obs::counter("scoped.hits").inc();
    {
      obs::ScopedMetrics InnerScope(Inner);
      EXPECT_EQ(&obs::MetricsRegistry::current(), &Inner);
      obs::counter("scoped.hits").inc(10);
    }
    // Nesting restores the previous scope, not the global.
    EXPECT_EQ(&obs::MetricsRegistry::current(), &Outer);
    obs::counter("scoped.hits").inc();
  }
  EXPECT_EQ(&obs::MetricsRegistry::current(), &obs::MetricsRegistry::global());

  EXPECT_EQ(Outer.counterValue("scoped.hits"), 2u);
  EXPECT_EQ(Inner.counterValue("scoped.hits"), 10u);
  EXPECT_EQ(obs::MetricsRegistry::global().counterValue("scoped.hits"), 0u);
}

TEST(Metrics, ScopedMetricsIsPerThread) {
  obs::MetricsRegistry Mine;
  obs::ScopedMetrics Scope(Mine);
  obs::MetricsRegistry *SeenOnOtherThread = nullptr;
  std::thread T([&] { SeenOnOtherThread = &obs::MetricsRegistry::current(); });
  T.join();
  // The scope only covers the installing thread.
  EXPECT_EQ(SeenOnOtherThread, &obs::MetricsRegistry::global());
  EXPECT_EQ(&obs::MetricsRegistry::current(), &Mine);
}

TEST(Metrics, ScopedRepairLandsInScopedRegistryOnly) {
  obs::MetricsRegistry &Global = obs::MetricsRegistry::global();
  uint64_t GlobalDetectBefore = Global.counterValue("detect.runs");

  obs::MetricsRegistry JobRegistry;
  std::string Repaired;
  RepairResult R;
  {
    obs::ScopedMetrics Scope(JobRegistry);
    R = repairSource(RacySource, Repaired);
  }
  ASSERT_TRUE(R.Success) << R.Error;
  // The whole pipeline reported into the scoped registry...
  EXPECT_GT(JobRegistry.counterValue("detect.runs"), 0u);
  EXPECT_GT(JobRegistry.counterValue(detectorCounter("checks")), 0u);
  EXPECT_GT(JobRegistry.counterValue("dpst.nodes"), 0u);
  EXPECT_EQ(JobRegistry.counterValue("repair.finishes_inserted"),
            R.Stats.FinishesInserted);
  // ...and the global registry did not move.
  EXPECT_EQ(Global.counterValue("detect.runs"), GlobalDetectBefore);
}

TEST(Metrics, HistogramMerge) {
  obs::Histogram A, B;
  A.observe(1.0);
  A.observe(3.0);
  B.observe(10.0);
  A.merge(B.snapshot());
  obs::Histogram::Snapshot S = A.snapshot();
  EXPECT_EQ(S.Count, 3u);
  EXPECT_DOUBLE_EQ(S.Min, 1.0);
  EXPECT_DOUBLE_EQ(S.Max, 10.0);
  EXPECT_DOUBLE_EQ(S.Sum, 14.0);

  // Merging an empty snapshot is a no-op; merging into empty copies.
  obs::Histogram Empty;
  A.merge(Empty.snapshot());
  EXPECT_EQ(A.snapshot().Count, 3u);
  Empty.merge(A.snapshot());
  EXPECT_EQ(Empty.snapshot().Count, 3u);
  EXPECT_DOUBLE_EQ(Empty.snapshot().Max, 10.0);
}

TEST(Metrics, HistogramPercentilesAreNearestRank) {
  obs::Histogram H;
  for (int I = 1; I <= 100; ++I)
    H.observe(static_cast<double>(I));
  obs::Histogram::Snapshot S = H.snapshot();
  ASSERT_EQ(S.Samples.size(), 100u);
  // Nearest-rank: ceil(P/100 * N)-th smallest sample.
  EXPECT_DOUBLE_EQ(S.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(S.percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(S.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(S.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(S.percentile(100), 100.0);

  // Insertion order does not matter: percentiles sort the reservoir.
  obs::Histogram Rev;
  for (int I = 100; I >= 1; --I)
    Rev.observe(static_cast<double>(I));
  EXPECT_DOUBLE_EQ(Rev.snapshot().percentile(95), 95.0);

  // The percentile fields show up in the JSON dump.
  obs::MetricsRegistry R;
  R.histogram("lat").observe(7.0);
  std::string Json = R.dumpJson();
  EXPECT_NE(Json.find("\"p50\":"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"p95\":"), std::string::npos);
  EXPECT_NE(Json.find("\"p99\":"), std::string::npos);

  // An empty histogram degrades to 0 instead of reading off the end.
  EXPECT_DOUBLE_EQ(obs::Histogram().snapshot().percentile(99), 0.0);
}

TEST(Metrics, ReservoirRetainsLateObservations) {
  // Regression: the reservoir used to stop admitting samples once full,
  // so a distribution shift after the cap was invisible to percentiles
  // (a detector that got slow late in a run still reported fast p99s).
  // Algorithm R keeps every observation equally likely to be retained:
  // after 1024 early 1.0s and 4096 late 2.0s, ~80% of the reservoir
  // should be late values, and the tail percentiles must see them.
  obs::Histogram H;
  for (size_t I = 0; I != obs::Histogram::MaxSamples; ++I)
    H.observe(1.0);
  for (size_t I = 0; I != 4 * obs::Histogram::MaxSamples; ++I)
    H.observe(2.0);

  obs::Histogram::Snapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 5 * obs::Histogram::MaxSamples);
  ASSERT_EQ(S.Samples.size(), obs::Histogram::MaxSamples);
  size_t Late = 0;
  for (double X : S.Samples)
    Late += X == 2.0;
  // Expected ~4/5 of the reservoir; a wide band keeps the test robust to
  // reasonable changes of the (deterministic) sampling constants.
  EXPECT_GT(Late, obs::Histogram::MaxSamples / 2);
  EXPECT_LT(Late, obs::Histogram::MaxSamples);
  EXPECT_DOUBLE_EQ(S.percentile(50), 2.0);
  EXPECT_DOUBLE_EQ(S.percentile(99), 2.0);

  // Same sequence, same reservoir: sampling is deterministic, and
  // reset() restores the generator state too.
  obs::Histogram H2;
  for (size_t I = 0; I != obs::Histogram::MaxSamples; ++I)
    H2.observe(1.0);
  for (size_t I = 0; I != 4 * obs::Histogram::MaxSamples; ++I)
    H2.observe(2.0);
  EXPECT_EQ(H2.snapshot().Samples, S.Samples);
  H2.reset();
  for (size_t I = 0; I != obs::Histogram::MaxSamples; ++I)
    H2.observe(1.0);
  for (size_t I = 0; I != 4 * obs::Histogram::MaxSamples; ++I)
    H2.observe(2.0);
  EXPECT_EQ(H2.snapshot().Samples, S.Samples);
}

TEST(Metrics, MergePastCapIsCountProportional) {
  // When the combined reservoirs exceed the cap, each side contributes
  // samples proportionally to its OBSERVATION count, not its sample
  // count — a job with 3x the observations keeps 3x the slots.
  obs::Histogram A, B;
  for (size_t I = 0; I != 3 * obs::Histogram::MaxSamples; ++I)
    A.observe(1.0);
  for (size_t I = 0; I != obs::Histogram::MaxSamples; ++I)
    B.observe(3.0);
  A.merge(B.snapshot());

  obs::Histogram::Snapshot S = A.snapshot();
  EXPECT_EQ(S.Count, 4 * obs::Histogram::MaxSamples);
  ASSERT_EQ(S.Samples.size(), obs::Histogram::MaxSamples);
  size_t FromA = 0, FromB = 0;
  for (double X : S.Samples) {
    FromA += X == 1.0;
    FromB += X == 3.0;
  }
  EXPECT_EQ(FromA, 3 * obs::Histogram::MaxSamples / 4);
  EXPECT_EQ(FromB, obs::Histogram::MaxSamples / 4);
  EXPECT_DOUBLE_EQ(S.Sum, 3.0 * obs::Histogram::MaxSamples +
                              3.0 * obs::Histogram::MaxSamples);
  EXPECT_DOUBLE_EQ(S.percentile(50), 1.0);
  EXPECT_DOUBLE_EQ(S.percentile(95), 3.0);
}

TEST(Metrics, MergeCarriesHistogramSamplesAcrossRegistries) {
  // The batch pattern: each job observes latencies into its own
  // (per-thread) registry; the parent merges in submission order and
  // must end up with percentiles over the union of the samples.
  obs::MetricsRegistry Parent;
  obs::MetricsRegistry Jobs[2];
  std::thread Workers[2];
  for (int I = 0; I != 2; ++I)
    Workers[I] = std::thread([&Jobs, I] {
      obs::ScopedMetrics Scope(Jobs[I]);
      for (int S = 0; S != 5; ++S)
        obs::histogram("job_ms").observe(I * 10.0 + S);
    });
  for (std::thread &W : Workers)
    W.join();
  for (obs::MetricsRegistry &J : Jobs)
    Parent.mergeFrom(J);

  obs::Histogram::Snapshot S = Parent.histogram("job_ms").snapshot();
  EXPECT_EQ(S.Count, 10u);
  ASSERT_EQ(S.Samples.size(), 10u);
  // Samples 0..4 and 10..14: the median and tail straddle both jobs,
  // and are deterministic for the submission-order merge.
  EXPECT_DOUBLE_EQ(S.percentile(50), 4.0);
  EXPECT_DOUBLE_EQ(S.percentile(99), 14.0);
}

TEST(Metrics, MergeFromFoldsCountersGaugesHistograms) {
  obs::MetricsRegistry Parent, Job1, Job2;
  Parent.counter("c").inc(5);
  Job1.counter("c").inc(2);
  Job1.gauge("g").set(7);
  Job1.histogram("h").observe(1.0);
  Job2.counter("c").inc(3);
  Job2.counter("only2").inc(1);
  Job2.gauge("g").set(9);
  Job2.histogram("h").observe(5.0);

  Parent.mergeFrom(Job1);
  Parent.mergeFrom(Job2);

  // Counters add; gauges take the later (submission-order) value;
  // histograms fold their summaries; new instruments register.
  EXPECT_EQ(Parent.counterValue("c"), 10u);
  EXPECT_EQ(Parent.counterValue("only2"), 1u);
  EXPECT_EQ(Parent.gaugeValue("g"), 9);
  obs::Histogram::Snapshot S = Parent.histogram("h").snapshot();
  EXPECT_EQ(S.Count, 2u);
  EXPECT_DOUBLE_EQ(S.Sum, 6.0);

  // A zero gauge in a later job does not clobber the merged value.
  obs::MetricsRegistry Job3;
  Job3.gauge("g").set(0);
  Parent.mergeFrom(Job3);
  EXPECT_EQ(Parent.gaugeValue("g"), 9);

  // Self-merge is a no-op (no double counting, no deadlock).
  Parent.mergeFrom(Parent);
  EXPECT_EQ(Parent.counterValue("c"), 10u);
}

TEST(Metrics, EndToEndRepairIncrementsPipelineCounters) {
  obs::MetricsRegistry &Reg = obs::MetricsRegistry::global();
  const std::string PipelineCounters[] = {
      "frontend.parses",  "sema.runs",
      "interp.runs",      "interp.asyncs",
      "dpst.nodes",       detectorCounter("checks"),
      detectorCounter("writes"),
      "race.reports_raw", "race.pairs",
      "detect.runs",      "repair.iterations",
      "repair.finishes_inserted",
      "repair.groups",    "dp.runs",
      "dp.subproblems",
  };
  std::map<std::string, uint64_t> Before;
  for (const std::string &Name : PipelineCounters)
    Before[Name] = Reg.counterValue(Name);

  std::string Repaired;
  RepairResult R = repairSource(RacySource, Repaired);
  ASSERT_TRUE(R.Success) << R.Error;
  ASSERT_GT(R.Stats.FinishesInserted, 0u);

  for (const std::string &Name : PipelineCounters)
    EXPECT_GT(Reg.counterValue(Name), Before[Name])
        << Name << " did not move over an end-to-end repair";

  // RepairStats is derived from the registry: the driver's numbers and the
  // counter deltas must agree.
  EXPECT_EQ(Reg.counterValue("repair.iterations") -
                Before["repair.iterations"],
            R.Stats.Iterations);
  EXPECT_EQ(Reg.counterValue("repair.finishes_inserted") -
                Before["repair.finishes_inserted"],
            R.Stats.FinishesInserted);
  // The last detection run of a successful repair is race free, and its
  // gauges describe it.
  EXPECT_EQ(Reg.gaugeValue("detect.race_pairs"), 0);
  EXPECT_GT(Reg.gaugeValue("detect.dpst_nodes"), 0);

  // The global dump stays valid JSON with the whole pipeline registered.
  EXPECT_TRUE(JsonChecker(Reg.dumpJson()).valid());
  EXPECT_GE(Reg.size(), 15u);
}

TEST(Metrics, DisabledTracerStillCountsButBuffersNoEvents) {
  obs::Tracer::global().disable();
  obs::Tracer::global().clear();
  obs::MetricsRegistry &Reg = obs::MetricsRegistry::global();
  uint64_t DetectBefore = Reg.counterValue("detect.runs");

  std::string Repaired;
  RepairResult R = repairSource(RacySource, Repaired);
  ASSERT_TRUE(R.Success) << R.Error;

  // Counters moved (metrics are always on)...
  EXPECT_GT(Reg.counterValue("detect.runs"), DetectBefore);
  // ...but the disabled tracer recorded nothing.
  EXPECT_EQ(obs::Tracer::global().numEvents(), 0u);
}

TEST(Tracer, EndToEndRepairEmitsPhaseSpans) {
  TracingOn Guard;
  std::string Repaired;
  RepairResult R = repairSource(RacySource, Repaired);
  ASSERT_TRUE(R.Success) << R.Error;

  std::vector<obs::TraceEvent> Events = obs::Tracer::global().snapshot();
  auto Has = [&](const char *Name) {
    return std::any_of(Events.begin(), Events.end(),
                       [&](const obs::TraceEvent &E) { return E.Name == Name; });
  };
  EXPECT_TRUE(Has("parse"));
  EXPECT_TRUE(Has("sema"));
  EXPECT_TRUE(Has("detect"));
  EXPECT_TRUE(Has("interp.run"));
  EXPECT_TRUE(Has("repair"));
  EXPECT_TRUE(Has("placement"));
  EXPECT_TRUE(Has("dpst.group"));

  // Nesting: every detect span lies inside the repair span.
  auto RepairIt =
      std::find_if(Events.begin(), Events.end(),
                   [](const obs::TraceEvent &E) { return E.Name == "repair"; });
  ASSERT_NE(RepairIt, Events.end());
  for (const obs::TraceEvent &E : Events)
    if (E.Name == "detect") {
      EXPECT_GE(E.TsNs, RepairIt->TsNs);
      EXPECT_LE(E.TsNs + E.DurNs, RepairIt->TsNs + RepairIt->DurNs);
    }
}

} // namespace
