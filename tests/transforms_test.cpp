//===- transforms_test.cpp - AST transform tests --------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ast/AstPrinter.h"
#include "ast/Transforms.h"
#include "interp/Interpreter.h"

using namespace tdr;
using namespace tdr::test;

namespace {

const char *Sample = R"(
var X: int = 0;
func main() {
  finish {
    async { X = X + 1; }
    async { X = X + 2; }
  }
  if (X > 0)
    finish async { X = X + 10; }
  for (var i: int = 0; i < 2; i = i + 1) {
    finish { async { X = X + 100; } }
  }
  print(X);
}
)";

TEST(Transforms, StripFinishesRemovesAll) {
  ParsedProgram P = parseAndCheck(Sample);
  ASSERT_TRUE(P.ok()) << P.errors();
  EXPECT_EQ(collectFinishes(*P.Prog).size(), 3u);
  unsigned Removed = stripFinishes(*P.Prog);
  EXPECT_EQ(Removed, 3u);
  EXPECT_TRUE(collectFinishes(*P.Prog).empty());
  // Asyncs are untouched.
  EXPECT_EQ(collectAsyncs(*P.Prog).size(), 4u);
}

TEST(Transforms, StripPreservesSequentialSemantics) {
  ParsedProgram P = parseAndCheck(Sample);
  ASSERT_TRUE(P.ok());
  ExecResult Before = runProgram(*P.Prog);
  stripFinishes(*P.Prog);
  ASSERT_TRUE(runSema(*P.Prog, *P.Ctx, *P.Diags));
  ExecResult After = runProgram(*P.Prog);
  // Sequential depth-first semantics do not depend on finish statements.
  EXPECT_EQ(Before.Output, After.Output);
  EXPECT_EQ(After.Output, "213\n");
}

TEST(Transforms, ElideRemovesAsyncAndFinish) {
  ParsedProgram P = parseAndCheck(Sample);
  ASSERT_TRUE(P.ok());
  unsigned Removed = elideParallelism(*P.Prog);
  EXPECT_EQ(Removed, 7u); // 3 finishes + 4 asyncs
  EXPECT_TRUE(collectFinishes(*P.Prog).empty());
  EXPECT_TRUE(collectAsyncs(*P.Prog).empty());
  ASSERT_TRUE(runSema(*P.Prog, *P.Ctx, *P.Diags));
  ExecResult R = runProgram(*P.Prog);
  EXPECT_EQ(R.Output, "213\n");
}

TEST(Transforms, StrippedSourceStillParses) {
  ParsedProgram P = parseAndCheck(Sample);
  ASSERT_TRUE(P.ok());
  stripFinishes(*P.Prog);
  std::string Printed = printProgram(*P.Prog);
  ParsedProgram P2 = parseAndCheck(Printed);
  EXPECT_TRUE(P2.ok()) << P2.errors() << "\n" << Printed;
}

TEST(Transforms, WrapInFinishSingleStatement) {
  ParsedProgram P = parseAndCheck(R"(
var X: int = 0;
func main() {
  async { X = 1; }
  print(X);
}
)");
  ASSERT_TRUE(P.ok());
  BlockStmt *Body = P.Prog->mainFunc()->body();
  ASSERT_EQ(Body->stmts().size(), 2u);
  FinishStmt *F = wrapInFinish(*P.Ctx, Body, 0, 0);
  ASSERT_NE(F, nullptr);
  EXPECT_TRUE(F->isSynthesized());
  EXPECT_EQ(Body->stmts().size(), 2u);
  EXPECT_EQ(Body->stmts()[0], F);
  // Single-statement wrap keeps the statement as the direct body.
  EXPECT_TRUE(isa<AsyncStmt>(F->body()));
}

TEST(Transforms, WrapInFinishRangeCreatesBlock) {
  ParsedProgram P = parseAndCheck(R"(
var X: int = 0;
func main() {
  X = 1;
  X = 2;
  X = 3;
  print(X);
}
)");
  ASSERT_TRUE(P.ok());
  BlockStmt *Body = P.Prog->mainFunc()->body();
  FinishStmt *F = wrapInFinish(*P.Ctx, Body, 1, 2);
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(Body->stmts().size(), 3u);
  auto *Inner = dyn_cast<BlockStmt>(F->body());
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Inner->stmts().size(), 2u);
  // The edited program still runs (no re-sema needed for slots).
  ExecResult R = runProgram(*P.Prog);
  EXPECT_EQ(R.Output, "3\n");
}

TEST(Transforms, CountStmtsWalksEverything) {
  ParsedProgram P = parseAndCheck(Sample);
  ASSERT_TRUE(P.ok());
  unsigned Before = countStmts(*P.Prog);
  EXPECT_GT(Before, 10u);
  elideParallelism(*P.Prog);
  EXPECT_EQ(countStmts(*P.Prog), Before - 7);
}

TEST(Transforms, ForEachExprVisitsNestedExpressions) {
  ParsedProgram P = parseAndCheck(R"(
var A: int[];
func main() {
  A = new int[4];
  if (A[0] + 1 > 2) { A[1] = len(A) * 3; }
}
)");
  ASSERT_TRUE(P.ok());
  unsigned VarRefs = 0, Calls = 0;
  for (const Stmt *S : P.Prog->mainFunc()->body()->stmts())
    forEachExpr(S, [&](const Expr *E) {
      if (isa<VarRefExpr>(E))
        ++VarRefs;
      if (isa<CallExpr>(E))
        ++Calls;
    });
  EXPECT_EQ(VarRefs, 4u); // A in new-assign, A[0], A[1], len(A)
  EXPECT_EQ(Calls, 1u);   // len
}

} // namespace
