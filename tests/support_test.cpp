//===- support_test.cpp - Support library tests ---------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Casting.h"
#include "support/Diagnostics.h"
#include "support/Rng.h"
#include "support/SourceManager.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

using namespace tdr;

namespace {

TEST(SourceManager, LineColMapping) {
  SourceManager SM("t", "ab\ncde\n\nf");
  EXPECT_EQ(SM.lineCol(SourceLoc(0)), (LineCol{1, 1}));
  EXPECT_EQ(SM.lineCol(SourceLoc(1)), (LineCol{1, 2}));
  EXPECT_EQ(SM.lineCol(SourceLoc(3)), (LineCol{2, 1}));
  EXPECT_EQ(SM.lineCol(SourceLoc(5)), (LineCol{2, 3}));
  EXPECT_EQ(SM.lineCol(SourceLoc(7)), (LineCol{3, 1}));
  EXPECT_EQ(SM.lineCol(SourceLoc(8)), (LineCol{4, 1}));
  EXPECT_EQ(SM.lineCol(SourceLoc()), (LineCol{0, 0})); // invalid
}

TEST(SourceManager, LineText) {
  SourceManager SM("t", "first\nsecond\nthird");
  EXPECT_EQ(SM.lineText(1), "first");
  EXPECT_EQ(SM.lineText(2), "second");
  EXPECT_EQ(SM.lineText(3), "third");
  EXPECT_EQ(SM.lineText(4), "");
  EXPECT_EQ(SM.numLines(), 3u);
}

TEST(Diagnostics, RenderIncludesSeverityAndLocation) {
  SourceManager SM("file.hj", "hello\nworld\n");
  DiagnosticsEngine D;
  D.error(SourceLoc(6), "something is wrong");
  D.warning(SourceLoc(0), "be careful");
  D.note(SourceLoc(0), "see here");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.numErrors(), 1u);
  std::string Out = D.render(SM);
  EXPECT_NE(Out.find("file.hj:2:1: error: something is wrong"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("warning: be careful"), std::string::npos);
  EXPECT_NE(Out.find("note: see here"), std::string::npos);
}

TEST(StringUtils, Format) {
  EXPECT_EQ(strFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strFormat("%s", std::string(500, 'a').c_str()),
            std::string(500, 'a'));
}

TEST(StringUtils, Split) {
  auto Parts = splitString("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(Parts[3], "c");
  EXPECT_EQ(splitString("", ',').size(), 1u);
}

TEST(StringUtils, ThousandsSeparators) {
  EXPECT_EQ(withThousandsSep(0), "0");
  EXPECT_EQ(withThousandsSep(999), "999");
  EXPECT_EQ(withThousandsSep(1000), "1,000");
  EXPECT_EQ(withThousandsSep(424436), "424,436");
  EXPECT_EQ(withThousandsSep(1234567890), "1,234,567,890");
}

TEST(Rng, DeterministicAndSeedSensitive) {
  Rng A(1), B(1), C(2);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
  bool Differs = false;
  Rng A2(1);
  for (int I = 0; I != 10; ++I)
    Differs |= A2.next() != C.next();
  EXPECT_TRUE(Differs);
}

TEST(Rng, RangesRespectBounds) {
  Rng R(7);
  for (int I = 0; I != 1000; ++I) {
    uint64_t V = R.nextBelow(17);
    EXPECT_LT(V, 17u);
    int64_t W = R.nextInRange(-5, 5);
    EXPECT_GE(W, -5);
    EXPECT_LE(W, 5);
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

// A tiny hierarchy to exercise the casting helpers.
struct Base {
  enum class Kind { A, B } K;
  explicit Base(Kind K) : K(K) {}
};
struct DerivedA : Base {
  DerivedA() : Base(Kind::A) {}
  static bool classof(const Base *B) { return B->K == Kind::A; }
};
struct DerivedB : Base {
  DerivedB() : Base(Kind::B) {}
  static bool classof(const Base *B) { return B->K == Kind::B; }
};

TEST(Casting, IsaCastDynCast) {
  DerivedA A;
  Base *B = &A;
  EXPECT_TRUE(isa<DerivedA>(B));
  EXPECT_FALSE(isa<DerivedB>(B));
  EXPECT_EQ(cast<DerivedA>(B), &A);
  EXPECT_EQ(dyn_cast<DerivedB>(B), nullptr);
  EXPECT_EQ(dyn_cast<DerivedA>(B), &A);
  Base *Null = nullptr;
  EXPECT_EQ(dyn_cast_or_null<DerivedA>(Null), nullptr);
}

} // namespace
