//===- support_test.cpp - Support library tests ---------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Casting.h"
#include "support/Diagnostics.h"
#include "support/Json.h"
#include "support/PagedArray.h"
#include "support/Rng.h"
#include "support/SmallVector.h"
#include "support/SourceManager.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

#include <vector>

using namespace tdr;

namespace {

TEST(SourceManager, LineColMapping) {
  SourceManager SM("t", "ab\ncde\n\nf");
  EXPECT_EQ(SM.lineCol(SourceLoc(0)), (LineCol{1, 1}));
  EXPECT_EQ(SM.lineCol(SourceLoc(1)), (LineCol{1, 2}));
  EXPECT_EQ(SM.lineCol(SourceLoc(3)), (LineCol{2, 1}));
  EXPECT_EQ(SM.lineCol(SourceLoc(5)), (LineCol{2, 3}));
  EXPECT_EQ(SM.lineCol(SourceLoc(7)), (LineCol{3, 1}));
  EXPECT_EQ(SM.lineCol(SourceLoc(8)), (LineCol{4, 1}));
  EXPECT_EQ(SM.lineCol(SourceLoc()), (LineCol{0, 0})); // invalid
}

TEST(SourceManager, LineText) {
  SourceManager SM("t", "first\nsecond\nthird");
  EXPECT_EQ(SM.lineText(1), "first");
  EXPECT_EQ(SM.lineText(2), "second");
  EXPECT_EQ(SM.lineText(3), "third");
  EXPECT_EQ(SM.lineText(4), "");
  EXPECT_EQ(SM.numLines(), 3u);
}

TEST(Diagnostics, RenderIncludesSeverityAndLocation) {
  SourceManager SM("file.hj", "hello\nworld\n");
  DiagnosticsEngine D;
  D.error(SourceLoc(6), "something is wrong");
  D.warning(SourceLoc(0), "be careful");
  D.note(SourceLoc(0), "see here");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.numErrors(), 1u);
  std::string Out = D.render(SM);
  EXPECT_NE(Out.find("file.hj:2:1: error: something is wrong"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("warning: be careful"), std::string::npos);
  EXPECT_NE(Out.find("note: see here"), std::string::npos);
}

TEST(StringUtils, Format) {
  EXPECT_EQ(strFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strFormat("%s", std::string(500, 'a').c_str()),
            std::string(500, 'a'));
}

TEST(StringUtils, Split) {
  auto Parts = splitString("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(Parts[3], "c");
  EXPECT_EQ(splitString("", ',').size(), 1u);
}

TEST(StringUtils, ThousandsSeparators) {
  EXPECT_EQ(withThousandsSep(0), "0");
  EXPECT_EQ(withThousandsSep(999), "999");
  EXPECT_EQ(withThousandsSep(1000), "1,000");
  EXPECT_EQ(withThousandsSep(424436), "424,436");
  EXPECT_EQ(withThousandsSep(1234567890), "1,234,567,890");
}

TEST(Rng, DeterministicAndSeedSensitive) {
  Rng A(1), B(1), C(2);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
  bool Differs = false;
  Rng A2(1);
  for (int I = 0; I != 10; ++I)
    Differs |= A2.next() != C.next();
  EXPECT_TRUE(Differs);
}

TEST(Rng, RangesRespectBounds) {
  Rng R(7);
  for (int I = 0; I != 1000; ++I) {
    uint64_t V = R.nextBelow(17);
    EXPECT_LT(V, 17u);
    int64_t W = R.nextInRange(-5, 5);
    EXPECT_GE(W, -5);
    EXPECT_LE(W, 5);
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(SmallVector, StaysInlineUpToCapacity) {
  SmallVector<int, 2> V;
  EXPECT_TRUE(V.empty());
  EXPECT_TRUE(V.isInline());
  EXPECT_EQ(V.capacity(), 2u);
  V.push_back(10);
  V.push_back(20);
  EXPECT_TRUE(V.isInline());
  EXPECT_EQ(V.size(), 2u);
  EXPECT_EQ(V[0], 10);
  EXPECT_EQ(V.back(), 20);
}

TEST(SmallVector, SpillsToHeapAndKeepsContents) {
  SmallVector<int, 2> V;
  for (int I = 0; I != 100; ++I)
    V.push_back(I);
  EXPECT_FALSE(V.isInline());
  EXPECT_EQ(V.size(), 100u);
  EXPECT_GE(V.capacity(), 100u);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(V[I], I);
  int Expect = 0;
  for (int X : V)
    EXPECT_EQ(X, Expect++);
}

TEST(SmallVector, ClearAndTruncateKeepStorage) {
  SmallVector<int, 2> V;
  for (int I = 0; I != 8; ++I)
    V.push_back(I);
  uint32_t Cap = V.capacity();
  V.truncate(3);
  EXPECT_EQ(V.size(), 3u);
  EXPECT_EQ(V[2], 2);
  EXPECT_EQ(V.capacity(), Cap);
  V.clear();
  EXPECT_TRUE(V.empty());
  EXPECT_EQ(V.capacity(), Cap);
  V.push_back(42);
  EXPECT_EQ(V[0], 42);
}

TEST(MonotonicArena, BumpsWithinSlabAndHonorsAlignment) {
  MonotonicArena A;
  void *P1 = A.allocate(10, 1);
  void *P2 = A.allocate(10, 64);
  EXPECT_NE(P1, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P2) % 64, 0u);
  EXPECT_EQ(A.numSlabs(), 1u);
  // Oversized request gets its own dedicated slab.
  void *Big = A.allocate(MonotonicArena::SlabBytes * 2, 8);
  EXPECT_NE(Big, nullptr);
  EXPECT_EQ(A.numSlabs(), 2u);
  EXPECT_GE(A.bytesReserved(), MonotonicArena::SlabBytes * 3);
}

TEST(MonotonicArena, TracksUsedSeparatelyFromReserved) {
  MonotonicArena A;
  EXPECT_EQ(A.bytesUsed(), 0u);
  EXPECT_EQ(A.bytesReserved(), 0u);
  A.allocate(100, 8);
  A.allocate(28, 4);
  // Used is the sum of requested sizes; reserved is whole slabs, so a
  // fresh slab leaves a large headroom between the two.
  EXPECT_EQ(A.bytesUsed(), 128u);
  EXPECT_GE(A.bytesReserved(), MonotonicArena::SlabBytes);
  EXPECT_LT(A.bytesUsed(), A.bytesReserved());
  // An oversized dedicated slab moves both by its exact size.
  size_t Big = MonotonicArena::SlabBytes * 2;
  A.allocate(Big, 8);
  EXPECT_EQ(A.bytesUsed(), 128u + Big);
  EXPECT_GE(A.bytesReserved(), MonotonicArena::SlabBytes + Big);
}

TEST(PagedArray, LazyPagesValueInitialize) {
  MonotonicArena Arena;
  PagedArray<uint64_t, 4> A(Arena); // 16-element pages
  EXPECT_EQ(A.lookup(0), nullptr);
  EXPECT_EQ(A.numPages(), 0u);
  A.getOrCreate(5) = 55;
  EXPECT_EQ(A.numPages(), 1u);
  // Neighbors on the same page materialized zeroed.
  EXPECT_EQ(A.getOrCreate(4), 0u);
  ASSERT_NE(A.lookup(5), nullptr);
  EXPECT_EQ(*A.lookup(5), 55u);
  // A distant index lands on its own page; the gap stays unmapped.
  A.getOrCreate(1000) = 7;
  EXPECT_EQ(A.numPages(), 2u);
  EXPECT_EQ(A.lookup(500), nullptr);
  EXPECT_EQ(*A.lookup(1000), 7u);
}

// Zero state valid (SmallVector members + counter), so pages of it may be
// materialized by memset — the detector Shadow shape.
struct ZeroSlot {
  static constexpr bool AllZeroInit = true;
  SmallVector<int, 2> List;
  uint32_t Counter = 0;
};

TEST(PagedArray, MemsetMaterializedSlotsBehaveLikeConstructed) {
  static_assert(IsAllZeroInit<ZeroSlot>::value, "trait not detected");
  static_assert(!IsAllZeroInit<uint64_t>::value, "trait over-matches");
  MonotonicArena Arena;
  PagedArray<ZeroSlot, 4> A(Arena);
  ZeroSlot &S = A.getOrCreate(9);
  EXPECT_TRUE(S.List.empty());
  EXPECT_TRUE(S.List.isInline());
  EXPECT_EQ(S.Counter, 0u);
  // Slots work normally after memset materialization, including heap spill
  // and cleanup via the PagedArray destructor.
  for (int I = 0; I != 10; ++I)
    S.List.push_back(I);
  EXPECT_FALSE(S.List.isInline());
  EXPECT_EQ(S.List[9], 9);
}

// A tiny hierarchy to exercise the casting helpers.
struct Base {
  enum class Kind { A, B } K;
  explicit Base(Kind K) : K(K) {}
};
struct DerivedA : Base {
  DerivedA() : Base(Kind::A) {}
  static bool classof(const Base *B) { return B->K == Kind::A; }
};
struct DerivedB : Base {
  DerivedB() : Base(Kind::B) {}
  static bool classof(const Base *B) { return B->K == Kind::B; }
};

TEST(Json, SurrogatePairsDecodeToUtf8) {
  // A \uD83D\uDE00-style pair is ONE code point (here U+1F600) and must
  // come out as its 4-byte UTF-8 encoding, not as two 3-byte mojibake
  // sequences of the raw surrogate values.
  json::ParseResult R = json::parse("\"\\uD83D\\uDE00\"");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Doc.asString(), "\xF0\x9F\x98\x80");

  // Lowest (U+10000) and highest (U+10FFFF) astral code points.
  R = json::parse("\"\\uD800\\uDC00\"");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Doc.asString(), "\xF0\x90\x80\x80");
  R = json::parse("\"\\uDBFF\\uDFFF\"");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Doc.asString(), "\xF4\x8F\xBF\xBF");

  // Surrounding text and BMP escapes are unaffected.
  R = json::parse("\"a\\u00E9b\\uD83D\\uDE00c\"");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Doc.asString(), "a\xC3\xA9"
                              "b\xF0\x9F\x98\x80"
                              "c");
}

TEST(Json, LoneAndMalformedSurrogatesAreParseErrors) {
  struct Case {
    const char *Text;
    const char *Needle; // expected fragment of the error message
  } Cases[] = {
      // A low surrogate with no preceding high half.
      {"\"\\uDC00\"", "lone low surrogate"},
      {"\"x\\uDFFFy\"", "lone low surrogate"},
      // A high surrogate at end-of-string / followed by a non-escape.
      {"\"\\uD800\"", "unpaired high surrogate"},
      {"\"\\uD83Dz\"", "unpaired high surrogate"},
      {"\"\\uD83D\\n\"", "unpaired high surrogate"},
      // A high surrogate followed by a \u escape that is not a low half.
      {"\"\\uD83D\\u0041\"", "not followed by a low surrogate"},
      {"\"\\uD83D\\uD83D\"", "not followed by a low surrogate"},
      // Truncated or non-hex second half.
      {"\"\\uD83D\\uDE\"", "\\u escape"},
      {"\"\\uZZZZ\"", "invalid \\u escape"},
  };
  for (const Case &C : Cases) {
    json::ParseResult R = json::parse(C.Text);
    EXPECT_FALSE(R.Ok) << C.Text;
    EXPECT_NE(R.Error.find(C.Needle), std::string::npos)
        << C.Text << " -> " << R.Error;
  }
}

TEST(Casting, IsaCastDynCast) {
  DerivedA A;
  Base *B = &A;
  EXPECT_TRUE(isa<DerivedA>(B));
  EXPECT_FALSE(isa<DerivedB>(B));
  EXPECT_EQ(cast<DerivedA>(B), &A);
  EXPECT_EQ(dyn_cast<DerivedB>(B), nullptr);
  EXPECT_EQ(dyn_cast<DerivedA>(B), &A);
  Base *Null = nullptr;
  EXPECT_EQ(dyn_cast_or_null<DerivedA>(Null), nullptr);
}

} // namespace
