//===- race_test.cpp - ESP-bags race detection tests ----------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// Unit tests on the paper's examples (Figures 5, 7, 8) and property tests
// validating MRW ESP-bags against the independent Theorem-1 oracle on
// random programs.
//
//===----------------------------------------------------------------------===//

#include "RandomProgram.h"
#include "TestUtil.h"

#include "race/Detect.h"
#include "race/OracleDetector.h"

#include <algorithm>
#include <set>

using namespace tdr;
using namespace tdr::test;

namespace {

Detection detect(ParsedProgram &P, EspBagsDetector::Mode Mode,
                 std::vector<int64_t> Args = {}) {
  ExecOptions Exec;
  Exec.Args = std::move(Args);
  return detectRaces(*P.Prog, Mode, Exec);
}

TEST(EspBags, NoRaceInSequentialProgram) {
  ParsedProgram P = parseAndCheck(R"(
var X: int = 0;
func main() {
  X = 1;
  X = X + 1;
  print(X);
}
)");
  ASSERT_TRUE(P.ok()) << P.errors();
  Detection D = detect(P, EspBagsDetector::Mode::MRW);
  EXPECT_TRUE(D.Report.Pairs.empty());
  EXPECT_EQ(D.Exec.Output, "2\n");
}

TEST(EspBags, AsyncWriteRacesWithParentRead) {
  ParsedProgram P = parseAndCheck(R"(
var X: int = 0;
func main() {
  async { X = 1; }
  print(X);
}
)");
  ASSERT_TRUE(P.ok()) << P.errors();
  Detection D = detect(P, EspBagsDetector::Mode::MRW);
  ASSERT_EQ(D.Report.Pairs.size(), 1u);
  EXPECT_EQ(D.Report.Pairs[0].SrcKind, AccessKind::Write);
  EXPECT_EQ(D.Report.Pairs[0].SnkKind, AccessKind::Read);
}

TEST(EspBags, FinishOrdersAsyncBeforeRead) {
  ParsedProgram P = parseAndCheck(R"(
var X: int = 0;
func main() {
  finish {
    async { X = 1; }
  }
  print(X);
}
)");
  ASSERT_TRUE(P.ok()) << P.errors();
  Detection D = detect(P, EspBagsDetector::Mode::MRW);
  EXPECT_TRUE(D.Report.Pairs.empty());
  EXPECT_EQ(D.Exec.Output, "1\n");
}

TEST(EspBags, SiblingAsyncsRace) {
  ParsedProgram P = parseAndCheck(R"(
var X: int = 0;
func main() {
  finish {
    async { X = 1; }
    async { X = 2; }
  }
  print(X);
}
)");
  ASSERT_TRUE(P.ok()) << P.errors();
  Detection D = detect(P, EspBagsDetector::Mode::MRW);
  EXPECT_EQ(D.Report.Pairs.size(), 1u);
}

TEST(EspBags, Figure7MrwReportsBothReaders) {
  // Paper Figure 7: two async readers of x then an async writer. SRW keeps
  // one reader so it reports one race; MRW reports both.
  ParsedProgram P1 = parseAndCheck(R"(
var X: int = 0;
func main() {
  finish {
    async { var a: int = X; }
    async { var b: int = X; }
    async { X = 1; }
  }
}
)");
  ASSERT_TRUE(P1.ok()) << P1.errors();
  Detection Mrw = detect(P1, EspBagsDetector::Mode::MRW);
  EXPECT_EQ(Mrw.Report.Pairs.size(), 2u);

  ParsedProgram P2 = parseAndCheck(R"(
var X: int = 0;
func main() {
  finish {
    async { var a: int = X; }
    async { var b: int = X; }
    async { X = 1; }
  }
}
)");
  Detection Srw = detect(P2, EspBagsDetector::Mode::SRW);
  EXPECT_EQ(Srw.Report.Pairs.size(), 1u);
}

TEST(EspBags, Figure5TwoRaces) {
  // Paper Figure 5: A2 -> A4 (x) and A3 -> A4 (y).
  ParsedProgram P = parseAndCheck(R"(
var X: int = 0;
var Y: int = 0;
var Z: int = 0;
func main() {
  if (arg(0) > 0) {
    async { Z = 1; }
    async { X = 1; }
  }
  async { Y = 1; }
  async { Z = X + Y; }
}
)");
  ASSERT_TRUE(P.ok()) << P.errors();
  Detection D = detect(P, EspBagsDetector::Mode::MRW, {1});
  // Races: A1/Z vs A4/Z write-write, A2/X vs A4 read, A3/Y vs A4 read.
  EXPECT_GE(D.Report.Pairs.size(), 2u);
  bool HasXRace = false, HasYRace = false;
  for (const RacePair &R : D.Report.Pairs) {
    if (R.Loc.K == MemLoc::Kind::Global && R.Loc.Id == 0)
      HasXRace = true;
    if (R.Loc.K == MemLoc::Kind::Global && R.Loc.Id == 1)
      HasYRace = true;
  }
  EXPECT_TRUE(HasXRace);
  EXPECT_TRUE(HasYRace);
}

TEST(EspBags, TransitiveJoinThroughNestedFinish) {
  // The outer finish joins grandchild asyncs spawned without their own
  // finish (terminally strict semantics).
  ParsedProgram P = parseAndCheck(R"(
var X: int = 0;
func main() {
  finish {
    async {
      async { X = 1; }
    }
  }
  print(X);
}
)");
  ASSERT_TRUE(P.ok()) << P.errors();
  Detection D = detect(P, EspBagsDetector::Mode::MRW);
  EXPECT_TRUE(D.Report.Pairs.empty());
}

TEST(EspBags, FinishDoesNotOrderAgainstLaterAsync) {
  // finish { async w } then async r: no ordering issue — the finish
  // happens before the second async spawns.
  ParsedProgram P = parseAndCheck(R"(
var X: int = 0;
func main() {
  finish {
    async { X = 1; }
  }
  async { X = 2; }
  print(0);
}
)");
  ASSERT_TRUE(P.ok()) << P.errors();
  Detection D = detect(P, EspBagsDetector::Mode::MRW);
  // X=1 ordered before X=2 by the finish; X=2 races with nothing (the
  // print does not touch X).
  EXPECT_TRUE(D.Report.Pairs.empty());
}

TEST(EspBags, ReadsDoNotRaceWithReads) {
  ParsedProgram P = parseAndCheck(R"(
var X: int = 5;
func main() {
  finish {
    async { var a: int = X; }
    async { var b: int = X; }
  }
  print(X);
}
)");
  ASSERT_TRUE(P.ok()) << P.errors();
  Detection D = detect(P, EspBagsDetector::Mode::MRW);
  EXPECT_TRUE(D.Report.Pairs.empty());
}

TEST(EspBags, ArrayElementGranularity) {
  // Disjoint elements do not race; the same element does.
  ParsedProgram P = parseAndCheck(R"(
var A: int[];
func main() {
  A = new int[4];
  finish {
    async { A[0] = 1; }
    async { A[1] = 2; }
  }
  finish {
    async { A[2] = 3; }
    async { A[2] = 4; }
  }
}
)");
  ASSERT_TRUE(P.ok()) << P.errors();
  Detection D = detect(P, EspBagsDetector::Mode::MRW);
  ASSERT_EQ(D.Report.Pairs.size(), 1u);
  EXPECT_EQ(D.Report.Pairs[0].Loc.Index, 2);
}

TEST(EspBags, RawCountCountsEveryConflict) {
  ParsedProgram P = parseAndCheck(R"(
var X: int = 0;
func main() {
  async { X = 1; }
  var a: int = X;
  var b: int = X;
}
)");
  ASSERT_TRUE(P.ok()) << P.errors();
  Detection D = detect(P, EspBagsDetector::Mode::MRW);
  // One pair of steps, but two conflicting reads reported.
  EXPECT_EQ(D.Report.Pairs.size(), 1u);
  EXPECT_EQ(D.Report.RawCount, 2u);
}

//===----------------------------------------------------------------------===//
// Caller-supplied monitors keep observing through a detection run
//===----------------------------------------------------------------------===//

/// Counts the events it sees; stands in for a caller's tracer/profiler.
struct CountingMonitor : ExecMonitor {
  unsigned Asyncs = 0, Reads = 0, Writes = 0, Work = 0;
  void onAsyncEnter(const AsyncStmt *, const Stmt *) override { ++Asyncs; }
  void onRead(MemLoc) override { ++Reads; }
  void onWrite(MemLoc) override { ++Writes; }
  void onWork(uint64_t) override { ++Work; }
};

TEST(Detect, CallerMonitorStillObservesExecution) {
  // Regression: detectRaces used to overwrite Exec.Monitor with its own
  // builder/detector pipeline, silently disconnecting the caller's
  // monitor. It must be chained in front instead.
  ParsedProgram P = parseAndCheck(R"(
var X: int = 0;
func main() {
  async { X = 1; }
  print(X);
}
)");
  ASSERT_TRUE(P.ok()) << P.errors();

  CountingMonitor Mon;
  ExecOptions Exec;
  Exec.Monitor = &Mon;
  Detection D = detectRaces(*P.Prog, EspBagsDetector::Mode::MRW, Exec);

  // Detection itself still works...
  ASSERT_TRUE(D.ok());
  EXPECT_EQ(D.Report.Pairs.size(), 1u);
  // ...and the caller's monitor saw the same execution.
  EXPECT_EQ(Mon.Asyncs, 1u);
  EXPECT_GE(Mon.Writes, 1u);
  EXPECT_GE(Mon.Reads, 1u);
  EXPECT_GT(Mon.Work, 0u);
}

TEST(Detect, CallerMonitorStillObservesOracleExecution) {
  ParsedProgram P = parseAndCheck(R"(
var X: int = 0;
func main() {
  finish {
    async { X = 1; }
    async { X = 2; }
  }
}
)");
  ASSERT_TRUE(P.ok()) << P.errors();

  CountingMonitor Mon;
  ExecOptions Exec;
  Exec.Monitor = &Mon;
  Detection D = detectRacesOracle(*P.Prog, Exec);
  ASSERT_TRUE(D.ok());
  EXPECT_EQ(D.Report.Pairs.size(), 1u);
  EXPECT_EQ(Mon.Asyncs, 2u);
  // Two async writes plus the global's initialization.
  EXPECT_GE(Mon.Writes, 2u);
}

//===----------------------------------------------------------------------===//
// Property: MRW ESP-bags == Theorem-1 oracle on random programs
//===----------------------------------------------------------------------===//

std::set<std::pair<uint32_t, uint32_t>> pairSet(const RaceReport &R) {
  std::set<std::pair<uint32_t, uint32_t>> S;
  for (const RacePair &P : R.Pairs)
    S.insert({P.Src->id(), P.Snk->id()});
  return S;
}

class EspBagsVsOracle : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EspBagsVsOracle, IdenticalRacePairSets) {
  Rng SeedGen(GetParam());
  for (int Trial = 0; Trial != 25; ++Trial) {
    RandomProgramGen Gen(SeedGen.next());
    std::string Src = Gen.generate();
    ParsedProgram P = parseAndCheck(Src);
    ASSERT_TRUE(P.ok()) << P.errors() << "\n" << Src;

    Detection Bags = detect(P, EspBagsDetector::Mode::MRW);
    ASSERT_TRUE(Bags.ok()) << Bags.Exec.Error << "\n" << Src;
    ExecOptions Exec;
    Detection Oracle = detectRacesOracle(*P.Prog, Exec);
    ASSERT_TRUE(Oracle.ok());

    EXPECT_EQ(pairSet(Bags.Report), pairSet(Oracle.Report))
        << "trial " << Trial << "\n"
        << Src;
    EXPECT_EQ(Bags.Report.RawCount, Oracle.Report.RawCount)
        << "trial " << Trial << "\n"
        << Src;
  }
}

TEST_P(EspBagsVsOracle, SrwPairsAreSubsetOfMrw) {
  Rng SeedGen(GetParam() ^ 0xabcdef);
  for (int Trial = 0; Trial != 25; ++Trial) {
    RandomProgramGen Gen(SeedGen.next());
    std::string Src = Gen.generate();
    ParsedProgram P = parseAndCheck(Src);
    ASSERT_TRUE(P.ok()) << P.errors();

    Detection Mrw = detect(P, EspBagsDetector::Mode::MRW);
    Detection Srw = detect(P, EspBagsDetector::Mode::SRW);
    auto MrwSet = pairSet(Mrw.Report);
    auto SrwSet = pairSet(Srw.Report);
    EXPECT_TRUE(std::includes(MrwSet.begin(), MrwSet.end(), SrwSet.begin(),
                              SrwSet.end()))
        << Src;
    // SRW finds a race iff MRW does (detection, not enumeration, is
    // equally complete).
    EXPECT_EQ(SrwSet.empty(), MrwSet.empty()) << Src;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EspBagsVsOracle,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

} // namespace
