//===- students_test.cpp - §7.4 cohort grading tests ----------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "suite/StudentCohort.h"

#include <gtest/gtest.h>

using namespace tdr;

namespace {

TEST(StudentCohort, ReproducesPaperClassCounts) {
  CohortResult R = runStudentCohort(59, 2014, 120);
  ASSERT_EQ(R.Students.size(), 59u);
  // Paper §7.4: 5 racy, 29 over-synchronized, 25 matching the tool. The
  // cohort is synthesized in these proportions; what this asserts is that
  // the *tool's grading* assigns every archetype its intended class.
  EXPECT_EQ(R.NumRacy, 5);
  EXPECT_EQ(R.NumOverSync, 29);
  EXPECT_EQ(R.NumMatch, 25);
  EXPECT_EQ(R.GradingAgreements, 59);
  EXPECT_GT(R.ToolCpl, 0u);
}

TEST(StudentCohort, GradingIsSeedStableInTotals) {
  CohortResult A = runStudentCohort(59, 1, 120);
  CohortResult B = runStudentCohort(59, 99, 120);
  // Different seeds draw different archetype mixes, but the class totals
  // are fixed by the dealing proportions.
  EXPECT_EQ(A.NumRacy, B.NumRacy);
  EXPECT_EQ(A.NumOverSync, B.NumOverSync);
  EXPECT_EQ(A.NumMatch, B.NumMatch);
}

TEST(StudentCohort, SmallCohortScalesProportions) {
  CohortResult R = runStudentCohort(12, 7, 120);
  ASSERT_EQ(R.Students.size(), 12u);
  EXPECT_EQ(R.NumRacy + R.NumOverSync + R.NumMatch, 12);
  EXPECT_EQ(R.GradingAgreements, 12);
}

TEST(StudentCohort, OverSynchronizedHaveLongerCpl) {
  CohortResult R = runStudentCohort(59, 2014, 120);
  for (const StudentResult &S : R.Students) {
    if (S.Graded == StudentClass::OverSync) {
      EXPECT_GT(S.Cpl, R.ToolCpl) << S.Archetype;
    }
    if (S.Graded == StudentClass::Match) {
      EXPECT_LE(S.Cpl, R.ToolCpl + R.ToolCpl / 200) << S.Archetype;
    }
    if (S.Graded == StudentClass::Racy) {
      EXPECT_GT(S.RacePairs, 0u) << S.Archetype;
    }
  }
}

} // namespace
