//===- tsan_smoke_test.cpp - Concurrent-repair ThreadSanitizer smoke ------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// Eight repair pipelines running concurrently on a shared process. Under a
// normal build this is a plain stress/correctness test; configure with
// -DTDR_ENABLE_TSAN=ON and ThreadSanitizer turns any cross-job data race
// (shared parser state, clashing metrics instruments, ...) into a test
// failure. The repairer of data races must not have data races itself.
//
//===----------------------------------------------------------------------===//

#include "batch/BatchRepair.h"
#include "obs/Metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace tdr;

namespace {

const char *RacyAccumulator = R"(
var a: int[];
func main() {
  a = new int[1];
  async { a[0] = a[0] + 1; }
  async { a[0] = a[0] + 2; }
  print(a[0]);
}
)";

const char *RacyTree = R"(
var r: int[];
func sum(lo: int, hi: int) {
  if (hi - lo < 4) {
    var s: int = 0;
    for (var i: int = lo; i < hi; i = i + 1) { s = s + i; }
    r[0] = r[0] + s;
    return;
  }
  var mid: int = (lo + hi) / 2;
  async sum(lo, mid);
  async sum(mid, hi);
}
func main() {
  r = new int[1];
  sum(0, arg(0));
  print(r[0]);
}
)";

TEST(TsanSmoke, EightConcurrentRepairs) {
  // Eight jobs on eight workers: every worker runs a full
  // parse/detect/repair pipeline at the same time as all the others.
  std::vector<RepairJob> Jobs;
  for (int I = 0; I != 8; ++I) {
    RepairJob J;
    J.Name = "job-" + std::to_string(I);
    J.Source = (I % 2) ? RacyTree : RacyAccumulator;
    if (I % 2)
      J.Opts.Exec.Args = {16 + 4 * I};
    Jobs.push_back(J);
  }

  obs::MetricsRegistry Parent;
  BatchSummary S;
  {
    obs::ScopedMetrics Scope(Parent);
    S = BatchRepairRunner(8).run(Jobs);
  }

  ASSERT_EQ(S.Results.size(), 8u);
  EXPECT_EQ(S.NumFailed, 0u);
  for (const BatchJobResult &R : S.Results) {
    EXPECT_TRUE(R.Repair.Success) << R.Name << ": " << R.Repair.Error;
    EXPECT_GE(R.Repair.Stats.FinishesInserted, 1u) << R.Name;
  }
  EXPECT_EQ(Parent.counterValue("batch.jobs"), 8u);
}

TEST(TsanSmoke, RepeatedBatchesAreStable) {
  // Back-to-back batches reuse the same process-global state (registries,
  // interned metric names); run a second round to shake out init races.
  std::vector<RepairJob> Jobs(8);
  for (size_t I = 0; I != Jobs.size(); ++I) {
    Jobs[I].Name = "round2-" + std::to_string(I);
    Jobs[I].Source = RacyAccumulator;
  }
  BatchSummary First = BatchRepairRunner(8).run(Jobs);
  BatchSummary Second = BatchRepairRunner(8).run(Jobs);
  ASSERT_EQ(First.Results.size(), Second.Results.size());
  for (size_t I = 0; I != First.Results.size(); ++I)
    EXPECT_EQ(First.Results[I].RepairedSource,
              Second.Results[I].RepairedSource);
}

} // namespace
