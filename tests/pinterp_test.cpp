//===- pinterp_test.cpp - Parallel interpreter tests ----------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// The parallel engine must agree with the sequential engine on race-free
// programs: same program, same input, same output. The benchmark suite's
// correct versions (which the detector certifies race free) are the
// cross-check corpus.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "pinterp/ParallelInterpreter.h"
#include "runtime/Runtime.h"
#include "suite/Benchmarks.h"
#include "suite/Experiment.h"

using namespace tdr;
using namespace tdr::test;

namespace {

TEST(ParallelInterp, SimpleFinishAsync) {
  const char *Src = R"(
var A: int[];
func main() {
  A = new int[100];
  finish {
    for (var i: int = 0; i < 100; i = i + 1) {
      async {
        A[i] = i * i;
      }
    }
  }
  var sum: int = 0;
  for (var i: int = 0; i < 100; i = i + 1) { sum = sum + A[i]; }
  print(sum);
}
)";
  ParsedProgram P = parseAndCheck(Src);
  ASSERT_TRUE(P.ok()) << P.errors();
  Runtime RT(4);
  ExecResult R = runProgramParallel(*P.Prog, RT);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, "328350\n");
}

TEST(ParallelInterp, RuntimeErrorPropagates) {
  const char *Src = R"(
var A: int[];
func main() {
  A = new int[4];
  finish {
    async { A[9] = 1; }
  }
  print(0);
}
)";
  ParsedProgram P = parseAndCheck(Src);
  ASSERT_TRUE(P.ok()) << P.errors();
  Runtime RT(2);
  ExecResult R = runProgramParallel(*P.Prog, RT);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("out of bounds"), std::string::npos) << R.Error;
}

class ParallelVsSequential : public ::testing::TestWithParam<const char *> {};

TEST_P(ParallelVsSequential, SameOutputAsSequential) {
  const BenchmarkSpec *Spec = findBenchmark(GetParam());
  ASSERT_NE(Spec, nullptr);
  LoadedBenchmark B = loadBenchmark(Spec->Source);
  ExecOptions Exec;
  Exec.Args = Spec->RepairArgs;

  ExecResult Seq = runProgram(*B.Prog, Exec);
  ASSERT_TRUE(Seq.Ok) << Seq.Error;

  Runtime RT(4);
  ExecResult Par = runProgramParallel(*B.Prog, RT, Exec);
  ASSERT_TRUE(Par.Ok) << Par.Error;
  EXPECT_EQ(Par.Output, Seq.Output) << Spec->Name;
}

// Benchmarks that draw random numbers only in sequential sections and are
// race free, so the parallel engine must be output-deterministic.
INSTANTIATE_TEST_SUITE_P(
    Suite, ParallelVsSequential,
    ::testing::Values("Fibonacci", "Quicksort", "Mergesort", "Spanning Tree",
                      "Nqueens", "Series", "SOR", "Crypt", "Sparse", "LUFact",
                      "FannKuch", "Mandelbrot"),
    [](const ::testing::TestParamInfo<const char *> &Info) {
      std::string Name = Info.param;
      Name.erase(std::remove(Name.begin(), Name.end(), ' '), Name.end());
      return Name;
    });

TEST(ParallelInterp, RepeatedRunsAreDeterministic) {
  const BenchmarkSpec *Spec = findBenchmark("Mergesort");
  ASSERT_NE(Spec, nullptr);
  LoadedBenchmark B = loadBenchmark(Spec->Source);
  ExecOptions Exec;
  Exec.Args = {128};
  std::string First;
  for (int I = 0; I != 5; ++I) {
    Runtime RT(4);
    ExecResult R = runProgramParallel(*B.Prog, RT, Exec);
    ASSERT_TRUE(R.Ok) << R.Error;
    if (I == 0)
      First = R.Output;
    else
      EXPECT_EQ(R.Output, First) << "run " << I;
  }
}

} // namespace
