//===- RandomProgram.h - Random program generator (test alias) ---*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The random program generator now lives in src/fuzz/RandomProgram.h,
/// shared by the fuzz farm, the benches, and these property tests. This
/// header keeps the historical tdr::test spelling working; the default
/// profile is byte-stable across the promotion (golden hashes pinned in
/// fuzz_reduce_test), so seeded differential tests keep their corpora.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_TESTS_RANDOMPROGRAM_H
#define TDR_TESTS_RANDOMPROGRAM_H

#include "fuzz/RandomProgram.h"

namespace tdr {
namespace test {

using fuzz::RandomProgramGen;

} // namespace test
} // namespace tdr

#endif // TDR_TESTS_RANDOMPROGRAM_H
