//===- interp_test.cpp - Sequential interpreter tests ---------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "interp/Interpreter.h"

using namespace tdr;
using namespace tdr::test;

namespace {

std::string runOutput(const std::string &Src,
                      std::vector<int64_t> Args = {}) {
  ParsedProgram P = parseAndCheck(Src);
  EXPECT_TRUE(P.ok()) << P.errors();
  if (!P.ok())
    return "<compile error>";
  ExecOptions Opts;
  Opts.Args = std::move(Args);
  ExecResult R = runProgram(*P.Prog, Opts);
  EXPECT_TRUE(R.Ok) << R.Error;
  return R.Output;
}

std::string runError(const std::string &Src) {
  ParsedProgram P = parseAndCheck(Src);
  EXPECT_TRUE(P.ok()) << P.errors();
  ExecResult R = runProgram(*P.Prog);
  EXPECT_FALSE(R.Ok);
  return R.Error;
}

TEST(Interp, IntegerArithmetic) {
  EXPECT_EQ(runOutput(R"(
func main() {
  print(7 / 2);
  print(-7 / 2);
  print(7 % 3);
  print(-7 % 3);
  print(1 << 10);
  print(-8 >> 1);
  print(5 & 3);
  print(5 | 3);
  print(5 ^ 3);
  print(~0);
}
)"),
            "3\n-3\n1\n-1\n1024\n-4\n1\n7\n6\n-1\n");
}

TEST(Interp, DoubleArithmeticAndBuiltins) {
  EXPECT_EQ(runOutput(R"(
func main() {
  print(1.5 + 2.25);
  print(sqrt(16.0));
  print(abs(-2.5));
  print(min(1.5, 2.5));
  print(max(1, 2));
  print(floor(2.9));
  print(pow(2.0, 10.0));
  print(toInt(3.99));
  print(toDouble(4));
}
)"),
            "3.75\n4\n2.5\n1.5\n2\n2\n1024\n3\n4\n");
}

TEST(Interp, ShortCircuitEvaluation) {
  // The second operand must not run: it would divide by zero.
  EXPECT_EQ(runOutput(R"(
func boom(): bool { return 1 / 0 > 0; }
func main() {
  var zero: int = 0;
  if (false && boom()) { print(1); } else { print(2); }
  if (true || boom()) { print(3); }
}
)"),
            "2\n3\n");
}

TEST(Interp, GlobalInitializersRunInOrder) {
  EXPECT_EQ(runOutput(R"(
var A: int = 5;
var B: int = A * 2;
var C: int = A + B;
func main() { print(C); }
)"),
            "15\n");
}

TEST(Interp, RecursionAndReturns) {
  EXPECT_EQ(runOutput(R"(
func fact(n: int): int {
  if (n <= 1) { return 1; }
  return n * fact(n - 1);
}
func main() { print(fact(10)); }
)"),
            "3628800\n");
}

TEST(Interp, FunctionWithoutReturnYieldsDefault) {
  EXPECT_EQ(runOutput(R"(
func f(x: int): int {
  if (x > 0) { return 7; }
}
func main() { print(f(0)); print(f(1)); }
)"),
            "0\n7\n");
}

TEST(Interp, AsyncSeesSnapshotOfLocals) {
  // Depth-first semantics: the async runs at its spawn point with a copy
  // of the frame; the parent's later writes are unobservable either way,
  // but the snapshot is what makes that well-defined in parallel runs.
  EXPECT_EQ(runOutput(R"(
var Out: int[];
func main() {
  Out = new int[2];
  var x: int = 10;
  finish {
    async { Out[0] = x; }
  }
  x = 20;
  finish {
    async { Out[1] = x; }
  }
  print(Out[0]);
  print(Out[1]);
}
)"),
            "10\n20\n");
}

TEST(Interp, ArraysAreSharedReferences) {
  EXPECT_EQ(runOutput(R"(
func fill(a: int[], v: int) {
  for (var i: int = 0; i < len(a); i = i + 1) { a[i] = v; }
}
func main() {
  var a: int[] = new int[3];
  var b: int[] = a;
  fill(b, 9);
  print(a[0] + a[1] + a[2]);
}
)"),
            "27\n");
}

TEST(Interp, DeterministicRand) {
  std::string First = runOutput(R"(
func main() {
  randSeed(42);
  print(randInt(1000));
  print(randInt(1000));
}
)");
  std::string Second = runOutput(R"(
func main() {
  randSeed(42);
  print(randInt(1000));
  print(randInt(1000));
}
)");
  EXPECT_EQ(First, Second);
}

TEST(Interp, ArgsBuiltin) {
  EXPECT_EQ(runOutput("func main() { print(arg(0) + arg(1)); print(arg(9)); }",
                      {30, 12}),
            "42\n0\n");
}

TEST(Interp, DivisionByZeroFails) {
  EXPECT_NE(runError("func main() { print(1 / 0); }").find("division by zero"),
            std::string::npos);
  EXPECT_NE(runError("func main() { print(1 % 0); }").find("modulo by zero"),
            std::string::npos);
}

TEST(Interp, IndexOutOfBoundsFails) {
  std::string E = runError(R"(
func main() {
  var a: int[] = new int[3];
  a[3] = 1;
}
)");
  EXPECT_NE(E.find("out of bounds"), std::string::npos) << E;
}

TEST(Interp, NullArrayFails) {
  std::string E = runError(R"(
var A: int[];
func main() { A[0] = 1; }
)");
  EXPECT_NE(E.find("null array"), std::string::npos) << E;
}

TEST(Interp, RunawayLoopHitsWorkLimit) {
  ParsedProgram P = parseAndCheck("func main() { while (true) { } }");
  ASSERT_TRUE(P.ok());
  ExecOptions Opts;
  Opts.WorkLimit = 10000;
  ExecResult R = runProgram(*P.Prog, Opts);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("work limit"), std::string::npos);
}

TEST(Interp, RunawayRecursionHitsDepthLimit) {
  ParsedProgram P = parseAndCheck(R"(
func f(n: int): int { return f(n + 1); }
func main() { print(f(0)); }
)");
  ASSERT_TRUE(P.ok());
  ExecOptions Opts;
  Opts.MaxCallDepth = 100;
  ExecResult R = runProgram(*P.Prog, Opts);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("call depth"), std::string::npos);
}

TEST(Interp, CompoundAssignOnArrayReadsThenWrites) {
  EXPECT_EQ(runOutput(R"(
var A: int[];
func main() {
  A = new int[1];
  A[0] = 5;
  A[0] += 3;
  A[0] *= 2;
  print(A[0]);
}
)"),
            "16\n");
}

TEST(Interp, SerialElisionEquivalence) {
  // async/finish contribute nothing to a sequential execution.
  const char *WithPar = R"(
var S: int = 0;
func main() {
  finish {
    async { S = S + 1; }
    async { S = S + 2; }
  }
  print(S);
}
)";
  EXPECT_EQ(runOutput(WithPar), "3\n");
}

TEST(Interp, WorkIsDeterministic) {
  ParsedProgram P1 = parseAndCheck("func main() { print(arg(0) * 2); }");
  ParsedProgram P2 = parseAndCheck("func main() { print(arg(0) * 2); }");
  ExecOptions O;
  O.Args = {21};
  ExecResult R1 = runProgram(*P1.Prog, O);
  ExecResult R2 = runProgram(*P2.Prog, O);
  EXPECT_EQ(R1.TotalWork, R2.TotalWork);
  EXPECT_EQ(R1.Output, "42\n");
}

} // namespace
