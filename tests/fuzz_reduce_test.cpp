//===- fuzz_reduce_test.cpp - Reducer + fuzz-farm properties --------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// Pins the contracts the fuzz farm's triage story depends on:
//
//  * the promoted generator's default profile is BYTE-STABLE (golden
//    FNV-1a hashes) so every seeded differential corpus in the tree kept
//    its programs across the tests/ -> src/fuzz/ move;
//  * ddmin reduction is deterministic, idempotent (reducing a reduced
//    program is a fixpoint), and 1-minimal at statement granularity on
//    seeded known-failing programs, and shrinks them to a handful of
//    lines;
//  * the differential oracle is clean on generated programs and the fuzz
//    driver's summary JSON parses with the schema fields the check_fuzz.py
//    validator gates CI on.
//
//===----------------------------------------------------------------------===//

#include "RandomProgram.h"

#include "fuzz/Fuzzer.h"
#include "fuzz/Oracle.h"
#include "fuzz/Reduce.h"
#include "race/Detect.h"
#include "support/Json.h"

#include "ast/AstContext.h"
#include "frontend/Parser.h"
#include "sema/Sema.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"

#include <gtest/gtest.h>

using namespace tdr;

namespace {

uint64_t fnv1a(const std::string &S) {
  uint64_t H = 1469598103934665603ull;
  for (char C : S) {
    H ^= static_cast<unsigned char>(C);
    H *= 1099511628211ull;
  }
  return H;
}

size_t countLines(const std::string &S) {
  size_t N = 0;
  for (char C : S)
    N += C == '\n';
  return N;
}

/// True when \p Source is well-formed and MRW ESP-bags detection reports
/// at least one racing pair — the "still fails" predicate used to exercise
/// the reducer the same way a real detector-bug predicate would.
bool stillRaces(const std::string &Source) {
  SourceManager SM("pred.hj", Source);
  DiagnosticsEngine Diags;
  AstContext Ctx;
  Parser P(SM.buffer(), Ctx, Diags);
  Program *Prog = P.parseProgram();
  if (Diags.hasErrors())
    return false;
  runSema(*Prog, Ctx, Diags);
  if (Diags.hasErrors())
    return false;
  Detection D = detectRaces(*Prog, DetectOptions{EspBagsDetector::Mode::MRW,
                                                 DetectBackend::EspBags});
  return D.ok() && !D.Report.Pairs.empty();
}

//===----------------------------------------------------------------------===//
// Generator byte-stability (satellite 5)
//===----------------------------------------------------------------------===//

TEST(RandomProgramGolden, DefaultProfileByteStable) {
  // Golden FNV-1a hashes of the default profile, captured from the
  // pre-promotion tests/RandomProgram.h generator. A mismatch means the
  // shared generator changed the default profile's text and every seeded
  // corpus in the tree silently shifted — change the generator only behind
  // new opt-in switches.
  struct {
    uint64_t Seed;
    uint64_t Hash;
  } const Golden[] = {
      {1, 0x1737cb9223b9fe76ull},     {2, 0x672454e8886b59a5ull},
      {3, 0xd2b6b41542679138ull},     {42, 0x54033b853c2e2159ull},
      {12345, 0xc8f664c63bc66a26ull},
  };
  for (const auto &G : Golden) {
    fuzz::RandomProgramGen Gen(G.Seed);
    EXPECT_EQ(fnv1a(Gen.generate()), G.Hash) << "seed " << G.Seed;
  }
}

TEST(RandomProgramGolden, TestAliasIsSameGenerator) {
  test::RandomProgramGen A(99);
  fuzz::RandomProgramGen B(99);
  EXPECT_EQ(A.generate(), B.generate());
}

TEST(RandomProgramGolden, FuzzProgramDerivationIsDeterministic) {
  for (size_t I : {size_t(0), size_t(1), size_t(2), size_t(17)}) {
    EXPECT_EQ(fuzz::fuzzProgramSeed(7, I), fuzz::fuzzProgramSeed(7, I));
    EXPECT_EQ(fuzz::generateFuzzProgram(7, I),
              fuzz::generateFuzzProgram(7, I));
  }
  // The profile rotation covers all three shapes.
  EXPECT_EQ(fuzz::fuzzProgramProfile(0), fuzz::FuzzProfile::Default);
  EXPECT_EQ(fuzz::fuzzProgramProfile(1), fuzz::FuzzProfile::Constructs);
  EXPECT_EQ(fuzz::fuzzProgramProfile(2), fuzz::FuzzProfile::Sparse);
  EXPECT_EQ(fuzz::fuzzProgramProfile(3), fuzz::FuzzProfile::Default);
}

//===----------------------------------------------------------------------===//
// Reducer properties (satellite 4)
//===----------------------------------------------------------------------===//

TEST(Reduce, ShrinksRacyProgramsSmallDeterministicIdempotentMinimal) {
  for (uint64_t Seed : {3ull, 11ull, 29ull}) {
    fuzz::RandomProgramGen Gen(Seed);
    std::string Source = Gen.generate();
    if (!stillRaces(Source))
      continue; // generator aims for racy programs but does not guarantee

    fuzz::ReduceResult R = fuzz::reduceProgram(Source, stillRaces);
    ASSERT_TRUE(R.PredicateHeld) << "seed " << Seed;
    EXPECT_TRUE(R.Minimal) << "seed " << Seed;
    EXPECT_TRUE(stillRaces(R.Text)) << "seed " << Seed;
    // A minimal racy program is a couple of declarations plus two
    // conflicting accesses — the "minimized to a handful of lines" bar
    // trophies are held to.
    EXPECT_LE(countLines(R.Text), 15u) << "seed " << Seed << ":\n" << R.Text;

    // Deterministic: the same input reduces to byte-identical text.
    fuzz::ReduceResult R2 = fuzz::reduceProgram(Source, stillRaces);
    EXPECT_EQ(R.Text, R2.Text) << "seed " << Seed;
    EXPECT_EQ(R.Tests, R2.Tests) << "seed " << Seed;

    // Idempotent: reducing a reduced program is a fixpoint.
    fuzz::ReduceResult R3 = fuzz::reduceProgram(R.Text, stillRaces);
    EXPECT_EQ(R3.Text, R.Text) << "seed " << Seed;
    EXPECT_TRUE(R3.Minimal) << "seed " << Seed;
    EXPECT_EQ(R3.RemovedStmts, 0u) << "seed " << Seed;

    // 1-minimal: removing any single remaining statement kills the
    // failure.
    size_t Slots = fuzz::countRemovableSlots(R.Text);
    ASSERT_GT(Slots, 0u) << "seed " << Seed;
    for (size_t S = 0; S != Slots; ++S) {
      std::string Removed = fuzz::removeSlot(R.Text, S);
      ASSERT_NE(Removed, R.Text) << "seed " << Seed << " slot " << S;
      EXPECT_FALSE(stillRaces(Removed)) << "seed " << Seed << " slot " << S;
    }
  }
}

TEST(Reduce, PredicateNeverHoldsReturnsInputUntouched) {
  fuzz::RandomProgramGen Gen(5);
  std::string Source = Gen.generate();
  fuzz::ReduceResult R = fuzz::reduceProgram(
      Source, [](const std::string &) { return false; });
  EXPECT_FALSE(R.PredicateHeld);
  EXPECT_EQ(R.Text, Source);
  EXPECT_EQ(R.RemovedStmts, 0u);
}

TEST(Reduce, BudgetExhaustionReportsNotMinimal) {
  fuzz::RandomProgramGen Gen(3);
  std::string Source = Gen.generate();
  if (!stillRaces(Source))
    GTEST_SKIP();
  fuzz::ReduceOptions O;
  O.MaxTests = 3; // far too small to reach the fixpoint
  fuzz::ReduceResult R = fuzz::reduceProgram(Source, stillRaces, O);
  EXPECT_TRUE(R.PredicateHeld);
  EXPECT_FALSE(R.Minimal);
  EXPECT_TRUE(stillRaces(R.Text)); // best-so-far still reproduces
}

TEST(Reduce, SlotHooksRoundTrip) {
  const char *Source = "func main() {\n"
                       "  var x: int = 0;\n"
                       "  x = 1;\n"
                       "  x = 2;\n"
                       "}\n";
  EXPECT_EQ(fuzz::countRemovableSlots(Source), 3u);
  // Out-of-range slot and unparsable text are identity.
  EXPECT_EQ(fuzz::removeSlot(Source, 99), Source);
  EXPECT_EQ(fuzz::countRemovableSlots("not a program"), 0u);
  EXPECT_EQ(fuzz::removeSlot("not a program", 0), "not a program");
  // Removing slot 1 drops the first assignment, not the declaration.
  std::string Removed = fuzz::removeSlot(Source, 1);
  EXPECT_NE(Removed.find("var x"), std::string::npos);
  EXPECT_EQ(Removed.find("x = 1"), std::string::npos);
  EXPECT_NE(Removed.find("x = 2"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Oracle + driver
//===----------------------------------------------------------------------===//

TEST(Oracle, CleanOnGeneratedPrograms) {
  for (size_t I = 0; I != 8; ++I) {
    fuzz::OracleConfig C;
    C.CheckRepair = I % 2 == 0; // keep the test fast
    fuzz::OracleOutcome Out =
        fuzz::runOracle(fuzz::generateFuzzProgram(11, I), C);
    EXPECT_TRUE(Out.clean())
        << "program " << I << ": "
        << fuzz::findingKindName(Out.Findings.front().Kind) << " at "
        << Out.Findings.front().Config << ": " << Out.Findings.front().Detail;
    EXPECT_GT(Out.DetectRuns, 0u);
    EXPECT_GT(Out.ReplayRuns, 0u);
  }
}

TEST(Oracle, FindingKindNamesRoundTrip) {
  for (fuzz::FindingKind K :
       {fuzz::FindingKind::ParseError, fuzz::FindingKind::ExecError,
        fuzz::FindingKind::BackendMismatch,
        fuzz::FindingKind::ReplayDivergence, fuzz::FindingKind::RepairDisagree,
        fuzz::FindingKind::RepairNotConverged}) {
    fuzz::FindingKind Parsed;
    ASSERT_TRUE(fuzz::parseFindingKind(fuzz::findingKindName(K), Parsed));
    EXPECT_EQ(Parsed, K);
  }
  fuzz::FindingKind Unused;
  EXPECT_FALSE(fuzz::parseFindingKind("no-such-kind", Unused));
}

TEST(Oracle, MalformedProgramIsAParseErrorFinding) {
  EXPECT_TRUE(fuzz::oracleFires("func main() { oops", fuzz::OracleConfig(),
                                fuzz::FindingKind::ParseError));
}

TEST(Fuzzer, SummaryJsonParsesWithSchemaFields) {
  fuzz::FuzzOptions O;
  O.Programs = 6;
  O.Jobs = 2;
  O.Seed = 21;
  fuzz::FuzzSummary S = fuzz::runFuzz(O);
  EXPECT_EQ(S.ProgramsRun, 6u);
  EXPECT_TRUE(S.clean());

  json::ParseResult P = json::parse(fuzz::renderFuzzSummaryJson(S, O));
  ASSERT_TRUE(P.Ok) << P.Error;
  EXPECT_EQ(P.Doc.getString("schema"), fuzz::FuzzSummarySchema);
  EXPECT_EQ(static_cast<int>(P.Doc.getNumber("version")),
            fuzz::FuzzSummaryVersion);
  EXPECT_EQ(P.Doc.getNumber("programs_run"), 6);
  EXPECT_EQ(P.Doc.getNumber("programs_skipped"), 0);
  EXPECT_GT(P.Doc.getNumber("detect_runs"), 0);
  const json::Value *Findings = P.Doc.get("findings");
  ASSERT_NE(Findings, nullptr);
  EXPECT_TRUE(Findings->isArray());
  EXPECT_TRUE(Findings->elements().empty());
  const json::Value *Counters = P.Doc.get("counters");
  ASSERT_NE(Counters, nullptr);
  ASSERT_TRUE(Counters->isObject());
  EXPECT_EQ(Counters->getNumber("fuzz.programs"), 6);
}

TEST(Fuzzer, JobCountDoesNotChangeResults) {
  fuzz::FuzzOptions O;
  O.Programs = 8;
  O.Seed = 33;
  O.Jobs = 1;
  fuzz::FuzzSummary S1 = fuzz::runFuzz(O);
  O.Jobs = 4;
  fuzz::FuzzSummary S4 = fuzz::runFuzz(O);
  EXPECT_EQ(S1.ProgramsRun, S4.ProgramsRun);
  EXPECT_EQ(S1.DetectRuns, S4.DetectRuns);
  EXPECT_EQ(S1.ReplayRuns, S4.ReplayRuns);
  EXPECT_EQ(S1.RepairRuns, S4.RepairRuns);
  EXPECT_EQ(S1.Findings.size(), S4.Findings.size());
}

} // namespace
