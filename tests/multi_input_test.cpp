//===- multi_input_test.cpp - Multi-input repair and coverage tests -------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// The paper applies the tool "iteratively for different test inputs" (§2)
// and names test-coverage analysis as future work (§9); both are
// implemented in repair/MultiInput.h.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "race/Detect.h"
#include "repair/MultiInput.h"

using namespace tdr;
using namespace tdr::test;

namespace {

/// A program whose races depend on the input: the async only spawns when
/// arg(0) > 10, so small test inputs cannot observe (or repair) its race.
const char *InputDependent = R"(
var X: int = 0;
var Y: int = 0;
func main() {
  var n: int = arg(0);
  async { X = n; }
  if (n > 10) {
    async { Y = n; }
  }
  print(X + Y);
}
)";

TEST(MultiInput, SecondInputExposesMoreRaces) {
  ParsedProgram P = parseAndCheck(InputDependent);
  ASSERT_TRUE(P.ok()) << P.errors();

  // Repairing with the small input only fixes the X race.
  std::vector<ExecOptions> SmallOnly(1);
  SmallOnly[0].Args = {5};
  MultiRepairResult R1 =
      repairProgramForInputs(*P.Prog, *P.Ctx, SmallOnly);
  ASSERT_TRUE(R1.Success) << R1.Error;
  EXPECT_EQ(R1.FinishesInserted, 1u);

  // The large input still races (the Y async was never exercised).
  ExecOptions Large;
  Large.Args = {20};
  Detection D = detectRaces(*P.Prog, EspBagsDetector::Mode::MRW, Large);
  EXPECT_FALSE(D.Report.Pairs.empty());

  // A second repair round with the large input finishes the job.
  std::vector<ExecOptions> LargeOnly{Large};
  MultiRepairResult R2 =
      repairProgramForInputs(*P.Prog, *P.Ctx, LargeOnly);
  ASSERT_TRUE(R2.Success) << R2.Error;
  EXPECT_GE(R2.FinishesInserted, 1u);
  Detection D2 = detectRaces(*P.Prog, EspBagsDetector::Mode::MRW, Large);
  EXPECT_TRUE(D2.Report.Pairs.empty());
}

TEST(MultiInput, RepairForBothInputsAtOnce) {
  ParsedProgram P = parseAndCheck(InputDependent);
  ASSERT_TRUE(P.ok());
  std::vector<ExecOptions> Inputs(2);
  Inputs[0].Args = {5};
  Inputs[1].Args = {20};
  MultiRepairResult R = repairProgramForInputs(*P.Prog, *P.Ctx, Inputs);
  ASSERT_TRUE(R.Success) << R.Error;
  // Both inputs contributed finishes.
  EXPECT_EQ(R.InputsThatContributed.size(), 2u);
  for (const ExecOptions &E : Inputs) {
    Detection D = detectRaces(*P.Prog, EspBagsDetector::Mode::MRW, E);
    EXPECT_TRUE(D.Report.Pairs.empty());
  }
}

TEST(MultiInput, LaterInputsSeeEarlierFinishes) {
  ParsedProgram P = parseAndCheck(InputDependent);
  ASSERT_TRUE(P.ok());
  std::vector<ExecOptions> Inputs(3);
  Inputs[0].Args = {20}; // exercises everything
  Inputs[1].Args = {5};
  Inputs[2].Args = {30};
  MultiRepairResult R = repairProgramForInputs(*P.Prog, *P.Ctx, Inputs);
  ASSERT_TRUE(R.Success);
  // Only the first input inserts finishes; the rest confirm in one run.
  ASSERT_EQ(R.InputsThatContributed.size(), 1u);
  EXPECT_EQ(R.InputsThatContributed[0], 0u);
  EXPECT_EQ(R.IterationsPerInput[1], 1u);
  EXPECT_EQ(R.IterationsPerInput[2], 1u);
}

TEST(MultiInput, SuccessfulRepairIsFinallyVerified) {
  // Satellite of the repair loop: after the last input's repair, every
  // earlier input is re-verified (a later repair could in principle
  // interact with earlier inputs), and the result says so.
  ParsedProgram P = parseAndCheck(InputDependent);
  ASSERT_TRUE(P.ok());
  std::vector<ExecOptions> Inputs(2);
  Inputs[0].Args = {5};
  Inputs[1].Args = {20};
  MultiRepairResult R = repairProgramForInputs(*P.Prog, *P.Ctx, Inputs);
  ASSERT_TRUE(R.Success) << R.Error;
  EXPECT_TRUE(R.FinalVerified);
  EXPECT_EQ(R.FailedVerifyInput, static_cast<size_t>(-1));
}

TEST(MultiInput, CrashingInputFailsBeforeVerification) {
  const char *CrashesOnNegative = R"(
var X: int = 0;
func main() {
  var a: int[] = new int[arg(0)];
  async { X = 1; }
  print(X);
}
)";
  ParsedProgram P = parseAndCheck(CrashesOnNegative);
  ASSERT_TRUE(P.ok()) << P.errors();
  std::vector<ExecOptions> Inputs(2);
  Inputs[0].Args = {4};
  Inputs[1].Args = {-5}; // negative array dimension: runtime error
  MultiRepairResult R = repairProgramForInputs(*P.Prog, *P.Ctx, Inputs);
  EXPECT_FALSE(R.Success);
  EXPECT_FALSE(R.FinalVerified);
  EXPECT_FALSE(R.Error.empty());
}

TEST(Coverage, DetectsUnexercisedAsyncSites) {
  ParsedProgram P = parseAndCheck(InputDependent);
  ASSERT_TRUE(P.ok());
  std::vector<ExecOptions> Small(1);
  Small[0].Args = {5};
  CoverageReport C = analyzeTestCoverage(*P.Prog, Small);
  ASSERT_EQ(C.Sites.size(), 2u);
  EXPECT_EQ(C.NumExercised, 1u);
  EXPECT_EQ(C.NumUnexercised, 1u);
  EXPECT_FALSE(C.suitable());
  EXPECT_DOUBLE_EQ(C.asyncCoverage(), 0.5);
}

TEST(Coverage, FullCoverageWithAdequateInputs) {
  ParsedProgram P = parseAndCheck(InputDependent);
  ASSERT_TRUE(P.ok());
  std::vector<ExecOptions> Inputs(2);
  Inputs[0].Args = {5};
  Inputs[1].Args = {20};
  CoverageReport C = analyzeTestCoverage(*P.Prog, Inputs);
  EXPECT_TRUE(C.suitable());
  EXPECT_EQ(C.NumUnexercised, 0u);
  // The unconditional async ran on both inputs; the guarded one on one.
  EXPECT_EQ(C.Sites[0].totalInstances(), 2u);
  EXPECT_EQ(C.Sites[1].totalInstances(), 1u);
}

TEST(Coverage, CrashingInputIsReportedNotSkipped) {
  // Regression: analyzeTestCoverage used to `continue` over inputs that
  // failed to execute, so a test set full of crashing inputs could still
  // look "suitable". Failures must be recorded and veto suitability.
  const char *CrashesOnNegative = R"(
var X: int = 0;
func main() {
  var a: int[] = new int[arg(0)];
  async { X = 1; }
  if (arg(0) > 10) {
    async { X = 2; }
  }
}
)";
  ParsedProgram P = parseAndCheck(CrashesOnNegative);
  ASSERT_TRUE(P.ok()) << P.errors();

  std::vector<ExecOptions> Inputs(3);
  Inputs[0].Args = {4};
  Inputs[1].Args = {-5}; // crashes: negative array dimension
  Inputs[2].Args = {20};
  CoverageReport C = analyzeTestCoverage(*P.Prog, Inputs);

  // Both async sites are exercised by the good inputs...
  EXPECT_EQ(C.NumUnexercised, 0u);
  // ...but the crashing input is on record and vetoes suitability.
  ASSERT_EQ(C.FailedInputs.size(), 1u);
  EXPECT_EQ(C.FailedInputs[0].Index, 1u);
  EXPECT_FALSE(C.FailedInputs[0].Error.empty());
  EXPECT_FALSE(C.suitable());

  // Dropping the bad input restores suitability.
  std::vector<ExecOptions> Good{Inputs[0], Inputs[2]};
  CoverageReport C2 = analyzeTestCoverage(*P.Prog, Good);
  EXPECT_TRUE(C2.FailedInputs.empty());
  EXPECT_TRUE(C2.suitable());
}

TEST(Coverage, CountsRecursiveInstances) {
  const char *Fib = R"(
func fib(ret: int[], n: int) {
  if (n < 2) { ret[0] = n; return; }
  var x: int[] = new int[1];
  var y: int[] = new int[1];
  finish {
    async fib(x, n - 1);
    async fib(y, n - 2);
  }
  ret[0] = x[0] + y[0];
}
func main() {
  var r: int[] = new int[1];
  fib(r, arg(0));
  print(r[0]);
}
)";
  ParsedProgram P = parseAndCheck(Fib);
  ASSERT_TRUE(P.ok());
  std::vector<ExecOptions> Inputs(1);
  Inputs[0].Args = {10};
  CoverageReport C = analyzeTestCoverage(*P.Prog, Inputs);
  ASSERT_EQ(C.Sites.size(), 2u);
  EXPECT_TRUE(C.suitable());
  // fib(10): each async site spawns once per internal call.
  EXPECT_GT(C.Sites[0].totalInstances(), 50u);
  EXPECT_EQ(C.Sites[0].totalInstances(), C.Sites[1].totalInstances());
}

} // namespace
