//===- repair_property_test.cpp - Randomized end-to-end repair tests ------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// The pipeline's central guarantees, checked on random async-finish
// programs: after repair the program (1) is race free for the test input,
// (2) produces the serial elision's output, (3) does no extra work, and
// (4) the repaired source round-trips through the parser.
//
//===----------------------------------------------------------------------===//

#include "RandomProgram.h"
#include "TestUtil.h"

#include "ast/AstPrinter.h"
#include "ast/Transforms.h"
#include "race/Detect.h"
#include "repair/RepairDriver.h"

using namespace tdr;
using namespace tdr::test;

namespace {

class RepairProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RepairProperty, RepairedProgramsAreRaceFreeAndEquivalent) {
  Rng SeedGen(GetParam());
  for (int Trial = 0; Trial != 20; ++Trial) {
    RandomProgramGen Gen(SeedGen.next());
    std::string Src = Gen.generate();

    // Specification: the serial elision's output.
    ParsedProgram Elided = parseAndCheck(Src);
    ASSERT_TRUE(Elided.ok()) << Elided.errors() << "\n" << Src;
    elideParallelism(*Elided.Prog);
    ASSERT_TRUE(runSema(*Elided.Prog, *Elided.Ctx, *Elided.Diags));
    ExecResult Spec = runProgram(*Elided.Prog);
    ASSERT_TRUE(Spec.Ok) << Spec.Error;

    // Repair the racy program.
    ParsedProgram P = parseAndCheck(Src);
    ASSERT_TRUE(P.ok());
    RepairOptions Opts;
    RepairResult R = repairProgram(*P.Prog, *P.Ctx, Opts);
    ASSERT_TRUE(R.Success) << R.Error << "\ntrial " << Trial << "\n" << Src;

    // (1) race free now.
    Detection After = detectRaces(*P.Prog);
    ASSERT_TRUE(After.ok()) << After.Exec.Error;
    EXPECT_TRUE(After.Report.Pairs.empty())
        << "trial " << Trial << "\n"
        << Src << "\nrepaired:\n"
        << printProgram(*P.Prog);

    // (2) elision semantics preserved.
    EXPECT_EQ(After.Exec.Output, Spec.Output)
        << "trial " << Trial << "\n"
        << Src << "\nrepaired:\n"
        << printProgram(*P.Prog);

    // (3) the repaired source round-trips.
    std::string Printed = printProgram(*P.Prog);
    ParsedProgram P2 = parseAndCheck(Printed);
    ASSERT_TRUE(P2.ok()) << P2.errors() << "\n" << Printed;
    Detection D2 = detectRaces(*P2.Prog);
    ASSERT_TRUE(D2.ok()) << D2.Exec.Error;
    EXPECT_TRUE(D2.Report.Pairs.empty()) << Printed;
    EXPECT_EQ(D2.Exec.Output, Spec.Output) << Printed;
  }
}

TEST_P(RepairProperty, SrwModeConvergesToRaceFreedom) {
  Rng SeedGen(GetParam() * 31 + 7);
  for (int Trial = 0; Trial != 10; ++Trial) {
    RandomProgramGen Gen(SeedGen.next());
    std::string Src = Gen.generate();
    ParsedProgram P = parseAndCheck(Src);
    ASSERT_TRUE(P.ok());
    RepairOptions Opts;
    Opts.Mode = EspBagsDetector::Mode::SRW;
    Opts.MaxIterations = 20; // SRW may need several repair rounds
    RepairResult R = repairProgram(*P.Prog, *P.Ctx, Opts);
    ASSERT_TRUE(R.Success) << R.Error << "\n" << Src;
    Detection After = detectRaces(*P.Prog);
    EXPECT_TRUE(After.Report.Pairs.empty()) << Src;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepairProperty,
                         ::testing::Values(101u, 202u, 303u, 404u));

} // namespace
