//===- repair_placement_test.cpp - Static placement specifics -------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// Where exactly do the synthesized finishes land? These tests pin the
// paper's motivating placements: quicksort gets its finish around the
// *call* in main (Figure 2), not around the recursive asyncs; Figure 5's
// scope constraint is honored; pre-synchronized programs are repaired
// incrementally and race-free programs are left untouched.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ast/AstPrinter.h"
#include "ast/Transforms.h"
#include "race/Detect.h"
#include "repair/RepairDriver.h"

using namespace tdr;
using namespace tdr::test;

namespace {

/// Repairs and returns the printed program (empty on failure).
std::string repairToSource(const std::string &Src,
                           std::vector<int64_t> Args = {}) {
  RepairOptions Opts;
  Opts.Exec.Args = std::move(Args);
  std::string Out;
  RepairResult R = repairSource(Src, Out, Opts);
  if (!R.Success)
    return std::string();
  return Out;
}

TEST(StaticPlacement, QuicksortFinishGoesAroundTheCallInMain) {
  // Paper Figure 2: "inserting a finish around line 11 is better because
  // it also prevents data races, yet yields more parallelism than a
  // finish statement around lines 6 and 7."
  const char *Src = R"(
var A: int[];
func partition(lo: int, hi: int, out: int[]) {
  var pivot: int = A[(lo + hi) / 2];
  var i: int = lo;
  var j: int = hi;
  while (i <= j) {
    while (A[i] < pivot) { i = i + 1; }
    while (A[j] > pivot) { j = j - 1; }
    if (i <= j) {
      var t: int = A[i]; A[i] = A[j]; A[j] = t;
      i = i + 1; j = j - 1;
    }
  }
  out[0] = i;
  out[1] = j;
}
func quicksort(m: int, n: int) {
  if (m < n) {
    var p: int[] = new int[2];
    partition(m, n, p);
    async quicksort(m, p[1]);
    async quicksort(p[0], n);
  }
}
func main() {
  var n: int = arg(0);
  A = new int[n];
  randSeed(3);
  for (var i: int = 0; i < n; i = i + 1) { A[i] = randInt(1000); }
  quicksort(0, n - 1);
  var ok: bool = true;
  for (var i: int = 1; i < n; i = i + 1) {
    if (A[i - 1] > A[i]) { ok = false; }
  }
  print(ok);
}
)";
  // Reproduction nuance: the paper prefers the finish around the call in
  // main over `finish { async; async; }` inside quicksort, but the two
  // have *identical* critical path length (the parent does nothing after
  // spawning, so a per-level join delays nothing). Our DP therefore may
  // tie-break to either; what the paper actually claims — one finish,
  // race freedom, parallelism equal to the line-11 placement — is what we
  // assert.
  ParsedProgram Expert = parseAndCheck(Src);
  ASSERT_TRUE(Expert.ok());
  // The paper's placement: wrap the quicksort call (statement 4 of main).
  wrapInFinish(*Expert.Ctx, Expert.Prog->mainFunc()->body(), 4, 4);
  ExecOptions Exec;
  Exec.Args = {128};
  Detection ExpertDet =
      detectRaces(*Expert.Prog, EspBagsDetector::Mode::MRW, Exec);
  ASSERT_TRUE(ExpertDet.Report.Pairs.empty())
      << printProgram(*Expert.Prog);
  uint64_t ExpertCpl = ExpertDet.Tree->subtreeCpl(ExpertDet.Tree->root());

  ParsedProgram P = parseAndCheck(Src);
  ASSERT_TRUE(P.ok());
  RepairOptions Opts;
  Opts.Exec = Exec;
  RepairResult R = repairProgram(*P.Prog, *P.Ctx, Opts);
  ASSERT_TRUE(R.Success) << R.Error;
  EXPECT_EQ(R.Stats.FinishesInserted, 1u) << printProgram(*P.Prog);

  Detection D = detectRaces(*P.Prog, EspBagsDetector::Mode::MRW, Exec);
  EXPECT_TRUE(D.Report.Pairs.empty());
  uint64_t RepairCpl = D.Tree->subtreeCpl(D.Tree->root());
  EXPECT_LE(RepairCpl, ExpertCpl + ExpertCpl / 100)
      << printProgram(*P.Prog);
}

TEST(StaticPlacement, Figure5ScopeConstraintRespected) {
  // Paper Figure 5: the races A2 -> A4 and A3 -> A4 cannot be fixed by a
  // finish enclosing A2 and A3 but not A1 — such a program is not well
  // formed. Valid repairs either wrap A2 and A3 separately or wrap the
  // whole if plus A3.
  const char *Src = R"(
var X: int = 0;
var Y: int = 0;
var Z: int = 0;
func spinA() {
  var s: int = 0;
  for (var i: int = 0; i < 30; i = i + 1) { s = s + i; }
  Z = s;
}
func main() {
  if (arg(0) > 0) {
    async spinA();
    async { X = 1; }
  }
  async { Y = 2; }
  var w: int = X + Y;
  print(w);
}
)";
  std::string Out = repairToSource(Src, {1});
  ASSERT_FALSE(Out.empty());

  // The repaired program is race free and parses; moreover no finish can
  // start inside the if and end outside it: re-parse and verify every
  // finish body is entirely inside or entirely outside the if statement.
  ParsedProgram P = parseAndCheck(Out);
  ASSERT_TRUE(P.ok()) << P.errors() << Out;
  Detection D = detectRaces(*P.Prog, EspBagsDetector::Mode::MRW,
                            [] {
                              ExecOptions E;
                              E.Args = {1};
                              return E;
                            }());
  EXPECT_TRUE(D.Report.Pairs.empty()) << Out;
  EXPECT_GE(collectFinishes(*P.Prog).size(), 1u);
}

TEST(StaticPlacement, PartiallySynchronizedProgramKeepsUserFinishes) {
  // "for the sake of generality the program may already contain some
  // finish statements inserted by the programmer" (paper §1).
  const char *Src = R"(
var A: int[];
var B: int[];
func main() {
  A = new int[4];
  B = new int[4];
  finish {
    async { A[0] = 1; }
    async { A[1] = 2; }
  }
  async { B[0] = A[0]; }
  async { B[1] = A[1]; }
  print(B[0] + B[1]);
}
)";
  std::string Out = repairToSource(Src);
  ASSERT_FALSE(Out.empty());
  // The user finish survives, and new synchronization covers the B writes
  // before the print.
  ParsedProgram P = parseAndCheck(Out);
  ASSERT_TRUE(P.ok());
  EXPECT_GE(collectFinishes(*P.Prog).size(), 2u) << Out;
  Detection D = detectRaces(*P.Prog);
  EXPECT_TRUE(D.Report.Pairs.empty()) << Out;
  EXPECT_EQ(D.Exec.Output, "3\n");
}

TEST(StaticPlacement, RaceFreeProgramIsUntouched) {
  const char *Src = R"(
var A: int[];
func main() {
  A = new int[2];
  finish {
    async { A[0] = 1; }
    async { A[1] = 2; }
  }
  print(A[0] + A[1]);
}
)";
  ParsedProgram P = parseAndCheck(Src);
  ASSERT_TRUE(P.ok());
  unsigned FinishesBefore =
      static_cast<unsigned>(collectFinishes(*P.Prog).size());
  RepairOptions Opts;
  RepairResult R = repairProgram(*P.Prog, *P.Ctx, Opts);
  ASSERT_TRUE(R.Success) << R.Error;
  EXPECT_EQ(R.Stats.FinishesInserted, 0u);
  EXPECT_EQ(R.Stats.Iterations, 1u); // one detection confirms race freedom
  EXPECT_EQ(collectFinishes(*P.Prog).size(), FinishesBefore);
}

TEST(StaticPlacement, LoopBodyAsyncGetsFinishAroundTheLoop) {
  // All iterations' asyncs race with the read after the loop; the static
  // repair must wrap the whole loop (or equivalently land before the
  // read), not per-iteration (which would serialize).
  const char *Src = R"(
var A: int[];
func work(i: int) {
  var s: int = 0;
  for (var k: int = 0; k < 40; k = k + 1) { s = s + k; }
  A[i] = s;
}
func main() {
  A = new int[8];
  for (var i: int = 0; i < 8; i = i + 1) {
    async work(i);
  }
  var sum: int = 0;
  for (var i: int = 0; i < 8; i = i + 1) { sum = sum + A[i]; }
  print(sum);
}
)";
  ParsedProgram P = parseAndCheck(Src);
  ASSERT_TRUE(P.ok());

  // Parallelism reference: the expert fix (finish around the loop).
  ParsedProgram Expert = parseAndCheck(Src);
  BlockStmt *Body = Expert.Prog->mainFunc()->body();
  wrapInFinish(*Expert.Ctx, Body, 1, 1); // wrap the spawning for-loop
  Detection ExpertDet = detectRaces(*Expert.Prog);
  ASSERT_TRUE(ExpertDet.Report.Pairs.empty());
  uint64_t ExpertCpl = ExpertDet.Tree->subtreeCpl(ExpertDet.Tree->root());

  RepairOptions Opts;
  RepairResult R = repairProgram(*P.Prog, *P.Ctx, Opts);
  ASSERT_TRUE(R.Success) << R.Error;
  Detection D = detectRaces(*P.Prog);
  ASSERT_TRUE(D.Report.Pairs.empty());
  uint64_t RepairCpl = D.Tree->subtreeCpl(D.Tree->root());
  EXPECT_LE(RepairCpl, ExpertCpl + ExpertCpl / 20)
      << printProgram(*P.Prog);
}

TEST(StaticPlacement, NonBlockLoopBodyAsyncIsWrappable) {
  // `for (...) async f();` — the async statement is a structured-body
  // slot, not a block member; repair must still find a placement.
  const char *Src = R"(
var A: int[];
func work(i: int) { A[i] = i * 3; }
func main() {
  A = new int[6];
  for (var i: int = 0; i < 6; i = i + 1) async work(i);
  var sum: int = 0;
  for (var i: int = 0; i < 6; i = i + 1) { sum = sum + A[i]; }
  print(sum);
}
)";
  std::string Out = repairToSource(Src);
  ASSERT_FALSE(Out.empty());
  ParsedProgram P = parseAndCheck(Out);
  ASSERT_TRUE(P.ok()) << Out;
  Detection D = detectRaces(*P.Prog);
  EXPECT_TRUE(D.Report.Pairs.empty()) << Out;
  EXPECT_EQ(D.Exec.Output, "45\n");
}

TEST(StaticPlacement, DeclarationsAreNotCapturedAwayFromTheirUses) {
  // Wrapping a range that contains a declaration used later would break
  // scoping; the placer must avoid it and the result must still parse.
  const char *Src = R"(
var X: int = 0;
func main() {
  var a: int = 5;
  async { X = a; }
  var b: int = a + 1;
  print(X + b);
}
)";
  std::string Out = repairToSource(Src);
  ASSERT_FALSE(Out.empty()) << "repair failed";
  ParsedProgram P = parseAndCheck(Out);
  ASSERT_TRUE(P.ok()) << P.errors() << "\n" << Out;
  Detection D = detectRaces(*P.Prog);
  EXPECT_TRUE(D.Report.Pairs.empty()) << Out;
  EXPECT_EQ(D.Exec.Output, "11\n");
}

TEST(StaticPlacement, RecursiveSiteRepairedOnceStatically) {
  // One static finish in fib covers every dynamic recursion instance; the
  // repair must not insert one finish per instance.
  const char *Src = R"(
func fib(ret: int[], n: int) {
  if (n < 2) { ret[0] = n; return; }
  var x: int[] = new int[1];
  var y: int[] = new int[1];
  async fib(x, n - 1);
  async fib(y, n - 2);
  ret[0] = x[0] + y[0];
}
func main() {
  var r: int[] = new int[1];
  fib(r, 12);
  print(r[0]);
}
)";
  ParsedProgram P = parseAndCheck(Src);
  ASSERT_TRUE(P.ok());
  RepairOptions Opts;
  RepairResult R = repairProgram(*P.Prog, *P.Ctx, Opts);
  ASSERT_TRUE(R.Success) << R.Error;
  EXPECT_EQ(R.Stats.FinishesInserted, 1u) << printProgram(*P.Prog);
  Detection D = detectRaces(*P.Prog);
  EXPECT_TRUE(D.Report.Pairs.empty());
  EXPECT_EQ(D.Exec.Output, "144\n");
}

} // namespace
