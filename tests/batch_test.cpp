//===- batch_test.cpp - Parallel batch repair runner tests ----------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// The batch runner's contract: N workers produce byte-identical repaired
// programs and identical per-run stats to a sequential run, results come
// back in submission order, and per-job metrics land in per-job
// registries that merge deterministically into the caller's.
//
//===----------------------------------------------------------------------===//

#include "batch/BatchRepair.h"
#include "obs/Metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <vector>

using namespace tdr;

namespace {

/// Two unsynchronized asyncs accumulating into a shared cell.
const char *RacyAccumulator = R"(
var a: int[];
func main() {
  a = new int[1];
  async { a[0] = a[0] + 1; }
  async { a[0] = a[0] + 2; }
  print(a[0]);
}
)";

/// Race only observable when arg(0) > 10.
const char *InputDependent = R"(
var X: int = 0;
var Y: int = 0;
func main() {
  var n: int = arg(0);
  async { X = n; }
  if (n > 10) {
    async { Y = n; }
  }
  print(X + Y);
}
)";

/// Recursive fork/join with a racy reduction into r[0].
const char *RacySum = R"(
var r: int[];
func sum(lo: int, hi: int) {
  if (hi - lo < 4) {
    var s: int = 0;
    for (var i: int = lo; i < hi; i = i + 1) { s = s + i; }
    r[0] = r[0] + s;
    return;
  }
  var mid: int = (lo + hi) / 2;
  async sum(lo, mid);
  async sum(mid, hi);
}
func main() {
  r = new int[1];
  sum(0, arg(0));
  print(r[0]);
}
)";

/// Already race free; the repair must be the identity.
const char *AlreadyClean = R"(
var Z: int = 0;
func main() {
  finish {
    async { Z = 1; }
  }
  print(Z);
}
)";

std::vector<RepairJob> mixedJobs() {
  std::vector<RepairJob> Jobs;
  RepairJob J;
  J.Name = "accumulator";
  J.Source = RacyAccumulator;
  Jobs.push_back(J);
  J.Name = "input-dependent";
  J.Source = InputDependent;
  J.Opts.Exec.Args = {20};
  Jobs.push_back(J);
  J.Name = "racy-sum";
  J.Source = RacySum;
  J.Opts.Exec.Args = {32};
  Jobs.push_back(J);
  J.Name = "already-clean";
  J.Source = AlreadyClean;
  J.Opts.Exec.Args = {};
  Jobs.push_back(J);
  return Jobs;
}

TEST(RunJobsOrdered, EveryIndexExactlyOnce) {
  constexpr size_t N = 100;
  std::vector<std::atomic<unsigned>> Hits(N);
  runJobsOrdered(N, 4, [&](size_t I) { Hits[I].fetch_add(1); });
  for (size_t I = 0; I != N; ++I)
    EXPECT_EQ(Hits[I].load(), 1u) << "index " << I;
}

TEST(RunJobsOrdered, MoreWorkersThanJobs) {
  std::vector<std::atomic<unsigned>> Hits(3);
  runJobsOrdered(3, 16, [&](size_t I) { Hits[I].fetch_add(1); });
  for (size_t I = 0; I != 3; ++I)
    EXPECT_EQ(Hits[I].load(), 1u);
}

TEST(RunJobsOrdered, EmptyAndZeroWorkers) {
  std::atomic<unsigned> Calls{0};
  runJobsOrdered(0, 4, [&](size_t) { Calls.fetch_add(1); });
  EXPECT_EQ(Calls.load(), 0u);
  // Workers == 0 is clamped to one worker, not a no-op.
  runJobsOrdered(5, 0, [&](size_t) { Calls.fetch_add(1); });
  EXPECT_EQ(Calls.load(), 5u);
}

TEST(Batch, ResultsInSubmissionOrder) {
  std::vector<RepairJob> Jobs = mixedJobs();
  BatchSummary S = BatchRepairRunner(4).run(Jobs);
  ASSERT_EQ(S.Results.size(), Jobs.size());
  for (size_t I = 0; I != Jobs.size(); ++I)
    EXPECT_EQ(S.Results[I].Name, Jobs[I].Name);
  EXPECT_EQ(S.NumSucceeded, Jobs.size());
  EXPECT_EQ(S.NumFailed, 0u);
}

TEST(Batch, ParallelMatchesSequentialByteForByte) {
  std::vector<RepairJob> Jobs = mixedJobs();
  BatchSummary Seq = BatchRepairRunner(1).run(Jobs);
  for (unsigned Workers : {4u, 8u}) {
    BatchSummary Par = BatchRepairRunner(Workers).run(Jobs);
    ASSERT_EQ(Par.Results.size(), Seq.Results.size());
    for (size_t I = 0; I != Seq.Results.size(); ++I) {
      const BatchJobResult &A = Seq.Results[I];
      const BatchJobResult &B = Par.Results[I];
      EXPECT_EQ(A.Repair.Success, B.Repair.Success) << A.Name;
      // The repaired program text is byte-identical...
      EXPECT_EQ(A.RepairedSource, B.RepairedSource) << A.Name;
      // ...and so is every deterministic per-run stat.
      EXPECT_EQ(A.Repair.Stats.Iterations, B.Repair.Stats.Iterations);
      EXPECT_EQ(A.Repair.Stats.FinishesInserted,
                B.Repair.Stats.FinishesInserted);
      EXPECT_EQ(A.Repair.Stats.DpstNodes, B.Repair.Stats.DpstNodes);
      EXPECT_EQ(A.Repair.Stats.RawRaces, B.Repair.Stats.RawRaces);
      EXPECT_EQ(A.Repair.Stats.RacePairs, B.Repair.Stats.RacePairs);
    }
  }
}

TEST(Batch, RepairsActuallyInsertFinishes) {
  std::vector<RepairJob> Jobs = mixedJobs();
  BatchSummary S = BatchRepairRunner(4).run(Jobs);
  // Every racy job gained at least one finish; the clean one gained none.
  EXPECT_GE(S.Results[0].Repair.Stats.FinishesInserted, 1u);
  EXPECT_GE(S.Results[1].Repair.Stats.FinishesInserted, 1u);
  EXPECT_GE(S.Results[2].Repair.Stats.FinishesInserted, 1u);
  EXPECT_EQ(S.Results[3].Repair.Stats.FinishesInserted, 0u);
  EXPECT_NE(S.Results[0].RepairedSource.find("finish"), std::string::npos);
}

TEST(Batch, PerJobMetricsAreIsolatedAndMerged) {
  std::vector<RepairJob> Jobs = mixedJobs();

  uint64_t GlobalJobsBefore =
      obs::MetricsRegistry::global().counterValue("batch.jobs");
  obs::MetricsRegistry Parent;
  BatchSummary S;
  {
    obs::ScopedMetrics Scope(Parent);
    S = BatchRepairRunner(4).run(Jobs);
  }

  for (const BatchJobResult &R : S.Results) {
    // Every job carries its own non-trivial metrics dump.
    EXPECT_NE(R.MetricsJson.find("\"detect.runs\""), std::string::npos)
        << R.Name;
    EXPECT_NE(R.MetricsJson.find("\"repair.iterations\""), std::string::npos)
        << R.Name;
  }
  // The caller's registry saw the whole batch: detect.runs merged across
  // jobs matches the per-job iteration counts (each iteration performs
  // exactly one detection run, fresh or replayed). Under TDR_REPLAY_CHECK
  // every replayed detection runs an extra fresh differential.
  uint64_t DetectRunsAcrossJobs = 0;
  for (const BatchJobResult &R : S.Results)
    DetectRunsAcrossJobs += R.Repair.Stats.Iterations;
  const char *RC = std::getenv("TDR_REPLAY_CHECK");
  if (RC && *RC && !(RC[0] == '0' && RC[1] == '\0'))
    DetectRunsAcrossJobs += Parent.counterValue("repair.replays");
  EXPECT_EQ(Parent.counterValue("detect.runs"), DetectRunsAcrossJobs);
  EXPECT_EQ(Parent.counterValue("batch.jobs"), Jobs.size());
  EXPECT_EQ(Parent.counterValue("repair.finishes_inserted"),
            S.Results[0].Repair.Stats.FinishesInserted +
                S.Results[1].Repair.Stats.FinishesInserted +
                S.Results[2].Repair.Stats.FinishesInserted +
                S.Results[3].Repair.Stats.FinishesInserted);
  // Nothing leaked into the global registry from the scoped batch.
  EXPECT_EQ(obs::MetricsRegistry::global().counterValue("batch.jobs"),
            GlobalJobsBefore);
}

TEST(Batch, MergedMetricsMatchSequentialRun) {
  std::vector<RepairJob> Jobs = mixedJobs();

  obs::MetricsRegistry SeqReg, ParReg;
  {
    obs::ScopedMetrics Scope(SeqReg);
    BatchRepairRunner(1).run(Jobs);
  }
  {
    obs::ScopedMetrics Scope(ParReg);
    BatchRepairRunner(8).run(Jobs);
  }
  // Counters add the same totals and gauges keep the submission-order
  // "last run" value either way. (The full dumps are not compared: the
  // repair.*_ms histograms record wall-clock times.)
  for (const char *C :
       {"detect.runs", "espbags.checks", "espbags.reads", "espbags.writes",
        "race.reports_raw", "race.pairs", "dpst.nodes", "dpst.mhp_queries",
        "repair.iterations", "repair.finishes_inserted", "repair.groups",
        "dp.runs", "dp.subproblems", "frontend.parses", "sema.runs",
        "interp.asyncs", "interp.finishes", "batch.jobs"})
    EXPECT_EQ(SeqReg.counterValue(C), ParReg.counterValue(C)) << C;
  for (const char *G :
       {"detect.dpst_nodes", "detect.races_raw", "detect.race_pairs"})
    EXPECT_EQ(SeqReg.gaugeValue(G), ParReg.gaugeValue(G)) << G;
}

TEST(Batch, FailingJobIsReportedNotDropped) {
  std::vector<RepairJob> Jobs = mixedJobs();
  RepairJob Bad;
  Bad.Name = "does-not-compile";
  Bad.Source = "func main() { undeclared = 1; }";
  Jobs.insert(Jobs.begin() + 1, Bad);

  BatchSummary S = BatchRepairRunner(4).run(Jobs);
  ASSERT_EQ(S.Results.size(), Jobs.size());
  EXPECT_EQ(S.NumFailed, 1u);
  EXPECT_EQ(S.NumSucceeded, Jobs.size() - 1);
  EXPECT_FALSE(S.Results[1].Repair.Success);
  EXPECT_FALSE(S.Results[1].Repair.Error.empty());
  // The failure did not shift or corrupt its neighbors.
  EXPECT_EQ(S.Results[0].Name, "accumulator");
  EXPECT_EQ(S.Results[2].Name, "input-dependent");
  EXPECT_TRUE(S.Results[2].Repair.Success);
}

} // namespace
