//===- shadow_diff_test.cpp - Flat vs map shadow differential tests -------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// The flat-shadow fast path (paged direct-map shadow memory, small-vector
// access lists, fused monitor dispatch, step caching) is a pure
// representation change: on every program it must produce the IDENTICAL
// RaceReport as the frozen pre-change detectors in RefDetectors.h. These
// tests check that on ~100 random programs per detector variant, plus the
// pair-key packing and the opt-in MRW reader compaction.
//
// The two-level compressed shadow map (ShadowMemory.h) is held to the same
// bar on the access shapes it exists for: random programs biased to huge
// strided heap indices must produce reports byte-identical to the frozen
// reference across all three production backends, fresh and replayed, and
// the sparse footprint / no-access-page COW invariants are pinned directly.
//
//===----------------------------------------------------------------------===//

#include "RandomProgram.h"
#include "TestUtil.h"

#include "ast/Transforms.h"
#include "race/Detect.h"
#include "race/RefDetectors.h"
#include "race/ShadowMemory.h"
#include "trace/Replay.h"

#include <algorithm>
#include <set>

using namespace tdr;
using namespace tdr::test;

namespace {

/// A report plus the tree its step pointers live in (the pairs point into
/// the Dpst, so it must outlive them).
struct RefRun {
  std::unique_ptr<Dpst> Tree = std::make_unique<Dpst>();
  RaceReport Report;
};

/// Runs \p P under the frozen map-shadow ESP-bags detector with the exact
/// pre-fast-path wiring (builder and detector fanned out by a pipeline).
RefRun runRefEspBags(ParsedProgram &P, EspBagsDetector::Mode Mode) {
  RefRun Run;
  DpstBuilder Builder(*Run.Tree);
  RefEspBagsDetector Det(Mode, Builder);
  MonitorPipeline Pipeline;
  Pipeline.add(&Builder);
  Pipeline.add(&Det);
  ExecOptions Exec;
  Exec.Monitor = &Pipeline;
  ExecResult R = runProgram(*P.Prog, std::move(Exec));
  EXPECT_TRUE(R.Ok) << R.Error;
  Run.Report = Det.takeReport();
  return Run;
}

/// Ditto for the frozen map-shadow Theorem-1 oracle.
RefRun runRefOracle(ParsedProgram &P) {
  RefRun Run;
  DpstBuilder Builder(*Run.Tree);
  RefOracleDetector Det(*Run.Tree, Builder);
  MonitorPipeline Pipeline;
  Pipeline.add(&Builder);
  Pipeline.add(&Det);
  ExecOptions Exec;
  Exec.Monitor = &Pipeline;
  ExecResult R = runProgram(*P.Prog, std::move(Exec));
  EXPECT_TRUE(R.Ok) << R.Error;
  Run.Report = Det.takeReport();
  return Run;
}

/// Runs \p P under the flat-shadow ESP-bags detector with an explicit
/// reader-compaction threshold (detectRaces always leaves compaction off).
RefRun runFlatCompacting(ParsedProgram &P, uint32_t Threshold) {
  RefRun Run;
  DpstBuilder Builder(*Run.Tree);
  EspBagsDetector Det(EspBagsDetector::Mode::MRW, Builder);
  Det.setReaderCompaction(Threshold);
  FusedDetectMonitor<EspBagsDetector> Fused(Builder, Det);
  ExecOptions Exec;
  Exec.Monitor = &Fused;
  ExecResult R = runProgram(*P.Prog, std::move(Exec));
  EXPECT_TRUE(R.Ok) << R.Error;
  Run.Report = Det.takeReport();
  return Run;
}

/// Asserts the two reports are identical record for record. Steps live in
/// different trees, so they are compared by id — node ids are assigned in
/// the canonical execution order and thus stable across runs of the same
/// program.
void expectIdenticalReports(const RaceReport &Flat, const RaceReport &Map,
                            const std::string &Src) {
  EXPECT_EQ(Flat.RawCount, Map.RawCount) << Src;
  ASSERT_EQ(Flat.Pairs.size(), Map.Pairs.size()) << Src;
  for (size_t I = 0; I != Flat.Pairs.size(); ++I) {
    const RacePair &F = Flat.Pairs[I];
    const RacePair &M = Map.Pairs[I];
    EXPECT_EQ(F.Src->id(), M.Src->id()) << "pair " << I << "\n" << Src;
    EXPECT_EQ(F.Snk->id(), M.Snk->id()) << "pair " << I << "\n" << Src;
    EXPECT_TRUE(F.Loc == M.Loc) << "pair " << I << "\n" << Src;
    EXPECT_EQ(F.SrcKind, M.SrcKind) << "pair " << I << "\n" << Src;
    EXPECT_EQ(F.SnkKind, M.SnkKind) << "pair " << I << "\n" << Src;
  }
}

std::set<std::pair<uint32_t, uint32_t>> pairIdSet(const RaceReport &R) {
  std::set<std::pair<uint32_t, uint32_t>> S;
  for (const RacePair &P : R.Pairs)
    S.insert({P.Src->id(), P.Snk->id()});
  return S;
}

//===----------------------------------------------------------------------===//
// Differential: flat shadow == frozen map shadow on random programs
//===----------------------------------------------------------------------===//

class FlatVsMapShadow : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FlatVsMapShadow, EspBagsReportsAreIdentical) {
  Rng SeedGen(GetParam());
  for (int Trial = 0; Trial != 25; ++Trial) {
    RandomProgramGen Gen(SeedGen.next());
    std::string Src = Gen.generate();
    ParsedProgram P = parseAndCheck(Src);
    ASSERT_TRUE(P.ok()) << P.errors() << "\n" << Src;

    for (EspBagsDetector::Mode Mode :
         {EspBagsDetector::Mode::SRW, EspBagsDetector::Mode::MRW}) {
      Detection Flat = detectRaces(*P.Prog, Mode);
      ASSERT_TRUE(Flat.ok()) << Flat.Exec.Error << "\n" << Src;
      RefRun Map = runRefEspBags(P, Mode);
      expectIdenticalReports(Flat.Report, Map.Report, Src);
    }
  }
}

TEST_P(FlatVsMapShadow, OracleReportsAreIdentical) {
  Rng SeedGen(GetParam() ^ 0x9e3779b9);
  // The Theorem-1 oracle is O(tree depth) per access pair; fewer trials.
  for (int Trial = 0; Trial != 10; ++Trial) {
    RandomProgramGen Gen(SeedGen.next());
    std::string Src = Gen.generate();
    ParsedProgram P = parseAndCheck(Src);
    ASSERT_TRUE(P.ok()) << P.errors() << "\n" << Src;

    Detection Flat = detectRacesOracle(*P.Prog);
    ASSERT_TRUE(Flat.ok()) << Flat.Exec.Error << "\n" << Src;
    RefRun Map = runRefOracle(P);
    expectIdenticalReports(Flat.Report, Map.Report, Src);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatVsMapShadow,
                         ::testing::Values(101u, 202u, 303u, 404u));

//===----------------------------------------------------------------------===//
// Differential: two-level shadow on sparse giant heaps, all backends
//===----------------------------------------------------------------------===//

/// Records one interpretation of \p P for the replayed leg.
trace::InputTrace recordTrace(ParsedProgram &P) {
  trace::InputTrace T;
  trace::RecorderMonitor Rec(T.Log);
  ExecOptions E;
  E.Monitor = &Rec;
  T.Exec = runProgram(*P.Prog, E);
  Rec.flush();
  return T;
}

TEST(SparseHeapDifferential, AllBackendsMatchFrozenRefFreshAndReplayed) {
  // Sparse-heap profile: 2^18-cell arrays, indices biased to hot low
  // cells, a hot page at the top of the span, and page-hostile stride
  // sweeps — the distribution the two-level map's table, no-access page,
  // and one-entry cache all have to get right. Every production backend
  // must match the frozen map-shadow reference byte for byte, both on a
  // fresh interpretation and on a replayed event log.
  Rng SeedGen(0x5AD5E001);
  for (int Trial = 0; Trial != 6; ++Trial) {
    RandomProgramGen Gen(SeedGen.next());
    Gen.enableSparseHeap();
    std::string Src = Gen.generate();
    ParsedProgram P = parseAndCheck(Src);
    ASSERT_TRUE(P.ok()) << P.errors() << "\n" << Src;

    trace::InputTrace T = recordTrace(P);
    ASSERT_TRUE(T.Exec.Ok) << T.Exec.Error << "\n" << Src;
    FinishEditMap NoEdits;
    trace::ReplayPlan Plan = trace::buildReplayPlan(*P.Prog, NoEdits);

    for (EspBagsDetector::Mode Mode :
         {EspBagsDetector::Mode::SRW, EspBagsDetector::Mode::MRW}) {
      RefRun Ref = runRefEspBags(P, Mode);
      std::string RefKey = renderRaceReportKey(Ref.Report);

      for (DetectBackend Backend :
           {DetectBackend::EspBags, DetectBackend::VectorClock,
            DetectBackend::Par}) {
        DetectOptions Opts;
        Opts.Mode = Mode;
        Opts.Backend = Backend;

        Detection Fresh = detectRaces(*P.Prog, Opts);
        ASSERT_TRUE(Fresh.ok()) << Fresh.Exec.Error << "\n" << Src;
        EXPECT_EQ(renderRaceReportKey(Fresh.Report), RefKey)
            << "fresh " << detectBackendName(Backend) << " mode "
            << static_cast<int>(Mode) << "\n"
            << Src;

        Detection Replayed = detectRaces(*P.Prog, Opts, T, Plan);
        ASSERT_TRUE(Replayed.ok()) << Replayed.Exec.Error << "\n" << Src;
        EXPECT_EQ(renderRaceReportKey(Replayed.Report), RefKey)
            << "replayed " << detectBackendName(Backend) << " mode "
            << static_cast<int>(Mode) << "\n"
            << Src;
      }
    }
  }
}

TEST(SparseHeapDifferential, OracleMatchesFrozenRefOnSparseHeaps) {
  Rng SeedGen(0x5AD5E002);
  // The oracle walks the tree per access pair; a couple of programs is
  // plenty to cross-check the shared shadow plumbing.
  for (int Trial = 0; Trial != 2; ++Trial) {
    RandomProgramGen Gen(SeedGen.next());
    Gen.enableSparseHeap();
    std::string Src = Gen.generate();
    ParsedProgram P = parseAndCheck(Src);
    ASSERT_TRUE(P.ok()) << P.errors() << "\n" << Src;

    Detection Fresh = detectRacesOracle(*P.Prog);
    ASSERT_TRUE(Fresh.ok()) << Fresh.Exec.Error << "\n" << Src;
    RefRun Ref = runRefOracle(P);
    expectIdenticalReports(Fresh.Report, Ref.Report, Src);
  }
}

//===----------------------------------------------------------------------===//
// Two-level shadow map: footprint and no-access-page COW invariants
//===----------------------------------------------------------------------===//

/// Inline-lane record: small, all-zero-init, trivially destructible.
struct InlineRec {
  static constexpr bool AllZeroInit = true;
  uint32_t Epoch = 0;
};

/// Slab-lane record: too big for a page cell, so pages hold 4-byte slot
/// references into the dense slab.
struct BigRec {
  static constexpr bool AllZeroInit = true;
  uint64_t A = 0;
  uint64_t B = 0;
  uint64_t C = 0;
};

static_assert(ShadowMemory<InlineRec>::InlineCells,
              "small zero-init records must take the inline lane");
static_assert(!ShadowMemory<BigRec>::InlineCells,
              "large records must take the compact slab lane");

TEST(TwoLevelShadow, DistantArrayIdsStayCompact) {
  // Regression: the dense baseline resizes its id-indexed table to the
  // highest array id, so two arrays whose ids differ by 10^6 committed
  // megabytes before a single element was shadowed. The two-level map
  // hashes (id, page) and must stay in the kilobytes.
  constexpr uint32_t FarId = 1000000;
  ShadowMemory<InlineRec> Sparse;
  Sparse.slot(MemLoc::elem(0, 5)).Epoch = 1;
  Sparse.slot(MemLoc::elem(FarId, 5)).Epoch = 2;
  EXPECT_EQ(Sparse.numPrivatePages(), 2u);
  EXPECT_LT(Sparse.bytesUsed(), 64u * 1024);
  EXPECT_EQ(Sparse.peek(MemLoc::elem(0, 5)).Epoch, 1u);
  EXPECT_EQ(Sparse.peek(MemLoc::elem(FarId, 5)).Epoch, 2u);

  // The preserved dense baseline demonstrates the blow-up being fixed:
  // its ArrayTable alone is FarId+1 pointers.
  DenseShadowMemory<InlineRec> Dense;
  Dense.slot(MemLoc::elem(0, 5)).Epoch = 1;
  Dense.slot(MemLoc::elem(FarId, 5)).Epoch = 2;
  EXPECT_GE(Dense.bytesUsed(), (FarId + 1) * sizeof(void *));
}

TEST(TwoLevelShadow, GiantElementIndicesStayCompact) {
  // One access to element ~2^40 must commit one 64-cell page, not a dense
  // index structure proportional to the touched index.
  ShadowMemory<InlineRec> S;
  constexpr int64_t Giant = (1ll << 40) + 123;
  S.slot(MemLoc::elem(3, Giant)).Epoch = 7;
  S.slot(MemLoc::elem(3, 0)).Epoch = 9;
  EXPECT_EQ(S.numPrivatePages(), 2u);
  EXPECT_LT(S.bytesUsed(), 64u * 1024);
  EXPECT_EQ(S.peek(MemLoc::elem(3, Giant)).Epoch, 7u);
  EXPECT_EQ(S.peek(MemLoc::elem(3, 0)).Epoch, 9u);
}

TEST(TwoLevelShadow, PeekAliasesNoAccessPageUntilFirstWrite) {
  ShadowMemory<InlineRec> S;
  size_t Baseline = S.bytesUsed();

  // Untouched ranges alias the shared read-only no-access page: peek
  // resolves to zero records without materializing anything.
  EXPECT_EQ(S.peek(MemLoc::elem(42, 1ll << 30)).Epoch, 0u);
  EXPECT_EQ(S.peek(MemLoc::elem(7, 0)).Epoch, 0u);
  EXPECT_EQ(S.peek(MemLoc::global(3)).Epoch, 0u);
  EXPECT_EQ(S.numPrivatePages(), 0u);
  EXPECT_EQ(S.bytesUsed(), Baseline);

  // First slot() copy-on-writes a private page from the zero image; the
  // written cell sticks and its 63 page neighbors read as untouched.
  S.slot(MemLoc::elem(42, 1ll << 30)).Epoch = 5;
  EXPECT_EQ(S.numPrivatePages(), 1u);
  EXPECT_EQ(S.peek(MemLoc::elem(42, 1ll << 30)).Epoch, 5u);
  EXPECT_EQ(S.peek(MemLoc::elem(42, (1ll << 30) + 1)).Epoch, 0u);
  EXPECT_EQ(S.numPrivatePages(), 1u); // neighbor peek did not materialize
}

TEST(TwoLevelShadow, SlabLanePeeksWithoutMaterializing) {
  ShadowMemory<BigRec> S;
  S.slot(MemLoc::elem(1, 100)).A = 11;
  S.slot(MemLoc::elem(1, 5000000)).B = 22;
  size_t AfterWrites = S.bytesUsed();
  // Peeking untouched neighbors (same page and far away) allocates no
  // slab records.
  EXPECT_EQ(S.peek(MemLoc::elem(1, 101)).A, 0u);
  EXPECT_EQ(S.peek(MemLoc::elem(9, 1ll << 35)).A, 0u);
  EXPECT_EQ(S.bytesUsed(), AfterWrites);
  EXPECT_EQ(S.peek(MemLoc::elem(1, 100)).A, 11u);
  EXPECT_EQ(S.peek(MemLoc::elem(1, 5000000)).B, 22u);
  // Slab-lane references are stable: re-resolving yields the same record.
  BigRec &R1 = S.slot(MemLoc::elem(1, 100));
  EXPECT_EQ(&R1, &S.slot(MemLoc::elem(1, 100)));
}

TEST(TwoLevelShadow, ForRunSweepsConsecutiveCellsAcrossPages) {
  ShadowMemory<InlineRec> S;
  // A run straddling a page boundary (indices 60..69 with 64-cell pages)
  // must visit every location once, in ascending order, and hand out the
  // same cells slot() resolves.
  constexpr int64_t Start = 60;
  constexpr uint64_t N = 10;
  uint64_t Seen = 0;
  S.forRun(MemLoc::elem(9, Start), N, [&](InlineRec &R, MemLoc At) {
    EXPECT_EQ(At.Id, 9u);
    EXPECT_EQ(At.Index, Start + static_cast<int64_t>(Seen));
    R.Epoch = static_cast<uint32_t>(At.Index);
    ++Seen;
  });
  EXPECT_EQ(Seen, N);
  EXPECT_EQ(S.numPrivatePages(), 2u);
  for (int64_t I = Start; I != Start + static_cast<int64_t>(N); ++I)
    EXPECT_EQ(S.slot(MemLoc::elem(9, I)).Epoch, static_cast<uint32_t>(I));
}

//===----------------------------------------------------------------------===//
// MRW reader compaction: lossy enumeration, lossless detection
//===----------------------------------------------------------------------===//

TEST(ReaderCompaction, PairsSubsetAndDetectionPreserved) {
  Rng SeedGen(777);
  for (int Trial = 0; Trial != 25; ++Trial) {
    RandomProgramGen Gen(SeedGen.next());
    std::string Src = Gen.generate();
    ParsedProgram P = parseAndCheck(Src);
    ASSERT_TRUE(P.ok()) << P.errors() << "\n" << Src;

    Detection Full = detectRaces(*P.Prog, EspBagsDetector::Mode::MRW);
    ASSERT_TRUE(Full.ok());
    // Aggressive threshold so compaction actually fires on the 8-cell
    // random programs.
    RefRun Compacted = runFlatCompacting(P, /*Threshold=*/2);

    auto FullSet = pairIdSet(Full.Report);
    auto CompactSet = pairIdSet(Compacted.Report);
    EXPECT_TRUE(std::includes(FullSet.begin(), FullSet.end(),
                              CompactSet.begin(), CompactSet.end()))
        << Src;
    // Compaction keeps one reader per union-find representative, which is
    // enough to keep *detecting* every race even when it no longer
    // *enumerates* every racing pair.
    EXPECT_EQ(CompactSet.empty(), FullSet.empty()) << Src;
  }
}

//===----------------------------------------------------------------------===//
// Extended constructs through the shadow fast paths
//===----------------------------------------------------------------------===//

TEST(ConstructShadow, EspBagsMatchesOracleOnConstructPrograms) {
  // The frozen map-shadow references predate future/isolated and stay
  // frozen, so construct-generator programs are differentialed against the
  // production Theorem-1 oracle instead: the flat-shadow ESP-bags fast
  // path must agree on every race pair when futures join subtrees and
  // isolated sections commute.
  Rng SeedGen(31337);
  for (int Trial = 0; Trial != 15; ++Trial) {
    RandomProgramGen Gen(SeedGen.next());
    Gen.enableConstructs();
    std::string Src = Gen.generate();
    ParsedProgram P = parseAndCheck(Src);
    ASSERT_TRUE(P.ok()) << P.errors() << "\n" << Src;

    Detection Bags = detectRaces(*P.Prog, EspBagsDetector::Mode::MRW);
    ASSERT_TRUE(Bags.ok()) << Bags.Exec.Error << "\n" << Src;
    Detection Oracle = detectRacesOracle(*P.Prog);
    ASSERT_TRUE(Oracle.ok()) << Oracle.Exec.Error << "\n" << Src;
    EXPECT_EQ(pairIdSet(Bags.Report), pairIdSet(Oracle.Report)) << Src;
    EXPECT_EQ(Bags.Report.RawCount, Oracle.Report.RawCount) << Src;
  }
}

TEST(ConstructShadow, SparseHeapConstructProgramsAgreeWithOracle) {
  // Same differential with the sparse-heap profile on top: giant strided
  // indices drive the two-level shadow map while future/force joins and
  // isolated sections shape the happens-before relation.
  Rng SeedGen(424242);
  for (int Trial = 0; Trial != 6; ++Trial) {
    RandomProgramGen Gen(SeedGen.next());
    Gen.enableSparseHeap();
    Gen.enableConstructs();
    std::string Src = Gen.generate();
    ParsedProgram P = parseAndCheck(Src);
    ASSERT_TRUE(P.ok()) << P.errors() << "\n" << Src;

    Detection Bags = detectRaces(*P.Prog, EspBagsDetector::Mode::MRW);
    ASSERT_TRUE(Bags.ok()) << Bags.Exec.Error << "\n" << Src;
    Detection Oracle = detectRacesOracle(*P.Prog);
    ASSERT_TRUE(Oracle.ok()) << Oracle.Exec.Error << "\n" << Src;
    EXPECT_EQ(pairIdSet(Bags.Report), pairIdSet(Oracle.Report)) << Src;
    EXPECT_EQ(Bags.Report.RawCount, Oracle.Report.RawCount) << Src;
  }
}

//===----------------------------------------------------------------------===//
// Pair-key packing
//===----------------------------------------------------------------------===//

TEST(RacePairKey, DistinctPairsGetDistinctKeys) {
  // Regression: a key built by hashing or xor-folding the two ids would
  // collide when halves coincide across pairs; keeping each id in its own
  // 32-bit half must not.
  EXPECT_NE(packRacePairKey(1, 2), packRacePairKey(1, 3));
  EXPECT_NE(packRacePairKey(1, 2), packRacePairKey(2, 2));
  // Same multiset of halves in different positions: {0,x} vs {x,x}.
  EXPECT_NE(packRacePairKey(0, 7), packRacePairKey(7, 7));
  // Swapping which id contributes which half must not alias another pair.
  EXPECT_NE(packRacePairKey(2, 1), packRacePairKey(1, 1));
  EXPECT_NE(packRacePairKey(0, 1), packRacePairKey(1, 0x10000));
}

TEST(RacePairKey, NormalizedOnUnorderedPair) {
  EXPECT_EQ(packRacePairKey(3, 9), packRacePairKey(9, 3));
  EXPECT_EQ(packRacePairKey(0, 0xffffffffu), packRacePairKey(0xffffffffu, 0));
  EXPECT_EQ(packRacePairKey(5, 5), packRacePairKey(5, 5));
}

TEST(RacePairKey, LargeIdsKeepTheirBits) {
  uint32_t A = 0xdeadbeefu, B = 0x12345678u;
  uint64_t K = packRacePairKey(A, B);
  EXPECT_EQ(static_cast<uint32_t>(K >> 32), B); // smaller id in high half
  EXPECT_EQ(static_cast<uint32_t>(K), A);
}

} // namespace
