//===- shadow_diff_test.cpp - Flat vs map shadow differential tests -------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// The flat-shadow fast path (paged direct-map shadow memory, small-vector
// access lists, fused monitor dispatch, step caching) is a pure
// representation change: on every program it must produce the IDENTICAL
// RaceReport as the frozen pre-change detectors in RefDetectors.h. These
// tests check that on ~100 random programs per detector variant, plus the
// pair-key packing and the opt-in MRW reader compaction.
//
//===----------------------------------------------------------------------===//

#include "RandomProgram.h"
#include "TestUtil.h"

#include "race/Detect.h"
#include "race/RefDetectors.h"

#include <algorithm>
#include <set>

using namespace tdr;
using namespace tdr::test;

namespace {

/// A report plus the tree its step pointers live in (the pairs point into
/// the Dpst, so it must outlive them).
struct RefRun {
  std::unique_ptr<Dpst> Tree = std::make_unique<Dpst>();
  RaceReport Report;
};

/// Runs \p P under the frozen map-shadow ESP-bags detector with the exact
/// pre-fast-path wiring (builder and detector fanned out by a pipeline).
RefRun runRefEspBags(ParsedProgram &P, EspBagsDetector::Mode Mode) {
  RefRun Run;
  DpstBuilder Builder(*Run.Tree);
  RefEspBagsDetector Det(Mode, Builder);
  MonitorPipeline Pipeline;
  Pipeline.add(&Builder);
  Pipeline.add(&Det);
  ExecOptions Exec;
  Exec.Monitor = &Pipeline;
  ExecResult R = runProgram(*P.Prog, std::move(Exec));
  EXPECT_TRUE(R.Ok) << R.Error;
  Run.Report = Det.takeReport();
  return Run;
}

/// Ditto for the frozen map-shadow Theorem-1 oracle.
RefRun runRefOracle(ParsedProgram &P) {
  RefRun Run;
  DpstBuilder Builder(*Run.Tree);
  RefOracleDetector Det(*Run.Tree, Builder);
  MonitorPipeline Pipeline;
  Pipeline.add(&Builder);
  Pipeline.add(&Det);
  ExecOptions Exec;
  Exec.Monitor = &Pipeline;
  ExecResult R = runProgram(*P.Prog, std::move(Exec));
  EXPECT_TRUE(R.Ok) << R.Error;
  Run.Report = Det.takeReport();
  return Run;
}

/// Runs \p P under the flat-shadow ESP-bags detector with an explicit
/// reader-compaction threshold (detectRaces always leaves compaction off).
RefRun runFlatCompacting(ParsedProgram &P, uint32_t Threshold) {
  RefRun Run;
  DpstBuilder Builder(*Run.Tree);
  EspBagsDetector Det(EspBagsDetector::Mode::MRW, Builder);
  Det.setReaderCompaction(Threshold);
  FusedDetectMonitor<EspBagsDetector> Fused(Builder, Det);
  ExecOptions Exec;
  Exec.Monitor = &Fused;
  ExecResult R = runProgram(*P.Prog, std::move(Exec));
  EXPECT_TRUE(R.Ok) << R.Error;
  Run.Report = Det.takeReport();
  return Run;
}

/// Asserts the two reports are identical record for record. Steps live in
/// different trees, so they are compared by id — node ids are assigned in
/// the canonical execution order and thus stable across runs of the same
/// program.
void expectIdenticalReports(const RaceReport &Flat, const RaceReport &Map,
                            const std::string &Src) {
  EXPECT_EQ(Flat.RawCount, Map.RawCount) << Src;
  ASSERT_EQ(Flat.Pairs.size(), Map.Pairs.size()) << Src;
  for (size_t I = 0; I != Flat.Pairs.size(); ++I) {
    const RacePair &F = Flat.Pairs[I];
    const RacePair &M = Map.Pairs[I];
    EXPECT_EQ(F.Src->id(), M.Src->id()) << "pair " << I << "\n" << Src;
    EXPECT_EQ(F.Snk->id(), M.Snk->id()) << "pair " << I << "\n" << Src;
    EXPECT_TRUE(F.Loc == M.Loc) << "pair " << I << "\n" << Src;
    EXPECT_EQ(F.SrcKind, M.SrcKind) << "pair " << I << "\n" << Src;
    EXPECT_EQ(F.SnkKind, M.SnkKind) << "pair " << I << "\n" << Src;
  }
}

std::set<std::pair<uint32_t, uint32_t>> pairIdSet(const RaceReport &R) {
  std::set<std::pair<uint32_t, uint32_t>> S;
  for (const RacePair &P : R.Pairs)
    S.insert({P.Src->id(), P.Snk->id()});
  return S;
}

//===----------------------------------------------------------------------===//
// Differential: flat shadow == frozen map shadow on random programs
//===----------------------------------------------------------------------===//

class FlatVsMapShadow : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FlatVsMapShadow, EspBagsReportsAreIdentical) {
  Rng SeedGen(GetParam());
  for (int Trial = 0; Trial != 25; ++Trial) {
    RandomProgramGen Gen(SeedGen.next());
    std::string Src = Gen.generate();
    ParsedProgram P = parseAndCheck(Src);
    ASSERT_TRUE(P.ok()) << P.errors() << "\n" << Src;

    for (EspBagsDetector::Mode Mode :
         {EspBagsDetector::Mode::SRW, EspBagsDetector::Mode::MRW}) {
      Detection Flat = detectRaces(*P.Prog, Mode);
      ASSERT_TRUE(Flat.ok()) << Flat.Exec.Error << "\n" << Src;
      RefRun Map = runRefEspBags(P, Mode);
      expectIdenticalReports(Flat.Report, Map.Report, Src);
    }
  }
}

TEST_P(FlatVsMapShadow, OracleReportsAreIdentical) {
  Rng SeedGen(GetParam() ^ 0x9e3779b9);
  // The Theorem-1 oracle is O(tree depth) per access pair; fewer trials.
  for (int Trial = 0; Trial != 10; ++Trial) {
    RandomProgramGen Gen(SeedGen.next());
    std::string Src = Gen.generate();
    ParsedProgram P = parseAndCheck(Src);
    ASSERT_TRUE(P.ok()) << P.errors() << "\n" << Src;

    Detection Flat = detectRacesOracle(*P.Prog);
    ASSERT_TRUE(Flat.ok()) << Flat.Exec.Error << "\n" << Src;
    RefRun Map = runRefOracle(P);
    expectIdenticalReports(Flat.Report, Map.Report, Src);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatVsMapShadow,
                         ::testing::Values(101u, 202u, 303u, 404u));

//===----------------------------------------------------------------------===//
// MRW reader compaction: lossy enumeration, lossless detection
//===----------------------------------------------------------------------===//

TEST(ReaderCompaction, PairsSubsetAndDetectionPreserved) {
  Rng SeedGen(777);
  for (int Trial = 0; Trial != 25; ++Trial) {
    RandomProgramGen Gen(SeedGen.next());
    std::string Src = Gen.generate();
    ParsedProgram P = parseAndCheck(Src);
    ASSERT_TRUE(P.ok()) << P.errors() << "\n" << Src;

    Detection Full = detectRaces(*P.Prog, EspBagsDetector::Mode::MRW);
    ASSERT_TRUE(Full.ok());
    // Aggressive threshold so compaction actually fires on the 8-cell
    // random programs.
    RefRun Compacted = runFlatCompacting(P, /*Threshold=*/2);

    auto FullSet = pairIdSet(Full.Report);
    auto CompactSet = pairIdSet(Compacted.Report);
    EXPECT_TRUE(std::includes(FullSet.begin(), FullSet.end(),
                              CompactSet.begin(), CompactSet.end()))
        << Src;
    // Compaction keeps one reader per union-find representative, which is
    // enough to keep *detecting* every race even when it no longer
    // *enumerates* every racing pair.
    EXPECT_EQ(CompactSet.empty(), FullSet.empty()) << Src;
  }
}

//===----------------------------------------------------------------------===//
// Pair-key packing
//===----------------------------------------------------------------------===//

TEST(RacePairKey, DistinctPairsGetDistinctKeys) {
  // Regression: a key built by hashing or xor-folding the two ids would
  // collide when halves coincide across pairs; keeping each id in its own
  // 32-bit half must not.
  EXPECT_NE(packRacePairKey(1, 2), packRacePairKey(1, 3));
  EXPECT_NE(packRacePairKey(1, 2), packRacePairKey(2, 2));
  // Same multiset of halves in different positions: {0,x} vs {x,x}.
  EXPECT_NE(packRacePairKey(0, 7), packRacePairKey(7, 7));
  // Swapping which id contributes which half must not alias another pair.
  EXPECT_NE(packRacePairKey(2, 1), packRacePairKey(1, 1));
  EXPECT_NE(packRacePairKey(0, 1), packRacePairKey(1, 0x10000));
}

TEST(RacePairKey, NormalizedOnUnorderedPair) {
  EXPECT_EQ(packRacePairKey(3, 9), packRacePairKey(9, 3));
  EXPECT_EQ(packRacePairKey(0, 0xffffffffu), packRacePairKey(0xffffffffu, 0));
  EXPECT_EQ(packRacePairKey(5, 5), packRacePairKey(5, 5));
}

TEST(RacePairKey, LargeIdsKeepTheirBits) {
  uint32_t A = 0xdeadbeefu, B = 0x12345678u;
  uint64_t K = packRacePairKey(A, B);
  EXPECT_EQ(static_cast<uint32_t>(K >> 32), B); // smaller id in high half
  EXPECT_EQ(static_cast<uint32_t>(K), A);
}

} // namespace
