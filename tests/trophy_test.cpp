//===- trophy_test.cpp - Trophy corpus regression runner ------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// Runs the checked-in trophy corpus (tests/trophies/): every trophy is a
// minimized fuzz finding persisted with its oracle configuration, and this
// runner turns the corpus into permanent regression tests. "fixed"
// trophies must be clean under the full differential oracle (the bug they
// minimized stays fixed); "open" trophies must still fire their recorded
// finding kind (the reproducer is still a reproducer — flip to "fixed"
// when the bug is repaired). Also pins the trophy file format round-trip.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Oracle.h"
#include "fuzz/Trophy.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

using namespace tdr;

#ifndef TDR_TROPHY_DIR
#error "build must define TDR_TROPHY_DIR (path to tests/trophies)"
#endif

namespace {

std::vector<fuzz::Trophy> loadCorpus() {
  std::vector<fuzz::Trophy> Corpus;
  for (const std::string &Path : fuzz::listTrophies(TDR_TROPHY_DIR)) {
    fuzz::Trophy T;
    std::string Error;
    EXPECT_TRUE(fuzz::readTrophy(Path, T, Error)) << Error;
    Corpus.push_back(std::move(T));
  }
  return Corpus;
}

TEST(TrophyCorpus, HasTrophiesAndAllLoad) {
  std::vector<std::string> Paths = fuzz::listTrophies(TDR_TROPHY_DIR);
  ASSERT_FALSE(Paths.empty()) << "no trophies under " << TDR_TROPHY_DIR;
  for (const std::string &Path : Paths) {
    fuzz::Trophy T;
    std::string Error;
    ASSERT_TRUE(fuzz::readTrophy(Path, T, Error)) << Error;
    EXPECT_FALSE(T.Source.empty()) << Path;
    EXPECT_FALSE(T.Config.Backends.empty()) << Path;
  }
}

TEST(TrophyCorpus, FixedTrophiesStayFixed) {
  size_t Checked = 0;
  for (const fuzz::Trophy &T : loadCorpus()) {
    if (T.Status != "fixed")
      continue;
    ++Checked;
    fuzz::OracleOutcome Out = fuzz::runOracle(T.Source, T.Config);
    EXPECT_TRUE(Out.clean())
        << T.Name << " regressed: "
        << (Out.Findings.empty()
                ? "?"
                : fuzz::findingKindName(Out.Findings.front().Kind))
        << (Out.Findings.empty() ? "" : ": " + Out.Findings.front().Detail);
  }
  EXPECT_GT(Checked, 0u) << "corpus has no fixed trophies";
}

TEST(TrophyCorpus, OpenTrophiesStillReproduce) {
  for (const fuzz::Trophy &T : loadCorpus()) {
    if (T.Status != "open")
      continue;
    EXPECT_TRUE(fuzz::oracleFires(T.Source, T.Config, T.Kind))
        << T.Name << " no longer reproduces " << fuzz::findingKindName(T.Kind)
        << " — the bug appears fixed; flip the trophy status to \"fixed\"";
  }
}

//===----------------------------------------------------------------------===//
// File-format round-trip
//===----------------------------------------------------------------------===//

TEST(TrophyFormat, WriteReadRoundTrip) {
  std::string Dir =
      (std::filesystem::path(testing::TempDir()) / "trophy_rt").string();

  fuzz::Trophy T;
  T.Name = "rt-check";
  T.Status = "open";
  T.Kind = fuzz::FindingKind::ReplayDivergence;
  T.Seed = 0xdeadbeefcafeull;
  T.Config.Backends = {DetectBackend::VectorClock, DetectBackend::Par};
  T.Config.CheckRepair = false;
  T.Config.AllConstructs = true;
  T.Detail = "detail with \"quotes\" and\nnewlines";
  T.Expected = "expected\tkey";
  T.Actual = "actual key";
  T.Source = "func main() {\n  print(1);\n}\n";

  std::string Error;
  ASSERT_TRUE(fuzz::writeTrophy(Dir, T, Error)) << Error;

  std::vector<std::string> Paths = fuzz::listTrophies(Dir);
  ASSERT_EQ(Paths.size(), 1u);

  fuzz::Trophy R;
  ASSERT_TRUE(fuzz::readTrophy(Paths.front(), R, Error)) << Error;
  EXPECT_EQ(R.Name, T.Name);
  EXPECT_EQ(R.Status, T.Status);
  EXPECT_EQ(R.Kind, T.Kind);
  EXPECT_EQ(R.Seed, T.Seed);
  ASSERT_EQ(R.Config.Backends.size(), 2u);
  EXPECT_EQ(R.Config.Backends[0], DetectBackend::VectorClock);
  EXPECT_EQ(R.Config.Backends[1], DetectBackend::Par);
  EXPECT_FALSE(R.Config.CheckRepair);
  EXPECT_TRUE(R.Config.AllConstructs);
  EXPECT_EQ(R.Detail, T.Detail);
  EXPECT_EQ(R.Expected, T.Expected);
  EXPECT_EQ(R.Actual, T.Actual);
  EXPECT_EQ(R.Source, T.Source);
}

TEST(TrophyFormat, RejectsMalformedDocuments) {
  std::string Dir =
      (std::filesystem::path(testing::TempDir()) / "trophy_bad").string();
  std::filesystem::create_directories(Dir);

  auto WriteDoc = [&](const char *Name, const std::string &Text) {
    std::string Path = Dir + "/" + Name;
    std::ofstream Out(Path);
    Out << Text;
    return Path;
  };

  fuzz::Trophy T;
  std::string Error;
  EXPECT_FALSE(
      fuzz::readTrophy(WriteDoc("a.trophy.json", "not json"), T, Error));
  EXPECT_FALSE(fuzz::readTrophy(
      WriteDoc("b.trophy.json", "{\"schema\": \"other\"}"), T, Error));
  EXPECT_FALSE(fuzz::readTrophy(
      WriteDoc("c.trophy.json",
               "{\"schema\": \"tdr-trophy\", \"version\": 999}"),
      T, Error));
  EXPECT_FALSE(fuzz::readTrophy(
      WriteDoc("d.trophy.json", "{\"schema\": \"tdr-trophy\", \"version\": 1, "
                                "\"name\": \"d\", \"status\": \"bogus\", "
                                "\"kind\": \"backend-mismatch\"}"),
      T, Error));
  EXPECT_FALSE(fuzz::readTrophy(
      WriteDoc("e.trophy.json", "{\"schema\": \"tdr-trophy\", \"version\": 1, "
                                "\"name\": \"e\", \"status\": \"open\", "
                                "\"kind\": \"no-such-kind\"}"),
      T, Error));
  // Well-formed metadata with a missing .hj sibling also fails.
  EXPECT_FALSE(fuzz::readTrophy(
      WriteDoc("f.trophy.json", "{\"schema\": \"tdr-trophy\", \"version\": 1, "
                                "\"name\": \"f\", \"status\": \"open\", "
                                "\"kind\": \"backend-mismatch\"}"),
      T, Error));
  EXPECT_TRUE(fuzz::listTrophies("/no/such/directory").empty());
}

} // namespace
