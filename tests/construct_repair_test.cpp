//===- construct_repair_test.cpp - Per-edge construct choice --------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// The construct-choosing repair layer end to end: the allowlist parser,
// the force-aware cost evaluator, the greedy per-edge chooser on synthetic
// placement problems, and the acceptance programs of the construct suite —
// FuturePipeline must be repaired by forcing the future, IsolatedAccum by
// isolating the accumulator updates (when allowed), ForasyncStencil by the
// classic finish — each non-finish choice strictly cheaper than the best
// finish insertion, with the losing alternatives recorded in provenance.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "race/Detect.h"
#include "repair/ConstructChoice.h"
#include "repair/RepairDriver.h"
#include "suite/Constructs.h"

#include <algorithm>

using namespace tdr;
using namespace tdr::test;

namespace {

//===----------------------------------------------------------------------===//
// Allowlist parsing
//===----------------------------------------------------------------------===//

TEST(ConstructList, ParsesValidCombinations) {
  unsigned Mask = 0;
  std::string Err;
  ASSERT_TRUE(parseConstructList("finish", Mask, Err)) << Err;
  EXPECT_EQ(Mask, constructs::Finish);
  ASSERT_TRUE(parseConstructList("finish,future", Mask, Err)) << Err;
  EXPECT_EQ(Mask, constructs::Default);
  ASSERT_TRUE(parseConstructList("isolated,future,finish", Mask, Err)) << Err;
  EXPECT_EQ(Mask, constructs::All);
  EXPECT_EQ(formatConstructMask(constructs::All), "finish,future,isolated");
  EXPECT_EQ(formatConstructMask(constructs::Default), "finish,future");
}

TEST(ConstructList, RejectsMalformedSpecs) {
  unsigned Mask = 0;
  std::string Err;
  EXPECT_FALSE(parseConstructList("", Mask, Err));
  EXPECT_FALSE(parseConstructList("future", Mask, Err));
  EXPECT_NE(Err.find("finish"), std::string::npos) << Err;
  EXPECT_FALSE(parseConstructList("finish,barrier", Mask, Err));
  EXPECT_NE(Err.find("barrier"), std::string::npos) << Err;
  EXPECT_FALSE(parseConstructList("finish,finish", Mask, Err));
  EXPECT_NE(Err.find("twice"), std::string::npos) << Err;
  EXPECT_FALSE(parseConstructList("finish,,future", Mask, Err));
}

//===----------------------------------------------------------------------===//
// Force-aware cost evaluator
//===----------------------------------------------------------------------===//

/// nodes: [async w=10][async w=50][step w=1][async w=5], edge (0, 2).
PlacementProblem pipelineProblem() {
  PlacementProblem P;
  P.Times = {10, 50, 1, 5};
  P.IsAsync = {true, true, false, true};
  P.Edges = {{0, 2}};
  return P;
}

TEST(EvalConstructCost, EmptyForceSetMatchesPlacementCost) {
  PlacementProblem P = pipelineProblem();
  for (const std::vector<std::pair<uint32_t, uint32_t>> &F :
       {std::vector<std::pair<uint32_t, uint32_t>>{},
        std::vector<std::pair<uint32_t, uint32_t>>{{0, 0}},
        std::vector<std::pair<uint32_t, uint32_t>>{{0, 1}}})
    EXPECT_EQ(evalConstructCost(P, F, {}), evalPlacementCost(P, F));
}

TEST(EvalConstructCost, ForceEdgeJoinsOnlyTheFuture) {
  PlacementProblem P = pipelineProblem();
  // No repair: everything is concurrent after its spawn point.
  //   async0 ends 10, async1 ends 50, step ends 1, async3 ends 1+5.
  EXPECT_EQ(evalPlacementCost(P, {}), 50u);
  // Finish [0,0] joins the future before anything else runs:
  //   10 + max(50, 1 + 5) = 60.
  EXPECT_EQ(evalPlacementCost(P, {{0, 0}}), 60u);
  // Finish [0,1] joins both asyncs: max(10,50) + 1 + 5 = 56.
  EXPECT_EQ(evalPlacementCost(P, {{0, 1}}), 56u);
  // Force (0,2) raises only the step's clock to the future's completion:
  //   async1 still ends at 50; the step runs 10..11; async3 ends 16.
  EXPECT_EQ(evalConstructCost(P, {}, {{0, 2}}), 50u);
}

TEST(EvalConstructCost, ForceIntoFinishRangeDelaysTheRange) {
  // [async w=20][finish range around step w=3 forced by the async]
  PlacementProblem P;
  P.Times = {20, 3, 4};
  P.IsAsync = {true, false, false};
  P.Edges = {{0, 1}};
  // Force (0,1): step1 waits for the async (20), runs to 23, step2 to 27.
  EXPECT_EQ(evalConstructCost(P, {}, {{0, 1}}), 27u);
}

//===----------------------------------------------------------------------===//
// Greedy per-edge chooser on synthetic problems
//===----------------------------------------------------------------------===//

SolveFinishFn unconstrainedSolver(const PlacementProblem &P) {
  return [&P](const std::vector<std::pair<uint32_t, uint32_t>> &Edges) {
    PlacementProblem Sub = P;
    Sub.Edges = Edges;
    return placeFinishes(Sub, [](uint32_t, uint32_t) { return true; });
  };
}

TEST(PlanConstructs, PicksForceWhenStrictlyCheaper) {
  PlacementProblem P = pipelineProblem();
  std::vector<EdgeCandidate> Cands(1);
  Cands[0].CanForce = true;
  GroupPlan Plan =
      planConstructs(P, constructs::Default, Cands, unconstrainedSolver(P));
  ASSERT_TRUE(Plan.Feasible);
  ASSERT_EQ(Plan.Edges.size(), 1u);
  EXPECT_EQ(Plan.Edges[0].Construct, RepairConstruct::ForceFuture);
  EXPECT_EQ(Plan.Cost, 50u);
  EXPECT_EQ(Plan.AllFinishCost, 56u);
  EXPECT_TRUE(Plan.FinishRanges.empty());
  ASSERT_EQ(Plan.ForceEdges.size(), 1u);
  // The losing finish is reported as a feasible, costlier alternative.
  ASSERT_EQ(Plan.Edges[0].Alternatives.size(), 1u);
  const ConstructAlternative &Alt = Plan.Edges[0].Alternatives[0];
  EXPECT_EQ(Alt.Construct, RepairConstruct::Finish);
  EXPECT_TRUE(Alt.Feasible);
  EXPECT_GT(Alt.Cost, Plan.Cost);
}

TEST(PlanConstructs, TieKeepsThePaperFinishRepair) {
  // Two parallel steps of equal weight racing: finish [0,0] costs 2+2=4;
  // isolating costs max + penalty = 2 + 2 = 4 as well. The tie must keep
  // finish (the plan only deviates when strictly cheaper).
  PlacementProblem P;
  P.Times = {2, 2};
  P.IsAsync = {true, true};
  P.Edges = {{0, 1}};
  std::vector<EdgeCandidate> Cands(1);
  Cands[0].CanIsolate = true;
  Cands[0].IsolatedPenalty = 2;
  GroupPlan Plan =
      planConstructs(P, constructs::All, Cands, unconstrainedSolver(P));
  ASSERT_TRUE(Plan.Feasible);
  EXPECT_EQ(Plan.Edges[0].Construct, RepairConstruct::Finish);
  EXPECT_EQ(Plan.Cost, Plan.AllFinishCost);
}

TEST(PlanConstructs, PicksIsolatedWhenPenaltyIsSmall) {
  // Two heavy asyncs (w=30 each) with one edge; isolating costs
  // 30 + penalty(2) = 32 < finish [0,0] = 60.
  PlacementProblem P;
  P.Times = {30, 30};
  P.IsAsync = {true, true};
  P.Edges = {{0, 1}};
  std::vector<EdgeCandidate> Cands(1);
  Cands[0].CanIsolate = true;
  Cands[0].IsolatedPenalty = 2;
  GroupPlan Plan =
      planConstructs(P, constructs::All, Cands, unconstrainedSolver(P));
  ASSERT_TRUE(Plan.Feasible);
  EXPECT_EQ(Plan.Edges[0].Construct, RepairConstruct::Isolated);
  EXPECT_EQ(Plan.Cost, 32u);
  EXPECT_EQ(Plan.AllFinishCost, 60u);
  // The mask gates the same choice off.
  GroupPlan Gated =
      planConstructs(P, constructs::Default, Cands, unconstrainedSolver(P));
  ASSERT_TRUE(Gated.Feasible);
  EXPECT_EQ(Gated.Edges[0].Construct, RepairConstruct::Finish);
}

TEST(PlanConstructs, InapplicableConstructsSurfaceTheirReason) {
  PlacementProblem P = pipelineProblem();
  std::vector<EdgeCandidate> Cands(1);
  Cands[0].CanForce = false;
  Cands[0].ForceReason = "edge source is not a future";
  Cands[0].CanIsolate = false;
  Cands[0].IsolateReason = "racing statement is a loop";
  GroupPlan Plan =
      planConstructs(P, constructs::All, Cands, unconstrainedSolver(P));
  ASSERT_TRUE(Plan.Feasible);
  EXPECT_EQ(Plan.Edges[0].Construct, RepairConstruct::Finish);
  ASSERT_EQ(Plan.Edges[0].Alternatives.size(), 2u);
  for (const ConstructAlternative &Alt : Plan.Edges[0].Alternatives) {
    EXPECT_FALSE(Alt.Feasible);
    EXPECT_FALSE(Alt.Reason.empty());
  }
}

//===----------------------------------------------------------------------===//
// Acceptance: the construct suite programs
//===----------------------------------------------------------------------===//

RepairOptions repairOpts(const BenchmarkSpec &Spec, unsigned Constructs) {
  RepairOptions Opts;
  Opts.Exec.Args = Spec.RepairArgs;
  Opts.Constructs = Constructs;
  Opts.CollectDiag = true;
  return Opts;
}

/// Serial interpretation of \p Source (the elision semantics the repair
/// must preserve).
std::string serialOutput(const char *Source, const std::vector<int64_t> &Args) {
  ParsedProgram P = parseAndCheck(Source);
  EXPECT_TRUE(P.ok()) << P.errors();
  ExecOptions Exec;
  Exec.Args = Args;
  Interpreter I(*P.Prog, Exec);
  ExecResult R = I.run();
  EXPECT_TRUE(R.Ok) << R.Error;
  return R.Output;
}

/// Reparses \p Repaired and asserts it is race free on \p Args with the
/// elision output \p Expected.
void expectRaceFreeWithOutput(const std::string &Repaired,
                              const std::vector<int64_t> &Args,
                              const std::string &Expected) {
  ParsedProgram P = parseAndCheck(Repaired);
  ASSERT_TRUE(P.ok()) << P.errors() << "\n" << Repaired;
  ExecOptions Exec;
  Exec.Args = Args;
  Detection D = detectRaces(*P.Prog, EspBagsDetector::Mode::MRW, Exec);
  ASSERT_TRUE(D.ok()) << D.Exec.Error;
  EXPECT_TRUE(D.Report.Pairs.empty()) << Repaired;
  EXPECT_EQ(D.Exec.Output, Expected) << Repaired;
}

TEST(ConstructSuite, FuturePipelineIsRepairedByForcing) {
  const BenchmarkSpec *Spec = findConstructBenchmark("FuturePipeline");
  ASSERT_NE(Spec, nullptr);
  std::string Repaired;
  RepairResult R = repairSource(Spec->Source, Repaired,
                                repairOpts(*Spec, constructs::Default));
  ASSERT_TRUE(R.Success) << R.Error;
  // A mixed repair: the a[1] edge is cut by forcing the future, while the
  // b-reduction edges (plain asyncs, not forceable) still take a finish —
  // the per-edge choice at work within one program.
  EXPECT_EQ(R.Stats.ForcesInserted, 1u);
  EXPECT_EQ(R.Stats.FinishesInserted, 1u);
  EXPECT_EQ(R.Stats.IsolatedInserted, 0u);
  EXPECT_NE(Repaired.find("force(f);"), std::string::npos) << Repaired;

  // Provenance: the force entry carries the losing finish with a strictly
  // higher modeled cost.
  ASSERT_EQ(R.Diag.Repairs.size(), 2u);
  auto ProvIt =
      std::find_if(R.Diag.Repairs.begin(), R.Diag.Repairs.end(),
                   [](const diag::FinishProvenance &P) {
                     return P.Construct == "force";
                   });
  ASSERT_NE(ProvIt, R.Diag.Repairs.end());
  const diag::FinishProvenance &Prov = *ProvIt;
  auto Fin = std::find_if(Prov.Alternatives.begin(), Prov.Alternatives.end(),
                          [](const diag::RepairAlternative &A) {
                            return A.Construct == "finish";
                          });
  ASSERT_NE(Fin, Prov.Alternatives.end());
  EXPECT_TRUE(Fin->Feasible);
  EXPECT_GT(Fin->Cost, Prov.CostAfter);

  expectRaceFreeWithOutput(Repaired, Spec->RepairArgs,
                           serialOutput(Spec->Source, Spec->RepairArgs));
}

TEST(ConstructSuite, IsolatedAccumIsRepairedByIsolatingWhenAllowed) {
  const BenchmarkSpec *Spec = findConstructBenchmark("IsolatedAccum");
  ASSERT_NE(Spec, nullptr);
  std::string Repaired;
  RepairResult R = repairSource(Spec->Source, Repaired,
                                repairOpts(*Spec, constructs::All));
  ASSERT_TRUE(R.Success) << R.Error;
  EXPECT_EQ(R.Stats.IsolatedInserted, 1u);
  EXPECT_EQ(R.Stats.FinishesInserted, 0u);
  EXPECT_NE(Repaired.find("isolated"), std::string::npos) << Repaired;

  ASSERT_EQ(R.Diag.Repairs.size(), 1u);
  const diag::FinishProvenance &Prov = R.Diag.Repairs[0];
  EXPECT_EQ(Prov.Construct, "isolated");
  auto Fin = std::find_if(Prov.Alternatives.begin(), Prov.Alternatives.end(),
                          [](const diag::RepairAlternative &A) {
                            return A.Construct == "finish";
                          });
  ASSERT_NE(Fin, Prov.Alternatives.end());
  EXPECT_TRUE(Fin->Feasible);
  EXPECT_GT(Fin->Cost, Prov.CostAfter);

  // Isolation reorders the two updates but addition commutes, so the
  // repaired program still matches the serial elision on this input — and
  // must be race free (the isolated steps commute for the detector).
  expectRaceFreeWithOutput(Repaired, Spec->RepairArgs,
                           serialOutput(Spec->Source, Spec->RepairArgs));
}

TEST(ConstructSuite, IsolatedAccumFallsBackToFinishByDefault) {
  const BenchmarkSpec *Spec = findConstructBenchmark("IsolatedAccum");
  ASSERT_NE(Spec, nullptr);
  std::string Repaired;
  RepairResult R = repairSource(Spec->Source, Repaired,
                                repairOpts(*Spec, constructs::Default));
  ASSERT_TRUE(R.Success) << R.Error;
  EXPECT_EQ(R.Stats.IsolatedInserted, 0u);
  EXPECT_GE(R.Stats.FinishesInserted, 1u);
  expectRaceFreeWithOutput(Repaired, Spec->RepairArgs,
                           serialOutput(Spec->Source, Spec->RepairArgs));
}

TEST(ConstructSuite, ForasyncStencilIsRepairedByFinish) {
  const BenchmarkSpec *Spec = findConstructBenchmark("ForasyncStencil");
  ASSERT_NE(Spec, nullptr);
  std::string Repaired;
  RepairResult R = repairSource(Spec->Source, Repaired,
                                repairOpts(*Spec, constructs::All));
  ASSERT_TRUE(R.Success) << R.Error;
  EXPECT_GE(R.Stats.FinishesInserted, 1u);
  EXPECT_EQ(R.Stats.ForcesInserted, 0u);
  EXPECT_EQ(R.Stats.IsolatedInserted, 0u);
  expectRaceFreeWithOutput(Repaired, Spec->RepairArgs,
                           serialOutput(Spec->Source, Spec->RepairArgs));
}

//===----------------------------------------------------------------------===//
// Differential discipline on the construct programs
//===----------------------------------------------------------------------===//

TEST(ConstructSuite, DetectionIsBackendIdentical) {
  for (const BenchmarkSpec &Spec : constructBenchmarks()) {
    std::string Keys[3];
    const DetectBackend Backends[3] = {DetectBackend::EspBags,
                                       DetectBackend::VectorClock,
                                       DetectBackend::Par};
    for (int I = 0; I != 3; ++I) {
      ParsedProgram P = parseAndCheck(Spec.Source);
      ASSERT_TRUE(P.ok()) << Spec.Name << ": " << P.errors();
      DetectOptions Opts;
      Opts.Backend = Backends[I];
      ExecOptions Exec;
      Exec.Args = Spec.RepairArgs;
      Detection D = detectRaces(*P.Prog, Opts, std::move(Exec));
      ASSERT_TRUE(D.ok()) << Spec.Name << ": " << D.Exec.Error;
      EXPECT_FALSE(D.Report.Pairs.empty()) << Spec.Name;
      Keys[I] = renderRaceReportKey(D.Report);
    }
    EXPECT_EQ(Keys[0], Keys[1]) << Spec.Name << ": espbags vs vc";
    EXPECT_EQ(Keys[0], Keys[2]) << Spec.Name << ": espbags vs par";
  }
}

TEST(ConstructSuite, RepairSurvivesReplayCheck) {
  // ReplayCheck interprets alongside every replayed detection and demands
  // byte-identical reports; non-finish edits must invalidate the recorded
  // trace instead of replaying it wrongly.
  for (const BenchmarkSpec &Spec : constructBenchmarks()) {
    std::string Repaired;
    RepairOptions Opts = repairOpts(Spec, constructs::All);
    Opts.ReplayCheck = true;
    Opts.CollectDiag = false;
    RepairResult R = repairSource(Spec.Source, Repaired, Opts);
    EXPECT_TRUE(R.Success) << Spec.Name << ": " << R.Error;
  }
}

} // namespace
