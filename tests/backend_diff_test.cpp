//===- backend_diff_test.cpp - Three-way detection backend differential ---===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// The vector-clock backend (VectorClockDetector) and the partitioned
// backend (ParDetect) must be report-identical to ESP-bags: for every
// program, every mode (SRW/MRW), every feed (fresh interpretation or trace
// replay), and — for par — every worker count, all three backends must
// produce the IDENTICAL RaceReport. That is the property the
// TDR_BACKEND_CHECK differential gates CI on. These tests check it on
// ~100 random programs per mode, on replayed streams, through the repair
// loop end to end, across chunk boundaries of the partitioned backend,
// and cover the backend-selection plumbing (parse, env default, check
// mode).
//
//===----------------------------------------------------------------------===//

#include "RandomProgram.h"
#include "TestUtil.h"

#include "obs/Metrics.h"
#include "race/Detect.h"
#include "race/ParDetect.h"
#include "repair/MultiInput.h"
#include "repair/RepairDriver.h"
#include "trace/EventLog.h"

#include <cstdlib>

using namespace tdr;
using namespace tdr::test;

namespace {

/// Scoped environment variable: sets on construction, restores the prior
/// value (or unsets) on destruction.
class EnvVar {
public:
  EnvVar(const char *Name, const char *Value) : Name(Name) {
    if (const char *Old = std::getenv(Name)) {
      Saved = Old;
      Had = true;
    }
    if (Value)
      setenv(Name, Value, 1);
    else
      unsetenv(Name);
  }
  ~EnvVar() {
    if (Had)
      setenv(Name, Saved.c_str(), 1);
    else
      unsetenv(Name);
  }

private:
  const char *Name;
  std::string Saved;
  bool Had = false;
};

DetectOptions options(EspBagsDetector::Mode Mode, DetectBackend B) {
  DetectOptions O;
  O.Mode = Mode;
  O.Backend = B;
  return O;
}

/// Asserts the two reports are identical record for record (and render to
/// the same key — the exact comparison TDR_BACKEND_CHECK performs).
void expectIdenticalReports(const Detection &Vc, const Detection &Esp,
                            const std::string &Src) {
  EXPECT_EQ(renderRaceReportKey(Vc.Report), renderRaceReportKey(Esp.Report))
      << Src;
  EXPECT_EQ(Vc.Report.RawCount, Esp.Report.RawCount) << Src;
  ASSERT_EQ(Vc.Report.Pairs.size(), Esp.Report.Pairs.size()) << Src;
  for (size_t I = 0; I != Vc.Report.Pairs.size(); ++I) {
    const RacePair &V = Vc.Report.Pairs[I];
    const RacePair &E = Esp.Report.Pairs[I];
    EXPECT_EQ(V.Src->id(), E.Src->id()) << "pair " << I << "\n" << Src;
    EXPECT_EQ(V.Snk->id(), E.Snk->id()) << "pair " << I << "\n" << Src;
    EXPECT_TRUE(V.Loc == E.Loc) << "pair " << I << "\n" << Src;
    EXPECT_EQ(V.SrcKind, E.SrcKind) << "pair " << I << "\n" << Src;
    EXPECT_EQ(V.SnkKind, E.SnkKind) << "pair " << I << "\n" << Src;
  }
}

/// Reports identify tree nodes by pointer into their own Dpst, so
/// cross-detection comparison goes through node ids + the rendered key.
void expectSameKey(const Detection &A, const Detection &B,
                   const std::string &What) {
  EXPECT_EQ(renderRaceReportKey(A.Report), renderRaceReportKey(B.Report))
      << What;
  EXPECT_EQ(A.Report.RawCount, B.Report.RawCount) << What;
}

const char *RacySource = R"(
func work(a: int[], i: int) {
  a[i] = a[i] + 1;
  a[0] = a[0] + i;
}

func main() {
  var n: int = arg(0);
  var a: int[] = new int[n + 1];
  for (var i: int = 1; i <= n; i = i + 1) {
    async work(a, i);
  }
  print(a[0]);
}
)";

//===----------------------------------------------------------------------===//
// Differential: vector clocks == ESP-bags == partitioned, random programs
//===----------------------------------------------------------------------===//

class BackendsAgree : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BackendsAgree, FreshReportsAreIdentical) {
  Rng SeedGen(GetParam());
  for (int Trial = 0; Trial != 25; ++Trial) {
    RandomProgramGen Gen(SeedGen.next());
    std::string Src = Gen.generate();
    ParsedProgram P = parseAndCheck(Src);
    ASSERT_TRUE(P.ok()) << P.errors() << "\n" << Src;

    for (EspBagsDetector::Mode Mode :
         {EspBagsDetector::Mode::SRW, EspBagsDetector::Mode::MRW}) {
      Detection Esp =
          detectRaces(*P.Prog, options(Mode, DetectBackend::EspBags));
      ASSERT_TRUE(Esp.ok()) << Esp.Exec.Error << "\n" << Src;
      Detection Vc =
          detectRaces(*P.Prog, options(Mode, DetectBackend::VectorClock));
      ASSERT_TRUE(Vc.ok()) << Vc.Exec.Error << "\n" << Src;
      expectIdenticalReports(Vc, Esp, Src);
      Detection Par = detectRaces(*P.Prog, options(Mode, DetectBackend::Par));
      ASSERT_TRUE(Par.ok()) << Par.Exec.Error << "\n" << Src;
      expectIdenticalReports(Par, Esp, Src);
    }
  }
}

TEST_P(BackendsAgree, ReplayedReportsAreIdentical) {
  Rng SeedGen(GetParam() ^ 0x5bd1e995);
  for (int Trial = 0; Trial != 15; ++Trial) {
    RandomProgramGen Gen(SeedGen.next());
    std::string Src = Gen.generate();
    ParsedProgram P = parseAndCheck(Src);
    ASSERT_TRUE(P.ok()) << P.errors() << "\n" << Src;

    for (EspBagsDetector::Mode Mode :
         {EspBagsDetector::Mode::SRW, EspBagsDetector::Mode::MRW}) {
      // Record the event stream once, then feed the identical stream to
      // all backends (empty plan = verbatim re-emission). The replayed
      // reports must match each other AND the fresh one.
      trace::InputTrace T;
      trace::RecorderMonitor Recorder(T.Log);
      ExecOptions Exec;
      Exec.Monitor = &Recorder;
      Detection Fresh = detectRaces(
          *P.Prog, options(Mode, DetectBackend::EspBags), std::move(Exec));
      ASSERT_TRUE(Fresh.ok()) << Fresh.Exec.Error << "\n" << Src;
      Recorder.flush();
      T.Exec = Fresh.Exec;

      Detection Esp = detectRaces(*P.Prog, options(Mode, DetectBackend::EspBags),
                                  T, trace::ReplayPlan());
      Detection Vc = detectRaces(
          *P.Prog, options(Mode, DetectBackend::VectorClock), T,
          trace::ReplayPlan());
      Detection Par = detectRaces(*P.Prog, options(Mode, DetectBackend::Par),
                                  T, trace::ReplayPlan());
      expectIdenticalReports(Vc, Esp, Src);
      expectIdenticalReports(Par, Esp, Src);
      EXPECT_EQ(renderRaceReportKey(Vc.Report),
                renderRaceReportKey(Fresh.Report))
          << Src;
    }
  }
}

TEST_P(BackendsAgree, ConstructProgramReportsAreIdentical) {
  // Same three-way differential over the extended-construct generator:
  // future/force joins, isolated sections, and lowered forasync loops all
  // flow through the same event stream, so the backends must still agree.
  Rng SeedGen(GetParam() ^ 0x9e3779b9);
  for (int Trial = 0; Trial != 15; ++Trial) {
    RandomProgramGen Gen(SeedGen.next());
    Gen.enableConstructs();
    std::string Src = Gen.generate();
    ParsedProgram P = parseAndCheck(Src);
    ASSERT_TRUE(P.ok()) << P.errors() << "\n" << Src;

    for (EspBagsDetector::Mode Mode :
         {EspBagsDetector::Mode::SRW, EspBagsDetector::Mode::MRW}) {
      Detection Esp =
          detectRaces(*P.Prog, options(Mode, DetectBackend::EspBags));
      ASSERT_TRUE(Esp.ok()) << Esp.Exec.Error << "\n" << Src;
      Detection Vc =
          detectRaces(*P.Prog, options(Mode, DetectBackend::VectorClock));
      ASSERT_TRUE(Vc.ok()) << Vc.Exec.Error << "\n" << Src;
      expectIdenticalReports(Vc, Esp, Src);
      Detection Par = detectRaces(*P.Prog, options(Mode, DetectBackend::Par));
      ASSERT_TRUE(Par.ok()) << Par.Exec.Error << "\n" << Src;
      expectIdenticalReports(Par, Esp, Src);
    }
  }
}

TEST_P(BackendsAgree, ConstructProgramRepairsAgree) {
  // Construct-generator programs through the full repair loop under both
  // sequential backends, with the whole construct vocabulary enabled: the
  // repaired text and outcome must be backend-independent.
  Rng SeedGen(GetParam() ^ 0x85ebca6b);
  for (int Trial = 0; Trial != 6; ++Trial) {
    RandomProgramGen Gen(SeedGen.next());
    Gen.enableConstructs();
    std::string Src = Gen.generate();

    RepairOptions Esp;
    Esp.Backend = DetectBackend::EspBags;
    Esp.Constructs = constructs::All;
    std::string EspOut;
    RepairResult RE = repairSource(Src, EspOut, Esp);

    RepairOptions Vc;
    Vc.Backend = DetectBackend::VectorClock;
    Vc.Constructs = constructs::All;
    std::string VcOut;
    RepairResult RV = repairSource(Src, VcOut, Vc);

    EXPECT_EQ(RV.Success, RE.Success) << Src;
    EXPECT_EQ(RV.Error, RE.Error) << Src;
    EXPECT_EQ(VcOut, EspOut) << Src;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendsAgree,
                         ::testing::Values(111u, 222u, 333u, 444u));

//===----------------------------------------------------------------------===//
// The repair loop is backend-agnostic
//===----------------------------------------------------------------------===//

TEST(VcBackend, RepairProducesIdenticalProgramAndStats) {
  RepairOptions Esp;
  Esp.Backend = DetectBackend::EspBags;
  Esp.Exec.Args = {5};
  std::string EspOut;
  RepairResult RE = repairSource(RacySource, EspOut, Esp);
  ASSERT_TRUE(RE.Success) << RE.Error;

  RepairOptions Vc;
  Vc.Backend = DetectBackend::VectorClock;
  Vc.Exec.Args = {5};
  std::string VcOut;
  RepairResult RV = repairSource(RacySource, VcOut, Vc);
  ASSERT_TRUE(RV.Success) << RV.Error;

  // Identical reports imply identical placement decisions: same repaired
  // text, same iteration/finish counts, same first-run shape stats.
  EXPECT_EQ(VcOut, EspOut);
  EXPECT_EQ(RV.Stats.Iterations, RE.Stats.Iterations);
  EXPECT_EQ(RV.Stats.FinishesInserted, RE.Stats.FinishesInserted);
  EXPECT_EQ(RV.Stats.DpstNodes, RE.Stats.DpstNodes);
  EXPECT_EQ(RV.Stats.RawRaces, RE.Stats.RawRaces);
  EXPECT_EQ(RV.Stats.RacePairs, RE.Stats.RacePairs);
  EXPECT_GE(RV.Stats.FinishesInserted, 1u);
}

TEST(VcBackend, RandomProgramRepairsAgree) {
  Rng SeedGen(9001);
  for (int Trial = 0; Trial != 10; ++Trial) {
    RandomProgramGen Gen(SeedGen.next());
    std::string Src = Gen.generate();

    RepairOptions Esp;
    Esp.Backend = DetectBackend::EspBags;
    std::string EspOut;
    RepairResult RE = repairSource(Src, EspOut, Esp);

    RepairOptions Vc;
    Vc.Backend = DetectBackend::VectorClock;
    std::string VcOut;
    RepairResult RV = repairSource(Src, VcOut, Vc);

    EXPECT_EQ(RV.Success, RE.Success) << Src;
    EXPECT_EQ(RV.Error, RE.Error) << Src;
    EXPECT_EQ(VcOut, EspOut) << Src;
  }
}

TEST(VcBackend, MultiInputRepairSucceeds) {
  ParsedProgram P = parseAndCheck(RacySource);
  ASSERT_TRUE(P.ok()) << P.errors();
  std::vector<ExecOptions> Inputs(2);
  Inputs[0].Args = {3};
  Inputs[1].Args = {6};
  MultiRepairResult R = repairProgramForInputs(
      *P.Prog, *P.Ctx, Inputs, EspBagsDetector::Mode::MRW,
      /*Store=*/nullptr, /*UseReplay=*/true, DetectBackend::VectorClock);
  EXPECT_TRUE(R.Success) << R.Error;
  EXPECT_TRUE(R.FinalVerified);
}

//===----------------------------------------------------------------------===//
// Backend selection plumbing
//===----------------------------------------------------------------------===//

TEST(BackendSelect, ParseAcceptsExactlyTheThreeNames) {
  DetectBackend B = DetectBackend::EspBags;
  EXPECT_TRUE(parseDetectBackend("espbags", B));
  EXPECT_EQ(B, DetectBackend::EspBags);
  EXPECT_TRUE(parseDetectBackend("vc", B));
  EXPECT_EQ(B, DetectBackend::VectorClock);
  EXPECT_TRUE(parseDetectBackend("par", B));
  EXPECT_EQ(B, DetectBackend::Par);
  for (const char *Bad :
       {"", "VC", "EspBags", "vectorclock", "vc ", "bags", "Par", "parallel",
        "par "}) {
    DetectBackend Unchanged = DetectBackend::EspBags;
    EXPECT_FALSE(parseDetectBackend(Bad, Unchanged)) << Bad;
    EXPECT_EQ(Unchanged, DetectBackend::EspBags) << Bad;
  }
  EXPECT_STREQ(detectBackendName(DetectBackend::EspBags), "espbags");
  EXPECT_STREQ(detectBackendName(DetectBackend::VectorClock), "vc");
  EXPECT_STREQ(detectBackendName(DetectBackend::Par), "par");
}

TEST(BackendSelect, EnvPicksTheDefaultBackend) {
  {
    EnvVar E("TDR_BACKEND", "vc");
    EXPECT_EQ(defaultDetectBackend(), DetectBackend::VectorClock);
  }
  {
    EnvVar E("TDR_BACKEND", "espbags");
    EXPECT_EQ(defaultDetectBackend(), DetectBackend::EspBags);
  }
  {
    EnvVar E("TDR_BACKEND", "par");
    EXPECT_EQ(defaultDetectBackend(), DetectBackend::Par);
  }
  {
    // The library falls back on garbage; the CLI rejects it with exit 2
    // (see tools/check_cli.py).
    EnvVar E("TDR_BACKEND", "warp-drive");
    EXPECT_EQ(defaultDetectBackend(), DetectBackend::EspBags);
  }
  {
    EnvVar E("TDR_BACKEND", nullptr);
    EXPECT_EQ(defaultDetectBackend(), DetectBackend::EspBags);
  }
}

TEST(BackendSelect, ModeOnlyOverloadFollowsTheEnv) {
  ParsedProgram P = parseAndCheck(RacySource);
  ASSERT_TRUE(P.ok()) << P.errors();
  ExecOptions Exec;
  Exec.Args = {4};

  EnvVar E("TDR_BACKEND", "vc");
  obs::MetricsRegistry Reg;
  obs::ScopedMetrics Scope(Reg);
  Detection D = detectRaces(*P.Prog, EspBagsDetector::Mode::MRW, Exec);
  ASSERT_TRUE(D.ok()) << D.Exec.Error;
  // The vc detector ran (and espbags did not).
  EXPECT_GT(Reg.counterValue("vc.checks"), 0u);
  EXPECT_EQ(Reg.counterValue("espbags.checks"), 0u);
  EXPECT_GT(D.Report.Pairs.size(), 0u);
}

//===----------------------------------------------------------------------===//
// TDR_BACKEND_CHECK: every detection runs under both backends
//===----------------------------------------------------------------------===//

TEST(BackendCheck, FreshDetectionIsCrossChecked) {
  ParsedProgram P = parseAndCheck(RacySource);
  ASSERT_TRUE(P.ok()) << P.errors();
  ExecOptions Exec;
  Exec.Args = {5};

  EnvVar E("TDR_BACKEND_CHECK", "1");
  obs::MetricsRegistry Reg;
  obs::ScopedMetrics Scope(Reg);
  Detection D = detectRaces(
      *P.Prog, options(EspBagsDetector::Mode::MRW, DetectBackend::EspBags),
      std::move(Exec));
  ASSERT_TRUE(D.ok()) << D.Exec.Error;
  EXPECT_EQ(Reg.counterValue("detect.backend_checks"), 1u);
  // The secondary run stays off the books: one detection run, and the
  // other backend's counters did not move in this registry.
  EXPECT_EQ(Reg.counterValue("detect.runs"), 1u);
  EXPECT_EQ(Reg.counterValue("vc.checks"), 0u);
}

TEST(BackendCheck, ReplayedDetectionIsCrossChecked) {
  ParsedProgram P = parseAndCheck(RacySource);
  ASSERT_TRUE(P.ok()) << P.errors();

  trace::InputTrace T;
  trace::RecorderMonitor Recorder(T.Log);
  ExecOptions Exec;
  Exec.Args = {5};
  Exec.Monitor = &Recorder;
  Detection Fresh = detectRaces(
      *P.Prog, options(EspBagsDetector::Mode::MRW, DetectBackend::EspBags),
      std::move(Exec));
  ASSERT_TRUE(Fresh.ok()) << Fresh.Exec.Error;
  Recorder.flush();
  T.Exec = Fresh.Exec;

  EnvVar E("TDR_BACKEND_CHECK", "1");
  obs::MetricsRegistry Reg;
  obs::ScopedMetrics Scope(Reg);
  Detection D = detectRaces(
      *P.Prog, options(EspBagsDetector::Mode::MRW, DetectBackend::VectorClock),
      T, trace::ReplayPlan());
  ASSERT_TRUE(D.ok()) << D.Exec.Error;
  EXPECT_EQ(Reg.counterValue("detect.backend_checks"), 1u);
  EXPECT_EQ(Reg.counterValue("detect.runs"), 1u);
  EXPECT_EQ(Reg.counterValue("espbags.checks"), 0u);
  EXPECT_EQ(renderRaceReportKey(D.Report), renderRaceReportKey(Fresh.Report));
}

TEST(BackendCheck, ZeroAndUnsetDisableTheCheck) {
  ParsedProgram P = parseAndCheck(RacySource);
  ASSERT_TRUE(P.ok()) << P.errors();
  ExecOptions Exec;
  Exec.Args = {3};
  for (const char *Off : {static_cast<const char *>(nullptr), "0"}) {
    EnvVar E("TDR_BACKEND_CHECK", Off);
    EXPECT_FALSE(backendCheckEnv());
    obs::MetricsRegistry Reg;
    obs::ScopedMetrics Scope(Reg);
    Detection D = detectRaces(*P.Prog, EspBagsDetector::Mode::MRW, Exec);
    ASSERT_TRUE(D.ok());
    EXPECT_EQ(Reg.counterValue("detect.backend_checks"), 0u);
  }
  EnvVar E("TDR_BACKEND_CHECK", "1");
  EXPECT_TRUE(backendCheckEnv());
}

TEST(BackendCheck, WholeRepairRunsCheckedUnderEveryPrimary) {
  // End-to-end: a full (replaying) repair under TDR_BACKEND_CHECK, with
  // each backend as the primary, still succeeds and produces the same
  // program — every detection along the way was cross-checked.
  EnvVar E("TDR_BACKEND_CHECK", "1");
  std::string Outs[3];
  int I = 0;
  for (DetectBackend B : {DetectBackend::EspBags, DetectBackend::VectorClock,
                          DetectBackend::Par}) {
    obs::MetricsRegistry Reg;
    obs::ScopedMetrics Scope(Reg);
    RepairOptions Opts;
    Opts.Backend = B;
    Opts.Exec.Args = {5};
    RepairResult R = repairSource(RacySource, Outs[I], Opts);
    ASSERT_TRUE(R.Success) << R.Error;
    EXPECT_GE(Reg.counterValue("detect.backend_checks"),
              static_cast<uint64_t>(R.Stats.Iterations));
    ++I;
  }
  EXPECT_EQ(Outs[0], Outs[1]);
  EXPECT_EQ(Outs[0], Outs[2]);
}

//===----------------------------------------------------------------------===//
// The partitioned backend: chunk boundaries and worker-count independence
//===----------------------------------------------------------------------===//

/// Records one execution of \p P into \p T and returns the ESP-bags
/// reference detection over that exact stream.
Detection recordAndReference(const ParsedProgram &P, trace::InputTrace &T,
                             EspBagsDetector::Mode Mode, int Arg) {
  trace::RecorderMonitor Recorder(T.Log);
  ExecOptions Exec;
  Exec.Args = {Arg};
  Exec.Monitor = &Recorder;
  Detection Fresh =
      detectRaces(*P.Prog, options(Mode, DetectBackend::EspBags),
                  std::move(Exec));
  EXPECT_TRUE(Fresh.ok()) << Fresh.Exec.Error;
  Recorder.flush();
  T.Exec = Fresh.Exec;
  return detectRaces(*P.Prog, options(Mode, DetectBackend::EspBags), T,
                     trace::ReplayPlan());
}

TEST(ParBackend, RacePairSplitAcrossChunkBoundaryIsFound) {
  // The only race pair sits at the two ENDS of the event stream: the
  // first and last async both write a[0], with ~150 non-conflicting
  // asyncs between them. Any partition into 2+ chunks separates the two
  // accesses, so the pair can only come out of the cross-chunk merge
  // phase — per-chunk scanning alone never sees both sides.
  const char *Split = R"(
func touch(a: int[], i: int) {
  a[i] = a[i] + 1;
}

func main() {
  var n: int = arg(0);
  var a: int[] = new int[n + 1];
  async touch(a, 0);
  for (var i: int = 1; i < n; i = i + 1) {
    async touch(a, i);
  }
  async touch(a, 0);
  print(0);
}
)";
  ParsedProgram P = parseAndCheck(Split);
  ASSERT_TRUE(P.ok()) << P.errors();
  for (EspBagsDetector::Mode Mode :
       {EspBagsDetector::Mode::SRW, EspBagsDetector::Mode::MRW}) {
    trace::InputTrace T;
    Detection Ref = recordAndReference(P, T, Mode, /*Arg=*/150);
    ASSERT_EQ(Ref.Report.Pairs.size(), 1u);

    for (unsigned W : {1u, 2u, 3u, 8u}) {
      DetectOptions O = options(Mode, DetectBackend::Par);
      O.ParWorkers = W;
      Detection Par = detectRaces(*P.Prog, O, T, trace::ReplayPlan());
      ASSERT_TRUE(Par.ok()) << Par.Exec.Error;
      expectSameKey(Par, Ref, "workers=" + std::to_string(W));
      ASSERT_EQ(Par.Report.Pairs.size(), 1u) << "workers=" << W;
      EXPECT_EQ(Par.Report.Pairs[0].Src->id(), Ref.Report.Pairs[0].Src->id());
      EXPECT_EQ(Par.Report.Pairs[0].Snk->id(), Ref.Report.Pairs[0].Snk->id());
    }
  }
}

TEST(ParBackend, ReportIsWorkerCountIndependent) {
  // The report must be a pure function of the event stream: sweeping the
  // worker count (1 = the inline no-pool path; 8 forces chunks far
  // smaller than the snapping granularity) must not change a byte.
  ParsedProgram P = parseAndCheck(RacySource);
  ASSERT_TRUE(P.ok()) << P.errors();
  for (EspBagsDetector::Mode Mode :
       {EspBagsDetector::Mode::SRW, EspBagsDetector::Mode::MRW}) {
    trace::InputTrace T;
    Detection Ref = recordAndReference(P, T, Mode, /*Arg=*/40);
    EXPECT_GT(Ref.Report.Pairs.size(), 1u);

    for (unsigned W : {1u, 2u, 3u, 8u}) {
      DetectOptions O = options(Mode, DetectBackend::Par);
      O.ParWorkers = W;
      Detection Par = detectRaces(*P.Prog, O, T, trace::ReplayPlan());
      ASSERT_TRUE(Par.ok()) << Par.Exec.Error;
      expectSameKey(Par, Ref, "workers=" + std::to_string(W));
      ASSERT_EQ(Par.Report.Pairs.size(), Ref.Report.Pairs.size());
      for (size_t I = 0; I != Par.Report.Pairs.size(); ++I) {
        EXPECT_EQ(Par.Report.Pairs[I].Src->id(), Ref.Report.Pairs[I].Src->id())
            << "workers=" << W << " pair " << I;
        EXPECT_EQ(Par.Report.Pairs[I].Snk->id(), Ref.Report.Pairs[I].Snk->id())
            << "workers=" << W << " pair " << I;
      }
    }
  }
}

TEST(ParBackend, ResolveWorkersPrecedence) {
  // Explicit request wins outright (no cap, no clamp).
  {
    EnvVar E("TDR_PAR_WORKERS", "3");
    EXPECT_EQ(resolveParWorkers(5, 1u << 20), 5u);
  }
  // Then the environment, capped at 64 and ignoring garbage.
  {
    EnvVar E("TDR_PAR_WORKERS", "3");
    EXPECT_EQ(resolveParWorkers(0, 1u << 20), 3u);
  }
  {
    EnvVar E("TDR_PAR_WORKERS", "9999");
    EXPECT_EQ(resolveParWorkers(0, 1u << 20), 64u);
  }
  // Hardware default: small logs clamp down to one worker per ~2k
  // records, and the result is always at least 1.
  {
    EnvVar E("TDR_PAR_WORKERS", nullptr);
    EXPECT_EQ(resolveParWorkers(0, 0), 1u);
    EXPECT_EQ(resolveParWorkers(0, 100), 1u);
    EXPECT_GE(resolveParWorkers(0, 1u << 20), 1u);
    EXPECT_LE(resolveParWorkers(0, 1u << 20), 8u);
  }
  {
    EnvVar E("TDR_PAR_WORKERS", "not-a-number");
    EXPECT_EQ(resolveParWorkers(0, 100), 1u);
  }
}

TEST(ParBackend, LiveModeCoalescesWithACallerMonitor) {
  // Live par mode records the stream itself; a caller-supplied monitor
  // (e.g. the repair loop's own recorder) must still see every event.
  ParsedProgram P = parseAndCheck(RacySource);
  ASSERT_TRUE(P.ok()) << P.errors();

  trace::InputTrace Mine;
  trace::RecorderMonitor Recorder(Mine.Log);
  ExecOptions Exec;
  Exec.Args = {6};
  Exec.Monitor = &Recorder;
  Detection Par =
      detectRaces(*P.Prog, options(EspBagsDetector::Mode::MRW,
                                   DetectBackend::Par),
                  std::move(Exec));
  ASSERT_TRUE(Par.ok()) << Par.Exec.Error;
  Recorder.flush();
  Mine.Exec = Par.Exec;
  EXPECT_GT(Mine.Log.size(), 0u);

  // My recording replays to the same report under the reference backend.
  Detection Ref =
      detectRaces(*P.Prog, options(EspBagsDetector::Mode::MRW,
                                   DetectBackend::EspBags),
                  Mine, trace::ReplayPlan());
  expectSameKey(Par, Ref, "live par vs replayed espbags");
}

} // namespace
