//===- diag_test.cpp - Witness, provenance, and run-report tests ----------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// The explainable-diagnostics layer: race witnesses reconstructed from the
// S-DPST and the recorded event log (src/diag/Witness.h), per-finish
// repair provenance (RepairOptions::CollectDiag), and the schema-versioned
// run report with its `tdr explain` renderer (src/diag/RunReport.h).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "RandomProgram.h"

#include "diag/RunReport.h"
#include "diag/Witness.h"
#include "race/Detect.h"
#include "repair/RepairDriver.h"
#include "support/Json.h"
#include "trace/EventLog.h"

using namespace tdr;
using namespace tdr::test;

namespace {

/// One write-in-async vs read-after race on global X.
const char *SimpleRace = R"(
var X: int = 0;
func main() {
  async { X = 1; }
  print(X);
}
)";

/// Races depend on the input: the Y async only spawns when arg(0) > 10
/// (the multi_input_test fixture).
const char *InputDependent = R"(
var X: int = 0;
var Y: int = 0;
func main() {
  var n: int = arg(0);
  async { X = n; }
  if (n > 10) {
    async { Y = n; }
  }
  print(X + Y);
}
)";

/// Detection that also records the event log, the way the CLI's --report
/// path does, so buildWitnesses can refine access sites through replay.
Detection detectWithLog(const Program &P, trace::EventLog &Log,
                        std::vector<int64_t> Args = {}) {
  trace::RecorderMonitor Recorder(Log);
  ExecOptions Exec;
  Exec.Args = std::move(Args);
  Exec.Monitor = &Recorder;
  Detection D = detectRaces(P, EspBagsDetector::Mode::MRW, Exec);
  Recorder.flush();
  return D;
}

TEST(Witness, SimpleRaceIsFullyExplained) {
  ParsedProgram P = parseAndCheck(SimpleRace);
  ASSERT_TRUE(P.ok()) << P.errors();

  trace::EventLog Log;
  Detection D = detectWithLog(*P.Prog, Log);
  ASSERT_TRUE(D.ok());
  ASSERT_EQ(D.Report.Pairs.size(), 1u);

  std::vector<diag::RaceWitness> Ws =
      diag::buildWitnesses(*D.Tree, D.Report, P.SM.get(), &Log);
  ASSERT_EQ(Ws.size(), 1u);
  const diag::RaceWitness &W = Ws[0];

  // The location and both access kinds come from the report's witness.
  EXPECT_EQ(W.Location, D.Report.Pairs[0].Loc.str());
  EXPECT_EQ(W.Src.Step, D.Report.Pairs[0].Src->id());
  EXPECT_EQ(W.Snk.Step, D.Report.Pairs[0].Snk->id());

  // Site refinement: the write attributes to `X = 1` inside the async
  // body (line 4, past the `async {` header), the read to the print.
  EXPECT_EQ(W.Src.Kind, AccessKind::Write);
  EXPECT_EQ(W.Src.Pos.Line, 4u);
  EXPECT_GT(W.Src.Pos.Col, 9u) << "write must refine into the async body";
  EXPECT_NE(W.Src.Pos.LineText.find("X = 1"), std::string::npos);
  EXPECT_EQ(W.Snk.Kind, AccessKind::Read);
  EXPECT_EQ(W.Snk.Pos.Line, 5u);
  EXPECT_NE(W.Snk.Pos.LineText.find("print"), std::string::npos);

  // Theorem-1 evidence: the async at 4:3 escapes the NS-LCA unjoined.
  EXPECT_TRUE(W.HasBreakingAsync);
  EXPECT_EQ(W.BreakingAsyncPos.Line, 4u);
  EXPECT_EQ(W.BreakingAsyncPos.Col, 3u);

  // Spines run nearest-first and end at the root; the write's spine
  // passes through the breaking async.
  ASSERT_FALSE(W.SrcSpine.empty());
  ASSERT_FALSE(W.SnkSpine.empty());
  EXPECT_EQ(W.SrcSpine.front().Id, W.BreakingAsyncId);
  EXPECT_EQ(W.SrcSpine.back().Kind, DpstKind::Root);
  EXPECT_EQ(W.SnkSpine.back().Kind, DpstKind::Root);
}

TEST(Witness, RenderedTextCarriesCaretsAndTheorem1Argument) {
  ParsedProgram P = parseAndCheck(SimpleRace);
  ASSERT_TRUE(P.ok()) << P.errors();

  trace::EventLog Log;
  Detection D = detectWithLog(*P.Prog, Log);
  std::vector<diag::RaceWitness> Ws =
      diag::buildWitnesses(*D.Tree, D.Report, P.SM.get(), &Log);
  ASSERT_EQ(Ws.size(), 1u);

  std::string Text = diag::renderWitnessText(Ws[0]);
  EXPECT_NE(Text.find("race on global#0: write"), std::string::npos) << Text;
  EXPECT_NE(Text.find("first access"), std::string::npos);
  EXPECT_NE(Text.find("second access"), std::string::npos);
  EXPECT_NE(Text.find("^"), std::string::npos) << "missing caret: " << Text;
  EXPECT_NE(Text.find("unordered because"), std::string::npos);
  EXPECT_NE(Text.find("escapes it unjoined"), std::string::npos);
  // Plain render stays ANSI-free; Color=true adds SGR escapes.
  EXPECT_EQ(Text.find('\x1b'), std::string::npos);
  std::string Colored = diag::renderWitnessText(Ws[0], /*Color=*/true);
  EXPECT_NE(Colored.find("\x1b["), std::string::npos);
}

TEST(Witness, DiffersPerInputOnInputDependentProgram) {
  ParsedProgram P = parseAndCheck(InputDependent);
  ASSERT_TRUE(P.ok()) << P.errors();

  // Small input: only the X race exists.
  trace::EventLog SmallLog;
  Detection Small = detectWithLog(*P.Prog, SmallLog, {5});
  std::vector<diag::RaceWitness> SmallWs =
      diag::buildWitnesses(*Small.Tree, Small.Report, P.SM.get(), &SmallLog);
  ASSERT_EQ(SmallWs.size(), 1u);
  EXPECT_EQ(SmallWs[0].Location, "global#0");

  // Large input: the Y async spawns too, adding a second, distinct
  // witness with its own breaking async (line 8 vs line 6).
  trace::EventLog LargeLog;
  Detection Large = detectWithLog(*P.Prog, LargeLog, {20});
  std::vector<diag::RaceWitness> LargeWs =
      diag::buildWitnesses(*Large.Tree, Large.Report, P.SM.get(), &LargeLog);
  ASSERT_EQ(LargeWs.size(), 2u);
  EXPECT_EQ(LargeWs[0].Location, "global#0");
  EXPECT_EQ(LargeWs[1].Location, "global#1");
  EXPECT_NE(LargeWs[0].BreakingAsyncPos.Line,
            LargeWs[1].BreakingAsyncPos.Line);
  EXPECT_EQ(SmallWs[0].BreakingAsyncPos.Line,
            LargeWs[0].BreakingAsyncPos.Line);
}

TEST(Witness, PropertyEveryReportedPairYieldsUnorderedWitness) {
  for (uint64_t Seed = 1; Seed <= 25; ++Seed) {
    RandomProgramGen Gen(Seed);
    ParsedProgram P = parseAndCheck(Gen.generate());
    ASSERT_TRUE(P.ok()) << "seed " << Seed << ": " << P.errors();

    trace::EventLog Log;
    Detection D = detectWithLog(*P.Prog, Log);
    if (!D.ok())
      continue; // work-limit aborts are not witness material
    std::vector<diag::RaceWitness> Ws =
        diag::buildWitnesses(*D.Tree, D.Report, P.SM.get(), &Log);
    ASSERT_EQ(Ws.size(), D.Report.Pairs.size()) << "seed " << Seed;

    for (size_t I = 0; I != Ws.size(); ++I) {
      const RacePair &R = D.Report.Pairs[I];
      const diag::RaceWitness &W = Ws[I];
      // The witness explains exactly the reported pair...
      EXPECT_EQ(W.Src.Step, R.Src->id()) << "seed " << Seed;
      EXPECT_EQ(W.Snk.Step, R.Snk->id()) << "seed " << Seed;
      // ...whose steps the S-DPST confirms are unordered (Theorem 1),
      // with the breaking async as evidence.
      EXPECT_TRUE(D.Tree->mayHappenInParallel(R.Src, R.Snk))
          << "seed " << Seed << ": reported pair is ordered";
      EXPECT_TRUE(W.HasBreakingAsync)
          << "seed " << Seed << ": no breaking async for an unordered pair";
      // Refined sites resolved to real source positions.
      EXPECT_TRUE(W.Src.Pos.valid()) << "seed " << Seed;
      EXPECT_TRUE(W.Snk.Pos.valid()) << "seed " << Seed;
    }
  }
}

TEST(Provenance, RepairRecordsWhyEachFinishExists) {
  ParsedProgram P = parseAndCheck(InputDependent);
  ASSERT_TRUE(P.ok()) << P.errors();

  RepairOptions Opts;
  Opts.Exec.Args = {20};
  Opts.CollectDiag = true;
  Opts.SM = P.SM.get();
  RepairResult R = repairProgram(*P.Prog, *P.Ctx, Opts);
  ASSERT_TRUE(R.Success) << R.Error;
  ASSERT_EQ(R.Stats.FinishesInserted, 2u);

  // One provenance record per inserted finish.
  ASSERT_EQ(R.Diag.Repairs.size(), 2u);
  for (const diag::FinishProvenance &F : R.Diag.Repairs) {
    EXPECT_EQ(F.Construct, "finish");
    EXPECT_TRUE(F.Anchor.valid());
    EXPECT_GE(F.DynamicInstances, 1u);
    EXPECT_FALSE(F.ForcedEdges.empty());
    // Adding a finish can only lengthen (or keep) the critical path.
    EXPECT_GE(F.CostAfter, F.CostBefore);
  }

  // The iteration log shows convergence: first iteration racy, final
  // iteration clean.
  ASSERT_GE(R.Diag.Iterations.size(), 2u);
  EXPECT_FALSE(R.Diag.Iterations.front().Witnesses.empty());
  EXPECT_TRUE(R.Diag.Iterations.back().Witnesses.empty());
}

TEST(RunReport, JsonRoundTripsThroughParserAndExplain) {
  ParsedProgram P = parseAndCheck(InputDependent);
  ASSERT_TRUE(P.ok()) << P.errors();

  RepairOptions Opts;
  Opts.Exec.Args = {20};
  Opts.CollectDiag = true;
  Opts.SM = P.SM.get();
  RepairResult R = repairProgram(*P.Prog, *P.Ctx, Opts);
  ASSERT_TRUE(R.Success) << R.Error;

  diag::RunReport Rep;
  Rep.Tool = "repair";
  Rep.Backend = "espbags";
  Rep.Mode = "mrw";
  diag::JobReport Job;
  Job.Name = "test.hj";
  Job.Args = {20};
  Job.Success = true;
  Job.Stats.Iterations = R.Stats.Iterations;
  Job.Stats.FinishesInserted = R.Stats.FinishesInserted;
  Job.Stats.RacePairs = R.Stats.RacePairs;
  Job.Diag = R.Diag;
  Rep.Jobs.push_back(std::move(Job));

  std::string JsonText = diag::renderRunReportJson(Rep);
  json::ParseResult Parsed = json::parse(JsonText);
  ASSERT_TRUE(Parsed.Ok) << Parsed.Error;
  EXPECT_EQ(Parsed.Doc.getString("schema"), "tdr-report");
  EXPECT_EQ(Parsed.Doc.getNumber("version"), 2.0);

  std::string Out, Err;
  ASSERT_TRUE(diag::renderExplainText(Parsed.Doc, /*Color=*/false, Out, Err))
      << Err;
  EXPECT_NE(Out.find("tdr run report"), std::string::npos);
  EXPECT_NE(Out.find("inserted repairs (2)"), std::string::npos) << Out;
  EXPECT_NE(Out.find("critical path"), std::string::npos);
  EXPECT_NE(Out.find("forced by dependence edge(s)"), std::string::npos);
  EXPECT_NE(Out.find("unordered because"), std::string::npos);

  // A document from another schema family is rejected with a message.
  json::ParseResult Other = json::parse(R"({"schema":"not-tdr"})");
  ASSERT_TRUE(Other.Ok);
  Out.clear();
  EXPECT_FALSE(diag::renderExplainText(Other.Doc, false, Out, Err));
  EXPECT_FALSE(Err.empty());
}

TEST(RunReport, WitnessSectionsBackendIdentical) {
  // The report's diagnostic subtree must not depend on the backend that
  // found the races (the cross-backend contract check_report.py enforces
  // end to end; here at the library level).
  ParsedProgram P = parseAndCheck(InputDependent);
  ASSERT_TRUE(P.ok()) << P.errors();

  std::string Sections[2];
  const DetectBackend Backends[2] = {DetectBackend::EspBags,
                                     DetectBackend::VectorClock};
  for (int I = 0; I != 2; ++I) {
    trace::EventLog Log;
    trace::RecorderMonitor Recorder(Log);
    ExecOptions Exec;
    Exec.Args = {20};
    Exec.Monitor = &Recorder;
    DetectOptions DO;
    DO.Backend = Backends[I];
    Detection D = detectRaces(*P.Prog, DO, Exec);
    Recorder.flush();
    std::vector<diag::RaceWitness> Ws =
        diag::buildWitnesses(*D.Tree, D.Report, P.SM.get(), &Log);
    Sections[I] = diag::renderWitnessesText(Ws);
  }
  EXPECT_EQ(Sections[0], Sections[1]);
}

} // namespace
