//===- runtime_test.cpp - Work-stealing runtime tests ---------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"
#include "runtime/WorkStealingDeque.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

using namespace tdr;

namespace {

TEST(WorkStealingDeque, OwnerPushPopLifo) {
  WorkStealingDeque<int *> D;
  int Vals[4] = {1, 2, 3, 4};
  for (int *V = Vals; V != Vals + 4; ++V)
    D.push(V);
  int *Out = nullptr;
  for (int I = 3; I >= 0; --I) {
    ASSERT_TRUE(D.pop(Out));
    EXPECT_EQ(Out, &Vals[I]);
  }
  EXPECT_FALSE(D.pop(Out));
}

TEST(WorkStealingDeque, ThiefStealsFifo) {
  WorkStealingDeque<int *> D;
  int Vals[3] = {1, 2, 3};
  for (int *V = Vals; V != Vals + 3; ++V)
    D.push(V);
  int *Out = nullptr;
  ASSERT_TRUE(D.steal(Out));
  EXPECT_EQ(Out, &Vals[0]);
  ASSERT_TRUE(D.steal(Out));
  EXPECT_EQ(Out, &Vals[1]);
  ASSERT_TRUE(D.pop(Out));
  EXPECT_EQ(Out, &Vals[2]);
  EXPECT_FALSE(D.steal(Out));
}

TEST(WorkStealingDeque, GrowsPastInitialCapacity) {
  WorkStealingDeque<int *> D(/*LogInitialCap=*/2);
  std::vector<int> Vals(1000);
  for (int &V : Vals)
    D.push(&V);
  int *Out = nullptr;
  size_t Count = 0;
  while (D.pop(Out))
    ++Count;
  EXPECT_EQ(Count, Vals.size());
}

TEST(WorkStealingDeque, ConcurrentStealersDrainExactlyOnce) {
  WorkStealingDeque<int *> D;
  constexpr int N = 20000;
  std::vector<int> Vals(N);
  std::atomic<int> Taken{0};
  std::vector<char> Seen(N, 0);

  std::thread Owner([&] {
    for (int I = 0; I != N; ++I)
      D.push(&Vals[I]);
    int *Out = nullptr;
    while (D.pop(Out)) {
      size_t Idx = static_cast<size_t>(Out - Vals.data());
      Seen[Idx]++;
      Taken.fetch_add(1);
    }
  });
  std::vector<std::thread> Thieves;
  std::vector<std::vector<size_t>> Stolen(3);
  for (int T = 0; T != 3; ++T)
    Thieves.emplace_back([&, T] {
      int *Out = nullptr;
      while (Taken.load() < N) {
        if (D.steal(Out)) {
          Stolen[static_cast<size_t>(T)].push_back(
              static_cast<size_t>(Out - Vals.data()));
          Taken.fetch_add(1);
        }
      }
    });
  Owner.join();
  for (auto &T : Thieves)
    T.join();

  for (int T = 0; T != 3; ++T)
    for (size_t Idx : Stolen[static_cast<size_t>(T)])
      Seen[Idx]++;
  EXPECT_EQ(Taken.load(), N);
  // Every element taken exactly once (no loss, no duplication).
  for (int I = 0; I != N; ++I)
    EXPECT_EQ(Seen[static_cast<size_t>(I)], 1) << "element " << I;
}

TEST(WorkStealingDeque, ManyThievesNeverObserveAForeignValue) {
  // Regression for the steal() race: the old code wrote the slot into the
  // caller's Out BEFORE the CAS decided ownership. A thief that lost the
  // race could hand its caller a value another thief (or the owner's pop)
  // already took — duplication — or, after the owner wrapped the ring, a
  // value that was never at its claimed index. Reading into a local and
  // publishing only after the CAS win makes a lost race side-effect free.
  //
  // Stress shape: a tiny initial ring (forced grows), the owner push/pop
  // cycling in bursts so Top chases Bottom closely (maximizing last-element
  // contention), and more thieves than cores. Runs under TSan in CI.
  constexpr int Rounds = 400;
  constexpr int Burst = 64;
  constexpr int NumThieves = 6;
  constexpr int N = Rounds * Burst;

  WorkStealingDeque<int *> D(/*LogInitialCap=*/1);
  std::vector<int> Vals(N);
  std::atomic<int> Taken{0};
  std::atomic<char> Seen[N] = {};

  std::vector<std::thread> Thieves;
  for (int T = 0; T != NumThieves; ++T)
    Thieves.emplace_back([&] {
      int *Out = nullptr;
      while (Taken.load() < N)
        if (D.steal(Out)) {
          size_t Idx = static_cast<size_t>(Out - Vals.data());
          ASSERT_LT(Idx, static_cast<size_t>(N));
          Seen[Idx].fetch_add(1);
          Taken.fetch_add(1);
        }
    });

  for (int R = 0; R != Rounds; ++R) {
    for (int I = 0; I != Burst; ++I)
      D.push(&Vals[R * Burst + I]);
    // Pop about half the burst back, dueling thieves for the tail.
    int *Out = nullptr;
    for (int I = 0; I != Burst / 2 && D.pop(Out); ++I) {
      size_t Idx = static_cast<size_t>(Out - Vals.data());
      Seen[Idx].fetch_add(1);
      Taken.fetch_add(1);
    }
  }
  int *Out = nullptr;
  while (D.pop(Out)) {
    Seen[static_cast<size_t>(Out - Vals.data())].fetch_add(1);
    Taken.fetch_add(1);
  }
  for (std::thread &T : Thieves)
    T.join();

  EXPECT_EQ(Taken.load(), N);
  for (int I = 0; I != N; ++I)
    EXPECT_EQ(Seen[I].load(), 1) << "element " << I;
}

TEST(Runtime, RunsRootToCompletion) {
  Runtime RT(2);
  std::atomic<int> X{0};
  RT.run([&] { X = 42; });
  EXPECT_EQ(X.load(), 42);
}

TEST(Runtime, FinishJoinsAllChildren) {
  Runtime RT(4);
  constexpr int N = 500;
  std::vector<int> Out(N, 0);
  RT.run([&] {
    FinishScope Fin;
    for (int I = 0; I != N; ++I)
      Fin.async([&Out, I] { Out[static_cast<size_t>(I)] = I + 1; });
  });
  for (int I = 0; I != N; ++I)
    EXPECT_EQ(Out[static_cast<size_t>(I)], I + 1);
}

TEST(Runtime, NestedFinishScopes) {
  Runtime RT(4);
  std::atomic<int> Stage{0};
  std::vector<int> Order;
  RT.run([&] {
    {
      FinishScope Outer;
      Outer.async([&] {
        FinishScope Inner;
        for (int I = 0; I != 50; ++I)
          Inner.async([&] { Stage.fetch_add(1); });
        Inner.wait();
        // All 50 increments joined before the outer task finishes.
        EXPECT_GE(Stage.load(), 50);
      });
    }
    EXPECT_GE(Stage.load(), 50);
  });
}

TEST(Runtime, RecursiveFibonacciSpawns) {
  // fib via async-finish, the canonical stress test for join counters.
  struct Fib {
    static void compute(int N, long &Out) {
      if (N < 2) {
        Out = N;
        return;
      }
      long A = 0, B = 0;
      {
        FinishScope Fin;
        Fin.async([N, &A] { compute(N - 1, A); });
        Fin.async([N, &B] { compute(N - 2, B); });
      }
      Out = A + B;
    }
  };
  Runtime RT(4);
  long Result = 0;
  RT.run([&] { Fib::compute(18, Result); });
  EXPECT_EQ(Result, 2584);
}

TEST(Runtime, TransitiveJoinTerminallyStrict) {
  // A finish must join grandchildren spawned by children (without their
  // own finish), per terminally-strict async-finish semantics.
  Runtime RT(4);
  std::atomic<int> Count{0};
  RT.run([&] {
    {
      FinishScope Fin;
      for (int I = 0; I != 10; ++I)
        Fin.async([&] {
          for (int J = 0; J != 10; ++J)
            async([&] { Count.fetch_add(1); });
        });
    }
    EXPECT_EQ(Count.load(), 100);
  });
  EXPECT_EQ(Count.load(), 100);
}

TEST(Runtime, ManyTasksAccumulateCorrectSum) {
  Runtime RT(4);
  constexpr int N = 2000;
  std::vector<long> Parts(N, 0);
  RT.run([&] {
    FinishScope Fin;
    for (int I = 0; I != N; ++I)
      Fin.async([&Parts, I] { Parts[static_cast<size_t>(I)] = I; });
  });
  long Sum = std::accumulate(Parts.begin(), Parts.end(), 0L);
  EXPECT_EQ(Sum, static_cast<long>(N) * (N - 1) / 2);
  EXPECT_GE(RT.tasksExecuted(), static_cast<uint64_t>(N));
}

TEST(Runtime, SingleWorkerStillCompletes) {
  Runtime RT(1);
  std::atomic<int> Count{0};
  RT.run([&] {
    FinishScope Fin;
    for (int I = 0; I != 100; ++I)
      Fin.async([&] { Count.fetch_add(1); });
  });
  EXPECT_EQ(Count.load(), 100);
}

} // namespace
