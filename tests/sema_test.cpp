//===- sema_test.cpp - Semantic analysis tests ----------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "interp/Interpreter.h"

using namespace tdr;
using namespace tdr::test;

namespace {

/// Checks that sema rejects the program with a message containing \p Needle.
void expectSemaError(const std::string &Src, const std::string &Needle) {
  ParsedProgram P = parseAndCheck(Src);
  ASSERT_TRUE(P.Diags->hasErrors()) << "expected an error mentioning '"
                                    << Needle << "'";
  EXPECT_NE(P.errors().find(Needle), std::string::npos) << P.errors();
}

TEST(Sema, AcceptsWellTypedProgram) {
  ParsedProgram P = parseAndCheck(R"(
var G: double[] ;
func scale(a: double[], f: double) {
  for (var i: int = 0; i < len(a); i = i + 1) { a[i] = a[i] * f; }
}
func main() {
  G = new double[3];
  scale(G, 2.0);
}
)");
  EXPECT_TRUE(P.ok()) << P.errors();
}

TEST(Sema, UndeclaredVariable) {
  expectSemaError("func main() { x = 1; }", "undeclared variable 'x'");
}

TEST(Sema, UndeclaredFunction) {
  expectSemaError("func main() { foo(); }", "undeclared function 'foo'");
}

TEST(Sema, NoImplicitIntDoubleConversion) {
  expectSemaError("func main() { var x: double = 1 + 2.0; }",
                  "mismatched types");
}

TEST(Sema, ConditionMustBeBool) {
  expectSemaError("func main() { if (1) { } }", "must be bool");
  expectSemaError("func main() { while (1.5) { } }", "must be bool");
}

TEST(Sema, ArgumentTypeMismatch) {
  expectSemaError(R"(
func f(x: int) { }
func main() { f(true); }
)",
                  "expects int, got bool");
}

TEST(Sema, ArgumentCountMismatch) {
  expectSemaError(R"(
func f(x: int) { }
func main() { f(1, 2); }
)",
                  "expects 1 arguments, got 2");
}

TEST(Sema, ReturnTypeChecked) {
  expectSemaError("func f(): int { return true; } func main() { f(); }",
                  "returning bool");
  expectSemaError("func f() { return 1; } func main() { f(); }",
                  "void function");
  expectSemaError("func f(): int { return; } func main() { f(); }",
                  "must return a value");
}

TEST(Sema, ReturnInsideAsyncRejected) {
  expectSemaError(R"(
func f(): int {
  async { return 1; }
  return 0;
}
func main() { f(); }
)",
                  "return is not allowed inside an async");
}

TEST(Sema, AsyncCapturedLocalsAreReadOnly) {
  // Writing a captured local inside an async is the memory-model hazard
  // the language forbids (mirrors final captures in Habanero Java).
  expectSemaError(R"(
func main() {
  var x: int = 0;
  async { x = 1; }
}
)",
                  "read-only");
}

TEST(Sema, AsyncMayWriteOwnLocalsGlobalsAndElements) {
  ParsedProgram P = parseAndCheck(R"(
var G: int = 0;
var A: int[];
func main() {
  A = new int[2];
  var x: int = 5;
  async {
    var y: int = x;  // reading a captured local is fine
    y = y + 1;       // writing an async-local is fine
    G = y;           // globals are shared
    A[0] = y;        // array elements are shared
  }
}
)");
  EXPECT_TRUE(P.ok()) << P.errors();
}

TEST(Sema, RedeclarationInSameScope) {
  expectSemaError("func main() { var x: int = 1; var x: int = 2; }",
                  "redeclaration of 'x'");
}

TEST(Sema, ShadowingInNestedScopeAllowed) {
  ParsedProgram P = parseAndCheck(R"(
func main() {
  var x: int = 1;
  {
    var x: int = 2;
    print(x);
  }
  print(x);
}
)");
  ASSERT_TRUE(P.ok()) << P.errors();
  ExecResult R = runProgram(*P.Prog);
  EXPECT_EQ(R.Output, "2\n1\n");
}

TEST(Sema, ForInductionVariableScopedToLoop) {
  expectSemaError(R"(
func main() {
  for (var i: int = 0; i < 3; i = i + 1) { }
  print(i);
}
)",
                  "undeclared variable 'i'");
}

TEST(Sema, AssignToArrayWholeRequiresMatchingType) {
  expectSemaError(R"(
var A: int[];
func main() { A = new double[3]; }
)",
                  "assigning double[]");
}

TEST(Sema, MissingMain) {
  expectSemaError("func f() { }", "no 'main' function");
}

TEST(Sema, MainTakesNoParams) {
  expectSemaError("func main(x: int) { }", "'main' must take no parameters");
}

TEST(Sema, DuplicateFunction) {
  expectSemaError("func f() { } func f() { } func main() { }",
                  "redefinition of function 'f'");
}

TEST(Sema, BuiltinShadowRejected) {
  expectSemaError("func print(x: int) { } func main() { }",
                  "shadows a builtin");
}

TEST(Sema, BitwiseRequiresInt) {
  expectSemaError("func main() { var x: double = 1.0 & 2.0; }",
                  "requires int operands");
}

TEST(Sema, ExpressionStatementMustBeCall) {
  expectSemaError("func main() { 1 + 2; }", "must be a call");
}

TEST(Sema, IndexingNonArray) {
  expectSemaError("func main() { var x: int = 3; print(x[0]); }",
                  "non-array type int");
}

TEST(Sema, ArrayIndexMustBeInt) {
  expectSemaError(R"(
var A: int[];
func main() { A = new int[3]; print(A[1.5]); }
)",
                  "index must be int");
}

TEST(Sema, IsIdempotentAcrossReruns) {
  ParsedProgram P = parseAndCheck(R"(
var G: int = 1;
func f(x: int): int { return x + G; }
func main() { print(f(2)); }
)");
  ASSERT_TRUE(P.ok()) << P.errors();
  // Re-running sema (as the repair driver does after AST edits) is fine.
  EXPECT_TRUE(runSema(*P.Prog, *P.Ctx, *P.Diags));
  ExecResult R = runProgram(*P.Prog);
  EXPECT_EQ(R.Output, "3\n");
}

} // namespace
