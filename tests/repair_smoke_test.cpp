//===- repair_smoke_test.cpp - End-to-end pipeline smoke tests ------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// End-to-end checks on the paper's running examples: strip the finishes
// from a correct program, repair it, and verify the result is race free
// and equivalent to the serial elision.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ast/AstPrinter.h"
#include "ast/Transforms.h"
#include "race/Detect.h"
#include "repair/RepairDriver.h"
#include "sched/Schedule.h"

using namespace tdr;
using namespace tdr::test;

namespace {

/// The Fibonacci program of paper Figure 8 (BoxInteger fields become
/// single-element arrays in HJ-mini).
const char *FibSource = R"(
func fib(ret: int[], n: int) {
  if (n < 2) {
    ret[0] = n;
    return;
  }
  var x: int[] = new int[1];
  var y: int[] = new int[1];
  async fib(x, n - 1);
  async fib(y, n - 2);
  ret[0] = x[0] + y[0];
}

func main() {
  var result: int[] = new int[1];
  async fib(result, arg(0));
  print(result[0]);
}
)";

TEST(RepairSmoke, FibonacciHasRacesWithoutFinish) {
  ParsedProgram P = parseAndCheck(FibSource);
  ASSERT_TRUE(P.ok()) << P.errors();
  ExecOptions Exec;
  Exec.Args = {8};
  Detection D = detectRaces(*P.Prog, EspBagsDetector::Mode::MRW, Exec);
  ASSERT_TRUE(D.ok()) << D.Exec.Error;
  EXPECT_GT(D.Report.Pairs.size(), 0u);
}

TEST(RepairSmoke, FibonacciRepairMakesRaceFree) {
  ParsedProgram P = parseAndCheck(FibSource);
  ASSERT_TRUE(P.ok()) << P.errors();

  RepairOptions Opts;
  Opts.Exec.Args = {8};
  RepairResult R = repairProgram(*P.Prog, *P.Ctx, Opts);
  ASSERT_TRUE(R.Success) << R.Error;
  EXPECT_GT(R.Stats.FinishesInserted, 0u);

  // The repaired program is race free and computes fib(8) = 21.
  Detection D = detectRaces(*P.Prog, EspBagsDetector::Mode::MRW, Opts.Exec);
  ASSERT_TRUE(D.ok()) << D.Exec.Error;
  EXPECT_TRUE(D.Report.Pairs.empty());
  EXPECT_EQ(D.Exec.Output, "21\n");
}

TEST(RepairSmoke, RepairedSourceRoundTrips) {
  std::string Repaired;
  RepairOptions Opts;
  Opts.Exec.Args = {8};
  RepairResult R = repairSource(FibSource, Repaired, Opts);
  ASSERT_TRUE(R.Success) << R.Error;
  ASSERT_FALSE(Repaired.empty());

  // The printed repaired program parses, checks, and is race free.
  ParsedProgram P2 = parseAndCheck(Repaired);
  ASSERT_TRUE(P2.ok()) << P2.errors() << "\n" << Repaired;
  Detection D = detectRaces(*P2.Prog, EspBagsDetector::Mode::MRW, Opts.Exec);
  ASSERT_TRUE(D.ok()) << D.Exec.Error;
  EXPECT_TRUE(D.Report.Pairs.empty()) << Repaired;
  EXPECT_EQ(D.Exec.Output, "21\n");
}

TEST(RepairSmoke, RepairPreservesSerialElisionSemantics) {
  ParsedProgram P = parseAndCheck(FibSource);
  ASSERT_TRUE(P.ok()) << P.errors();
  ExecOptions Exec;
  Exec.Args = {10};

  // Serial elision output (the spec the repair must preserve).
  ParsedProgram Elided = parseAndCheck(FibSource);
  ASSERT_TRUE(Elided.ok());
  elideParallelism(*Elided.Prog);
  ASSERT_TRUE(runSema(*Elided.Prog, *Elided.Ctx, *Elided.Diags));
  ExecResult Spec = runProgram(*Elided.Prog, Exec);
  ASSERT_TRUE(Spec.Ok) << Spec.Error;

  RepairOptions Opts;
  Opts.Exec = Exec;
  RepairResult R = repairProgram(*P.Prog, *P.Ctx, Opts);
  ASSERT_TRUE(R.Success) << R.Error;
  ExecResult Got = runProgram(*P.Prog, Exec);
  ASSERT_TRUE(Got.Ok) << Got.Error;
  EXPECT_EQ(Got.Output, Spec.Output);
}

TEST(RepairSmoke, MergesortExampleFromFigure1) {
  // Paper Figure 1: a finish around the two recursive asyncs is needed.
  const char *Src = R"(
var A: int[];

func merge(lo: int, mid: int, hi: int) {
  var tmp: int[] = new int[hi - lo + 1];
  var i: int = lo;
  var j: int = mid + 1;
  var k: int = 0;
  while (i <= mid && j <= hi) {
    if (A[i] <= A[j]) { tmp[k] = A[i]; i = i + 1; }
    else { tmp[k] = A[j]; j = j + 1; }
    k = k + 1;
  }
  while (i <= mid) { tmp[k] = A[i]; i = i + 1; k = k + 1; }
  while (j <= hi) { tmp[k] = A[j]; j = j + 1; k = k + 1; }
  for (var t: int = 0; t < k; t = t + 1) { A[lo + t] = tmp[t]; }
}

func mergesort(m: int, n: int) {
  if (m < n) {
    var mid: int = m + (n - m) / 2;
    async mergesort(m, mid);
    async mergesort(mid + 1, n);
    merge(m, mid, n);
  }
}

func main() {
  var n: int = arg(0);
  A = new int[n];
  randSeed(7);
  for (var i: int = 0; i < n; i = i + 1) { A[i] = randInt(1000); }
  mergesort(0, n - 1);
  var sorted: bool = true;
  for (var i: int = 1; i < n; i = i + 1) {
    if (A[i - 1] > A[i]) { sorted = false; }
  }
  print(sorted);
}
)";
  ParsedProgram P = parseAndCheck(Src);
  ASSERT_TRUE(P.ok()) << P.errors();

  RepairOptions Opts;
  Opts.Exec.Args = {64};
  RepairResult R = repairProgram(*P.Prog, *P.Ctx, Opts);
  ASSERT_TRUE(R.Success) << R.Error;

  Detection D = detectRaces(*P.Prog, EspBagsDetector::Mode::MRW, Opts.Exec);
  ASSERT_TRUE(D.ok()) << D.Exec.Error;
  EXPECT_TRUE(D.Report.Pairs.empty()) << printProgram(*P.Prog);
  EXPECT_EQ(D.Exec.Output, "true\n");

  // The repair keeps the recursive calls parallel: T1/Tinf well above 1.
  ParallelismStats S = analyzeDpst(*D.Tree, 12);
  EXPECT_GT(S.parallelism(), 1.5) << printProgram(*P.Prog);
}

} // namespace
