//===- placement_test.cpp - Finish placement DP tests ---------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// Unit and property tests for Algorithms 1-3: the paper's Figures 3/4
// worked example, hand-built graphs, and randomized comparison against the
// exhaustive reference search.
//
//===----------------------------------------------------------------------===//

#include "repair/FinishPlacement.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace tdr;

namespace {

/// The paper's Figure 3 program: asyncs A..F with execution times
/// 500, 10, 10, 400, 600, 500 and dependences B->D, A->F, D->F.
PlacementProblem figure3Problem() {
  PlacementProblem P;
  P.Times = {500, 10, 10, 400, 600, 500};
  P.IsAsync = {true, true, true, true, true, true};
  P.Edges = {{1, 3}, {0, 5}, {3, 5}};
  return P;
}

ValidRangeFn alwaysValid() {
  return [](uint32_t, uint32_t) { return true; };
}

TEST(PlacementEval, Figure4CriticalPathLengths) {
  // Figure 4 lists four placements with their CPLs. Parenthesized groups
  // are finish ranges over A..F = indices 0..5.
  PlacementProblem P = figure3Problem();
  // ( A ) ( B ) C ( D ) E F  -> 1510
  EXPECT_EQ(evalPlacementCost(P, {{0, 0}, {1, 1}, {3, 3}}), 1510u);
  // ( A B ) C ( D ) E F      -> 1500
  EXPECT_EQ(evalPlacementCost(P, {{0, 1}, {3, 3}}), 1500u);
  // ( A B C ) ( D ) E F      -> 1500
  EXPECT_EQ(evalPlacementCost(P, {{0, 2}, {3, 3}}), 1500u);
  // ( A ( B ) C D E ) F      -> 1110
  EXPECT_EQ(evalPlacementCost(P, {{0, 4}, {1, 1}}), 1110u);
}

TEST(PlacementDp, BeatsEveryFigure4Placement) {
  // Figure 4 lists four placements, the best at CPL 1110. The DP finds
  // ( A ( B ) C D ) E F: the inner finish orders B before D, the outer
  // finish orders A and D before F, and E never blocks F — CPL 1100,
  // strictly better than all the placements the figure enumerates (the
  // figure is illustrative, not exhaustive).
  PlacementProblem P = figure3Problem();
  PlacementResult R = placeFinishes(P, alwaysValid());
  ASSERT_TRUE(R.Feasible);
  EXPECT_EQ(R.Cost, 1100u);
  EXPECT_TRUE(placementResolvesAllEdges(P, R.Finishes));
  EXPECT_EQ(evalPlacementCost(P, R.Finishes), R.Cost);
}

TEST(PlacementDp, EmptyAndSingletonProblems) {
  PlacementProblem Empty;
  PlacementResult R = placeFinishes(Empty, alwaysValid());
  EXPECT_TRUE(R.Feasible);
  EXPECT_TRUE(R.Finishes.empty());

  PlacementProblem One;
  One.Times = {7};
  One.IsAsync = {true};
  R = placeFinishes(One, alwaysValid());
  EXPECT_TRUE(R.Feasible);
  EXPECT_EQ(R.Cost, 7u);
  EXPECT_TRUE(R.Finishes.empty());
}

TEST(PlacementDp, NoEdgesMeansNoFinishes) {
  PlacementProblem P;
  P.Times = {5, 10, 20, 5};
  P.IsAsync = {true, true, true, false};
  PlacementResult R = placeFinishes(P, alwaysValid());
  ASSERT_TRUE(R.Feasible);
  EXPECT_TRUE(R.Finishes.empty());
  // Three asyncs spawn instantly; the final step runs after zero delay.
  EXPECT_EQ(R.Cost, 20u);
}

TEST(PlacementDp, SingleDependenceJoinsOnlyTheSource) {
  // async(100) async(1) step(1), edge async0 -> step2. Optimal wraps only
  // the first async... except wrapping [0,0] serializes it before async1
  // spawns; [0,1] delays nothing extra because async1 is instant spawn.
  PlacementProblem P;
  P.Times = {100, 50, 1};
  P.IsAsync = {true, true, false};
  P.Edges = {{0, 2}};
  PlacementResult R = placeFinishes(P, alwaysValid());
  ASSERT_TRUE(R.Feasible);
  EXPECT_TRUE(placementResolvesAllEdges(P, R.Finishes));
  // Either {(0,0)} or {(0,1)} costs max(100 + 1, 50-ish) = 101.
  EXPECT_EQ(R.Cost, 101u);
}

TEST(PlacementDp, ValidityRestrictionForcesWiderFinish) {
  // Figure 5 scenario: A1 A2 A3 A4 with races A2->A4, A3->A4, and the
  // scope forbids any range that starts at A2 without covering A1.
  PlacementProblem P;
  P.Times = {10, 10, 10, 10};
  P.IsAsync = {true, true, true, true};
  P.Edges = {{1, 3}, {2, 3}};
  auto Valid = [](uint32_t I, uint32_t K) {
    if (I == K)
      return true;
    return !(I == 1 && K >= 1); // ranges starting at A2 are unmappable
  };
  PlacementResult R = placeFinishes(P, Valid);
  ASSERT_TRUE(R.Feasible);
  EXPECT_TRUE(placementResolvesAllEdges(P, R.Finishes));
  EXPECT_EQ(evalPlacementCost(P, R.Finishes), R.Cost);
}

TEST(PlacementDp, ChainOfDependencesSerializes) {
  // a0 -> a1 -> a2: each must finish before the next starts.
  PlacementProblem P;
  P.Times = {10, 20, 30};
  P.IsAsync = {true, true, true};
  P.Edges = {{0, 1}, {1, 2}};
  PlacementResult R = placeFinishes(P, alwaysValid());
  ASSERT_TRUE(R.Feasible);
  EXPECT_EQ(R.Cost, 60u);
  EXPECT_TRUE(placementResolvesAllEdges(P, R.Finishes));
}

TEST(PlacementDp, PreexistingFinishChildBlocksLikeAStep) {
  // A finish child (IsAsync = false) delays its successors.
  PlacementProblem P;
  P.Times = {100, 50};
  P.IsAsync = {false, true};
  PlacementResult R = placeFinishes(P, alwaysValid());
  ASSERT_TRUE(R.Feasible);
  EXPECT_EQ(R.Cost, 150u);
}

TEST(PlacementDp, InfeasibleWhenOracleRejectsEveryRange) {
  // Regression: single-node ranges used to bypass the validity oracle, so
  // a problem whose every range — including [i,i] — is unmappable came
  // back "solved" with a plan the AST layer would then reject. The DP
  // must consult the oracle for single-node ranges too and report
  // infeasibility.
  PlacementProblem P;
  P.Times = {10, 20};
  P.IsAsync = {true, false};
  P.Edges = {{0, 1}};
  ValidRangeFn Nothing = [](uint32_t, uint32_t) { return false; };
  PlacementResult Dp = placeFinishes(P, Nothing);
  EXPECT_FALSE(Dp.Feasible);
  PlacementResult Brute = bruteForcePlacement(P, Nothing);
  EXPECT_FALSE(Brute.Feasible);
}

TEST(PlacementDp, InfeasibleWhenOnlySingleNodeRangesRejected) {
  // Edge a0 -> a1 can only be resolved by a finish over exactly [0,0]:
  // a wider range would cover the sink, which leaves a0 and a1 unordered.
  // Rejecting single-node ranges therefore makes the problem infeasible —
  // but only if the degenerate [i,i] case actually flows through the
  // oracle.
  PlacementProblem P;
  P.Times = {10, 20};
  P.IsAsync = {true, true};
  P.Edges = {{0, 1}};
  ValidRangeFn NoSingles = [](uint32_t I, uint32_t K) { return I != K; };
  PlacementResult Dp = placeFinishes(P, NoSingles);
  PlacementResult Brute = bruteForcePlacement(P, NoSingles);
  EXPECT_EQ(Dp.Feasible, Brute.Feasible);
  EXPECT_FALSE(Dp.Feasible);
}

TEST(PlacementDp, FeasibleSingleNodeWrapStillFound) {
  // Sanity: with the oracle allowing single-node ranges the same problem
  // is solved by wrapping the edge source alone.
  PlacementProblem P;
  P.Times = {10, 20};
  P.IsAsync = {true, true};
  P.Edges = {{0, 1}};
  PlacementResult R = placeFinishes(P, alwaysValid());
  ASSERT_TRUE(R.Feasible);
  EXPECT_TRUE(placementResolvesAllEdges(P, R.Finishes));
}

//===----------------------------------------------------------------------===//
// Property tests: DP vs exhaustive reference on random problems
//===----------------------------------------------------------------------===//

class PlacementProperty : public ::testing::TestWithParam<uint64_t> {};

PlacementProblem randomProblem(Rng &R, size_t N) {
  PlacementProblem P;
  for (size_t I = 0; I != N; ++I) {
    P.Times.push_back(R.nextInRange(1, 100) * 10);
    P.IsAsync.push_back(R.nextBool(0.7));
  }
  // Random forward edges whose sources are asyncs.
  size_t MaxEdges = R.nextBelow(N) + 1;
  for (size_t E = 0; E != MaxEdges; ++E) {
    uint32_t X = static_cast<uint32_t>(R.nextBelow(N - 1));
    uint32_t Y =
        static_cast<uint32_t>(X + 1 + R.nextBelow(N - X - 1));
    if (!P.IsAsync[X])
      continue;
    P.Edges.push_back({X, Y});
  }
  std::sort(P.Edges.begin(), P.Edges.end());
  P.Edges.erase(std::unique(P.Edges.begin(), P.Edges.end()), P.Edges.end());
  return P;
}

TEST_P(PlacementProperty, DpMatchesExhaustiveSearch) {
  Rng R(GetParam());
  for (int Trial = 0; Trial != 40; ++Trial) {
    size_t N = 2 + R.nextBelow(7); // up to 8 nodes: brute force tractable
    PlacementProblem P = randomProblem(R, N);

    // A random validity oracle (deterministic per range).
    uint64_t ValSeed = R.next();
    auto Valid = [ValSeed](uint32_t I, uint32_t K) {
      if (I == K)
        return true;
      Rng VR(ValSeed ^ (static_cast<uint64_t>(I) << 32 | K));
      return VR.nextBool(0.8);
    };

    PlacementResult Dp = placeFinishes(P, Valid);
    PlacementResult Brute = bruteForcePlacement(P, Valid);
    ASSERT_EQ(Dp.Feasible, Brute.Feasible) << "trial " << Trial;
    if (!Dp.Feasible)
      continue;
    EXPECT_EQ(Dp.Cost, Brute.Cost) << "trial " << Trial;
    EXPECT_TRUE(placementResolvesAllEdges(P, Dp.Finishes))
        << "trial " << Trial;
    EXPECT_EQ(evalPlacementCost(P, Dp.Finishes), Dp.Cost)
        << "trial " << Trial;
  }
}

TEST_P(PlacementProperty, SolutionsAreSoundOnLargerProblems) {
  Rng R(GetParam() * 7919 + 13);
  for (int Trial = 0; Trial != 15; ++Trial) {
    size_t N = 10 + R.nextBelow(60);
    PlacementProblem P = randomProblem(R, N);
    PlacementResult Dp = placeFinishes(P, [](uint32_t, uint32_t) {
      return true;
    });
    ASSERT_TRUE(Dp.Feasible);
    EXPECT_TRUE(placementResolvesAllEdges(P, Dp.Finishes));
    EXPECT_EQ(evalPlacementCost(P, Dp.Finishes), Dp.Cost);
    // Never worse than fully serializing everything.
    uint64_t Serial = 0;
    for (uint64_t T : P.Times)
      Serial += T;
    EXPECT_LE(Dp.Cost, Serial);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacementProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 17u, 99u,
                                           1234u));

} // namespace
