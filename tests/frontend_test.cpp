//===- frontend_test.cpp - Lexer and parser tests -------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ast/AstPrinter.h"
#include "frontend/Lexer.h"
#include "interp/Interpreter.h"

using namespace tdr;
using namespace tdr::test;

namespace {

std::vector<TokenKind> lexAll(const std::string &Src) {
  DiagnosticsEngine Diags;
  Lexer L(Src, Diags);
  std::vector<TokenKind> Kinds;
  while (true) {
    Token T = L.lex();
    if (T.is(TokenKind::Eof))
      return Kinds;
    Kinds.push_back(T.Kind);
  }
}

TEST(Lexer, KeywordsAndIdentifiers) {
  auto K = lexAll("async finish var foo finishx");
  ASSERT_EQ(K.size(), 5u);
  EXPECT_EQ(K[0], TokenKind::KwAsync);
  EXPECT_EQ(K[1], TokenKind::KwFinish);
  EXPECT_EQ(K[2], TokenKind::KwVar);
  EXPECT_EQ(K[3], TokenKind::Identifier);
  EXPECT_EQ(K[4], TokenKind::Identifier); // keyword prefix is an identifier
}

TEST(Lexer, IntAndDoubleLiterals) {
  DiagnosticsEngine Diags;
  Lexer L("42 3.5 1e3 0x1F 7.25e-2 10", Diags);
  Token T = L.lex();
  EXPECT_EQ(T.Kind, TokenKind::IntLiteral);
  EXPECT_EQ(T.IntValue, 42);
  T = L.lex();
  EXPECT_EQ(T.Kind, TokenKind::DoubleLiteral);
  EXPECT_DOUBLE_EQ(T.DoubleValue, 3.5);
  T = L.lex();
  EXPECT_EQ(T.Kind, TokenKind::DoubleLiteral);
  EXPECT_DOUBLE_EQ(T.DoubleValue, 1000.0);
  T = L.lex();
  EXPECT_EQ(T.Kind, TokenKind::IntLiteral);
  EXPECT_EQ(T.IntValue, 31);
  T = L.lex();
  EXPECT_EQ(T.Kind, TokenKind::DoubleLiteral);
  EXPECT_DOUBLE_EQ(T.DoubleValue, 0.0725);
  T = L.lex();
  EXPECT_EQ(T.Kind, TokenKind::IntLiteral);
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(Lexer, OperatorsIncludingCompound) {
  auto K = lexAll("+ += == = <= << < && & | || ! != ~ ^ %= >>");
  std::vector<TokenKind> Expected = {
      TokenKind::Plus,      TokenKind::PlusAssign, TokenKind::EqEq,
      TokenKind::Assign,    TokenKind::LessEq,     TokenKind::Shl,
      TokenKind::Less,      TokenKind::AmpAmp,     TokenKind::Amp,
      TokenKind::Pipe,      TokenKind::PipePipe,   TokenKind::Bang,
      TokenKind::NotEq,     TokenKind::Tilde,      TokenKind::Caret,
      TokenKind::PercentAssign, TokenKind::Shr};
  EXPECT_EQ(K, Expected);
}

TEST(Lexer, CommentsAreSkipped) {
  auto K = lexAll("a // line comment\n b /* block\n comment */ c");
  EXPECT_EQ(K.size(), 3u);
}

TEST(Lexer, UnterminatedBlockCommentDiagnosed) {
  DiagnosticsEngine Diags;
  Lexer L("a /* never closed", Diags);
  while (L.lex().isNot(TokenKind::Eof))
    ;
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Parser, MinimalProgram) {
  ParsedProgram P = parseOnly("func main() { }");
  ASSERT_TRUE(P.Prog);
  EXPECT_FALSE(P.Diags->hasErrors());
  ASSERT_EQ(P.Prog->funcs().size(), 1u);
  EXPECT_EQ(P.Prog->funcs()[0]->name(), "main");
}

TEST(Parser, PrecedenceShapesTheTree) {
  ParsedProgram P = parseAndCheck(R"(
func main() {
  var x: int = 1 + 2 * 3;
  var y: bool = 1 < 2 && 3 < 4 || false;
  var z: int = 1 | 2 ^ 3 & 4 << 1;
  print(x);
  print(y);
  print(z);
}
)");
  ASSERT_TRUE(P.ok()) << P.errors();
  ExecResult R = runProgram(*P.Prog);
  // 1 + (2*3) = 7 ; ((1<2)&&(3<4))||false = true ;
  // 1 | (2 ^ (3 & (4<<1))) = 1 | (2^0) = 3.
  EXPECT_EQ(R.Output, "7\ntrue\n3\n");
}

TEST(Parser, AsyncAndFinishBodies) {
  ParsedProgram P = parseOnly(R"(
func f() { }
func main() {
  async f();
  finish async { f(); }
  finish {
    async f();
    async f();
  }
}
)");
  EXPECT_FALSE(P.Diags->hasErrors()) << P.errors();
}

TEST(Parser, ForHeaderVariants) {
  ParsedProgram P = parseAndCheck(R"(
func main() {
  var s: int = 0;
  for (var i: int = 0; i < 3; i = i + 1) { s = s + i; }
  var j: int = 0;
  for (; j < 2; j += 1) { s = s + 10; }
  for (j = 0; j < 1; j = j + 1) s = s + 100;
  print(s);
}
)");
  ASSERT_TRUE(P.ok()) << P.errors();
  ExecResult R = runProgram(*P.Prog);
  EXPECT_EQ(R.Output, "123\n");
}

TEST(Parser, ErrorsAreReportedWithLocation) {
  ParsedProgram P = parseOnly("func main() { var x: int = ; }");
  EXPECT_TRUE(P.Diags->hasErrors());
  std::string Rendered = P.errors();
  EXPECT_NE(Rendered.find("test.hj:1:"), std::string::npos) << Rendered;
}

TEST(Parser, MissingSemicolonRecovered) {
  ParsedProgram P = parseOnly(R"(
func main() {
  var x: int = 1
  var y: int = 2;
}
)");
  EXPECT_TRUE(P.Diags->hasErrors());
  // The parser keeps going and still builds a program.
  ASSERT_EQ(P.Prog->funcs().size(), 1u);
}

//===----------------------------------------------------------------------===//
// Did-you-mean keyword hints
//===----------------------------------------------------------------------===//

/// Parses \p Source (expected to be malformed) and returns the rendered
/// diagnostics, asserting there is at least one error.
std::string diagsFor(const std::string &Source) {
  ParsedProgram P = parseOnly(Source);
  EXPECT_TRUE(P.Diags->hasErrors()) << Source;
  return P.errors();
}

TEST(Parser, MisspelledAsyncSuggestsTheKeyword) {
  // "asinc { ... }" parses as an identifier expression followed by a
  // block; the recovery note points at the likely construct keyword.
  std::string D = diagsFor("func main() { asinc { print(1); } }");
  EXPECT_NE(D.find("did you mean 'async'?"), std::string::npos) << D;
}

TEST(Parser, MisspelledNewConstructKeywordsSuggested) {
  std::string D = diagsFor("func main() { futur f = g(); }");
  EXPECT_NE(D.find("did you mean 'future'?"), std::string::npos) << D;
  D = diagsFor("func main() { isolatd { print(1); } }");
  EXPECT_NE(D.find("did you mean 'isolated'?"), std::string::npos) << D;
  D = diagsFor(
      "func main() { forasinc (var i: int = 0; i < 4; chunk 2) { } }");
  EXPECT_NE(D.find("did you mean 'forasync'?"), std::string::npos) << D;
  D = diagsFor("func main() { finsh { print(1); } }");
  EXPECT_NE(D.find("did you mean 'finish'?"), std::string::npos) << D;
}

TEST(Parser, MisspelledKeywordInExpectedPositionSuggested) {
  // The expect() path: an identifier where a keyword token is required
  // (the forasync header demands `var`).
  std::string D = diagsFor(
      "func main() { forasync (vra i: int = 0; i < 4; chunk 2) { } }");
  EXPECT_NE(D.find("did you mean 'var'?"), std::string::npos) << D;
}

TEST(Parser, DistantIdentifiersGetNoSuggestion) {
  // Edit distance > 2 from every keyword: plain error, no hint.
  std::string D = diagsFor("func main() { zzqqxx { print(1); } }");
  EXPECT_EQ(D.find("did you mean"), std::string::npos) << D;
}

TEST(Parser, NestedArrayTypesAndNew) {
  ParsedProgram P = parseAndCheck(R"(
var M: double[][];
func main() {
  M = new double[3][4];
  M[2][3] = 1.5;
  print(M[2][3]);
  print(len(M));
  print(len(M[0]));
}
)");
  ASSERT_TRUE(P.ok()) << P.errors();
  ExecResult R = runProgram(*P.Prog);
  EXPECT_EQ(R.Output, "1.5\n3\n4\n");
}

//===----------------------------------------------------------------------===//
// Round-trip: print(parse(print(parse(src)))) is a fixpoint
//===----------------------------------------------------------------------===//

class RoundTrip : public ::testing::TestWithParam<const char *> {};

TEST_P(RoundTrip, PrintParsePrintIsFixpoint) {
  ParsedProgram P1 = parseAndCheck(GetParam());
  ASSERT_TRUE(P1.ok()) << P1.errors();
  std::string S1 = printProgram(*P1.Prog);
  ParsedProgram P2 = parseAndCheck(S1);
  ASSERT_TRUE(P2.ok()) << P2.errors() << "\n" << S1;
  std::string S2 = printProgram(*P2.Prog);
  EXPECT_EQ(S1, S2);
}

INSTANTIATE_TEST_SUITE_P(
    Snippets, RoundTrip,
    ::testing::Values(
        "func main() { print(1 + 2 * -3); }",
        "func main() { print((1 + 2) * 3); }",
        "func main() { var b: bool = !(1 < 2) || 3 >= 4; print(b); }",
        R"(var G: int[];
func main() {
  G = new int[4];
  finish {
    async G[0] = 1;
    async { G[1] = 2; }
  }
  if (G[0] > 0) { print(G[0]); } else print(G[1]);
  while (false) { }
  for (var i: int = 0; i < 2; i = i + 1) print(i);
})",
        "func f(x: double): double { return x * 2.0; }\n"
        "func main() { print(f(2.25)); }",
        "func main() { print(1.0e10); print(0.5); print(1000000.0); }",
        R"(func g(): int { return 7; }
func main() {
  future f = g();
  isolated { print(1); }
  isolated print(2);
  forasync (var i: int = 0; i < 8; chunk 2) print(i);
  print(force(f));
})"));

} // namespace
