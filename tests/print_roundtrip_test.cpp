//===- print_roundtrip_test.cpp - Parse/print round-trip over the corpus --===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// The printer is the repair tool's output stage: `tdr repair` hands users
// printProgram(AST), so printed text must parse back to a program that
// prints identically (a fixpoint after one trip) and behave identically
// under the interpreter. This pins that property over the whole program
// corpus — every Table 1 benchmark, every construct-suite program, and
// seeded random programs with the full construct vocabulary enabled —
// rather than the handful of snippets frontend_test covers.
//
//===----------------------------------------------------------------------===//

#include "RandomProgram.h"
#include "TestUtil.h"

#include "ast/AstPrinter.h"
#include "interp/Interpreter.h"
#include "suite/Benchmarks.h"
#include "suite/Constructs.h"

using namespace tdr;
using namespace tdr::test;

namespace {

/// One round trip: parse+check Source, print, parse+check the print,
/// print again; the two prints must be byte-identical. Returns the
/// second parse for behavioral comparison (empty Prog on failure).
std::string roundTrip(const std::string &Source, ParsedProgram &Reparsed,
                      const std::string &What) {
  ParsedProgram P1 = parseAndCheck(Source);
  EXPECT_TRUE(P1.ok()) << What << ":\n" << P1.errors();
  if (!P1.ok())
    return std::string();
  std::string S1 = printProgram(*P1.Prog);
  Reparsed = parseAndCheck(S1);
  EXPECT_TRUE(Reparsed.ok()) << What << ": printed text fails to re-check:\n"
                             << Reparsed.errors() << "\n"
                             << S1;
  if (!Reparsed.ok())
    return std::string();
  std::string S2 = printProgram(*Reparsed.Prog);
  EXPECT_EQ(S1, S2) << What << ": print is not a fixpoint";
  return S1;
}

/// Serial output of \p P on \p Args (original and reprinted program must
/// agree).
std::string outputOf(const ParsedProgram &P, const std::vector<int64_t> &Args,
                     const std::string &What) {
  ExecOptions Exec;
  Exec.Args = Args;
  Interpreter I(*P.Prog, Exec);
  ExecResult R = I.run();
  EXPECT_TRUE(R.Ok) << What << ": " << R.Error;
  return R.Output;
}

class BenchRoundTrip : public ::testing::TestWithParam<const BenchmarkSpec *> {
};

TEST_P(BenchRoundTrip, PrintedTextIsAFixpointAndBehaves) {
  const BenchmarkSpec &Spec = *GetParam();
  ParsedProgram Reparsed;
  if (roundTrip(Spec.Source, Reparsed, Spec.Name).empty())
    return;
  ParsedProgram Orig = parseAndCheck(Spec.Source);
  ASSERT_TRUE(Orig.ok());
  EXPECT_EQ(outputOf(Reparsed, Spec.RepairArgs, Spec.Name),
            outputOf(Orig, Spec.RepairArgs, Spec.Name))
      << Spec.Name;
}

std::vector<const BenchmarkSpec *> corpus() {
  std::vector<const BenchmarkSpec *> All;
  for (const BenchmarkSpec &B : allBenchmarks())
    All.push_back(&B);
  for (const BenchmarkSpec &B : constructBenchmarks())
    All.push_back(&B);
  return All;
}

INSTANTIATE_TEST_SUITE_P(Corpus, BenchRoundTrip, ::testing::ValuesIn(corpus()),
                         [](const ::testing::TestParamInfo<
                             const BenchmarkSpec *> &Info) {
                           std::string Name = Info.param->Name;
                           for (char &C : Name)
                             if (!std::isalnum(static_cast<unsigned char>(C)))
                               C = '_';
                           return Name;
                         });

class RandomRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomRoundTrip, GeneratedProgramsRoundTrip) {
  Rng SeedGen(GetParam());
  for (int Trial = 0; Trial != 20; ++Trial) {
    uint64_t Seed = SeedGen.next();
    // Default profile and the full construct vocabulary; printed
    // future/isolated/forasync forms must re-parse to the same print.
    for (bool Constructs : {false, true}) {
      RandomProgramGen Gen(Seed);
      if (Constructs)
        Gen.enableConstructs();
      std::string Src = Gen.generate();
      std::string What =
          strFormat("seed %llu constructs=%d",
                    static_cast<unsigned long long>(Seed), Constructs ? 1 : 0);
      ParsedProgram Reparsed;
      if (roundTrip(Src, Reparsed, What).empty())
        continue;
      ParsedProgram Orig = parseAndCheck(Src);
      ASSERT_TRUE(Orig.ok());
      EXPECT_EQ(outputOf(Reparsed, {}, What), outputOf(Orig, {}, What))
          << What << "\n"
          << Src;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRoundTrip,
                         ::testing::Values(17u, 9182736455u, 5551212u));

} // namespace
