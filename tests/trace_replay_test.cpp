//===- trace_replay_test.cpp - Record/replay trace tests ------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// Record-once / replay-many (src/trace): the event stream recorded on the
// first interpretation of an input, replayed through the edit map, must be
// indistinguishable from a fresh interpretation of the edited program —
// that is the contract the whole replay-backed repair loop rests on.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "RandomProgram.h"
#include "ast/Transforms.h"
#include "race/Detect.h"
#include "repair/MultiInput.h"
#include "repair/RepairDriver.h"
#include "support/StringUtils.h"
#include "trace/Replay.h"

#include <string>
#include <unordered_map>
#include <vector>

using namespace tdr;
using namespace tdr::test;

namespace {

/// Renders the full monitor event stream as text, numbering every distinct
/// pointer by first appearance. Two executions that emit identical event
/// streams (same kinds, same order, same pointer-identity pattern) render
/// identically, and a mismatch diffs readably. Work units are summed
/// across runs with no other event in between — the canonical form
/// RecorderMonitor stores — so fresh and replayed streams stay comparable.
class StreamPrinter final : public ExecMonitor {
public:
  void onAsyncEnter(const AsyncStmt *S, const Stmt *O) override {
    flushWork();
    Out += strFormat("async+ %d %d\n", id(S), id(O));
  }
  void onAsyncExit(const AsyncStmt *S) override {
    flushWork();
    Out += strFormat("async- %d\n", id(S));
  }
  void onFinishEnter(const FinishStmt *S, const Stmt *O) override {
    flushWork();
    Out += strFormat("finish+ %d %d\n", id(S), id(O));
  }
  void onFinishExit(const FinishStmt *S) override {
    flushWork();
    Out += strFormat("finish- %d\n", id(S));
  }
  void onScopeEnter(ScopeKind K, const Stmt *O, const BlockStmt *B,
                    const FuncDecl *F) override {
    flushWork();
    Out += strFormat("scope+ %d %d %d %d\n", static_cast<int>(K), id(O),
                     id(B), id(F));
  }
  void onScopeExit() override {
    flushWork();
    Out += "scope-\n";
  }
  void onStepPoint(const Stmt *O) override {
    flushWork();
    Out += strFormat("step %d\n", id(O));
  }
  void onWork(uint64_t U) override { PendingWork += U; }
  void onRead(MemLoc L) override {
    flushWork();
    Out += "read " + L.str() + "\n";
  }
  void onWrite(MemLoc L) override {
    flushWork();
    Out += "write " + L.str() + "\n";
  }

  std::string take() {
    flushWork();
    return Out;
  }

  std::string Out;

private:
  void flushWork() {
    if (!PendingWork)
      return;
    Out += strFormat("work %llu\n", static_cast<unsigned long long>(PendingWork));
    PendingWork = 0;
  }

  int id(const void *P) {
    if (!P)
      return -1;
    auto It = Ids.try_emplace(P, static_cast<int>(Ids.size())).first;
    return It->second;
  }
  std::unordered_map<const void *, int> Ids;
  uint64_t PendingWork = 0;
};

/// Records one interpretation of \p P.
trace::InputTrace record(Program &P, std::vector<int64_t> Args = {}) {
  trace::InputTrace T;
  trace::RecorderMonitor Rec(T.Log);
  ExecOptions E;
  E.Args = std::move(Args);
  E.Monitor = &Rec;
  T.Exec = runProgram(P, E);
  Rec.flush();
  return T;
}

/// The event stream a fresh interpretation of \p P emits.
std::string freshStream(Program &P, std::vector<int64_t> Args = {}) {
  StreamPrinter SP;
  ExecOptions E;
  E.Args = std::move(Args);
  E.Monitor = &SP;
  runProgram(P, E);
  return SP.take();
}

/// The event stream replaying \p T against the current AST emits.
std::string replayStream(const trace::InputTrace &T, const Program &P,
                         const FinishEditMap &Edits) {
  trace::ReplayPlan Plan = trace::buildReplayPlan(P, Edits);
  StreamPrinter SP;
  trace::replayEvents(T.Log, Plan, SP);
  return SP.take();
}

const char *TwoAsyncs = R"(
var X: int = 0;
var Y: int = 0;
func main() {
  async { X = 1; }
  X = 2;
  async { Y = 1; }
  Y = 2;
  print(X + Y);
}
)";

TEST(TraceReplay, VerbatimWithoutEdits) {
  ParsedProgram P = parseAndCheck(TwoAsyncs);
  ASSERT_TRUE(P.ok()) << P.errors();
  trace::InputTrace T = record(*P.Prog);
  ASSERT_TRUE(T.Exec.Ok);
  EXPECT_FALSE(T.Log.empty());
  FinishEditMap NoEdits;
  EXPECT_EQ(replayStream(T, *P.Prog, NoEdits), freshStream(*P.Prog));
}

TEST(TraceReplay, SingleStatementBlockWrap) {
  ParsedProgram P = parseAndCheck(TwoAsyncs);
  ASSERT_TRUE(P.ok()) << P.errors();
  trace::InputTrace T = record(*P.Prog);

  // Wrap just the first async: single-statement wrap, no synthesized body
  // block — the replayer takes the owner-remap path.
  BlockStmt *Body = P.Prog->mainFunc()->body();
  FinishEditMap Edits;
  FinishStmt *F = wrapInFinish(*P.Ctx, Body, 0, 0, &Edits);
  ASSERT_NE(F, nullptr);
  ASSERT_EQ(Edits.edits().size(), 1u);
  EXPECT_EQ(Edits.edits()[0].Finish, F);
  EXPECT_EQ(Edits.edits()[0].NewBody, nullptr);
  EXPECT_EQ(Edits.edits()[0].First, Edits.edits()[0].Last);
  EXPECT_TRUE(Edits.isNewFinish(F));

  EXPECT_EQ(replayStream(T, *P.Prog, Edits), freshStream(*P.Prog));
}

TEST(TraceReplay, AdjacentAndNestedBlockWraps) {
  ParsedProgram P = parseAndCheck(TwoAsyncs);
  ASSERT_TRUE(P.ok()) << P.errors();
  trace::InputTrace T = record(*P.Prog);

  BlockStmt *Body = P.Prog->mainFunc()->body();
  FinishEditMap Edits;
  // First wrap: [async X; X = 2] — multi-statement, synthesized body.
  FinishStmt *F1 = wrapInFinish(*P.Ctx, Body, 0, 1, &Edits);
  ASSERT_NE(F1, nullptr);
  EXPECT_NE(Edits.edits()[0].NewBody, nullptr);
  EXPECT_TRUE(Edits.isNewBlock(Edits.edits()[0].NewBody));
  EXPECT_EQ(replayStream(T, *P.Prog, Edits), freshStream(*P.Prog));

  // Adjacent wrap: [async Y; Y = 2] right behind the first finish.
  FinishStmt *F2 = wrapInFinish(*P.Ctx, Body, 1, 2, &Edits);
  ASSERT_NE(F2, nullptr);
  EXPECT_EQ(replayStream(T, *P.Prog, Edits), freshStream(*P.Prog));

  // Nested wrap: both finishes under one outer finish.
  FinishStmt *F3 = wrapInFinish(*P.Ctx, Body, 0, 1, &Edits);
  ASSERT_NE(F3, nullptr);
  ASSERT_EQ(Edits.edits().size(), 3u);
  EXPECT_EQ(replayStream(T, *P.Prog, Edits), freshStream(*P.Prog));
}

TEST(TraceReplay, WrapsInsideLoopsAndCalls) {
  const char *Src = R"(
var A: int[];
func work(i: int) {
  async { A[i] = i; }
  A[0] = A[0] + 1;
}
func main() {
  A = new int[8];
  for (var i: int = 0; i < 4; i = i + 1) {
    work(i);
  }
  print(A[0]);
}
)";
  ParsedProgram P = parseAndCheck(Src);
  ASSERT_TRUE(P.ok()) << P.errors();
  trace::InputTrace T = record(*P.Prog);
  ASSERT_TRUE(T.Exec.Ok) << T.Exec.Error;

  // Wrap the async inside `work` — the wrap re-fires on every dynamic call
  // frame during replay, like StaticPlacer replication does.
  BlockStmt *WorkBody = P.Prog->findFunc("work")->body();
  FinishEditMap Edits;
  wrapInFinish(*P.Ctx, WorkBody, 0, 0, &Edits);
  EXPECT_EQ(replayStream(T, *P.Prog, Edits), freshStream(*P.Prog));

  // And wrap the whole call statement range inside the loop body too.
  wrapInFinish(*P.Ctx, WorkBody, 0, 1, &Edits);
  EXPECT_EQ(replayStream(T, *P.Prog, Edits), freshStream(*P.Prog));
}

TEST(TraceReplay, RepairedProgramsMatchFreshDetection) {
  // The end-to-end differential the replay design is judged by: repair
  // random racy programs with ReplayCheck on — every replayed detection is
  // compared byte-for-byte against a fresh interpretation, across all
  // iterations and both detector modes — then cross-check the final state
  // with the Theorem-1 oracle, replayed and fresh.
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    RandomProgramGen Gen(Seed);
    std::string Source = Gen.generate();
    for (EspBagsDetector::Mode Mode :
         {EspBagsDetector::Mode::MRW, EspBagsDetector::Mode::SRW}) {
      ParsedProgram P = parseAndCheck(Source);
      ASSERT_TRUE(P.ok()) << P.errors();
      stripFinishes(*P.Prog);

      trace::TraceStore Store;
      RepairOptions Opts;
      Opts.Mode = Mode;
      Opts.ReplayCheck = true;
      Opts.Store = &Store;
      RepairResult R = repairProgram(*P.Prog, *P.Ctx, Opts);
      // Repair may legitimately fail (infeasible placement), but never
      // with a replay divergence.
      EXPECT_EQ(R.Error.find("mismatch"), std::string::npos)
          << "seed " << Seed << " mode " << static_cast<int>(Mode) << ": "
          << R.Error;
      if (R.Success) {
        EXPECT_EQ(R.Stats.Interpretations, 1u) << "seed " << Seed;
      }

      const trace::TraceEntry *Entry = Store.find(0);
      ASSERT_NE(Entry, nullptr);
      ASSERT_TRUE(Entry->Recorded);
      trace::ReplayPlan Plan = trace::buildReplayPlan(*P.Prog, Entry->Edits);
      Detection Replayed = detectRacesOracle(*P.Prog, Entry->Trace, Plan);
      Detection Fresh = detectRacesOracle(*P.Prog);
      EXPECT_EQ(renderRaceReportKey(Replayed.Report),
                renderRaceReportKey(Fresh.Report))
          << "oracle diverged at seed " << Seed;
    }
  }
}

TEST(TraceReplay, ReplayCountsInStats) {
  ParsedProgram P = parseAndCheck(TwoAsyncs);
  ASSERT_TRUE(P.ok());
  RepairResult R = repairProgram(*P.Prog, *P.Ctx, RepairOptions());
  ASSERT_TRUE(R.Success) << R.Error;
  // Racy program: at least one repairing run plus one verifying run, and
  // only the first interpreted.
  ASSERT_GE(R.Stats.Iterations, 2u);
  EXPECT_EQ(R.Stats.Interpretations, 1u);
  EXPECT_EQ(R.Stats.Replays, R.Stats.Iterations - 1);
}

TEST(TraceReplay, NoReplayOptionInterpretsEveryIteration) {
  ParsedProgram P = parseAndCheck(TwoAsyncs);
  ASSERT_TRUE(P.ok());
  RepairOptions Opts;
  Opts.UseReplay = false;
  RepairResult R = repairProgram(*P.Prog, *P.Ctx, Opts);
  ASSERT_TRUE(R.Success) << R.Error;
  EXPECT_EQ(R.Stats.Replays, 0u);
  EXPECT_EQ(R.Stats.Interpretations, R.Stats.Iterations);
}

TEST(TraceReplay, ZeroMaxIterationsIsAConfigurationError) {
  // Regression: this used to fall straight through the repair loop and
  // misreport race-free programs as "races remained after 0 repair
  // iterations".
  ParsedProgram P = parseAndCheck("func main() { print(1); }");
  ASSERT_TRUE(P.ok());
  RepairOptions Opts;
  Opts.MaxIterations = 0;
  RepairResult R = repairProgram(*P.Prog, *P.Ctx, Opts);
  EXPECT_FALSE(R.Success);
  EXPECT_NE(R.Error.find("MaxIterations"), std::string::npos) << R.Error;
  EXPECT_EQ(R.Error.find("races remained"), std::string::npos) << R.Error;

  // The same program with one iteration is (correctly) race free.
  Opts.MaxIterations = 1;
  RepairResult R1 = repairProgram(*P.Prog, *P.Ctx, Opts);
  EXPECT_TRUE(R1.Success) << R1.Error;
}

TEST(TraceReplay, CoverageFromRecordedLogsMatchesFreshRuns) {
  const char *Src = R"(
var X: int = 0;
var Y: int = 0;
func main() {
  var n: int = arg(0);
  async { X = n; }
  if (n > 10) {
    async { Y = n; }
  }
  print(X + Y);
}
)";
  ParsedProgram P = parseAndCheck(Src);
  ASSERT_TRUE(P.ok());
  std::vector<ExecOptions> Inputs(2);
  Inputs[0].Args = {5};
  Inputs[1].Args = {20};

  trace::TraceStore Store;
  MultiRepairResult R = repairProgramForInputs(
      *P.Prog, *P.Ctx, Inputs, EspBagsDetector::Mode::MRW, &Store);
  ASSERT_TRUE(R.Success) << R.Error;
  ASSERT_EQ(Store.numEntries(), 2u);

  CoverageReport FromLogs = analyzeTestCoverage(*P.Prog, Inputs, &Store);
  CoverageReport FromRuns = analyzeTestCoverage(*P.Prog, Inputs);
  ASSERT_EQ(FromLogs.Sites.size(), FromRuns.Sites.size());
  for (size_t S = 0; S != FromLogs.Sites.size(); ++S) {
    EXPECT_EQ(FromLogs.Sites[S].Site, FromRuns.Sites[S].Site);
    EXPECT_EQ(FromLogs.Sites[S].InstancesPerInput,
              FromRuns.Sites[S].InstancesPerInput);
  }
  EXPECT_EQ(FromLogs.NumExercised, FromRuns.NumExercised);
  EXPECT_EQ(FromLogs.NumUnexercised, FromRuns.NumUnexercised);
  EXPECT_TRUE(FromLogs.FailedInputs.empty());
}

TEST(TraceReplay, CoverageReportsRecordedFailures) {
  // Input 0 crashes (out-of-bounds); its recorded failure must surface in
  // FailedInputs exactly like a fresh run's would.
  const char *Src = R"(
var A: int[];
func main() {
  A = new int[4];
  A[arg(0)] = 1;
  async { A[0] = 2; }
  print(A[0]);
}
)";
  ParsedProgram P = parseAndCheck(Src);
  ASSERT_TRUE(P.ok());
  std::vector<ExecOptions> Inputs(2);
  Inputs[0].Args = {99}; // out of bounds
  Inputs[1].Args = {1};

  trace::TraceStore Store;
  MultiRepairResult R = repairProgramForInputs(
      *P.Prog, *P.Ctx, Inputs, EspBagsDetector::Mode::MRW, &Store);
  EXPECT_FALSE(R.Success); // input 0 fails at run time

  CoverageReport FromLogs = analyzeTestCoverage(*P.Prog, Inputs, &Store);
  CoverageReport FromRuns = analyzeTestCoverage(*P.Prog, Inputs);
  ASSERT_EQ(FromLogs.FailedInputs.size(), 1u);
  ASSERT_EQ(FromRuns.FailedInputs.size(), 1u);
  EXPECT_EQ(FromLogs.FailedInputs[0].Index, 0u);
  EXPECT_EQ(FromLogs.FailedInputs[0].Error, FromRuns.FailedInputs[0].Error);
}

//===----------------------------------------------------------------------===//
// Out-of-core event logs (TDR_LOG_SPILL / setSpillThreshold)
//===----------------------------------------------------------------------===//

/// Enough iterations to fill a dozen-plus 2048-event chunks, so a small
/// spill threshold genuinely migrates a prefix to disk.
const char *ManyEvents = R"(
var A: int[];
func main() {
  A = new int[64];
  for (var i: int = 0; i < 3000; i = i + 1) {
    A[i % 64] = A[(i + 1) % 64] + 1;
    async { A[(i + 7) % 64] = i; }
  }
  print(A[0]);
}
)";

/// Records one interpretation into a log with the given spill threshold
/// (0 = fully resident).
trace::InputTrace recordWithThreshold(Program &P, size_t Threshold) {
  trace::InputTrace T;
  T.Log.setSpillThreshold(Threshold);
  trace::RecorderMonitor Rec(T.Log);
  ExecOptions E;
  E.Monitor = &Rec;
  T.Exec = runProgram(P, E);
  Rec.flush();
  return T;
}

TEST(TraceSpill, SpilledLogStreamsIdenticallyToResident) {
  ParsedProgram P = parseAndCheck(ManyEvents);
  ASSERT_TRUE(P.ok()) << P.errors();

  trace::InputTrace Resident = recordWithThreshold(*P.Prog, 0);
  ASSERT_TRUE(Resident.Exec.Ok) << Resident.Exec.Error;
  EXPECT_FALSE(Resident.Log.spilled());

  size_t Threshold = 2 * trace::EventLog::ChunkBytes;
  trace::InputTrace Spilled = recordWithThreshold(*P.Prog, Threshold);
  ASSERT_TRUE(Spilled.Exec.Ok) << Spilled.Exec.Error;
  ASSERT_TRUE(Spilled.Log.spilled());
  EXPECT_EQ(Spilled.Log.size(), Resident.Log.size());
  EXPECT_GT(Spilled.Log.bytesSpilled(), 0u);
  // The resident window stays bounded: at most the threshold plus the
  // chunk being filled (spilling happens at chunk boundaries).
  EXPECT_LE(Spilled.Log.bytesResident(),
            Threshold + trace::EventLog::ChunkBytes);
  EXPECT_LT(Spilled.Log.bytesResident(), Spilled.Log.bytesReserved());

  // The replayed stream through the spilled log is byte-identical to the
  // resident one and to a fresh interpretation.
  FinishEditMap NoEdits;
  std::string Fresh = freshStream(*P.Prog);
  EXPECT_EQ(replayStream(Spilled, *P.Prog, NoEdits), Fresh);
  EXPECT_EQ(replayStream(Resident, *P.Prog, NoEdits), Fresh);
}

TEST(TraceSpill, SpilledReplayDetectionMatchesFresh) {
  ParsedProgram P = parseAndCheck(ManyEvents);
  ASSERT_TRUE(P.ok()) << P.errors();
  trace::InputTrace T =
      recordWithThreshold(*P.Prog, 2 * trace::EventLog::ChunkBytes);
  ASSERT_TRUE(T.Exec.Ok) << T.Exec.Error;
  ASSERT_TRUE(T.Log.spilled());

  FinishEditMap NoEdits;
  trace::ReplayPlan Plan = trace::buildReplayPlan(*P.Prog, NoEdits);
  for (DetectBackend Backend :
       {DetectBackend::EspBags, DetectBackend::VectorClock,
        DetectBackend::Par}) {
    DetectOptions Opts;
    Opts.Backend = Backend;
    Detection Replayed = detectRaces(*P.Prog, Opts, T, Plan);
    Detection Fresh = detectRaces(*P.Prog, Opts);
    ASSERT_TRUE(Fresh.ok()) << Fresh.Exec.Error;
    EXPECT_EQ(renderRaceReportKey(Replayed.Report),
              renderRaceReportKey(Fresh.Report))
        << "backend " << detectBackendName(Backend);
  }
}

TEST(TraceSpill, ClearDropsSpillAndLogIsReusable) {
  ParsedProgram P = parseAndCheck(ManyEvents);
  ASSERT_TRUE(P.ok()) << P.errors();
  trace::InputTrace T =
      recordWithThreshold(*P.Prog, 2 * trace::EventLog::ChunkBytes);
  ASSERT_TRUE(T.Log.spilled());

  T.Log.clear();
  EXPECT_TRUE(T.Log.empty());
  EXPECT_FALSE(T.Log.spilled());
  EXPECT_EQ(T.Log.bytesReserved(), 0u);
  EXPECT_EQ(T.Log.spillThreshold(), 2 * trace::EventLog::ChunkBytes);

  // Re-record into the same log; the retained threshold spills again and
  // the stream still matches a fresh interpretation.
  {
    trace::RecorderMonitor Rec(T.Log);
    ExecOptions E;
    E.Monitor = &Rec;
    T.Exec = runProgram(*P.Prog, E);
    Rec.flush();
  }
  ASSERT_TRUE(T.Exec.Ok);
  EXPECT_TRUE(T.Log.spilled());
  FinishEditMap NoEdits;
  EXPECT_EQ(replayStream(T, *P.Prog, NoEdits), freshStream(*P.Prog));
}

TEST(TraceReplay, StoreBroadcastsEditsToAllRecordedEntries) {
  ParsedProgram P = parseAndCheck(TwoAsyncs);
  ASSERT_TRUE(P.ok());
  trace::TraceStore Store;
  Store.entry(0).Trace = record(*P.Prog);
  Store.entry(0).Recorded = true;
  Store.entry(1); // created but never recorded

  BlockStmt *Body = P.Prog->mainFunc()->body();
  FinishStmt *F = wrapInFinish(*P.Ctx, Body, 0, 0, &Store);
  ASSERT_NE(F, nullptr);
  EXPECT_TRUE(Store.find(0)->Edits.isNewFinish(F));
  EXPECT_TRUE(Store.find(1)->Edits.empty()); // unrecorded entries untouched
}

} // namespace
