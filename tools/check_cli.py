#!/usr/bin/env python3
"""Validate the tdr CLI's option handling, focusing on backend selection.

The CLI's contract (see tools/tdr.cpp): garbage in any validated option —
`--backend`, `TDR_BACKEND`, `--constructs`, `--workers`, `--procs` —
exits 2 with a one-line diagnostic on stderr, before any input file is
touched. A `--backend` flag that contradicts `TDR_BACKEND` in the
environment is a conflict, not a silent precedence choice. Agreement (or
either source alone) must run normally: `tdr races` exits 0 on a
race-free input and 1 when races are found, and both count as success
here. The `--constructs` allowlist is also exercised end to end: the
default list forces a future on the pipeline program where that is
strictly cheaper, while `--constructs finish` pins the paper's
finish-only repair, and both outputs must be race free.

Invoked from CTest (see tools/CMakeLists.txt) but also usable standalone:

    python3 tools/check_cli.py build/tools/tdr
"""

import os
import subprocess
import sys
import tempfile

RACY_PROGRAM = """\
func work(a: int[], i: int) {
  a[i] = a[i] + 1;
  a[0] = a[0] + i;
}

func main() {
  var n: int = arg(0);
  var a: int[] = new int[n + 1];
  for (var i: int = 1; i <= n; i = i + 1) {
    async work(a, i);
  }
  print(a[0]);
}
"""

# The construct suite's future pipeline (src/suite/ProgramsConstructs.cpp
# documents the cost structure): `force(f);` in front of the early read
# joins only the producer's subtree, so the chooser picks it whenever
# `future` is on the allowlist; finish-only repair must still succeed.
FUTURE_PROGRAM = """\
func produce(a: int[], n: int): int {
  var s: int = 0;
  for (var i: int = 0; i < n; i = i + 1) {
    s = s + i;
    a[1] = s;
  }
  return s;
}

func mix(b: int[], slot: int, n: int) {
  var s: int = 0;
  for (var i: int = 0; i < n; i = i + 1) {
    s = s + i * i;
  }
  b[slot] = s;
}

func main() {
  var n: int = arg(0);
  var a: int[] = new int[2];
  var b: int[] = new int[2];
  future f = produce(a, n);
  async mix(b, 0, 8 * n);
  print(a[1]);
  async mix(b, 1, n);
  finish {
  }
  print(b[0] + b[1]);
}
"""

FAILURES = []


def check(cond, msg):
    if not cond:
        FAILURES.append(msg)


def run(cmd, env_overrides=None):
    """Runs cmd with a scrubbed backend environment plus overrides."""
    env = dict(os.environ)
    env.pop("TDR_BACKEND", None)
    env.pop("TDR_BACKEND_CHECK", None)
    if env_overrides:
        env.update(env_overrides)
    return subprocess.run(cmd, capture_output=True, text=True, env=env)


def expect_error(label, result, needle):
    check(
        result.returncode == 2,
        f"{label}: expected exit 2, got {result.returncode}",
    )
    check(
        needle in result.stderr,
        f"{label}: stderr missing {needle!r}: {result.stderr.strip()!r}",
    )


def expect_success(label, result, ok_codes=(0, 1)):
    check(
        result.returncode in ok_codes,
        f"{label}: expected exit in {ok_codes}, got {result.returncode}: "
        f"{result.stderr.strip()}",
    )


def main():
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} <path-to-tdr-binary>", file=sys.stderr)
        return 2
    tdr = sys.argv[1]

    with tempfile.TemporaryDirectory(prefix="tdr-check-cli-") as tmp:
        prog = os.path.join(tmp, "racy.hj")
        with open(prog, "w") as f:
            f.write(RACY_PROGRAM)
        races = [tdr, "races", prog, "--arg", "6"]

        # Rejections: exit 2 plus a diagnostic naming the offender.
        expect_error(
            "unknown --backend",
            run([tdr, "races", prog, "--backend", "bogus"]),
            "--backend expects 'espbags', 'vc', or 'par'",
        )
        expect_error(
            "unknown TDR_BACKEND",
            run(races, {"TDR_BACKEND": "warp-drive"}),
            "TDR_BACKEND expects 'espbags', 'vc', or 'par'",
        )
        expect_error(
            "flag/env conflict",
            run(races + ["--backend", "vc"], {"TDR_BACKEND": "espbags"}),
            "conflicts with TDR_BACKEND",
        )
        expect_error(
            "flag/env conflict (reversed)",
            run(races + ["--backend", "espbags"], {"TDR_BACKEND": "vc"}),
            "conflicts with TDR_BACKEND",
        )
        # Same convention for the numeric options.
        expect_error(
            "garbage --workers",
            run([tdr, "run", prog, "--workers", "banana"]),
            "--workers expects a positive integer",
        )
        expect_error(
            "garbage --procs",
            run([tdr, "stats", prog, "--procs", "-3"]),
            "--procs expects a positive integer",
        )

        # Acceptances: flag alone, env alone, and flag+env agreement all
        # run the detection (exit 1 = races found on this racy input).
        for backend in ("espbags", "vc", "par"):
            expect_success(
                f"--backend {backend}",
                run(races + ["--backend", backend]),
            )
            expect_success(
                f"TDR_BACKEND={backend}",
                run(races, {"TDR_BACKEND": backend}),
            )
            expect_success(
                f"--backend {backend} agreeing with env",
                run(races + ["--backend", backend], {"TDR_BACKEND": backend}),
            )

        # Repair-construct allowlists (--constructs): malformed lists are
        # rejected eagerly with the list parser's diagnostic, exit 2,
        # before any input file is touched.
        expect_error(
            "unknown construct name",
            run(races + ["--constructs", "finish,barrier"]),
            "error: --constructs: unknown construct 'barrier'",
        )
        expect_error(
            "construct list without finish",
            run(races + ["--constructs", "future,isolated"]),
            "must include 'finish'",
        )
        expect_error(
            "duplicate construct",
            run(races + ["--constructs", "finish,future,finish"]),
            "construct 'finish' listed twice",
        )
        expect_error(
            "empty construct entry",
            run(races + ["--constructs", "finish,,isolated"]),
            "empty construct name",
        )
        expect_error(
            "--constructs missing its value",
            run([tdr, "repair", prog, "--constructs"]),
            "--constructs expects a value",
        )

        # Acceptance: on the future pipeline the default allowlist picks a
        # force (strictly cheaper than any realizable finish range), while
        # `--constructs finish` pins the paper's finish-only repair. Both
        # repaired programs must be race free.
        fprog = os.path.join(tmp, "pipeline.hj")
        with open(fprog, "w") as f:
            f.write(FUTURE_PROGRAM)
        for spec, wants_force in (("finish,future", True), ("finish", False)):
            out = os.path.join(tmp, f"pipeline-{spec.replace(',', '-')}.hj")
            expect_success(
                f"repair --constructs {spec}",
                run([tdr, "repair", fprog, "--arg", "40",
                     "--constructs", spec, "-o", out]),
                ok_codes=(0,),
            )
            check(
                os.path.exists(out),
                f"repair --constructs {spec}: no -o file",
            )
            if not os.path.exists(out):
                continue
            with open(out) as f:
                repaired = f.read()
            check(
                ("force(f);" in repaired) == wants_force,
                f"repair --constructs {spec}: expected inserted force(f); "
                f"to be {'present' if wants_force else 'absent'}",
            )
            expect_success(
                f"repaired pipeline ({spec}) race free",
                run([tdr, "races", out, "--arg", "40"]),
                ok_codes=(0,),
            )

        # The explain/--report surface follows the same conventions: bad
        # invocations exit 2 with a usage line, a missing report file is a
        # runtime error (exit 1), and --report actually writes the file.
        expect_error(
            "explain with no file",
            run([tdr, "explain"]),
            "usage: tdr",
        )
        expect_error(
            "--report missing its value",
            run([tdr, "races", prog, "--report"]),
            "--report expects a value",
        )
        missing = run([tdr, "explain", os.path.join(tmp, "missing.json")])
        check(
            missing.returncode == 1,
            f"explain missing.json: expected exit 1, got {missing.returncode}",
        )
        check(
            "cannot open" in missing.stderr,
            f"explain missing.json: stderr missing 'cannot open': "
            f"{missing.stderr.strip()!r}",
        )
        report = os.path.join(tmp, "report.json")
        expect_success(
            "races --report",
            run(races + ["--report", report]),
        )
        check(os.path.exists(report), "races --report: no report file")

        # End to end: repair under each backend produces the same repaired
        # program, and the repaired program is race free under the other.
        outs = {}
        for backend in ("espbags", "vc", "par"):
            out = os.path.join(tmp, f"repaired-{backend}.hj")
            expect_success(
                f"repair --backend {backend}",
                run([tdr, "repair", prog, "--arg", "6", "--backend", backend,
                     "-o", out]),
                ok_codes=(0,),
            )
            check(os.path.exists(out), f"repair --backend {backend}: no -o file")
            if os.path.exists(out):
                with open(out) as f:
                    outs[backend] = f.read()
        if len(outs) == 3:
            check(
                outs["espbags"] == outs["vc"],
                "repaired programs differ between espbags and vc",
            )
            check(
                outs["espbags"] == outs["par"],
                "repaired programs differ between espbags and par",
            )
            for backend in ("vc", "par"):
                expect_success(
                    f"repaired program race free under {backend}",
                    run([tdr, "races", os.path.join(tmp, "repaired-espbags.hj"),
                         "--arg", "6", "--backend", backend]),
                    ok_codes=(0,),
                )

    if FAILURES:
        for msg in FAILURES:
            print(f"check_cli: FAIL: {msg}", file=sys.stderr)
        return 1
    print("check_cli: OK (backend/constructs/option validation behaves as "
          "documented)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
