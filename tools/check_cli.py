#!/usr/bin/env python3
"""Validate the tdr CLI's option handling, focusing on backend selection.

The CLI's contract (see tools/tdr.cpp): garbage in any validated option —
`--backend`, `TDR_BACKEND`, `--workers`, `--procs` — exits 2 with a
one-line diagnostic on stderr, before any input file is touched. A
`--backend` flag that contradicts `TDR_BACKEND` in the environment is a
conflict, not a silent precedence choice. Agreement (or either source
alone) must run normally: `tdr races` exits 0 on a race-free input and 1
when races are found, and both count as success here.

Invoked from CTest (see tools/CMakeLists.txt) but also usable standalone:

    python3 tools/check_cli.py build/tools/tdr
"""

import os
import subprocess
import sys
import tempfile

RACY_PROGRAM = """\
func work(a: int[], i: int) {
  a[i] = a[i] + 1;
  a[0] = a[0] + i;
}

func main() {
  var n: int = arg(0);
  var a: int[] = new int[n + 1];
  for (var i: int = 1; i <= n; i = i + 1) {
    async work(a, i);
  }
  print(a[0]);
}
"""

FAILURES = []


def check(cond, msg):
    if not cond:
        FAILURES.append(msg)


def run(cmd, env_overrides=None):
    """Runs cmd with a scrubbed backend environment plus overrides."""
    env = dict(os.environ)
    env.pop("TDR_BACKEND", None)
    env.pop("TDR_BACKEND_CHECK", None)
    if env_overrides:
        env.update(env_overrides)
    return subprocess.run(cmd, capture_output=True, text=True, env=env)


def expect_error(label, result, needle):
    check(
        result.returncode == 2,
        f"{label}: expected exit 2, got {result.returncode}",
    )
    check(
        needle in result.stderr,
        f"{label}: stderr missing {needle!r}: {result.stderr.strip()!r}",
    )


def expect_success(label, result, ok_codes=(0, 1)):
    check(
        result.returncode in ok_codes,
        f"{label}: expected exit in {ok_codes}, got {result.returncode}: "
        f"{result.stderr.strip()}",
    )


def main():
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} <path-to-tdr-binary>", file=sys.stderr)
        return 2
    tdr = sys.argv[1]

    with tempfile.TemporaryDirectory(prefix="tdr-check-cli-") as tmp:
        prog = os.path.join(tmp, "racy.hj")
        with open(prog, "w") as f:
            f.write(RACY_PROGRAM)
        races = [tdr, "races", prog, "--arg", "6"]

        # Rejections: exit 2 plus a diagnostic naming the offender.
        expect_error(
            "unknown --backend",
            run([tdr, "races", prog, "--backend", "bogus"]),
            "--backend expects 'espbags', 'vc', or 'par'",
        )
        expect_error(
            "unknown TDR_BACKEND",
            run(races, {"TDR_BACKEND": "warp-drive"}),
            "TDR_BACKEND expects 'espbags', 'vc', or 'par'",
        )
        expect_error(
            "flag/env conflict",
            run(races + ["--backend", "vc"], {"TDR_BACKEND": "espbags"}),
            "conflicts with TDR_BACKEND",
        )
        expect_error(
            "flag/env conflict (reversed)",
            run(races + ["--backend", "espbags"], {"TDR_BACKEND": "vc"}),
            "conflicts with TDR_BACKEND",
        )
        # Same convention for the numeric options.
        expect_error(
            "garbage --workers",
            run([tdr, "run", prog, "--workers", "banana"]),
            "--workers expects a positive integer",
        )
        expect_error(
            "garbage --procs",
            run([tdr, "stats", prog, "--procs", "-3"]),
            "--procs expects a positive integer",
        )

        # Acceptances: flag alone, env alone, and flag+env agreement all
        # run the detection (exit 1 = races found on this racy input).
        for backend in ("espbags", "vc", "par"):
            expect_success(
                f"--backend {backend}",
                run(races + ["--backend", backend]),
            )
            expect_success(
                f"TDR_BACKEND={backend}",
                run(races, {"TDR_BACKEND": backend}),
            )
            expect_success(
                f"--backend {backend} agreeing with env",
                run(races + ["--backend", backend], {"TDR_BACKEND": backend}),
            )

        # The explain/--report surface follows the same conventions: bad
        # invocations exit 2 with a usage line, a missing report file is a
        # runtime error (exit 1), and --report actually writes the file.
        expect_error(
            "explain with no file",
            run([tdr, "explain"]),
            "usage: tdr",
        )
        expect_error(
            "--report missing its value",
            run([tdr, "races", prog, "--report"]),
            "--report expects a value",
        )
        missing = run([tdr, "explain", os.path.join(tmp, "missing.json")])
        check(
            missing.returncode == 1,
            f"explain missing.json: expected exit 1, got {missing.returncode}",
        )
        check(
            "cannot open" in missing.stderr,
            f"explain missing.json: stderr missing 'cannot open': "
            f"{missing.stderr.strip()!r}",
        )
        report = os.path.join(tmp, "report.json")
        expect_success(
            "races --report",
            run(races + ["--report", report]),
        )
        check(os.path.exists(report), "races --report: no report file")

        # End to end: repair under each backend produces the same repaired
        # program, and the repaired program is race free under the other.
        outs = {}
        for backend in ("espbags", "vc", "par"):
            out = os.path.join(tmp, f"repaired-{backend}.hj")
            expect_success(
                f"repair --backend {backend}",
                run([tdr, "repair", prog, "--arg", "6", "--backend", backend,
                     "-o", out]),
                ok_codes=(0,),
            )
            check(os.path.exists(out), f"repair --backend {backend}: no -o file")
            if os.path.exists(out):
                with open(out) as f:
                    outs[backend] = f.read()
        if len(outs) == 3:
            check(
                outs["espbags"] == outs["vc"],
                "repaired programs differ between espbags and vc",
            )
            check(
                outs["espbags"] == outs["par"],
                "repaired programs differ between espbags and par",
            )
            for backend in ("vc", "par"):
                expect_success(
                    f"repaired program race free under {backend}",
                    run([tdr, "races", os.path.join(tmp, "repaired-espbags.hj"),
                         "--arg", "6", "--backend", backend]),
                    ok_codes=(0,),
                )

    if FAILURES:
        for msg in FAILURES:
            print(f"check_cli: FAIL: {msg}", file=sys.stderr)
        return 1
    print("check_cli: OK (backend/option validation behaves as documented)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
