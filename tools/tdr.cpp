//===- tdr.cpp - Command-line driver for the repair tool ------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// The command-line face of the pipeline, mirroring the paper's artifact
// workflow (Appendix A: instrument, execute to pinpoint races, analyze to
// place finishes):
//
//   tdr repair  prog.hj [--arg N]... [--srw] [-o out.hj]   repair races
//   tdr races   prog.hj [--arg N]... [--srw]               detect and list
//   tdr run     prog.hj [--arg N]... [--workers K]         run (par if K>1)
//   tdr stats   prog.hj [--arg N]... [--procs P]           T1/Tinf/TP
//   tdr dot     prog.hj [--arg N]...                       S-DPST Graphviz
//   tdr batch   manifest [--jobs N] [--srw] [-o outdir]    parallel repairs
//   tdr fuzz    [--programs N] [--jobs N] [--seed S]       differential fuzz
//   tdr explain report.json                                explain a report
//   tdr dump    <benchmark-name>                           suite source
//
//===----------------------------------------------------------------------===//

#include "ast/AstPrinter.h"
#include "batch/BatchRepair.h"
#include "diag/RunReport.h"
#include "fuzz/Fuzzer.h"
#include "frontend/Parser.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "pinterp/ParallelInterpreter.h"
#include "race/Detect.h"
#include "repair/MultiInput.h"
#include "repair/RepairDriver.h"
#include "runtime/Runtime.h"
#include "sched/Schedule.h"
#include "sema/Sema.h"
#include "suite/Benchmarks.h"
#include "support/Diagnostics.h"
#include "support/Json.h"
#include "support/SourceManager.h"
#include "trace/EventLog.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include <unistd.h>

using namespace tdr;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: tdr <command> [options]\n"
      "  tdr repair  prog.hj [--arg N]... [--srw] [--backend B] [--no-replay]"
      " [--constructs L] [-o out.hj]\n"
      "  tdr races   prog.hj [--arg N]... [--srw] [--backend B]\n"
      "  tdr run     prog.hj [--arg N]... [--workers K]\n"
      "  tdr stats   prog.hj [--arg N]... [--procs P]\n"
      "  tdr dot     prog.hj [--arg N]...\n"
      "  tdr coverage prog.hj --arg N [--arg M]... (one input per --arg)\n"
      "  tdr batch   manifest [--jobs N] [--srw] [--backend B] [--no-replay]"
      " [--constructs L] [-o outdir]\n"
      "              manifest lines: <prog.hj> [int args...]\n"
      "  tdr fuzz    [--programs N] [--jobs N] [--seed S] [--summary FILE]\n"
      "              [--trophy-dir DIR] [--time-budget SEC] [--no-reduce]\n"
      "              [--no-repair]\n"
      "              differential fuzz farm: random programs through every\n"
      "              backend fresh + replayed and the repair loop; findings\n"
      "              are ddmin-minimized and persisted as trophies. Exit 0\n"
      "              when clean, 1 on findings\n"
      "  tdr explain report.json   pretty-print a --report document\n"
      "  tdr dump    <benchmark>   (e.g. Mergesort; see bench_table1)\n"
      "observability (any command):\n"
      "  --trace FILE         phase spans as Chrome trace JSON (.jsonl for\n"
      "                       line-delimited events); TDR_TRACE=FILE works\n"
      "                       for any tdr binary\n"
      "  --metrics-json FILE  dump the metrics registry as one JSON object\n"
      "  --report FILE        (races/repair/batch) structured run report:\n"
      "                       race witnesses, finish provenance, stats as\n"
      "                       schema-versioned JSON; read it back with\n"
      "                       'tdr explain'\n"
      "detection options:\n"
      "  --backend B          race-detection backend: 'espbags' (default),\n"
      "                       'vc' (vector clocks), or 'par' (partitioned\n"
      "                       parallel log detection; TDR_PAR_WORKERS sets\n"
      "                       its worker count); TDR_BACKEND in the\n"
      "                       environment selects the same default, and\n"
      "                       TDR_BACKEND_CHECK=1 cross-checks every\n"
      "                       detection against a second backend,\n"
      "                       requiring identical race reports\n"
      "repair options:\n"
      "  --no-replay          re-interpret the test input on every repair\n"
      "                       iteration instead of replaying the recorded\n"
      "                       event trace (TDR_REPLAY_CHECK=1 in the\n"
      "                       environment cross-checks every replay against\n"
      "                       a fresh run)\n"
      "  --constructs L       comma list of repair constructs the per-edge\n"
      "                       chooser may use; must include 'finish'.\n"
      "                       Default 'finish,future'; add 'isolated' to\n"
      "                       allow isolated{} wrapping of racing\n"
      "                       statements\n");
  return 2;
}

struct Options {
  std::string File;
  std::vector<int64_t> Args;
  bool Srw = false;
  bool NoReplay = false;
  unsigned Workers = 1;
  unsigned Jobs = 1;
  unsigned Procs = 12;
  /// Fuzz-farm knobs (tdr fuzz only).
  unsigned Programs = 2000;
  uint64_t Seed = 1;
  unsigned TimeBudget = 0;
  bool NoReduce = false;
  bool NoRepair = false;
  std::string SummaryFile;
  std::string TrophyDir = "fuzz-trophies";
  /// Resolved detection backend (--backend flag / TDR_BACKEND env; the
  /// flag and the environment must agree — see resolveBackend).
  DetectBackend Backend = DetectBackend::EspBags;
  /// Repair-construct allowlist (--constructs), parsed eagerly so a bad
  /// list exits 2 like every other malformed flag value.
  unsigned Constructs = constructs::Default;
  std::string OutFile;
  std::string TraceFile;
  std::string MetricsFile;
  std::string ReportFile;
};

/// Parses a strictly positive integer flag value; diagnoses garbage,
/// negatives, and zero instead of letting atoi cast them through.
bool parsePositive(const char *Flag, const char *Text, unsigned &Out) {
  char *End = nullptr;
  errno = 0;
  long V = std::strtol(Text, &End, 10);
  if (End == Text || *End != '\0' || errno == ERANGE || V <= 0 ||
      V > 1 << 20) {
    std::fprintf(stderr, "error: %s expects a positive integer, got '%s'\n",
                 Flag, Text);
    return false;
  }
  Out = static_cast<unsigned>(V);
  return true;
}

/// Parses a non-negative 64-bit seed value (any uint64, 0 allowed).
bool parseSeed(const char *Flag, const char *Text, uint64_t &Out) {
  char *End = nullptr;
  errno = 0;
  unsigned long long V = std::strtoull(Text, &End, 10);
  if (End == Text || *End != '\0' || errno == ERANGE || Text[0] == '-') {
    std::fprintf(stderr, "error: %s expects a non-negative integer, got '%s'\n",
                 Flag, Text);
    return false;
  }
  Out = V;
  return true;
}

/// Resolves the detection backend from the --backend flag value (empty =
/// not given) and the TDR_BACKEND environment variable, diagnosing
/// unknown names and flag/environment conflicts — same exit-2-on-garbage
/// convention as the --workers/--procs validation.
bool resolveBackend(const std::string &Flag, Options &O) {
  bool FlagSet = !Flag.empty();
  DetectBackend FromFlag = DetectBackend::EspBags;
  if (FlagSet && !parseDetectBackend(Flag, FromFlag)) {
    std::fprintf(stderr,
                 "error: --backend expects 'espbags', 'vc', or 'par', "
                 "got '%s'\n",
                 Flag.c_str());
    return false;
  }
  const char *Env = std::getenv("TDR_BACKEND");
  bool EnvSet = Env && *Env;
  DetectBackend FromEnv = DetectBackend::EspBags;
  if (EnvSet && !parseDetectBackend(Env, FromEnv)) {
    std::fprintf(stderr,
                 "error: TDR_BACKEND expects 'espbags', 'vc', or 'par', "
                 "got '%s'\n",
                 Env);
    return false;
  }
  if (FlagSet && EnvSet && FromFlag != FromEnv) {
    std::fprintf(stderr,
                 "error: --backend %s conflicts with TDR_BACKEND=%s in the "
                 "environment\n",
                 Flag.c_str(), Env);
    return false;
  }
  O.Backend = FlagSet ? FromFlag : FromEnv;
  return true;
}

bool parseOptions(int Argc, char **Argv, Options &O, bool RequireFile) {
  std::string Backend;
  for (int I = 0; I != Argc; ++I) {
    if (!std::strcmp(Argv[I], "--arg") && I + 1 != Argc) {
      O.Args.push_back(std::atoll(Argv[++I]));
    } else if (!std::strcmp(Argv[I], "--srw")) {
      O.Srw = true;
    } else if (!std::strcmp(Argv[I], "--no-replay")) {
      O.NoReplay = true;
    } else if (!std::strcmp(Argv[I], "--no-reduce")) {
      O.NoReduce = true;
    } else if (!std::strcmp(Argv[I], "--no-repair")) {
      O.NoRepair = true;
    } else if (!std::strcmp(Argv[I], "--programs") && I + 1 != Argc) {
      if (!parsePositive("--programs", Argv[++I], O.Programs))
        return false;
    } else if (!std::strcmp(Argv[I], "--seed") && I + 1 != Argc) {
      if (!parseSeed("--seed", Argv[++I], O.Seed))
        return false;
    } else if (!std::strcmp(Argv[I], "--time-budget") && I + 1 != Argc) {
      if (!parsePositive("--time-budget", Argv[++I], O.TimeBudget))
        return false;
    } else if (!std::strcmp(Argv[I], "--summary") && I + 1 != Argc) {
      O.SummaryFile = Argv[++I];
    } else if (!std::strcmp(Argv[I], "--trophy-dir") && I + 1 != Argc) {
      O.TrophyDir = Argv[++I];
    } else if (!std::strcmp(Argv[I], "--backend") && I + 1 != Argc) {
      Backend = Argv[++I];
    } else if (!std::strcmp(Argv[I], "--constructs") && I + 1 != Argc) {
      std::string Err;
      if (!parseConstructList(Argv[++I], O.Constructs, Err)) {
        std::fprintf(stderr, "error: --constructs: %s\n", Err.c_str());
        return false;
      }
    } else if (!std::strcmp(Argv[I], "--workers") && I + 1 != Argc) {
      if (!parsePositive("--workers", Argv[++I], O.Workers))
        return false;
    } else if (!std::strcmp(Argv[I], "--jobs") && I + 1 != Argc) {
      if (!parsePositive("--jobs", Argv[++I], O.Jobs))
        return false;
    } else if (!std::strcmp(Argv[I], "--procs") && I + 1 != Argc) {
      if (!parsePositive("--procs", Argv[++I], O.Procs))
        return false;
    } else if (!std::strcmp(Argv[I], "-o") && I + 1 != Argc) {
      O.OutFile = Argv[++I];
    } else if (!std::strcmp(Argv[I], "--trace") && I + 1 != Argc) {
      O.TraceFile = Argv[++I];
    } else if (!std::strcmp(Argv[I], "--metrics-json") && I + 1 != Argc) {
      O.MetricsFile = Argv[++I];
    } else if (!std::strcmp(Argv[I], "--report") && I + 1 != Argc) {
      O.ReportFile = Argv[++I];
    } else if (!std::strcmp(Argv[I], "--arg") ||
               !std::strcmp(Argv[I], "--backend") ||
               !std::strcmp(Argv[I], "--constructs") ||
               !std::strcmp(Argv[I], "--workers") ||
               !std::strcmp(Argv[I], "--jobs") ||
               !std::strcmp(Argv[I], "--procs") ||
               !std::strcmp(Argv[I], "--programs") ||
               !std::strcmp(Argv[I], "--seed") ||
               !std::strcmp(Argv[I], "--time-budget") ||
               !std::strcmp(Argv[I], "--summary") ||
               !std::strcmp(Argv[I], "--trophy-dir") ||
               !std::strcmp(Argv[I], "-o") ||
               !std::strcmp(Argv[I], "--trace") ||
               !std::strcmp(Argv[I], "--metrics-json") ||
               !std::strcmp(Argv[I], "--report")) {
      // A known value flag fell through the matches above: its value is
      // missing. Say so instead of "unknown option".
      std::fprintf(stderr, "error: %s expects a value\n", Argv[I]);
      return false;
    } else if (Argv[I][0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", Argv[I]);
      return false;
    } else if (O.File.empty()) {
      O.File = Argv[I];
    } else {
      std::fprintf(stderr, "unexpected argument '%s'\n", Argv[I]);
      return false;
    }
  }
  if (!resolveBackend(Backend, O))
    return false;
  if (!RequireFile && !O.File.empty()) {
    std::fprintf(stderr, "unexpected argument '%s'\n", O.File.c_str());
    return false;
  }
  return !RequireFile || !O.File.empty();
}

struct Loaded {
  std::unique_ptr<SourceManager> SM;
  std::unique_ptr<AstContext> Ctx;
  Program *Prog = nullptr;
};

bool load(const std::string &Path, Loaded &L) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
    return false;
  }
  std::stringstream SS;
  SS << In.rdbuf();
  L.SM = std::make_unique<SourceManager>(Path, SS.str());
  L.Ctx = std::make_unique<AstContext>();
  DiagnosticsEngine Diags;
  Parser P(L.SM->buffer(), *L.Ctx, Diags);
  L.Prog = P.parseProgram();
  if (!Diags.hasErrors())
    runSema(*L.Prog, *L.Ctx, Diags);
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "%s", Diags.render(*L.SM).c_str());
    return false;
  }
  return true;
}

ExecOptions execOptions(const Options &O) {
  ExecOptions E;
  E.Args = O.Args;
  return E;
}

/// Flattens a repair outcome into one report job entry.
diag::JobReport jobReportFromRepair(std::string Name, std::vector<int64_t> Args,
                                    const RepairResult &R) {
  diag::JobReport J;
  J.Name = std::move(Name);
  J.Args = std::move(Args);
  J.Success = R.Success;
  J.Error = R.Error;
  J.Stats.Iterations = R.Stats.Iterations;
  J.Stats.FinishesInserted = R.Stats.FinishesInserted;
  J.Stats.ForcesInserted = R.Stats.ForcesInserted;
  J.Stats.IsolatedInserted = R.Stats.IsolatedInserted;
  J.Stats.Interpretations = R.Stats.Interpretations;
  J.Stats.Replays = R.Stats.Replays;
  J.Stats.RawRaces = R.Stats.RawRaces;
  J.Stats.RacePairs = R.Stats.RacePairs;
  J.Stats.DpstNodes = R.Stats.DpstNodes;
  J.Diag = R.Diag;
  return J;
}

diag::RunReport makeRunReport(const char *Tool, const Options &O) {
  diag::RunReport Rep;
  Rep.Tool = Tool;
  Rep.Backend = detectBackendName(O.Backend);
  Rep.Mode = O.Srw ? "srw" : "mrw";
  return Rep;
}

/// Writes \p Rep to O.ReportFile (no-op when --report was not given).
/// Returns false on I/O failure.
bool emitReport(const diag::RunReport &Rep, const Options &O) {
  if (O.ReportFile.empty())
    return true;
  std::string Err;
  if (!diag::writeRunReport(Rep, O.ReportFile, &Err)) {
    std::fprintf(stderr, "tdr: %s\n", Err.c_str());
    return false;
  }
  std::fprintf(stderr, "tdr: wrote report to %s\n", O.ReportFile.c_str());
  return true;
}

int cmdRepair(const Options &O) {
  Loaded L;
  if (!load(O.File, L))
    return 1;
  RepairOptions Opts;
  Opts.Mode =
      O.Srw ? EspBagsDetector::Mode::SRW : EspBagsDetector::Mode::MRW;
  Opts.Backend = O.Backend;
  Opts.Exec = execOptions(O);
  Opts.UseReplay = !O.NoReplay;
  Opts.Constructs = O.Constructs;
  Opts.CollectDiag = !O.ReportFile.empty();
  Opts.SM = L.SM.get();
  RepairResult R = repairProgram(*L.Prog, *L.Ctx, Opts);
  // The report is written success or fail — diagnostics matter most when
  // the repair could not finish.
  diag::RunReport Rep = makeRunReport("repair", O);
  Rep.Jobs.push_back(jobReportFromRepair(O.File, O.Args, R));
  bool ReportOk = emitReport(Rep, O);
  if (!R.Success) {
    std::fprintf(stderr, "repair failed: %s\n", R.Error.c_str());
    return 1;
  }
  if (!ReportOk)
    return 1;
  std::fprintf(stderr,
               "%s: %zu S-DPST nodes, %llu race reports (%zu pairs), "
               "%u finish(es), %u force(s), %u isolated inserted, "
               "%u detection run(s) (%u interpreted, %u replayed)\n",
               O.File.c_str(), R.Stats.DpstNodes,
               static_cast<unsigned long long>(R.Stats.RawRaces),
               R.Stats.RacePairs, R.Stats.FinishesInserted,
               R.Stats.ForcesInserted, R.Stats.IsolatedInserted,
               R.Stats.Iterations, R.Stats.Interpretations, R.Stats.Replays);
  for (SourceLoc Loc : R.InsertedAt) {
    LineCol LC = L.SM->lineCol(Loc);
    if (LC.Line)
      std::fprintf(stderr, "  repair inserted at %s:%u:%u\n",
                   O.File.c_str(), LC.Line, LC.Col);
  }
  std::string Out = printProgram(*L.Prog);
  if (O.OutFile.empty()) {
    std::fputs(Out.c_str(), stdout);
  } else {
    std::ofstream OutStream(O.OutFile);
    OutStream << Out;
    std::fprintf(stderr, "wrote %s\n", O.OutFile.c_str());
  }
  return 0;
}

int cmdRaces(const Options &O) {
  Loaded L;
  if (!load(O.File, L))
    return 1;
  DetectOptions Detect;
  Detect.Mode = O.Srw ? EspBagsDetector::Mode::SRW : EspBagsDetector::Mode::MRW;
  Detect.Backend = O.Backend;
  ExecOptions Exec = execOptions(O);
  // With --report, record the event stream alongside detection so witness
  // access sites can be refined to the exact statement (not just the step).
  trace::EventLog Log;
  std::unique_ptr<trace::RecorderMonitor> Recorder;
  if (!O.ReportFile.empty()) {
    Recorder = std::make_unique<trace::RecorderMonitor>(Log);
    Exec.Monitor = Recorder.get();
  }
  Detection D = detectRaces(*L.Prog, Detect, std::move(Exec));
  if (Recorder)
    Recorder->flush();
  if (!D.ok()) {
    std::fprintf(stderr, "execution failed: %s\n", D.Exec.Error.c_str());
    return 1;
  }
  std::printf("%zu racing step pair(s), %llu report(s), %zu S-DPST nodes\n",
              D.Report.Pairs.size(),
              static_cast<unsigned long long>(D.Report.RawCount),
              D.Tree->numNodes());
  for (const RacePair &R : D.Report.Pairs) {
    const Stmt *SrcStmt = R.Src->owner();
    const Stmt *SnkStmt = R.Snk->owner();
    LineCol SrcLC =
        SrcStmt ? L.SM->lineCol(SrcStmt->loc()) : LineCol();
    LineCol SnkLC =
        SnkStmt ? L.SM->lineCol(SnkStmt->loc()) : LineCol();
    std::printf("  %s on %s: line %u -> line %u\n",
                R.SrcKind == AccessKind::Write &&
                        R.SnkKind == AccessKind::Write
                    ? "write-write"
                    : "read-write",
                R.Loc.str().c_str(), SrcLC.Line, SnkLC.Line);
  }
  if (!O.ReportFile.empty()) {
    diag::RunReport Rep = makeRunReport("races", O);
    diag::JobReport J;
    J.Name = O.File;
    J.Args = O.Args;
    J.Success = D.Report.Pairs.empty();
    J.Stats.Iterations = 1;
    J.Stats.Interpretations = 1;
    J.Stats.RawRaces = D.Report.RawCount;
    J.Stats.RacePairs = D.Report.Pairs.size();
    J.Stats.DpstNodes = D.Tree->numNodes();
    diag::IterationDiag ID;
    ID.Witnesses =
        diag::buildWitnesses(*D.Tree, D.Report, L.SM.get(), &Log);
    J.Diag.Iterations.push_back(std::move(ID));
    Rep.Jobs.push_back(std::move(J));
    if (!emitReport(Rep, O))
      return 1;
  }
  return D.Report.Pairs.empty() ? 0 : 1;
}

int cmdExplain(const Options &O) {
  std::ifstream In(O.File);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", O.File.c_str());
    return 1;
  }
  std::stringstream SS;
  SS << In.rdbuf();
  json::ParseResult P = json::parse(SS.str());
  if (!P.Ok) {
    std::fprintf(stderr, "error: %s: %s\n", O.File.c_str(), P.Error.c_str());
    return 1;
  }
  std::string Out, Err;
  bool Color = isatty(fileno(stdout)) != 0;
  if (!diag::renderExplainText(P.Doc, Color, Out, Err)) {
    std::fprintf(stderr, "error: %s: %s\n", O.File.c_str(), Err.c_str());
    return 1;
  }
  std::fputs(Out.c_str(), stdout);
  return 0;
}

int cmdRun(const Options &O) {
  Loaded L;
  if (!load(O.File, L))
    return 1;
  ExecResult R;
  if (O.Workers > 1) {
    Runtime RT(O.Workers);
    R = runProgramParallel(*L.Prog, RT, execOptions(O));
  } else {
    R = runProgram(*L.Prog, execOptions(O));
  }
  std::fputs(R.Output.c_str(), stdout);
  if (!R.Ok) {
    LineCol LC = L.SM->lineCol(R.ErrorLoc);
    std::fprintf(stderr, "runtime error at %s:%u:%u: %s\n", O.File.c_str(),
                 LC.Line, LC.Col, R.Error.c_str());
    return 1;
  }
  return 0;
}

int cmdStats(const Options &O) {
  Loaded L;
  if (!load(O.File, L))
    return 1;
  Detection D = detectRaces(
      *L.Prog, DetectOptions{EspBagsDetector::Mode::SRW, O.Backend},
      execOptions(O));
  if (!D.ok()) {
    std::fprintf(stderr, "execution failed: %s\n", D.Exec.Error.c_str());
    return 1;
  }
  ParallelismStats S = analyzeDpst(*D.Tree, O.Procs);
  std::printf("T1   (work):            %llu\n",
              static_cast<unsigned long long>(S.T1));
  std::printf("Tinf (critical path):   %llu\n",
              static_cast<unsigned long long>(S.Tinf));
  std::printf("T%-3u (greedy schedule): %llu\n", O.Procs,
              static_cast<unsigned long long>(S.TP));
  std::printf("parallelism T1/Tinf:    %.2f\n", S.parallelism());
  std::printf("speedup T1/T%u:          %.2f\n", O.Procs, S.speedup());
  std::printf("races:                  %zu pair(s)\n",
              D.Report.Pairs.size());
  return 0;
}

int cmdDot(const Options &O) {
  Loaded L;
  if (!load(O.File, L))
    return 1;
  Detection D = detectRaces(
      *L.Prog, DetectOptions{EspBagsDetector::Mode::SRW, O.Backend},
      execOptions(O));
  if (!D.ok()) {
    std::fprintf(stderr, "execution failed: %s\n", D.Exec.Error.c_str());
    return 1;
  }
  std::fputs(D.Tree->dumpDot().c_str(), stdout);
  return 0;
}

int cmdCoverage(const Options &O) {
  Loaded L;
  if (!load(O.File, L))
    return 1;
  // Each --arg value is one single-argument test input.
  std::vector<ExecOptions> Inputs;
  for (int64_t A : O.Args) {
    ExecOptions E;
    E.Args = {A};
    Inputs.push_back(E);
  }
  if (Inputs.empty()) {
    std::fprintf(stderr, "coverage needs at least one --arg input\n");
    return 2;
  }
  CoverageReport C = analyzeTestCoverage(*L.Prog, Inputs);
  for (const CoverageReport::FailedInput &F : C.FailedInputs)
    std::printf("input %zu (--arg %lld) FAILED to execute: %s\n", F.Index,
                static_cast<long long>(O.Args[F.Index]), F.Error.c_str());
  for (const AsyncSiteCoverage &Site : C.Sites) {
    LineCol LC = L.SM->lineCol(Site.Loc);
    std::printf("async at %s:%u:%u  instances:", O.File.c_str(), LC.Line,
                LC.Col);
    for (uint64_t N : Site.InstancesPerInput)
      std::printf(" %llu", static_cast<unsigned long long>(N));
    std::printf("%s\n", Site.exercised() ? "" : "   <- NEVER EXERCISED");
  }
  std::printf("async coverage: %.0f%% (%zu/%zu sites); %zu input(s) failed; "
              "test set %s for repair\n",
              C.asyncCoverage() * 100.0, C.NumExercised, C.Sites.size(),
              C.FailedInputs.size(),
              C.suitable() ? "is suitable" : "is NOT suitable");
  return C.suitable() ? 0 : 1;
}

/// Reads a batch manifest: one job per line, `<path> [int args...]`; blank
/// lines and lines starting with '#' are skipped.
bool loadManifest(const Options &O, std::vector<RepairJob> &Jobs) {
  std::ifstream In(O.File);
  if (!In) {
    std::fprintf(stderr, "error: cannot open manifest '%s'\n",
                 O.File.c_str());
    return false;
  }
  std::string Line;
  while (std::getline(In, Line)) {
    std::istringstream LS(Line);
    std::string Path;
    if (!(LS >> Path) || Path[0] == '#')
      continue;
    RepairJob J;
    J.Name = Path;
    std::ifstream Src(Path);
    if (!Src) {
      std::fprintf(stderr, "error: cannot open '%s' (from manifest)\n",
                   Path.c_str());
      return false;
    }
    std::stringstream SS;
    SS << Src.rdbuf();
    J.Source = SS.str();
    J.Opts.Mode =
        O.Srw ? EspBagsDetector::Mode::SRW : EspBagsDetector::Mode::MRW;
    J.Opts.Backend = O.Backend;
    J.Opts.UseReplay = !O.NoReplay;
    J.Opts.Constructs = O.Constructs;
    J.Opts.CollectDiag = !O.ReportFile.empty();
    int64_t A;
    while (LS >> A)
      J.Opts.Exec.Args.push_back(A);
    Jobs.push_back(std::move(J));
  }
  return true;
}

int cmdBatch(const Options &O) {
  std::vector<RepairJob> Jobs;
  if (!loadManifest(O, Jobs))
    return 1;
  if (Jobs.empty()) {
    std::fprintf(stderr, "error: manifest '%s' has no jobs\n",
                 O.File.c_str());
    return 1;
  }

  BatchRepairRunner Runner(O.Jobs);
  BatchSummary Summary = Runner.run(Jobs);

  bool WriteFailed = false;
  for (const BatchJobResult &R : Summary.Results) {
    if (R.Repair.Success)
      std::fprintf(stderr,
                   "%s: ok, %u repair(s) inserted, %u detection run(s)\n",
                   R.Name.c_str(),
                   R.Repair.Stats.FinishesInserted +
                       R.Repair.Stats.ForcesInserted +
                       R.Repair.Stats.IsolatedInserted,
                   R.Repair.Stats.Iterations);
    else
      std::fprintf(stderr, "%s: FAILED: %s\n", R.Name.c_str(),
                   R.Repair.Error.c_str());
    if (!O.OutFile.empty()) {
      // -o names a directory; each repaired program keeps its base name.
      std::string Base = R.Name;
      if (size_t Slash = Base.find_last_of('/'); Slash != std::string::npos)
        Base = Base.substr(Slash + 1);
      std::string OutPath = O.OutFile + "/" + Base;
      std::ofstream Out(OutPath);
      Out << R.RepairedSource;
      if (!Out) {
        std::fprintf(stderr, "error: cannot write '%s'\n", OutPath.c_str());
        WriteFailed = true;
      }
    } else {
      std::fputs(R.RepairedSource.c_str(), stdout);
    }
  }
  std::fprintf(stderr, "batch: %zu job(s), %u worker(s): %zu ok, %zu failed\n",
               Summary.Results.size(), Runner.numWorkers(),
               Summary.NumSucceeded, Summary.NumFailed);
  if (!O.ReportFile.empty()) {
    diag::RunReport Rep = makeRunReport("batch", O);
    for (size_t I = 0; I != Summary.Results.size(); ++I)
      Rep.Jobs.push_back(jobReportFromRepair(Summary.Results[I].Name,
                                             Jobs[I].Opts.Exec.Args,
                                             Summary.Results[I].Repair));
    if (!emitReport(Rep, O))
      WriteFailed = true;
  }
  return Summary.NumFailed == 0 && !WriteFailed ? 0 : 1;
}

int cmdFuzz(const Options &O) {
  fuzz::FuzzOptions FO;
  FO.Programs = O.Programs;
  FO.Seed = O.Seed;
  FO.Jobs = O.Jobs;
  FO.TrophyDir = O.TrophyDir;
  FO.TimeBudgetSec = O.TimeBudget;
  FO.Reduce = !O.NoReduce;
  FO.CheckRepair = !O.NoRepair;

  std::string Progress;
  fuzz::FuzzSummary S = fuzz::runFuzz(FO, &Progress);
  std::fputs(Progress.c_str(), stderr);

  std::string Json = fuzz::renderFuzzSummaryJson(S, FO);
  if (O.SummaryFile.empty() || O.SummaryFile == "-") {
    std::fputs(Json.c_str(), stdout);
  } else {
    std::ofstream Out(O.SummaryFile);
    Out << Json;
    if (!Out) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   O.SummaryFile.c_str());
      return 1;
    }
    std::fprintf(stderr, "tdr: wrote fuzz summary to %s\n",
                 O.SummaryFile.c_str());
  }
  return S.clean() ? 0 : 1;
}

int cmdDump(const std::string &Name) {
  const BenchmarkSpec *B = findBenchmark(Name);
  if (!B) {
    std::fprintf(stderr, "unknown benchmark '%s'; known:", Name.c_str());
    for (const BenchmarkSpec &S : allBenchmarks())
      std::fprintf(stderr, " '%s'", S.Name);
    std::fprintf(stderr, "\n");
    return 1;
  }
  std::fputs(B->Source, stdout);
  return 0;
}

int dispatch(const std::string &Cmd, const Options &O) {
  if (Cmd == "repair")
    return cmdRepair(O);
  if (Cmd == "races")
    return cmdRaces(O);
  if (Cmd == "run")
    return cmdRun(O);
  if (Cmd == "stats")
    return cmdStats(O);
  if (Cmd == "dot")
    return cmdDot(O);
  if (Cmd == "coverage")
    return cmdCoverage(O);
  if (Cmd == "batch")
    return cmdBatch(O);
  if (Cmd == "fuzz")
    return cmdFuzz(O);
  if (Cmd == "explain")
    return cmdExplain(O);
  return usage();
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  std::string Cmd = Argv[1];
  // fuzz generates its own corpus; every other command names an input file.
  if (Cmd != "fuzz" && Argc < 3)
    return usage();
  if (Cmd == "dump")
    return cmdDump(Argv[2]);

  Options O;
  if (!parseOptions(Argc - 2, Argv + 2, O, /*RequireFile=*/Cmd != "fuzz"))
    return usage();

  if (!O.TraceFile.empty())
    obs::Tracer::global().enable();

  int Ret = dispatch(Cmd, O);

  if (!O.TraceFile.empty()) {
    obs::Tracer &T = obs::Tracer::global();
    if (T.writeTo(O.TraceFile))
      std::fprintf(stderr, "tdr: wrote trace to %s (%zu events)\n",
                   O.TraceFile.c_str(), T.numEvents());
    else {
      std::fprintf(stderr, "tdr: failed to write trace to %s\n",
                   O.TraceFile.c_str());
      Ret = Ret ? Ret : 1;
    }
  }
  if (!O.MetricsFile.empty()) {
    if (obs::MetricsRegistry::global().writeJson(O.MetricsFile))
      std::fprintf(stderr, "tdr: wrote metrics to %s\n",
                   O.MetricsFile.c_str());
    else {
      std::fprintf(stderr, "tdr: failed to write metrics to %s\n",
                   O.MetricsFile.c_str());
      Ret = Ret ? Ret : 1;
    }
  }
  return Ret;
}
