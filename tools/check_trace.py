#!/usr/bin/env python3
"""Validate the tdr CLI's --trace / --metrics-json output.

Runs `tdr races <racy program> --trace ... --metrics-json ...` and checks
that the emitted trace is well-formed Chrome trace_event JSON (loadable in
chrome://tracing / Perfetto) and that the metrics dump is a flat JSON
object covering the pipeline. Span names are validated against
src/obs/Phases.def — the same registry the C++ hook points compile their
phase constants from — so the vocabulary lives in exactly one place. Also runs `tdr batch --jobs 2 --trace` and
checks the async ('b'/'e') per-job lane events: every begin has a matching
end with the same (name, cat, id), timestamps are ordered, and the merged
metrics carry a batch.job_ms histogram with percentile fields. Invoked
from CTest (see tools/CMakeLists.txt) but also usable standalone:

    python3 tools/check_trace.py build/tools/tdr
"""

import json
import os
import re
import subprocess
import sys
import tempfile

RACY_PROGRAM = """\
func work(a: int[], i: int) {
  a[i] = a[i] + 1;
  a[0] = a[0] + i;
}

func main() {
  var n: int = arg(0);
  var a: int[] = new int[n + 1];
  for (var i: int = 1; i <= n; i = i + 1) {
    async work(a, i);
  }
  print(a[0]);
}
"""

# Every phase code the tracer is allowed to emit: complete spans,
# instants, and async begin/end pairs. Anything else is a schema break.
KNOWN_PHASES = {"X", "i", "b", "e"}

# src/obs/Phases.def is the single source of truth for span names: the
# C++ hook points compile their obs::phase:: constants from it and this
# checker parses the same file, so a new pipeline phase is one TDR_PHASE
# line — never a matching edit here.
PHASES_DEF = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "src", "obs",
    "Phases.def")
PHASE_RE = re.compile(
    r'TDR_PHASE\(\s*\w+\s*,\s*"([^"]+)"\s*,\s*"([^"]+)"\s*,\s*([01])\s*\)')


def load_phases():
    """Returns ({span name: category}, {required span names})."""
    spans, required = {}, set()
    with open(PHASES_DEF) as f:
        for line in f:
            m = PHASE_RE.search(line)
            if not m:
                continue
            spans[m.group(1)] = m.group(2)
            if m.group(3) == "1":
                required.add(m.group(1))
    return spans, required


# Span-name vocabulary and the spans every detection run must emit.
SPAN_CATS, REQUIRED_SPANS = load_phases()

# Histogram snapshots in metrics dumps carry these summary fields.
HISTOGRAM_FIELDS = {"count", "sum", "min", "max", "mean", "p50", "p95", "p99"}

MIN_METRICS = 8

FAILURES = []


def check(cond, msg):
    if not cond:
        FAILURES.append(msg)
    return cond


def validate_trace(path, min_async_lanes=0):
    """Returns the loaded trace events (or []) after schema checks."""
    with open(path) as f:
        doc = json.load(f)  # raises on malformed JSON -> test failure
    check(isinstance(doc, dict), "trace root must be a JSON object")
    events = doc.get("traceEvents")
    check(isinstance(events, list), "trace must have a traceEvents array")
    if not isinstance(events, list):
        return []
    check(len(events) > 0, "traceEvents must not be empty")
    names = set()
    open_async = {}  # (name, cat, id) -> begin ts
    lane_ids = set()
    for i, ev in enumerate(events):
        for field in ("name", "ph", "ts", "pid", "tid"):
            check(field in ev, f"event {i} missing required field '{field}'")
        ph = ev.get("ph")
        check(ph in KNOWN_PHASES,
              f"event {i} has unknown phase code {ph!r}")
        if ph == "X":
            check("dur" in ev, f"complete event {i} missing 'dur'")
            check(ev.get("dur", -1) >= 0, f"event {i} has negative dur")
            # Phase spans must come from the Phases.def registry, with the
            # category declared there (async lanes carry dynamic names,
            # e.g. batch's per-job "job:<file>", and are exempt).
            name = ev.get("name")
            if check(name in SPAN_CATS,
                     f"event {i}: span name {name!r} is not registered in "
                     f"src/obs/Phases.def"):
                check(ev.get("cat") == SPAN_CATS[name],
                      f"event {i}: span {name!r} has category "
                      f"{ev.get('cat')!r}, Phases.def says "
                      f"{SPAN_CATS[name]!r}")
        check(ev.get("ts", -1) >= 0, f"event {i} has negative ts")
        check(isinstance(ev.get("cat", ""), str), f"event {i} cat not a string")
        if ph in ("b", "e"):
            check("id" in ev, f"async event {i} missing 'id'")
            key = (ev.get("name"), ev.get("cat"), ev.get("id"))
            if ph == "b":
                check(key not in open_async,
                      f"event {i}: async lane {key} begun twice")
                open_async[key] = ev.get("ts", 0)
                lane_ids.add(ev.get("id"))
            else:
                begin_ts = open_async.pop(key, None)
                if check(begin_ts is not None,
                         f"event {i}: async end {key} without begin"):
                    check(ev.get("ts", -1) >= begin_ts,
                          f"event {i}: async end before its begin")
        names.add(ev.get("name"))
    check(not open_async,
          f"async begins without ends: {sorted(open_async)}")
    check(len(lane_ids) >= min_async_lanes,
          f"expected >= {min_async_lanes} distinct async lanes, "
          f"got {len(lane_ids)}")
    missing = REQUIRED_SPANS - names
    check(not missing, f"trace missing phase spans: {sorted(missing)}")
    return events


def validate_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    check(isinstance(doc, dict), "metrics dump must be a JSON object")
    if not isinstance(doc, dict):
        return
    check(
        len(doc) >= MIN_METRICS,
        f"expected >= {MIN_METRICS} metrics, got {len(doc)}",
    )
    for key, value in doc.items():
        check(isinstance(key, str) and key, "metric names must be strings")
        ok = isinstance(value, (int, float)) or (
            isinstance(value, dict) and HISTOGRAM_FIELDS <= set(value)
        )
        check(ok, f"metric '{key}' is neither a number nor a histogram object")
    # The per-detector counter family follows the selected backend
    # (TDR_BACKEND env / --backend flag).
    detector = os.environ.get("TDR_BACKEND", "espbags")
    if detector not in ("espbags", "vc", "par"):
        detector = "espbags"
    for name in ("dpst.nodes", f"{detector}.checks", "detect.runs"):
        check(name in doc, f"metrics dump missing '{name}'")


def main():
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} <path-to-tdr-binary>", file=sys.stderr)
        return 2
    tdr = sys.argv[1]

    with tempfile.TemporaryDirectory(prefix="tdr-check-trace-") as tmp:
        prog = os.path.join(tmp, "racy.hj")
        trace = os.path.join(tmp, "trace.json")
        metrics = os.path.join(tmp, "metrics.json")
        with open(prog, "w") as f:
            f.write(RACY_PROGRAM)

        cmd = [
            tdr, "races", prog, "--arg", "6",
            "--trace", trace, "--metrics-json", metrics,
        ]
        result = subprocess.run(cmd, capture_output=True, text=True)
        # `tdr races` exits 1 when races are found -- that is the expected
        # outcome on a racy input; anything else is a tool failure.
        check(
            result.returncode in (0, 1),
            f"tdr races exited {result.returncode}: {result.stderr.strip()}",
        )
        check(os.path.exists(trace), "--trace produced no file")
        check(os.path.exists(metrics), "--metrics-json produced no file")

        if os.path.exists(trace):
            validate_trace(trace)
        if os.path.exists(metrics):
            validate_metrics(metrics)

        # Batch run: the per-job async lanes ('b'/'e' keyed by job index)
        # and the merged batch.job_ms latency histogram.
        manifest = os.path.join(tmp, "manifest.txt")
        with open(manifest, "w") as f:
            f.write(f"{prog} 4\n{prog} 6\n")
        btrace = os.path.join(tmp, "batch-trace.json")
        bmetrics = os.path.join(tmp, "batch-metrics.json")
        result = subprocess.run(
            [tdr, "batch", manifest, "--jobs", "2",
             "--trace", btrace, "--metrics-json", bmetrics, "-o", tmp],
            capture_output=True, text=True)
        check(
            result.returncode == 0,
            f"tdr batch exited {result.returncode}: {result.stderr.strip()}",
        )
        check(os.path.exists(btrace), "batch --trace produced no file")
        check(os.path.exists(bmetrics), "batch --metrics-json produced no file")
        if os.path.exists(btrace):
            events = validate_trace(btrace, min_async_lanes=2)
            job_lanes = [ev for ev in events
                         if ev.get("ph") == "b" and ev.get("cat") == "batch"]
            check(len(job_lanes) == 2,
                  f"expected one 'b' lane per batch job, got {len(job_lanes)}")
        if os.path.exists(bmetrics):
            with open(bmetrics) as f:
                bdoc = json.load(f)
            hist = bdoc.get("batch.job_ms")
            if check(isinstance(hist, dict),
                     "batch metrics missing batch.job_ms histogram"):
                missing = HISTOGRAM_FIELDS - set(hist)
                check(not missing,
                      f"batch.job_ms missing fields: {sorted(missing)}")
                check(hist.get("count") == 2,
                      f"batch.job_ms count: expected 2, got "
                      f"{hist.get('count')}")

    if FAILURES:
        for msg in FAILURES:
            print(f"check_trace: FAIL: {msg}", file=sys.stderr)
        return 1
    print("check_trace: OK (trace schema and metrics dump are valid)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
