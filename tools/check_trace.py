#!/usr/bin/env python3
"""Validate the tdr CLI's --trace / --metrics-json output.

Runs `tdr races <racy program> --trace ... --metrics-json ...` and checks
that the emitted trace is well-formed Chrome trace_event JSON (loadable in
chrome://tracing / Perfetto) and that the metrics dump is a flat JSON
object covering the pipeline. Invoked from CTest (see tools/CMakeLists.txt)
but also usable standalone:

    python3 tools/check_trace.py build/tools/tdr
"""

import json
import os
import subprocess
import sys
import tempfile

RACY_PROGRAM = """\
func work(a: int[], i: int) {
  a[i] = a[i] + 1;
  a[0] = a[0] + i;
}

func main() {
  var n: int = arg(0);
  var a: int[] = new int[n + 1];
  for (var i: int = 1; i <= n; i = i + 1) {
    async work(a, i);
  }
  print(a[0]);
}
"""

# Phase spans the pipeline must emit for a detection run.
REQUIRED_SPANS = {"parse", "sema", "detect"}

MIN_METRICS = 8

FAILURES = []


def check(cond, msg):
    if not cond:
        FAILURES.append(msg)


def validate_trace(path):
    with open(path) as f:
        doc = json.load(f)  # raises on malformed JSON -> test failure
    check(isinstance(doc, dict), "trace root must be a JSON object")
    events = doc.get("traceEvents")
    check(isinstance(events, list), "trace must have a traceEvents array")
    if not isinstance(events, list):
        return
    check(len(events) > 0, "traceEvents must not be empty")
    names = set()
    for i, ev in enumerate(events):
        for field in ("name", "ph", "ts", "pid", "tid"):
            check(field in ev, f"event {i} missing required field '{field}'")
        if ev.get("ph") == "X":
            check("dur" in ev, f"complete event {i} missing 'dur'")
            check(ev.get("dur", -1) >= 0, f"event {i} has negative dur")
        check(ev.get("ts", -1) >= 0, f"event {i} has negative ts")
        check(isinstance(ev.get("cat", ""), str), f"event {i} cat not a string")
        names.add(ev.get("name"))
    missing = REQUIRED_SPANS - names
    check(not missing, f"trace missing phase spans: {sorted(missing)}")


def validate_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    check(isinstance(doc, dict), "metrics dump must be a JSON object")
    if not isinstance(doc, dict):
        return
    check(
        len(doc) >= MIN_METRICS,
        f"expected >= {MIN_METRICS} metrics, got {len(doc)}",
    )
    for key, value in doc.items():
        check(isinstance(key, str) and key, "metric names must be strings")
        ok = isinstance(value, (int, float)) or (
            isinstance(value, dict)
            and {"count", "sum", "min", "max", "mean"} <= set(value)
        )
        check(ok, f"metric '{key}' is neither a number nor a histogram object")
    # The per-detector counter family follows the selected backend
    # (TDR_BACKEND env / --backend flag).
    detector = "vc" if os.environ.get("TDR_BACKEND") == "vc" else "espbags"
    for name in ("dpst.nodes", f"{detector}.checks", "detect.runs"):
        check(name in doc, f"metrics dump missing '{name}'")


def main():
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} <path-to-tdr-binary>", file=sys.stderr)
        return 2
    tdr = sys.argv[1]

    with tempfile.TemporaryDirectory(prefix="tdr-check-trace-") as tmp:
        prog = os.path.join(tmp, "racy.hj")
        trace = os.path.join(tmp, "trace.json")
        metrics = os.path.join(tmp, "metrics.json")
        with open(prog, "w") as f:
            f.write(RACY_PROGRAM)

        cmd = [
            tdr, "races", prog, "--arg", "6",
            "--trace", trace, "--metrics-json", metrics,
        ]
        result = subprocess.run(cmd, capture_output=True, text=True)
        # `tdr races` exits 1 when races are found -- that is the expected
        # outcome on a racy input; anything else is a tool failure.
        check(
            result.returncode in (0, 1),
            f"tdr races exited {result.returncode}: {result.stderr.strip()}",
        )
        check(os.path.exists(trace), "--trace produced no file")
        check(os.path.exists(metrics), "--metrics-json produced no file")

        if os.path.exists(trace):
            validate_trace(trace)
        if os.path.exists(metrics):
            validate_metrics(metrics)

    if FAILURES:
        for msg in FAILURES:
            print(f"check_trace: FAIL: {msg}", file=sys.stderr)
        return 1
    print("check_trace: OK (trace schema and metrics dump are valid)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
