#!/usr/bin/env python3
"""Validate `tdr fuzz` output against the tdr-fuzz-summary schema.

Runs a small seeded fuzz batch and checks the emitted summary JSON:
schema/version header, run accounting (requested = run + skipped),
differential-run counters, the findings array shape, the embedded obs
counter registry, and the trophy files written for findings. Also checks
the CLI contract: exit 0 on a clean run, exit 2 on malformed flags, and
determinism of the accounting across --jobs. Invoked from CTest (see
tools/CMakeLists.txt) but also usable standalone:

    python3 tools/check_fuzz.py build/tools/tdr
"""

import json
import os
import subprocess
import sys
import tempfile

SCHEMA = "tdr-fuzz-summary"
VERSION = 1
KINDS = {"parse-error", "exec-error", "backend-mismatch", "replay-divergence",
         "repair-disagree", "repair-not-converged"}
PROFILES = {"default", "constructs", "sparse"}

FAILURES = []


def check(cond, msg):
    if not cond:
        FAILURES.append(msg)
    return cond


def run(cmd):
    env = dict(os.environ)
    # The fuzzer pins backends itself; a leaking differential env var must
    # not change what the oracle runs.
    for var in ("TDR_BACKEND", "TDR_BACKEND_CHECK", "TDR_REPLAY_CHECK",
                "TDR_LOG_SPILL"):
        env.pop(var, None)
    return subprocess.run(cmd, capture_output=True, text=True, env=env)


def load_summary(path, label):
    if not check(os.path.exists(path), f"{label}: no summary file written"):
        return None
    with open(path) as f:
        doc = json.load(f)  # raises on malformed JSON -> test failure
    check(doc.get("schema") == SCHEMA, f"{label}: bad schema name")
    check(doc.get("version") == VERSION, f"{label}: bad schema version")
    for key in ("seed", "jobs", "programs_requested", "programs_run",
                "programs_skipped", "detect_runs", "replay_runs",
                "repair_runs"):
        check(isinstance(doc.get(key), int) and doc[key] >= 0,
              f"{label}: {key} must be a non-negative int")
    for key in ("reduce", "check_repair"):
        check(doc.get(key) in (True, False), f"{label}: {key} must be a bool")
    check(isinstance(doc.get("wall_sec"), (int, float))
          and doc["wall_sec"] >= 0, f"{label}: wall_sec")
    check(isinstance(doc.get("trophy_dir"), str) and doc["trophy_dir"],
          f"{label}: trophy_dir")
    check(doc.get("programs_requested")
          == doc.get("programs_run") + doc.get("programs_skipped"),
          f"{label}: requested != run + skipped")
    check(doc.get("detect_runs", 0) > 0,
          f"{label}: a non-empty run must perform detections")
    check(doc.get("replay_runs", 0) > 0,
          f"{label}: a non-empty run must perform replays")

    findings = doc.get("findings")
    if check(isinstance(findings, list), f"{label}: findings must be a list"):
        for i, f_ in enumerate(findings):
            flabel = f"{label}: findings[{i}]"
            check(isinstance(f_.get("program"), int), f"{flabel}: program")
            check(isinstance(f_.get("seed"), int), f"{flabel}: seed")
            check(f_.get("profile") in PROFILES,
                  f"{flabel}: profile {f_.get('profile')!r}")
            check(f_.get("kind") in KINDS, f"{flabel}: kind {f_.get('kind')!r}")
            check(isinstance(f_.get("config"), str), f"{flabel}: config")
            check(isinstance(f_.get("detail"), str), f"{flabel}: detail")
            check(isinstance(f_.get("finding_count"), int)
                  and f_["finding_count"] >= 1, f"{flabel}: finding_count")
            for key in ("reduced", "minimal"):
                check(f_.get(key) in (True, False), f"{flabel}: {key}")
            for key in ("reduce_tests", "source_lines"):
                check(isinstance(f_.get(key), int) and f_[key] >= 0,
                      f"{flabel}: {key}")
            check(isinstance(f_.get("trophy"), str), f"{flabel}: trophy")

    counters = doc.get("counters")
    if check(isinstance(counters, dict), f"{label}: counters must be an "
                                         "object"):
        check(counters.get("fuzz.programs") == doc.get("programs_run"),
              f"{label}: counters[fuzz.programs] != programs_run")
        check(counters.get("detect.runs", 0) > 0,
              f"{label}: counters missing detect.runs")
    return doc


def main():
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} <path-to-tdr-binary>", file=sys.stderr)
        return 2
    tdr = sys.argv[1]

    with tempfile.TemporaryDirectory(prefix="tdr-check-fuzz-") as tmp:
        summary = os.path.join(tmp, "fuzz-summary.json")
        trophies = os.path.join(tmp, "trophies")

        # -- clean seeded run --------------------------------------------
        res = run([tdr, "fuzz", "--programs", "24", "--jobs", "2",
                   "--seed", "7", "--summary", summary,
                   "--trophy-dir", trophies])
        check(res.returncode == 0,
              f"fuzz: expected exit 0 (clean), got {res.returncode}: "
              f"{res.stderr.strip()}")
        doc = load_summary(summary, "fuzz")
        if doc is not None:
            check(doc["programs_requested"] == 24, "fuzz: programs_requested")
            check(doc["programs_run"] == 24, "fuzz: programs_run")
            check(doc["seed"] == 7, "fuzz: seed echo")
            check(doc["jobs"] == 2, "fuzz: jobs echo")
            check(doc["findings"] == [],
                  f"fuzz: expected a clean tree, got {doc['findings']}")
            check(not os.path.isdir(trophies) or not os.listdir(trophies),
                  "fuzz: clean run wrote trophies")

        # -- determinism: accounting is --jobs-independent ----------------
        summary1 = os.path.join(tmp, "fuzz-j1.json")
        res = run([tdr, "fuzz", "--programs", "24", "--jobs", "1",
                   "--seed", "7", "--summary", summary1,
                   "--trophy-dir", trophies])
        check(res.returncode == 0, "fuzz -j1: expected exit 0")
        doc1 = load_summary(summary1, "fuzz -j1")
        if doc is not None and doc1 is not None:
            for key in ("programs_run", "detect_runs", "replay_runs",
                        "repair_runs", "findings"):
                check(doc[key] == doc1[key],
                      f"fuzz: {key} differs between --jobs 1 and --jobs 2")

        # -- summary to stdout when --summary is omitted ------------------
        res = run([tdr, "fuzz", "--programs", "4", "--seed", "3",
                   "--trophy-dir", trophies])
        check(res.returncode == 0, "fuzz stdout: expected exit 0")
        try:
            doc = json.loads(res.stdout)
            check(doc.get("schema") == SCHEMA, "fuzz stdout: bad schema")
        except json.JSONDecodeError as e:
            check(False, f"fuzz stdout: not JSON: {e}")

        # -- flag validation: exit 2 on garbage ---------------------------
        for flags in (["--programs", "0"], ["--programs", "nope"],
                      ["--seed", "-3"], ["--time-budget", "0"],
                      ["--jobs", "zero"], ["extra-operand"]):
            res = run([tdr, "fuzz"] + flags)
            check(res.returncode == 2,
                  f"fuzz {' '.join(flags)}: expected exit 2, "
                  f"got {res.returncode}")

    if FAILURES:
        for msg in FAILURES:
            print(f"check_fuzz: FAIL: {msg}", file=sys.stderr)
        return 1
    print("check_fuzz: OK (fuzz-summary schema valid, clean seeded run, "
          "accounting --jobs-independent)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
