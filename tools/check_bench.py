#!/usr/bin/env python3
"""Validate the BENCH_*.json benchmark report schema and gate speedups.

Runs `<bench-binary> --quick --out ...` and checks the emitted report
follows the shared machine-readable layout (see bench/BenchUtil.h):

    { "bench": "<name>", "schema_version": 1, "results": [ {...}, ... ] }

with every result row carrying the fields perf tooling diffs across runs.
The expected report name and row schema are selected by the binary's
basename (bench_detector -> "detector", bench_replay -> "replay",
bench_vc -> "vc"). Invoked from CTest (see tools/CMakeLists.txt) but also
usable standalone:

    python3 tools/check_bench.py build/bench/bench_detector
    python3 tools/check_bench.py build/bench/bench_replay

Regression gates: each `--min-speedup KEY:X` requires the BEST speedup
among result rows whose name contains KEY to be at least X (best-of so a
single noisy window cannot flake CI; a real regression drags every row
down). The speedup field is per-bench: detector rows carry
`speedup_vs_map`, replay rows `speedup`, vc rows `speedup_vs_espbags`,
pdetect rows `speedup_vs_1worker`, shadow rows `speedup_vs_base`. CI uses
this to fail perf regressions outright:

    python3 tools/check_bench.py build/bench/bench_replay \\
        --min-speedup compute-bound:1.5
    python3 tools/check_bench.py build/bench/bench_vc \\
        --min-speedup access:0.9
    python3 tools/check_bench.py build/bench/bench_pdetect \\
        --min-speedup large/MRW/w4:2.0   # only meaningful on >= 4 cores

Footprint gates mirror the speedup gates on the memory axis: each
`--max-bytes-ratio KEY:X` requires the BEST (smallest) bytes ratio among
matching rows to be at most X. Only benches whose rows carry a bytes
ratio field support it (shadow rows: `bytes_ratio_vs_base`, the peak
footprint relative to the family's baseline implementation):

    python3 tools/check_bench.py build/bench/bench_shadow \\
        --min-speedup hot-dense:0.9 \\
        --max-bytes-ratio sparse-giant:0.1 \\
        --max-bytes-ratio spilled-replay:0.5
"""

import json
import os
import subprocess
import sys
import tempfile

FAILURES = []


def check(cond, msg):
    if not cond:
        FAILURES.append(msg)


def validate_detector_rows(results):
    impls = set()
    modes = set()
    for i, row in enumerate(results):
        impls.add(row["impl"])
        modes.add(row["mode"])
        check(row["accesses_per_sec"] > 0, f"result {i} has non-positive rate")
        check(row["seconds"] > 0, f"result {i} has non-positive duration")
        check(row["total_accesses"] > 0, f"result {i} recorded no accesses")
        if row["impl"] != "map":
            check(
                row.get("speedup_vs_map", 0) > 0,
                f"result {i} ({row['name']}) missing speedup_vs_map",
            )

    # The report's whole point is the before/after comparison: both the
    # frozen map baseline and the flat fast path must be present, for both
    # detector variants.
    check("map" in impls, "no 'map' baseline rows in report")
    check("flat" in impls, "no 'flat' fast-path rows in report")
    check({"SRW", "MRW"} <= modes, f"expected SRW and MRW rows, got {sorted(modes)}")


def validate_replay_rows(results):
    best = 0.0
    for i, row in enumerate(results):
        check(row["events"] > 0, f"result {i} ({row['name']}) recorded no events")
        check(row["iterations"] >= 1, f"result {i} has no detection runs")
        check(row["fresh_detect_ms"] > 0, f"result {i} has non-positive fresh time")
        check(row["replay_detect_ms"] > 0, f"result {i} has non-positive replay time")
        check(row["speedup"] > 0, f"result {i} has non-positive speedup")
        best = max(best, row["speedup"])

    # Replaying the recorded stream must beat re-interpreting the test
    # somewhere in the suite — the compute-bound workload exists precisely
    # to exercise the case record/replay targets.
    check(best >= 1.0, f"no workload shows any replay speedup (best {best:.2f}x)")


def validate_vc_rows(results):
    impls = set()
    modes = set()
    families = set()
    for i, row in enumerate(results):
        impls.add(row["impl"])
        modes.add(row["mode"])
        families.add(row["family"])
        check(row["accesses_per_sec"] > 0, f"result {i} has non-positive rate")
        check(row["seconds"] > 0, f"result {i} has non-positive duration")
        check(row["total_accesses"] > 0, f"result {i} recorded no accesses")
        if row["impl"] == "vc":
            check(
                row.get("speedup_vs_espbags", 0) > 0,
                f"result {i} ({row['name']}) missing speedup_vs_espbags",
            )

    # Head-to-head means both backends over both workload families, in
    # both detector variants.
    check("espbags" in impls, "no 'espbags' baseline rows in report")
    check("vc" in impls, "no 'vc' rows in report")
    check(
        {"access", "finish"} <= families,
        f"expected access and finish families, got {sorted(families)}",
    )
    check({"SRW", "MRW"} <= modes, f"expected SRW and MRW rows, got {sorted(modes)}")


def validate_pdetect_rows(results):
    impls = set()
    modes = set()
    families = set()
    par_workers = set()
    for i, row in enumerate(results):
        impls.add(row["impl"])
        modes.add(row["mode"])
        families.add(row["family"])
        check(row["events"] > 0, f"result {i} ({row['name']}) recorded no events")
        check(row["accesses_per_sec"] > 0, f"result {i} has non-positive rate")
        check(row["seconds"] > 0, f"result {i} has non-positive duration")
        check(row["total_accesses"] > 0, f"result {i} recorded no accesses")
        if row["impl"] == "par":
            par_workers.add(row["workers"])
            check(
                row.get("speedup_vs_1worker", 0) > 0,
                f"result {i} ({row['name']}) missing speedup_vs_1worker",
            )

    # The scaling curve needs the sequential anchor plus the full worker
    # sweep, over both workload families and both detector variants.
    check("espbags" in impls, "no 'espbags' baseline rows in report")
    check("par" in impls, "no 'par' rows in report")
    check(
        {1, 2, 4, 8} <= par_workers,
        f"expected par rows at 1/2/4/8 workers, got {sorted(par_workers)}",
    )
    check(
        {"large", "suite"} <= families,
        f"expected large and suite families, got {sorted(families)}",
    )
    check({"SRW", "MRW"} <= modes, f"expected SRW and MRW rows, got {sorted(modes)}")


def validate_constructs_rows(results):
    programs = set()
    masks = set()
    for i, row in enumerate(results):
        programs.add(row["program"])
        masks.add(row["constructs"])
        inserted = row["finishes"] + row["forces"] + row["isolated"]
        check(inserted > 0, f"result {i} ({row['name']}) inserted no repairs")
        check(row["cost_chosen"] > 0, f"result {i} has no modeled cost")
        # The chooser only deviates from finish when strictly cheaper, so
        # the chosen plan can never model worse than the pure-finish plan.
        check(
            row["cost_chosen"] <= row["cost_all_finish"],
            f"result {i} ({row['name']}) chose a costlier-than-finish plan",
        )
        check(
            row["cost_gain_vs_finish"] > 0,
            f"result {i} ({row['name']}) missing cost_gain_vs_finish",
        )
        if row["constructs"] == "finish":
            check(
                row["forces"] == 0 and row["isolated"] == 0,
                f"result {i} ({row['name']}) used a construct the finish-only "
                "allowlist forbids",
            )
        if row["constructs"] != "all":
            check(
                row["isolated"] == 0,
                f"result {i} ({row['name']}) inserted isolated without opt-in",
            )

    # The comparison needs every suite program under every allowlist.
    expected_masks = {"finish", "default", "all"}
    check(
        expected_masks <= masks,
        f"expected allowlists {sorted(expected_masks)}, got {sorted(masks)}",
    )
    expected_programs = {"FuturePipeline", "IsolatedAccum", "ForasyncStencil"}
    check(
        expected_programs <= programs,
        f"expected programs {sorted(expected_programs)}, got {sorted(programs)}",
    )


def validate_shadow_rows(results):
    impls = set()
    families = set()
    for i, row in enumerate(results):
        impls.add(row["impl"])
        families.add(row["family"])
        check(row["accesses_per_sec"] > 0, f"result {i} has non-positive rate")
        check(row["seconds"] > 0, f"result {i} has non-positive duration")
        check(row["total_accesses"] > 0, f"result {i} recorded no accesses")
        check(row["bytes_peak"] > 0, f"result {i} recorded no footprint")
        if row["impl"] not in ("dense", "resident"):
            check(
                row.get("speedup_vs_base", 0) > 0,
                f"result {i} ({row['name']}) missing speedup_vs_base",
            )
            check(
                row.get("bytes_ratio_vs_base", 0) > 0,
                f"result {i} ({row['name']}) missing bytes_ratio_vs_base",
            )

    # The report's point is the two-level-vs-dense comparison over every
    # access shape, plus the out-of-core streaming comparison.
    check("dense" in impls, "no 'dense' baseline rows in report")
    check("sparse" in impls, "no 'sparse' rows in report")
    check("resident" in impls, "no 'resident' baseline rows in report")
    check("spilled" in impls, "no 'spilled' rows in report")
    expected = {"sparse-giant", "hot-dense", "random-stride", "spilled-replay"}
    check(
        expected <= families,
        f"expected families {sorted(expected)}, got {sorted(families)}",
    )


def validate_fuzz_rows(results):
    families = set()
    profiles = set()
    farm_jobs = set()
    for i, row in enumerate(results):
        families.add(row["family"])
        check(row["programs"] > 0, f"result {i} checked no programs")
        check(row["seconds"] > 0, f"result {i} has non-positive duration")
        check(
            row["programs_per_sec"] > 0, f"result {i} has non-positive rate"
        )
        check(row["detect_runs"] > 0, f"result {i} performed no detections")
        check(row["findings"] >= 0, f"result {i} has negative findings")
        check(row["jobs"] >= 1, f"result {i} ran with no workers")
        if row["family"] == "oracle":
            profiles.add(row["profile"])
        elif row["family"] == "farm":
            farm_jobs.add(row["jobs"])
            check(
                row.get("speedup_vs_1job", 0) > 0,
                f"result {i} ({row['name']}) missing speedup_vs_1job",
            )

    # The report's point is the per-profile oracle cost plus the farm's
    # worker scaling off the 1-job baseline.
    check("oracle" in families, "no 'oracle' rows in report")
    check("farm" in families, "no 'farm' rows in report")
    expected = {"default", "constructs", "sparse"}
    check(
        expected <= profiles,
        f"expected oracle profiles {sorted(expected)}, got {sorted(profiles)}",
    )
    check(1 in farm_jobs, "no 1-job farm baseline row in report")


# Per-report row schema, semantic checks, the field --min-speedup gates
# on, and the field --max-bytes-ratio gates on (None when the bench
# reports no footprint ratio), keyed by the report name the bench binary
# declares (and its basename implies).
BENCHES = {
    "detector": (
        {
            "name",
            "mode",
            "impl",
            "locs",
            "readers",
            "write_steps",
            "total_accesses",
            "seconds",
            "accesses_per_sec",
        },
        validate_detector_rows,
        "speedup_vs_map",
        None,
    ),
    "replay": (
        {
            "name",
            "mode",
            "iterations",
            "events",
            "repair_detect_ms_fresh",
            "repair_detect_ms_replay",
            "fresh_detect_ms",
            "replay_detect_ms",
            "speedup",
        },
        validate_replay_rows,
        "speedup",
        None,
    ),
    "vc": (
        {
            "name",
            "family",
            "mode",
            "impl",
            "locs",
            "tasks",
            "total_accesses",
            "seconds",
            "accesses_per_sec",
        },
        validate_vc_rows,
        "speedup_vs_espbags",
        None,
    ),
    "pdetect": (
        {
            "name",
            "family",
            "mode",
            "impl",
            "workers",
            "events",
            "total_accesses",
            "seconds",
            "accesses_per_sec",
        },
        validate_pdetect_rows,
        "speedup_vs_1worker",
        None,
    ),
    "constructs": (
        {
            "name",
            "program",
            "constructs",
            "mode",
            "finishes",
            "forces",
            "isolated",
            "iterations",
            "cost_before",
            "cost_chosen",
            "cost_all_finish",
            "cost_gain_vs_finish",
            "repair_ms",
        },
        validate_constructs_rows,
        "cost_gain_vs_finish",
        None,
    ),
    "shadow": (
        {
            "name",
            "family",
            "impl",
            "locs",
            "total_accesses",
            "seconds",
            "accesses_per_sec",
            "bytes_peak",
        },
        validate_shadow_rows,
        "speedup_vs_base",
        "bytes_ratio_vs_base",
    ),
    "fuzz": (
        {
            "name",
            "family",
            "profile",
            "jobs",
            "programs",
            "seconds",
            "programs_per_sec",
            "detect_runs",
            "findings",
            "speedup_vs_1job",
        },
        validate_fuzz_rows,
        "speedup_vs_1job",
        None,
    ),
}


def validate_report(path, bench_name):
    """Validates the report and returns its complete rows (or [])."""
    required, validate_rows, _, _ = BENCHES[bench_name]
    with open(path) as f:
        doc = json.load(f)  # raises on malformed JSON -> test failure
    check(isinstance(doc, dict), "report root must be a JSON object")
    if not isinstance(doc, dict):
        return []
    check(
        doc.get("bench") == bench_name,
        f"report 'bench' must be '{bench_name}', got {doc.get('bench')!r}",
    )
    check(doc.get("schema_version") == 1, "schema_version must be 1")
    results = doc.get("results")
    check(isinstance(results, list), "report must have a results array")
    if not isinstance(results, list):
        return []
    check(len(results) > 0, "results must not be empty")

    complete = []
    for i, row in enumerate(results):
        check(isinstance(row, dict), f"result {i} is not an object")
        if not isinstance(row, dict):
            continue
        missing = required - set(row)
        check(not missing, f"result {i} missing fields: {sorted(missing)}")
        if not missing:
            complete.append(row)
    if len(complete) == len(results):
        validate_rows(complete)
    return complete


def apply_speedup_gates(rows, bench_name, gates):
    field = BENCHES[bench_name][2]
    for key, floor in gates:
        speedups = [
            row[field]
            for row in rows
            if key in row.get("name", "") and field in row
        ]
        if not speedups:
            check(False, f"--min-speedup {key}:{floor}: no rows match '{key}'")
            continue
        best = max(speedups)
        check(
            best >= floor,
            f"--min-speedup {key}:{floor}: best {field} among "
            f"{len(speedups)} matching row(s) is {best:.2f}x (< {floor}x)",
        )


def apply_bytes_gates(rows, bench_name, gates):
    field = BENCHES[bench_name][3]
    for key, ceiling in gates:
        if field is None:
            check(
                False,
                f"--max-bytes-ratio {key}:{ceiling}: bench '{bench_name}' "
                "reports no bytes ratio",
            )
            continue
        ratios = [
            row[field]
            for row in rows
            if key in row.get("name", "") and field in row
        ]
        if not ratios:
            check(
                False, f"--max-bytes-ratio {key}:{ceiling}: no rows match '{key}'"
            )
            continue
        best = min(ratios)
        check(
            best <= ceiling,
            f"--max-bytes-ratio {key}:{ceiling}: best {field} among "
            f"{len(ratios)} matching row(s) is {best:.4f}x (> {ceiling}x)",
        )


def usage():
    print(
        f"usage: {sys.argv[0]} <path-to-bench-binary> "
        "[--min-speedup KEY:X]... [--max-bytes-ratio KEY:X]...",
        file=sys.stderr,
    )
    return 2


def main():
    args = sys.argv[1:]
    bench = None
    gates = []
    bytes_gates = []
    i = 0
    while i < len(args):
        if args[i] in ("--min-speedup", "--max-bytes-ratio"):
            flag = args[i]
            if i + 1 == len(args):
                return usage()
            spec = args[i + 1]
            key, sep, bound = spec.partition(":")
            try:
                bound = float(bound)
            except ValueError:
                sep = ""
            if not key or not sep:
                print(
                    f"check_bench: bad {flag} '{spec}' (want KEY:X)",
                    file=sys.stderr,
                )
                return 2
            (gates if flag == "--min-speedup" else bytes_gates).append(
                (key, bound)
            )
            i += 2
        elif bench is None:
            bench = args[i]
            i += 1
        else:
            return usage()
    if bench is None:
        return usage()

    base = os.path.basename(bench)
    name = base[len("bench_"):] if base.startswith("bench_") else base
    if name not in BENCHES:
        print(
            f"check_bench: unknown bench '{name}' (known: {sorted(BENCHES)})",
            file=sys.stderr,
        )
        return 2

    with tempfile.TemporaryDirectory(prefix="tdr-check-bench-") as tmp:
        out = os.path.join(tmp, f"BENCH_{name}.json")
        cmd = [bench, "--quick", "--out", out]
        result = subprocess.run(cmd, capture_output=True, text=True)
        check(
            result.returncode == 0,
            f"{base} exited {result.returncode}: {result.stderr.strip()}",
        )
        check(os.path.exists(out), "--out produced no file")
        rows = []
        if os.path.exists(out):
            rows = validate_report(out, name)
        if rows:
            apply_speedup_gates(rows, name, gates)
            apply_bytes_gates(rows, name, bytes_gates)

    if FAILURES:
        for msg in FAILURES:
            print(f"check_bench: FAIL: {msg}", file=sys.stderr)
        return 1
    gated = ""
    if gates or bytes_gates:
        gated = f", {len(gates) + len(bytes_gates)} gate(s) passed"
    print(f"check_bench: OK ({name} report schema is valid{gated})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
