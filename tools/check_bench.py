#!/usr/bin/env python3
"""Validate the BENCH_*.json benchmark report schema.

Runs `<bench-binary> --quick --out ...` and checks the emitted report
follows the shared machine-readable layout (see bench/BenchUtil.h):

    { "bench": "<name>", "schema_version": 1, "results": [ {...}, ... ] }

with every result row carrying the fields perf tooling diffs across runs.
The expected report name and row schema are selected by the binary's
basename (bench_detector -> "detector", bench_replay -> "replay").
Invoked from CTest (see tools/CMakeLists.txt) but also usable standalone:

    python3 tools/check_bench.py build/bench/bench_detector
    python3 tools/check_bench.py build/bench/bench_replay
"""

import json
import os
import subprocess
import sys
import tempfile

FAILURES = []


def check(cond, msg):
    if not cond:
        FAILURES.append(msg)


def validate_detector_rows(results):
    impls = set()
    modes = set()
    for i, row in enumerate(results):
        impls.add(row["impl"])
        modes.add(row["mode"])
        check(row["accesses_per_sec"] > 0, f"result {i} has non-positive rate")
        check(row["seconds"] > 0, f"result {i} has non-positive duration")
        check(row["total_accesses"] > 0, f"result {i} recorded no accesses")
        if row["impl"] != "map":
            check(
                row.get("speedup_vs_map", 0) > 0,
                f"result {i} ({row['name']}) missing speedup_vs_map",
            )

    # The report's whole point is the before/after comparison: both the
    # frozen map baseline and the flat fast path must be present, for both
    # detector variants.
    check("map" in impls, "no 'map' baseline rows in report")
    check("flat" in impls, "no 'flat' fast-path rows in report")
    check({"SRW", "MRW"} <= modes, f"expected SRW and MRW rows, got {sorted(modes)}")


def validate_replay_rows(results):
    best = 0.0
    for i, row in enumerate(results):
        check(row["events"] > 0, f"result {i} ({row['name']}) recorded no events")
        check(row["iterations"] >= 1, f"result {i} has no detection runs")
        check(row["fresh_detect_ms"] > 0, f"result {i} has non-positive fresh time")
        check(row["replay_detect_ms"] > 0, f"result {i} has non-positive replay time")
        check(row["speedup"] > 0, f"result {i} has non-positive speedup")
        best = max(best, row["speedup"])

    # Replaying the recorded stream must beat re-interpreting the test
    # somewhere in the suite — the compute-bound workload exists precisely
    # to exercise the case record/replay targets.
    check(best >= 1.0, f"no workload shows any replay speedup (best {best:.2f}x)")


# Per-report row schema and semantic checks, keyed by the report name the
# bench binary declares (and its basename implies).
BENCHES = {
    "detector": (
        {
            "name",
            "mode",
            "impl",
            "locs",
            "readers",
            "write_steps",
            "total_accesses",
            "seconds",
            "accesses_per_sec",
        },
        validate_detector_rows,
    ),
    "replay": (
        {
            "name",
            "mode",
            "iterations",
            "events",
            "repair_detect_ms_fresh",
            "repair_detect_ms_replay",
            "fresh_detect_ms",
            "replay_detect_ms",
            "speedup",
        },
        validate_replay_rows,
    ),
}


def validate_report(path, bench_name):
    required, validate_rows = BENCHES[bench_name]
    with open(path) as f:
        doc = json.load(f)  # raises on malformed JSON -> test failure
    check(isinstance(doc, dict), "report root must be a JSON object")
    if not isinstance(doc, dict):
        return
    check(
        doc.get("bench") == bench_name,
        f"report 'bench' must be '{bench_name}', got {doc.get('bench')!r}",
    )
    check(doc.get("schema_version") == 1, "schema_version must be 1")
    results = doc.get("results")
    check(isinstance(results, list), "report must have a results array")
    if not isinstance(results, list):
        return
    check(len(results) > 0, "results must not be empty")

    complete = []
    for i, row in enumerate(results):
        check(isinstance(row, dict), f"result {i} is not an object")
        if not isinstance(row, dict):
            continue
        missing = required - set(row)
        check(not missing, f"result {i} missing fields: {sorted(missing)}")
        if not missing:
            complete.append(row)
    if len(complete) == len(results):
        validate_rows(complete)


def main():
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} <path-to-bench-binary>", file=sys.stderr)
        return 2
    bench = sys.argv[1]
    base = os.path.basename(bench)
    name = base[len("bench_"):] if base.startswith("bench_") else base
    if name not in BENCHES:
        print(
            f"check_bench: unknown bench '{name}' (known: {sorted(BENCHES)})",
            file=sys.stderr,
        )
        return 2

    with tempfile.TemporaryDirectory(prefix="tdr-check-bench-") as tmp:
        out = os.path.join(tmp, f"BENCH_{name}.json")
        cmd = [bench, "--quick", "--out", out]
        result = subprocess.run(cmd, capture_output=True, text=True)
        check(
            result.returncode == 0,
            f"{base} exited {result.returncode}: {result.stderr.strip()}",
        )
        check(os.path.exists(out), "--out produced no file")
        if os.path.exists(out):
            validate_report(out, name)

    if FAILURES:
        for msg in FAILURES:
            print(f"check_bench: FAIL: {msg}", file=sys.stderr)
        return 1
    print(f"check_bench: OK ({name} report schema is valid)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
