#!/usr/bin/env python3
"""Validate the BENCH_*.json benchmark report schema.

Runs `bench_detector --quick --out ...` and checks the emitted report
follows the shared machine-readable layout (see bench/BenchUtil.h):

    { "bench": "<name>", "schema_version": 1, "results": [ {...}, ... ] }

with every result row carrying the fields perf tooling diffs across runs.
Invoked from CTest (see tools/CMakeLists.txt) but also usable standalone:

    python3 tools/check_bench.py build/bench/bench_detector
"""

import json
import os
import subprocess
import sys
import tempfile

# Every detector result row must carry these fields.
REQUIRED_FIELDS = {
    "name",
    "mode",
    "impl",
    "locs",
    "readers",
    "write_steps",
    "total_accesses",
    "seconds",
    "accesses_per_sec",
}

FAILURES = []


def check(cond, msg):
    if not cond:
        FAILURES.append(msg)


def validate_report(path):
    with open(path) as f:
        doc = json.load(f)  # raises on malformed JSON -> test failure
    check(isinstance(doc, dict), "report root must be a JSON object")
    if not isinstance(doc, dict):
        return
    check(doc.get("bench") == "detector", "report 'bench' must be 'detector'")
    check(doc.get("schema_version") == 1, "schema_version must be 1")
    results = doc.get("results")
    check(isinstance(results, list), "report must have a results array")
    if not isinstance(results, list):
        return
    check(len(results) > 0, "results must not be empty")

    impls = set()
    modes = set()
    for i, row in enumerate(results):
        check(isinstance(row, dict), f"result {i} is not an object")
        if not isinstance(row, dict):
            continue
        missing = REQUIRED_FIELDS - set(row)
        check(not missing, f"result {i} missing fields: {sorted(missing)}")
        if missing:
            continue
        impls.add(row["impl"])
        modes.add(row["mode"])
        check(row["accesses_per_sec"] > 0, f"result {i} has non-positive rate")
        check(row["seconds"] > 0, f"result {i} has non-positive duration")
        check(row["total_accesses"] > 0, f"result {i} recorded no accesses")
        if row["impl"] != "map":
            check(
                row.get("speedup_vs_map", 0) > 0,
                f"result {i} ({row['name']}) missing speedup_vs_map",
            )

    # The report's whole point is the before/after comparison: both the
    # frozen map baseline and the flat fast path must be present, for both
    # detector variants.
    check("map" in impls, "no 'map' baseline rows in report")
    check("flat" in impls, "no 'flat' fast-path rows in report")
    check({"SRW", "MRW"} <= modes, f"expected SRW and MRW rows, got {sorted(modes)}")


def main():
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} <path-to-bench_detector>", file=sys.stderr)
        return 2
    bench = sys.argv[1]

    with tempfile.TemporaryDirectory(prefix="tdr-check-bench-") as tmp:
        out = os.path.join(tmp, "BENCH_detector.json")
        cmd = [bench, "--quick", "--out", out]
        result = subprocess.run(cmd, capture_output=True, text=True)
        check(
            result.returncode == 0,
            f"bench_detector exited {result.returncode}: {result.stderr.strip()}",
        )
        check(os.path.exists(out), "--out produced no file")
        if os.path.exists(out):
            validate_report(out)

    if FAILURES:
        for msg in FAILURES:
            print(f"check_bench: FAIL: {msg}", file=sys.stderr)
        return 1
    print("check_bench: OK (benchmark report schema is valid)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
