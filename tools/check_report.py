#!/usr/bin/env python3
"""Validate the tdr CLI's --report output against the tdr-report schema.

Runs `tdr races/repair/batch ... --report out.json` on a racy fixture and
checks the emitted report: schema/version header, job stats, per-iteration
race witnesses (source line/col for both accesses, the NS-LCA node, the
breaking async edge), and per-finish repair provenance (costs, forced
dependence edges, rejected alternatives). Also checks that the witness
sections are byte-identical across all three detection backends and that
`tdr explain` accepts every report it writes. Invoked from CTest (see
tools/CMakeLists.txt) but also usable standalone:

    python3 tools/check_report.py build/tools/tdr
"""

import json
import os
import subprocess
import sys
import tempfile

RACY_PROGRAM = """\
func work(a: int[], i: int) {
  a[i] = a[i] + 1;
  a[0] = a[0] + i;
}

func main() {
  var n: int = arg(0);
  var a: int[] = new int[n + 1];
  for (var i: int = 1; i <= n; i = i + 1) {
    async work(a, i);
  }
  print(a[0]);
}
"""

ACCESS_KINDS = {"read", "write"}
DPST_KINDS = {"root", "async", "finish", "scope", "step"}
CONSTRUCTS = {"finish", "force", "isolated"}

FAILURES = []


def check(cond, msg):
    if not cond:
        FAILURES.append(msg)
    return cond


def run(cmd, env_overrides=None):
    env = dict(os.environ)
    env.pop("TDR_BACKEND", None)
    env.pop("TDR_BACKEND_CHECK", None)
    if env_overrides:
        env.update(env_overrides)
    return subprocess.run(cmd, capture_output=True, text=True, env=env)


def load_report(path, label):
    if not check(os.path.exists(path), f"{label}: --report produced no file"):
        return None
    with open(path) as f:
        doc = json.load(f)  # raises on malformed JSON -> test failure
    check(doc.get("schema") == "tdr-report", f"{label}: bad schema name")
    check(doc.get("version") == 2, f"{label}: bad schema version")
    check(doc.get("tool") in ("races", "repair", "batch"),
          f"{label}: bad tool {doc.get('tool')!r}")
    check(doc.get("backend") in ("espbags", "vc", "par"),
          f"{label}: bad backend {doc.get('backend')!r}")
    check(doc.get("mode") in ("srw", "mrw"),
          f"{label}: bad mode {doc.get('mode')!r}")
    jobs = doc.get("jobs")
    if not check(isinstance(jobs, list) and jobs,
                 f"{label}: jobs must be a non-empty array"):
        return None
    return doc


def validate_pos(pos, label):
    check(isinstance(pos.get("line"), int) and pos["line"] >= 1,
          f"{label}: line must be >= 1")
    check(isinstance(pos.get("col"), int) and pos["col"] >= 1,
          f"{label}: col must be >= 1")
    check(isinstance(pos.get("line_text"), str) and pos["line_text"],
          f"{label}: line_text must be a non-empty string")


def validate_witness(w, label):
    check(isinstance(w.get("location"), str) and w["location"],
          f"{label}: missing location")
    for side in ("src", "snk"):
        acc = w.get(side)
        if not check(isinstance(acc, dict), f"{label}: missing {side}"):
            continue
        check(isinstance(acc.get("step"), int), f"{label}: {side}.step")
        check(acc.get("kind") in ACCESS_KINDS,
              f"{label}: {side}.kind {acc.get('kind')!r}")
        validate_pos(acc, f"{label}: {side}")
    lca = w.get("lca")
    if check(isinstance(lca, dict), f"{label}: missing lca object"):
        check(isinstance(lca.get("id"), int), f"{label}: lca.id")
        check(lca.get("kind") in DPST_KINDS,
              f"{label}: lca.kind {lca.get('kind')!r}")
    # Every race in this suite is explained by an escaping async; the
    # field is nullable in the schema but must be present here.
    ba = w.get("breaking_async")
    if check(isinstance(ba, dict),
             f"{label}: breaking_async must be an object for a racy fixture"):
        check(isinstance(ba.get("id"), int), f"{label}: breaking_async.id")
        validate_pos(ba, f"{label}: breaking_async")
    for spine in ("src_spine", "snk_spine"):
        entries = w.get(spine)
        if not check(isinstance(entries, list) and entries,
                     f"{label}: {spine} must be non-empty"):
            continue
        for j, e in enumerate(entries):
            check(e.get("kind") in DPST_KINDS, f"{label}: {spine}[{j}].kind")
        check(entries[-1].get("kind") == "root",
              f"{label}: {spine} must end at the root")


def validate_job(job, label, racy):
    check(isinstance(job.get("name"), str) and job["name"],
          f"{label}: missing job name")
    check(job.get("success") in (True, False), f"{label}: missing success")
    stats = job.get("stats")
    if check(isinstance(stats, dict), f"{label}: missing stats"):
        for key in ("iterations", "finishes_inserted", "forces_inserted",
                    "isolated_inserted", "interpretations",
                    "replays", "races_raw", "race_pairs", "dpst_nodes"):
            check(isinstance(stats.get(key), int) and stats[key] >= 0,
                  f"{label}: stats.{key} must be a non-negative int")
    n_witnesses = 0
    for it in job.get("iterations", []):
        check(isinstance(it.get("iteration"), int), f"{label}: iteration id")
        check(it.get("replayed") in (True, False), f"{label}: replayed flag")
        for i, w in enumerate(it.get("witnesses", [])):
            n_witnesses += 1
            validate_witness(w, f"{label}: witness {i}")
    if racy:
        check(n_witnesses > 0, f"{label}: racy input produced no witnesses")
    return n_witnesses


def witness_sections(doc):
    """The backend-independent diagnostic subtree, as canonical JSON."""
    return json.dumps(
        [[job.get("name"), job.get("iterations"), job.get("provenance")]
         for job in doc["jobs"]],
        sort_keys=True)


def main():
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} <path-to-tdr-binary>", file=sys.stderr)
        return 2
    tdr = sys.argv[1]

    with tempfile.TemporaryDirectory(prefix="tdr-check-report-") as tmp:
        prog = os.path.join(tmp, "racy.hj")
        with open(prog, "w") as f:
            f.write(RACY_PROGRAM)

        def explain_ok(report, label):
            res = run([tdr, "explain", report])
            check(res.returncode == 0,
                  f"{label}: explain exited {res.returncode}: "
                  f"{res.stderr.strip()}")
            check("tdr run report" in res.stdout,
                  f"{label}: explain output missing report header")

        # -- tdr races --report, under every backend ---------------------
        sections = {}
        for backend in ("espbags", "vc", "par"):
            report = os.path.join(tmp, f"races-{backend}.json")
            res = run([tdr, "races", prog, "--arg", "6",
                       "--backend", backend, "--report", report])
            check(res.returncode == 1,
                  f"races[{backend}]: expected exit 1 (races found), "
                  f"got {res.returncode}: {res.stderr.strip()}")
            doc = load_report(report, f"races[{backend}]")
            if doc is None:
                continue
            check(doc["tool"] == "races", f"races[{backend}]: tool field")
            check(doc["backend"] == backend, f"races[{backend}]: backend field")
            for job in doc["jobs"]:
                validate_job(job, f"races[{backend}]", racy=True)
            sections[backend] = witness_sections(doc)
            explain_ok(report, f"races[{backend}]")
        if len(sections) == 3:
            check(sections["espbags"] == sections["vc"],
                  "witness sections differ between espbags and vc")
            check(sections["espbags"] == sections["par"],
                  "witness sections differ between espbags and par")

        # -- \uXXXX surrogate handling in the report reader ---------------
        # A report whose strings escape non-BMP characters as surrogate
        # pairs (json.dump with ensure_ascii emits exactly that) must
        # round-trip through `tdr explain`; a lone half must be rejected
        # as a parse error, not decoded into mojibake.
        src = os.path.join(tmp, "races-espbags.json")
        if os.path.exists(src):
            with open(src) as f:
                doc = json.load(f)
            doc["jobs"][0]["name"] = "fixture \U0001F600 astral"
            pair = os.path.join(tmp, "surrogate-pair.json")
            with open(pair, "w") as f:
                json.dump(doc, f, ensure_ascii=True)
            with open(pair) as f:
                check("\\ud83d\\ude00" in f.read().lower(),
                      "surrogate fixture did not emit a surrogate pair")
            res = run([tdr, "explain", pair])
            check(res.returncode == 0,
                  f"explain surrogate pair: exited {res.returncode}: "
                  f"{res.stderr.strip()}")
            lone = os.path.join(tmp, "surrogate-lone.json")
            with open(pair) as f:
                text = f.read()
            with open(lone, "w") as f:
                f.write(text.replace("\\ud83d\\ude00", "\\ude00")
                            .replace("\\uD83D\\uDE00", "\\uDE00"))
            res = run([tdr, "explain", lone])
            check(res.returncode != 0,
                  "explain accepted a lone low surrogate")
            check("surrogate" in res.stderr,
                  f"lone-surrogate error not surfaced: {res.stderr.strip()!r}")

        # -- tdr repair --report: provenance ------------------------------
        report = os.path.join(tmp, "repair.json")
        out = os.path.join(tmp, "repaired.hj")
        res = run([tdr, "repair", prog, "--arg", "6",
                   "--report", report, "-o", out])
        check(res.returncode == 0,
              f"repair: exited {res.returncode}: {res.stderr.strip()}")
        doc = load_report(report, "repair")
        if doc is not None:
            job = doc["jobs"][0]
            validate_job(job, "repair", racy=True)
            check(job.get("success") is True, "repair: job not successful")
            prov = job.get("provenance", [])
            if check(isinstance(prov, list) and prov,
                     "repair: provenance must be non-empty"):
                for i, p in enumerate(prov):
                    label = f"repair: provenance {i}"
                    check(isinstance(p.get("iteration"), int),
                          f"{label}: iteration")
                    check(isinstance(p.get("group_lca"), int),
                          f"{label}: group_lca")
                    check(p.get("construct") in CONSTRUCTS,
                          f"{label}: construct {p.get('construct')!r}")
                    validate_pos(p.get("anchor", {}), f"{label}: anchor")
                    check(p.get("dynamic_instances", 0) >= 1,
                          f"{label}: dynamic_instances")
                    check(p.get("cost_after", -1) >= p.get("cost_before", 0),
                          f"{label}: cost_after < cost_before")
                    edges = p.get("forced_edges")
                    check(isinstance(edges, list) and edges,
                          f"{label}: forced_edges must be non-empty")
                    alts = p.get("alternatives")
                    if check(isinstance(alts, list),
                             f"{label}: alternatives must be an array"):
                        for j, a in enumerate(alts):
                            check(a.get("construct") in CONSTRUCTS,
                                  f"{label}: alternatives[{j}].construct")
                            check(a.get("feasible") in (True, False),
                                  f"{label}: alternatives[{j}].feasible")
                            check(isinstance(a.get("cost"), int),
                                  f"{label}: alternatives[{j}].cost")
                            check(isinstance(a.get("reason"), str),
                                  f"{label}: alternatives[{j}].reason")
                    check(isinstance(p.get("rejected"), list),
                          f"{label}: rejected must be an array")
                repairs = (job["stats"]["finishes_inserted"]
                           + job["stats"]["forces_inserted"]
                           + job["stats"]["isolated_inserted"])
                check(len(prov) == repairs,
                      "repair: one provenance record per inserted repair")
            # Convergence: the last recorded iteration must be race free.
            iters = job.get("iterations", [])
            if check(len(iters) >= 2, "repair: expected >= 2 iterations"):
                check(not iters[-1]["witnesses"],
                      "repair: final iteration still has witnesses")
            explain_ok(report, "repair")

        # -- tdr batch --report: one job entry per manifest line ----------
        manifest = os.path.join(tmp, "manifest.txt")
        with open(manifest, "w") as f:
            f.write(f"{prog} 4\n{prog} 6\n")
        report = os.path.join(tmp, "batch.json")
        res = run([tdr, "batch", manifest, "--jobs", "2",
                   "--report", report, "-o", tmp])
        check(res.returncode == 0,
              f"batch: exited {res.returncode}: {res.stderr.strip()}")
        doc = load_report(report, "batch")
        if doc is not None:
            check(doc["tool"] == "batch", "batch: tool field")
            check(len(doc["jobs"]) == 2, "batch: expected 2 job entries")
            for j, job in enumerate(doc["jobs"]):
                validate_job(job, f"batch job {j}", racy=True)
            explain_ok(report, "batch")

    if FAILURES:
        for msg in FAILURES:
            print(f"check_report: FAIL: {msg}", file=sys.stderr)
        return 1
    print("check_report: OK (report schema, witnesses, and provenance are "
          "valid and backend-identical)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
