file(REMOVE_RECURSE
  "CMakeFiles/bench_dp_scaling.dir/bench_dp_scaling.cpp.o"
  "CMakeFiles/bench_dp_scaling.dir/bench_dp_scaling.cpp.o.d"
  "bench_dp_scaling"
  "bench_dp_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dp_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
