file(REMOVE_RECURSE
  "CMakeFiles/bench_students.dir/bench_students.cpp.o"
  "CMakeFiles/bench_students.dir/bench_students.cpp.o.d"
  "bench_students"
  "bench_students.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_students.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
