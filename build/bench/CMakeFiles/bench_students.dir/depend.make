# Empty dependencies file for bench_students.
# This may be replaced when dependencies are built.
