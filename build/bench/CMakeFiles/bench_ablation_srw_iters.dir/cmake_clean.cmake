file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_srw_iters.dir/bench_ablation_srw_iters.cpp.o"
  "CMakeFiles/bench_ablation_srw_iters.dir/bench_ablation_srw_iters.cpp.o.d"
  "bench_ablation_srw_iters"
  "bench_ablation_srw_iters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_srw_iters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
