file(REMOVE_RECURSE
  "CMakeFiles/classroom_grader.dir/classroom_grader.cpp.o"
  "CMakeFiles/classroom_grader.dir/classroom_grader.cpp.o.d"
  "classroom_grader"
  "classroom_grader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classroom_grader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
