# Empty dependencies file for classroom_grader.
# This may be replaced when dependencies are built.
