# Empty compiler generated dependencies file for classroom_grader.
# This may be replaced when dependencies are built.
