# Empty dependencies file for repair_mergesort.
# This may be replaced when dependencies are built.
