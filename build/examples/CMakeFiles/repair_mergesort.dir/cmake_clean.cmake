file(REMOVE_RECURSE
  "CMakeFiles/repair_mergesort.dir/repair_mergesort.cpp.o"
  "CMakeFiles/repair_mergesort.dir/repair_mergesort.cpp.o.d"
  "repair_mergesort"
  "repair_mergesort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repair_mergesort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
