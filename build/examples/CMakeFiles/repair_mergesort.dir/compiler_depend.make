# Empty compiler generated dependencies file for repair_mergesort.
# This may be replaced when dependencies are built.
