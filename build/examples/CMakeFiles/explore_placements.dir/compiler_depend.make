# Empty compiler generated dependencies file for explore_placements.
# This may be replaced when dependencies are built.
