file(REMOVE_RECURSE
  "CMakeFiles/explore_placements.dir/explore_placements.cpp.o"
  "CMakeFiles/explore_placements.dir/explore_placements.cpp.o.d"
  "explore_placements"
  "explore_placements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_placements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
