# Empty dependencies file for tdr_pinterp.
# This may be replaced when dependencies are built.
