# Empty compiler generated dependencies file for tdr_pinterp.
# This may be replaced when dependencies are built.
