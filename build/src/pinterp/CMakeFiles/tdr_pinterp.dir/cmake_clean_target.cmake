file(REMOVE_RECURSE
  "libtdr_pinterp.a"
)
