file(REMOVE_RECURSE
  "CMakeFiles/tdr_pinterp.dir/ParallelInterpreter.cpp.o"
  "CMakeFiles/tdr_pinterp.dir/ParallelInterpreter.cpp.o.d"
  "libtdr_pinterp.a"
  "libtdr_pinterp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdr_pinterp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
