# Empty compiler generated dependencies file for tdr_dpst.
# This may be replaced when dependencies are built.
