file(REMOVE_RECURSE
  "CMakeFiles/tdr_dpst.dir/Dpst.cpp.o"
  "CMakeFiles/tdr_dpst.dir/Dpst.cpp.o.d"
  "libtdr_dpst.a"
  "libtdr_dpst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdr_dpst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
