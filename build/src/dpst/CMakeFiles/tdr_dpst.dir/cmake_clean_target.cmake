file(REMOVE_RECURSE
  "libtdr_dpst.a"
)
