file(REMOVE_RECURSE
  "CMakeFiles/tdr_sema.dir/Sema.cpp.o"
  "CMakeFiles/tdr_sema.dir/Sema.cpp.o.d"
  "libtdr_sema.a"
  "libtdr_sema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdr_sema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
