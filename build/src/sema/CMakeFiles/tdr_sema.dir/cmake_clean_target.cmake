file(REMOVE_RECURSE
  "libtdr_sema.a"
)
