# Empty compiler generated dependencies file for tdr_sema.
# This may be replaced when dependencies are built.
