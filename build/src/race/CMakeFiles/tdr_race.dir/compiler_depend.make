# Empty compiler generated dependencies file for tdr_race.
# This may be replaced when dependencies are built.
