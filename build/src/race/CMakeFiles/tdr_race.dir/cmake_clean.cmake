file(REMOVE_RECURSE
  "CMakeFiles/tdr_race.dir/Detect.cpp.o"
  "CMakeFiles/tdr_race.dir/Detect.cpp.o.d"
  "CMakeFiles/tdr_race.dir/EspBags.cpp.o"
  "CMakeFiles/tdr_race.dir/EspBags.cpp.o.d"
  "CMakeFiles/tdr_race.dir/OracleDetector.cpp.o"
  "CMakeFiles/tdr_race.dir/OracleDetector.cpp.o.d"
  "libtdr_race.a"
  "libtdr_race.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdr_race.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
