file(REMOVE_RECURSE
  "libtdr_race.a"
)
