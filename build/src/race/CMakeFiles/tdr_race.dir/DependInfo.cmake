
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/race/Detect.cpp" "src/race/CMakeFiles/tdr_race.dir/Detect.cpp.o" "gcc" "src/race/CMakeFiles/tdr_race.dir/Detect.cpp.o.d"
  "/root/repo/src/race/EspBags.cpp" "src/race/CMakeFiles/tdr_race.dir/EspBags.cpp.o" "gcc" "src/race/CMakeFiles/tdr_race.dir/EspBags.cpp.o.d"
  "/root/repo/src/race/OracleDetector.cpp" "src/race/CMakeFiles/tdr_race.dir/OracleDetector.cpp.o" "gcc" "src/race/CMakeFiles/tdr_race.dir/OracleDetector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dpst/CMakeFiles/tdr_dpst.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/tdr_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tdr_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/tdr_ast.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
