# Empty compiler generated dependencies file for tdr_interp.
# This may be replaced when dependencies are built.
