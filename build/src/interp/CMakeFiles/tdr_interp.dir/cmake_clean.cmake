file(REMOVE_RECURSE
  "CMakeFiles/tdr_interp.dir/Interpreter.cpp.o"
  "CMakeFiles/tdr_interp.dir/Interpreter.cpp.o.d"
  "libtdr_interp.a"
  "libtdr_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdr_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
