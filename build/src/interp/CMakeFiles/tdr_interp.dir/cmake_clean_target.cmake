file(REMOVE_RECURSE
  "libtdr_interp.a"
)
