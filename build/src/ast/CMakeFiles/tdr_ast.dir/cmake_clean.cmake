file(REMOVE_RECURSE
  "CMakeFiles/tdr_ast.dir/AstContext.cpp.o"
  "CMakeFiles/tdr_ast.dir/AstContext.cpp.o.d"
  "CMakeFiles/tdr_ast.dir/AstPrinter.cpp.o"
  "CMakeFiles/tdr_ast.dir/AstPrinter.cpp.o.d"
  "CMakeFiles/tdr_ast.dir/Transforms.cpp.o"
  "CMakeFiles/tdr_ast.dir/Transforms.cpp.o.d"
  "libtdr_ast.a"
  "libtdr_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdr_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
