file(REMOVE_RECURSE
  "libtdr_ast.a"
)
