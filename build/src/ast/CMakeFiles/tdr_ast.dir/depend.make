# Empty dependencies file for tdr_ast.
# This may be replaced when dependencies are built.
