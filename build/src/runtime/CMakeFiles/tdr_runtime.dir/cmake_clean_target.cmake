file(REMOVE_RECURSE
  "libtdr_runtime.a"
)
