file(REMOVE_RECURSE
  "CMakeFiles/tdr_runtime.dir/Runtime.cpp.o"
  "CMakeFiles/tdr_runtime.dir/Runtime.cpp.o.d"
  "libtdr_runtime.a"
  "libtdr_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdr_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
