# Empty dependencies file for tdr_runtime.
# This may be replaced when dependencies are built.
