file(REMOVE_RECURSE
  "CMakeFiles/tdr_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/tdr_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/tdr_support.dir/SourceManager.cpp.o"
  "CMakeFiles/tdr_support.dir/SourceManager.cpp.o.d"
  "CMakeFiles/tdr_support.dir/StringUtils.cpp.o"
  "CMakeFiles/tdr_support.dir/StringUtils.cpp.o.d"
  "libtdr_support.a"
  "libtdr_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdr_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
