file(REMOVE_RECURSE
  "libtdr_support.a"
)
