# Empty compiler generated dependencies file for tdr_support.
# This may be replaced when dependencies are built.
