# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("frontend")
subdirs("ast")
subdirs("sema")
subdirs("interp")
subdirs("dpst")
subdirs("race")
subdirs("sched")
subdirs("repair")
subdirs("runtime")
subdirs("pinterp")
subdirs("suite")
