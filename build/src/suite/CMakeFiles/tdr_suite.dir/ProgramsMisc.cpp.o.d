src/suite/CMakeFiles/tdr_suite.dir/ProgramsMisc.cpp.o: \
 /root/repo/src/suite/ProgramsMisc.cpp /usr/include/stdc-predef.h \
 /root/repo/src/suite/ProgramSources.h
