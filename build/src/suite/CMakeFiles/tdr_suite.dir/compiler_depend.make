# Empty compiler generated dependencies file for tdr_suite.
# This may be replaced when dependencies are built.
