src/suite/CMakeFiles/tdr_suite.dir/ProgramsJgf.cpp.o: \
 /root/repo/src/suite/ProgramsJgf.cpp /usr/include/stdc-predef.h \
 /root/repo/src/suite/ProgramSources.h
