file(REMOVE_RECURSE
  "libtdr_suite.a"
)
