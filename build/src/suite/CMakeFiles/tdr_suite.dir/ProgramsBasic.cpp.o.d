src/suite/CMakeFiles/tdr_suite.dir/ProgramsBasic.cpp.o: \
 /root/repo/src/suite/ProgramsBasic.cpp /usr/include/stdc-predef.h \
 /root/repo/src/suite/ProgramSources.h
