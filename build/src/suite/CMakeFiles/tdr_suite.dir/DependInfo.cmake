
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/suite/Benchmarks.cpp" "src/suite/CMakeFiles/tdr_suite.dir/Benchmarks.cpp.o" "gcc" "src/suite/CMakeFiles/tdr_suite.dir/Benchmarks.cpp.o.d"
  "/root/repo/src/suite/Experiment.cpp" "src/suite/CMakeFiles/tdr_suite.dir/Experiment.cpp.o" "gcc" "src/suite/CMakeFiles/tdr_suite.dir/Experiment.cpp.o.d"
  "/root/repo/src/suite/ProgramsBasic.cpp" "src/suite/CMakeFiles/tdr_suite.dir/ProgramsBasic.cpp.o" "gcc" "src/suite/CMakeFiles/tdr_suite.dir/ProgramsBasic.cpp.o.d"
  "/root/repo/src/suite/ProgramsJgf.cpp" "src/suite/CMakeFiles/tdr_suite.dir/ProgramsJgf.cpp.o" "gcc" "src/suite/CMakeFiles/tdr_suite.dir/ProgramsJgf.cpp.o.d"
  "/root/repo/src/suite/ProgramsMisc.cpp" "src/suite/CMakeFiles/tdr_suite.dir/ProgramsMisc.cpp.o" "gcc" "src/suite/CMakeFiles/tdr_suite.dir/ProgramsMisc.cpp.o.d"
  "/root/repo/src/suite/StudentCohort.cpp" "src/suite/CMakeFiles/tdr_suite.dir/StudentCohort.cpp.o" "gcc" "src/suite/CMakeFiles/tdr_suite.dir/StudentCohort.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/repair/CMakeFiles/tdr_repair.dir/DependInfo.cmake"
  "/root/repo/build/src/race/CMakeFiles/tdr_race.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/tdr_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/dpst/CMakeFiles/tdr_dpst.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/tdr_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/sema/CMakeFiles/tdr_sema.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/tdr_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/tdr_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tdr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
