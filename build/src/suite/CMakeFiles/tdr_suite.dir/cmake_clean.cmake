file(REMOVE_RECURSE
  "CMakeFiles/tdr_suite.dir/Benchmarks.cpp.o"
  "CMakeFiles/tdr_suite.dir/Benchmarks.cpp.o.d"
  "CMakeFiles/tdr_suite.dir/Experiment.cpp.o"
  "CMakeFiles/tdr_suite.dir/Experiment.cpp.o.d"
  "CMakeFiles/tdr_suite.dir/ProgramsBasic.cpp.o"
  "CMakeFiles/tdr_suite.dir/ProgramsBasic.cpp.o.d"
  "CMakeFiles/tdr_suite.dir/ProgramsJgf.cpp.o"
  "CMakeFiles/tdr_suite.dir/ProgramsJgf.cpp.o.d"
  "CMakeFiles/tdr_suite.dir/ProgramsMisc.cpp.o"
  "CMakeFiles/tdr_suite.dir/ProgramsMisc.cpp.o.d"
  "CMakeFiles/tdr_suite.dir/StudentCohort.cpp.o"
  "CMakeFiles/tdr_suite.dir/StudentCohort.cpp.o.d"
  "libtdr_suite.a"
  "libtdr_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdr_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
