# Empty dependencies file for tdr_repair.
# This may be replaced when dependencies are built.
