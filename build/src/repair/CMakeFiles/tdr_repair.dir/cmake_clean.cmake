file(REMOVE_RECURSE
  "CMakeFiles/tdr_repair.dir/DepGraph.cpp.o"
  "CMakeFiles/tdr_repair.dir/DepGraph.cpp.o.d"
  "CMakeFiles/tdr_repair.dir/FinishPlacement.cpp.o"
  "CMakeFiles/tdr_repair.dir/FinishPlacement.cpp.o.d"
  "CMakeFiles/tdr_repair.dir/MultiInput.cpp.o"
  "CMakeFiles/tdr_repair.dir/MultiInput.cpp.o.d"
  "CMakeFiles/tdr_repair.dir/RepairDriver.cpp.o"
  "CMakeFiles/tdr_repair.dir/RepairDriver.cpp.o.d"
  "CMakeFiles/tdr_repair.dir/StaticPlacer.cpp.o"
  "CMakeFiles/tdr_repair.dir/StaticPlacer.cpp.o.d"
  "libtdr_repair.a"
  "libtdr_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdr_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
