file(REMOVE_RECURSE
  "libtdr_repair.a"
)
