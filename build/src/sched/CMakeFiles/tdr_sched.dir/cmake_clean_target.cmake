file(REMOVE_RECURSE
  "libtdr_sched.a"
)
