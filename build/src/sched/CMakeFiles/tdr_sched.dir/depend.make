# Empty dependencies file for tdr_sched.
# This may be replaced when dependencies are built.
