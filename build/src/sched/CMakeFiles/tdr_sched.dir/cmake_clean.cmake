file(REMOVE_RECURSE
  "CMakeFiles/tdr_sched.dir/Schedule.cpp.o"
  "CMakeFiles/tdr_sched.dir/Schedule.cpp.o.d"
  "libtdr_sched.a"
  "libtdr_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdr_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
