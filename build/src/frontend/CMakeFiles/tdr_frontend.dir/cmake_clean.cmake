file(REMOVE_RECURSE
  "CMakeFiles/tdr_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/tdr_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/tdr_frontend.dir/Parser.cpp.o"
  "CMakeFiles/tdr_frontend.dir/Parser.cpp.o.d"
  "libtdr_frontend.a"
  "libtdr_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdr_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
