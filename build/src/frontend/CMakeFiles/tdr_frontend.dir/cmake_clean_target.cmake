file(REMOVE_RECURSE
  "libtdr_frontend.a"
)
