# Empty compiler generated dependencies file for tdr_frontend.
# This may be replaced when dependencies are built.
