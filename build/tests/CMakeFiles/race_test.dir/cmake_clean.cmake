file(REMOVE_RECURSE
  "CMakeFiles/race_test.dir/race_test.cpp.o"
  "CMakeFiles/race_test.dir/race_test.cpp.o.d"
  "race_test"
  "race_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/race_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
