# Empty compiler generated dependencies file for students_test.
# This may be replaced when dependencies are built.
