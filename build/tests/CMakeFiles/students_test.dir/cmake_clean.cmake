file(REMOVE_RECURSE
  "CMakeFiles/students_test.dir/students_test.cpp.o"
  "CMakeFiles/students_test.dir/students_test.cpp.o.d"
  "students_test"
  "students_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/students_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
