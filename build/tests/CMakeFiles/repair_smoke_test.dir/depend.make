# Empty dependencies file for repair_smoke_test.
# This may be replaced when dependencies are built.
