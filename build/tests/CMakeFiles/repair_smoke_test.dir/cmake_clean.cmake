file(REMOVE_RECURSE
  "CMakeFiles/repair_smoke_test.dir/repair_smoke_test.cpp.o"
  "CMakeFiles/repair_smoke_test.dir/repair_smoke_test.cpp.o.d"
  "repair_smoke_test"
  "repair_smoke_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repair_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
