# Empty compiler generated dependencies file for multi_input_test.
# This may be replaced when dependencies are built.
