file(REMOVE_RECURSE
  "CMakeFiles/multi_input_test.dir/multi_input_test.cpp.o"
  "CMakeFiles/multi_input_test.dir/multi_input_test.cpp.o.d"
  "multi_input_test"
  "multi_input_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_input_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
