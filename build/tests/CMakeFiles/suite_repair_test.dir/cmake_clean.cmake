file(REMOVE_RECURSE
  "CMakeFiles/suite_repair_test.dir/suite_repair_test.cpp.o"
  "CMakeFiles/suite_repair_test.dir/suite_repair_test.cpp.o.d"
  "suite_repair_test"
  "suite_repair_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suite_repair_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
