# Empty dependencies file for suite_repair_test.
# This may be replaced when dependencies are built.
