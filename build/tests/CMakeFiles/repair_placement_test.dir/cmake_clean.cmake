file(REMOVE_RECURSE
  "CMakeFiles/repair_placement_test.dir/repair_placement_test.cpp.o"
  "CMakeFiles/repair_placement_test.dir/repair_placement_test.cpp.o.d"
  "repair_placement_test"
  "repair_placement_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repair_placement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
