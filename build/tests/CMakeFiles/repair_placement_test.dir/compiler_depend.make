# Empty compiler generated dependencies file for repair_placement_test.
# This may be replaced when dependencies are built.
