file(REMOVE_RECURSE
  "CMakeFiles/pinterp_test.dir/pinterp_test.cpp.o"
  "CMakeFiles/pinterp_test.dir/pinterp_test.cpp.o.d"
  "pinterp_test"
  "pinterp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pinterp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
