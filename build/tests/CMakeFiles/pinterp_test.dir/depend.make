# Empty dependencies file for pinterp_test.
# This may be replaced when dependencies are built.
