
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dpst_test.cpp" "tests/CMakeFiles/dpst_test.dir/dpst_test.cpp.o" "gcc" "tests/CMakeFiles/dpst_test.dir/dpst_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/suite/CMakeFiles/tdr_suite.dir/DependInfo.cmake"
  "/root/repo/build/src/pinterp/CMakeFiles/tdr_pinterp.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/tdr_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/repair/CMakeFiles/tdr_repair.dir/DependInfo.cmake"
  "/root/repo/build/src/race/CMakeFiles/tdr_race.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/tdr_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/dpst/CMakeFiles/tdr_dpst.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/tdr_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/sema/CMakeFiles/tdr_sema.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/tdr_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/tdr_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tdr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
