file(REMOVE_RECURSE
  "CMakeFiles/dpst_test.dir/dpst_test.cpp.o"
  "CMakeFiles/dpst_test.dir/dpst_test.cpp.o.d"
  "dpst_test"
  "dpst_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpst_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
