# Empty compiler generated dependencies file for tdr_cli.
# This may be replaced when dependencies are built.
