file(REMOVE_RECURSE
  "CMakeFiles/tdr_cli.dir/tdr.cpp.o"
  "CMakeFiles/tdr_cli.dir/tdr.cpp.o.d"
  "tdr"
  "tdr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
