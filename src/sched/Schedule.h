//===- Schedule.h - Computation DAG and schedule simulation ------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parallelism measurement over an S-DPST. The paper defines maximal
/// parallelism as minimal critical path length (Definition 1: "the
/// execution time of a program on a computer with unbounded number of
/// processors"); its Figure 16 runs on 12 real cores. This module provides
/// both measurements deterministically:
///
///  * buildCompGraph turns an S-DPST into the computation DAG: step nodes
///    weighted by their work, continuation edges within a task, spawn edges
///    at asyncs, join edges at finish boundaries;
///  * criticalPathLength gives T-infinity (the paper's CPL);
///  * greedySchedule simulates a greedy (work-conserving) P-processor
///    schedule, giving the T_P this repository reports where the paper
///    reports 12-core wall-clock times (see DESIGN.md, substitutions).
///
//===----------------------------------------------------------------------===//

#ifndef TDR_SCHED_SCHEDULE_H
#define TDR_SCHED_SCHEDULE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tdr {

class Dpst;
class DpstNode;

/// A weighted DAG of steps. Node indices are topologically sorted (they
/// follow the sequential execution order).
struct CompGraph {
  struct Node {
    uint64_t Weight = 0;
    std::vector<uint32_t> Succs;
    uint32_t NumPreds = 0;
  };
  std::vector<Node> Nodes;

  uint64_t totalWork() const {
    uint64_t W = 0;
    for (const Node &N : Nodes)
      W += N.Weight;
    return W;
  }
  size_t numEdges() const {
    size_t E = 0;
    for (const Node &N : Nodes)
      E += N.Succs.size();
    return E;
  }
};

/// Builds the computation DAG of the whole execution.
CompGraph buildCompGraph(const Dpst &Tree);

/// Builds the computation DAG of the subtree rooted at \p N (including the
/// implicit join of all tasks spawned inside it).
CompGraph buildCompGraph(const Dpst &Tree, const DpstNode *N);

/// Longest weighted path: T-infinity, the paper's critical path length.
uint64_t criticalPathLength(const CompGraph &G);

/// Simulated completion time of a greedy P-processor list schedule (ties
/// broken by node index, so the result is deterministic).
uint64_t greedySchedule(const CompGraph &G, unsigned NumProcs);

/// The three standard measures in one call.
struct ParallelismStats {
  uint64_t T1 = 0;   ///< total work
  uint64_t Tinf = 0; ///< critical path length
  uint64_t TP = 0;   ///< greedy schedule length on NumProcs processors
  double parallelism() const {
    return Tinf ? static_cast<double>(T1) / static_cast<double>(Tinf) : 0.0;
  }
  double speedup() const {
    return TP ? static_cast<double>(T1) / static_cast<double>(TP) : 0.0;
  }
};

ParallelismStats analyzeDpst(const Dpst &Tree, unsigned NumProcs);

} // namespace tdr

#endif // TDR_SCHED_SCHEDULE_H
