//===- Schedule.cpp -------------------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "sched/Schedule.h"

#include "dpst/Dpst.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <queue>

using namespace tdr;

namespace {

/// Recursive DAG construction. Preds is the set of DAG nodes whose
/// completion enables the next step of the current sequential thread.
class GraphBuilder {
public:
  explicit GraphBuilder(CompGraph &G) : G(G) {}

  struct WalkResult {
    std::vector<uint32_t> Exits;   ///< preds for the continuation
    std::vector<uint32_t> Pending; ///< exits of spawned, unjoined tasks
  };

  WalkResult walk(const DpstNode *N, std::vector<uint32_t> Preds) {
    std::vector<uint32_t> Pending;
    for (const DpstNode *C : N->children()) {
      switch (C->kind()) {
      case DpstKind::Step: {
        uint32_t Id = addNode(C->weight());
        for (uint32_t P : Preds)
          addEdge(P, Id);
        Preds.assign(1, Id);
        break;
      }
      case DpstKind::Scope: {
        WalkResult R = walk(C, std::move(Preds));
        Preds = std::move(R.Exits);
        append(Pending, R.Pending);
        break;
      }
      case DpstKind::Async: {
        // The spawned task starts after the same preds; the parent thread
        // continues without waiting.
        WalkResult R = walk(C, Preds);
        append(Pending, R.Exits);
        append(Pending, R.Pending);
        break;
      }
      case DpstKind::Finish: {
        WalkResult R = walk(C, std::move(Preds));
        Preds = std::move(R.Exits);
        append(Preds, R.Pending);
        dedup(Preds);
        break;
      }
      case DpstKind::Root:
        assert(false && "root cannot be a child");
        break;
      }
    }
    return WalkResult{std::move(Preds), std::move(Pending)};
  }

private:
  uint32_t addNode(uint64_t Weight) {
    G.Nodes.push_back(CompGraph::Node{Weight, {}, 0});
    return static_cast<uint32_t>(G.Nodes.size() - 1);
  }

  void addEdge(uint32_t From, uint32_t To) {
    G.Nodes[From].Succs.push_back(To);
    ++G.Nodes[To].NumPreds;
  }

  static void append(std::vector<uint32_t> &To,
                     const std::vector<uint32_t> &From) {
    To.insert(To.end(), From.begin(), From.end());
  }

  static void dedup(std::vector<uint32_t> &V) {
    std::sort(V.begin(), V.end());
    V.erase(std::unique(V.begin(), V.end()), V.end());
  }

  CompGraph &G;
};

} // namespace

CompGraph tdr::buildCompGraph(const Dpst &Tree, const DpstNode *N) {
  (void)Tree;
  CompGraph G;
  GraphBuilder B(G);
  B.walk(N, {});
  return G;
}

CompGraph tdr::buildCompGraph(const Dpst &Tree) {
  return buildCompGraph(Tree, Tree.root());
}

uint64_t tdr::criticalPathLength(const CompGraph &G) {
  // Node indices are topologically ordered by construction.
  std::vector<uint64_t> Finish(G.Nodes.size(), 0);
  uint64_t Cpl = 0;
  for (size_t I = 0; I != G.Nodes.size(); ++I) {
    uint64_t F = Finish[I] + G.Nodes[I].Weight;
    Finish[I] = F;
    Cpl = std::max(Cpl, F);
    for (uint32_t S : G.Nodes[I].Succs)
      Finish[S] = std::max(Finish[S], F);
  }
  return Cpl;
}

uint64_t tdr::greedySchedule(const CompGraph &G, unsigned NumProcs) {
  assert(NumProcs > 0 && "need at least one processor");
  size_t N = G.Nodes.size();
  if (N == 0)
    return 0;

  std::vector<uint32_t> PredsLeft(N);
  // FIFO ready queue ordered by node index gives a deterministic greedy
  // list schedule.
  std::priority_queue<uint32_t, std::vector<uint32_t>,
                      std::greater<uint32_t>>
      Ready;
  for (size_t I = 0; I != N; ++I) {
    PredsLeft[I] = G.Nodes[I].NumPreds;
    if (PredsLeft[I] == 0)
      Ready.push(static_cast<uint32_t>(I));
  }

  // Min-heap of running tasks by completion time (node index tiebreak).
  using Running = std::pair<uint64_t, uint32_t>;
  std::priority_queue<Running, std::vector<Running>, std::greater<Running>>
      InFlight;

  uint64_t Now = 0;
  uint64_t Makespan = 0;
  size_t Scheduled = 0;
  while (Scheduled != N || !InFlight.empty()) {
    // Fill idle processors from the ready queue.
    while (!Ready.empty() && InFlight.size() < NumProcs) {
      uint32_t Id = Ready.top();
      Ready.pop();
      InFlight.push({Now + G.Nodes[Id].Weight, Id});
      ++Scheduled;
    }
    assert(!InFlight.empty() && "deadlock: graph is not a DAG");
    // Advance to the next completion.
    auto [T, Id] = InFlight.top();
    InFlight.pop();
    Now = T;
    Makespan = std::max(Makespan, Now);
    for (uint32_t S : G.Nodes[Id].Succs)
      if (--PredsLeft[S] == 0)
        Ready.push(S);
  }
  return Makespan;
}

ParallelismStats tdr::analyzeDpst(const Dpst &Tree, unsigned NumProcs) {
  CompGraph G = buildCompGraph(Tree);
  ParallelismStats S;
  S.T1 = G.totalWork();
  S.Tinf = criticalPathLength(G);
  S.TP = greedySchedule(G, NumProcs);
  return S;
}
