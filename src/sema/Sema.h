//===- Sema.h - HJ-mini semantic analysis ------------------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Name resolution and type checking for HJ-mini.
///
/// Beyond the usual checks, sema enforces the async capture discipline that
/// makes the race-detection memory model tractable (and mirrors Habanero
/// Java, where captured locals are final): an async body may *read*
/// enclosing locals (captured by value at spawn) but may only *write*
/// variables it declared itself, or globals and array elements — which are
/// the shared, race-checked locations.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_SEMA_SEMA_H
#define TDR_SEMA_SEMA_H

namespace tdr {

class AstContext;
class DiagnosticsEngine;
class Program;

/// Resolves names, checks types, and assigns storage slots. Returns true
/// when the program is well formed (no errors reported).
///
/// Sema is idempotent: the repair pipeline re-runs it after AST edits.
bool runSema(Program &P, AstContext &Ctx, DiagnosticsEngine &Diags);

} // namespace tdr

#endif // TDR_SEMA_SEMA_H
