//===- Sema.cpp -----------------------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "sema/Sema.h"

#include "ast/AstContext.h"
#include "ast/Transforms.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Diagnostics.h"
#include "support/StringUtils.h"

#include <unordered_map>
#include <vector>

using namespace tdr;

namespace {

/// Builtin signature table entry.
struct BuiltinInfo {
  Builtin Kind;
  const char *Name;
};

const BuiltinInfo Builtins[] = {
    {Builtin::Print, "print"},       {Builtin::Len, "len"},
    {Builtin::Sqrt, "sqrt"},         {Builtin::Abs, "abs"},
    {Builtin::Min, "min"},           {Builtin::Max, "max"},
    {Builtin::Pow, "pow"},           {Builtin::Sin, "sin"},
    {Builtin::Cos, "cos"},           {Builtin::Exp, "exp"},
    {Builtin::Log, "log"},           {Builtin::Floor, "floor"},
    {Builtin::ToInt, "toInt"},       {Builtin::ToDouble, "toDouble"},
    {Builtin::RandInt, "randInt"},   {Builtin::RandSeed, "randSeed"},
    {Builtin::Arg, "arg"},           {Builtin::Force, "force"},
};

Builtin lookupBuiltin(const std::string &Name) {
  for (const BuiltinInfo &B : Builtins)
    if (Name == B.Name)
      return B.Kind;
  return Builtin::None;
}

/// Lexically scoped symbol table for variables.
class ScopedSymbols {
public:
  void push() { Scopes.emplace_back(); }
  void pop() { Scopes.pop_back(); }

  /// Declares in the innermost scope; returns false on redeclaration
  /// within the same scope (shadowing outer scopes is allowed).
  bool declare(VarDecl *D) {
    auto &Inner = Scopes.back();
    auto [It, Inserted] = Inner.try_emplace(D->name(), D);
    (void)It;
    return Inserted;
  }

  VarDecl *lookup(const std::string &Name) const {
    for (auto It = Scopes.rbegin(), E = Scopes.rend(); It != E; ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return Found->second;
    }
    return nullptr;
  }

private:
  std::vector<std::unordered_map<std::string, VarDecl *>> Scopes;
};

class Sema {
public:
  Sema(Program &P, AstContext &Ctx, DiagnosticsEngine &Diags)
      : P(P), Ctx(Ctx), Diags(Diags) {}

  bool run();

private:
  // Statement and expression checking.
  void checkFunc(FuncDecl *F);
  void checkStmt(Stmt *S);
  void checkBlock(BlockStmt *B);
  const Type *checkExpr(Expr *E);
  const Type *checkCall(CallExpr *C);
  const Type *checkBuiltinCall(CallExpr *C, Builtin B);
  void checkAssign(AssignStmt *A);

  void error(SourceLoc Loc, std::string Msg) {
    Diags.error(Loc, std::move(Msg));
  }

  /// Declares a variable, diagnosing same-scope redeclaration, and records
  /// the async depth at which it was declared.
  void declareVar(VarDecl *D) {
    if (!Symbols.declare(D))
      error(D->loc(), strFormat("redeclaration of '%s'", D->name().c_str()));
    DeclAsyncDepth[D] = AsyncDepth;
  }

  Program &P;
  AstContext &Ctx;
  DiagnosticsEngine &Diags;

  ScopedSymbols Symbols;
  std::unordered_map<std::string, FuncDecl *> Funcs;
  std::unordered_map<const VarDecl *, unsigned> DeclAsyncDepth;

  FuncDecl *CurFunc = nullptr;
  uint32_t NextLocalSlot = 0;
  unsigned AsyncDepth = 0;
  unsigned IsolatedDepth = 0;
};

bool Sema::run() {
  unsigned ErrorsBefore = Diags.numErrors();

  // Register functions first so calls resolve regardless of order.
  for (FuncDecl *F : P.funcs()) {
    if (lookupBuiltin(F->name()) != Builtin::None)
      error(F->loc(), strFormat("function '%s' shadows a builtin",
                                F->name().c_str()));
    auto [It, Inserted] = Funcs.try_emplace(F->name(), F);
    (void)It;
    if (!Inserted)
      error(F->loc(),
            strFormat("redefinition of function '%s'", F->name().c_str()));
  }

  // Globals: assign slots, check initializers. Global initializers run in
  // order at program start; they may reference earlier globals but not
  // call user functions.
  Symbols.push();
  uint32_t GlobalSlot = 0;
  for (VarDecl *G : P.globals()) {
    if (G->init()) {
      const Type *T = checkExpr(G->init());
      if (T && T != G->type())
        error(G->loc(), strFormat("global '%s' declared %s but initialized "
                                  "with %s",
                                  G->name().c_str(), G->type()->str().c_str(),
                                  T->str().c_str()));
    }
    G->setSlot(GlobalSlot++);
    declareVar(G);
  }

  for (FuncDecl *F : P.funcs())
    checkFunc(F);

  Symbols.pop();

  if (!P.mainFunc())
    error(SourceLoc(0u), "program has no 'main' function");
  else if (!P.mainFunc()->params().empty())
    error(P.mainFunc()->loc(), "'main' must take no parameters");

  return Diags.numErrors() == ErrorsBefore;
}

void Sema::checkFunc(FuncDecl *F) {
  CurFunc = F;
  NextLocalSlot = 0;
  AsyncDepth = 0;
  Symbols.push();
  for (VarDecl *Param : F->params()) {
    Param->setSlot(NextLocalSlot++);
    declareVar(Param);
  }
  checkBlock(F->body());
  Symbols.pop();
  F->setNumFrameSlots(NextLocalSlot);
  CurFunc = nullptr;
}

void Sema::checkBlock(BlockStmt *B) {
  Symbols.push();
  for (Stmt *S : B->stmts())
    checkStmt(S);
  Symbols.pop();
}

void Sema::checkStmt(Stmt *S) {
  switch (S->kind()) {
  case Stmt::Kind::Block:
    checkBlock(cast<BlockStmt>(S));
    return;
  case Stmt::Kind::VarDecl: {
    auto *V = cast<VarDeclStmt>(S);
    if (V->init()) {
      const Type *T = checkExpr(V->init());
      if (T && T != V->decl()->type())
        error(S->loc(),
              strFormat("variable '%s' declared %s but initialized with %s",
                        V->decl()->name().c_str(),
                        V->decl()->type()->str().c_str(), T->str().c_str()));
    }
    V->decl()->setSlot(NextLocalSlot++);
    declareVar(V->decl());
    return;
  }
  case Stmt::Kind::Assign:
    checkAssign(cast<AssignStmt>(S));
    return;
  case Stmt::Kind::Expr: {
    Expr *E = cast<ExprStmt>(S)->expr();
    if (!isa<CallExpr>(E))
      error(S->loc(), "expression statement must be a call");
    checkExpr(E);
    return;
  }
  case Stmt::Kind::If: {
    auto *I = cast<IfStmt>(S);
    const Type *T = checkExpr(I->cond());
    if (T && !T->isBool())
      error(I->cond()->loc(), "if condition must be bool");
    checkStmt(I->thenStmt());
    if (I->elseStmt())
      checkStmt(I->elseStmt());
    return;
  }
  case Stmt::Kind::While: {
    auto *W = cast<WhileStmt>(S);
    const Type *T = checkExpr(W->cond());
    if (T && !T->isBool())
      error(W->cond()->loc(), "while condition must be bool");
    checkStmt(W->body());
    return;
  }
  case Stmt::Kind::For: {
    auto *F = cast<ForStmt>(S);
    // The for header introduces a scope for its induction variable.
    Symbols.push();
    if (F->init())
      checkStmt(F->init());
    if (F->cond()) {
      const Type *T = checkExpr(F->cond());
      if (T && !T->isBool())
        error(F->cond()->loc(), "for condition must be bool");
    }
    if (F->step())
      checkStmt(F->step());
    checkStmt(F->body());
    Symbols.pop();
    return;
  }
  case Stmt::Kind::Return: {
    auto *R = cast<ReturnStmt>(S);
    if (AsyncDepth != 0) {
      error(S->loc(), "return is not allowed inside an async");
      return;
    }
    if (IsolatedDepth != 0) {
      error(S->loc(), "return is not allowed inside an isolated section");
      return;
    }
    const Type *Expected = CurFunc->returnType();
    if (R->value()) {
      const Type *T = checkExpr(R->value());
      if (Expected->isVoid())
        error(S->loc(), "void function must not return a value");
      else if (T && T != Expected)
        error(S->loc(), strFormat("returning %s from a function returning %s",
                                  T->str().c_str(),
                                  Expected->str().c_str()));
    } else if (!Expected->isVoid()) {
      error(S->loc(), "non-void function must return a value");
    }
    return;
  }
  case Stmt::Kind::Async: {
    if (IsolatedDepth != 0)
      error(S->loc(), "cannot spawn a task inside an isolated section");
    ++AsyncDepth;
    checkStmt(cast<AsyncStmt>(S)->body());
    --AsyncDepth;
    return;
  }
  case Stmt::Kind::Finish:
    if (IsolatedDepth != 0)
      error(S->loc(), "'finish' is not allowed inside an isolated section");
    checkStmt(cast<FinishStmt>(S)->body());
    return;
  case Stmt::Kind::Future: {
    auto *F = cast<FutureStmt>(S);
    if (IsolatedDepth != 0)
      error(S->loc(), "cannot spawn a future inside an isolated section");
    // The body expression runs in the spawned task.
    ++AsyncDepth;
    const Type *T = checkExpr(F->init());
    --AsyncDepth;
    if (T && !T->isScalar()) {
      error(S->loc(), strFormat("future value must be a scalar type, got %s",
                                T->str().c_str()));
      T = nullptr;
    }
    // The handle type future<T> is non-denotable: handles cannot be
    // redeclared, passed, stored, or returned; force(f) is the only use.
    const Type *HandleTy = Ctx.futureType(T ? T : Ctx.intType());
    VarDecl *D =
        Ctx.createVarDecl(VarDecl::Kind::Local, F->name(), HandleTy, S->loc());
    D->setSlot(NextLocalSlot++);
    declareVar(D);
    F->setDecl(D);
    return;
  }
  case Stmt::Kind::Isolated: {
    if (IsolatedDepth != 0)
      error(S->loc(), "isolated sections do not nest");
    ++IsolatedDepth;
    checkStmt(cast<IsolatedStmt>(S)->body());
    --IsolatedDepth;
    return;
  }
  case Stmt::Kind::Forasync:
    // lowerForasync desugars every forasync before checking; reaching one
    // here means a transform created it post-sema, which is unsupported.
    error(S->loc(), "internal: forasync statement survived lowering");
    return;
  }
}

void Sema::checkAssign(AssignStmt *A) {
  Expr *Target = A->target();
  const Type *TargetTy = nullptr;

  if (auto *Ref = dyn_cast<VarRefExpr>(Target)) {
    TargetTy = checkExpr(Ref);
    if (TargetTy && TargetTy->isFuture()) {
      error(A->loc(),
            strFormat("cannot assign to '%s': future handles are "
                      "single-assignment",
                      Ref->name().c_str()));
      checkExpr(A->value());
      return;
    }
    VarDecl *D = Ref->decl();
    if (D && !D->isGlobal()) {
      auto It = DeclAsyncDepth.find(D);
      if (It != DeclAsyncDepth.end() && It->second < AsyncDepth)
        error(A->loc(),
              strFormat("cannot assign to '%s': locals captured by an async "
                        "are read-only (assign to a global or an array "
                        "element instead)",
                        D->name().c_str()));
    }
  } else if (isa<IndexExpr>(Target)) {
    TargetTy = checkExpr(Target);
  } else {
    error(A->loc(), "assignment target must be a variable or array element");
    checkExpr(A->value());
    return;
  }

  const Type *ValueTy = checkExpr(A->value());
  if (!TargetTy || !ValueTy)
    return;
  if (TargetTy != ValueTy) {
    error(A->loc(), strFormat("assigning %s to a target of type %s",
                              ValueTy->str().c_str(),
                              TargetTy->str().c_str()));
    return;
  }
  if (A->isCompound()) {
    BinaryOp Op = A->compoundOp();
    bool IntOnly = Op == BinaryOp::Mod;
    if (IntOnly && !TargetTy->isInt())
      error(A->loc(), "'%=' requires int operands");
    else if (!TargetTy->isNumeric())
      error(A->loc(), "compound assignment requires numeric operands");
  }
}

const Type *Sema::checkExpr(Expr *E) {
  const Type *Result = nullptr;
  switch (E->kind()) {
  case Expr::Kind::IntLit:
    Result = Ctx.intType();
    break;
  case Expr::Kind::DoubleLit:
    Result = Ctx.doubleType();
    break;
  case Expr::Kind::BoolLit:
    Result = Ctx.boolType();
    break;
  case Expr::Kind::VarRef: {
    auto *Ref = cast<VarRefExpr>(E);
    VarDecl *D = Symbols.lookup(Ref->name());
    if (!D) {
      error(E->loc(),
            strFormat("use of undeclared variable '%s'", Ref->name().c_str()));
      return nullptr;
    }
    Ref->setDecl(D);
    Result = D->type();
    break;
  }
  case Expr::Kind::Index: {
    auto *I = cast<IndexExpr>(E);
    const Type *BaseTy = checkExpr(I->base());
    const Type *IdxTy = checkExpr(I->index());
    if (IdxTy && !IdxTy->isInt())
      error(I->index()->loc(), "array index must be int");
    if (!BaseTy)
      return nullptr;
    if (!BaseTy->isArray()) {
      error(E->loc(), strFormat("subscripted value has non-array type %s",
                                BaseTy->str().c_str()));
      return nullptr;
    }
    Result = BaseTy->elem();
    break;
  }
  case Expr::Kind::Call:
    Result = checkCall(cast<CallExpr>(E));
    break;
  case Expr::Kind::Unary: {
    auto *U = cast<UnaryExpr>(E);
    const Type *T = checkExpr(U->operand());
    if (!T)
      return nullptr;
    switch (U->op()) {
    case UnaryOp::Neg:
      if (!T->isNumeric())
        error(E->loc(), "unary '-' requires a numeric operand");
      break;
    case UnaryOp::Not:
      if (!T->isBool())
        error(E->loc(), "'!' requires a bool operand");
      break;
    case UnaryOp::BNot:
      if (!T->isInt())
        error(E->loc(), "'~' requires an int operand");
      break;
    }
    Result = T;
    break;
  }
  case Expr::Kind::Binary: {
    auto *B = cast<BinaryExpr>(E);
    const Type *L = checkExpr(B->lhs());
    const Type *R = checkExpr(B->rhs());
    if (!L || !R)
      return nullptr;
    if (L != R) {
      error(E->loc(),
            strFormat("operands of '%s' have mismatched types %s and %s "
                      "(HJ-mini has no implicit conversions; use toInt or "
                      "toDouble)",
                      binaryOpSpelling(B->op()), L->str().c_str(),
                      R->str().c_str()));
      return nullptr;
    }
    switch (B->op()) {
    case BinaryOp::Add:
    case BinaryOp::Sub:
    case BinaryOp::Mul:
    case BinaryOp::Div:
      if (!L->isNumeric())
        error(E->loc(), strFormat("'%s' requires numeric operands",
                                  binaryOpSpelling(B->op())));
      Result = L;
      break;
    case BinaryOp::Mod:
    case BinaryOp::BAnd:
    case BinaryOp::BOr:
    case BinaryOp::BXor:
    case BinaryOp::Shl:
    case BinaryOp::Shr:
      if (!L->isInt())
        error(E->loc(), strFormat("'%s' requires int operands",
                                  binaryOpSpelling(B->op())));
      Result = Ctx.intType();
      break;
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
      if (!L->isNumeric())
        error(E->loc(), strFormat("'%s' requires numeric operands",
                                  binaryOpSpelling(B->op())));
      Result = Ctx.boolType();
      break;
    case BinaryOp::Eq:
    case BinaryOp::Ne:
      if (!L->isScalar())
        error(E->loc(), "equality comparison requires scalar operands");
      Result = Ctx.boolType();
      break;
    case BinaryOp::LAnd:
    case BinaryOp::LOr:
      if (!L->isBool())
        error(E->loc(), strFormat("'%s' requires bool operands",
                                  binaryOpSpelling(B->op())));
      Result = Ctx.boolType();
      break;
    }
    break;
  }
  case Expr::Kind::NewArray: {
    auto *N = cast<NewArrayExpr>(E);
    for (Expr *D : N->dims()) {
      const Type *T = checkExpr(D);
      if (T && !T->isInt())
        error(D->loc(), "array dimension must be int");
    }
    const Type *T = N->elemType();
    for (size_t I = 0; I != N->dims().size(); ++I)
      T = Ctx.arrayType(T);
    Result = T;
    break;
  }
  }
  E->setType(Result);
  return Result;
}

const Type *Sema::checkCall(CallExpr *C) {
  Builtin B = lookupBuiltin(C->calleeName());
  if (B != Builtin::None) {
    C->setBuiltin(B);
    return checkBuiltinCall(C, B);
  }

  auto It = Funcs.find(C->calleeName());
  if (It == Funcs.end()) {
    error(C->loc(), strFormat("call to undeclared function '%s'",
                              C->calleeName().c_str()));
    for (Expr *A : C->args())
      checkExpr(A);
    return nullptr;
  }
  FuncDecl *F = It->second;
  C->setCallee(F);
  if (C->args().size() != F->params().size()) {
    error(C->loc(),
          strFormat("'%s' expects %zu arguments, got %zu",
                    F->name().c_str(), F->params().size(), C->args().size()));
  }
  size_t N = std::min(C->args().size(), F->params().size());
  for (size_t I = 0; I != C->args().size(); ++I) {
    const Type *T = checkExpr(C->args()[I]);
    if (I < N && T && T != F->params()[I]->type())
      error(C->args()[I]->loc(),
            strFormat("argument %zu of '%s' expects %s, got %s", I + 1,
                      F->name().c_str(),
                      F->params()[I]->type()->str().c_str(),
                      T->str().c_str()));
  }
  return F->returnType();
}

const Type *Sema::checkBuiltinCall(CallExpr *C, Builtin B) {
  std::vector<const Type *> ArgTys;
  for (Expr *A : C->args())
    ArgTys.push_back(checkExpr(A));

  auto RequireArgs = [&](size_t N) {
    if (C->args().size() == N)
      return true;
    error(C->loc(), strFormat("'%s' expects %zu argument(s), got %zu",
                              C->calleeName().c_str(), N, C->args().size()));
    return false;
  };
  auto IsKnown = [&](size_t I) { return I < ArgTys.size() && ArgTys[I]; };

  switch (B) {
  case Builtin::None:
    break;
  case Builtin::Print:
    if (RequireArgs(1) && IsKnown(0) && !ArgTys[0]->isScalar())
      error(C->loc(), "print expects a scalar value");
    return Ctx.voidType();
  case Builtin::Len:
    if (RequireArgs(1) && IsKnown(0) && !ArgTys[0]->isArray())
      error(C->loc(), "len expects an array");
    return Ctx.intType();
  case Builtin::Sqrt:
  case Builtin::Sin:
  case Builtin::Cos:
  case Builtin::Exp:
  case Builtin::Log:
  case Builtin::Floor:
    if (RequireArgs(1) && IsKnown(0) && !ArgTys[0]->isDouble())
      error(C->loc(), strFormat("'%s' expects a double",
                                C->calleeName().c_str()));
    return Ctx.doubleType();
  case Builtin::Abs:
    if (!RequireArgs(1) || !IsKnown(0))
      return nullptr;
    if (!ArgTys[0]->isNumeric()) {
      error(C->loc(), "abs expects a numeric value");
      return nullptr;
    }
    return ArgTys[0];
  case Builtin::Min:
  case Builtin::Max:
    if (!RequireArgs(2) || !IsKnown(0) || !IsKnown(1))
      return nullptr;
    if (ArgTys[0] != ArgTys[1] || !ArgTys[0]->isNumeric()) {
      error(C->loc(), strFormat("'%s' expects two numeric values of the "
                                "same type",
                                C->calleeName().c_str()));
      return nullptr;
    }
    return ArgTys[0];
  case Builtin::Pow:
    if (RequireArgs(2)) {
      if (IsKnown(0) && !ArgTys[0]->isDouble())
        error(C->loc(), "pow expects double arguments");
      if (IsKnown(1) && !ArgTys[1]->isDouble())
        error(C->loc(), "pow expects double arguments");
    }
    return Ctx.doubleType();
  case Builtin::ToInt:
    if (RequireArgs(1) && IsKnown(0) && !ArgTys[0]->isDouble())
      error(C->loc(), "toInt expects a double");
    return Ctx.intType();
  case Builtin::ToDouble:
    if (RequireArgs(1) && IsKnown(0) && !ArgTys[0]->isInt())
      error(C->loc(), "toDouble expects an int");
    return Ctx.doubleType();
  case Builtin::RandInt:
    if (RequireArgs(1) && IsKnown(0) && !ArgTys[0]->isInt())
      error(C->loc(), "randInt expects an int bound");
    return Ctx.intType();
  case Builtin::RandSeed:
    if (RequireArgs(1) && IsKnown(0) && !ArgTys[0]->isInt())
      error(C->loc(), "randSeed expects an int seed");
    return Ctx.voidType();
  case Builtin::Arg:
    if (RequireArgs(1) && IsKnown(0) && !ArgTys[0]->isInt())
      error(C->loc(), "arg expects an int index");
    return Ctx.intType();
  case Builtin::Force:
    if (IsolatedDepth != 0)
      error(C->loc(), "force is not allowed inside an isolated section");
    if (!RequireArgs(1) || !IsKnown(0))
      return nullptr;
    if (!ArgTys[0]->isFuture()) {
      error(C->loc(), "force expects a future handle");
      return nullptr;
    }
    return ArgTys[0]->elem();
  }
  return nullptr;
}

} // namespace

bool tdr::runSema(Program &P, AstContext &Ctx, DiagnosticsEngine &Diags) {
  obs::ScopedSpan Span(obs::phase::Sema);
  obs::counter("sema.runs").inc();
  // Desugar forasync loops into the chunked async/finish core before any
  // name binding, so downstream layers never see a ForasyncStmt.
  if (unsigned N = lowerForasync(P, Ctx))
    obs::counter("sema.forasync_lowered").inc(N);
  return Sema(P, Ctx, Diags).run();
}
