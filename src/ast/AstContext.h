//===- AstContext.h - AST node ownership ------------------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Arena ownership for AST nodes and interning for types. All nodes created
/// through an AstContext stay alive as long as the context does, so the
/// repair pipeline can freely hold raw Stmt pointers across AST edits.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_AST_ASTCONTEXT_H
#define TDR_AST_ASTCONTEXT_H

#include "ast/Ast.h"

#include <deque>
#include <memory>

namespace tdr {

/// Owns every AST node of one program and interns types.
class AstContext {
public:
  AstContext();
  ~AstContext();
  AstContext(const AstContext &) = delete;
  AstContext &operator=(const AstContext &) = delete;

  //===--------------------------------------------------------------------==//
  // Types (interned; pointer equality is type equality)
  //===--------------------------------------------------------------------==//

  const Type *intType() const { return IntTy.get(); }
  const Type *doubleType() const { return DoubleTy.get(); }
  const Type *boolType() const { return BoolTy.get(); }
  const Type *voidType() const { return VoidTy.get(); }
  const Type *arrayType(const Type *Elem);
  const Type *futureType(const Type *Elem);

  //===--------------------------------------------------------------------==//
  // Node creation
  //===--------------------------------------------------------------------==//

  template <typename T, typename... ArgTs> T *createExpr(ArgTs &&...Args) {
    auto Node = std::make_unique<T>(std::forward<ArgTs>(Args)...);
    T *Raw = Node.get();
    Exprs.push_back(ExprPtr(Node.release(), &destroyExpr<T>));
    return Raw;
  }

  template <typename T, typename... ArgTs> T *createStmt(ArgTs &&...Args) {
    auto Node = std::make_unique<T>(std::forward<ArgTs>(Args)...);
    T *Raw = Node.get();
    Raw->Id = NextStmtId++;
    Stmts.push_back(StmtPtr(Node.release(), &destroyStmt<T>));
    return Raw;
  }

  VarDecl *createVarDecl(VarDecl::Kind K, std::string Name, const Type *Ty,
                         SourceLoc Loc) {
    VarDecls.push_back(
        std::make_unique<VarDecl>(K, std::move(Name), Ty, Loc));
    return VarDecls.back().get();
  }

  FuncDecl *createFuncDecl(std::string Name, std::vector<VarDecl *> Params,
                           const Type *ReturnType, BlockStmt *Body,
                           SourceLoc Loc) {
    FuncDecls.push_back(std::make_unique<FuncDecl>(
        std::move(Name), std::move(Params), ReturnType, Body, Loc));
    return FuncDecls.back().get();
  }

  Program *createProgram() {
    Programs.push_back(std::make_unique<Program>());
    return Programs.back().get();
  }

  /// Number of statements created so far (ids are 1..numStmts()).
  uint32_t numStmts() const { return NextStmtId - 1; }

private:
  // Exprs and Stmts are non-polymorphic bases (no virtual destructor by
  // design, per the no-RTTI style), so each node remembers its own deleter.
  using ExprPtr = std::unique_ptr<Expr, void (*)(Expr *)>;
  using StmtPtr = std::unique_ptr<Stmt, void (*)(Stmt *)>;

  template <typename T> static void destroyExpr(Expr *E) {
    delete static_cast<T *>(E);
  }
  template <typename T> static void destroyStmt(Stmt *S) {
    delete static_cast<T *>(S);
  }

  std::unique_ptr<Type> IntTy, DoubleTy, BoolTy, VoidTy;
  std::deque<std::unique_ptr<Type>> ArrayTys;
  std::deque<std::unique_ptr<Type>> FutureTys;
  std::deque<ExprPtr> Exprs;
  std::deque<StmtPtr> Stmts;
  std::deque<std::unique_ptr<VarDecl>> VarDecls;
  std::deque<std::unique_ptr<FuncDecl>> FuncDecls;
  std::deque<std::unique_ptr<Program>> Programs;
  uint32_t NextStmtId = 1;
};

} // namespace tdr

#endif // TDR_AST_ASTCONTEXT_H
