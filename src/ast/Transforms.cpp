//===- Transforms.cpp -----------------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "ast/Transforms.h"

#include "ast/AstContext.h"

#include <cassert>
#include <functional>

using namespace tdr;

namespace {

/// Rewrites every statement slot of a program, bottom-up and in place.
/// The Rewrite callback receives each statement after its children have
/// been processed and returns the statement to put in its slot.
class StmtRewriter {
public:
  explicit StmtRewriter(std::function<Stmt *(Stmt *)> Rewrite)
      : Rewrite(std::move(Rewrite)) {}

  void run(Program &P) {
    for (FuncDecl *F : P.funcs()) {
      Stmt *NewBody = rewriteTree(F->body());
      assert(NewBody == F->body() &&
             "rewrites must not replace a function body block");
      (void)NewBody;
    }
  }

  Stmt *rewriteTree(Stmt *S) {
    switch (S->kind()) {
    case Stmt::Kind::Block: {
      auto *B = cast<BlockStmt>(S);
      for (Stmt *&Child : B->stmts())
        Child = rewriteTree(Child);
      break;
    }
    case Stmt::Kind::If: {
      auto *I = cast<IfStmt>(S);
      I->setThenStmt(rewriteTree(I->thenStmt()));
      if (I->elseStmt())
        I->setElseStmt(rewriteTree(I->elseStmt()));
      break;
    }
    case Stmt::Kind::While: {
      auto *W = cast<WhileStmt>(S);
      W->setBody(rewriteTree(W->body()));
      break;
    }
    case Stmt::Kind::For: {
      auto *F = cast<ForStmt>(S);
      F->setBody(rewriteTree(F->body()));
      break;
    }
    case Stmt::Kind::Async: {
      auto *A = cast<AsyncStmt>(S);
      A->setBody(rewriteTree(A->body()));
      break;
    }
    case Stmt::Kind::Finish: {
      auto *F = cast<FinishStmt>(S);
      F->setBody(rewriteTree(F->body()));
      break;
    }
    case Stmt::Kind::Isolated: {
      auto *I = cast<IsolatedStmt>(S);
      I->setBody(rewriteTree(I->body()));
      break;
    }
    case Stmt::Kind::Forasync: {
      auto *F = cast<ForasyncStmt>(S);
      F->setBody(rewriteTree(F->body()));
      break;
    }
    case Stmt::Kind::VarDecl:
    case Stmt::Kind::Assign:
    case Stmt::Kind::Expr:
    case Stmt::Kind::Return:
    case Stmt::Kind::Future:
      break;
    }
    return Rewrite(S);
  }

private:
  std::function<Stmt *(Stmt *)> Rewrite;
};

} // namespace

unsigned tdr::stripFinishes(Program &P) {
  unsigned Removed = 0;
  StmtRewriter R([&](Stmt *S) -> Stmt * {
    if (auto *F = dyn_cast<FinishStmt>(S)) {
      ++Removed;
      return F->body();
    }
    return S;
  });
  R.run(P);
  return Removed;
}

unsigned tdr::elideParallelism(Program &P) {
  unsigned Removed = 0;
  StmtRewriter R([&](Stmt *S) -> Stmt * {
    if (auto *F = dyn_cast<FinishStmt>(S)) {
      ++Removed;
      return F->body();
    }
    if (auto *A = dyn_cast<AsyncStmt>(S)) {
      ++Removed;
      return A->body();
    }
    // Mutual exclusion is a no-op once all parallelism is gone. Futures
    // stay: the sequential interpreter already evaluates a future's body
    // at its declaration, which *is* the serial elision semantics.
    if (auto *I = dyn_cast<IsolatedStmt>(S)) {
      ++Removed;
      return I->body();
    }
    return S;
  });
  R.run(P);
  return Removed;
}

FinishStmt *tdr::wrapInFinish(AstContext &Ctx, BlockStmt *B, size_t Begin,
                              size_t End, FinishEditSink *Edits) {
  assert(Begin <= End && End < B->stmts().size() &&
         "finish range out of bounds");
  Stmt *First = B->stmts()[Begin];
  Stmt *Last = B->stmts()[End];
  Stmt *Body;
  BlockStmt *NewBody = nullptr;
  SourceLoc Loc = First->loc();
  if (Begin == End) {
    Body = First;
  } else {
    std::vector<Stmt *> Inner(B->stmts().begin() + Begin,
                              B->stmts().begin() + End + 1);
    NewBody = Ctx.createStmt<BlockStmt>(std::move(Inner), Loc);
    Body = NewBody;
  }
  auto *Finish = Ctx.createStmt<FinishStmt>(Body, Loc);
  Finish->setSynthesized(true);
  auto &Stmts = B->stmts();
  Stmts.erase(Stmts.begin() + Begin, Stmts.begin() + End + 1);
  Stmts.insert(Stmts.begin() + Begin, Finish);
  if (Edits)
    Edits->noteBlockWrap(Finish, B, First, Last, NewBody);
  return Finish;
}

IsolatedStmt *tdr::wrapInIsolated(AstContext &Ctx, BlockStmt *B,
                                  size_t Index) {
  assert(Index < B->stmts().size() && "isolated index out of bounds");
  Stmt *Body = B->stmts()[Index];
  auto *Iso = Ctx.createStmt<IsolatedStmt>(Body, Body->loc());
  Iso->setSynthesized(true);
  B->stmts()[Index] = Iso;
  return Iso;
}

namespace {

/// Builds the desugared form of one forasync loop. \p Seq uniquifies the
/// hoisted helper names across multiple loops in one program.
Stmt *lowerOneForasync(AstContext &Ctx, ForasyncStmt *F, unsigned Seq) {
  SourceLoc Loc = F->loc();
  std::string P = "__fa" + std::to_string(Seq) + "_";
  auto Ref = [&](const std::string &Name) {
    return Ctx.createExpr<VarRefExpr>(Name, Loc);
  };
  auto DeclInt = [&](const std::string &Name, Expr *Init) -> Stmt * {
    VarDecl *D =
        Ctx.createVarDecl(VarDecl::Kind::Local, Name, Ctx.intType(), Loc);
    return Ctx.createStmt<VarDeclStmt>(D, Init, Loc);
  };
  auto Call2 = [&](const char *Name, Expr *A, Expr *B) {
    return Ctx.createExpr<CallExpr>(Name, std::vector<Expr *>{A, B}, Loc);
  };

  // var __faN_lo: int = LO;  var __faN_hi: int = HI;
  // var __faN_ch: int = max(CHUNK, 1);
  Stmt *LoDecl = DeclInt(P + "lo", F->lo());
  Stmt *HiDecl = DeclInt(P + "hi", F->hi());
  Stmt *ChDecl = DeclInt(
      P + "ch", Call2("max", F->chunk(), Ctx.createExpr<IntLitExpr>(1, Loc)));

  // Chunk body:  var __faN_end: int = min(__faN_c + __faN_ch, __faN_hi);
  //              for (var VAR: int = __faN_c; VAR < __faN_end; VAR = VAR+1)
  //                BODY
  Stmt *EndDecl = DeclInt(
      P + "end",
      Call2("min",
            Ctx.createExpr<BinaryExpr>(BinaryOp::Add, Ref(P + "c"),
                                       Ref(P + "ch"), Loc),
            Ref(P + "hi")));
  const std::string &V = F->varName();
  Stmt *InnerInit = DeclInt(V, Ref(P + "c"));
  Expr *InnerCond =
      Ctx.createExpr<BinaryExpr>(BinaryOp::Lt, Ref(V), Ref(P + "end"), Loc);
  Stmt *InnerStep = Ctx.createStmt<AssignStmt>(
      Ref(V),
      Ctx.createExpr<BinaryExpr>(BinaryOp::Add, Ref(V),
                                 Ctx.createExpr<IntLitExpr>(1, Loc), Loc),
      Loc);
  Stmt *InnerFor =
      Ctx.createStmt<ForStmt>(InnerInit, InnerCond, InnerStep, F->body(), Loc);
  auto *AsyncBody = Ctx.createStmt<BlockStmt>(
      std::vector<Stmt *>{EndDecl, InnerFor}, Loc);
  Stmt *Async = Ctx.createStmt<AsyncStmt>(AsyncBody, Loc);

  // for (var __faN_c: int = __faN_lo; __faN_c < __faN_hi;
  //      __faN_c = __faN_c + __faN_ch) async { ... }
  Stmt *OuterInit = DeclInt(P + "c", Ref(P + "lo"));
  Expr *OuterCond = Ctx.createExpr<BinaryExpr>(BinaryOp::Lt, Ref(P + "c"),
                                               Ref(P + "hi"), Loc);
  Stmt *OuterStep = Ctx.createStmt<AssignStmt>(
      Ref(P + "c"),
      Ctx.createExpr<BinaryExpr>(BinaryOp::Add, Ref(P + "c"), Ref(P + "ch"),
                                 Loc),
      Loc);
  Stmt *OuterFor =
      Ctx.createStmt<ForStmt>(OuterInit, OuterCond, OuterStep, Async, Loc);

  return Ctx.createStmt<BlockStmt>(
      std::vector<Stmt *>{LoDecl, HiDecl, ChDecl, OuterFor}, Loc);
}

} // namespace

unsigned tdr::lowerForasync(Program &P, AstContext &Ctx) {
  unsigned Lowered = 0;
  StmtRewriter R([&](Stmt *S) -> Stmt * {
    if (auto *F = dyn_cast<ForasyncStmt>(S))
      return lowerOneForasync(Ctx, F, Lowered++);
    return S;
  });
  R.run(P);
  return Lowered;
}

namespace {
template <typename Fn> void walkStmts(Stmt *S, Fn &&Visit) {
  Visit(S);
  switch (S->kind()) {
  case Stmt::Kind::Block:
    for (Stmt *Child : cast<BlockStmt>(S)->stmts())
      walkStmts(Child, Visit);
    break;
  case Stmt::Kind::If: {
    auto *I = cast<IfStmt>(S);
    walkStmts(I->thenStmt(), Visit);
    if (I->elseStmt())
      walkStmts(I->elseStmt(), Visit);
    break;
  }
  case Stmt::Kind::While:
    walkStmts(cast<WhileStmt>(S)->body(), Visit);
    break;
  case Stmt::Kind::For:
    walkStmts(cast<ForStmt>(S)->body(), Visit);
    break;
  case Stmt::Kind::Async:
    walkStmts(cast<AsyncStmt>(S)->body(), Visit);
    break;
  case Stmt::Kind::Finish:
    walkStmts(cast<FinishStmt>(S)->body(), Visit);
    break;
  case Stmt::Kind::Isolated:
    walkStmts(cast<IsolatedStmt>(S)->body(), Visit);
    break;
  case Stmt::Kind::Forasync:
    walkStmts(cast<ForasyncStmt>(S)->body(), Visit);
    break;
  case Stmt::Kind::VarDecl:
  case Stmt::Kind::Assign:
  case Stmt::Kind::Expr:
  case Stmt::Kind::Return:
  case Stmt::Kind::Future:
    break;
  }
}
} // namespace

std::vector<AsyncStmt *> tdr::collectAsyncs(Program &P) {
  std::vector<AsyncStmt *> Result;
  for (FuncDecl *F : P.funcs())
    walkStmts(F->body(), [&](Stmt *S) {
      if (auto *A = dyn_cast<AsyncStmt>(S))
        Result.push_back(A);
    });
  return Result;
}

std::vector<FinishStmt *> tdr::collectFinishes(Program &P) {
  std::vector<FinishStmt *> Result;
  for (FuncDecl *F : P.funcs())
    walkStmts(F->body(), [&](Stmt *S) {
      if (auto *Fin = dyn_cast<FinishStmt>(S))
        Result.push_back(Fin);
    });
  return Result;
}

unsigned tdr::countStmts(const Program &P) {
  unsigned N = 0;
  for (const FuncDecl *F : P.funcs())
    walkStmts(static_cast<Stmt *>(F->body()), [&](Stmt *) { ++N; });
  return N;
}

namespace {
void walkExpr(const Expr *E, const std::function<void(const Expr *)> &Fn) {
  if (!E)
    return;
  Fn(E);
  switch (E->kind()) {
  case Expr::Kind::Index: {
    const auto *I = cast<IndexExpr>(E);
    walkExpr(I->base(), Fn);
    walkExpr(I->index(), Fn);
    break;
  }
  case Expr::Kind::Call:
    for (const Expr *A : cast<CallExpr>(E)->args())
      walkExpr(A, Fn);
    break;
  case Expr::Kind::Unary:
    walkExpr(cast<UnaryExpr>(E)->operand(), Fn);
    break;
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    walkExpr(B->lhs(), Fn);
    walkExpr(B->rhs(), Fn);
    break;
  }
  case Expr::Kind::NewArray:
    for (const Expr *D : cast<NewArrayExpr>(E)->dims())
      walkExpr(D, Fn);
    break;
  case Expr::Kind::IntLit:
  case Expr::Kind::DoubleLit:
  case Expr::Kind::BoolLit:
  case Expr::Kind::VarRef:
    break;
  }
}
} // namespace

void tdr::forEachExpr(const Stmt *S,
                      const std::function<void(const Expr *)> &Fn) {
  switch (S->kind()) {
  case Stmt::Kind::Block:
    for (const Stmt *C : cast<BlockStmt>(S)->stmts())
      forEachExpr(C, Fn);
    break;
  case Stmt::Kind::VarDecl:
    walkExpr(cast<VarDeclStmt>(S)->init(), Fn);
    break;
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    walkExpr(A->target(), Fn);
    walkExpr(A->value(), Fn);
    break;
  }
  case Stmt::Kind::Expr:
    walkExpr(cast<ExprStmt>(S)->expr(), Fn);
    break;
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    walkExpr(I->cond(), Fn);
    forEachExpr(I->thenStmt(), Fn);
    if (I->elseStmt())
      forEachExpr(I->elseStmt(), Fn);
    break;
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    walkExpr(W->cond(), Fn);
    forEachExpr(W->body(), Fn);
    break;
  }
  case Stmt::Kind::For: {
    const auto *F = cast<ForStmt>(S);
    if (F->init())
      forEachExpr(F->init(), Fn);
    walkExpr(F->cond(), Fn);
    if (F->step())
      forEachExpr(F->step(), Fn);
    forEachExpr(F->body(), Fn);
    break;
  }
  case Stmt::Kind::Return:
    walkExpr(cast<ReturnStmt>(S)->value(), Fn);
    break;
  case Stmt::Kind::Async:
    forEachExpr(cast<AsyncStmt>(S)->body(), Fn);
    break;
  case Stmt::Kind::Finish:
    forEachExpr(cast<FinishStmt>(S)->body(), Fn);
    break;
  case Stmt::Kind::Future:
    walkExpr(cast<FutureStmt>(S)->init(), Fn);
    break;
  case Stmt::Kind::Isolated:
    forEachExpr(cast<IsolatedStmt>(S)->body(), Fn);
    break;
  case Stmt::Kind::Forasync: {
    const auto *F = cast<ForasyncStmt>(S);
    walkExpr(F->lo(), Fn);
    walkExpr(F->hi(), Fn);
    walkExpr(F->chunk(), Fn);
    forEachExpr(F->body(), Fn);
    break;
  }
  }
}
