//===- Transforms.cpp -----------------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "ast/Transforms.h"

#include "ast/AstContext.h"

#include <cassert>
#include <functional>

using namespace tdr;

namespace {

/// Rewrites every statement slot of a program, bottom-up and in place.
/// The Rewrite callback receives each statement after its children have
/// been processed and returns the statement to put in its slot.
class StmtRewriter {
public:
  explicit StmtRewriter(std::function<Stmt *(Stmt *)> Rewrite)
      : Rewrite(std::move(Rewrite)) {}

  void run(Program &P) {
    for (FuncDecl *F : P.funcs()) {
      Stmt *NewBody = rewriteTree(F->body());
      assert(NewBody == F->body() &&
             "rewrites must not replace a function body block");
      (void)NewBody;
    }
  }

  Stmt *rewriteTree(Stmt *S) {
    switch (S->kind()) {
    case Stmt::Kind::Block: {
      auto *B = cast<BlockStmt>(S);
      for (Stmt *&Child : B->stmts())
        Child = rewriteTree(Child);
      break;
    }
    case Stmt::Kind::If: {
      auto *I = cast<IfStmt>(S);
      I->setThenStmt(rewriteTree(I->thenStmt()));
      if (I->elseStmt())
        I->setElseStmt(rewriteTree(I->elseStmt()));
      break;
    }
    case Stmt::Kind::While: {
      auto *W = cast<WhileStmt>(S);
      W->setBody(rewriteTree(W->body()));
      break;
    }
    case Stmt::Kind::For: {
      auto *F = cast<ForStmt>(S);
      F->setBody(rewriteTree(F->body()));
      break;
    }
    case Stmt::Kind::Async: {
      auto *A = cast<AsyncStmt>(S);
      A->setBody(rewriteTree(A->body()));
      break;
    }
    case Stmt::Kind::Finish: {
      auto *F = cast<FinishStmt>(S);
      F->setBody(rewriteTree(F->body()));
      break;
    }
    case Stmt::Kind::VarDecl:
    case Stmt::Kind::Assign:
    case Stmt::Kind::Expr:
    case Stmt::Kind::Return:
      break;
    }
    return Rewrite(S);
  }

private:
  std::function<Stmt *(Stmt *)> Rewrite;
};

} // namespace

unsigned tdr::stripFinishes(Program &P) {
  unsigned Removed = 0;
  StmtRewriter R([&](Stmt *S) -> Stmt * {
    if (auto *F = dyn_cast<FinishStmt>(S)) {
      ++Removed;
      return F->body();
    }
    return S;
  });
  R.run(P);
  return Removed;
}

unsigned tdr::elideParallelism(Program &P) {
  unsigned Removed = 0;
  StmtRewriter R([&](Stmt *S) -> Stmt * {
    if (auto *F = dyn_cast<FinishStmt>(S)) {
      ++Removed;
      return F->body();
    }
    if (auto *A = dyn_cast<AsyncStmt>(S)) {
      ++Removed;
      return A->body();
    }
    return S;
  });
  R.run(P);
  return Removed;
}

FinishStmt *tdr::wrapInFinish(AstContext &Ctx, BlockStmt *B, size_t Begin,
                              size_t End, FinishEditSink *Edits) {
  assert(Begin <= End && End < B->stmts().size() &&
         "finish range out of bounds");
  Stmt *First = B->stmts()[Begin];
  Stmt *Last = B->stmts()[End];
  Stmt *Body;
  BlockStmt *NewBody = nullptr;
  SourceLoc Loc = First->loc();
  if (Begin == End) {
    Body = First;
  } else {
    std::vector<Stmt *> Inner(B->stmts().begin() + Begin,
                              B->stmts().begin() + End + 1);
    NewBody = Ctx.createStmt<BlockStmt>(std::move(Inner), Loc);
    Body = NewBody;
  }
  auto *Finish = Ctx.createStmt<FinishStmt>(Body, Loc);
  Finish->setSynthesized(true);
  auto &Stmts = B->stmts();
  Stmts.erase(Stmts.begin() + Begin, Stmts.begin() + End + 1);
  Stmts.insert(Stmts.begin() + Begin, Finish);
  if (Edits)
    Edits->noteBlockWrap(Finish, B, First, Last, NewBody);
  return Finish;
}

namespace {
template <typename Fn> void walkStmts(Stmt *S, Fn &&Visit) {
  Visit(S);
  switch (S->kind()) {
  case Stmt::Kind::Block:
    for (Stmt *Child : cast<BlockStmt>(S)->stmts())
      walkStmts(Child, Visit);
    break;
  case Stmt::Kind::If: {
    auto *I = cast<IfStmt>(S);
    walkStmts(I->thenStmt(), Visit);
    if (I->elseStmt())
      walkStmts(I->elseStmt(), Visit);
    break;
  }
  case Stmt::Kind::While:
    walkStmts(cast<WhileStmt>(S)->body(), Visit);
    break;
  case Stmt::Kind::For:
    walkStmts(cast<ForStmt>(S)->body(), Visit);
    break;
  case Stmt::Kind::Async:
    walkStmts(cast<AsyncStmt>(S)->body(), Visit);
    break;
  case Stmt::Kind::Finish:
    walkStmts(cast<FinishStmt>(S)->body(), Visit);
    break;
  case Stmt::Kind::VarDecl:
  case Stmt::Kind::Assign:
  case Stmt::Kind::Expr:
  case Stmt::Kind::Return:
    break;
  }
}
} // namespace

std::vector<AsyncStmt *> tdr::collectAsyncs(Program &P) {
  std::vector<AsyncStmt *> Result;
  for (FuncDecl *F : P.funcs())
    walkStmts(F->body(), [&](Stmt *S) {
      if (auto *A = dyn_cast<AsyncStmt>(S))
        Result.push_back(A);
    });
  return Result;
}

std::vector<FinishStmt *> tdr::collectFinishes(Program &P) {
  std::vector<FinishStmt *> Result;
  for (FuncDecl *F : P.funcs())
    walkStmts(F->body(), [&](Stmt *S) {
      if (auto *Fin = dyn_cast<FinishStmt>(S))
        Result.push_back(Fin);
    });
  return Result;
}

unsigned tdr::countStmts(const Program &P) {
  unsigned N = 0;
  for (const FuncDecl *F : P.funcs())
    walkStmts(static_cast<Stmt *>(F->body()), [&](Stmt *) { ++N; });
  return N;
}

namespace {
void walkExpr(const Expr *E, const std::function<void(const Expr *)> &Fn) {
  if (!E)
    return;
  Fn(E);
  switch (E->kind()) {
  case Expr::Kind::Index: {
    const auto *I = cast<IndexExpr>(E);
    walkExpr(I->base(), Fn);
    walkExpr(I->index(), Fn);
    break;
  }
  case Expr::Kind::Call:
    for (const Expr *A : cast<CallExpr>(E)->args())
      walkExpr(A, Fn);
    break;
  case Expr::Kind::Unary:
    walkExpr(cast<UnaryExpr>(E)->operand(), Fn);
    break;
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    walkExpr(B->lhs(), Fn);
    walkExpr(B->rhs(), Fn);
    break;
  }
  case Expr::Kind::NewArray:
    for (const Expr *D : cast<NewArrayExpr>(E)->dims())
      walkExpr(D, Fn);
    break;
  case Expr::Kind::IntLit:
  case Expr::Kind::DoubleLit:
  case Expr::Kind::BoolLit:
  case Expr::Kind::VarRef:
    break;
  }
}
} // namespace

void tdr::forEachExpr(const Stmt *S,
                      const std::function<void(const Expr *)> &Fn) {
  switch (S->kind()) {
  case Stmt::Kind::Block:
    for (const Stmt *C : cast<BlockStmt>(S)->stmts())
      forEachExpr(C, Fn);
    break;
  case Stmt::Kind::VarDecl:
    walkExpr(cast<VarDeclStmt>(S)->init(), Fn);
    break;
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    walkExpr(A->target(), Fn);
    walkExpr(A->value(), Fn);
    break;
  }
  case Stmt::Kind::Expr:
    walkExpr(cast<ExprStmt>(S)->expr(), Fn);
    break;
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    walkExpr(I->cond(), Fn);
    forEachExpr(I->thenStmt(), Fn);
    if (I->elseStmt())
      forEachExpr(I->elseStmt(), Fn);
    break;
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    walkExpr(W->cond(), Fn);
    forEachExpr(W->body(), Fn);
    break;
  }
  case Stmt::Kind::For: {
    const auto *F = cast<ForStmt>(S);
    if (F->init())
      forEachExpr(F->init(), Fn);
    walkExpr(F->cond(), Fn);
    if (F->step())
      forEachExpr(F->step(), Fn);
    forEachExpr(F->body(), Fn);
    break;
  }
  case Stmt::Kind::Return:
    walkExpr(cast<ReturnStmt>(S)->value(), Fn);
    break;
  case Stmt::Kind::Async:
    forEachExpr(cast<AsyncStmt>(S)->body(), Fn);
    break;
  case Stmt::Kind::Finish:
    forEachExpr(cast<FinishStmt>(S)->body(), Fn);
    break;
  }
}
