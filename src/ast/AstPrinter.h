//===- AstPrinter.h - HJ-mini pretty printer --------------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints an AST back to HJ-mini source text. The output is parseable: the
/// repair pipeline prints the repaired program and re-parses it both to
/// verify well-formedness and to hand downstream passes fresh source
/// locations for the synthesized finish statements.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_AST_ASTPRINTER_H
#define TDR_AST_ASTPRINTER_H

#include <string>

namespace tdr {

class Program;
class Stmt;
class Expr;

/// Renders the whole program as source text.
std::string printProgram(const Program &P);

/// Renders a single statement (multi-line, \p Indent leading levels).
std::string printStmt(const Stmt *S, unsigned Indent = 0);

/// Renders an expression on one line.
std::string printExpr(const Expr *E);

} // namespace tdr

#endif // TDR_AST_ASTPRINTER_H
