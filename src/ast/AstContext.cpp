//===- AstContext.cpp -----------------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "ast/AstContext.h"

using namespace tdr;

AstContext::AstContext() {
  IntTy.reset(new Type(Type::Kind::Int));
  DoubleTy.reset(new Type(Type::Kind::Double));
  BoolTy.reset(new Type(Type::Kind::Bool));
  VoidTy.reset(new Type(Type::Kind::Void));
}

AstContext::~AstContext() = default;

const Type *AstContext::arrayType(const Type *Elem) {
  for (const auto &T : ArrayTys)
    if (T->elem() == Elem)
      return T.get();
  ArrayTys.push_back(std::unique_ptr<Type>(new Type(Type::Kind::Array, Elem)));
  return ArrayTys.back().get();
}

const Type *AstContext::futureType(const Type *Elem) {
  for (const auto &T : FutureTys)
    if (T->elem() == Elem)
      return T.get();
  FutureTys.push_back(
      std::unique_ptr<Type>(new Type(Type::Kind::Future, Elem)));
  return FutureTys.back().get();
}

const char *tdr::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add: return "+";
  case BinaryOp::Sub: return "-";
  case BinaryOp::Mul: return "*";
  case BinaryOp::Div: return "/";
  case BinaryOp::Mod: return "%";
  case BinaryOp::Lt: return "<";
  case BinaryOp::Le: return "<=";
  case BinaryOp::Gt: return ">";
  case BinaryOp::Ge: return ">=";
  case BinaryOp::Eq: return "==";
  case BinaryOp::Ne: return "!=";
  case BinaryOp::LAnd: return "&&";
  case BinaryOp::LOr: return "||";
  case BinaryOp::BAnd: return "&";
  case BinaryOp::BOr: return "|";
  case BinaryOp::BXor: return "^";
  case BinaryOp::Shl: return "<<";
  case BinaryOp::Shr: return ">>";
  }
  return "?";
}

const char *tdr::unaryOpSpelling(UnaryOp Op) {
  switch (Op) {
  case UnaryOp::Neg: return "-";
  case UnaryOp::Not: return "!";
  case UnaryOp::BNot: return "~";
  }
  return "?";
}
