//===- Ast.h - HJ-mini abstract syntax trees ---------------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST node definitions for HJ-mini, the small structured parallel language
/// this repository uses as its exemplar of async-finish parallelism (the
/// paper uses a subset of Habanero Java / X10 the same way).
///
/// Nodes are arena-owned by an AstContext and referenced by raw pointers.
/// Statements carry stable ids and source locations: the repair pipeline
/// records, for every S-DPST node, the statement that created it, and the
/// static finish placement (paper §6) mutates BlockStmt statement lists to
/// wrap statement ranges in new FinishStmt nodes.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_AST_AST_H
#define TDR_AST_AST_H

#include "ast/Type.h"
#include "support/Casting.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <string>
#include <vector>

namespace tdr {

class FuncDecl;
class VarDecl;

//===----------------------------------------------------------------------===//
// Operators
//===----------------------------------------------------------------------===//

enum class BinaryOp {
  Add, Sub, Mul, Div, Mod,          // arithmetic
  Lt, Le, Gt, Ge, Eq, Ne,           // comparison
  LAnd, LOr,                        // short-circuit logical
  BAnd, BOr, BXor, Shl, Shr         // bitwise (int only)
};

enum class UnaryOp { Neg, Not, BNot };

/// Spelling of a binary operator as it appears in source.
const char *binaryOpSpelling(BinaryOp Op);
const char *unaryOpSpelling(UnaryOp Op);

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Builtin functions callable from HJ-mini source.
enum class Builtin {
  None,      ///< not a builtin (user function)
  Print,     ///< print(x): appends x and '\n' to the program output
  Len,       ///< len(a): array length
  Sqrt, Abs, Min, Max, Pow, Sin, Cos, Exp, Log, Floor,
  ToInt,     ///< toInt(d): truncating conversion
  ToDouble,  ///< toDouble(i)
  RandInt,   ///< randInt(b): deterministic uniform in [0, b)
  RandSeed,  ///< randSeed(s): reseeds the interpreter RNG
  Arg,       ///< arg(i): i-th int program argument supplied by the harness
  Force      ///< force(f): joins the future f and yields its value
};

/// Base class of all HJ-mini expressions.
class Expr {
public:
  enum class Kind {
    IntLit, DoubleLit, BoolLit, VarRef, Index, Call, Unary, Binary, NewArray
  };

  Kind kind() const { return K; }
  SourceLoc loc() const { return Loc; }

  /// Static type, filled in by sema; null before type checking.
  const Type *type() const { return Ty; }
  void setType(const Type *T) { Ty = T; }

protected:
  Expr(Kind K, SourceLoc Loc) : K(K), Loc(Loc) {}
  ~Expr() = default;

private:
  Kind K;
  SourceLoc Loc;
  const Type *Ty = nullptr;
};

/// A 64-bit integer literal.
class IntLitExpr : public Expr {
public:
  IntLitExpr(int64_t Value, SourceLoc Loc)
      : Expr(Kind::IntLit, Loc), Value(Value) {}

  int64_t value() const { return Value; }

  static bool classof(const Expr *E) { return E->kind() == Kind::IntLit; }

private:
  int64_t Value;
};

/// A floating point literal.
class DoubleLitExpr : public Expr {
public:
  DoubleLitExpr(double Value, SourceLoc Loc)
      : Expr(Kind::DoubleLit, Loc), Value(Value) {}

  double value() const { return Value; }

  static bool classof(const Expr *E) { return E->kind() == Kind::DoubleLit; }

private:
  double Value;
};

/// true or false.
class BoolLitExpr : public Expr {
public:
  BoolLitExpr(bool Value, SourceLoc Loc)
      : Expr(Kind::BoolLit, Loc), Value(Value) {}

  bool value() const { return Value; }

  static bool classof(const Expr *E) { return E->kind() == Kind::BoolLit; }

private:
  bool Value;
};

/// A reference to a global, parameter, or local variable. The declaration
/// is bound by sema.
class VarRefExpr : public Expr {
public:
  VarRefExpr(std::string Name, SourceLoc Loc)
      : Expr(Kind::VarRef, Loc), Name(std::move(Name)) {}

  const std::string &name() const { return Name; }
  VarDecl *decl() const { return Decl; }
  void setDecl(VarDecl *D) { Decl = D; }

  static bool classof(const Expr *E) { return E->kind() == Kind::VarRef; }

private:
  std::string Name;
  VarDecl *Decl = nullptr;
};

/// Array subscript a[i].
class IndexExpr : public Expr {
public:
  IndexExpr(Expr *Base, Expr *Index, SourceLoc Loc)
      : Expr(Kind::Index, Loc), Base(Base), Index(Index) {}

  Expr *base() const { return Base; }
  Expr *index() const { return Index; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Index; }

private:
  Expr *Base;
  Expr *Index;
};

/// A call to a user function or builtin: f(a, b).
class CallExpr : public Expr {
public:
  CallExpr(std::string Callee, std::vector<Expr *> Args, SourceLoc Loc)
      : Expr(Kind::Call, Loc), CalleeName(std::move(Callee)),
        Args(std::move(Args)) {}

  const std::string &calleeName() const { return CalleeName; }
  const std::vector<Expr *> &args() const { return Args; }

  /// Resolved callee (exactly one of the two is set after sema).
  FuncDecl *callee() const { return Callee; }
  void setCallee(FuncDecl *F) { Callee = F; }
  Builtin builtin() const { return BuiltinKind; }
  void setBuiltin(Builtin B) { BuiltinKind = B; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Call; }

private:
  std::string CalleeName;
  std::vector<Expr *> Args;
  FuncDecl *Callee = nullptr;
  Builtin BuiltinKind = Builtin::None;
};

/// A unary operation.
class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOp Op, Expr *Operand, SourceLoc Loc)
      : Expr(Kind::Unary, Loc), Op(Op), Operand(Operand) {}

  UnaryOp op() const { return Op; }
  Expr *operand() const { return Operand; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Unary; }

private:
  UnaryOp Op;
  Expr *Operand;
};

/// A binary operation.
class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOp Op, Expr *Lhs, Expr *Rhs, SourceLoc Loc)
      : Expr(Kind::Binary, Loc), Op(Op), Lhs(Lhs), Rhs(Rhs) {}

  BinaryOp op() const { return Op; }
  Expr *lhs() const { return Lhs; }
  Expr *rhs() const { return Rhs; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Binary; }

private:
  BinaryOp Op;
  Expr *Lhs;
  Expr *Rhs;
};

/// Array allocation: new int[n], new double[n][m] (array of arrays,
/// allocated rectangularly). ElemType is the *scalar* base element type;
/// the number of dimension expressions gives the nesting depth.
class NewArrayExpr : public Expr {
public:
  NewArrayExpr(const Type *ElemType, std::vector<Expr *> Dims, SourceLoc Loc)
      : Expr(Kind::NewArray, Loc), ElemType(ElemType), Dims(std::move(Dims)) {}

  const Type *elemType() const { return ElemType; }
  const std::vector<Expr *> &dims() const { return Dims; }

  static bool classof(const Expr *E) { return E->kind() == Kind::NewArray; }

private:
  const Type *ElemType;
  std::vector<Expr *> Dims;
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

/// A variable declaration: global, parameter, or local.
class VarDecl {
public:
  enum class Kind { Global, Param, Local };

  VarDecl(Kind K, std::string Name, const Type *Ty, SourceLoc Loc)
      : K(K), Name(std::move(Name)), Ty(Ty), Loc(Loc) {}

  Kind kind() const { return K; }
  bool isGlobal() const { return K == Kind::Global; }
  const std::string &name() const { return Name; }
  const Type *type() const { return Ty; }
  SourceLoc loc() const { return Loc; }

  /// Storage slot: global index for globals, frame slot for params/locals.
  /// Assigned by sema.
  uint32_t slot() const { return Slot; }
  void setSlot(uint32_t S) { Slot = S; }

  /// Initializer, used by globals only (locals initialize through their
  /// VarDeclStmt).
  Expr *init() const { return Init; }
  void setInit(Expr *E) { Init = E; }

private:
  Kind K;
  std::string Name;
  const Type *Ty;
  SourceLoc Loc;
  uint32_t Slot = 0;
  Expr *Init = nullptr;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

class BlockStmt;

/// Base class of all HJ-mini statements. Every statement has a stable id
/// (unique within its AstContext) that the S-DPST uses to tie dynamic nodes
/// back to static program points.
class Stmt {
public:
  enum class Kind {
    Block, VarDecl, Assign, Expr, If, While, For, Return, Async, Finish,
    Future, Isolated, Forasync
  };

  Kind kind() const { return K; }
  SourceLoc loc() const { return Loc; }
  void setLoc(SourceLoc L) { Loc = L; }
  uint32_t id() const { return Id; }

protected:
  Stmt(Kind K, SourceLoc Loc) : K(K), Loc(Loc) {}
  ~Stmt() = default;

private:
  friend class AstContext;
  Kind K;
  SourceLoc Loc;
  uint32_t Id = 0;
};

/// { s1; s2; ... } — introduces a declaration scope. The statement list is
/// mutable: the repair tool edits it in place when inserting finishes.
class BlockStmt : public Stmt {
public:
  explicit BlockStmt(std::vector<Stmt *> Stmts, SourceLoc Loc)
      : Stmt(Kind::Block, Loc), Stmts(std::move(Stmts)) {}

  const std::vector<Stmt *> &stmts() const { return Stmts; }
  std::vector<Stmt *> &stmts() { return Stmts; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Block; }

private:
  std::vector<Stmt *> Stmts;
};

/// var T name = init; — a local declaration.
class VarDeclStmt : public Stmt {
public:
  VarDeclStmt(VarDecl *Decl, Expr *Init, SourceLoc Loc)
      : Stmt(Kind::VarDecl, Loc), Decl(Decl), Init(Init) {}

  VarDecl *decl() const { return Decl; }
  Expr *init() const { return Init; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::VarDecl; }

private:
  VarDecl *Decl;
  Expr *Init; ///< may be null (default-initialized)
};

/// target = value; or target op= value;  The target is a VarRefExpr or an
/// IndexExpr (checked by sema).
class AssignStmt : public Stmt {
public:
  /// CompoundOp is the op of "op=", or nullopt for plain "=".
  AssignStmt(Expr *Target, Expr *Value, SourceLoc Loc)
      : Stmt(Kind::Assign, Loc), Target(Target), Value(Value) {}

  Expr *target() const { return Target; }
  Expr *value() const { return Value; }
  bool isCompound() const { return Compound; }
  BinaryOp compoundOp() const { return CompoundOp; }
  void setCompound(BinaryOp Op) {
    Compound = true;
    CompoundOp = Op;
  }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Assign; }

private:
  Expr *Target;
  Expr *Value;
  bool Compound = false;
  BinaryOp CompoundOp = BinaryOp::Add;
};

/// An expression evaluated for effect (a call).
class ExprStmt : public Stmt {
public:
  ExprStmt(Expr *E, SourceLoc Loc) : Stmt(Kind::Expr, Loc), E(E) {}

  Expr *expr() const { return E; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Expr; }

private:
  Expr *E;
};

/// if (cond) then else else?
class IfStmt : public Stmt {
public:
  IfStmt(Expr *Cond, Stmt *Then, Stmt *Else, SourceLoc Loc)
      : Stmt(Kind::If, Loc), Cond(Cond), Then(Then), Else(Else) {}

  Expr *cond() const { return Cond; }
  Stmt *thenStmt() const { return Then; }
  Stmt *elseStmt() const { return Else; } ///< may be null
  void setThenStmt(Stmt *S) { Then = S; }
  void setElseStmt(Stmt *S) { Else = S; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::If; }

private:
  Expr *Cond;
  Stmt *Then;
  Stmt *Else;
};

/// while (cond) body
class WhileStmt : public Stmt {
public:
  WhileStmt(Expr *Cond, Stmt *Body, SourceLoc Loc)
      : Stmt(Kind::While, Loc), Cond(Cond), Body(Body) {}

  Expr *cond() const { return Cond; }
  Stmt *body() const { return Body; }
  void setBody(Stmt *S) { Body = S; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::While; }

private:
  Expr *Cond;
  Stmt *Body;
};

/// for (init; cond; step) body — init and step are statements (a var decl
/// or assignment for init; an assignment for step); any of the three header
/// parts may be null.
class ForStmt : public Stmt {
public:
  ForStmt(Stmt *Init, Expr *Cond, Stmt *Step, Stmt *Body, SourceLoc Loc)
      : Stmt(Kind::For, Loc), Init(Init), Cond(Cond), Step(Step), Body(Body) {}

  Stmt *init() const { return Init; }
  Expr *cond() const { return Cond; }
  Stmt *step() const { return Step; }
  Stmt *body() const { return Body; }
  void setBody(Stmt *S) { Body = S; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::For; }

private:
  Stmt *Init;
  Expr *Cond;
  Stmt *Step;
  Stmt *Body;
};

/// return expr?;
class ReturnStmt : public Stmt {
public:
  ReturnStmt(Expr *Value, SourceLoc Loc)
      : Stmt(Kind::Return, Loc), Value(Value) {}

  Expr *value() const { return Value; } ///< may be null

  static bool classof(const Stmt *S) { return S->kind() == Kind::Return; }

private:
  Expr *Value;
};

/// async body — creates a child task that may run in parallel with the
/// remainder of the parent task.
class AsyncStmt : public Stmt {
public:
  AsyncStmt(Stmt *Body, SourceLoc Loc) : Stmt(Kind::Async, Loc), Body(Body) {}

  Stmt *body() const { return Body; }
  void setBody(Stmt *S) { Body = S; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Async; }

private:
  Stmt *Body;
};

/// finish body — the parent task waits for all tasks transitively created
/// inside the body. FinishStmt nodes are both user-written and synthesized
/// by the repair tool.
class FinishStmt : public Stmt {
public:
  FinishStmt(Stmt *Body, SourceLoc Loc)
      : Stmt(Kind::Finish, Loc), Body(Body) {}

  Stmt *body() const { return Body; }
  void setBody(Stmt *S) { Body = S; }

  /// True when this finish was inserted by the repair tool (used by
  /// reports and tests to distinguish repairs from original code).
  bool isSynthesized() const { return Synthesized; }
  void setSynthesized(bool B) { Synthesized = B; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Finish; }

private:
  Stmt *Body;
  bool Synthesized = false;
};

/// future f = expr; — spawns a child task that evaluates expr and binds the
/// handle f (of non-denotable type future<T>) in the enclosing scope. The
/// task may run in parallel with the continuation; force(f) joins it and
/// yields the value. The body behaves as if wrapped in an implicit finish:
/// tasks spawned while evaluating expr complete before the future resolves.
class FutureStmt : public Stmt {
public:
  FutureStmt(std::string Name, Expr *Init, SourceLoc Loc)
      : Stmt(Kind::Future, Loc), Name(std::move(Name)), Init(Init) {}

  const std::string &name() const { return Name; }
  Expr *init() const { return Init; }

  /// The handle's declaration, bound by sema (null before checking).
  VarDecl *decl() const { return Decl; }
  void setDecl(VarDecl *D) { Decl = D; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Future; }

private:
  std::string Name;
  Expr *Init;
  VarDecl *Decl = nullptr;
};

/// isolated body — a mutually exclusive (atomic) section: no two isolated
/// bodies execute concurrently. Task spawns are not permitted inside.
/// IsolatedStmt nodes are both user-written and synthesized by the repair
/// tool when it chooses mutual exclusion over a join edge.
class IsolatedStmt : public Stmt {
public:
  IsolatedStmt(Stmt *Body, SourceLoc Loc)
      : Stmt(Kind::Isolated, Loc), Body(Body) {}

  Stmt *body() const { return Body; }
  void setBody(Stmt *S) { Body = S; }

  /// True when this isolated section was inserted by the repair tool.
  bool isSynthesized() const { return Synthesized; }
  void setSynthesized(bool B) { Synthesized = B; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Isolated; }

private:
  Stmt *Body;
  bool Synthesized = false;
};

/// forasync (var i: int = lo; i < hi; chunk c) body — a chunked parallel
/// loop: iterations [lo, hi) are split into chunks of c consecutive
/// iterations, and each chunk runs as one async. Sema desugars this into
/// the async/finish core before checking (the chunking policy is recorded
/// in the lowered code), so no layer past the frontend ever sees the node.
class ForasyncStmt : public Stmt {
public:
  ForasyncStmt(std::string VarName, Expr *Lo, Expr *Hi, Expr *Chunk,
               Stmt *Body, SourceLoc Loc)
      : Stmt(Kind::Forasync, Loc), VarName(std::move(VarName)), Lo(Lo),
        Hi(Hi), Chunk(Chunk), Body(Body) {}

  const std::string &varName() const { return VarName; }
  Expr *lo() const { return Lo; }
  Expr *hi() const { return Hi; }
  Expr *chunk() const { return Chunk; }
  Stmt *body() const { return Body; }
  void setBody(Stmt *S) { Body = S; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Forasync; }

private:
  std::string VarName;
  Expr *Lo;
  Expr *Hi;
  Expr *Chunk;
  Stmt *Body;
};

//===----------------------------------------------------------------------===//
// Functions and programs
//===----------------------------------------------------------------------===//

/// func name(params): ret { body }
class FuncDecl {
public:
  FuncDecl(std::string Name, std::vector<VarDecl *> Params,
           const Type *ReturnType, BlockStmt *Body, SourceLoc Loc)
      : Name(std::move(Name)), Params(std::move(Params)),
        ReturnType(ReturnType), Body(Body), Loc(Loc) {}

  const std::string &name() const { return Name; }
  const std::vector<VarDecl *> &params() const { return Params; }
  const Type *returnType() const { return ReturnType; }
  BlockStmt *body() const { return Body; }
  SourceLoc loc() const { return Loc; }

  /// Number of frame slots (params + all locals), assigned by sema.
  uint32_t numFrameSlots() const { return NumFrameSlots; }
  void setNumFrameSlots(uint32_t N) { NumFrameSlots = N; }

private:
  std::string Name;
  std::vector<VarDecl *> Params;
  const Type *ReturnType;
  BlockStmt *Body;
  SourceLoc Loc;
  uint32_t NumFrameSlots = 0;
};

/// A whole HJ-mini compilation unit.
class Program {
public:
  std::vector<VarDecl *> &globals() { return Globals; }
  const std::vector<VarDecl *> &globals() const { return Globals; }
  std::vector<FuncDecl *> &funcs() { return Funcs; }
  const std::vector<FuncDecl *> &funcs() const { return Funcs; }

  /// Finds a function by name; null if absent.
  FuncDecl *findFunc(const std::string &Name) const {
    for (FuncDecl *F : Funcs)
      if (F->name() == Name)
        return F;
    return nullptr;
  }

  /// The entry point, conventionally "main".
  FuncDecl *mainFunc() const { return findFunc("main"); }

private:
  std::vector<VarDecl *> Globals;
  std::vector<FuncDecl *> Funcs;
};

} // namespace tdr

#endif // TDR_AST_AST_H
