//===- Transforms.h - AST-to-AST program transforms --------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// In-place AST transforms used by the repair pipeline and the experiment
/// harness:
///
///  * stripFinishes   — removes every finish statement, producing the
///                      "buggy program" the paper's evaluation starts from
///                      (§7.1: "We removed all finish statements...").
///  * elideParallelism— removes async and finish, producing the serial
///                      elision whose semantics a correct repair preserves.
///  * wrapInFinish    — wraps a statement range of a block in a new finish;
///                      the primitive the static finish placement uses.
///
/// Finish insertions can be *observed* through a FinishEditSink: each
/// insertion reports the new FinishStmt and the statement range it wraps.
/// The trace subsystem accumulates these reports in a FinishEditMap so a
/// recorded execution event stream can be replayed against the edited
/// program (owner pointers remapped through the map, finish enter/exit
/// events synthesized at the wrapped boundaries) without re-interpreting.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_AST_TRANSFORMS_H
#define TDR_AST_TRANSFORMS_H

#include "ast/Ast.h"

#include <cstddef>
#include <functional>
#include <unordered_set>
#include <vector>

namespace tdr {

class AstContext;

/// Observer of finish insertions. The two callbacks mirror the two edit
/// shapes the repair pipeline produces:
///
///  * a *block wrap* (wrapInFinish): children [First..Last] of Parent move
///    under the new finish — into a synthesized body block (NewBody) when
///    the range has more than one statement, directly as the finish body
///    otherwise;
///  * a *slot wrap* (StaticPlacer deep/body wraps): the occupant of a
///    structured statement's body slot (if/while/for/async/finish) is
///    wrapped, SlotOwner being the structured statement.
class FinishEditSink {
public:
  virtual ~FinishEditSink() = default;
  virtual void noteBlockWrap(FinishStmt *F, BlockStmt *Parent, Stmt *First,
                             Stmt *Last, BlockStmt *NewBody) = 0;
  virtual void noteSlotWrap(FinishStmt *F, Stmt *SlotOwner, Stmt *Wrapped) = 0;
};

/// One recorded finish insertion (see FinishEditSink for field meaning).
/// Exactly one of Parent / SlotOwner is set.
struct FinishEdit {
  FinishStmt *Finish = nullptr;
  BlockStmt *Parent = nullptr;
  Stmt *SlotOwner = nullptr;
  Stmt *First = nullptr;      ///< first wrapped statement
  Stmt *Last = nullptr;       ///< last wrapped statement (== First if single)
  BlockStmt *NewBody = nullptr; ///< synthesized body block (multi-stmt wraps)
};

/// Accumulates finish insertions applied after some baseline (a recorded
/// trace). Membership queries answer "is this statement *new* relative to
/// the baseline" — the question the replayer asks; the `synthesized` AST
/// flag cannot answer it because a baseline recorded mid-repair already
/// contains synthesized finishes.
class FinishEditMap final : public FinishEditSink {
public:
  void noteBlockWrap(FinishStmt *F, BlockStmt *Parent, Stmt *First,
                     Stmt *Last, BlockStmt *NewBody) override {
    Edits.push_back({F, Parent, nullptr, First, Last, NewBody});
    NewFinishes.insert(F);
    if (NewBody)
      NewBlocks.insert(NewBody);
  }
  void noteSlotWrap(FinishStmt *F, Stmt *SlotOwner, Stmt *Wrapped) override {
    Edits.push_back({F, nullptr, SlotOwner, Wrapped, Wrapped, nullptr});
    NewFinishes.insert(F);
  }

  bool isNewFinish(const Stmt *S) const { return NewFinishes.count(S) != 0; }
  bool isNewBlock(const Stmt *S) const { return NewBlocks.count(S) != 0; }

  const std::vector<FinishEdit> &edits() const { return Edits; }
  bool empty() const { return Edits.empty(); }
  void clear() {
    Edits.clear();
    NewFinishes.clear();
    NewBlocks.clear();
  }

private:
  std::vector<FinishEdit> Edits;
  std::unordered_set<const Stmt *> NewFinishes;
  std::unordered_set<const Stmt *> NewBlocks;
};

/// Removes every finish statement from \p P (each finish is replaced by its
/// body). Returns the number of finishes removed.
unsigned stripFinishes(Program &P);

/// Removes every async and finish statement from \p P, yielding the serial
/// elision. Returns the number of statements removed.
unsigned elideParallelism(Program &P);

/// Wraps statements [Begin, End] (inclusive indices) of \p B in a new
/// finish statement, marked synthesized. The finish body is the single
/// statement when Begin == End, otherwise a new block. Reports the edit to
/// \p Edits when non-null. Returns the finish.
FinishStmt *wrapInFinish(AstContext &Ctx, BlockStmt *B, size_t Begin,
                         size_t End, FinishEditSink *Edits = nullptr);

/// Wraps statement \p Index of \p B in a new isolated section, marked
/// synthesized. Unlike finish insertion this edit is not replayable (it
/// changes the event stream), so there is no edit-sink channel; callers
/// must invalidate any recorded trace. Returns the isolated statement.
IsolatedStmt *wrapInIsolated(AstContext &Ctx, BlockStmt *B, size_t Index);

/// Desugars every forasync loop in \p P into its chunked async/finish-core
/// form (hoisted bounds, a chunk-grained loop of asyncs, and a sequential
/// inner loop per chunk — the recorded chunking policy). Runs bottom-up so
/// nested forasyncs lower inside-out. Returns the number of loops lowered.
/// Called by sema before checking; no layer past the frontend sees a
/// ForasyncStmt.
unsigned lowerForasync(Program &P, AstContext &Ctx);

/// Collects every async statement in the program, in pre-order.
std::vector<AsyncStmt *> collectAsyncs(Program &P);

/// Collects every finish statement in the program, in pre-order.
std::vector<FinishStmt *> collectFinishes(Program &P);

/// Counts all statements in the program (pre-order walk).
unsigned countStmts(const Program &P);

/// Calls \p Fn on every expression reachable from \p S, including nested
/// statements' expressions (pre-order).
void forEachExpr(const Stmt *S, const std::function<void(const Expr *)> &Fn);

} // namespace tdr

#endif // TDR_AST_TRANSFORMS_H
