//===- Transforms.h - AST-to-AST program transforms --------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// In-place AST transforms used by the repair pipeline and the experiment
/// harness:
///
///  * stripFinishes   — removes every finish statement, producing the
///                      "buggy program" the paper's evaluation starts from
///                      (§7.1: "We removed all finish statements...").
///  * elideParallelism— removes async and finish, producing the serial
///                      elision whose semantics a correct repair preserves.
///  * wrapInFinish    — wraps a statement range of a block in a new finish;
///                      the primitive the static finish placement uses.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_AST_TRANSFORMS_H
#define TDR_AST_TRANSFORMS_H

#include <cstddef>
#include <functional>
#include <vector>

namespace tdr {

class AstContext;
class AsyncStmt;
class Expr;
class BlockStmt;
class FinishStmt;
class Program;
class Stmt;

/// Removes every finish statement from \p P (each finish is replaced by its
/// body). Returns the number of finishes removed.
unsigned stripFinishes(Program &P);

/// Removes every async and finish statement from \p P, yielding the serial
/// elision. Returns the number of statements removed.
unsigned elideParallelism(Program &P);

/// Wraps statements [Begin, End] (inclusive indices) of \p B in a new
/// finish statement, marked synthesized. The finish body is the single
/// statement when Begin == End, otherwise a new block. Returns the finish.
FinishStmt *wrapInFinish(AstContext &Ctx, BlockStmt *B, size_t Begin,
                         size_t End);

/// Collects every async statement in the program, in pre-order.
std::vector<AsyncStmt *> collectAsyncs(Program &P);

/// Collects every finish statement in the program, in pre-order.
std::vector<FinishStmt *> collectFinishes(Program &P);

/// Counts all statements in the program (pre-order walk).
unsigned countStmts(const Program &P);

/// Calls \p Fn on every expression reachable from \p S, including nested
/// statements' expressions (pre-order).
void forEachExpr(const Stmt *S, const std::function<void(const Expr *)> &Fn);

} // namespace tdr

#endif // TDR_AST_TRANSFORMS_H
