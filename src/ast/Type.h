//===- Type.h - HJ-mini types ------------------------------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The HJ-mini type system: int (64-bit), double, bool, and arrays of any
/// element type (arrays nest, giving int[][] etc.). Types are interned by
/// the AstContext, so pointer equality is type equality.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_AST_TYPE_H
#define TDR_AST_TYPE_H

#include <cassert>
#include <string>

namespace tdr {

/// An interned HJ-mini type.
class Type {
public:
  enum class Kind { Int, Double, Bool, Array, Void, Future };

  Kind kind() const { return K; }
  bool isInt() const { return K == Kind::Int; }
  bool isDouble() const { return K == Kind::Double; }
  bool isBool() const { return K == Kind::Bool; }
  bool isArray() const { return K == Kind::Array; }
  bool isVoid() const { return K == Kind::Void; }
  bool isFuture() const { return K == Kind::Future; }
  bool isNumeric() const { return isInt() || isDouble(); }
  bool isScalar() const { return isInt() || isDouble() || isBool(); }

  /// Element type; only valid for arrays and futures.
  const Type *elem() const {
    assert((isArray() || isFuture()) && "elem() on non-array type");
    return Elem;
  }

  /// Renders the type as it appears in source, e.g. "int[][]".
  std::string str() const {
    switch (K) {
    case Kind::Int:
      return "int";
    case Kind::Double:
      return "double";
    case Kind::Bool:
      return "bool";
    case Kind::Void:
      return "void";
    case Kind::Array:
      return Elem->str() + "[]";
    case Kind::Future:
      return "future<" + Elem->str() + ">";
    }
    return "?";
  }

private:
  friend class AstContext;
  explicit Type(Kind K, const Type *Elem = nullptr) : K(K), Elem(Elem) {}

  Kind K;
  const Type *Elem;
};

} // namespace tdr

#endif // TDR_AST_TYPE_H
