//===- AstPrinter.cpp -----------------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "ast/AstPrinter.h"

#include "ast/Ast.h"
#include "support/StringUtils.h"

#include <cmath>

using namespace tdr;

namespace {

/// Binding strength used to decide where parentheses are required.
int precedenceOf(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::LOr: return 1;
  case BinaryOp::LAnd: return 2;
  case BinaryOp::BOr: return 3;
  case BinaryOp::BXor: return 4;
  case BinaryOp::BAnd: return 5;
  case BinaryOp::Eq:
  case BinaryOp::Ne: return 6;
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge: return 7;
  case BinaryOp::Shl:
  case BinaryOp::Shr: return 8;
  case BinaryOp::Add:
  case BinaryOp::Sub: return 9;
  case BinaryOp::Mul:
  case BinaryOp::Div:
  case BinaryOp::Mod: return 10;
  }
  return 0;
}

class Printer {
public:
  std::string Out;

  void indent(unsigned Level) { Out.append(Level * 2, ' '); }

  void expr(const Expr *E, int ParentPrec = 0) {
    switch (E->kind()) {
    case Expr::Kind::IntLit:
      Out += std::to_string(cast<IntLitExpr>(E)->value());
      return;
    case Expr::Kind::DoubleLit: {
      double V = cast<DoubleLitExpr>(E)->value();
      std::string S = strFormat("%.17g", V);
      // Keep the literal recognizably floating point on round-trip.
      if (S.find('.') == std::string::npos &&
          S.find('e') == std::string::npos &&
          S.find("inf") == std::string::npos &&
          S.find("nan") == std::string::npos)
        S += ".0";
      Out += S;
      return;
    }
    case Expr::Kind::BoolLit:
      Out += cast<BoolLitExpr>(E)->value() ? "true" : "false";
      return;
    case Expr::Kind::VarRef:
      Out += cast<VarRefExpr>(E)->name();
      return;
    case Expr::Kind::Index: {
      const auto *I = cast<IndexExpr>(E);
      expr(I->base(), 100);
      Out += '[';
      expr(I->index());
      Out += ']';
      return;
    }
    case Expr::Kind::Call: {
      const auto *C = cast<CallExpr>(E);
      Out += C->calleeName();
      Out += '(';
      bool First = true;
      for (const Expr *A : C->args()) {
        if (!First)
          Out += ", ";
        First = false;
        expr(A);
      }
      Out += ')';
      return;
    }
    case Expr::Kind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      Out += unaryOpSpelling(U->op());
      expr(U->operand(), 99);
      return;
    }
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      int Prec = precedenceOf(B->op());
      bool Paren = Prec < ParentPrec;
      if (Paren)
        Out += '(';
      expr(B->lhs(), Prec);
      Out += ' ';
      Out += binaryOpSpelling(B->op());
      Out += ' ';
      // Right operand binds tighter: a - b - c prints as-is, but the tree
      // (a - (b - c)) needs parentheses on the right.
      expr(B->rhs(), Prec + 1);
      if (Paren)
        Out += ')';
      return;
    }
    case Expr::Kind::NewArray: {
      const auto *N = cast<NewArrayExpr>(E);
      Out += "new ";
      Out += N->elemType()->str();
      for (const Expr *D : N->dims()) {
        Out += '[';
        expr(D);
        Out += ']';
      }
      return;
    }
    }
  }

  /// Prints \p S starting at the current position (caller has indented);
  /// ends with a newline.
  void stmt(const Stmt *S, unsigned Level) {
    switch (S->kind()) {
    case Stmt::Kind::Block: {
      Out += "{\n";
      for (const Stmt *Child : cast<BlockStmt>(S)->stmts()) {
        indent(Level + 1);
        stmt(Child, Level + 1);
      }
      indent(Level);
      Out += "}\n";
      return;
    }
    case Stmt::Kind::VarDecl: {
      const auto *V = cast<VarDeclStmt>(S);
      Out += "var ";
      Out += V->decl()->name();
      Out += ": ";
      Out += V->decl()->type()->str();
      if (V->init()) {
        Out += " = ";
        expr(V->init());
      }
      Out += ";\n";
      return;
    }
    case Stmt::Kind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      expr(A->target());
      if (A->isCompound()) {
        Out += ' ';
        Out += binaryOpSpelling(A->compoundOp());
        Out += "= ";
      } else {
        Out += " = ";
      }
      expr(A->value());
      Out += ";\n";
      return;
    }
    case Stmt::Kind::Expr:
      expr(cast<ExprStmt>(S)->expr());
      Out += ";\n";
      return;
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      Out += "if (";
      expr(I->cond());
      Out += ") ";
      inlineBody(I->thenStmt(), Level);
      if (I->elseStmt()) {
        // The then-branch print ended with a newline; continue on a fresh
        // indented line.
        indent(Level);
        Out += "else ";
        inlineBody(I->elseStmt(), Level);
      }
      return;
    }
    case Stmt::Kind::While: {
      const auto *W = cast<WhileStmt>(S);
      Out += "while (";
      expr(W->cond());
      Out += ") ";
      inlineBody(W->body(), Level);
      return;
    }
    case Stmt::Kind::For: {
      const auto *F = cast<ForStmt>(S);
      Out += "for (";
      if (F->init())
        headerStmt(F->init());
      Out += "; ";
      if (F->cond())
        expr(F->cond());
      Out += "; ";
      if (F->step())
        headerStmt(F->step());
      Out += ") ";
      inlineBody(F->body(), Level);
      return;
    }
    case Stmt::Kind::Return: {
      const auto *R = cast<ReturnStmt>(S);
      Out += "return";
      if (R->value()) {
        Out += ' ';
        expr(R->value());
      }
      Out += ";\n";
      return;
    }
    case Stmt::Kind::Async:
      Out += "async ";
      inlineBody(cast<AsyncStmt>(S)->body(), Level);
      return;
    case Stmt::Kind::Finish:
      Out += "finish ";
      inlineBody(cast<FinishStmt>(S)->body(), Level);
      return;
    case Stmt::Kind::Future: {
      const auto *F = cast<FutureStmt>(S);
      Out += "future ";
      Out += F->name();
      Out += " = ";
      expr(F->init());
      Out += ";\n";
      return;
    }
    case Stmt::Kind::Isolated:
      Out += "isolated ";
      inlineBody(cast<IsolatedStmt>(S)->body(), Level);
      return;
    case Stmt::Kind::Forasync: {
      const auto *F = cast<ForasyncStmt>(S);
      Out += "forasync (var ";
      Out += F->varName();
      Out += ": int = ";
      expr(F->lo());
      Out += "; ";
      Out += F->varName();
      Out += " < ";
      expr(F->hi());
      Out += "; chunk ";
      expr(F->chunk());
      Out += ") ";
      inlineBody(F->body(), Level);
      return;
    }
    }
  }

private:
  /// Prints the body of a structured statement on the same line when it is
  /// a block, or on a fresh indented line otherwise.
  void inlineBody(const Stmt *Body, unsigned Level) {
    switch (Body->kind()) {
    case Stmt::Kind::Block:
    case Stmt::Kind::VarDecl:
    case Stmt::Kind::Assign:
    case Stmt::Kind::Expr:
    case Stmt::Kind::Return:
    case Stmt::Kind::Async:
    case Stmt::Kind::Finish:
    case Stmt::Kind::Future:
    case Stmt::Kind::Isolated:
      // Simple or chainable bodies stay on the same line:
      // "async quicksort(a, lo, j);" / "finish async f();".
      stmt(Body, Level);
      return;
    case Stmt::Kind::If:
    case Stmt::Kind::While:
    case Stmt::Kind::For:
    case Stmt::Kind::Forasync:
      Out += "\n";
      indent(Level + 1);
      stmt(Body, Level + 1);
      return;
    }
  }

  /// Prints a for-header init/step statement without the ";\n" terminator.
  void headerStmt(const Stmt *S) {
    std::string Saved = std::move(Out);
    Out.clear();
    stmt(S, 0);
    // Drop the ";\n" the statement printer appended.
    while (!Out.empty() && (Out.back() == '\n' || Out.back() == ';'))
      Out.pop_back();
    std::string Inner = std::move(Out);
    Out = std::move(Saved);
    Out += Inner;
  }
};

} // namespace

std::string tdr::printExpr(const Expr *E) {
  Printer P;
  P.expr(E);
  return std::move(P.Out);
}

std::string tdr::printStmt(const Stmt *S, unsigned Indent) {
  Printer P;
  P.indent(Indent);
  P.stmt(S, Indent);
  return std::move(P.Out);
}

std::string tdr::printProgram(const Program &Prog) {
  Printer P;
  for (const VarDecl *G : Prog.globals()) {
    P.Out += "var ";
    P.Out += G->name();
    P.Out += ": ";
    P.Out += G->type()->str();
    if (G->init()) {
      P.Out += " = ";
      P.expr(G->init());
    }
    P.Out += ";\n";
  }
  if (!Prog.globals().empty())
    P.Out += "\n";
  for (const FuncDecl *F : Prog.funcs()) {
    P.Out += "func ";
    P.Out += F->name();
    P.Out += '(';
    bool First = true;
    for (const VarDecl *Param : F->params()) {
      if (!First)
        P.Out += ", ";
      First = false;
      P.Out += Param->name();
      P.Out += ": ";
      P.Out += Param->type()->str();
    }
    P.Out += ')';
    if (!F->returnType()->isVoid()) {
      P.Out += ": ";
      P.Out += F->returnType()->str();
    }
    P.Out += ' ';
    P.stmt(F->body(), 0);
    P.Out += "\n";
  }
  return std::move(P.Out);
}
