//===- Value.h - HJ-mini runtime values --------------------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime values for the HJ-mini interpreters. Scalars are stored inline;
/// arrays are references to heap objects owned by the interpreter. Array
/// objects carry stable ids that the race detector uses to name memory
/// locations.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_INTERP_VALUE_H
#define TDR_INTERP_VALUE_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace tdr {

class ArrayObj;

/// A runtime value: int, double, bool, array reference (possibly null), or
/// future handle (the dynamic future id; the interpreter owns the value
/// store the handle indexes).
class Value {
public:
  enum class Kind : uint8_t { Int, Double, Bool, Array, Future };

  Value() : K(Kind::Int) { Payload.I = 0; }

  static Value makeInt(int64_t V) {
    Value R;
    R.K = Kind::Int;
    R.Payload.I = V;
    return R;
  }
  static Value makeDouble(double V) {
    Value R;
    R.K = Kind::Double;
    R.Payload.D = V;
    return R;
  }
  static Value makeBool(bool V) {
    Value R;
    R.K = Kind::Bool;
    R.Payload.B = V;
    return R;
  }
  static Value makeArray(ArrayObj *A) {
    Value R;
    R.K = Kind::Array;
    R.Payload.A = A;
    return R;
  }
  static Value makeFuture(uint32_t Fid) {
    Value R;
    R.K = Kind::Future;
    R.Payload.F = Fid;
    return R;
  }

  Kind kind() const { return K; }
  bool isInt() const { return K == Kind::Int; }
  bool isDouble() const { return K == Kind::Double; }
  bool isBool() const { return K == Kind::Bool; }
  bool isArray() const { return K == Kind::Array; }
  bool isFuture() const { return K == Kind::Future; }

  int64_t asInt() const {
    assert(isInt());
    return Payload.I;
  }
  double asDouble() const {
    assert(isDouble());
    return Payload.D;
  }
  bool asBool() const {
    assert(isBool());
    return Payload.B;
  }
  ArrayObj *asArray() const {
    assert(isArray());
    return Payload.A;
  }
  uint32_t asFuture() const {
    assert(isFuture());
    return Payload.F;
  }

  /// Renders the value the way the print builtin does.
  std::string str() const;

private:
  Kind K;
  union {
    int64_t I;
    double D;
    bool B;
    ArrayObj *A;
    uint32_t F;
  } Payload;
};

/// A heap-allocated array. Elements are Values (nested arrays give 2-D).
class ArrayObj {
public:
  ArrayObj(uint32_t Id, size_t N, Value Fill) : Id(Id), Elems(N, Fill) {}

  uint32_t id() const { return Id; }
  size_t size() const { return Elems.size(); }
  Value &elem(size_t I) {
    assert(I < Elems.size());
    return Elems[I];
  }
  const Value &elem(size_t I) const {
    assert(I < Elems.size());
    return Elems[I];
  }

private:
  uint32_t Id;
  std::vector<Value> Elems;
};

/// Names one race-checked shared memory location: a global variable slot or
/// an array element.
struct MemLoc {
  enum class Kind : uint8_t { Global, Elem };

  Kind K = Kind::Global;
  uint32_t Id = 0;    ///< global slot, or array id
  int64_t Index = 0;  ///< element index (Elem only)

  static MemLoc global(uint32_t Slot) { return MemLoc{Kind::Global, Slot, 0}; }
  static MemLoc elem(uint32_t ArrayId, int64_t Index) {
    return MemLoc{Kind::Elem, ArrayId, Index};
  }

  friend bool operator==(const MemLoc &A, const MemLoc &B) {
    return A.K == B.K && A.Id == B.Id && A.Index == B.Index;
  }

  /// Renders as "global#3" or "array#7[42]" for reports.
  std::string str() const;
};

struct MemLocHash {
  size_t operator()(const MemLoc &L) const {
    uint64_t H = static_cast<uint64_t>(L.K) * 0x9e3779b97f4a7c15ull;
    H ^= (static_cast<uint64_t>(L.Id) + 0x9e3779b97f4a7c15ull + (H << 6));
    H ^= (static_cast<uint64_t>(L.Index) * 0xbf58476d1ce4e5b9ull) + (H >> 2);
    return static_cast<size_t>(H);
  }
};

} // namespace tdr

#endif // TDR_INTERP_VALUE_H
