//===- Interpreter.cpp ----------------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "ast/Ast.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/StringUtils.h"

#include <cmath>

using namespace tdr;

std::string Value::str() const {
  switch (K) {
  case Kind::Int:
    return std::to_string(Payload.I);
  case Kind::Double:
    return strFormat("%.6g", Payload.D);
  case Kind::Bool:
    return Payload.B ? "true" : "false";
  case Kind::Array:
    return Payload.A ? strFormat("array#%u", Payload.A->id()) : "null";
  case Kind::Future:
    return strFormat("future#%u", Payload.F);
  }
  return "?";
}

std::string MemLoc::str() const {
  if (K == Kind::Global)
    return strFormat("global#%u", Id);
  return strFormat("array#%u[%lld]", Id, static_cast<long long>(Index));
}

Interpreter::Interpreter(const Program &P, ExecOptions OptsIn)
    : P(P), Opts(std::move(OptsIn)), Mon(Opts.Monitor),
      CAsyncs(&obs::counter("interp.asyncs")),
      CFinishes(&obs::counter("interp.finishes")),
      CFutures(&obs::counter("interp.futures")),
      CIsolated(&obs::counter("interp.isolated")), Rand(Opts.Seed) {}

Interpreter::~Interpreter() = default;

bool Interpreter::fail(SourceLoc Loc, std::string Msg) {
  if (Error.empty()) {
    Error = std::move(Msg);
    ErrorLoc = Loc;
  }
  return false;
}

bool Interpreter::addWork(uint64_t Units, SourceLoc Loc) {
  Work += Units;
  if (Mon)
    Mon->onWork(Units);
  if (Work > Opts.WorkLimit)
    return fail(Loc, "work limit exceeded (possible runaway loop)");
  return true;
}

/// Default value for a declared-but-uninitialized variable of type \p T.
static Value defaultValue(const Type *T) {
  switch (T->kind()) {
  case Type::Kind::Int:
    return Value::makeInt(0);
  case Type::Kind::Double:
    return Value::makeDouble(0.0);
  case Type::Kind::Bool:
    return Value::makeBool(false);
  case Type::Kind::Array:
    return Value::makeArray(nullptr);
  case Type::Kind::Future:
    // Unreachable: future handles always initialize at the declaration.
    return Value::makeFuture(0);
  case Type::Kind::Void:
    break;
  }
  return Value::makeInt(0);
}

ExecResult Interpreter::run() {
  assert(!Ran && "Interpreter::run() called twice");
  Ran = true;
  obs::ScopedSpan Span(obs::phase::InterpRun);
  obs::counter("interp.runs").inc();

  const FuncDecl *Main = P.mainFunc();
  assert(Main && "sema guarantees a main function");

  // Global initializers execute in declaration order, attributed to a
  // root-level step (Owner == null).
  Globals.reserve(P.globals().size());
  bool InitOk = true;
  for (const VarDecl *G : P.globals()) {
    Value V = defaultValue(G->type());
    if (G->init()) {
      stepPoint(nullptr);
      if (!addWork(1, G->loc()) || !evalExpr(G->init(), V)) {
        InitOk = false;
        Globals.push_back(V);
        break;
      }
    }
    Globals.push_back(V);
    if (Mon && G->init())
      Mon->onWrite(MemLoc::global(G->slot()));
  }

  if (InitOk) {
    // main() executes as a call-body scope at the root.
    Stack.push_back(Frame{std::vector<Value>(Main->numFrameSlots())});
    execBlock(Main->body(), ScopeKind::Call, nullptr, Main);
    Stack.pop_back();
  }

  ExecResult R;
  R.Ok = Error.empty();
  R.Error = Error;
  R.ErrorLoc = ErrorLoc;
  R.Output = std::move(Output);
  R.TotalWork = Work;
  obs::counter("interp.work").inc(Work);
  obs::gauge("interp.last_work").set(static_cast<int64_t>(Work));
  return R;
}

Interpreter::Flow Interpreter::execBlock(const BlockStmt *B, ScopeKind K,
                                         const Stmt *Owner,
                                         const FuncDecl *Callee) {
  if (Mon)
    Mon->onScopeEnter(K, Owner, B, Callee);
  Flow F = Flow::Normal;
  for (const Stmt *S : B->stmts()) {
    F = execStmt(S, S);
    if (F != Flow::Normal)
      break;
  }
  if (Mon)
    Mon->onScopeExit();
  return F;
}

Interpreter::Flow Interpreter::execBody(const Stmt *Body, const Stmt *Owner) {
  if (const auto *B = dyn_cast<BlockStmt>(Body))
    return execBlock(B, ScopeKind::Block, Owner, nullptr);
  return execStmt(Body, Owner);
}

Interpreter::Flow Interpreter::execAssign(const AssignStmt *A) {
  const Expr *Target = A->target();
  if (const auto *Ref = dyn_cast<VarRefExpr>(Target)) {
    const VarDecl *D = Ref->decl();
    Value V;
    if (A->isCompound()) {
      Value Current;
      if (!evalExpr(Target, Current))
        return Flow::Error;
      Value Rhs;
      if (!evalExpr(A->value(), Rhs))
        return Flow::Error;
      if (!applyBinary(A->compoundOp(), Current, Rhs, V, A->loc()))
        return Flow::Error;
    } else if (!evalExpr(A->value(), V)) {
      return Flow::Error;
    }
    if (D->isGlobal()) {
      Globals[D->slot()] = V;
      if (Mon)
        Mon->onWrite(MemLoc::global(D->slot()));
    } else {
      Stack.back().Slots[D->slot()] = V;
    }
    return Flow::Normal;
  }

  // Array element target: evaluate base, then index, then value.
  const auto *Idx = cast<IndexExpr>(Target);
  Value BaseV;
  if (!evalExpr(Idx->base(), BaseV))
    return Flow::Error;
  Value IndexV;
  if (!evalExpr(Idx->index(), IndexV))
    return Flow::Error;
  int64_t I = IndexV.asInt();
  ArrayObj *Arr = checkedArray(BaseV, I, Idx->loc());
  if (!Arr)
    return Flow::Error;

  Value V;
  if (A->isCompound()) {
    if (Mon)
      Mon->onRead(MemLoc::elem(Arr->id(), I));
    Value Current = Arr->elem(static_cast<size_t>(I));
    Value Rhs;
    if (!evalExpr(A->value(), Rhs))
      return Flow::Error;
    if (!applyBinary(A->compoundOp(), Current, Rhs, V, A->loc()))
      return Flow::Error;
  } else if (!evalExpr(A->value(), V)) {
    return Flow::Error;
  }
  Arr->elem(static_cast<size_t>(I)) = V;
  if (Mon)
    Mon->onWrite(MemLoc::elem(Arr->id(), I));
  return Flow::Normal;
}

Interpreter::Flow Interpreter::execStmt(const Stmt *S, const Stmt *Owner) {
  switch (S->kind()) {
  case Stmt::Kind::Block:
    return execBlock(cast<BlockStmt>(S), ScopeKind::Block, Owner, nullptr);

  case Stmt::Kind::VarDecl: {
    const auto *V = cast<VarDeclStmt>(S);
    stepPoint(Owner);
    if (!addWork(1, S->loc()))
      return Flow::Error;
    Value Init = defaultValue(V->decl()->type());
    if (V->init() && !evalExpr(V->init(), Init))
      return Flow::Error;
    Stack.back().Slots[V->decl()->slot()] = Init;
    return Flow::Normal;
  }

  case Stmt::Kind::Assign:
    stepPoint(Owner);
    if (!addWork(1, S->loc()))
      return Flow::Error;
    return execAssign(cast<AssignStmt>(S));

  case Stmt::Kind::Expr: {
    stepPoint(Owner);
    if (!addWork(1, S->loc()))
      return Flow::Error;
    Value Ignored;
    return evalExpr(cast<ExprStmt>(S)->expr(), Ignored) ? Flow::Normal
                                                        : Flow::Error;
  }

  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    stepPoint(Owner);
    if (!addWork(1, S->loc()))
      return Flow::Error;
    Value Cond;
    if (!evalExpr(I->cond(), Cond))
      return Flow::Error;
    if (Cond.asBool())
      return execBody(I->thenStmt(), Owner);
    if (I->elseStmt())
      return execBody(I->elseStmt(), Owner);
    return Flow::Normal;
  }

  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    while (true) {
      stepPoint(Owner);
      if (!addWork(1, S->loc()))
        return Flow::Error;
      Value Cond;
      if (!evalExpr(W->cond(), Cond))
        return Flow::Error;
      if (!Cond.asBool())
        return Flow::Normal;
      Flow F = execBody(W->body(), Owner);
      if (F != Flow::Normal)
        return F;
    }
  }

  case Stmt::Kind::For: {
    const auto *F = cast<ForStmt>(S);
    if (F->init()) {
      Flow Fl = execStmt(F->init(), Owner);
      if (Fl != Flow::Normal)
        return Fl;
    }
    while (true) {
      stepPoint(Owner);
      if (!addWork(1, S->loc()))
        return Flow::Error;
      if (F->cond()) {
        Value Cond;
        if (!evalExpr(F->cond(), Cond))
          return Flow::Error;
        if (!Cond.asBool())
          return Flow::Normal;
      }
      Flow Fl = execBody(F->body(), Owner);
      if (Fl != Flow::Normal)
        return Fl;
      if (F->step()) {
        stepPoint(Owner);
        Fl = execStmt(F->step(), Owner);
        if (Fl != Flow::Normal)
          return Fl;
      }
    }
  }

  case Stmt::Kind::Return: {
    const auto *R = cast<ReturnStmt>(S);
    stepPoint(Owner);
    if (!addWork(1, S->loc()))
      return Flow::Error;
    if (R->value()) {
      if (!evalExpr(R->value(), RetVal))
        return Flow::Error;
      HasRetVal = true;
    }
    return Flow::Return;
  }

  case Stmt::Kind::Async: {
    const auto *A = cast<AsyncStmt>(S);
    if (InIsolated) {
      fail(S->loc(), "cannot spawn a task inside an isolated section");
      return Flow::Error;
    }
    CAsyncs->inc();
    if (Mon)
      Mon->onAsyncEnter(A, Owner);
    // Depth-first semantics: execute the body now, on a snapshot of the
    // parent frame (by-value capture; sema rejects writes to captured
    // locals, so discarding the snapshot afterwards is unobservable).
    Stack.push_back(Frame{Stack.back().Slots});
    Flow F = execBody(A->body(), A);
    Stack.pop_back();
    if (Mon)
      Mon->onAsyncExit(A);
    return F;
  }

  case Stmt::Kind::Finish: {
    const auto *Fin = cast<FinishStmt>(S);
    if (InIsolated) {
      fail(S->loc(), "'finish' is not allowed inside an isolated section");
      return Flow::Error;
    }
    CFinishes->inc();
    if (Mon)
      Mon->onFinishEnter(Fin, Owner);
    Flow F = execBody(Fin->body(), Fin);
    if (Mon)
      Mon->onFinishExit(Fin);
    return F;
  }

  case Stmt::Kind::Future: {
    const auto *F = cast<FutureStmt>(S);
    if (InIsolated) {
      fail(S->loc(), "cannot spawn a future inside an isolated section");
      return Flow::Error;
    }
    CFutures->inc();
    uint32_t Fid = NextFutureId++;
    if (Mon)
      Mon->onFutureEnter(F, Owner, Fid);
    // Depth-first semantics, like async: evaluate the initializer now on a
    // snapshot of the parent frame.
    Stack.push_back(Frame{Stack.back().Slots});
    stepPoint(F);
    Value V;
    bool Ok = evalExpr(F->init(), V);
    Stack.pop_back();
    if (Mon)
      Mon->onFutureExit(F);
    if (!Ok)
      return Flow::Error;
    if (FutureValues.size() <= Fid)
      FutureValues.resize(Fid + 1);
    FutureValues[Fid] = V;
    // The handle write is a local slot store — not a monitored location.
    Stack.back().Slots[F->decl()->slot()] = Value::makeFuture(Fid);
    // The continuation belongs to the parent's step again.
    stepPoint(Owner);
    return Flow::Normal;
  }

  case Stmt::Kind::Isolated: {
    const auto *I = cast<IsolatedStmt>(S);
    if (InIsolated) {
      fail(S->loc(), "isolated sections do not nest");
      return Flow::Error;
    }
    CIsolated->inc();
    if (Mon)
      Mon->onIsolatedEnter(I, Owner);
    InIsolated = true;
    Flow F = execBody(I->body(), I);
    InIsolated = false;
    if (Mon)
      Mon->onIsolatedExit(I);
    return F;
  }

  case Stmt::Kind::Forasync:
    // Sema lowers every forasync before execution.
    fail(S->loc(), "internal: forasync statement survived lowering");
    return Flow::Error;
  }
  return Flow::Normal;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

ArrayObj *Interpreter::checkedArray(const Value &BaseV, int64_t Index,
                                    SourceLoc Loc) {
  ArrayObj *Arr = BaseV.asArray();
  if (!Arr) {
    fail(Loc, "null array dereference");
    return nullptr;
  }
  if (Index < 0 || static_cast<size_t>(Index) >= Arr->size()) {
    fail(Loc, strFormat("array index %lld out of bounds [0, %zu)",
                        static_cast<long long>(Index), Arr->size()));
    return nullptr;
  }
  return Arr;
}

bool Interpreter::applyBinary(BinaryOp Op, const Value &L, const Value &R,
                              Value &Out, SourceLoc Loc) {
  switch (Op) {
  case BinaryOp::Add:
  case BinaryOp::Sub:
  case BinaryOp::Mul:
  case BinaryOp::Div:
    if (L.isInt()) {
      int64_t A = L.asInt(), B = R.asInt();
      switch (Op) {
      case BinaryOp::Add: Out = Value::makeInt(A + B); return true;
      case BinaryOp::Sub: Out = Value::makeInt(A - B); return true;
      case BinaryOp::Mul: Out = Value::makeInt(A * B); return true;
      default:
        if (B == 0)
          return fail(Loc, "integer division by zero");
        if (A == INT64_MIN && B == -1)
          return fail(Loc, "integer division overflow");
        Out = Value::makeInt(A / B);
        return true;
      }
    } else {
      double A = L.asDouble(), B = R.asDouble();
      switch (Op) {
      case BinaryOp::Add: Out = Value::makeDouble(A + B); return true;
      case BinaryOp::Sub: Out = Value::makeDouble(A - B); return true;
      case BinaryOp::Mul: Out = Value::makeDouble(A * B); return true;
      default: Out = Value::makeDouble(A / B); return true;
      }
    }
  case BinaryOp::Mod: {
    int64_t A = L.asInt(), B = R.asInt();
    if (B == 0)
      return fail(Loc, "integer modulo by zero");
    if (A == INT64_MIN && B == -1)
      return fail(Loc, "integer modulo overflow");
    Out = Value::makeInt(A % B);
    return true;
  }
  case BinaryOp::BAnd:
    Out = Value::makeInt(L.asInt() & R.asInt());
    return true;
  case BinaryOp::BOr:
    Out = Value::makeInt(L.asInt() | R.asInt());
    return true;
  case BinaryOp::BXor:
    Out = Value::makeInt(L.asInt() ^ R.asInt());
    return true;
  case BinaryOp::Shl: {
    uint64_t Sh = static_cast<uint64_t>(R.asInt()) & 63;
    Out = Value::makeInt(static_cast<int64_t>(
        static_cast<uint64_t>(L.asInt()) << Sh));
    return true;
  }
  case BinaryOp::Shr: {
    // Arithmetic shift, Java-style, with the count masked to 6 bits.
    uint64_t Sh = static_cast<uint64_t>(R.asInt()) & 63;
    Out = Value::makeInt(L.asInt() >> Sh);
    return true;
  }
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge: {
    bool B;
    if (L.isInt()) {
      int64_t A = L.asInt(), C = R.asInt();
      B = Op == BinaryOp::Lt   ? A < C
          : Op == BinaryOp::Le ? A <= C
          : Op == BinaryOp::Gt ? A > C
                               : A >= C;
    } else {
      double A = L.asDouble(), C = R.asDouble();
      B = Op == BinaryOp::Lt   ? A < C
          : Op == BinaryOp::Le ? A <= C
          : Op == BinaryOp::Gt ? A > C
                               : A >= C;
    }
    Out = Value::makeBool(B);
    return true;
  }
  case BinaryOp::Eq:
  case BinaryOp::Ne: {
    bool Equal;
    if (L.isInt())
      Equal = L.asInt() == R.asInt();
    else if (L.isDouble())
      Equal = L.asDouble() == R.asDouble();
    else
      Equal = L.asBool() == R.asBool();
    Out = Value::makeBool(Op == BinaryOp::Eq ? Equal : !Equal);
    return true;
  }
  case BinaryOp::LAnd:
  case BinaryOp::LOr:
    // Handled (with short-circuit) in evalExpr; only compound assignment
    // could reach here, and sema rejects bool compound assignment.
    Out = Value::makeBool(Op == BinaryOp::LAnd
                              ? (L.asBool() && R.asBool())
                              : (L.asBool() || R.asBool()));
    return true;
  }
  return fail(Loc, "unsupported binary operator");
}

bool Interpreter::evalExpr(const Expr *E, Value &Out) {
  if (!addWork(1, E->loc()))
    return false;

  switch (E->kind()) {
  case Expr::Kind::IntLit:
    Out = Value::makeInt(cast<IntLitExpr>(E)->value());
    return true;
  case Expr::Kind::DoubleLit:
    Out = Value::makeDouble(cast<DoubleLitExpr>(E)->value());
    return true;
  case Expr::Kind::BoolLit:
    Out = Value::makeBool(cast<BoolLitExpr>(E)->value());
    return true;

  case Expr::Kind::VarRef: {
    const VarDecl *D = cast<VarRefExpr>(E)->decl();
    assert(D && "sema must bind variable references");
    if (D->isGlobal()) {
      if (Mon)
        Mon->onRead(MemLoc::global(D->slot()));
      Out = Globals[D->slot()];
    } else {
      Out = Stack.back().Slots[D->slot()];
    }
    return true;
  }

  case Expr::Kind::Index: {
    const auto *I = cast<IndexExpr>(E);
    Value BaseV;
    if (!evalExpr(I->base(), BaseV))
      return false;
    Value IndexV;
    if (!evalExpr(I->index(), IndexV))
      return false;
    int64_t Idx = IndexV.asInt();
    ArrayObj *Arr = checkedArray(BaseV, Idx, I->loc());
    if (!Arr)
      return false;
    if (Mon)
      Mon->onRead(MemLoc::elem(Arr->id(), Idx));
    Out = Arr->elem(static_cast<size_t>(Idx));
    return true;
  }

  case Expr::Kind::Call:
    return evalCall(cast<CallExpr>(E), Out);

  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    Value V;
    if (!evalExpr(U->operand(), V))
      return false;
    switch (U->op()) {
    case UnaryOp::Neg:
      Out = V.isInt() ? Value::makeInt(-V.asInt())
                      : Value::makeDouble(-V.asDouble());
      return true;
    case UnaryOp::Not:
      Out = Value::makeBool(!V.asBool());
      return true;
    case UnaryOp::BNot:
      Out = Value::makeInt(~V.asInt());
      return true;
    }
    return false;
  }

  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    if (B->op() == BinaryOp::LAnd || B->op() == BinaryOp::LOr) {
      Value L;
      if (!evalExpr(B->lhs(), L))
        return false;
      bool LB = L.asBool();
      if ((B->op() == BinaryOp::LAnd && !LB) ||
          (B->op() == BinaryOp::LOr && LB)) {
        Out = Value::makeBool(LB);
        return true;
      }
      return evalExpr(B->rhs(), Out);
    }
    Value L, R;
    if (!evalExpr(B->lhs(), L) || !evalExpr(B->rhs(), R))
      return false;
    return applyBinary(B->op(), L, R, Out, B->loc());
  }

  case Expr::Kind::NewArray: {
    const auto *N = cast<NewArrayExpr>(E);
    std::vector<int64_t> Dims;
    for (const Expr *D : N->dims()) {
      Value V;
      if (!evalExpr(D, V))
        return false;
      if (V.asInt() < 0)
        return fail(D->loc(), strFormat("negative array dimension %lld",
                                        static_cast<long long>(V.asInt())));
      Dims.push_back(V.asInt());
    }
    return allocArray(N->elemType(), Dims, 0, Out, N->loc());
  }
  }
  return false;
}

bool Interpreter::allocArray(const Type *ElemTy,
                             const std::vector<int64_t> &Dims, size_t Level,
                             Value &Out, SourceLoc Loc) {
  size_t N = static_cast<size_t>(Dims[Level]);
  if (!addWork(N / 8 + 1, Loc))
    return false;
  Value Fill;
  if (Level + 1 == Dims.size()) {
    Fill = defaultValue(ElemTy);
    Heap.emplace_back(NextArrayId++, N, Fill);
    Out = Value::makeArray(&Heap.back());
    return true;
  }
  Heap.emplace_back(NextArrayId++, N, Value::makeArray(nullptr));
  ArrayObj *Arr = &Heap.back();
  for (size_t I = 0; I != N; ++I) {
    Value Sub;
    if (!allocArray(ElemTy, Dims, Level + 1, Sub, Loc))
      return false;
    Arr->elem(I) = Sub;
  }
  Out = Value::makeArray(Arr);
  return true;
}

bool Interpreter::evalCall(const CallExpr *C, Value &Out) {
  if (C->builtin() != Builtin::None)
    return evalBuiltin(C, Out);

  const FuncDecl *F = C->callee();
  assert(F && "sema must bind call targets");
  if (Stack.size() >= Opts.MaxCallDepth)
    return fail(C->loc(), "call depth limit exceeded (runaway recursion?)");

  // Evaluate arguments in the caller's context.
  std::vector<Value> ArgVals;
  ArgVals.reserve(C->args().size());
  for (const Expr *A : C->args()) {
    Value V;
    if (!evalExpr(A, V))
      return false;
    ArgVals.push_back(V);
  }

  // The call body is a scope node owned by the caller's current statement.
  const Stmt *Owner = CurOwner;
  Frame NewFrame{std::vector<Value>(F->numFrameSlots())};
  for (size_t I = 0; I != ArgVals.size(); ++I)
    NewFrame.Slots[F->params()[I]->slot()] = ArgVals[I];

  bool SavedHasRet = HasRetVal;
  Value SavedRet = RetVal;
  HasRetVal = false;

  Stack.push_back(std::move(NewFrame));
  if (Mon)
    Mon->onScopeEnter(ScopeKind::Call, Owner, F->body(), F);
  Flow Fl = Flow::Normal;
  for (const Stmt *S : F->body()->stmts()) {
    Fl = execStmt(S, S);
    if (Fl != Flow::Normal)
      break;
  }
  if (Mon)
    Mon->onScopeExit();
  Stack.pop_back();

  if (Fl == Flow::Error) {
    HasRetVal = SavedHasRet;
    RetVal = SavedRet;
    return false;
  }

  Out = HasRetVal ? RetVal : defaultValue(F->returnType());
  HasRetVal = SavedHasRet;
  RetVal = SavedRet;

  // The continuation after the call belongs to the caller's step again.
  stepPoint(Owner);
  return true;
}

bool Interpreter::evalBuiltin(const CallExpr *C, Value &Out) {
  // Evaluate arguments first (all builtins are strict).
  std::vector<Value> A;
  A.reserve(C->args().size());
  for (const Expr *ArgE : C->args()) {
    Value V;
    if (!evalExpr(ArgE, V))
      return false;
    A.push_back(V);
  }

  Out = Value::makeInt(0);
  switch (C->builtin()) {
  case Builtin::None:
    break;
  case Builtin::Print:
    Output += A[0].str();
    Output += '\n';
    return true;
  case Builtin::Len: {
    ArrayObj *Arr = A[0].asArray();
    if (!Arr)
      return fail(C->loc(), "len() of null array");
    Out = Value::makeInt(static_cast<int64_t>(Arr->size()));
    return true;
  }
  case Builtin::Sqrt:
    Out = Value::makeDouble(std::sqrt(A[0].asDouble()));
    return true;
  case Builtin::Sin:
    Out = Value::makeDouble(std::sin(A[0].asDouble()));
    return true;
  case Builtin::Cos:
    Out = Value::makeDouble(std::cos(A[0].asDouble()));
    return true;
  case Builtin::Exp:
    Out = Value::makeDouble(std::exp(A[0].asDouble()));
    return true;
  case Builtin::Log:
    Out = Value::makeDouble(std::log(A[0].asDouble()));
    return true;
  case Builtin::Floor:
    Out = Value::makeDouble(std::floor(A[0].asDouble()));
    return true;
  case Builtin::Abs:
    Out = A[0].isInt() ? Value::makeInt(std::llabs(A[0].asInt()))
                       : Value::makeDouble(std::fabs(A[0].asDouble()));
    return true;
  case Builtin::Min:
    if (A[0].isInt())
      Out = Value::makeInt(std::min(A[0].asInt(), A[1].asInt()));
    else
      Out = Value::makeDouble(std::min(A[0].asDouble(), A[1].asDouble()));
    return true;
  case Builtin::Max:
    if (A[0].isInt())
      Out = Value::makeInt(std::max(A[0].asInt(), A[1].asInt()));
    else
      Out = Value::makeDouble(std::max(A[0].asDouble(), A[1].asDouble()));
    return true;
  case Builtin::Pow:
    Out = Value::makeDouble(std::pow(A[0].asDouble(), A[1].asDouble()));
    return true;
  case Builtin::ToInt:
    Out = Value::makeInt(static_cast<int64_t>(A[0].asDouble()));
    return true;
  case Builtin::ToDouble:
    Out = Value::makeDouble(static_cast<double>(A[0].asInt()));
    return true;
  case Builtin::RandInt: {
    int64_t Bound = A[0].asInt();
    if (Bound <= 0)
      return fail(C->loc(), "randInt bound must be positive");
    Out = Value::makeInt(
        static_cast<int64_t>(Rand.nextBelow(static_cast<uint64_t>(Bound))));
    return true;
  }
  case Builtin::RandSeed:
    Rand = Rng(static_cast<uint64_t>(A[0].asInt()));
    return true;
  case Builtin::Arg: {
    int64_t I = A[0].asInt();
    Out = Value::makeInt(I >= 0 && static_cast<size_t>(I) < Opts.Args.size()
                             ? Opts.Args[static_cast<size_t>(I)]
                             : 0);
    return true;
  }
  case Builtin::Force: {
    if (InIsolated)
      return fail(C->loc(), "force is not allowed inside an isolated section");
    uint32_t Fid = A[0].asFuture();
    assert(Fid < FutureValues.size() &&
           "depth-first execution completes futures before any force");
    if (Mon)
      Mon->onForce(Fid);
    Out = FutureValues[Fid];
    return true;
  }
  }
  return fail(C->loc(), "unknown builtin");
}

ExecResult tdr::runProgram(const Program &P, ExecOptions Opts) {
  Interpreter I(P, std::move(Opts));
  return I.run();
}
