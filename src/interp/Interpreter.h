//===- Interpreter.h - Sequential HJ-mini interpreter ------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instrumented sequential interpreter. It executes a (sema-checked)
/// HJ-mini program in the canonical depth-first order — async bodies run to
/// completion at their spawn point with a by-value snapshot of the parent
/// frame, exactly the execution order the ESP-bags algorithm requires
/// (paper §4.1) — and streams structure/access events to an ExecMonitor.
///
/// Run with no monitor, the same interpreter provides the "HJ-Seq"
/// sequential-time measurements: async/finish contribute nothing but their
/// bodies, so the execution behaves as the serial elision.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_INTERP_INTERPRETER_H
#define TDR_INTERP_INTERPRETER_H

#include "interp/Monitor.h"
#include "interp/Value.h"
#include "support/Rng.h"
#include "support/SourceLoc.h"

#include <deque>
#include <string>
#include <vector>

namespace tdr {

class AssignStmt;
class CallExpr;
class Expr;
class Program;
class Type;
enum class BinaryOp;

namespace obs {
class Counter;
} // namespace obs

/// Knobs for one execution.
struct ExecOptions {
  /// Values returned by the arg(i) builtin; out-of-range reads are 0.
  std::vector<int64_t> Args;
  /// Seed for the randInt builtin.
  uint64_t Seed = 12345;
  /// Abort execution after this many work units (guards runaway loops).
  uint64_t WorkLimit = 4000000000ull;
  /// Abort when user-function call depth exceeds this.
  unsigned MaxCallDepth = 4000;
  /// Receives instrumentation events; may be null.
  ExecMonitor *Monitor = nullptr;
};

/// Outcome of one execution.
struct ExecResult {
  bool Ok = false;
  std::string Error;      ///< runtime error message when !Ok
  SourceLoc ErrorLoc;     ///< location of the failing construct
  std::string Output;     ///< everything print() produced
  uint64_t TotalWork = 0; ///< abstract work units executed
};

/// Executes one HJ-mini program sequentially.
class Interpreter {
public:
  Interpreter(const Program &P, ExecOptions Opts);
  ~Interpreter();

  /// Runs global initializers then main. Call at most once per instance.
  ExecResult run();

private:
  enum class Flow { Normal, Return, Error };

  /// Executes \p S. \p Owner is the statement that owns whatever S-DPST
  /// children this statement produces in the current container: S itself
  /// when S sits directly in a block, or the enclosing structured
  /// statement when S is a non-block body.
  Flow execStmt(const Stmt *S, const Stmt *Owner);
  Flow execBlock(const BlockStmt *B, ScopeKind K, const Stmt *Owner,
                 const FuncDecl *Callee);
  /// Executes a structured statement's body: blocks get a scope node,
  /// other statements execute inline under \p Owner.
  Flow execBody(const Stmt *Body, const Stmt *Owner);
  Flow execAssign(const AssignStmt *A);

  bool evalExpr(const Expr *E, Value &Out);
  bool evalCall(const CallExpr *C, Value &Out);
  bool evalBuiltin(const CallExpr *C, Value &Out);
  bool applyBinary(BinaryOp Op, const Value &L, const Value &R, Value &Out,
                   SourceLoc Loc);
  bool allocArray(const Type *ElemTy, const std::vector<int64_t> &Dims,
                  size_t Level, Value &Out, SourceLoc Loc);
  /// Bounds-checked element access; returns null after reporting a failure.
  ArrayObj *checkedArray(const Value &BaseV, int64_t Index, SourceLoc Loc);

  /// Marks a step point: attributes subsequent work/accesses to \p Owner.
  void stepPoint(const Stmt *Owner) {
    CurOwner = Owner;
    if (Mon)
      Mon->onStepPoint(Owner);
  }

  /// Reports a runtime error; always returns false.
  bool fail(SourceLoc Loc, std::string Msg);
  bool addWork(uint64_t Units, SourceLoc Loc);

  struct Frame {
    std::vector<Value> Slots;
  };

  const Program &P;
  ExecOptions Opts;
  ExecMonitor *Mon;
  // Per-event instruments, bound at construction (see obs/Metrics.h).
  obs::Counter *CAsyncs;
  obs::Counter *CFinishes;
  obs::Counter *CFutures;
  obs::Counter *CIsolated;

  std::vector<Value> Globals;
  std::deque<ArrayObj> Heap;
  uint32_t NextArrayId = 1;

  std::vector<Frame> Stack;
  const Stmt *CurOwner = nullptr;

  // Future value store, indexed by dynamic future id. The canonical
  // depth-first execution evaluates a future's initializer at the
  // declaration, so the value is always present when forced.
  std::vector<Value> FutureValues;
  uint32_t NextFutureId = 0;
  // Dynamic isolation guard: sema bans spawns lexically inside isolated,
  // but a called function body can still reach one.
  bool InIsolated = false;

  // Return-value channel for the innermost active call.
  Value RetVal;
  bool HasRetVal = false;

  Rng Rand;
  std::string Output;
  std::string Error;
  SourceLoc ErrorLoc;
  uint64_t Work = 0;
  bool Ran = false;
};

/// Convenience wrapper: construct, run, return the result.
ExecResult runProgram(const Program &P, ExecOptions Opts = ExecOptions());

} // namespace tdr

#endif // TDR_INTERP_INTERPRETER_H
