//===- Monitor.h - Execution instrumentation hooks ---------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instrumentation contract between the sequential interpreter and the
/// analyses (paper §7: "Programs were instrumented for race detection,
/// S-DPST construction and computation of execution time of steps"). The
/// interpreter performs the canonical depth-first execution and reports:
///
///  * task structure — async/finish enter/exit;
///  * scope structure — block instances and call bodies, which become the
///    scope nodes of the S-DPST and enforce lexical-scope-respecting
///    repairs;
///  * step content — per-statement attribution, abstract work units (the
///    step execution times used by the finish placement cost model), and
///    every shared-memory read/write.
///
/// Every structure event carries the *owner statement*: the statement of
/// the innermost enclosing statement list that gave rise to the construct.
/// The static finish placement uses owners to map S-DPST positions back to
/// statement ranges.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_INTERP_MONITOR_H
#define TDR_INTERP_MONITOR_H

#include "interp/Value.h"

#include <cassert>
#include <cstdint>

namespace tdr {

class AsyncStmt;
class BlockStmt;
class FinishStmt;
class FuncDecl;
class FutureStmt;
class IsolatedStmt;
class Stmt;

/// Why a scope node exists.
enum class ScopeKind {
  Block, ///< a block statement instance (if/else branch, loop iteration
         ///  body, bare block)
  Call   ///< a user-function call body instance
};

/// Receives execution events from the sequential interpreter. All hooks
/// default to no-ops; analyses override what they need.
class ExecMonitor {
public:
  virtual ~ExecMonitor() = default;

  /// \p Owner is the statement owning this construct in the enclosing
  /// statement-list container (see file comment); null at the root level.
  virtual void onAsyncEnter(const AsyncStmt *S, const Stmt *Owner) {
    (void)S;
    (void)Owner;
  }
  virtual void onAsyncExit(const AsyncStmt *S) { (void)S; }
  virtual void onFinishEnter(const FinishStmt *S, const Stmt *Owner) {
    (void)S;
    (void)Owner;
  }
  virtual void onFinishExit(const FinishStmt *S) { (void)S; }

  /// A future task begins evaluating its initializer. \p Fid is the
  /// dynamic future id, assigned in execution order starting at 0; the
  /// same id identifies the future in onForce. Futures are implicitly
  /// finished: the exit joins the task into the enclosing context for the
  /// force-ordering bookkeeping, but siblings may still run in parallel
  /// with it until they force it.
  virtual void onFutureEnter(const FutureStmt *S, const Stmt *Owner,
                             uint32_t Fid) {
    (void)S;
    (void)Owner;
    (void)Fid;
  }
  virtual void onFutureExit(const FutureStmt *S) { (void)S; }

  /// The current step forces (joins with) future \p Fid. Happens within a
  /// step — not a structure event — and orders everything the future did
  /// before everything the forcing step does afterwards.
  virtual void onForce(uint32_t Fid) { (void)Fid; }

  /// An isolated (mutually exclusive) section begins/ends within the
  /// current task. Structure-wise isolation is invisible — accesses stay
  /// in the surrounding step tree position — but accesses between the
  /// enter/exit pair commute with other isolated accesses, which the
  /// detectors use to suppress race reports.
  virtual void onIsolatedEnter(const IsolatedStmt *S, const Stmt *Owner) {
    (void)S;
    (void)Owner;
  }
  virtual void onIsolatedExit(const IsolatedStmt *S) { (void)S; }

  /// \p Body is the statement list the scope executes (the block itself,
  /// or the callee body); \p Callee is non-null for Call scopes.
  virtual void onScopeEnter(ScopeKind K, const Stmt *Owner,
                            const BlockStmt *Body, const FuncDecl *Callee) {
    (void)K;
    (void)Owner;
    (void)Body;
    (void)Callee;
  }
  virtual void onScopeExit() {}

  /// A statement instance begins executing within the current step;
  /// \p Owner attributes it (and subsequent work/accesses) for the static
  /// placement maps.
  virtual void onStepPoint(const Stmt *Owner) { (void)Owner; }

  /// \p Units of abstract work performed by the current step.
  virtual void onWork(uint64_t Units) { (void)Units; }

  virtual void onRead(MemLoc L) { (void)L; }
  virtual void onWrite(MemLoc L) { (void)L; }

  /// Batched access check: \p N reads/writes of the consecutive element
  /// locations (L.Id, L.Index) .. (L.Id, L.Index + N - 1), in ascending
  /// index order — the dominant MRW pattern (array sweeps). Element
  /// locations only; semantically identical to N single calls, and the
  /// default does exactly that, so monitors that never override the run
  /// hooks observe the same event stream either way. Detectors override
  /// these to resolve one shadow page per 64-element span.
  virtual void onReadRun(MemLoc L, uint64_t N) {
    assert(L.K == MemLoc::Kind::Elem && "runs are element-plane only");
    for (uint64_t I = 0; I != N; ++I)
      onRead(MemLoc::elem(L.Id, L.Index + static_cast<int64_t>(I)));
  }
  virtual void onWriteRun(MemLoc L, uint64_t N) {
    assert(L.K == MemLoc::Kind::Elem && "runs are element-plane only");
    for (uint64_t I = 0; I != N; ++I)
      onWrite(MemLoc::elem(L.Id, L.Index + static_cast<int64_t>(I)));
  }
};

/// Fans events out to several monitors in order. A pipeline holding
/// exactly one monitor forwards every event through a cached pointer —
/// one branch and one virtual call, no vector iteration — so wrapping a
/// single (possibly fused, see Detect.cpp) monitor costs next to nothing
/// on the per-access hot path.
class MonitorPipeline : public ExecMonitor {
public:
  void add(ExecMonitor *M) {
    Monitors.push_back(M);
    Single = Monitors.size() == 1 ? M : nullptr;
  }

  /// The sole registered monitor, or null when the pipeline fans out.
  ExecMonitor *single() const { return Single; }

  void onAsyncEnter(const AsyncStmt *S, const Stmt *Owner) override {
    if (Single)
      return Single->onAsyncEnter(S, Owner);
    for (ExecMonitor *M : Monitors)
      M->onAsyncEnter(S, Owner);
  }
  void onAsyncExit(const AsyncStmt *S) override {
    if (Single)
      return Single->onAsyncExit(S);
    for (ExecMonitor *M : Monitors)
      M->onAsyncExit(S);
  }
  void onFinishEnter(const FinishStmt *S, const Stmt *Owner) override {
    if (Single)
      return Single->onFinishEnter(S, Owner);
    for (ExecMonitor *M : Monitors)
      M->onFinishEnter(S, Owner);
  }
  void onFinishExit(const FinishStmt *S) override {
    if (Single)
      return Single->onFinishExit(S);
    for (ExecMonitor *M : Monitors)
      M->onFinishExit(S);
  }
  void onFutureEnter(const FutureStmt *S, const Stmt *Owner,
                     uint32_t Fid) override {
    if (Single)
      return Single->onFutureEnter(S, Owner, Fid);
    for (ExecMonitor *M : Monitors)
      M->onFutureEnter(S, Owner, Fid);
  }
  void onFutureExit(const FutureStmt *S) override {
    if (Single)
      return Single->onFutureExit(S);
    for (ExecMonitor *M : Monitors)
      M->onFutureExit(S);
  }
  void onForce(uint32_t Fid) override {
    if (Single)
      return Single->onForce(Fid);
    for (ExecMonitor *M : Monitors)
      M->onForce(Fid);
  }
  void onIsolatedEnter(const IsolatedStmt *S, const Stmt *Owner) override {
    if (Single)
      return Single->onIsolatedEnter(S, Owner);
    for (ExecMonitor *M : Monitors)
      M->onIsolatedEnter(S, Owner);
  }
  void onIsolatedExit(const IsolatedStmt *S) override {
    if (Single)
      return Single->onIsolatedExit(S);
    for (ExecMonitor *M : Monitors)
      M->onIsolatedExit(S);
  }
  void onScopeEnter(ScopeKind K, const Stmt *Owner, const BlockStmt *Body,
                    const FuncDecl *Callee) override {
    if (Single)
      return Single->onScopeEnter(K, Owner, Body, Callee);
    for (ExecMonitor *M : Monitors)
      M->onScopeEnter(K, Owner, Body, Callee);
  }
  void onScopeExit() override {
    if (Single)
      return Single->onScopeExit();
    for (ExecMonitor *M : Monitors)
      M->onScopeExit();
  }
  void onStepPoint(const Stmt *Owner) override {
    if (Single)
      return Single->onStepPoint(Owner);
    for (ExecMonitor *M : Monitors)
      M->onStepPoint(Owner);
  }
  void onWork(uint64_t Units) override {
    if (Single)
      return Single->onWork(Units);
    for (ExecMonitor *M : Monitors)
      M->onWork(Units);
  }
  void onRead(MemLoc L) override {
    if (Single)
      return Single->onRead(L);
    for (ExecMonitor *M : Monitors)
      M->onRead(L);
  }
  void onWrite(MemLoc L) override {
    if (Single)
      return Single->onWrite(L);
    for (ExecMonitor *M : Monitors)
      M->onWrite(L);
  }
  void onReadRun(MemLoc L, uint64_t N) override {
    if (Single)
      return Single->onReadRun(L, N);
    for (ExecMonitor *M : Monitors)
      M->onReadRun(L, N);
  }
  void onWriteRun(MemLoc L, uint64_t N) override {
    if (Single)
      return Single->onWriteRun(L, N);
    for (ExecMonitor *M : Monitors)
      M->onWriteRun(L, N);
  }

private:
  std::vector<ExecMonitor *> Monitors;
  ExecMonitor *Single = nullptr;
};

} // namespace tdr

#endif // TDR_INTERP_MONITOR_H
