//===- EspBags.cpp --------------------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "race/EspBags.h"

#include "obs/Metrics.h"

using namespace tdr;

EspBagsDetector::EspBagsDetector(Mode M, DpstBuilder &Builder)
    : M(M), Builder(Builder), CChecks(&obs::counter("espbags.checks")),
      CReads(&obs::counter("espbags.reads")),
      CWrites(&obs::counter("espbags.writes")),
      CRaw(&obs::counter("race.reports_raw")),
      CPairs(&obs::counter("race.pairs")) {
  // The root task's S-bag and the implicit root finish's P-bag.
  TaskElems.push_back(Bags.makeSet(BagSet::Tag::S));
  FinishElems.push_back(Bags.makeSet(BagSet::Tag::P));
}

void EspBagsDetector::onAsyncEnter(const AsyncStmt *, const Stmt *) {
  TaskElems.push_back(Bags.makeSet(BagSet::Tag::S));
}

void EspBagsDetector::onAsyncExit(const AsyncStmt *) {
  uint32_t TaskElem = TaskElems.back();
  TaskElems.pop_back();
  // The completed task's S-bag joins the P-bag of the innermost enclosing
  // finish: it is now parallel to everything the parent does until that
  // finish joins it.
  Bags.merge(FinishElems.back(), TaskElem, BagSet::Tag::P);
}

void EspBagsDetector::onFinishEnter(const FinishStmt *, const Stmt *) {
  FinishElems.push_back(Bags.makeSet(BagSet::Tag::P));
}

void EspBagsDetector::onFinishExit(const FinishStmt *) {
  uint32_t FinishElem = FinishElems.back();
  FinishElems.pop_back();
  // Everything the finish joined is now serialized before the parent task.
  Bags.merge(TaskElems.back(), FinishElem, BagSet::Tag::S);
}

void EspBagsDetector::recordRace(const Access &Prev, AccessKind PrevKind,
                                 DpstNode *CurStep, AccessKind CurKind,
                                 MemLoc L) {
  CRaw->inc();
  ++Report.RawCount;
  uint64_t Key = (static_cast<uint64_t>(Prev.Step->id()) << 32) |
                 CurStep->id();
  if (!SeenPairs.insert(Key).second)
    return;
  CPairs->inc();
  RacePair R;
  R.Src = Prev.Step;
  R.Snk = CurStep;
  R.Loc = L;
  R.SrcKind = PrevKind;
  R.SnkKind = CurKind;
  Report.Pairs.push_back(R);
}

void EspBagsDetector::onRead(MemLoc L) {
  DpstNode *Step = Builder.currentStep();
  Shadow &S = ShadowMem[L];
  CReads->inc();
  CChecks->inc(S.Writers.size());

  for (const Access &W : S.Writers)
    if (W.Step != Step && Bags.isP(W.Elem))
      recordRace(W, AccessKind::Write, Step, AccessKind::Read, L);

  if (M == Mode::SRW) {
    // Keep a single reader; replace it only when it is serialized with the
    // current step (a parallel reader is the more dangerous witness for
    // future writes).
    if (S.Readers.empty())
      S.Readers.push_back(Access{curTaskElem(), Step});
    else if (!Bags.isP(S.Readers[0].Elem))
      S.Readers[0] = Access{curTaskElem(), Step};
    return;
  }
  // MRW: track every reader, deduplicating per step (accesses between two
  // step boundaries come from one step, so checking the tail suffices).
  if (S.Readers.empty() || S.Readers.back().Step != Step)
    S.Readers.push_back(Access{curTaskElem(), Step});
}

void EspBagsDetector::onWrite(MemLoc L) {
  DpstNode *Step = Builder.currentStep();
  Shadow &S = ShadowMem[L];
  CWrites->inc();
  CChecks->inc(S.Writers.size() + S.Readers.size());

  for (const Access &W : S.Writers)
    if (W.Step != Step && Bags.isP(W.Elem))
      recordRace(W, AccessKind::Write, Step, AccessKind::Write, L);
  for (const Access &R : S.Readers)
    if (R.Step != Step && Bags.isP(R.Elem))
      recordRace(R, AccessKind::Read, Step, AccessKind::Write, L);

  if (M == Mode::SRW) {
    if (S.Writers.empty())
      S.Writers.push_back(Access{curTaskElem(), Step});
    else
      S.Writers[0] = Access{curTaskElem(), Step};
    return;
  }
  if (S.Writers.empty() || S.Writers.back().Step != Step)
    S.Writers.push_back(Access{curTaskElem(), Step});
}

RaceReport EspBagsDetector::takeReport() { return std::move(Report); }
