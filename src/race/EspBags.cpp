//===- EspBags.cpp --------------------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "race/EspBags.h"

#include "obs/Metrics.h"

using namespace tdr;

EspBagsDetector::EspBagsDetector(Mode M, DpstBuilder &Builder)
    : M(M), Builder(Builder), CChecks(&obs::counter("espbags.checks")),
      CReads(&obs::counter("espbags.reads")),
      CWrites(&obs::counter("espbags.writes")),
      CRaw(&obs::counter("race.reports_raw")),
      CPairs(&obs::counter("race.pairs")) {
  // The root task's S-bag and the implicit root finish's P-bag.
  TaskElems.push_back(Bags.makeSet(BagSet::Tag::S));
  FinishElems.push_back(Bags.makeSet(BagSet::Tag::P));
  CurElem = TaskElems.back();
}

void EspBagsDetector::onAsyncEnter(const AsyncStmt *, const Stmt *) {
  CachedStep = nullptr;
  TaskElems.push_back(Bags.makeSet(BagSet::Tag::S));
  CurElem = TaskElems.back();
}

void EspBagsDetector::onAsyncExit(const AsyncStmt *) {
  CachedStep = nullptr;
  uint32_t TaskElem = TaskElems.back();
  TaskElems.pop_back();
  CurElem = TaskElems.back();
  // The completed task's S-bag joins the P-bag of the innermost enclosing
  // finish: it is now parallel to everything the parent does until that
  // finish joins it.
  Bags.merge(FinishElems.back(), TaskElem, BagSet::Tag::P);
}

void EspBagsDetector::onFinishEnter(const FinishStmt *, const Stmt *) {
  CachedStep = nullptr;
  FinishElems.push_back(Bags.makeSet(BagSet::Tag::P));
}

void EspBagsDetector::onFinishExit(const FinishStmt *) {
  CachedStep = nullptr;
  uint32_t FinishElem = FinishElems.back();
  FinishElems.pop_back();
  // Everything the finish joined is now serialized before the parent task.
  Bags.merge(TaskElems.back(), FinishElem, BagSet::Tag::S);
}

void EspBagsDetector::onFutureEnter(const FutureStmt *, const Stmt *,
                                    uint32_t) {
  CachedStep = nullptr;
  SawFuture = true;
  // A future is an async (its body runs in parallel with the continuation
  // until joined) fused with an implicit finish over its initializer.
  TaskElems.push_back(Bags.makeSet(BagSet::Tag::S));
  CurElem = TaskElems.back();
  FinishElems.push_back(Bags.makeSet(BagSet::Tag::P));
}

void EspBagsDetector::onFutureExit(const FutureStmt *) {
  CachedStep = nullptr;
  // Implicit finish exit: anything the initializer spawned is serialized
  // behind the future task itself.
  uint32_t FinishElem = FinishElems.back();
  FinishElems.pop_back();
  Bags.merge(TaskElems.back(), FinishElem, BagSet::Tag::S);
  // Then, like an async, the future joins the enclosing finish's P-bag:
  // parallel to the continuation until forced or joined. The force edge is
  // NOT representable as a bag merge (the element is shared with the whole
  // P-bag), so recordRace confirms bag-positive pairs against the S-DPST
  // once futures are in play.
  uint32_t TaskElem = TaskElems.back();
  TaskElems.pop_back();
  CurElem = TaskElems.back();
  Bags.merge(FinishElems.back(), TaskElem, BagSet::Tag::P);
}

void EspBagsDetector::onForce(uint32_t) {
  // The builder closes the current step (accesses after the force carry
  // the enlarged forced-set); drop the cache so it is re-resolved.
  CachedStep = nullptr;
}

void EspBagsDetector::onIsolatedEnter(const IsolatedStmt *, const Stmt *) {
  CachedStep = nullptr;
}

void EspBagsDetector::onIsolatedExit(const IsolatedStmt *) {
  CachedStep = nullptr;
}

void EspBagsDetector::onScopeEnter(ScopeKind, const Stmt *, const BlockStmt *,
                                   const FuncDecl *) {
  // Scope boundaries close the builder's current step; drop the cache so
  // the next access re-resolves it.
  CachedStep = nullptr;
}

void EspBagsDetector::onScopeExit() { CachedStep = nullptr; }

void EspBagsDetector::recordRace(const Access &Prev, AccessKind PrevKind,
                                 DpstNode *CurStep, AccessKind CurKind,
                                 MemLoc L) {
  // Isolated steps commute under mutual exclusion; the shared S-DPST
  // carries the per-step flag. Suppressed observations bump no counters,
  // so every backend applying the same two checks stays byte-identical.
  if (Dpst::bothIsolated(Prev.Step, CurStep))
    return;
  // With futures in play the bags over-approximate (a force join edge is
  // not a bag merge), so confirm against the S-DPST before recording.
  if (SawFuture && !Builder.tree().mayHappenInParallel(Prev.Step, CurStep))
    return;
  CRaw->inc();
  ++Report.RawCount;
  auto [It, Inserted] = SeenPairs.try_emplace(
      packRacePairKey(Prev.Step->id(), CurStep->id()),
      static_cast<uint32_t>(Report.Pairs.size()));
  if (!Inserted) {
    RacePair &Kept = Report.Pairs[It->second];
    if (witnessPreferred(Kept, L, PrevKind, CurKind)) {
      Kept.Loc = L;
      Kept.SrcKind = PrevKind;
      Kept.SnkKind = CurKind;
    }
    return;
  }
  CPairs->inc();
  RacePair R;
  R.Src = Prev.Step;
  R.Snk = CurStep;
  R.Loc = L;
  R.SrcKind = PrevKind;
  R.SnkKind = CurKind;
  Report.Pairs.push_back(R);
}

void EspBagsDetector::compactReaders(Shadow &S) {
  // Entries whose bags have merged share one union-find representative and
  // — since bags only ever merge — will be classified identically (S vs P)
  // against every future access. Keep the first entry per representative
  // as the surviving race witness for that task group.
  RootScratch.clear();
  uint32_t Kept = 0;
  for (uint32_t I = 0; I != S.Readers.size(); ++I) {
    uint32_t Root = Bags.find(S.Readers[I].Elem);
    bool Seen = false;
    for (uint32_t R : RootScratch)
      if (R == Root) {
        Seen = true;
        break;
      }
    if (Seen)
      continue;
    RootScratch.push_back(Root);
    S.Readers[Kept++] = S.Readers[I];
  }
  S.Readers.truncate(Kept);
  // Amortize: only re-compact once the list doubles past this point, so a
  // location with many live representatives is not rescanned per access.
  uint32_t Doubled = 2 * (Kept < CompactThreshold ? CompactThreshold : Kept);
  S.CompactLimit = Doubled;
}

void EspBagsDetector::onRead(MemLoc L) {
  CReads->inc();
  readSlot(Shadows.slot(L), curStep(), L);
}

void EspBagsDetector::onWrite(MemLoc L) {
  CWrites->inc();
  writeSlot(Shadows.slot(L), curStep(), L);
}

void EspBagsDetector::onReadRun(MemLoc L, uint64_t N) {
  CReads->inc(N);
  DpstNode *Step = curStep();
  Shadows.forRun(L, N,
                 [&](Shadow &S, MemLoc At) { readSlot(S, Step, At); });
}

void EspBagsDetector::onWriteRun(MemLoc L, uint64_t N) {
  CWrites->inc(N);
  DpstNode *Step = curStep();
  Shadows.forRun(L, N,
                 [&](Shadow &S, MemLoc At) { writeSlot(S, Step, At); });
}

void EspBagsDetector::readSlot(Shadow &S, DpstNode *Step, MemLoc L) {
  CChecks->inc(S.Writers.size());

  for (const Access &W : S.Writers)
    if (W.Step != Step && Bags.isP(W.Elem))
      recordRace(W, AccessKind::Write, Step, AccessKind::Read, L);

  if (M == Mode::SRW) {
    // Keep a single reader; replace it only when it is serialized with the
    // current step (a parallel reader is the more dangerous witness for
    // future writes).
    if (S.Readers.empty())
      S.Readers.push_back(Access{curTaskElem(), Step});
    else if (!Bags.isP(S.Readers[0].Elem))
      S.Readers[0] = Access{curTaskElem(), Step};
    return;
  }
  // MRW: track every reader, deduplicating per step (accesses between two
  // step boundaries come from one step, so checking the tail suffices).
  if (S.Readers.empty() || S.Readers.back().Step != Step)
    S.Readers.push_back(Access{curTaskElem(), Step});
  if (CompactThreshold &&
      S.Readers.size() >=
          (S.CompactLimit > CompactThreshold ? S.CompactLimit
                                             : CompactThreshold))
    compactReaders(S);
}

void EspBagsDetector::writeSlot(Shadow &S, DpstNode *Step, MemLoc L) {
  CChecks->inc(S.Writers.size() + S.Readers.size());

  for (const Access &W : S.Writers)
    if (W.Step != Step && Bags.isP(W.Elem))
      recordRace(W, AccessKind::Write, Step, AccessKind::Write, L);
  for (const Access &R : S.Readers)
    if (R.Step != Step && Bags.isP(R.Elem))
      recordRace(R, AccessKind::Read, Step, AccessKind::Write, L);

  if (M == Mode::SRW) {
    if (S.Writers.empty())
      S.Writers.push_back(Access{curTaskElem(), Step});
    else
      S.Writers[0] = Access{curTaskElem(), Step};
    return;
  }
  if (S.Writers.empty() || S.Writers.back().Step != Step)
    S.Writers.push_back(Access{curTaskElem(), Step});
}

RaceReport EspBagsDetector::takeReport() { return std::move(Report); }
