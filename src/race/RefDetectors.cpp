//===- RefDetectors.cpp ---------------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// Frozen pre-fast-path detector implementations; see RefDetectors.h.
//
//===----------------------------------------------------------------------===//

#include "race/RefDetectors.h"

using namespace tdr;

//===----------------------------------------------------------------------===//
// RefEspBagsDetector — verbatim pre-flat-shadow ESP-bags
//===----------------------------------------------------------------------===//

RefEspBagsDetector::RefEspBagsDetector(Mode M, DpstBuilder &Builder)
    : M(M), Builder(Builder) {
  TaskElems.push_back(Bags.makeSet(BagSet::Tag::S));
  FinishElems.push_back(Bags.makeSet(BagSet::Tag::P));
}

void RefEspBagsDetector::onAsyncEnter(const AsyncStmt *, const Stmt *) {
  TaskElems.push_back(Bags.makeSet(BagSet::Tag::S));
}

void RefEspBagsDetector::onAsyncExit(const AsyncStmt *) {
  uint32_t TaskElem = TaskElems.back();
  TaskElems.pop_back();
  Bags.merge(FinishElems.back(), TaskElem, BagSet::Tag::P);
}

void RefEspBagsDetector::onFinishEnter(const FinishStmt *, const Stmt *) {
  FinishElems.push_back(Bags.makeSet(BagSet::Tag::P));
}

void RefEspBagsDetector::onFinishExit(const FinishStmt *) {
  uint32_t FinishElem = FinishElems.back();
  FinishElems.pop_back();
  Bags.merge(TaskElems.back(), FinishElem, BagSet::Tag::S);
}

void RefEspBagsDetector::recordRace(const Access &Prev, AccessKind PrevKind,
                                    DpstNode *CurStep, AccessKind CurKind,
                                    MemLoc L) {
  ++Report.RawCount;
  uint64_t Key =
      (static_cast<uint64_t>(Prev.Step->id()) << 32) | CurStep->id();
  auto [It, Inserted] =
      SeenPairs.try_emplace(Key, static_cast<uint32_t>(Report.Pairs.size()));
  if (!Inserted) {
    RacePair &Kept = Report.Pairs[It->second];
    if (witnessPreferred(Kept, L, PrevKind, CurKind)) {
      Kept.Loc = L;
      Kept.SrcKind = PrevKind;
      Kept.SnkKind = CurKind;
    }
    return;
  }
  RacePair R;
  R.Src = Prev.Step;
  R.Snk = CurStep;
  R.Loc = L;
  R.SrcKind = PrevKind;
  R.SnkKind = CurKind;
  Report.Pairs.push_back(R);
}

void RefEspBagsDetector::onRead(MemLoc L) {
  DpstNode *Step = Builder.currentStep();
  Shadow &S = ShadowMem[L];

  for (const Access &W : S.Writers)
    if (W.Step != Step && Bags.isP(W.Elem))
      recordRace(W, AccessKind::Write, Step, AccessKind::Read, L);

  if (M == Mode::SRW) {
    if (S.Readers.empty())
      S.Readers.push_back(Access{curTaskElem(), Step});
    else if (!Bags.isP(S.Readers[0].Elem))
      S.Readers[0] = Access{curTaskElem(), Step};
    return;
  }
  if (S.Readers.empty() || S.Readers.back().Step != Step)
    S.Readers.push_back(Access{curTaskElem(), Step});
}

void RefEspBagsDetector::onWrite(MemLoc L) {
  DpstNode *Step = Builder.currentStep();
  Shadow &S = ShadowMem[L];

  for (const Access &W : S.Writers)
    if (W.Step != Step && Bags.isP(W.Elem))
      recordRace(W, AccessKind::Write, Step, AccessKind::Write, L);
  for (const Access &R : S.Readers)
    if (R.Step != Step && Bags.isP(R.Elem))
      recordRace(R, AccessKind::Read, Step, AccessKind::Write, L);

  if (M == Mode::SRW) {
    if (S.Writers.empty())
      S.Writers.push_back(Access{curTaskElem(), Step});
    else
      S.Writers[0] = Access{curTaskElem(), Step};
    return;
  }
  if (S.Writers.empty() || S.Writers.back().Step != Step)
    S.Writers.push_back(Access{curTaskElem(), Step});
}

//===----------------------------------------------------------------------===//
// RefOracleDetector — verbatim pre-flat-shadow Theorem-1 oracle
//===----------------------------------------------------------------------===//

void RefOracleDetector::check(const std::vector<DpstNode *> &Prev,
                              AccessKind PrevKind, DpstNode *Step,
                              AccessKind CurKind, MemLoc L) {
  for (DpstNode *P : Prev) {
    if (P == Step || !Tree.mayHappenInParallel(P, Step))
      continue;
    ++Report.RawCount;
    uint64_t Key = (static_cast<uint64_t>(P->id()) << 32) | Step->id();
    auto [It, Inserted] =
        SeenPairs.try_emplace(Key, static_cast<uint32_t>(Report.Pairs.size()));
    if (!Inserted) {
      RacePair &Kept = Report.Pairs[It->second];
      if (witnessPreferred(Kept, L, PrevKind, CurKind)) {
        Kept.Loc = L;
        Kept.SrcKind = PrevKind;
        Kept.SnkKind = CurKind;
      }
      continue;
    }
    RacePair R;
    R.Src = P;
    R.Snk = Step;
    R.Loc = L;
    R.SrcKind = PrevKind;
    R.SnkKind = CurKind;
    Report.Pairs.push_back(R);
  }
}

void RefOracleDetector::onRead(MemLoc L) {
  DpstNode *Step = Builder.currentStep();
  Shadow &S = ShadowMem[L];
  check(S.Writers, AccessKind::Write, Step, AccessKind::Read, L);
  if (S.Readers.empty() || S.Readers.back() != Step)
    S.Readers.push_back(Step);
}

void RefOracleDetector::onWrite(MemLoc L) {
  DpstNode *Step = Builder.currentStep();
  Shadow &S = ShadowMem[L];
  check(S.Writers, AccessKind::Write, Step, AccessKind::Write, L);
  check(S.Readers, AccessKind::Read, Step, AccessKind::Write, L);
  if (S.Writers.empty() || S.Writers.back() != Step)
    S.Writers.push_back(Step);
}
