//===- Detect.h - One-call race detection driver -----------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wires the sequential interpreter, the S-DPST builder, and a race
/// detector into the single "instrument and execute" stage of the tool
/// (paper Figure 6, first box).
///
/// Three production detection backends answer the happens-before query:
/// ESP-bags (the paper's algorithm; see EspBags.h), the vector-clock
/// detector (see VectorClockDetector.h), and the partitioned parallel
/// detector (see ParDetect.h), which chunks a recorded event log across
/// the work-stealing Runtime pool. All produce identical race reports for
/// identical event streams, so the backend is a pure performance choice —
/// selected per call through DetectOptions::Backend, or process-wide
/// through the TDR_BACKEND environment variable ("espbags" | "vc" |
/// "par"), which the Mode-only convenience overloads consult.
///
/// TDR_BACKEND_CHECK=1 in the environment turns every detection into a
/// differential: the primary run's event stream is replayed through a
/// *different* backend (ESP-bags unless it is the primary, then vector
/// clocks; off the metrics books, so counter-exact tests are unaffected)
/// and the two reports must render byte-identically, mirroring the
/// TDR_REPLAY_CHECK mechanism for replayed-vs-fresh runs.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_RACE_DETECT_H
#define TDR_RACE_DETECT_H

#include "interp/Interpreter.h"
#include "race/EspBags.h"
#include "race/VectorClockDetector.h"
#include "trace/Replay.h"

#include <memory>
#include <string>
#include <string_view>

namespace tdr {

/// Fuses the S-DPST builder and a detector into ONE monitor: the
/// interpreter pays a single virtual dispatch per event, and the inner
/// builder/detector calls are devirtualized (statically qualified). This
/// is the detection fast path — when the caller supplies no extra monitor,
/// detectRaces hands this object to the interpreter directly instead of
/// routing every access through a MonitorPipeline fan-out.
template <typename DetectorT> class FusedDetectMonitor final : public ExecMonitor {
public:
  FusedDetectMonitor(DpstBuilder &B, DetectorT &D) : B(B), D(D) {}

  void onAsyncEnter(const AsyncStmt *S, const Stmt *Owner) override {
    B.DpstBuilder::onAsyncEnter(S, Owner);
    D.DetectorT::onAsyncEnter(S, Owner);
  }
  void onAsyncExit(const AsyncStmt *S) override {
    B.DpstBuilder::onAsyncExit(S);
    D.DetectorT::onAsyncExit(S);
  }
  void onFinishEnter(const FinishStmt *S, const Stmt *Owner) override {
    B.DpstBuilder::onFinishEnter(S, Owner);
    D.DetectorT::onFinishEnter(S, Owner);
  }
  void onFinishExit(const FinishStmt *S) override {
    B.DpstBuilder::onFinishExit(S);
    D.DetectorT::onFinishExit(S);
  }
  void onFutureEnter(const FutureStmt *S, const Stmt *Owner,
                     uint32_t Fid) override {
    B.DpstBuilder::onFutureEnter(S, Owner, Fid);
    D.DetectorT::onFutureEnter(S, Owner, Fid);
  }
  void onFutureExit(const FutureStmt *S) override {
    B.DpstBuilder::onFutureExit(S);
    D.DetectorT::onFutureExit(S);
  }
  void onForce(uint32_t Fid) override {
    B.DpstBuilder::onForce(Fid);
    D.DetectorT::onForce(Fid);
  }
  void onIsolatedEnter(const IsolatedStmt *S, const Stmt *Owner) override {
    B.DpstBuilder::onIsolatedEnter(S, Owner);
    D.DetectorT::onIsolatedEnter(S, Owner);
  }
  void onIsolatedExit(const IsolatedStmt *S) override {
    B.DpstBuilder::onIsolatedExit(S);
    D.DetectorT::onIsolatedExit(S);
  }
  void onScopeEnter(ScopeKind K, const Stmt *Owner, const BlockStmt *Body,
                    const FuncDecl *Callee) override {
    B.DpstBuilder::onScopeEnter(K, Owner, Body, Callee);
    D.DetectorT::onScopeEnter(K, Owner, Body, Callee);
  }
  void onScopeExit() override {
    B.DpstBuilder::onScopeExit();
    D.DetectorT::onScopeExit();
  }
  void onStepPoint(const Stmt *Owner) override {
    B.DpstBuilder::onStepPoint(Owner);
    D.DetectorT::onStepPoint(Owner);
  }
  void onWork(uint64_t Units) override {
    B.DpstBuilder::onWork(Units);
    D.DetectorT::onWork(Units);
  }
  // The builder ignores accesses (steps are created lazily by the
  // detector's currentStep() pull), so reads/writes go straight to the
  // detector. The batched run entry points forward statically as well, so
  // a detector's page-sweep fast path (see ShadowMemory::forRun) is
  // reached without any per-element virtual dispatch; detectors without an
  // override inherit the ExecMonitor unrolling default.
  void onRead(MemLoc L) override { D.DetectorT::onRead(L); }
  void onWrite(MemLoc L) override { D.DetectorT::onWrite(L); }
  void onReadRun(MemLoc L, uint64_t N) override {
    D.DetectorT::onReadRun(L, N);
  }
  void onWriteRun(MemLoc L, uint64_t N) override {
    D.DetectorT::onWriteRun(L, N);
  }

private:
  DpstBuilder &B;
  DetectorT &D;
};

/// Which algorithm answers the happens-before query of a detection run.
enum class DetectBackend : uint8_t {
  EspBags,     ///< union-find S/P bags (EspBagsDetector)
  VectorClock, ///< COW bitset clocks (VectorClockDetector)
  Par,         ///< partitioned parallel log detection (ParDetect.h)
};

/// Parses a backend name ("espbags" | "vc" | "par"). Returns false on
/// anything else, leaving \p Out untouched.
bool parseDetectBackend(std::string_view Name, DetectBackend &Out);

/// The canonical spelling parseDetectBackend accepts.
const char *detectBackendName(DetectBackend B);

/// The process-default backend: TDR_BACKEND in the environment, parsed
/// with parseDetectBackend; EspBags when unset or unparsable (tools that
/// surface flag errors validate the variable themselves — see tdr's
/// --backend handling).
DetectBackend defaultDetectBackend();

/// TDR_BACKEND_CHECK in the environment (non-empty, not "0"): run every
/// detection under both backends and require byte-identical reports.
bool backendCheckEnv();

/// Per-run detection configuration. Mode picks the shadow-memory policy
/// (SRW/MRW, paper §4.1); Backend picks the happens-before machinery.
struct DetectOptions {
  EspBagsDetector::Mode Mode = EspBagsDetector::Mode::MRW;
  DetectBackend Backend = DetectBackend::EspBags;
  /// Worker count for the par backend (0 = TDR_PAR_WORKERS, else a
  /// hardware-based default). Ignored by the sequential backends; the
  /// report is worker-count-independent by construction.
  unsigned ParWorkers = 0;
};

/// Everything one detection run produces.
struct Detection {
  std::unique_ptr<Dpst> Tree; ///< the S-DPST of the execution
  RaceReport Report;          ///< detected races (steps point into Tree)
  ExecResult Exec;            ///< program outcome (output, errors, work)
  /// Shadow-store footprint of the run (summed across shards for the par
  /// backend); published as the shadow.bytes_used / shadow.bytes_reserved
  /// gauges, so `tdr races/repair --metrics-json` reports both.
  size_t ShadowBytesUsed = 0;
  size_t ShadowBytesReserved = 0;

  bool ok() const { return Exec.Ok; }
};

/// Executes \p P sequentially with the given input, building the S-DPST
/// and detecting races with the configured backend and mode.
Detection detectRaces(const Program &P, const DetectOptions &Opts,
                      ExecOptions Exec = ExecOptions());

/// Mode-only convenience: detects with the process-default backend
/// (defaultDetectBackend(), i.e. TDR_BACKEND-selectable), so existing
/// call sites reroute wholesale when the environment picks a backend.
Detection detectRaces(const Program &P,
                      EspBagsDetector::Mode Mode = EspBagsDetector::Mode::MRW,
                      ExecOptions Exec = ExecOptions());

/// Like detectRaces but using the Theorem-1 oracle detector (slow;
/// validation only).
Detection detectRacesOracle(const Program &P, ExecOptions Exec = ExecOptions());

/// Log-backed detection: instead of interpreting, re-feeds the recorded
/// event stream in \p T through the builder + detector, remapped through
/// \p Plan (see trace/Replay.h) so the stream matches the current, edited
/// AST. Detection.Exec is the recorded outcome — valid because finish
/// insertion cannot change the sequential execution (serial elision).
Detection detectRaces(const Program &P, const DetectOptions &Opts,
                      const trace::InputTrace &T,
                      const trace::ReplayPlan &Plan);

/// Mode-only convenience for the log-backed overload; backend from
/// defaultDetectBackend().
Detection detectRaces(const Program &P, EspBagsDetector::Mode Mode,
                      const trace::InputTrace &T,
                      const trace::ReplayPlan &Plan);

/// Log-backed oracle detection (validation only).
Detection detectRacesOracle(const Program &P, const trace::InputTrace &T,
                            const trace::ReplayPlan &Plan);

/// Stable textual rendering of a report — step ids, locations, access
/// kinds, raw count — used for the byte-identical replayed-vs-fresh
/// comparison (TDR_REPLAY_CHECK) and the cross-backend comparison
/// (TDR_BACKEND_CHECK; mirrors the RefDetectors differential pattern).
/// Backend-agnostic: it reads only RaceReport, and node ids are creation-
/// order indices, so identical event streams render identically across
/// independent detection runs regardless of the backend that found the
/// races.
std::string renderRaceReportKey(const RaceReport &R);

} // namespace tdr

#endif // TDR_RACE_DETECT_H
