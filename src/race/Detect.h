//===- Detect.h - One-call race detection driver -----------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wires the sequential interpreter, the S-DPST builder, and an ESP-bags
/// detector into the single "instrument and execute" stage of the tool
/// (paper Figure 6, first box).
///
//===----------------------------------------------------------------------===//

#ifndef TDR_RACE_DETECT_H
#define TDR_RACE_DETECT_H

#include "interp/Interpreter.h"
#include "race/EspBags.h"

#include <memory>

namespace tdr {

/// Everything one detection run produces.
struct Detection {
  std::unique_ptr<Dpst> Tree; ///< the S-DPST of the execution
  RaceReport Report;          ///< detected races (steps point into Tree)
  ExecResult Exec;            ///< program outcome (output, errors, work)

  bool ok() const { return Exec.Ok; }
};

/// Executes \p P sequentially with the given input, building the S-DPST
/// and detecting races with the chosen ESP-bags variant.
Detection detectRaces(const Program &P,
                      EspBagsDetector::Mode Mode = EspBagsDetector::Mode::MRW,
                      ExecOptions Exec = ExecOptions());

/// Like detectRaces but using the Theorem-1 oracle detector (slow;
/// validation only).
Detection detectRacesOracle(const Program &P, ExecOptions Exec = ExecOptions());

} // namespace tdr

#endif // TDR_RACE_DETECT_H
