//===- EspBags.h - SRW and MRW ESP-bags race detection -----------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ESP-bags data race detector for async-finish programs (Raman et
/// al., FMSD 2012), in the two variants the paper compares (§4.1):
///
///  * SRW (Single Reader-Writer) — the original algorithm: one writer and
///    one reader tracked per memory location. Sound and complete for
///    *detecting whether* a race exists, but reports only a subset of all
///    racing pairs per run, so repair may need multiple iterations.
///  * MRW (Multiple Reader-Writer) — the paper's modification: all readers
///    and writers are tracked, so every racing step pair is reported in a
///    single run.
///
/// The algorithm piggybacks on the canonical sequential depth-first
/// execution. Each async task has an S-bag; each finish (plus the implicit
/// root finish) has a P-bag:
///
///  * async enter: the task's S-bag is the singleton {task};
///  * async exit:  its S-bag merges into the P-bag of the innermost
///    enclosing finish;
///  * finish exit: its P-bag merges into the S-bag of the executing task.
///
/// A recorded access races with the current step iff its task element is
/// currently in a P-tagged bag.
///
/// Detection is the inner loop of the whole repair pipeline, so the
/// per-access path is kept flat:
///
///  * shadow state lives in a paged direct-map ShadowMemory (no hashing);
///  * access lists are SmallVectors with inline capacity 2, so SRW and the
///    common MRW case never heap-allocate;
///  * the current step node and task element are cached across each step
///    (invalidated at structure-event boundaries) instead of being
///    re-derived per access;
///  * optionally, MRW reader lists past a threshold are compacted down to
///    one entry per BagSet representative (see setReaderCompaction).
///
//===----------------------------------------------------------------------===//

#ifndef TDR_RACE_ESPBAGS_H
#define TDR_RACE_ESPBAGS_H

#include "dpst/Dpst.h"
#include "race/BagSet.h"
#include "race/RaceReport.h"
#include "race/ShadowMemory.h"
#include "support/SmallVector.h"

#include <unordered_map>

namespace tdr {

namespace obs {
class Counter;
} // namespace obs

/// ESP-bags detector; install in the same monitor pipeline as (and after)
/// the DpstBuilder it reads the current step from.
class EspBagsDetector : public ExecMonitor {
public:
  enum class Mode { SRW, MRW };

  EspBagsDetector(Mode M, DpstBuilder &Builder);

  /// Enables MRW reader-list compaction: once a location's reader list
  /// reaches \p Threshold entries, it is deduplicated down to one entry
  /// per BagSet::find representative (union-find sets only ever merge, so
  /// same-representative entries stay classified identically forever).
  /// This bounds reader-list growth on read-heavy locations but reports
  /// only one racing pair per merged task group instead of all of them —
  /// an enumeration/throughput trade in the spirit of SRW vs MRW (§4.1).
  /// Off by default (0) so MRW keeps its report-every-pair guarantee.
  void setReaderCompaction(uint32_t Threshold) {
    CompactThreshold = Threshold;
  }

  void onAsyncEnter(const AsyncStmt *S, const Stmt *Owner) override;
  void onAsyncExit(const AsyncStmt *S) override;
  void onFinishEnter(const FinishStmt *S, const Stmt *Owner) override;
  void onFinishExit(const FinishStmt *S) override;
  void onFutureEnter(const FutureStmt *S, const Stmt *Owner,
                     uint32_t Fid) override;
  void onFutureExit(const FutureStmt *S) override;
  void onForce(uint32_t Fid) override;
  void onIsolatedEnter(const IsolatedStmt *S, const Stmt *Owner) override;
  void onIsolatedExit(const IsolatedStmt *S) override;
  void onScopeEnter(ScopeKind K, const Stmt *Owner, const BlockStmt *Body,
                    const FuncDecl *Callee) override;
  void onScopeExit() override;
  void onRead(MemLoc L) override;
  void onWrite(MemLoc L) override;
  void onReadRun(MemLoc L, uint64_t N) override;
  void onWriteRun(MemLoc L, uint64_t N) override;

  /// The detection outcome (valid once execution finished).
  RaceReport takeReport();

  /// Number of distinct racing pairs found so far.
  size_t numPairs() const { return Report.Pairs.size(); }

  /// Shadow-store footprint (see ShadowMemory accounting).
  size_t shadowBytesUsed() const { return Shadows.bytesUsed(); }
  size_t shadowBytesReserved() const { return Shadows.bytesReserved(); }

private:
  struct Access {
    uint32_t Elem = 0;
    DpstNode *Step = nullptr;
  };

  /// Per-location shadow state. SRW uses [0] of each vector. Inline
  /// capacity 2 keeps the hot path allocation-free until a location sees
  /// three parallel accessors.
  struct Shadow {
    /// Valid when all-zero, so shadow pages materialize with one memset
    /// (see IsAllZeroInit in PagedArray.h).
    static constexpr bool AllZeroInit = true;

    SmallVector<Access, 2> Writers;
    SmallVector<Access, 2> Readers;
    /// Next reader-list size that triggers compaction (amortization; see
    /// compactReaders).
    uint32_t CompactLimit = 0;
  };

  void recordRace(const Access &Prev, AccessKind PrevKind, DpstNode *CurStep,
                  AccessKind CurKind, MemLoc L);

  void compactReaders(Shadow &S);

  /// Per-slot check/update bodies shared by the single-access hooks and
  /// the batched run path, so both orders of entry produce byte-identical
  /// reports by construction.
  void readSlot(Shadow &S, DpstNode *Step, MemLoc L);
  void writeSlot(Shadow &S, DpstNode *Step, MemLoc L);

  /// The step receiving the current access; cached until the next
  /// structure event closes the step.
  DpstNode *curStep() {
    if (DpstNode *S = CachedStep)
      return S;
    return CachedStep = Builder.currentStep();
  }

  /// The executing task's S-bag element, cached across async boundaries.
  uint32_t curTaskElem() const { return CurElem; }

  Mode M;
  DpstBuilder &Builder;
  // Per-event instruments, bound at construction so each per-access hook
  // touches one relaxed atomic (see the scoping contract in obs/Metrics.h).
  obs::Counter *CChecks;
  obs::Counter *CReads;
  obs::Counter *CWrites;
  obs::Counter *CRaw;
  obs::Counter *CPairs;
  BagSet Bags;
  DpstNode *CachedStep = nullptr;    ///< step-boundary-cached current step
  bool SawFuture = false; ///< any future so far => confirm races via S-DPST
  uint32_t CurElem = 0;              ///< cached TaskElems.back()
  uint32_t CompactThreshold = 0;     ///< 0 = compaction off
  std::vector<uint32_t> TaskElems;   ///< S-bag element per active task
  std::vector<uint32_t> FinishElems; ///< P-bag element per active finish
  ShadowMemory<Shadow> Shadows;
  std::vector<uint32_t> RootScratch; ///< compaction scratch (reused)
  RaceReport Report;
  /// Pair key -> index into Report.Pairs, so duplicate observations can
  /// upgrade the kept witness (see witnessPreferred).
  std::unordered_map<uint64_t, uint32_t> SeenPairs;
};

} // namespace tdr

#endif // TDR_RACE_ESPBAGS_H
