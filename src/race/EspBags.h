//===- EspBags.h - SRW and MRW ESP-bags race detection -----------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ESP-bags data race detector for async-finish programs (Raman et
/// al., FMSD 2012), in the two variants the paper compares (§4.1):
///
///  * SRW (Single Reader-Writer) — the original algorithm: one writer and
///    one reader tracked per memory location. Sound and complete for
///    *detecting whether* a race exists, but reports only a subset of all
///    racing pairs per run, so repair may need multiple iterations.
///  * MRW (Multiple Reader-Writer) — the paper's modification: all readers
///    and writers are tracked, so every racing step pair is reported in a
///    single run.
///
/// The algorithm piggybacks on the canonical sequential depth-first
/// execution. Each async task has an S-bag; each finish (plus the implicit
/// root finish) has a P-bag:
///
///  * async enter: the task's S-bag is the singleton {task};
///  * async exit:  its S-bag merges into the P-bag of the innermost
///    enclosing finish;
///  * finish exit: its P-bag merges into the S-bag of the executing task.
///
/// A recorded access races with the current step iff its task element is
/// currently in a P-tagged bag.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_RACE_ESPBAGS_H
#define TDR_RACE_ESPBAGS_H

#include "dpst/Dpst.h"
#include "race/BagSet.h"
#include "race/RaceReport.h"

#include <unordered_map>
#include <unordered_set>

namespace tdr {

namespace obs {
class Counter;
} // namespace obs

/// ESP-bags detector; install in the same monitor pipeline as (and after)
/// the DpstBuilder it reads the current step from.
class EspBagsDetector : public ExecMonitor {
public:
  enum class Mode { SRW, MRW };

  EspBagsDetector(Mode M, DpstBuilder &Builder);

  void onAsyncEnter(const AsyncStmt *S, const Stmt *Owner) override;
  void onAsyncExit(const AsyncStmt *S) override;
  void onFinishEnter(const FinishStmt *S, const Stmt *Owner) override;
  void onFinishExit(const FinishStmt *S) override;
  void onRead(MemLoc L) override;
  void onWrite(MemLoc L) override;

  /// The detection outcome (valid once execution finished).
  RaceReport takeReport();

  /// Number of distinct racing pairs found so far.
  size_t numPairs() const { return Report.Pairs.size(); }

private:
  struct Access {
    uint32_t Elem = 0;
    DpstNode *Step = nullptr;
  };

  /// Per-location shadow state. SRW uses [0] of each vector.
  struct Shadow {
    std::vector<Access> Writers;
    std::vector<Access> Readers;
  };

  void recordRace(const Access &Prev, AccessKind PrevKind, DpstNode *CurStep,
                  AccessKind CurKind, MemLoc L);

  uint32_t curTaskElem() const { return TaskElems.back(); }

  Mode M;
  DpstBuilder &Builder;
  // Per-event instruments, bound at construction so each per-access hook
  // touches one relaxed atomic (see the scoping contract in obs/Metrics.h).
  obs::Counter *CChecks;
  obs::Counter *CReads;
  obs::Counter *CWrites;
  obs::Counter *CRaw;
  obs::Counter *CPairs;
  BagSet Bags;
  std::vector<uint32_t> TaskElems;   ///< S-bag element per active task
  std::vector<uint32_t> FinishElems; ///< P-bag element per active finish
  std::unordered_map<MemLoc, Shadow, MemLocHash> ShadowMem;
  RaceReport Report;
  std::unordered_set<uint64_t> SeenPairs;
};

} // namespace tdr

#endif // TDR_RACE_ESPBAGS_H
