//===- RefDetectors.h - Frozen map-based reference detectors -----*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-for-byte copies of the ESP-bags and Theorem-1 oracle detectors as
/// they existed before the flat-shadow fast path: shadow state lives in a
/// std::unordered_map<MemLoc, Shadow> and access lists are plain
/// std::vectors. Kept for two purposes only:
///
///  * differential tests assert the flat-shadow detectors report the
///    identical RaceReport as these baselines on random programs;
///  * bench_detector measures before/after throughput against them.
///
/// Do not use in the pipeline and do not "improve" them — their value is
/// being frozen.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_RACE_REFDETECTORS_H
#define TDR_RACE_REFDETECTORS_H

#include "dpst/Dpst.h"
#include "race/BagSet.h"
#include "race/EspBags.h"
#include "race/RaceReport.h"

#include <unordered_map>
#include <unordered_set>

namespace tdr {

/// Pre-fast-path ESP-bags detector (hash-map shadow, vector access lists,
/// per-access currentStep()/TaskElems.back() lookups).
class RefEspBagsDetector : public ExecMonitor {
public:
  using Mode = EspBagsDetector::Mode;

  RefEspBagsDetector(Mode M, DpstBuilder &Builder);

  void onAsyncEnter(const AsyncStmt *S, const Stmt *Owner) override;
  void onAsyncExit(const AsyncStmt *S) override;
  void onFinishEnter(const FinishStmt *S, const Stmt *Owner) override;
  void onFinishExit(const FinishStmt *S) override;
  void onRead(MemLoc L) override;
  void onWrite(MemLoc L) override;

  RaceReport takeReport() { return std::move(Report); }

private:
  struct Access {
    uint32_t Elem = 0;
    DpstNode *Step = nullptr;
  };

  struct Shadow {
    std::vector<Access> Writers;
    std::vector<Access> Readers;
  };

  void recordRace(const Access &Prev, AccessKind PrevKind, DpstNode *CurStep,
                  AccessKind CurKind, MemLoc L);

  uint32_t curTaskElem() const { return TaskElems.back(); }

  Mode M;
  DpstBuilder &Builder;
  BagSet Bags;
  std::vector<uint32_t> TaskElems;
  std::vector<uint32_t> FinishElems;
  std::unordered_map<MemLoc, Shadow, MemLocHash> ShadowMem;
  RaceReport Report;
  std::unordered_map<uint64_t, uint32_t> SeenPairs;
};

/// Pre-fast-path Theorem-1 oracle detector (hash-map shadow).
class RefOracleDetector : public ExecMonitor {
public:
  RefOracleDetector(Dpst &Tree, DpstBuilder &Builder)
      : Tree(Tree), Builder(Builder) {}

  void onRead(MemLoc L) override;
  void onWrite(MemLoc L) override;

  RaceReport takeReport() { return std::move(Report); }

private:
  struct Shadow {
    std::vector<DpstNode *> Writers;
    std::vector<DpstNode *> Readers;
  };

  void check(const std::vector<DpstNode *> &Prev, AccessKind PrevKind,
             DpstNode *Step, AccessKind CurKind, MemLoc L);

  Dpst &Tree;
  DpstBuilder &Builder;
  std::unordered_map<MemLoc, Shadow, MemLocHash> ShadowMem;
  RaceReport Report;
  std::unordered_map<uint64_t, uint32_t> SeenPairs;
};

} // namespace tdr

#endif // TDR_RACE_REFDETECTORS_H
