//===- Detect.cpp ---------------------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "race/Detect.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "race/OracleDetector.h"
#include "race/ParDetect.h"
#include "support/StringUtils.h"
#include "support/Timer.h"

#include <cstdlib>

using namespace tdr;

bool tdr::parseDetectBackend(std::string_view Name, DetectBackend &Out) {
  if (Name == "espbags") {
    Out = DetectBackend::EspBags;
    return true;
  }
  if (Name == "vc") {
    Out = DetectBackend::VectorClock;
    return true;
  }
  if (Name == "par") {
    Out = DetectBackend::Par;
    return true;
  }
  return false;
}

const char *tdr::detectBackendName(DetectBackend B) {
  switch (B) {
  case DetectBackend::VectorClock:
    return "vc";
  case DetectBackend::Par:
    return "par";
  case DetectBackend::EspBags:
    break;
  }
  return "espbags";
}

DetectBackend tdr::defaultDetectBackend() {
  DetectBackend B = DetectBackend::EspBags;
  if (const char *V = std::getenv("TDR_BACKEND"))
    parseDetectBackend(V, B);
  return B;
}

bool tdr::backendCheckEnv() {
  const char *V = std::getenv("TDR_BACKEND_CHECK");
  return V && *V && !(V[0] == '0' && V[1] == '\0');
}

namespace {

/// Publishes the per-run gauges a finished detection derives its stats
/// from (see RepairStats).
void publishDetection(const Detection &D) {
  obs::gauge("detect.dpst_nodes").set(static_cast<int64_t>(D.Tree->numNodes()));
  obs::gauge("detect.races_raw").set(static_cast<int64_t>(D.Report.RawCount));
  obs::gauge("detect.race_pairs")
      .set(static_cast<int64_t>(D.Report.Pairs.size()));
  obs::gauge("shadow.bytes_used")
      .set(static_cast<int64_t>(D.ShadowBytesUsed));
  obs::gauge("shadow.bytes_reserved")
      .set(static_cast<int64_t>(D.ShadowBytesReserved));
}

/// One live (interpreting) detection with detector \p DetectorT. Both
/// backends share the constructor shape (Mode, Builder) and the fused
/// single-monitor dispatch, so backend selection is this one template
/// parameter.
template <typename DetectorT>
Detection liveDetect(const Program &P, EspBagsDetector::Mode Mode,
                     ExecOptions Exec) {
  Detection D;
  D.Tree = std::make_unique<Dpst>();
  DpstBuilder Builder(*D.Tree);
  DetectorT Detector(Mode, Builder);
  FusedDetectMonitor<DetectorT> Fused(Builder, Detector);
  MonitorPipeline Pipeline;
  // Fast path: with no caller monitor the interpreter talks to the fused
  // builder+detector directly — one virtual dispatch per event. A
  // caller-supplied monitor keeps observing the instrumented execution;
  // it runs ahead of the builder/detector so it sees events untouched.
  if (Exec.Monitor) {
    Pipeline.add(Exec.Monitor);
    Pipeline.add(&Fused);
    Exec.Monitor = &Pipeline;
  } else {
    Exec.Monitor = &Fused;
  }
  D.Exec = runProgram(P, std::move(Exec));
  D.Report = Detector.takeReport();
  D.ShadowBytesUsed = Detector.shadowBytesUsed();
  D.ShadowBytesReserved = Detector.shadowBytesReserved();
  return D;
}

/// One log-backed detection with detector \p DetectorT.
template <typename DetectorT>
Detection replayDetect(EspBagsDetector::Mode Mode, const trace::InputTrace &T,
                       const trace::ReplayPlan &Plan) {
  Detection D;
  D.Tree = std::make_unique<Dpst>();
  DpstBuilder Builder(*D.Tree);
  DetectorT Detector(Mode, Builder);
  FusedDetectMonitor<DetectorT> Fused(Builder, Detector);
  Timer ReplayTimer;
  trace::replayEvents(T.Log, Plan, Fused);
  obs::histogram("trace.replay_ms").observe(ReplayTimer.elapsedMs());
  D.Exec = T.Exec;
  D.Report = Detector.takeReport();
  D.ShadowBytesUsed = Detector.shadowBytesUsed();
  D.ShadowBytesReserved = Detector.shadowBytesReserved();
  return D;
}

Detection liveDetectBackend(const Program &P, const DetectOptions &Opts,
                            ExecOptions Exec) {
  switch (Opts.Backend) {
  case DetectBackend::VectorClock:
    return liveDetect<VectorClockDetector>(P, Opts.Mode, std::move(Exec));
  case DetectBackend::Par:
    return parDetectLive(P, Opts, std::move(Exec));
  case DetectBackend::EspBags:
    break;
  }
  return liveDetect<EspBagsDetector>(P, Opts.Mode, std::move(Exec));
}

Detection replayDetectBackend(const DetectOptions &Opts,
                              const trace::InputTrace &T,
                              const trace::ReplayPlan &Plan) {
  switch (Opts.Backend) {
  case DetectBackend::VectorClock:
    return replayDetect<VectorClockDetector>(Opts.Mode, T, Plan);
  case DetectBackend::Par:
    return parDetectReplay(Opts, T, Plan);
  case DetectBackend::EspBags:
    break;
  }
  return replayDetect<EspBagsDetector>(Opts.Mode, T, Plan);
}

/// The TDR_BACKEND_CHECK differential: replays the primary run's event
/// stream through the *other* backend and demands a byte-identical report.
/// The secondary run executes under a throwaway metrics registry, so tests
/// asserting exact counter values (detect.runs, espbags.*) see the same
/// numbers with and without the check — only the verdict escapes. A
/// mismatch fails the detection the way a run-time error would, so every
/// caller (repair loop, CLI, tests) surfaces it.
void crossCheckBackends(Detection &D, const DetectOptions &Opts,
                        const trace::InputTrace &T,
                        const trace::ReplayPlan &Plan) {
  obs::ScopedSpan Span(obs::phase::DetectBackendCheck);
  obs::counter("detect.backend_checks").inc();
  DetectOptions Other = Opts;
  // Cross-check against ESP-bags (the reference algorithm) unless it is
  // the primary, in which case vector clocks take the secondary seat.
  Other.Backend = Opts.Backend == DetectBackend::EspBags
                      ? DetectBackend::VectorClock
                      : DetectBackend::EspBags;
  std::string OtherKey;
  {
    obs::MetricsRegistry Scratch;
    obs::ScopedMetrics Scoped(Scratch);
    Detection O = replayDetectBackend(Other, T, Plan);
    OtherKey = renderRaceReportKey(O.Report);
  }
  if (OtherKey == renderRaceReportKey(D.Report))
    return;
  D.Exec.Ok = false;
  D.Exec.Error = strFormat(
      "backend differential mismatch: %s and %s disagree on the race report",
      detectBackendName(Opts.Backend), detectBackendName(Other.Backend));
}

} // namespace

Detection tdr::detectRaces(const Program &P, const DetectOptions &Opts,
                           ExecOptions Exec) {
  obs::ScopedSpan Span(obs::phase::Detect);
  obs::counter("detect.runs").inc();
  if (!backendCheckEnv()) {
    Detection D = liveDetectBackend(P, Opts, std::move(Exec));
    publishDetection(D);
    return D;
  }
  // Backend check on a live run: record the event stream alongside the
  // primary detection so the secondary backend replays the exact same
  // events (an empty plan re-emits the log verbatim).
  trace::InputTrace T;
  trace::RecorderMonitor Recorder(T.Log);
  MonitorPipeline Pipeline;
  if (Exec.Monitor) {
    Pipeline.add(Exec.Monitor);
    Pipeline.add(&Recorder);
    Exec.Monitor = &Pipeline;
  } else {
    Exec.Monitor = &Recorder;
  }
  Detection D = liveDetectBackend(P, Opts, std::move(Exec));
  Recorder.flush();
  T.Exec = D.Exec;
  if (D.Exec.Ok)
    crossCheckBackends(D, Opts, T, trace::ReplayPlan());
  publishDetection(D);
  return D;
}

Detection tdr::detectRaces(const Program &P, EspBagsDetector::Mode Mode,
                           ExecOptions Exec) {
  DetectOptions Opts;
  Opts.Mode = Mode;
  Opts.Backend = defaultDetectBackend();
  return detectRaces(P, Opts, std::move(Exec));
}

Detection tdr::detectRaces(const Program &, const DetectOptions &Opts,
                           const trace::InputTrace &T,
                           const trace::ReplayPlan &Plan) {
  obs::ScopedSpan Span(obs::phase::DetectReplay);
  obs::counter("detect.runs").inc();
  obs::counter("detect.replays").inc();
  Detection D = replayDetectBackend(Opts, T, Plan);
  if (D.Exec.Ok && backendCheckEnv())
    crossCheckBackends(D, Opts, T, Plan);
  publishDetection(D);
  return D;
}

Detection tdr::detectRaces(const Program &P, EspBagsDetector::Mode Mode,
                           const trace::InputTrace &T,
                           const trace::ReplayPlan &Plan) {
  DetectOptions Opts;
  Opts.Mode = Mode;
  Opts.Backend = defaultDetectBackend();
  return detectRaces(P, Opts, T, Plan);
}

Detection tdr::detectRacesOracle(const Program &, const trace::InputTrace &T,
                                 const trace::ReplayPlan &Plan) {
  obs::ScopedSpan Span(obs::phase::DetectOracleReplay);
  obs::counter("detect.replays").inc();
  Detection D;
  D.Tree = std::make_unique<Dpst>();
  DpstBuilder Builder(*D.Tree);
  OracleDetector Detector(*D.Tree, Builder);
  FusedDetectMonitor<OracleDetector> Fused(Builder, Detector);
  Timer ReplayTimer;
  trace::replayEvents(T.Log, Plan, Fused);
  obs::histogram("trace.replay_ms").observe(ReplayTimer.elapsedMs());
  D.Exec = T.Exec;
  D.Report = Detector.takeReport();
  D.ShadowBytesUsed = Detector.shadowBytesUsed();
  D.ShadowBytesReserved = Detector.shadowBytesReserved();
  publishDetection(D);
  return D;
}

std::string tdr::renderRaceReportKey(const RaceReport &R) {
  std::string Out = strFormat("raw=%llu\n",
                              static_cast<unsigned long long>(R.RawCount));
  for (const RacePair &P : R.Pairs)
    Out += strFormat("src=%u snk=%u loc=%u:%u:%lld kinds=%u%u\n", P.Src->id(),
                     P.Snk->id(), static_cast<unsigned>(P.Loc.K), P.Loc.Id,
                     static_cast<long long>(P.Loc.Index),
                     static_cast<unsigned>(P.SrcKind),
                     static_cast<unsigned>(P.SnkKind));
  return Out;
}

Detection tdr::detectRacesOracle(const Program &P, ExecOptions Exec) {
  obs::ScopedSpan Span(obs::phase::DetectOracle);
  Detection D;
  D.Tree = std::make_unique<Dpst>();
  DpstBuilder Builder(*D.Tree);
  OracleDetector Detector(*D.Tree, Builder);
  FusedDetectMonitor<OracleDetector> Fused(Builder, Detector);
  MonitorPipeline Pipeline;
  if (Exec.Monitor) {
    Pipeline.add(Exec.Monitor);
    Pipeline.add(&Fused);
    Exec.Monitor = &Pipeline;
  } else {
    Exec.Monitor = &Fused;
  }
  D.Exec = runProgram(P, std::move(Exec));
  D.Report = Detector.takeReport();
  D.ShadowBytesUsed = Detector.shadowBytesUsed();
  D.ShadowBytesReserved = Detector.shadowBytesReserved();
  publishDetection(D);
  return D;
}
