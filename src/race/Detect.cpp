//===- Detect.cpp ---------------------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "race/Detect.h"

#include "race/OracleDetector.h"

using namespace tdr;

Detection tdr::detectRaces(const Program &P, EspBagsDetector::Mode Mode,
                           ExecOptions Exec) {
  Detection D;
  D.Tree = std::make_unique<Dpst>();
  DpstBuilder Builder(*D.Tree);
  EspBagsDetector Detector(Mode, Builder);
  MonitorPipeline Pipeline;
  Pipeline.add(&Builder);
  Pipeline.add(&Detector);
  Exec.Monitor = &Pipeline;
  D.Exec = runProgram(P, std::move(Exec));
  D.Report = Detector.takeReport();
  return D;
}

Detection tdr::detectRacesOracle(const Program &P, ExecOptions Exec) {
  Detection D;
  D.Tree = std::make_unique<Dpst>();
  DpstBuilder Builder(*D.Tree);
  OracleDetector Detector(*D.Tree, Builder);
  MonitorPipeline Pipeline;
  Pipeline.add(&Builder);
  Pipeline.add(&Detector);
  Exec.Monitor = &Pipeline;
  D.Exec = runProgram(P, std::move(Exec));
  D.Report = Detector.takeReport();
  return D;
}
