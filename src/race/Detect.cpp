//===- Detect.cpp ---------------------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "race/Detect.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "race/OracleDetector.h"
#include "support/StringUtils.h"
#include "support/Timer.h"

using namespace tdr;

namespace {

/// Publishes the per-run gauges a finished detection derives its stats
/// from (see RepairStats).
void publishDetection(const Detection &D) {
  obs::gauge("detect.dpst_nodes").set(static_cast<int64_t>(D.Tree->numNodes()));
  obs::gauge("detect.races_raw").set(static_cast<int64_t>(D.Report.RawCount));
  obs::gauge("detect.race_pairs")
      .set(static_cast<int64_t>(D.Report.Pairs.size()));
}

} // namespace

Detection tdr::detectRaces(const Program &P, EspBagsDetector::Mode Mode,
                           ExecOptions Exec) {
  obs::ScopedSpan Span("detect", "race");
  obs::counter("detect.runs").inc();
  Detection D;
  D.Tree = std::make_unique<Dpst>();
  DpstBuilder Builder(*D.Tree);
  EspBagsDetector Detector(Mode, Builder);
  FusedDetectMonitor<EspBagsDetector> Fused(Builder, Detector);
  MonitorPipeline Pipeline;
  // Fast path: with no caller monitor the interpreter talks to the fused
  // builder+detector directly — one virtual dispatch per event. A
  // caller-supplied monitor keeps observing the instrumented execution;
  // it runs ahead of the builder/detector so it sees events untouched.
  if (Exec.Monitor) {
    Pipeline.add(Exec.Monitor);
    Pipeline.add(&Fused);
    Exec.Monitor = &Pipeline;
  } else {
    Exec.Monitor = &Fused;
  }
  D.Exec = runProgram(P, std::move(Exec));
  D.Report = Detector.takeReport();
  publishDetection(D);
  return D;
}

Detection tdr::detectRaces(const Program &, EspBagsDetector::Mode Mode,
                           const trace::InputTrace &T,
                           const trace::ReplayPlan &Plan) {
  obs::ScopedSpan Span("detect.replay", "race");
  obs::counter("detect.runs").inc();
  obs::counter("detect.replays").inc();
  Detection D;
  D.Tree = std::make_unique<Dpst>();
  DpstBuilder Builder(*D.Tree);
  EspBagsDetector Detector(Mode, Builder);
  FusedDetectMonitor<EspBagsDetector> Fused(Builder, Detector);
  Timer ReplayTimer;
  trace::replayEvents(T.Log, Plan, Fused);
  obs::histogram("trace.replay_ms").observe(ReplayTimer.elapsedMs());
  D.Exec = T.Exec;
  D.Report = Detector.takeReport();
  publishDetection(D);
  return D;
}

Detection tdr::detectRacesOracle(const Program &, const trace::InputTrace &T,
                                 const trace::ReplayPlan &Plan) {
  obs::ScopedSpan Span("detect.oracle.replay", "race");
  obs::counter("detect.replays").inc();
  Detection D;
  D.Tree = std::make_unique<Dpst>();
  DpstBuilder Builder(*D.Tree);
  OracleDetector Detector(*D.Tree, Builder);
  FusedDetectMonitor<OracleDetector> Fused(Builder, Detector);
  Timer ReplayTimer;
  trace::replayEvents(T.Log, Plan, Fused);
  obs::histogram("trace.replay_ms").observe(ReplayTimer.elapsedMs());
  D.Exec = T.Exec;
  D.Report = Detector.takeReport();
  publishDetection(D);
  return D;
}

std::string tdr::renderRaceReportKey(const RaceReport &R) {
  std::string Out = strFormat("raw=%llu\n",
                              static_cast<unsigned long long>(R.RawCount));
  for (const RacePair &P : R.Pairs)
    Out += strFormat("src=%u snk=%u loc=%u:%u:%lld kinds=%u%u\n", P.Src->id(),
                     P.Snk->id(), static_cast<unsigned>(P.Loc.K), P.Loc.Id,
                     static_cast<long long>(P.Loc.Index),
                     static_cast<unsigned>(P.SrcKind),
                     static_cast<unsigned>(P.SnkKind));
  return Out;
}

Detection tdr::detectRacesOracle(const Program &P, ExecOptions Exec) {
  obs::ScopedSpan Span("detect.oracle", "race");
  Detection D;
  D.Tree = std::make_unique<Dpst>();
  DpstBuilder Builder(*D.Tree);
  OracleDetector Detector(*D.Tree, Builder);
  FusedDetectMonitor<OracleDetector> Fused(Builder, Detector);
  MonitorPipeline Pipeline;
  if (Exec.Monitor) {
    Pipeline.add(Exec.Monitor);
    Pipeline.add(&Fused);
    Exec.Monitor = &Pipeline;
  } else {
    Exec.Monitor = &Fused;
  }
  D.Exec = runProgram(P, std::move(Exec));
  D.Report = Detector.takeReport();
  publishDetection(D);
  return D;
}
