//===- Detect.cpp ---------------------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "race/Detect.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "race/OracleDetector.h"

using namespace tdr;

namespace {

/// Publishes the per-run gauges a finished detection derives its stats
/// from (see RepairStats).
void publishDetection(const Detection &D) {
  obs::gauge("detect.dpst_nodes").set(static_cast<int64_t>(D.Tree->numNodes()));
  obs::gauge("detect.races_raw").set(static_cast<int64_t>(D.Report.RawCount));
  obs::gauge("detect.race_pairs")
      .set(static_cast<int64_t>(D.Report.Pairs.size()));
}

} // namespace

Detection tdr::detectRaces(const Program &P, EspBagsDetector::Mode Mode,
                           ExecOptions Exec) {
  obs::ScopedSpan Span("detect", "race");
  obs::counter("detect.runs").inc();
  Detection D;
  D.Tree = std::make_unique<Dpst>();
  DpstBuilder Builder(*D.Tree);
  EspBagsDetector Detector(Mode, Builder);
  FusedDetectMonitor<EspBagsDetector> Fused(Builder, Detector);
  MonitorPipeline Pipeline;
  // Fast path: with no caller monitor the interpreter talks to the fused
  // builder+detector directly — one virtual dispatch per event. A
  // caller-supplied monitor keeps observing the instrumented execution;
  // it runs ahead of the builder/detector so it sees events untouched.
  if (Exec.Monitor) {
    Pipeline.add(Exec.Monitor);
    Pipeline.add(&Fused);
    Exec.Monitor = &Pipeline;
  } else {
    Exec.Monitor = &Fused;
  }
  D.Exec = runProgram(P, std::move(Exec));
  D.Report = Detector.takeReport();
  publishDetection(D);
  return D;
}

Detection tdr::detectRacesOracle(const Program &P, ExecOptions Exec) {
  obs::ScopedSpan Span("detect.oracle", "race");
  Detection D;
  D.Tree = std::make_unique<Dpst>();
  DpstBuilder Builder(*D.Tree);
  OracleDetector Detector(*D.Tree, Builder);
  FusedDetectMonitor<OracleDetector> Fused(Builder, Detector);
  MonitorPipeline Pipeline;
  if (Exec.Monitor) {
    Pipeline.add(Exec.Monitor);
    Pipeline.add(&Fused);
    Exec.Monitor = &Pipeline;
  } else {
    Exec.Monitor = &Fused;
  }
  D.Exec = runProgram(P, std::move(Exec));
  D.Report = Detector.takeReport();
  publishDetection(D);
  return D;
}
