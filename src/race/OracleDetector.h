//===- OracleDetector.h - DPST-based reference race detector -----*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An independent reference detector used to validate ESP-bags: it keeps
/// the same multiple-reader-writer shadow memory but decides "may these two
/// steps run in parallel?" with the S-DPST structural criterion (Theorem 1,
/// from Raman et al. PLDI 2012) instead of bags. Slower — O(tree depth) per
/// query — but with no shared state with ESP-bags, so agreement between the
/// two is strong evidence of correctness. Property tests assert that this
/// oracle and MRW ESP-bags report identical race pair sets.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_RACE_ORACLEDETECTOR_H
#define TDR_RACE_ORACLEDETECTOR_H

#include "dpst/Dpst.h"
#include "race/RaceReport.h"

#include <unordered_map>
#include <unordered_set>

namespace tdr {

/// MRW-style detector using Theorem-1 parallelism queries.
class OracleDetector : public ExecMonitor {
public:
  OracleDetector(Dpst &Tree, DpstBuilder &Builder)
      : Tree(Tree), Builder(Builder) {}

  void onRead(MemLoc L) override;
  void onWrite(MemLoc L) override;

  RaceReport takeReport() { return std::move(Report); }

private:
  struct Shadow {
    std::vector<DpstNode *> Writers;
    std::vector<DpstNode *> Readers;
  };

  void check(const std::vector<DpstNode *> &Prev, AccessKind PrevKind,
             DpstNode *Step, AccessKind CurKind, MemLoc L);

  Dpst &Tree;
  DpstBuilder &Builder;
  std::unordered_map<MemLoc, Shadow, MemLocHash> ShadowMem;
  RaceReport Report;
  std::unordered_set<uint64_t> SeenPairs;
};

} // namespace tdr

#endif // TDR_RACE_ORACLEDETECTOR_H
