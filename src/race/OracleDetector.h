//===- OracleDetector.h - DPST-based reference race detector -----*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An independent reference detector used to validate ESP-bags: it keeps
/// the same multiple-reader-writer shadow memory but decides "may these two
/// steps run in parallel?" with the S-DPST structural criterion (Theorem 1,
/// from Raman et al. PLDI 2012) instead of bags. Slower — O(tree depth) per
/// query — but with no shared state with ESP-bags, so agreement between the
/// two is strong evidence of correctness. Property tests assert that this
/// oracle and MRW ESP-bags report identical race pair sets.
///
/// Shares the flat paged ShadowMemory and small-vector access lists with
/// the ESP-bags fast path; the parallelism query stays the structural one.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_RACE_ORACLEDETECTOR_H
#define TDR_RACE_ORACLEDETECTOR_H

#include "dpst/Dpst.h"
#include "race/RaceReport.h"
#include "race/ShadowMemory.h"
#include "support/SmallVector.h"

#include <unordered_map>

namespace tdr {

/// MRW-style detector using Theorem-1 parallelism queries.
class OracleDetector : public ExecMonitor {
public:
  OracleDetector(Dpst &Tree, DpstBuilder &Builder)
      : Tree(Tree), Builder(Builder) {}

  void onAsyncEnter(const AsyncStmt *S, const Stmt *Owner) override;
  void onAsyncExit(const AsyncStmt *S) override;
  void onFinishEnter(const FinishStmt *S, const Stmt *Owner) override;
  void onFinishExit(const FinishStmt *S) override;
  void onFutureEnter(const FutureStmt *S, const Stmt *Owner,
                     uint32_t Fid) override;
  void onFutureExit(const FutureStmt *S) override;
  void onForce(uint32_t Fid) override;
  void onIsolatedEnter(const IsolatedStmt *S, const Stmt *Owner) override;
  void onIsolatedExit(const IsolatedStmt *S) override;
  void onScopeEnter(ScopeKind K, const Stmt *Owner, const BlockStmt *Body,
                    const FuncDecl *Callee) override;
  void onScopeExit() override;
  void onRead(MemLoc L) override;
  void onWrite(MemLoc L) override;
  void onReadRun(MemLoc L, uint64_t N) override;
  void onWriteRun(MemLoc L, uint64_t N) override;

  RaceReport takeReport() { return std::move(Report); }

  /// Shadow-store footprint (see ShadowMemory accounting).
  size_t shadowBytesUsed() const { return Shadows.bytesUsed(); }
  size_t shadowBytesReserved() const { return Shadows.bytesReserved(); }

private:
  using AccessList = SmallVector<DpstNode *, 2>;

  struct Shadow {
    /// Valid when all-zero, so shadow pages materialize with one memset
    /// (see IsAllZeroInit in PagedArray.h).
    static constexpr bool AllZeroInit = true;

    AccessList Writers;
    AccessList Readers;
  };

  void check(const AccessList &Prev, AccessKind PrevKind, DpstNode *Step,
             AccessKind CurKind, MemLoc L);

  /// Per-slot check/update bodies shared by the single-access hooks and
  /// the batched run path.
  void readSlot(Shadow &S, DpstNode *Step, MemLoc L);
  void writeSlot(Shadow &S, DpstNode *Step, MemLoc L);

  DpstNode *curStep() {
    if (DpstNode *S = CachedStep)
      return S;
    return CachedStep = Builder.currentStep();
  }

  Dpst &Tree;
  DpstBuilder &Builder;
  DpstNode *CachedStep = nullptr; ///< step-boundary-cached current step
  ShadowMemory<Shadow> Shadows;
  RaceReport Report;
  /// Pair key -> index into Report.Pairs, so duplicate observations can
  /// upgrade the kept witness (see witnessPreferred).
  std::unordered_map<uint64_t, uint32_t> SeenPairs;
};

} // namespace tdr

#endif // TDR_RACE_ORACLEDETECTOR_H
