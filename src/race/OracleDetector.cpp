//===- OracleDetector.cpp -------------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "race/OracleDetector.h"

using namespace tdr;

void OracleDetector::onAsyncEnter(const AsyncStmt *, const Stmt *) {
  CachedStep = nullptr;
}
void OracleDetector::onAsyncExit(const AsyncStmt *) { CachedStep = nullptr; }
void OracleDetector::onFinishEnter(const FinishStmt *, const Stmt *) {
  CachedStep = nullptr;
}
void OracleDetector::onFinishExit(const FinishStmt *) { CachedStep = nullptr; }
void OracleDetector::onFutureEnter(const FutureStmt *, const Stmt *, uint32_t) {
  CachedStep = nullptr;
}
void OracleDetector::onFutureExit(const FutureStmt *) { CachedStep = nullptr; }
void OracleDetector::onForce(uint32_t) { CachedStep = nullptr; }
void OracleDetector::onIsolatedEnter(const IsolatedStmt *, const Stmt *) {
  CachedStep = nullptr;
}
void OracleDetector::onIsolatedExit(const IsolatedStmt *) {
  CachedStep = nullptr;
}
void OracleDetector::onScopeEnter(ScopeKind, const Stmt *, const BlockStmt *,
                                  const FuncDecl *) {
  CachedStep = nullptr;
}
void OracleDetector::onScopeExit() { CachedStep = nullptr; }

void OracleDetector::check(const AccessList &Prev, AccessKind PrevKind,
                           DpstNode *Step, AccessKind CurKind, MemLoc L) {
  for (DpstNode *P : Prev) {
    if (P == Step || !Tree.mayHappenInParallel(P, Step))
      continue;
    // Isolated steps commute under mutual exclusion even when parallel.
    if (Dpst::bothIsolated(P, Step))
      continue;
    ++Report.RawCount;
    auto [It, Inserted] =
        SeenPairs.try_emplace(packRacePairKey(P->id(), Step->id()),
                              static_cast<uint32_t>(Report.Pairs.size()));
    if (!Inserted) {
      RacePair &Kept = Report.Pairs[It->second];
      if (witnessPreferred(Kept, L, PrevKind, CurKind)) {
        Kept.Loc = L;
        Kept.SrcKind = PrevKind;
        Kept.SnkKind = CurKind;
      }
      continue;
    }
    RacePair R;
    R.Src = P;
    R.Snk = Step;
    R.Loc = L;
    R.SrcKind = PrevKind;
    R.SnkKind = CurKind;
    Report.Pairs.push_back(R);
  }
}

void OracleDetector::readSlot(Shadow &S, DpstNode *Step, MemLoc L) {
  check(S.Writers, AccessKind::Write, Step, AccessKind::Read, L);
  if (S.Readers.empty() || S.Readers.back() != Step)
    S.Readers.push_back(Step);
}

void OracleDetector::writeSlot(Shadow &S, DpstNode *Step, MemLoc L) {
  check(S.Writers, AccessKind::Write, Step, AccessKind::Write, L);
  check(S.Readers, AccessKind::Read, Step, AccessKind::Write, L);
  if (S.Writers.empty() || S.Writers.back() != Step)
    S.Writers.push_back(Step);
}

void OracleDetector::onRead(MemLoc L) { readSlot(Shadows.slot(L), curStep(), L); }

void OracleDetector::onWrite(MemLoc L) {
  writeSlot(Shadows.slot(L), curStep(), L);
}

void OracleDetector::onReadRun(MemLoc L, uint64_t N) {
  DpstNode *Step = curStep();
  Shadows.forRun(L, N, [&](Shadow &S, MemLoc At) { readSlot(S, Step, At); });
}

void OracleDetector::onWriteRun(MemLoc L, uint64_t N) {
  DpstNode *Step = curStep();
  Shadows.forRun(L, N, [&](Shadow &S, MemLoc At) { writeSlot(S, Step, At); });
}
