//===- OracleDetector.cpp -------------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "race/OracleDetector.h"

using namespace tdr;

void OracleDetector::check(const std::vector<DpstNode *> &Prev,
                           AccessKind PrevKind, DpstNode *Step,
                           AccessKind CurKind, MemLoc L) {
  for (DpstNode *P : Prev) {
    if (P == Step || !Tree.mayHappenInParallel(P, Step))
      continue;
    ++Report.RawCount;
    uint64_t Key = (static_cast<uint64_t>(P->id()) << 32) | Step->id();
    if (!SeenPairs.insert(Key).second)
      continue;
    RacePair R;
    R.Src = P;
    R.Snk = Step;
    R.Loc = L;
    R.SrcKind = PrevKind;
    R.SnkKind = CurKind;
    Report.Pairs.push_back(R);
  }
}

void OracleDetector::onRead(MemLoc L) {
  DpstNode *Step = Builder.currentStep();
  Shadow &S = ShadowMem[L];
  check(S.Writers, AccessKind::Write, Step, AccessKind::Read, L);
  if (S.Readers.empty() || S.Readers.back() != Step)
    S.Readers.push_back(Step);
}

void OracleDetector::onWrite(MemLoc L) {
  DpstNode *Step = Builder.currentStep();
  Shadow &S = ShadowMem[L];
  check(S.Writers, AccessKind::Write, Step, AccessKind::Write, L);
  check(S.Readers, AccessKind::Read, Step, AccessKind::Write, L);
  if (S.Writers.empty() || S.Writers.back() != Step)
    S.Writers.push_back(Step);
}
