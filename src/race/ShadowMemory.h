//===- ShadowMemory.h - Two-level compressed shadow state store --*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The detectors' shadow memory, keyed by MemLoc without hashing the hot
/// path. MemLoc names locations structurally — a dense global slot, or an
/// array id plus an element index — and the two planes are stored
/// differently because their index distributions differ:
///
///  * globals: sema assigns dense small slot ids, so one PagedArray
///    indexed by slot id stays optimal;
///  * array elements: ids and indices are sparse and unbounded (one access
///    to element 10^9 of array 10^6 must not commit megabytes), so this
///    plane is a Valgrind-style two-level compressed map. A sparse
///    top-level open-addressing table keyed by (array id, index >> 6)
///    points at fixed 64-cell second-level pages. Conceptually every
///    untouched range aliases one distinguished shared read-only
///    **no-access page** of zero cells; const lookups (peek) resolve to it
///    without allocating, and the first real write to a range
///    copy-on-write-allocates a private page initialized from that shared
///    zero image.
///
/// Cells are compact per-location summaries: when the shadow record T is
/// small, zero-initializable, and trivially destructible it is stored
/// inline in the page; otherwise the page holds 4-byte slot references
/// into a dense allocation-ordered slab, so an untouched neighbor of a
/// touched element costs 4 bytes, not sizeof(T). A one-entry page cache in
/// front of the table makes sequential sweeps resolve the table once per
/// 64 elements, and forRun() exposes exactly that page-span structure to
/// the detectors' batched access checks.
///
/// All pages share one MonotonicArena so teardown is wholesale.
/// DenseShadowMemory below preserves the previous dense-direct-map
/// implementation verbatim as the measured baseline for bench_shadow and
/// the sparse-blow-up regression tests.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_RACE_SHADOWMEMORY_H
#define TDR_RACE_SHADOWMEMORY_H

#include "interp/Value.h"
#include "support/PagedArray.h"

#include <cstring>
#include <deque>
#include <type_traits>

namespace tdr {

namespace shadow_detail {

/// Second-level pages cover 2^6 = 64 consecutive element indices: big
/// enough that sequential sweeps amortize the top-level probe, small
/// enough that a stray access to a giant index commits a few hundred
/// bytes, not kilobytes.
inline constexpr unsigned PageBits = 6;
inline constexpr uint64_t PageSize = 1ull << PageBits;

/// Backing bytes for the shared no-access page. One static zero image
/// serves every instantiation: a cell of zero bytes is "never accessed"
/// in both storage modes (inline cells require AllZeroInit; slot
/// references use 0 as "no slot").
inline constexpr size_t NoAccessBytes = PageSize * 16;
alignas(64) inline constexpr unsigned char NoAccessImage[NoAccessBytes] = {};

inline uint64_t hashKey(uint32_t Id, uint64_t PageIdx) {
  uint64_t X = PageIdx + 0x9E3779B97F4A7C15ull * (uint64_t(Id) + 1);
  X ^= X >> 30;
  X *= 0xBF58476D1CE4E5B9ull;
  X ^= X >> 27;
  X *= 0x94D049BB133111EBull;
  X ^= X >> 31;
  return X;
}

} // namespace shadow_detail

template <typename T> class ShadowMemory {
public:
  static constexpr unsigned PageBits = shadow_detail::PageBits;
  static constexpr uint64_t PageSize = shadow_detail::PageSize;

  /// Small all-zero-init trivially-destructible records live inline in the
  /// pages; anything else goes through the compact 4-byte slot lane.
  static constexpr bool InlineCells =
      sizeof(T) <= 8 && IsAllZeroInit<T>::value &&
      std::is_trivially_destructible<T>::value;

  using Cell = typename std::conditional<InlineCells, T, uint32_t>::type;
  static_assert(sizeof(Cell) * PageSize <= shadow_detail::NoAccessBytes,
                "no-access image too small for this cell type");

  ShadowMemory() : Globals(Arena), Slab(Arena) {}

  ShadowMemory(const ShadowMemory &) = delete;
  ShadowMemory &operator=(const ShadowMemory &) = delete;

  /// Shadow state for \p L, created value-initialized on first touch.
  T &slot(MemLoc L) {
    if (L.K == MemLoc::Kind::Global)
      return Globals.getOrCreate(L.Id);
    assert(L.Index >= 0 && "negative element index reached the detector");
    uint64_t Idx = static_cast<uint64_t>(L.Index);
    Cell *Page = pageFor(L.Id, Idx >> PageBits);
    return cellSlot(Page[Idx & (PageSize - 1)]);
  }

  /// Read-only view of the shadow state for \p L. Never materializes a
  /// page or a slab record: locations never written through slot() resolve
  /// into the shared no-access image and return its zero record.
  const T &peek(MemLoc L) const {
    if (L.K == MemLoc::Kind::Global) {
      const T *S = Globals.lookup(L.Id);
      return S ? *S : noAccessRecord();
    }
    assert(L.Index >= 0 && "negative element index reached the detector");
    uint64_t Idx = static_cast<uint64_t>(L.Index);
    const Cell *Page = findPage(L.Id, Idx >> PageBits);
    if (!Page)
      Page = noAccessPage();
    const Cell &C = Page[Idx & (PageSize - 1)];
    if constexpr (InlineCells) {
      return C;
    } else {
      return C ? *Slab.lookup(C - 1) : noAccessRecord();
    }
  }

  /// Batched accessor: apply \p F to the shadow slots of the \p N
  /// consecutive element locations (L.Id, L.Index) .. (L.Id, L.Index+N-1),
  /// in ascending index order, resolving the top-level table once per page
  /// span instead of once per element. Element locations only.
  template <typename Fn> void forRun(MemLoc L, uint64_t N, Fn &&F) {
    assert(L.K == MemLoc::Kind::Elem && "runs are element-plane only");
    assert(L.Index >= 0 && "negative element index reached the detector");
    uint64_t Idx = static_cast<uint64_t>(L.Index);
    while (N) {
      uint64_t Off = Idx & (PageSize - 1);
      uint64_t Span = PageSize - Off < N ? PageSize - Off : N;
      Cell *Page = pageFor(L.Id, Idx >> PageBits);
      for (uint64_t I = 0; I != Span; ++I)
        F(cellSlot(Page[Off + I]),
          MemLoc::elem(L.Id, static_cast<int64_t>(Idx + I)));
      Idx += Span;
      N -= Span;
    }
  }

  /// Bytes of live shadow state: arena demand plus the top-level table and
  /// the dense index vectors. Untouched ranges alias the shared no-access
  /// page and cost nothing here.
  size_t bytesUsed() const { return Arena.bytesUsed() + indexBytes(); }

  /// Allocator footprint: slab-granular arena reservation plus the same
  /// index structures.
  size_t bytesReserved() const { return Arena.bytesReserved() + indexBytes(); }

  /// Materialized (private) second-level pages — the no-access page is not
  /// counted, by construction.
  size_t numPrivatePages() const { return TableCount; }

private:
  struct Entry {
    uint64_t PageIdx = 0;
    uint32_t ArrayId = 0;
    Cell *Page = nullptr; ///< null marks an empty table entry
  };

  static const Cell *noAccessPage() {
    return reinterpret_cast<const Cell *>(shadow_detail::NoAccessImage);
  }

  static const T &noAccessRecord() {
    static const T Zero{};
    return Zero;
  }

  T &cellSlot(Cell &C) {
    if constexpr (InlineCells) {
      return C;
    } else {
      if (!C) {
        C = ++NumSlabRecords;
        assert(NumSlabRecords != 0 && "slot reference overflow");
      }
      return Slab.getOrCreate(C - 1);
    }
  }

  Cell *findPage(uint32_t Id, uint64_t PageIdx) const {
    if (Id == CacheId && PageIdx == CachePageIdx)
      return CachePage;
    if (Table.empty())
      return nullptr;
    size_t Mask = Table.size() - 1;
    for (size_t I = shadow_detail::hashKey(Id, PageIdx) & Mask;;
         I = (I + 1) & Mask) {
      const Entry &E = Table[I];
      if (!E.Page)
        return nullptr;
      if (E.ArrayId == Id && E.PageIdx == PageIdx)
        return E.Page;
    }
  }

  Cell *pageFor(uint32_t Id, uint64_t PageIdx) {
    if (Id == CacheId && PageIdx == CachePageIdx)
      return CachePage;
    Cell *Page = findPage(Id, PageIdx);
    if (!Page) {
      // First real write to this range: break the alias to the shared
      // no-access page with a private copy of its zero image.
      if ((TableCount + 1) * 10 > Table.size() * 7)
        grow();
      Page = static_cast<Cell *>(
          Arena.allocate(sizeof(Cell) * PageSize, alignof(Cell)));
      std::memcpy(static_cast<void *>(Page), noAccessPage(),
                  sizeof(Cell) * PageSize);
      insert(Entry{PageIdx, Id, Page});
      ++TableCount;
    }
    CacheId = Id;
    CachePageIdx = PageIdx;
    CachePage = Page;
    return Page;
  }

  void insert(Entry E) {
    size_t Mask = Table.size() - 1;
    size_t I = shadow_detail::hashKey(E.ArrayId, E.PageIdx) & Mask;
    while (Table[I].Page)
      I = (I + 1) & Mask;
    Table[I] = E;
  }

  void grow() {
    std::vector<Entry> Old = std::move(Table);
    Table.assign(Old.empty() ? 64 : Old.size() * 2, Entry{});
    for (const Entry &E : Old)
      if (E.Page)
        insert(E);
  }

  size_t indexBytes() const {
    return Table.capacity() * sizeof(Entry) + Globals.indexBytes() +
           Slab.indexBytes();
  }

  MonotonicArena Arena;
  PagedArray<T> Globals; ///< dense sema slot ids: direct map stays optimal
  PagedArray<T> Slab;    ///< compact-lane records, dense allocation order
  std::vector<Entry> Table; ///< power-of-two open-addressing top level
  size_t TableCount = 0;
  uint32_t NumSlabRecords = 0;
  // One-entry page cache: sequential and strided-within-page accesses skip
  // the table probe entirely. CacheId ~0 can never match a real probe
  // until it is overwritten because MemLoc array ids are small.
  uint32_t CacheId = ~0u;
  uint64_t CachePageIdx = ~0ull;
  Cell *CachePage = nullptr;
};

/// The previous dense direct-map shadow store, preserved as the measured
/// baseline: ArrayTable is resized densely by array id and PagedArray page
/// tables are dense in the highest touched index, so sparse ids/indices
/// commit O(max id + max index) memory. bench_shadow and the regression
/// tests pin the new two-level map's advantage against this.
template <typename T> class DenseShadowMemory {
public:
  DenseShadowMemory() : Globals(Arena) {}

  DenseShadowMemory(const DenseShadowMemory &) = delete;
  DenseShadowMemory &operator=(const DenseShadowMemory &) = delete;

  /// Shadow state for \p L, created value-initialized on first touch.
  T &slot(MemLoc L) {
    if (L.K == MemLoc::Kind::Global)
      return Globals.getOrCreate(L.Id);
    assert(L.Index >= 0 && "negative element index reached the detector");
    if (L.Id >= ArrayTable.size())
      ArrayTable.resize(L.Id + 1, nullptr);
    PagedArray<T> *&PA = ArrayTable[L.Id];
    if (!PA) {
      Arrays.emplace_back(Arena);
      PA = &Arrays.back();
    }
    return PA->getOrCreate(static_cast<uint64_t>(L.Index));
  }

  size_t bytesUsed() const { return Arena.bytesUsed() + indexBytes(); }
  size_t bytesReserved() const { return Arena.bytesReserved() + indexBytes(); }

private:
  size_t indexBytes() const {
    size_t B = ArrayTable.capacity() * sizeof(PagedArray<T> *) +
               Globals.indexBytes();
    for (const PagedArray<T> &A : Arrays)
      B += A.indexBytes();
    return B;
  }

  MonotonicArena Arena;
  PagedArray<T> Globals;
  std::vector<PagedArray<T> *> ArrayTable; ///< array id -> per-array pages
  std::deque<PagedArray<T>> Arrays;        ///< stable storage for the above
};

} // namespace tdr

#endif // TDR_RACE_SHADOWMEMORY_H
