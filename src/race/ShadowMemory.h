//===- ShadowMemory.h - Flat per-location shadow state store -----*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The detectors' shadow memory, keyed by MemLoc without hashing. MemLoc
/// already names locations structurally — a dense global slot, or a dense
/// array id plus an element index — so the store mirrors that structure
/// directly:
///
///  * globals: one PagedArray indexed by slot id;
///  * arrays:  a vector indexed by array id of PagedArrays indexed by
///             element index.
///
/// Every probe is bounds checks plus direct indexing (O(1), no hash, no
/// collision chains), and all pages share one MonotonicArena so teardown is
/// wholesale. This replaces the previous
/// std::unordered_map<MemLoc, Shadow> whose probe cost dominated the
/// per-access detector hot path.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_RACE_SHADOWMEMORY_H
#define TDR_RACE_SHADOWMEMORY_H

#include "interp/Value.h"
#include "support/PagedArray.h"

#include <deque>

namespace tdr {

template <typename T> class ShadowMemory {
public:
  ShadowMemory() : Globals(Arena) {}

  /// Shadow state for \p L, created value-initialized on first touch.
  T &slot(MemLoc L) {
    if (L.K == MemLoc::Kind::Global)
      return Globals.getOrCreate(L.Id);
    assert(L.Index >= 0 && "negative element index reached the detector");
    if (L.Id >= ArrayTable.size())
      ArrayTable.resize(L.Id + 1, nullptr);
    PagedArray<T> *&PA = ArrayTable[L.Id];
    if (!PA) {
      Arrays.emplace_back(Arena);
      PA = &Arrays.back();
    }
    return PA->getOrCreate(static_cast<uint64_t>(L.Index));
  }

  size_t bytesReserved() const { return Arena.bytesReserved(); }

private:
  MonotonicArena Arena;
  PagedArray<T> Globals;
  std::vector<PagedArray<T> *> ArrayTable; ///< array id -> per-array pages
  std::deque<PagedArray<T>> Arrays;        ///< stable storage for the above
};

} // namespace tdr

#endif // TDR_RACE_SHADOWMEMORY_H
