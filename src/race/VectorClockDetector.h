//===- VectorClockDetector.h - Vector-clock race detection -------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A vector-clock race detector for async-finish programs, the second
/// production detection backend next to ESP-bags (see EspBags.h and
/// race/Detect.h for backend selection).
///
/// Async-finish task joins are wholesale — a finish joins *all* tasks
/// spawned under it at once — so per-task logical clocks degenerate to a
/// single bit: either a completed task has been joined transitively into
/// the current task's history or it has not. Following the vector-clock
/// formulation for async-finish programs of Kumar, Agrawal & Biswas
/// (arXiv:2112.04352), with the compact-representation spirit of DePa
/// (Westrick, Wang & Acar, arXiv:2204.14168), the detector keeps:
///
///  * a dense id per dynamic task (creation order);
///  * per active task a *clock*: a bitset over task ids, bit u set iff
///    task u is serialized before the task's current point. Clocks are
///    copy-on-write: a spawned child references its nearest materialized
///    ancestor clock (frozen while the child runs, because the parent is
///    suspended in the canonical depth-first execution) and only
///    materializes a private copy when it learns new joins at a finish
///    exit;
///  * per active finish an accumulator: the ids of tasks (transitively)
///    completed under it, appended on async exit and learned wholesale by
///    the executing task when the finish exits;
///  * an active-ancestor flag per task id — accesses by a task still on
///    the task stack are sequentially ordered before the current step.
///
/// The happens-before query for a previous access by task u is then
///
///   ordered(u) = Active[u] || clock(current task).test(u)
///
/// which matches the ESP-bags classification exactly: Active[u] iff u's
/// element is in an active task's own S-bag position, clock.test(u) iff
/// u's bag has merged (via finish exits) into an S-bag the current task
/// inherits, and "neither" iff u sits in a pending P-bag. The shadow-
/// memory policy (SRW/MRW access lists, per-step dedup, race recording
/// order) is byte-for-byte the EspBags one, so both backends render
/// identical race reports for identical event streams — the property the
/// TDR_BACKEND_CHECK differential gates on (see renderRaceReportKey).
///
//===----------------------------------------------------------------------===//

#ifndef TDR_RACE_VECTORCLOCKDETECTOR_H
#define TDR_RACE_VECTORCLOCKDETECTOR_H

#include "dpst/Dpst.h"
#include "race/EspBags.h"
#include "race/RaceReport.h"
#include "race/ShadowMemory.h"
#include "support/SmallVector.h"

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace tdr {

namespace obs {
class Counter;
} // namespace obs

/// Vector-clock detector; install in the same monitor pipeline as (and
/// after) the DpstBuilder it reads the current step from — drop-in
/// interchangeable with EspBagsDetector (same constructor shape, same
/// SRW/MRW modes, same report semantics).
class VectorClockDetector : public ExecMonitor {
public:
  /// Shares the ESP-bags mode enum: the SRW/MRW distinction is a shadow-
  /// memory policy, independent of how happens-before is answered.
  using Mode = EspBagsDetector::Mode;

  VectorClockDetector(Mode M, DpstBuilder &Builder);

  void onAsyncEnter(const AsyncStmt *S, const Stmt *Owner) override;
  void onAsyncExit(const AsyncStmt *S) override;
  void onFinishEnter(const FinishStmt *S, const Stmt *Owner) override;
  void onFinishExit(const FinishStmt *S) override;
  void onFutureEnter(const FutureStmt *S, const Stmt *Owner,
                     uint32_t Fid) override;
  void onFutureExit(const FutureStmt *S) override;
  void onForce(uint32_t Fid) override;
  void onIsolatedEnter(const IsolatedStmt *S, const Stmt *Owner) override;
  void onIsolatedExit(const IsolatedStmt *S) override;
  void onScopeEnter(ScopeKind K, const Stmt *Owner, const BlockStmt *Body,
                    const FuncDecl *Callee) override;
  void onScopeExit() override;
  void onRead(MemLoc L) override;
  void onWrite(MemLoc L) override;
  void onReadRun(MemLoc L, uint64_t N) override;
  void onWriteRun(MemLoc L, uint64_t N) override;

  /// The detection outcome (valid once execution finished).
  RaceReport takeReport();

  /// Number of distinct racing pairs found so far.
  size_t numPairs() const { return Report.Pairs.size(); }

  /// Shadow-store footprint (see ShadowMemory accounting).
  size_t shadowBytesUsed() const { return Shadows.bytesUsed(); }
  size_t shadowBytesReserved() const { return Shadows.bytesReserved(); }

private:
  /// Joined-task bitset, indexed by dense task id. Heap-allocated (and the
  /// word storage never shrinks), so a suspended ancestor's clock is a
  /// stable referent for the COW base pointers of its live descendants.
  using Clock = std::vector<uint64_t>;

  struct Access {
    uint32_t Task = 0; ///< dense id of the accessing task
    DpstNode *Step = nullptr;
  };

  /// Per-location shadow state; layout and policy mirror EspBags::Shadow.
  struct Shadow {
    /// Valid when all-zero, so shadow pages materialize with one memset
    /// (see IsAllZeroInit in PagedArray.h).
    static constexpr bool AllZeroInit = true;

    SmallVector<Access, 2> Writers;
    SmallVector<Access, 2> Readers;
  };

  /// One active task. Base points at the nearest materialized ancestor
  /// clock (null for a virgin root chain); Own is this task's private
  /// clock once it has learned anything. Learned accumulates the ids this
  /// task joined beyond its inherited base — exactly the content its
  /// S-bag would have gained — and is handed to the enclosing finish's
  /// accumulator on async exit.
  struct TaskFrame {
    uint32_t Id = 0;
    const Clock *Base = nullptr;
    std::unique_ptr<Clock> Own;
    std::vector<uint32_t> Learned;
  };

  static bool testClock(const Clock &C, uint32_t Id) {
    uint32_t W = Id >> 6;
    return W < C.size() && ((C[W] >> (Id & 63)) & 1);
  }

  /// Happens-before: is a previous access by task \p Id serialized before
  /// the current step?
  bool ordered(uint32_t Id) const {
    if (Active[Id])
      return true;
    const TaskFrame &T = Tasks.back();
    const Clock *C = T.Own ? T.Own.get() : T.Base;
    return C && testClock(*C, Id);
  }

  void recordRace(const Access &Prev, AccessKind PrevKind, DpstNode *CurStep,
                  AccessKind CurKind, MemLoc L);

  /// Per-slot check/update bodies shared by the single-access hooks and
  /// the batched run path, so both orders of entry produce byte-identical
  /// reports by construction.
  void readSlot(Shadow &S, DpstNode *Step, MemLoc L);
  void writeSlot(Shadow &S, DpstNode *Step, MemLoc L);

  /// The step receiving the current access; cached until the next
  /// structure event closes the step.
  DpstNode *curStep() {
    if (DpstNode *S = CachedStep)
      return S;
    return CachedStep = Builder.currentStep();
  }

  uint32_t curTaskId() const { return CurId; }

  Mode M;
  DpstBuilder &Builder;
  // Per-event instruments, bound at construction so each per-access hook
  // touches one relaxed atomic (see the scoping contract in obs/Metrics.h).
  obs::Counter *CChecks;
  obs::Counter *CReads;
  obs::Counter *CWrites;
  obs::Counter *CJoins;
  obs::Counter *CMaterialized;
  obs::Counter *CRaw;
  obs::Counter *CPairs;
  DpstNode *CachedStep = nullptr; ///< step-boundary-cached current step
  bool SawFuture = false; ///< any future so far => confirm races via S-DPST
  uint32_t CurId = 0;             ///< cached Tasks.back().Id
  std::vector<TaskFrame> Tasks;   ///< active-task stack (root at [0])
  std::vector<std::vector<uint32_t>> Finishes; ///< per-finish accumulators
  std::vector<uint8_t> Active;    ///< task id -> still on the task stack
  ShadowMemory<Shadow> Shadows;
  RaceReport Report;
  /// Pair key -> index into Report.Pairs, so duplicate observations can
  /// upgrade the kept witness (see witnessPreferred).
  std::unordered_map<uint64_t, uint32_t> SeenPairs;
};

} // namespace tdr

#endif // TDR_RACE_VECTORCLOCKDETECTOR_H
