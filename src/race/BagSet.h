//===- BagSet.h - Tagged union-find for ESP-bags -----------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The disjoint-set structure underlying ESP-bags. Every set ("bag") is
/// tagged S (serial: its members are ordered before the currently
/// executing step) or P (parallel: its members may run in parallel with
/// it). Path compression + union by rank give effectively O(1) operations.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_RACE_BAGSET_H
#define TDR_RACE_BAGSET_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace tdr {

/// Union-find over dense element ids with an S/P tag per set.
class BagSet {
public:
  enum class Tag : uint8_t { S, P };

  /// Creates a singleton set with the given tag; returns its element id.
  uint32_t makeSet(Tag T) {
    uint32_t Id = static_cast<uint32_t>(Parent.size());
    Parent.push_back(Id);
    Rank.push_back(0);
    Tags.push_back(T);
    return Id;
  }

  uint32_t find(uint32_t X) {
    assert(X < Parent.size());
    uint32_t Root = X;
    while (Parent[Root] != Root)
      Root = Parent[Root];
    while (Parent[X] != Root) {
      uint32_t Next = Parent[X];
      Parent[X] = Root;
      X = Next;
    }
    return Root;
  }

  /// Merges the sets of \p A and \p B; the merged set gets tag \p T.
  void merge(uint32_t A, uint32_t B, Tag T) {
    uint32_t RA = find(A), RB = find(B);
    if (RA == RB) {
      Tags[RA] = T;
      return;
    }
    if (Rank[RA] < Rank[RB])
      std::swap(RA, RB);
    Parent[RB] = RA;
    if (Rank[RA] == Rank[RB])
      ++Rank[RA];
    Tags[RA] = T;
  }

  Tag tagOf(uint32_t X) { return Tags[find(X)]; }
  bool isP(uint32_t X) { return tagOf(X) == Tag::P; }

  size_t size() const { return Parent.size(); }

private:
  std::vector<uint32_t> Parent;
  std::vector<uint8_t> Rank;
  std::vector<Tag> Tags;
};

} // namespace tdr

#endif // TDR_RACE_BAGSET_H
