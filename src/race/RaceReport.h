//===- RaceReport.h - Data race records --------------------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Race records shared by the detectors and the repair pipeline. A race is
/// an ordered pair of S-DPST steps: the *source* executes first in the
/// canonical depth-first order, the *sink* second (paper §4.2).
///
//===----------------------------------------------------------------------===//

#ifndef TDR_RACE_RACEREPORT_H
#define TDR_RACE_RACEREPORT_H

#include "interp/Value.h"

#include <cstdint>
#include <vector>

namespace tdr {

class DpstNode;

enum class AccessKind : uint8_t { Read, Write };

/// One detected data race between two steps.
struct RacePair {
  const DpstNode *Src = nullptr; ///< earlier step (depth-first order)
  const DpstNode *Snk = nullptr; ///< later step
  MemLoc Loc;                    ///< one location they both touch
  AccessKind SrcKind = AccessKind::Write;
  AccessKind SnkKind = AccessKind::Write;
};

/// Packs two step ids into the 64-bit key the detectors dedupe racing
/// pairs on. Normalized on the unordered pair — (A,B) and (B,A) yield the
/// same key — so the same race observed under different access orders
/// (e.g. across re-detection after a partial repair) dedupes consistently.
/// Each id keeps its own 32-bit half, so distinct unordered pairs never
/// collide even when ids coincide across the halves.
inline uint64_t packRacePairKey(uint32_t A, uint32_t B) {
  uint32_t Lo = A < B ? A : B;
  uint32_t Hi = A < B ? B : A;
  return (static_cast<uint64_t>(Lo) << 32) | Hi;
}

/// Result of one detection run.
struct RaceReport {
  /// Distinct racing step pairs (the input to repair). Deduplicated on
  /// (Src, Snk); Loc/kinds describe one witness access pair.
  std::vector<RacePair> Pairs;
  /// Total race reports before deduplication (every conflicting access
  /// pair observed) — the "number of data races" the paper's tables count.
  uint64_t RawCount = 0;

  bool empty() const { return Pairs.empty(); }
};

} // namespace tdr

#endif // TDR_RACE_RACEREPORT_H
