//===- RaceReport.h - Data race records --------------------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Race records shared by the detectors and the repair pipeline. A race is
/// an ordered pair of S-DPST steps: the *source* executes first in the
/// canonical depth-first order, the *sink* second (paper §4.2).
///
//===----------------------------------------------------------------------===//

#ifndef TDR_RACE_RACEREPORT_H
#define TDR_RACE_RACEREPORT_H

#include "interp/Value.h"

#include <cstdint>
#include <tuple>
#include <vector>

namespace tdr {

class DpstNode;

enum class AccessKind : uint8_t { Read, Write };

/// One detected data race between two steps.
struct RacePair {
  const DpstNode *Src = nullptr; ///< earlier step (depth-first order)
  const DpstNode *Snk = nullptr; ///< later step
  MemLoc Loc;                    ///< one location they both touch
  AccessKind SrcKind = AccessKind::Write;
  AccessKind SnkKind = AccessKind::Write;
};

/// Packs two step ids into the 64-bit key the detectors dedupe racing
/// pairs on. Normalized on the unordered pair — (A,B) and (B,A) yield the
/// same key — so the same race observed under different access orders
/// (e.g. across re-detection after a partial repair) dedupes consistently.
/// Each id keeps its own 32-bit half, so distinct unordered pairs never
/// collide even when ids coincide across the halves.
inline uint64_t packRacePairKey(uint32_t A, uint32_t B) {
  uint32_t Lo = A < B ? A : B;
  uint32_t Hi = A < B ? B : A;
  return (static_cast<uint64_t>(Lo) << 32) | Hi;
}

/// True when the witness payload (\p L, \p SrcK, \p SnkK) is strictly
/// preferred over the one currently kept in \p R for the same step pair.
/// Every detector applies the same rule, so the witness a deduplicated
/// pair keeps is a function of the set of conflicting accesses — not of
/// the order a backend, shadow policy, or replay happened to visit them:
/// more writes win (a write/write witness explains the race best), then
/// the lowest location, then the lowest access-kind pair.
inline bool witnessPreferred(const RacePair &R, MemLoc L, AccessKind SrcK,
                             AccessKind SnkK) {
  auto Writes = [](AccessKind A, AccessKind B) {
    return (A == AccessKind::Write ? 1 : 0) + (B == AccessKind::Write ? 1 : 0);
  };
  if (Writes(SrcK, SnkK) != Writes(R.SrcKind, R.SnkKind))
    return Writes(SrcK, SnkK) > Writes(R.SrcKind, R.SnkKind);
  auto LocKey = [](MemLoc M) {
    return std::make_tuple(static_cast<uint8_t>(M.K), M.Id, M.Index);
  };
  if (!(L == R.Loc))
    return LocKey(L) < LocKey(R.Loc);
  return std::make_tuple(static_cast<uint8_t>(SrcK),
                         static_cast<uint8_t>(SnkK)) <
         std::make_tuple(static_cast<uint8_t>(R.SrcKind),
                         static_cast<uint8_t>(R.SnkKind));
}

/// Result of one detection run.
struct RaceReport {
  /// Distinct racing step pairs (the input to repair). Deduplicated on
  /// (Src, Snk); Loc/kinds describe the preferred witness access pair
  /// (see witnessPreferred — deterministic across backends and replay).
  std::vector<RacePair> Pairs;
  /// Total race reports before deduplication (every conflicting access
  /// pair observed) — the "number of data races" the paper's tables count.
  uint64_t RawCount = 0;

  bool empty() const { return Pairs.empty(); }
};

} // namespace tdr

#endif // TDR_RACE_RACEREPORT_H
