//===- VectorClockDetector.cpp --------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "race/VectorClockDetector.h"

#include "obs/Metrics.h"

using namespace tdr;

VectorClockDetector::VectorClockDetector(Mode M, DpstBuilder &Builder)
    : M(M), Builder(Builder), CChecks(&obs::counter("vc.checks")),
      CReads(&obs::counter("vc.reads")), CWrites(&obs::counter("vc.writes")),
      CJoins(&obs::counter("vc.joins")),
      CMaterialized(&obs::counter("vc.clock_materializations")),
      CRaw(&obs::counter("race.reports_raw")),
      CPairs(&obs::counter("race.pairs")) {
  // The root task (id 0) and the implicit root finish.
  TaskFrame Root;
  Root.Id = 0;
  Tasks.push_back(std::move(Root));
  Active.push_back(1);
  Finishes.emplace_back();
  CurId = 0;
}

void VectorClockDetector::onAsyncEnter(const AsyncStmt *, const Stmt *) {
  CachedStep = nullptr;
  TaskFrame F;
  F.Id = static_cast<uint32_t>(Active.size());
  Active.push_back(1);
  // COW inheritance: the parent is suspended for the child's whole life
  // (canonical depth-first execution), so its effective clock is frozen
  // and safe to share by pointer.
  const TaskFrame &Parent = Tasks.back();
  F.Base = Parent.Own ? Parent.Own.get() : Parent.Base;
  CurId = F.Id;
  Tasks.push_back(std::move(F));
}

void VectorClockDetector::onAsyncExit(const AsyncStmt *) {
  CachedStep = nullptr;
  TaskFrame F = std::move(Tasks.back());
  Tasks.pop_back();
  Active[F.Id] = 0;
  CurId = Tasks.back().Id;
  // The completed task — and everything it learned beyond its inherited
  // base — is now pending in the innermost enclosing finish: parallel to
  // the parent's continuation until that finish joins it. This is the
  // S-bag-into-P-bag merge, as an id-list append.
  std::vector<uint32_t> &Acc = Finishes.back();
  Acc.push_back(F.Id);
  Acc.insert(Acc.end(), F.Learned.begin(), F.Learned.end());
}

void VectorClockDetector::onFinishEnter(const FinishStmt *, const Stmt *) {
  CachedStep = nullptr;
  Finishes.emplace_back();
}

void VectorClockDetector::onFinishExit(const FinishStmt *) {
  CachedStep = nullptr;
  std::vector<uint32_t> Acc = std::move(Finishes.back());
  Finishes.pop_back();
  if (Acc.empty())
    return;
  // The executing task learns every task the finish joined: materialize
  // its private clock (first learn copies the inherited base) and set the
  // joined bits. This is the P-bag-into-S-bag merge.
  TaskFrame &T = Tasks.back();
  if (!T.Own) {
    T.Own = T.Base ? std::make_unique<Clock>(*T.Base)
                   : std::make_unique<Clock>();
    CMaterialized->inc();
  }
  Clock &C = *T.Own;
  for (uint32_t Id : Acc) {
    uint32_t W = Id >> 6;
    if (W >= C.size())
      C.resize(W + 1, 0);
    C[W] |= uint64_t(1) << (Id & 63);
  }
  CJoins->inc(Acc.size());
  T.Learned.insert(T.Learned.end(), Acc.begin(), Acc.end());
}

void VectorClockDetector::onFutureEnter(const FutureStmt *, const Stmt *,
                                        uint32_t) {
  CachedStep = nullptr;
  SawFuture = true;
  // A future is an async fused with an implicit finish over its
  // initializer: new task id with COW-inherited clock, new accumulator.
  TaskFrame F;
  F.Id = static_cast<uint32_t>(Active.size());
  Active.push_back(1);
  const TaskFrame &Parent = Tasks.back();
  F.Base = Parent.Own ? Parent.Own.get() : Parent.Base;
  CurId = F.Id;
  Tasks.push_back(std::move(F));
  Finishes.emplace_back();
}

void VectorClockDetector::onFutureExit(const FutureStmt *) {
  // Implicit finish exit: the future task learns whatever its initializer
  // spawned, then exits like an async — pending in the enclosing finish,
  // parallel to the continuation until forced or joined. The force edge is
  // not a clock merge; recordRace confirms positives against the S-DPST
  // once futures are in play, exactly like the ESP-bags backend.
  onFinishExit(nullptr);
  onAsyncExit(nullptr);
}

void VectorClockDetector::onForce(uint32_t) {
  // The builder closes the current step; drop the cache.
  CachedStep = nullptr;
}

void VectorClockDetector::onIsolatedEnter(const IsolatedStmt *, const Stmt *) {
  CachedStep = nullptr;
}

void VectorClockDetector::onIsolatedExit(const IsolatedStmt *) {
  CachedStep = nullptr;
}

void VectorClockDetector::onScopeEnter(ScopeKind, const Stmt *,
                                       const BlockStmt *, const FuncDecl *) {
  // Scope boundaries close the builder's current step; drop the cache so
  // the next access re-resolves it.
  CachedStep = nullptr;
}

void VectorClockDetector::onScopeExit() { CachedStep = nullptr; }

void VectorClockDetector::recordRace(const Access &Prev, AccessKind PrevKind,
                                     DpstNode *CurStep, AccessKind CurKind,
                                     MemLoc L) {
  // Mirrors the EspBags suppression exactly (same shared S-DPST queries,
  // no counter bumps), preserving byte-identical cross-backend reports.
  if (Dpst::bothIsolated(Prev.Step, CurStep))
    return;
  if (SawFuture && !Builder.tree().mayHappenInParallel(Prev.Step, CurStep))
    return;
  CRaw->inc();
  ++Report.RawCount;
  auto [It, Inserted] = SeenPairs.try_emplace(
      packRacePairKey(Prev.Step->id(), CurStep->id()),
      static_cast<uint32_t>(Report.Pairs.size()));
  if (!Inserted) {
    RacePair &Kept = Report.Pairs[It->second];
    if (witnessPreferred(Kept, L, PrevKind, CurKind)) {
      Kept.Loc = L;
      Kept.SrcKind = PrevKind;
      Kept.SnkKind = CurKind;
    }
    return;
  }
  CPairs->inc();
  RacePair R;
  R.Src = Prev.Step;
  R.Snk = CurStep;
  R.Loc = L;
  R.SrcKind = PrevKind;
  R.SnkKind = CurKind;
  Report.Pairs.push_back(R);
}

void VectorClockDetector::onRead(MemLoc L) {
  CReads->inc();
  readSlot(Shadows.slot(L), curStep(), L);
}

void VectorClockDetector::onWrite(MemLoc L) {
  CWrites->inc();
  writeSlot(Shadows.slot(L), curStep(), L);
}

void VectorClockDetector::onReadRun(MemLoc L, uint64_t N) {
  CReads->inc(N);
  DpstNode *Step = curStep();
  Shadows.forRun(L, N,
                 [&](Shadow &S, MemLoc At) { readSlot(S, Step, At); });
}

void VectorClockDetector::onWriteRun(MemLoc L, uint64_t N) {
  CWrites->inc(N);
  DpstNode *Step = curStep();
  Shadows.forRun(L, N,
                 [&](Shadow &S, MemLoc At) { writeSlot(S, Step, At); });
}

void VectorClockDetector::readSlot(Shadow &S, DpstNode *Step, MemLoc L) {
  CChecks->inc(S.Writers.size());

  for (const Access &W : S.Writers)
    if (W.Step != Step && !ordered(W.Task))
      recordRace(W, AccessKind::Write, Step, AccessKind::Read, L);

  if (M == Mode::SRW) {
    // Keep a single reader; replace it only when it is serialized with the
    // current step (a parallel reader is the more dangerous witness for
    // future writes).
    if (S.Readers.empty())
      S.Readers.push_back(Access{curTaskId(), Step});
    else if (ordered(S.Readers[0].Task))
      S.Readers[0] = Access{curTaskId(), Step};
    return;
  }
  // MRW: track every reader, deduplicating per step (accesses between two
  // step boundaries come from one step, so checking the tail suffices).
  if (S.Readers.empty() || S.Readers.back().Step != Step)
    S.Readers.push_back(Access{curTaskId(), Step});
}

void VectorClockDetector::writeSlot(Shadow &S, DpstNode *Step, MemLoc L) {
  CChecks->inc(S.Writers.size() + S.Readers.size());

  for (const Access &W : S.Writers)
    if (W.Step != Step && !ordered(W.Task))
      recordRace(W, AccessKind::Write, Step, AccessKind::Write, L);
  for (const Access &R : S.Readers)
    if (R.Step != Step && !ordered(R.Task))
      recordRace(R, AccessKind::Read, Step, AccessKind::Write, L);

  if (M == Mode::SRW) {
    if (S.Writers.empty())
      S.Writers.push_back(Access{curTaskId(), Step});
    else
      S.Writers[0] = Access{curTaskId(), Step};
    return;
  }
  if (S.Writers.empty() || S.Writers.back().Step != Step)
    S.Writers.push_back(Access{curTaskId(), Step});
}

RaceReport VectorClockDetector::takeReport() { return std::move(Report); }
