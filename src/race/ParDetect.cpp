//===- ParDetect.cpp ------------------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "race/ParDetect.h"

#include "obs/Metrics.h"
#include "race/ShadowMemory.h"
#include "runtime/Runtime.h"
#include "support/Timer.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <deque>
#include <thread>
#include <unordered_map>
#include <vector>

using namespace tdr;

namespace {

//===----------------------------------------------------------------------===//
// Dag-path task labels
//===----------------------------------------------------------------------===//

/// Immutable-after-pre-pass label of one dynamic task: the task's position
/// in the ESP-bags merge history, expressed as ticks on the global event
/// clock. The S-bag of a task joins the innermost finish's P-bag when the
/// task exits (AsyncExit), and that P-bag folds into the owning task's
/// S-bag when the finish exits (JoinExit, Next = owning task). A task is
/// therefore P-classified at tick T iff the walk from its label reaches a
/// link whose task had exited but was not yet joined at T.
struct TaskLab {
  uint64_t AsyncExit = 0; ///< tick of this task's AsyncExit (0: never exits)
  uint64_t JoinExit = 0;  ///< tick of the joining FinishExit (0: never joins)
  TaskLab *Next = nullptr; ///< task whose S-bag absorbed the join
};

/// True iff an access by task \p U happens-before (is serialized with) an
/// access at tick \p T — the label-walk equivalent of !BagSet::isP at the
/// moment the sequential scan would evaluate it. O(depth of the merge
/// chain), touching only immutable pre-pass state, so any worker may ask.
bool orderedAt(const TaskLab *U, uint64_t T) {
  for (;;) {
    if (!U->AsyncExit || T < U->AsyncExit)
      return true; // still in its own (or an absorbed) S-bag
    if (!U->JoinExit || T < U->JoinExit)
      return false; // sitting in a pending finish's P-bag
    U = U->Next;    // joined: classified like the absorbing task
  }
}

//===----------------------------------------------------------------------===//
// Sequential pre-pass
//===----------------------------------------------------------------------===//

/// One memory access of the flattened log.
struct AccessRec {
  MemLoc L;
  DpstNode *Step = nullptr;
  TaskLab *Task = nullptr;
  uint64_t Tick = 0;
  bool IsWrite = false;
};

/// Replay monitor of the pre-pass: feeds the S-DPST builder, stamps every
/// event with a global tick, maintains the task-label chains, and flattens
/// accesses into one array. Step resolution mirrors EspBagsDetector's
/// caching exactly (invalidated at async/finish/scope boundaries only), so
/// accesses land in the same step nodes the sequential backends use.
class PrepassMonitor final : public ExecMonitor {
public:
  explicit PrepassMonitor(DpstBuilder &B) : B(B) {
    Labels.emplace_back(); // root task: never exits, always S-classified
    TaskStack.push_back(&Labels.back());
    FinishPending.emplace_back(); // implicit root finish: never joins
  }

  void onAsyncEnter(const AsyncStmt *S, const Stmt *Owner) override {
    ++Tick;
    CachedStep = nullptr;
    B.DpstBuilder::onAsyncEnter(S, Owner);
    Labels.emplace_back();
    TaskStack.push_back(&Labels.back());
  }
  void onAsyncExit(const AsyncStmt *S) override {
    uint64_t T = ++Tick;
    CachedStep = nullptr;
    B.DpstBuilder::onAsyncExit(S);
    TaskLab *U = TaskStack.back();
    TaskStack.pop_back();
    U->AsyncExit = T;
    FinishPending.back().push_back(U);
  }
  void onFinishEnter(const FinishStmt *S, const Stmt *Owner) override {
    ++Tick;
    CachedStep = nullptr;
    B.DpstBuilder::onFinishEnter(S, Owner);
    FinishPending.emplace_back();
  }
  void onFinishExit(const FinishStmt *S) override {
    uint64_t T = ++Tick;
    CachedStep = nullptr;
    B.DpstBuilder::onFinishExit(S);
    std::vector<TaskLab *> Joined = std::move(FinishPending.back());
    FinishPending.pop_back();
    for (TaskLab *U : Joined) {
      U->JoinExit = T;
      U->Next = TaskStack.back();
    }
  }
  void onFutureEnter(const FutureStmt *S, const Stmt *Owner,
                     uint32_t Fid) override {
    ++Tick;
    CachedStep = nullptr;
    SawFuture = true;
    B.DpstBuilder::onFutureEnter(S, Owner, Fid);
    // A future is an async fused with an implicit finish over its
    // initializer: new label (task) plus new pending slot (finish).
    Labels.emplace_back();
    TaskStack.push_back(&Labels.back());
    FinishPending.emplace_back();
  }
  void onFutureExit(const FutureStmt *S) override {
    uint64_t T = ++Tick;
    CachedStep = nullptr;
    B.DpstBuilder::onFutureExit(S);
    // Implicit finish exit first (inner tasks join into the future task),
    // then the future exits like an async into the enclosing finish. One
    // tick for both halves, matching the single event of the sequential
    // backends. Force edges are not representable in the label chains, so
    // Phase B confirms label-positive pairs against the S-DPST.
    std::vector<TaskLab *> Joined = std::move(FinishPending.back());
    FinishPending.pop_back();
    for (TaskLab *U : Joined) {
      U->JoinExit = T;
      U->Next = TaskStack.back();
    }
    TaskLab *U = TaskStack.back();
    TaskStack.pop_back();
    U->AsyncExit = T;
    FinishPending.back().push_back(U);
  }
  void onForce(uint32_t Fid) override {
    ++Tick;
    CachedStep = nullptr;
    B.DpstBuilder::onForce(Fid);
  }
  void onIsolatedEnter(const IsolatedStmt *S, const Stmt *Owner) override {
    ++Tick;
    CachedStep = nullptr;
    B.DpstBuilder::onIsolatedEnter(S, Owner);
  }
  void onIsolatedExit(const IsolatedStmt *S) override {
    ++Tick;
    CachedStep = nullptr;
    B.DpstBuilder::onIsolatedExit(S);
  }
  void onScopeEnter(ScopeKind K, const Stmt *Owner, const BlockStmt *Body,
                    const FuncDecl *Callee) override {
    ++Tick;
    CachedStep = nullptr;
    B.DpstBuilder::onScopeEnter(K, Owner, Body, Callee);
  }
  void onScopeExit() override {
    ++Tick;
    CachedStep = nullptr;
    B.DpstBuilder::onScopeExit();
  }
  void onStepPoint(const Stmt *Owner) override {
    ++Tick;
    B.DpstBuilder::onStepPoint(Owner);
  }
  void onWork(uint64_t Units) override {
    ++Tick;
    B.DpstBuilder::onWork(Units);
  }
  void onRead(MemLoc L) override { recordAccess(L, /*IsWrite=*/false); }
  void onWrite(MemLoc L) override { recordAccess(L, /*IsWrite=*/true); }

  std::vector<AccessRec> takeAccesses() { return std::move(Accesses); }

  /// True when the stream contained at least one future (Phase B must then
  /// confirm label-positive pairs against the S-DPST).
  bool sawFuture() const { return SawFuture; }

private:
  void recordAccess(MemLoc L, bool IsWrite) {
    uint64_t T = ++Tick;
    DpstNode *Step = CachedStep;
    if (!Step)
      Step = CachedStep = B.currentStep();
    Accesses.push_back(AccessRec{L, Step, TaskStack.back(), T, IsWrite});
  }

  DpstBuilder &B;
  std::deque<TaskLab> Labels; ///< deque: labels never move
  std::vector<TaskLab *> TaskStack;
  /// Per active finish (innermost last): tasks whose S-bags merged into
  /// its P-bag, waiting for the join tick. [0] is the implicit root
  /// finish, which never exits — its tasks stay P-classified forever.
  std::vector<std::vector<TaskLab *>> FinishPending;
  uint64_t Tick = 0;
  DpstNode *CachedStep = nullptr;
  bool SawFuture = false;
  std::vector<AccessRec> Accesses;
};

//===----------------------------------------------------------------------===//
// Phase A: per-chunk access summaries
//===----------------------------------------------------------------------===//

/// Everything Phase B needs to know about one step's accesses to one
/// location. Steps are contiguous in the log and chunks snap to step
/// boundaries, so each (location, step) pair lives in exactly one chunk
/// and appears at most once in that chunk's list.
struct StepSum {
  DpstNode *Step = nullptr;
  TaskLab *Task = nullptr;
  uint64_t FirstAny = 0; ///< tick of the step's first access to L
  uint64_t FirstR = 0;   ///< tick of its first read of L (0: none)
  uint64_t FirstW = 0;   ///< tick of its first write of L (0: none)
  uint32_t NR = 0;       ///< read events on L
  uint32_t NW = 0;       ///< write events on L
  uint32_t RBW = 0;      ///< reads before the first write (SRW raw math)
};

/// Per-chunk, per-location summary list in first-touch order.
struct LocEntry {
  MemLoc L;
  std::vector<StepSum> Sums;
};

/// The par analogue of the sequential backends' recordRace suppression:
/// isolated steps commute, and with futures in play the labels
/// over-approximate (a force join edge is not a label link), so positives
/// are confirmed against the shared S-DPST. The tree is immutable after
/// the pre-pass and mayHappenInParallel only reads it, so any Phase B
/// worker may ask concurrently.
struct SuppressCtx {
  const Dpst *Tree = nullptr;
  bool HasFutures = false;

  bool suppressed(const StepSum &A, const StepSum &B) const {
    if (Dpst::bothIsolated(A.Step, B.Step))
      return true;
    return HasFutures && !Tree->mayHappenInParallel(A.Step, B.Step);
  }
};

/// Shadow slot of one Phase A worker: 1-based index into its LocEntry
/// list (0 = untouched), so the private shard never hashes.
struct ShardSlot {
  static constexpr bool AllZeroInit = true;
  uint32_t Idx = 0;
};

void scanChunk(const std::vector<AccessRec> &Accesses, size_t Lo, size_t Hi,
               std::vector<LocEntry> &Out, std::atomic<uint64_t> &ShardUsed,
               std::atomic<uint64_t> &ShardReserved) {
  ShadowMemory<ShardSlot> Shard;
  for (size_t I = Lo; I != Hi; ++I) {
    const AccessRec &A = Accesses[I];
    ShardSlot &Slot = Shard.slot(A.L);
    if (!Slot.Idx) {
      Out.push_back(LocEntry{A.L, {}});
      Slot.Idx = static_cast<uint32_t>(Out.size());
    }
    std::vector<StepSum> &Sums = Out[Slot.Idx - 1].Sums;
    if (Sums.empty() || Sums.back().Step != A.Step) {
      StepSum S;
      S.Step = A.Step;
      S.Task = A.Task;
      S.FirstAny = A.Tick;
      Sums.push_back(S);
    }
    StepSum &S = Sums.back();
    if (A.IsWrite) {
      if (!S.NW)
        S.FirstW = A.Tick;
      ++S.NW;
    } else {
      if (!S.NR)
        S.FirstR = A.Tick;
      ++S.NR;
      if (!S.NW)
        ++S.RBW;
    }
  }
  // The backend's "shadow" is the union of the per-chunk shards; summing
  // their peaks gives the comparable footprint the shadow.* gauges report.
  ShardUsed.fetch_add(Shard.bytesUsed(), std::memory_order_relaxed);
  ShardReserved.fetch_add(Shard.bytesReserved(), std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Phase B: race detection from summary pairs
//===----------------------------------------------------------------------===//

/// The tick the *sequential* scan would first observe a racing pair at:
/// the observing access event, then the scan tier within that event
/// (writer list before reader list), then the previous access's position
/// in its list (== its first-access tick on the location). Minimizing this
/// key over every observation reproduces the sequential insertion order.
struct InsKey {
  uint64_t Ev = ~uint64_t(0);
  uint8_t Tier = 0xFF;
  uint64_t Prev = ~uint64_t(0);

  bool operator<(const InsKey &O) const {
    if (Ev != O.Ev)
      return Ev < O.Ev;
    if (Tier != O.Tier)
      return Tier < O.Tier;
    return Prev < O.Prev;
  }
};

/// Accumulated findings for one racing step pair.
struct PairAgg {
  RacePair Pair;
  InsKey Ins;
  uint64_t Raw = 0;
  bool HasWitness = false;

  void observeIns(uint64_t Ev, uint8_t Tier, uint64_t Prev) {
    InsKey K{Ev, Tier, Prev};
    if (K < Ins)
      Ins = K;
  }
  void observeWitness(MemLoc L, AccessKind SrcK, AccessKind SnkK) {
    if (!HasWitness || witnessPreferred(Pair, L, SrcK, SnkK)) {
      Pair.Loc = L;
      Pair.SrcKind = SrcK;
      Pair.SnkKind = SnkK;
      HasWitness = true;
    }
  }
};

using Findings = std::unordered_map<uint64_t, PairAgg>;

PairAgg &pairAgg(Findings &F, const StepSum &A, const StepSum &B) {
  uint64_t Key = packRacePairKey(A.Step->id(), B.Step->id());
  PairAgg &G = F[Key];
  if (!G.Pair.Src) {
    G.Pair.Src = A.Step; // A precedes B in the log, hence in DF order
    G.Pair.Snk = B.Step;
  }
  return G;
}

/// MRW: every (earlier, later) step-summary pair on the location is an
/// independent check, exactly as the sequential scan keeps every reader
/// and writer in its lists.
uint64_t mergeLocationMrw(MemLoc L, const std::vector<StepSum> &Sums,
                          const SuppressCtx &Sup, Findings &F) {
  uint64_t Checks = 0;
  for (size_t J = 1; J < Sums.size(); ++J) {
    const StepSum &B = Sums[J];
    for (size_t I = 0; I != J; ++I) {
      const StepSum &A = Sums[I];
      if (!A.NW && !B.NW)
        continue; // read/read pairs race with nobody
      ++Checks;
      if (orderedAt(A.Task, B.FirstAny))
        continue;
      if (Sup.suppressed(A, B))
        continue;
      PairAgg &G = pairAgg(F, A, B);
      if (A.NW) {
        G.Raw += B.NR + B.NW;
        if (B.NR) {
          G.observeWitness(L, AccessKind::Write, AccessKind::Read);
          G.observeIns(B.FirstR, 0, A.FirstW);
        }
        if (B.NW) {
          G.observeWitness(L, AccessKind::Write, AccessKind::Write);
          G.observeIns(B.FirstW, 0, A.FirstW);
        }
      }
      if (A.NR && B.NW) {
        G.Raw += B.NW;
        G.observeWitness(L, AccessKind::Read, AccessKind::Write);
        G.observeIns(B.FirstW, 1, A.FirstR);
      }
    }
  }
  return Checks;
}

/// SRW: replays the one-writer/one-reader shadow automaton over the step
/// summaries. Within a step the interleaving matters only through "reads
/// before the first write" (the step's own write takes over the writer
/// cell and silences later checks), which Phase A pre-counted.
uint64_t mergeLocationSrw(MemLoc L, const std::vector<StepSum> &Sums,
                          const SuppressCtx &Sup, Findings &F) {
  uint64_t Checks = 0;
  const StepSum *W0 = nullptr;
  const StepSum *R0 = nullptr;
  for (const StepSum &B : Sums) {
    if (W0) {
      ++Checks;
      if (!orderedAt(W0->Task, B.FirstAny) && !Sup.suppressed(*W0, B)) {
        uint32_t RaceReads = B.NW ? B.RBW : B.NR;
        if (RaceReads || B.NW) {
          PairAgg &G = pairAgg(F, *W0, B);
          G.Raw += RaceReads + (B.NW ? 1 : 0);
          if (RaceReads) {
            G.observeWitness(L, AccessKind::Write, AccessKind::Read);
            G.observeIns(B.FirstR, 0, W0->FirstW);
          }
          if (B.NW) {
            G.observeWitness(L, AccessKind::Write, AccessKind::Write);
            G.observeIns(B.FirstW, 0, W0->FirstW);
          }
        }
      }
    }
    bool R0Ordered = !R0 || orderedAt(R0->Task, B.FirstAny);
    if (R0 && B.NW) {
      ++Checks;
      if (!R0Ordered && !Sup.suppressed(*R0, B)) {
        PairAgg &G = pairAgg(F, *R0, B);
        G.Raw += B.NW;
        G.observeWitness(L, AccessKind::Read, AccessKind::Write);
        G.observeIns(B.FirstW, 1, R0->FirstR);
      }
    }
    // Shadow-cell update: the writer cell always takes the latest writer;
    // the reader cell is only replaced when its occupant is serialized
    // with the replacing read (a parallel reader is the more dangerous
    // witness for future writes).
    if (B.NW)
      W0 = &B;
    if (B.NR && R0Ordered)
      R0 = &B;
  }
  return Checks;
}

//===----------------------------------------------------------------------===//
// Pipeline driver
//===----------------------------------------------------------------------===//

/// Chunk boundaries over the access array: W near-equal ranges, snapped
/// forward to the next step boundary so no step straddles a chunk (which
/// is what makes per-chunk summaries loss-free).
std::vector<size_t> chunkBounds(const std::vector<AccessRec> &Accesses,
                                unsigned W) {
  std::vector<size_t> Bounds;
  size_t N = Accesses.size();
  Bounds.push_back(0);
  for (unsigned K = 1; K < W; ++K) {
    size_t T = N * K / W;
    while (T > 0 && T < N && Accesses[T].Step == Accesses[T - 1].Step)
      ++T;
    if (T > Bounds.back() && T < N)
      Bounds.push_back(T);
  }
  Bounds.push_back(N);
  return Bounds;
}

RaceReport runPipeline(std::vector<AccessRec> Accesses,
                       EspBagsDetector::Mode Mode, unsigned Workers,
                       const SuppressCtx &Sup, size_t &ShadowUsedOut,
                       size_t &ShadowReservedOut) {
  obs::Counter *CChunks = &obs::counter("par.chunks");
  obs::Counter *CSummaries = &obs::counter("par.summaries");
  // Same counter family every backend maintains (<backend>.reads/writes/
  // checks); "checks" here counts Phase B summary-pair comparisons, the
  // par analogue of the sequential backends' per-access ordering queries.
  obs::Counter *CChecks = &obs::counter("par.checks");
  obs::Counter *CReads = &obs::counter("par.reads");
  obs::Counter *CWrites = &obs::counter("par.writes");
  obs::Counter *CRaw = &obs::counter("race.reports_raw");
  obs::Counter *CPairs = &obs::counter("race.pairs");

  RaceReport Report;
  if (Accesses.empty())
    return Report;

  uint64_t NumWrites = 0;
  for (const AccessRec &A : Accesses)
    NumWrites += A.IsWrite;
  CWrites->inc(NumWrites);
  CReads->inc(Accesses.size() - NumWrites);

  std::vector<size_t> Bounds = chunkBounds(Accesses, Workers);
  size_t NumChunks = Bounds.size() - 1;
  CChunks->inc(NumChunks);
  obs::gauge("par.workers").set(static_cast<int64_t>(Workers));

  // Phase A: one private summary shard per chunk.
  Timer ScanTimer;
  std::vector<std::vector<LocEntry>> ChunkLists(NumChunks);
  // Phase B: dynamic load balancing — workers pull location groups off a
  // shared cursor, so one hot location cannot serialize the merge.
  struct LocGroup {
    MemLoc L;
    std::vector<StepSum> Sums;
  };
  std::vector<LocGroup> Groups;
  std::atomic<size_t> Cursor{0};
  std::atomic<uint64_t> ShardUsed{0};
  std::atomic<uint64_t> ShardReserved{0};
  std::vector<Findings> WorkerFindings(Workers);
  std::vector<uint64_t> WorkerChecks(Workers, 0);

  auto gather = [&] {
    std::unordered_map<MemLoc, uint32_t, MemLocHash> GroupOf;
    for (std::vector<LocEntry> &List : ChunkLists)
      for (LocEntry &E : List) {
        CSummaries->inc(E.Sums.size());
        auto [It, Inserted] =
            GroupOf.try_emplace(E.L, static_cast<uint32_t>(Groups.size()));
        if (Inserted)
          Groups.push_back(LocGroup{E.L, std::move(E.Sums)});
        else {
          std::vector<StepSum> &Dst = Groups[It->second].Sums;
          Dst.insert(Dst.end(), E.Sums.begin(), E.Sums.end());
        }
      }
  };
  auto mergeWorker = [&](unsigned Id) {
    Findings &F = WorkerFindings[Id];
    uint64_t Checks = 0;
    for (size_t I; (I = Cursor.fetch_add(1, std::memory_order_relaxed)) <
                   Groups.size();) {
      const LocGroup &G = Groups[I];
      Checks += Mode == EspBagsDetector::Mode::SRW
                    ? mergeLocationSrw(G.L, G.Sums, Sup, F)
                    : mergeLocationMrw(G.L, G.Sums, Sup, F);
    }
    WorkerChecks[Id] = Checks;
  };

  if (NumChunks <= 1 || Workers <= 1) {
    for (size_t C = 0; C != NumChunks; ++C)
      scanChunk(Accesses, Bounds[C], Bounds[C + 1], ChunkLists[C], ShardUsed,
                ShardReserved);
    obs::histogram("par.scan_ms").observe(ScanTimer.elapsedMs());
    Timer MergeTimer;
    gather();
    mergeWorker(0);
    obs::histogram("par.merge_ms").observe(MergeTimer.elapsedMs());
  } else {
    Runtime RT(Workers);
    double ScanMs = 0;
    double MergeMs = 0;
    RT.run([&] {
      {
        FinishScope Fin;
        for (size_t C = 0; C != NumChunks; ++C)
          Fin.async([&, C] {
            scanChunk(Accesses, Bounds[C], Bounds[C + 1], ChunkLists[C],
                      ShardUsed, ShardReserved);
          });
      } // joins Phase A
      ScanMs = ScanTimer.elapsedMs();
      Timer MergeTimer;
      gather();
      {
        FinishScope Fin;
        for (unsigned Id = 0; Id != Workers; ++Id)
          Fin.async([&, Id] { mergeWorker(Id); });
      } // joins Phase B
      MergeMs = MergeTimer.elapsedMs();
    });
    obs::histogram("par.scan_ms").observe(ScanMs);
    obs::histogram("par.merge_ms").observe(MergeMs);
  }

  // Fold: combine per-worker findings (order-independent: raw counts add,
  // insertion keys minimize, witnesses resolve with witnessPreferred),
  // then emit pairs in sequential first-observation order.
  Timer FoldTimer;
  Findings Merged = std::move(WorkerFindings[0]);
  for (unsigned Id = 1; Id < Workers; ++Id)
    for (auto &[Key, G] : WorkerFindings[Id]) {
      auto [It, Inserted] = Merged.try_emplace(Key, G);
      if (Inserted)
        continue;
      PairAgg &Dst = It->second;
      Dst.Raw += G.Raw;
      if (G.Ins < Dst.Ins)
        Dst.Ins = G.Ins;
      Dst.observeWitness(G.Pair.Loc, G.Pair.SrcKind, G.Pair.SnkKind);
    }
  for (uint64_t Checks : WorkerChecks)
    CChecks->inc(Checks);

  std::vector<const PairAgg *> Order;
  Order.reserve(Merged.size());
  for (const auto &[Key, G] : Merged) {
    Report.RawCount += G.Raw;
    Order.push_back(&G);
  }
  std::sort(Order.begin(), Order.end(),
            [](const PairAgg *A, const PairAgg *B) { return A->Ins < B->Ins; });
  Report.Pairs.reserve(Order.size());
  for (const PairAgg *G : Order)
    Report.Pairs.push_back(G->Pair);
  CRaw->inc(Report.RawCount);
  CPairs->inc(Report.Pairs.size());
  obs::histogram("par.fold_ms").observe(FoldTimer.elapsedMs());
  ShadowUsedOut = ShardUsed.load(std::memory_order_relaxed);
  ShadowReservedOut = ShardReserved.load(std::memory_order_relaxed);
  return Report;
}

} // namespace

unsigned tdr::resolveParWorkers(unsigned Requested, size_t NumAccesses) {
  if (Requested)
    return Requested;
  if (const char *E = std::getenv("TDR_PAR_WORKERS")) {
    long V = std::strtol(E, nullptr, 10);
    if (V > 0)
      return static_cast<unsigned>(V < 64 ? V : 64);
  }
  unsigned HW = std::thread::hardware_concurrency();
  unsigned W = HW ? (HW < 8 ? HW : 8) : 4;
  // Small logs are not worth a pool: keep every chunk at a few thousand
  // records so the unit-test and repair-loop paths stay lean.
  size_t ByRecords = NumAccesses / 2048 + 1;
  if (ByRecords < W)
    W = static_cast<unsigned>(ByRecords);
  return W ? W : 1;
}

Detection tdr::parDetectReplay(const DetectOptions &Opts,
                               const trace::InputTrace &T,
                               const trace::ReplayPlan &Plan) {
  obs::counter("par.runs").inc();
  Detection D;
  D.Tree = std::make_unique<Dpst>();
  DpstBuilder Builder(*D.Tree);
  PrepassMonitor Pre(Builder);
  Timer PrepassTimer;
  trace::replayEvents(T.Log, Plan, Pre);
  obs::histogram("par.prepass_ms").observe(PrepassTimer.elapsedMs());
  D.Exec = T.Exec;
  std::vector<AccessRec> Accesses = Pre.takeAccesses();
  unsigned Workers = resolveParWorkers(Opts.ParWorkers, Accesses.size());
  SuppressCtx Sup{D.Tree.get(), Pre.sawFuture()};
  D.Report = runPipeline(std::move(Accesses), Opts.Mode, Workers, Sup,
                         D.ShadowBytesUsed, D.ShadowBytesReserved);
  return D;
}

Detection tdr::parDetectLive(const Program &P, const DetectOptions &Opts,
                             ExecOptions Exec) {
  // Live mode records the interpreter's stream, then detects over the log
  // exactly like replay mode — recording is the price of partitioning.
  trace::InputTrace T;
  trace::RecorderMonitor Recorder(T.Log);
  MonitorPipeline Pipeline;
  if (Exec.Monitor) {
    Pipeline.add(Exec.Monitor);
    Pipeline.add(&Recorder);
    Exec.Monitor = &Pipeline;
  } else {
    Exec.Monitor = &Recorder;
  }
  T.Exec = runProgram(P, std::move(Exec));
  Recorder.flush();
  return parDetectReplay(Opts, T, trace::ReplayPlan());
}
