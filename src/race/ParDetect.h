//===- ParDetect.h - Partitioned parallel race detection ---------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "par" detection backend: detection over a recorded event log,
/// partitioned into contiguous chunks and scanned by detector workers on
/// the work-stealing Runtime pool.
///
/// Sequential detectors interleave happens-before bookkeeping with the
/// shadow-memory scan, so they are inherently serial. This backend splits
/// the two concerns:
///
///  1. *Pre-pass* (sequential): the log is replayed once through the
///     S-DPST builder plus a labeler that assigns every dynamic task a
///     compact dag-path label — a chain of (async-exit tick, join tick,
///     parent label) links mirroring the ESP-bags merge history (in the
///     spirit of DePa's graded dag paths). After the pre-pass the labels
///     are immutable, and `ordered(task, tick)` is answered by a short
///     chain walk with no shared Dpst or union-find mutation. Accesses are
///     flattened into one array of records.
///  2. *Phase A* (parallel): the access array is split into contiguous
///     chunks snapped to step boundaries; one worker per chunk builds a
///     private ShadowMemory shard of per-(location, step) access summaries
///     (read/write counts plus first-access ticks).
///  3. *Phase B* (parallel): per-location summary lists are concatenated
///     in chunk order — equal to global step order — and workers detect
///     races from summary pairs, including pairs split across chunk edges.
///  4. *Fold* (sequential): per-worker findings merge by racing step pair;
///     raw counts add, the kept witness is resolved with witnessPreferred,
///     and pairs sort by the tick the sequential scan would first have
///     observed them, making the report byte-identical (renderRaceReportKey)
///     to the ESP-bags and vector-clock backends on the same stream.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_RACE_PARDETECT_H
#define TDR_RACE_PARDETECT_H

#include "race/Detect.h"

namespace tdr {

/// Worker count for one par-backend detection: \p Requested when nonzero
/// (DetectOptions::ParWorkers), else TDR_PAR_WORKERS from the environment,
/// else a hardware-based default scaled down so every chunk keeps enough
/// access records to be worth a task.
unsigned resolveParWorkers(unsigned Requested, size_t NumAccesses);

/// Live par detection: interprets \p P while recording the event stream,
/// then runs the partitioned pipeline over the log.
Detection parDetectLive(const Program &P, const DetectOptions &Opts,
                        ExecOptions Exec);

/// Log-backed par detection (the replay-mode overload of detectRaces).
Detection parDetectReplay(const DetectOptions &Opts, const trace::InputTrace &T,
                          const trace::ReplayPlan &Plan);

} // namespace tdr

#endif // TDR_RACE_PARDETECT_H
