//===- RunReport.h - Structured run reports ----------------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-readable output of a tool run: a schema-versioned JSON
/// document (`--report out.json` on `tdr races/repair/batch`) carrying,
/// per job, the run stats, every iteration's race witnesses (see
/// Witness.h) and the provenance of every inserted finish — which
/// dependence edges forced it, what it cost on the critical path, and
/// which placements the DP tried but the AST mapping rejected.
///
/// The schema is additive: "schema" names the document family,
/// "version" bumps on breaking changes; validators (tools/check_report.py)
/// and `tdr explain` accept the pair they know.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_DIAG_RUNREPORT_H
#define TDR_DIAG_RUNREPORT_H

#include "diag/Witness.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace tdr {

namespace json {
class Value;
} // namespace json

namespace diag {

/// Document family / version emitted by renderRunReportJson.
///
/// Version 2 generalized the provenance from "inserted finishes" to
/// per-construct repairs: each provenance entry carries a "construct"
/// member ("finish" | "force" | "isolated") and an "alternatives" array
/// (the other constructs considered for the entry's edges, with modeled
/// costs), and job stats grew "forces_inserted" / "isolated_inserted".
inline constexpr const char *ReportSchemaName = "tdr-report";
inline constexpr int ReportSchemaVersion = 2;

/// A placement the DP proposed but the static placer could not map onto
/// the AST (and why) — the "rejected placements" part of provenance.
struct PlacementRejection {
  uint32_t Begin = 0; ///< first covered non-scope child index
  uint32_t End = 0;   ///< last covered non-scope child index
  std::string Reason;
};

/// A repair construct the chooser considered for an edge and did not
/// pick: either feasible but costlier, or inapplicable (Reason says why).
struct RepairAlternative {
  std::string Construct; ///< "finish" | "force" | "isolated"
  bool Feasible = false;
  uint64_t Cost = 0;     ///< modeled group cost when feasible
  std::string Reason;
};

/// Why one synthesized repair (finish, force, or isolated) exists.
struct FinishProvenance {
  unsigned Iteration = 0;    ///< repair-loop iteration that inserted it
  uint32_t GroupLcaId = 0;   ///< NS-LCA node of the dependence group
  /// The construct this entry inserted ("finish" | "force" | "isolated").
  std::string Construct = "finish";
  SourcePos Anchor;          ///< where the repair applies (pre-repair text)
  unsigned DynamicInstances = 0; ///< dynamic sites this edit covers
  /// Critical path of the group's placement problem with no repairs vs
  /// with the chosen plan (work units; the chooser's objective, isolated
  /// penalties included).
  uint64_t CostBefore = 0;
  uint64_t CostAfter = 0;
  /// Dependence edges (source, sink child indices) this repair cuts —
  /// the races that forced it.
  std::vector<std::pair<uint32_t, uint32_t>> ForcedEdges;
  /// Constructs considered for those edges and not chosen, with costs.
  std::vector<RepairAlternative> Alternatives;
  /// Placements the DP probed that failed AST mapping (first repair of
  /// the group carries them; capped).
  std::vector<PlacementRejection> Rejected;
};

/// One detection run's worth of explanations.
struct IterationDiag {
  unsigned Iteration = 0;
  bool Replayed = false; ///< detection replayed the recorded log
  std::vector<RaceWitness> Witnesses;
};

/// Everything diagnostic a repair run produced.
struct RunDiag {
  std::vector<IterationDiag> Iterations;
  std::vector<FinishProvenance> Repairs;
};

/// Table-2/3 style scalars, flattened for the report.
struct JobStats {
  unsigned Iterations = 0;
  unsigned FinishesInserted = 0;
  unsigned ForcesInserted = 0;
  unsigned IsolatedInserted = 0;
  unsigned Interpretations = 0;
  unsigned Replays = 0;
  uint64_t RawRaces = 0;
  uint64_t RacePairs = 0;
  uint64_t DpstNodes = 0;
};

/// One program (one batch job, or the single program of races/repair).
struct JobReport {
  std::string Name;
  std::vector<int64_t> Args;
  bool Success = false;
  std::string Error;
  JobStats Stats;
  RunDiag Diag;
};

/// The whole document.
struct RunReport {
  std::string Tool;    ///< "races" | "repair" | "batch"
  std::string Backend; ///< detection backend name
  std::string Mode;    ///< "mrw" | "srw"
  std::vector<JobReport> Jobs;
};

/// Serializes \p R as the versioned JSON document (stable member order;
/// witness sections are byte-identical across backends for identical
/// reports).
std::string renderRunReportJson(const RunReport &R);

/// Writes the document to \p Path. False on I/O failure (message in
/// \p Error when non-null).
bool writeRunReport(const RunReport &R, const std::string &Path,
                    std::string *Error = nullptr);

/// Pretty-prints a parsed report document (`tdr explain`): witnesses with
/// carets, provenance, stats. Tolerates unknown members; returns false
/// (with a message in \p Error) when \p Doc is not a tdr-report this
/// version understands.
bool renderExplainText(const json::Value &Doc, bool Color, std::string &Out,
                       std::string &Error);

} // namespace diag
} // namespace tdr

#endif // TDR_DIAG_RUNREPORT_H
