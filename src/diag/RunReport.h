//===- RunReport.h - Structured run reports ----------------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-readable output of a tool run: a schema-versioned JSON
/// document (`--report out.json` on `tdr races/repair/batch`) carrying,
/// per job, the run stats, every iteration's race witnesses (see
/// Witness.h) and the provenance of every inserted finish — which
/// dependence edges forced it, what it cost on the critical path, and
/// which placements the DP tried but the AST mapping rejected.
///
/// The schema is additive: "schema" names the document family,
/// "version" bumps on breaking changes; validators (tools/check_report.py)
/// and `tdr explain` accept the pair they know.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_DIAG_RUNREPORT_H
#define TDR_DIAG_RUNREPORT_H

#include "diag/Witness.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace tdr {

namespace json {
class Value;
} // namespace json

namespace diag {

/// Document family / version emitted by renderRunReportJson.
inline constexpr const char *ReportSchemaName = "tdr-report";
inline constexpr int ReportSchemaVersion = 1;

/// A placement the DP proposed but the static placer could not map onto
/// the AST (and why) — the "rejected alternatives" part of provenance.
struct PlacementRejection {
  uint32_t Begin = 0; ///< first covered non-scope child index
  uint32_t End = 0;   ///< last covered non-scope child index
  std::string Reason;
};

/// Why one synthesized finish exists.
struct FinishProvenance {
  unsigned Iteration = 0;    ///< repair-loop iteration that inserted it
  uint32_t GroupLcaId = 0;   ///< NS-LCA node of the dependence group
  SourcePos Anchor;          ///< where the finish wraps (pre-repair text)
  unsigned DynamicInstances = 0; ///< S-DPST nodes this edit replicated to
  /// Critical path of the group's placement problem with no finishes vs
  /// with the chosen placement (work units; the DP's objective).
  uint64_t CostBefore = 0;
  uint64_t CostAfter = 0;
  /// Dependence edges (source, sink child indices) this finish cuts —
  /// the races that forced it.
  std::vector<std::pair<uint32_t, uint32_t>> ForcedEdges;
  /// Alternatives the DP probed that failed AST mapping (first finish of
  /// the group carries them; capped).
  std::vector<PlacementRejection> Rejected;
};

/// One detection run's worth of explanations.
struct IterationDiag {
  unsigned Iteration = 0;
  bool Replayed = false; ///< detection replayed the recorded log
  std::vector<RaceWitness> Witnesses;
};

/// Everything diagnostic a repair run produced.
struct RunDiag {
  std::vector<IterationDiag> Iterations;
  std::vector<FinishProvenance> Finishes;
};

/// Table-2/3 style scalars, flattened for the report.
struct JobStats {
  unsigned Iterations = 0;
  unsigned FinishesInserted = 0;
  unsigned Interpretations = 0;
  unsigned Replays = 0;
  uint64_t RawRaces = 0;
  uint64_t RacePairs = 0;
  uint64_t DpstNodes = 0;
};

/// One program (one batch job, or the single program of races/repair).
struct JobReport {
  std::string Name;
  std::vector<int64_t> Args;
  bool Success = false;
  std::string Error;
  JobStats Stats;
  RunDiag Diag;
};

/// The whole document.
struct RunReport {
  std::string Tool;    ///< "races" | "repair" | "batch"
  std::string Backend; ///< detection backend name
  std::string Mode;    ///< "mrw" | "srw"
  std::vector<JobReport> Jobs;
};

/// Serializes \p R as the versioned JSON document (stable member order;
/// witness sections are byte-identical across backends for identical
/// reports).
std::string renderRunReportJson(const RunReport &R);

/// Writes the document to \p Path. False on I/O failure (message in
/// \p Error when non-null).
bool writeRunReport(const RunReport &R, const std::string &Path,
                    std::string *Error = nullptr);

/// Pretty-prints a parsed report document (`tdr explain`): witnesses with
/// carets, provenance, stats. Tolerates unknown members; returns false
/// (with a message in \p Error) when \p Doc is not a tdr-report this
/// version understands.
bool renderExplainText(const json::Value &Doc, bool Color, std::string &Out,
                       std::string &Error);

} // namespace diag
} // namespace tdr

#endif // TDR_DIAG_RUNREPORT_H
