//===- RunReport.cpp - Structured run reports -----------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "diag/RunReport.h"

#include "support/Json.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace tdr;
using namespace tdr::diag;

//===----------------------------------------------------------------------===//
// JSON writer
//===----------------------------------------------------------------------===//

namespace {

void escape(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += strFormat("\\u%04x", C);
      else
        Out += C;
    }
  }
  Out += '"';
}

void appendUInt(std::string &Out, uint64_t V) {
  Out += strFormat("%llu", static_cast<unsigned long long>(V));
}

void appendPos(std::string &Out, const SourcePos &P, bool WithText) {
  Out += "\"line\":";
  appendUInt(Out, P.Line);
  Out += ",\"col\":";
  appendUInt(Out, P.Col);
  if (WithText) {
    Out += ",\"line_text\":";
    escape(Out, P.LineText);
  }
}

void appendAccess(std::string &Out, const AccessDesc &A) {
  Out += "{\"step\":";
  appendUInt(Out, A.Step);
  Out += ",\"kind\":\"";
  Out += accessKindName(A.Kind);
  Out += "\",";
  appendPos(Out, A.Pos, /*WithText=*/true);
  Out += '}';
}

void appendSpine(std::string &Out, const std::vector<SpineEntry> &Spine) {
  Out += '[';
  for (size_t I = 0; I != Spine.size(); ++I) {
    if (I)
      Out += ',';
    const SpineEntry &E = Spine[I];
    Out += "{\"id\":";
    appendUInt(Out, E.Id);
    Out += ",\"kind\":\"";
    Out += dpstKindName(E.Kind);
    Out += "\",";
    appendPos(Out, E.Pos, /*WithText=*/false);
    Out += '}';
  }
  Out += ']';
}

void appendWitness(std::string &Out, const RaceWitness &W) {
  Out += "{\"location\":";
  escape(Out, W.Location);
  Out += ",\"src\":";
  appendAccess(Out, W.Src);
  Out += ",\"snk\":";
  appendAccess(Out, W.Snk);
  Out += ",\"lca\":{\"id\":";
  appendUInt(Out, W.LcaId);
  Out += ",\"kind\":\"";
  Out += dpstKindName(W.LcaKind);
  Out += "\"},\"breaking_async\":";
  if (W.HasBreakingAsync) {
    Out += "{\"id\":";
    appendUInt(Out, W.BreakingAsyncId);
    Out += ',';
    appendPos(Out, W.BreakingAsyncPos, /*WithText=*/true);
    Out += '}';
  } else {
    Out += "null";
  }
  Out += ",\"src_spine\":";
  appendSpine(Out, W.SrcSpine);
  Out += ",\"snk_spine\":";
  appendSpine(Out, W.SnkSpine);
  Out += '}';
}

void appendProvenance(std::string &Out, const FinishProvenance &P) {
  Out += "{\"iteration\":";
  appendUInt(Out, P.Iteration);
  Out += ",\"group_lca\":";
  appendUInt(Out, P.GroupLcaId);
  Out += ",\"construct\":";
  escape(Out, P.Construct);
  Out += ",\"anchor\":{";
  appendPos(Out, P.Anchor, /*WithText=*/true);
  Out += "},\"dynamic_instances\":";
  appendUInt(Out, P.DynamicInstances);
  Out += ",\"cost_before\":";
  appendUInt(Out, P.CostBefore);
  Out += ",\"cost_after\":";
  appendUInt(Out, P.CostAfter);
  Out += ",\"forced_edges\":[";
  for (size_t I = 0; I != P.ForcedEdges.size(); ++I) {
    if (I)
      Out += ',';
    Out += '[';
    appendUInt(Out, P.ForcedEdges[I].first);
    Out += ',';
    appendUInt(Out, P.ForcedEdges[I].second);
    Out += ']';
  }
  Out += "],\"alternatives\":[";
  for (size_t I = 0; I != P.Alternatives.size(); ++I) {
    if (I)
      Out += ',';
    const RepairAlternative &A = P.Alternatives[I];
    Out += "{\"construct\":";
    escape(Out, A.Construct);
    Out += ",\"feasible\":";
    Out += A.Feasible ? "true" : "false";
    Out += ",\"cost\":";
    appendUInt(Out, A.Cost);
    Out += ",\"reason\":";
    escape(Out, A.Reason);
    Out += '}';
  }
  Out += "],\"rejected\":[";
  for (size_t I = 0; I != P.Rejected.size(); ++I) {
    if (I)
      Out += ',';
    Out += "{\"begin\":";
    appendUInt(Out, P.Rejected[I].Begin);
    Out += ",\"end\":";
    appendUInt(Out, P.Rejected[I].End);
    Out += ",\"reason\":";
    escape(Out, P.Rejected[I].Reason);
    Out += '}';
  }
  Out += "]}";
}

void appendJob(std::string &Out, const JobReport &J) {
  Out += "  {\"name\":";
  escape(Out, J.Name);
  Out += ",\"args\":[";
  for (size_t I = 0; I != J.Args.size(); ++I) {
    if (I)
      Out += ',';
    Out += strFormat("%lld", static_cast<long long>(J.Args[I]));
  }
  Out += "],\"success\":";
  Out += J.Success ? "true" : "false";
  Out += ",\"error\":";
  escape(Out, J.Error);
  Out += ",\n   \"stats\":{\"iterations\":";
  appendUInt(Out, J.Stats.Iterations);
  Out += ",\"finishes_inserted\":";
  appendUInt(Out, J.Stats.FinishesInserted);
  Out += ",\"forces_inserted\":";
  appendUInt(Out, J.Stats.ForcesInserted);
  Out += ",\"isolated_inserted\":";
  appendUInt(Out, J.Stats.IsolatedInserted);
  Out += ",\"interpretations\":";
  appendUInt(Out, J.Stats.Interpretations);
  Out += ",\"replays\":";
  appendUInt(Out, J.Stats.Replays);
  Out += ",\"races_raw\":";
  appendUInt(Out, J.Stats.RawRaces);
  Out += ",\"race_pairs\":";
  appendUInt(Out, J.Stats.RacePairs);
  Out += ",\"dpst_nodes\":";
  appendUInt(Out, J.Stats.DpstNodes);
  Out += "},\n   \"iterations\":[";
  for (size_t I = 0; I != J.Diag.Iterations.size(); ++I) {
    const IterationDiag &It = J.Diag.Iterations[I];
    if (I)
      Out += ',';
    Out += "\n    {\"iteration\":";
    appendUInt(Out, It.Iteration);
    Out += ",\"replayed\":";
    Out += It.Replayed ? "true" : "false";
    Out += ",\"witnesses\":[";
    for (size_t K = 0; K != It.Witnesses.size(); ++K) {
      if (K)
        Out += ',';
      Out += "\n     ";
      appendWitness(Out, It.Witnesses[K]);
    }
    Out += "]}";
  }
  Out += "],\n   \"provenance\":[";
  for (size_t I = 0; I != J.Diag.Repairs.size(); ++I) {
    if (I)
      Out += ',';
    Out += "\n    ";
    appendProvenance(Out, J.Diag.Repairs[I]);
  }
  Out += "]}";
}

} // namespace

std::string diag::renderRunReportJson(const RunReport &R) {
  std::string Out;
  Out += "{\"schema\":\"";
  Out += ReportSchemaName;
  Out += "\",\"version\":";
  appendUInt(Out, ReportSchemaVersion);
  Out += ",\"tool\":";
  escape(Out, R.Tool);
  Out += ",\"backend\":";
  escape(Out, R.Backend);
  Out += ",\"mode\":";
  escape(Out, R.Mode);
  Out += ",\n \"jobs\":[";
  for (size_t I = 0; I != R.Jobs.size(); ++I) {
    if (I)
      Out += ',';
    Out += '\n';
    appendJob(Out, R.Jobs[I]);
  }
  Out += "]}\n";
  return Out;
}

bool diag::writeRunReport(const RunReport &R, const std::string &Path,
                          std::string *Error) {
  std::string Doc = renderRunReportJson(R);
  FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    if (Error)
      *Error = strFormat("cannot open '%s' for writing", Path.c_str());
    return false;
  }
  size_t N = std::fwrite(Doc.data(), 1, Doc.size(), F);
  bool Ok = N == Doc.size() && std::fclose(F) == 0;
  if (!Ok && Error)
    *Error = strFormat("short write to '%s'", Path.c_str());
  return Ok;
}

//===----------------------------------------------------------------------===//
// Explain rendering (JSON document -> text)
//===----------------------------------------------------------------------===//

namespace {

AccessKind parseAccessKind(const std::string &S) {
  return S == "write" ? AccessKind::Write : AccessKind::Read;
}

DpstKind parseDpstKind(const std::string &S) {
  if (S == "async")
    return DpstKind::Async;
  if (S == "finish")
    return DpstKind::Finish;
  if (S == "scope")
    return DpstKind::Scope;
  if (S == "step")
    return DpstKind::Step;
  return DpstKind::Root;
}

SourcePos posFromJson(const json::Value &V) {
  SourcePos P;
  P.Line = static_cast<uint32_t>(V.getNumber("line"));
  P.Col = static_cast<uint32_t>(V.getNumber("col"));
  P.LineText = V.getString("line_text");
  return P;
}

AccessDesc accessFromJson(const json::Value &V) {
  AccessDesc A;
  A.Step = static_cast<uint32_t>(V.getNumber("step"));
  A.Kind = parseAccessKind(V.getString("kind"));
  A.Pos = posFromJson(V);
  return A;
}

std::vector<SpineEntry> spineFromJson(const json::Value *V) {
  std::vector<SpineEntry> Out;
  if (!V || !V->isArray())
    return Out;
  for (const json::Value &E : V->elements()) {
    SpineEntry S;
    S.Id = static_cast<uint32_t>(E.getNumber("id"));
    S.Kind = parseDpstKind(E.getString("kind"));
    S.Pos = posFromJson(E);
    Out.push_back(std::move(S));
  }
  return Out;
}

/// Rehydrates the witness struct so explain reuses the one text renderer.
RaceWitness witnessFromJson(const json::Value &V) {
  RaceWitness W;
  W.Location = V.getString("location");
  if (const json::Value *Src = V.get("src"))
    W.Src = accessFromJson(*Src);
  if (const json::Value *Snk = V.get("snk"))
    W.Snk = accessFromJson(*Snk);
  if (const json::Value *Lca = V.get("lca")) {
    W.LcaId = static_cast<uint32_t>(Lca->getNumber("id"));
    W.LcaKind = parseDpstKind(Lca->getString("kind"));
  }
  if (const json::Value *BA = V.get("breaking_async");
      BA && BA->isObject()) {
    W.HasBreakingAsync = true;
    W.BreakingAsyncId = static_cast<uint32_t>(BA->getNumber("id"));
    W.BreakingAsyncPos = posFromJson(*BA);
  }
  W.SrcSpine = spineFromJson(V.get("src_spine"));
  W.SnkSpine = spineFromJson(V.get("snk_spine"));
  return W;
}

const char *sgr(bool Color, const char *Code) { return Color ? Code : ""; }

void renderJob(const json::Value &J, const std::string &Tool, bool Color,
               std::string &Out) {
  Out += sgr(Color, "\033[1m");
  Out += strFormat("job: %s", J.getString("name", "<unnamed>").c_str());
  Out += sgr(Color, "\033[0m");
  if (const json::Value *Args = J.get("args");
      Args && Args->isArray() && !Args->elements().empty()) {
    Out += " args:";
    for (const json::Value &A : Args->elements())
      Out += strFormat(" %lld", static_cast<long long>(A.asNumber()));
  }
  // A races job's "success" means "race free" — detection that *finds*
  // races did its job, so don't call it failed.
  bool Success = J.getBool("success");
  if (Tool == "races")
    Out += Success ? "  [race free]" : "  [races found]";
  else
    Out += Success ? "  [ok]" : "  [failed]";
  Out += '\n';
  std::string Err = J.getString("error");
  if (!Err.empty())
    Out += strFormat("  error: %s\n", Err.c_str());

  if (const json::Value *S = J.get("stats")) {
    Out += strFormat(
        "  stats: %llu iteration(s), %llu finish(es), %llu force(s), "
        "%llu isolated inserted, "
        "%llu interpretation(s), %llu replay(s), %llu raw race(s), "
        "%llu pair(s), %llu dpst node(s)\n",
        static_cast<unsigned long long>(S->getNumber("iterations")),
        static_cast<unsigned long long>(S->getNumber("finishes_inserted")),
        static_cast<unsigned long long>(S->getNumber("forces_inserted")),
        static_cast<unsigned long long>(S->getNumber("isolated_inserted")),
        static_cast<unsigned long long>(S->getNumber("interpretations")),
        static_cast<unsigned long long>(S->getNumber("replays")),
        static_cast<unsigned long long>(S->getNumber("races_raw")),
        static_cast<unsigned long long>(S->getNumber("race_pairs")),
        static_cast<unsigned long long>(S->getNumber("dpst_nodes")));
  }

  if (const json::Value *Its = J.get("iterations"); Its && Its->isArray()) {
    for (const json::Value &It : Its->elements()) {
      const json::Value *Ws = It.get("witnesses");
      size_t N = Ws && Ws->isArray() ? Ws->elements().size() : 0;
      Out += strFormat("  iteration %llu (%s): %zu race(s)\n",
                       static_cast<unsigned long long>(
                           It.getNumber("iteration")),
                       It.getBool("replayed") ? "replayed" : "interpreted",
                       N);
      if (!N)
        continue;
      size_t I = 0;
      for (const json::Value &WV : Ws->elements()) {
        RaceWitness W = witnessFromJson(WV);
        std::string Text = strFormat("[%zu/%zu] ", ++I, N) +
                           renderWitnessText(W, Color);
        // Indent the witness block under the iteration line.
        size_t Pos = 0;
        while (Pos < Text.size()) {
          size_t Nl = Text.find('\n', Pos);
          if (Nl == std::string::npos)
            Nl = Text.size();
          Out += "    ";
          Out.append(Text, Pos, Nl - Pos);
          Out += '\n';
          Pos = Nl + 1;
        }
      }
    }
  }

  if (const json::Value *Prov = J.get("provenance");
      Prov && Prov->isArray() && !Prov->elements().empty()) {
    Out += strFormat("  inserted repairs (%zu):\n",
                     Prov->elements().size());
    size_t I = 0;
    for (const json::Value &P : Prov->elements()) {
      ++I;
      std::string Where = "at <unknown>";
      if (const json::Value *A = P.get("anchor");
          A && A->getNumber("line") > 0)
        Where = strFormat("at %u:%u",
                          static_cast<uint32_t>(A->getNumber("line")),
                          static_cast<uint32_t>(A->getNumber("col")));
      Out += strFormat(
          "    %s %zu (iteration %llu) %s: group ns-lca node %llu, "
          "%llu dynamic instance(s)\n",
          P.getString("construct", "finish").c_str(), I,
          static_cast<unsigned long long>(P.getNumber("iteration")),
          Where.c_str(),
          static_cast<unsigned long long>(P.getNumber("group_lca")),
          static_cast<unsigned long long>(P.getNumber("dynamic_instances")));
      if (const json::Value *A = P.get("anchor")) {
        std::string LineText = A->getString("line_text");
        if (!LineText.empty())
          Out += strFormat("      %4u | %s\n",
                           static_cast<uint32_t>(A->getNumber("line")),
                           LineText.c_str());
      }
      Out += strFormat(
          "      critical path %llu -> %llu work unit(s)\n",
          static_cast<unsigned long long>(P.getNumber("cost_before")),
          static_cast<unsigned long long>(P.getNumber("cost_after")));
      if (const json::Value *E = P.get("forced_edges");
          E && E->isArray() && !E->elements().empty()) {
        Out += "      forced by dependence edge(s):";
        for (const json::Value &Edge : E->elements()) {
          if (Edge.isArray() && Edge.elements().size() == 2)
            Out += strFormat(
                " %lld->%lld",
                static_cast<long long>(Edge.elements()[0].asNumber()),
                static_cast<long long>(Edge.elements()[1].asNumber()));
        }
        Out += '\n';
      }
      if (const json::Value *Rej = P.get("rejected");
          Rej && Rej->isArray() && !Rej->elements().empty()) {
        Out += strFormat("      rejected alternative(s): %zu\n",
                         Rej->elements().size());
        for (const json::Value &RV : Rej->elements())
          Out += strFormat(
              "        range [%lld, %lld]: %s\n",
              static_cast<long long>(RV.getNumber("begin")),
              static_cast<long long>(RV.getNumber("end")),
              RV.getString("reason", "?").c_str());
      }
    }
  }
}

} // namespace

bool diag::renderExplainText(const json::Value &Doc, bool Color,
                             std::string &Out, std::string &Error) {
  if (!Doc.isObject()) {
    Error = "not a JSON object";
    return false;
  }
  if (Doc.getString("schema") != ReportSchemaName) {
    Error = strFormat("not a %s document (schema: \"%s\")", ReportSchemaName,
                      Doc.getString("schema", "<missing>").c_str());
    return false;
  }
  if (static_cast<int>(Doc.getNumber("version", -1)) != ReportSchemaVersion) {
    Error = strFormat("unsupported report version %g (expected %d)",
                      Doc.getNumber("version", -1), ReportSchemaVersion);
    return false;
  }

  Out += sgr(Color, "\033[1m");
  Out += strFormat("tdr run report — tool: %s, backend: %s, mode: %s",
                   Doc.getString("tool", "?").c_str(),
                   Doc.getString("backend", "?").c_str(),
                   Doc.getString("mode", "?").c_str());
  Out += sgr(Color, "\033[0m");
  Out += '\n';

  const json::Value *Jobs = Doc.get("jobs");
  if (!Jobs || !Jobs->isArray()) {
    Error = "report has no jobs array";
    return false;
  }
  for (const json::Value &J : Jobs->elements()) {
    Out += '\n';
    renderJob(J, Doc.getString("tool"), Color, Out);
  }
  return true;
}
