//===- Witness.cpp - Race witness reconstruction --------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "diag/Witness.h"

#include "ast/Ast.h"
#include "interp/Monitor.h"
#include "obs/Metrics.h"
#include "support/SourceManager.h"
#include "support/StringUtils.h"
#include "trace/EventLog.h"
#include "trace/Replay.h"

#include <unordered_map>

using namespace tdr;
using namespace tdr::diag;

SourcePos diag::resolvePos(const SourceManager *SM, SourceLoc Loc) {
  SourcePos P;
  if (!SM || !Loc.isValid())
    return P;
  LineCol LC = SM->lineCol(Loc);
  P.Line = LC.Line;
  P.Col = LC.Col;
  if (P.Line)
    P.LineText = std::string(SM->lineText(P.Line));
  return P;
}

const char *diag::dpstKindName(DpstKind K) {
  switch (K) {
  case DpstKind::Root:
    return "root";
  case DpstKind::Async:
    return "async";
  case DpstKind::Finish:
    return "finish";
  case DpstKind::Scope:
    return "scope";
  case DpstKind::Step:
    return "step";
  }
  return "?";
}

const char *diag::accessKindName(AccessKind K) {
  return K == AccessKind::Write ? "write" : "read";
}

namespace {

/// Identifies one racing access for site refinement: which step, which
/// location, read or write.
struct SiteKey {
  uint32_t Step = 0;
  AccessKind Kind = AccessKind::Read;
  MemLoc Loc;

  bool operator==(const SiteKey &O) const {
    return Step == O.Step && Kind == O.Kind && Loc == O.Loc;
  }
};

struct SiteKeyHash {
  size_t operator()(const SiteKey &K) const {
    size_t H = MemLocHash()(K.Loc);
    H ^= (static_cast<size_t>(K.Step) * 0x9e3779b97f4a7c15ull) ^
         (static_cast<size_t>(K.Kind) << 17);
    return H;
  }
};

struct SiteVal {
  const Stmt *Site = nullptr;
  bool Set = false;
};

using SiteMap = std::unordered_map<SiteKey, SiteVal, SiteKeyHash>;

/// Replays the recorded event stream through a scratch DpstBuilder to
/// recover, for each wanted (step, location, kind), the innermost
/// statement executing when the access happened. Forwards every event to
/// the builder exactly the way the fused detection monitor does (incl.
/// calling currentStep() per access), so scratch node ids reproduce the
/// detection tree's ids.
class SiteLocator final : public ExecMonitor {
public:
  SiteLocator(DpstBuilder &B, SiteMap &Sites) : B(B), Sites(Sites) {}

  void onAsyncEnter(const AsyncStmt *S, const Stmt *Owner) override {
    B.onAsyncEnter(S, Owner);
  }
  void onAsyncExit(const AsyncStmt *S) override { B.onAsyncExit(S); }
  void onFinishEnter(const FinishStmt *S, const Stmt *Owner) override {
    B.onFinishEnter(S, Owner);
  }
  void onFinishExit(const FinishStmt *S) override { B.onFinishExit(S); }
  void onScopeEnter(ScopeKind K, const Stmt *Owner, const BlockStmt *Body,
                    const FuncDecl *Callee) override {
    B.onScopeEnter(K, Owner, Body, Callee);
    // An access after the scope returns (e.g. the rest of a call
    // expression) belongs to the suspended outer statement again.
    OwnerStack.push_back(CurOwner);
  }
  void onScopeExit() override {
    B.onScopeExit();
    if (!OwnerStack.empty()) {
      CurOwner = OwnerStack.back();
      OwnerStack.pop_back();
    }
  }
  void onStepPoint(const Stmt *Owner) override {
    B.onStepPoint(Owner);
    CurOwner = Owner;
  }
  void onWork(uint64_t Units) override { B.onWork(Units); }
  void onRead(MemLoc L) override { record(L, AccessKind::Read); }
  void onWrite(MemLoc L) override { record(L, AccessKind::Write); }

private:
  void record(MemLoc L, AccessKind K) {
    DpstNode *Step = B.currentStep();
    auto It = Sites.find(SiteKey{Step->id(), K, L});
    if (It != Sites.end() && !It->second.Set)
      It->second = SiteVal{CurOwner, true};
  }

  DpstBuilder &B;
  SiteMap &Sites;
  const Stmt *CurOwner = nullptr;
  std::vector<const Stmt *> OwnerStack;
};

SourceLoc stmtLoc(const Stmt *S) { return S ? S->loc() : SourceLoc(); }

AccessDesc describeAccess(const DpstNode *Step, AccessKind Kind, MemLoc Loc,
                          const SiteMap &Sites, const SourceManager *SM) {
  AccessDesc A;
  A.Step = Step->id();
  A.Kind = Kind;
  const Stmt *Site = Step->owner();
  auto It = Sites.find(SiteKey{Step->id(), Kind, Loc});
  if (It != Sites.end() && It->second.Set && It->second.Site)
    Site = It->second.Site;
  A.Pos = resolvePos(SM, stmtLoc(Site));
  return A;
}

std::vector<SpineEntry> taskSpine(const DpstNode *Step,
                                  const SourceManager *SM) {
  std::vector<SpineEntry> Out;
  for (const DpstNode *N = Step->parent(); N; N = N->parent()) {
    if (N->isScope())
      continue;
    SpineEntry E;
    E.Id = N->id();
    E.Kind = N->kind();
    if (N->isAsync())
      E.Pos = resolvePos(SM, stmtLoc(N->asyncStmt()));
    else if (N->isFinish())
      E.Pos = resolvePos(SM, stmtLoc(N->finishStmt()));
    Out.push_back(std::move(E));
  }
  return Out;
}

} // namespace

std::vector<RaceWitness> diag::buildWitnesses(const Dpst &Tree,
                                              const RaceReport &Report,
                                              const SourceManager *SM,
                                              const trace::EventLog *Log,
                                              const trace::ReplayPlan *Plan) {
  std::vector<RaceWitness> Out;
  if (Report.Pairs.empty())
    return Out;

  SiteMap Sites;
  if (Log) {
    for (const RacePair &R : Report.Pairs) {
      Sites.try_emplace(SiteKey{R.Src->id(), R.SrcKind, R.Loc});
      Sites.try_emplace(SiteKey{R.Snk->id(), R.SnkKind, R.Loc});
    }
    // The scratch tree exists only to resolve ids; keep its node counters
    // out of the caller's registry so detection metrics stay exact.
    obs::MetricsRegistry Scratch;
    obs::ScopedMetrics Guard(Scratch);
    Dpst ScratchTree;
    DpstBuilder Builder(ScratchTree);
    SiteLocator Locator(Builder, Sites);
    trace::ReplayPlan Empty;
    trace::replayEvents(*Log, Plan ? *Plan : Empty, Locator);
  }

  Out.reserve(Report.Pairs.size());
  for (const RacePair &R : Report.Pairs) {
    RaceWitness W;
    W.Location = R.Loc.str();
    W.Src = describeAccess(R.Src, R.SrcKind, R.Loc, Sites, SM);
    W.Snk = describeAccess(R.Snk, R.SnkKind, R.Loc, Sites, SM);

    const DpstNode *Lca = Tree.nsLca(R.Src, R.Snk);
    W.LcaId = Lca->id();
    W.LcaKind = Lca->kind();

    // Theorem 1: the (earlier-side) non-scope child of the NS-LCA is the
    // async whose lack of a join leaves the two steps unordered.
    const DpstNode *Earlier =
        Tree.isLeftOf(R.Src, R.Snk) ? R.Src : R.Snk;
    const DpstNode *Edge = Tree.nonScopeChildToward(Lca, Earlier);
    if (Edge && Edge->isAsync()) {
      W.HasBreakingAsync = true;
      W.BreakingAsyncId = Edge->id();
      W.BreakingAsyncPos = resolvePos(SM, stmtLoc(Edge->asyncStmt()));
    }

    W.SrcSpine = taskSpine(R.Src, SM);
    W.SnkSpine = taskSpine(R.Snk, SM);
    Out.push_back(std::move(W));
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Text rendering
//===----------------------------------------------------------------------===//

namespace {

const char *sgr(bool Color, const char *Code) { return Color ? Code : ""; }

void appendExcerpt(std::string &Out, const SourcePos &P, bool Color) {
  if (!P.valid() || P.LineText.empty())
    return;
  Out += strFormat("    %4u | %s\n", P.Line, P.LineText.c_str());
  Out += "         | ";
  for (uint32_t I = 1; I < P.Col; ++I)
    Out += (I - 1 < P.LineText.size() && P.LineText[I - 1] == '\t') ? '\t'
                                                                    : ' ';
  Out += sgr(Color, "\033[1;32m");
  Out += '^';
  Out += sgr(Color, "\033[0m");
  Out += '\n';
}

std::string posStr(const SourcePos &P) {
  return P.valid() ? strFormat("%u:%u", P.Line, P.Col)
                   : std::string("<unknown>");
}

void appendSpine(std::string &Out, const char *Label,
                 const std::vector<SpineEntry> &Spine) {
  Out += strFormat("  %s spine: ", Label);
  if (Spine.empty())
    Out += "(root)";
  for (size_t I = 0; I != Spine.size(); ++I) {
    const SpineEntry &E = Spine[I];
    if (I)
      Out += " -> ";
    Out += strFormat("%s#%u", dpstKindName(E.Kind), E.Id);
    if (E.Pos.valid())
      Out += strFormat("@%s", posStr(E.Pos).c_str());
  }
  Out += '\n';
}

} // namespace

std::string diag::renderWitnessText(const RaceWitness &W, bool Color) {
  std::string Out;
  Out += sgr(Color, "\033[1;31m");
  Out += strFormat("race on %s", W.Location.c_str());
  Out += sgr(Color, "\033[0m");
  Out += strFormat(": %s (step %u) at %s vs %s (step %u) at %s\n",
                   accessKindName(W.Src.Kind), W.Src.Step,
                   posStr(W.Src.Pos).c_str(), accessKindName(W.Snk.Kind),
                   W.Snk.Step, posStr(W.Snk.Pos).c_str());
  Out += strFormat("  first access: %s at %s\n", accessKindName(W.Src.Kind),
                   posStr(W.Src.Pos).c_str());
  appendExcerpt(Out, W.Src.Pos, Color);
  Out += strFormat("  second access: %s at %s\n", accessKindName(W.Snk.Kind),
                   posStr(W.Snk.Pos).c_str());
  appendExcerpt(Out, W.Snk.Pos, Color);
  Out += strFormat("  unordered because: ns-lca is %s#%u",
                   dpstKindName(W.LcaKind), W.LcaId);
  if (W.HasBreakingAsync) {
    Out += strFormat(
        "; async#%u (at %s) escapes it unjoined, so no happens-before "
        "edge orders the accesses\n",
        W.BreakingAsyncId, posStr(W.BreakingAsyncPos).c_str());
  } else {
    Out += "; no breaking async found (pair appears ordered)\n";
  }
  appendSpine(Out, "first ", W.SrcSpine);
  appendSpine(Out, "second", W.SnkSpine);
  return Out;
}

std::string diag::renderWitnessesText(const std::vector<RaceWitness> &Ws,
                                      bool Color) {
  std::string Out;
  for (size_t I = 0; I != Ws.size(); ++I) {
    if (I)
      Out += '\n';
    Out += strFormat("[%zu/%zu] ", I + 1, Ws.size());
    Out += renderWitnessText(Ws[I], Color);
  }
  return Out;
}
