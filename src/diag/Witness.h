//===- Witness.h - Race witness reconstruction -------------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Explainable race diagnostics. A detector's RacePair says only *which*
/// two S-DPST steps conflicted on *which* location; a RaceWitness says
/// *why* the user should believe it:
///
///  * both accesses with their source position (line/col, with the source
///    line text captured so renderers can draw carets without the file);
///  * the task spine of each step — the chain of async/finish nodes from
///    the step to the root, i.e. "how execution got there";
///  * the NS-LCA of the two steps and the *breaking async edge*: by
///    Theorem 1 (Raman et al.), two steps may run in parallel iff the
///    non-scope child of their NS-LCA toward the earlier step is an async
///    — that async, unjoined at the NS-LCA, is the structural reason no
///    happens-before edge orders the accesses, and wrapping it in a
///    finish is exactly what the repair will do.
///
/// Access positions are refined through the recorded trace: detectors
/// attribute an access to a *step*, but a step spans several statements.
/// buildWitnesses replays the event log through a scratch DPST builder
/// (same plan as the detection run, so node ids line up) and captures the
/// innermost statement executing at each racing access. Without a log it
/// falls back to the step's first owner statement.
///
/// A witness holds only resolved plain data (ids, positions, line text) —
/// no AST or DPST pointers — so it stays valid after the per-job contexts
/// that produced it are gone (batch reports, serialized run reports).
///
//===----------------------------------------------------------------------===//

#ifndef TDR_DIAG_WITNESS_H
#define TDR_DIAG_WITNESS_H

#include "dpst/Dpst.h"
#include "race/RaceReport.h"
#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace tdr {

class SourceManager;

namespace trace {
class EventLog;
struct ReplayPlan;
} // namespace trace

namespace diag {

/// A resolved source position; Line == 0 means "unknown" (synthesized
/// node or no source manager).
struct SourcePos {
  uint32_t Line = 0; ///< 1-based
  uint32_t Col = 0;  ///< 1-based
  std::string LineText;

  bool valid() const { return Line != 0; }
};

/// Resolves \p Loc against \p SM (null-tolerant on both sides).
SourcePos resolvePos(const SourceManager *SM, SourceLoc Loc);

/// One side of a racing access.
struct AccessDesc {
  uint32_t Step = 0; ///< S-DPST step node id
  AccessKind Kind = AccessKind::Read;
  SourcePos Pos; ///< the statement executing at the access
};

/// One async/finish/root node on the path from a step to the root.
struct SpineEntry {
  uint32_t Id = 0;
  DpstKind Kind = DpstKind::Root;
  SourcePos Pos;
};

/// A full explanation of one detected race.
struct RaceWitness {
  std::string Location; ///< MemLoc::str() of the witness location
  AccessDesc Src;       ///< earlier access (depth-first order)
  AccessDesc Snk;       ///< later access
  uint32_t LcaId = 0;   ///< NS-LCA node of the two steps
  DpstKind LcaKind = DpstKind::Root;
  /// Theorem-1 evidence: the async child of the NS-LCA toward the earlier
  /// step. Always present for a true race; HasBreakingAsync false would
  /// mean the pair is ordered (a detector bug a validator can flag).
  bool HasBreakingAsync = false;
  uint32_t BreakingAsyncId = 0;
  SourcePos BreakingAsyncPos;
  std::vector<SpineEntry> SrcSpine; ///< step-to-root, nearest first
  std::vector<SpineEntry> SnkSpine;
};

/// Reconstructs a witness per report pair. \p Log + \p Plan (the event
/// log the detection consumed and the replay plan it ran under; Plan may
/// be null for an unedited log) enable per-access site refinement; with
/// a null \p Log positions degrade to each step's owner statement. Order
/// follows Report.Pairs, so witnesses inherit the report's determinism.
std::vector<RaceWitness> buildWitnesses(const Dpst &Tree,
                                        const RaceReport &Report,
                                        const SourceManager *SM,
                                        const trace::EventLog *Log = nullptr,
                                        const trace::ReplayPlan *Plan = nullptr);

/// Lowercase display names ("async", "write", ...).
const char *dpstKindName(DpstKind K);
const char *accessKindName(AccessKind K);

/// Renders one witness (or a report's worth) as human-readable text with
/// source excerpts and carets; \p Color adds ANSI SGR highlighting.
std::string renderWitnessText(const RaceWitness &W, bool Color = false);
std::string renderWitnessesText(const std::vector<RaceWitness> &Ws,
                                bool Color = false);

} // namespace diag
} // namespace tdr

#endif // TDR_DIAG_WITNESS_H
