//===- Runtime.h - Async-finish work-stealing runtime ------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A work-stealing runtime for async-finish task parallelism, the
/// execution substrate the paper assumes (Habanero Java's runtime). Usage:
///
/// \code
///   Runtime RT(8);
///   RT.run([] {
///     FinishScope Fin;
///     Fin.async([] { left(); });
///     Fin.async([] { right(); });
///   }); // FinishScope joins at scope exit; run() joins everything
/// \endcode
///
/// Tasks may spawn nested asyncs and open nested finish scopes; a
/// FinishScope joins every task transitively spawned inside it
/// (terminally-strict semantics). Waiting workers help by running other
/// ready tasks.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_RUNTIME_RUNTIME_H
#define TDR_RUNTIME_RUNTIME_H

#include "runtime/WorkStealingDeque.h"

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tdr {

class Runtime;

namespace obs {
class Counter;
} // namespace obs

namespace detail {
/// Join counter of one finish scope. Counts every task transitively
/// spawned inside the scope that has not yet completed.
struct FinishNode {
  std::atomic<uint64_t> Pending{0};
  FinishNode *Parent = nullptr;
};

struct Task {
  std::function<void()> Fn;
  FinishNode *Finish = nullptr;
};
} // namespace detail

/// Joins every async transitively spawned while the scope is current.
/// Must be used inside Runtime::run (stack discipline: scopes nest).
class FinishScope {
public:
  FinishScope();
  ~FinishScope() { wait(); }

  FinishScope(const FinishScope &) = delete;
  FinishScope &operator=(const FinishScope &) = delete;

  /// Spawns a child task inside this scope. Equivalent to the free
  /// function async() when this scope is innermost.
  void async(std::function<void()> Fn);

  /// Blocks until all tasks in the scope completed, helping with other
  /// ready tasks meanwhile. Idempotent; the destructor calls it.
  void wait();

private:
  detail::FinishNode Node;
  bool Done = false;
};

/// Spawns a task in the innermost active finish scope (or the implicit
/// root scope of Runtime::run). Must be called from inside run().
void async(std::function<void()> Fn);

/// A pool of worker threads executing async-finish task graphs.
class Runtime {
public:
  explicit Runtime(unsigned NumWorkers);
  ~Runtime();

  Runtime(const Runtime &) = delete;
  Runtime &operator=(const Runtime &) = delete;

  /// Executes \p Root and waits for it and everything it spawned. The
  /// calling thread participates as a worker. Not reentrant.
  void run(std::function<void()> Root);

  unsigned numWorkers() const { return static_cast<unsigned>(Deques.size()); }

  /// Total tasks executed since construction (statistics).
  uint64_t tasksExecuted() const {
    return TasksExecuted.load(std::memory_order_relaxed);
  }
  /// Total successful steals since construction (statistics).
  uint64_t steals() const { return Steals.load(std::memory_order_relaxed); }

private:
  friend class FinishScope;
  friend void async(std::function<void()> Fn);

  void spawn(detail::Task *T);
  detail::Task *findWork();
  void execute(detail::Task *T);
  void workerLoop(unsigned Id);
  /// Helps until \p Node 's count drops to zero.
  void helpUntil(detail::FinishNode &Node);

  // Bound on the constructing thread: worker threads do not inherit the
  // constructing thread's ScopedMetrics registry, so they must go through
  // these pointers rather than resolve obs::counter() themselves.
  obs::Counter *CPushes;
  obs::Counter *CSteals;
  obs::Counter *CTasks;
  std::vector<std::unique_ptr<WorkStealingDeque<detail::Task *>>> Deques;
  std::vector<std::thread> Threads;
  std::atomic<bool> ShuttingDown{false};
  std::atomic<uint64_t> TasksExecuted{0};
  std::atomic<uint64_t> Steals{0};
  std::atomic<uint64_t> RngState{0x853c49e6748fea9bull};

  // Idle-worker parking.
  std::mutex IdleMutex;
  std::condition_variable IdleCv;
  std::atomic<uint64_t> WorkEpoch{0};
};

} // namespace tdr

#endif // TDR_RUNTIME_RUNTIME_H
