//===- WorkStealingDeque.h - Chase-Lev work-stealing deque -------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Chase-Lev work-stealing deque (Chase & Lev, SPAA 2005, with the
/// sequentially-consistent fence placement of Lê et al., PPoPP 2013). The
/// owner pushes and pops at the bottom; thieves steal from the top. This
/// is the scheduling substrate of the async-finish runtime that executes
/// repaired programs in parallel (the paper runs on the Habanero Java
/// work-stealing runtime).
///
//===----------------------------------------------------------------------===//

#ifndef TDR_RUNTIME_WORKSTEALINGDEQUE_H
#define TDR_RUNTIME_WORKSTEALINGDEQUE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace tdr {

/// Lock-free deque of pointers. T must be a pointer-sized trivially
/// copyable handle (we store raw task pointers).
template <typename T> class WorkStealingDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "deque elements must be trivially copyable");

  /// Ring buffer with power-of-two capacity.
  struct Ring {
    explicit Ring(size_t LogCap)
        : LogCap(LogCap), Slots(new std::atomic<T>[size_t(1) << LogCap]) {}

    size_t capacity() const { return size_t(1) << LogCap; }
    T get(int64_t I) const {
      return Slots[static_cast<size_t>(I) & (capacity() - 1)].load(
          std::memory_order_relaxed);
    }
    void put(int64_t I, T V) {
      Slots[static_cast<size_t>(I) & (capacity() - 1)].store(
          V, std::memory_order_relaxed);
    }

    size_t LogCap;
    std::unique_ptr<std::atomic<T>[]> Slots;
  };

public:
  explicit WorkStealingDeque(size_t LogInitialCap = 8)
      : Top(0), Bottom(0), Buffer(new Ring(LogInitialCap)) {}

  ~WorkStealingDeque() {
    delete Buffer.load(std::memory_order_relaxed);
    for (Ring *R : Retired)
      delete R;
  }

  WorkStealingDeque(const WorkStealingDeque &) = delete;
  WorkStealingDeque &operator=(const WorkStealingDeque &) = delete;

  /// Owner-only: push a task at the bottom.
  void push(T Item) {
    int64_t B = Bottom.load(std::memory_order_relaxed);
    int64_t TTop = Top.load(std::memory_order_acquire);
    Ring *R = Buffer.load(std::memory_order_relaxed);
    if (B - TTop > static_cast<int64_t>(R->capacity()) - 1) {
      R = grow(R, TTop, B);
    }
    R->put(B, Item);
    std::atomic_thread_fence(std::memory_order_release);
    Bottom.store(B + 1, std::memory_order_relaxed);
  }

  /// Owner-only: pop from the bottom. Returns false when empty.
  bool pop(T &Out) {
    int64_t B = Bottom.load(std::memory_order_relaxed) - 1;
    Ring *R = Buffer.load(std::memory_order_relaxed);
    Bottom.store(B, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    int64_t TTop = Top.load(std::memory_order_relaxed);
    if (TTop > B) {
      // Deque was already empty; restore.
      Bottom.store(B + 1, std::memory_order_relaxed);
      return false;
    }
    Out = R->get(B);
    if (TTop != B)
      return true; // more than one element: uncontended
    // Last element: race against thieves for it.
    bool Won = Top.compare_exchange_strong(TTop, TTop + 1,
                                           std::memory_order_seq_cst,
                                           std::memory_order_relaxed);
    Bottom.store(B + 1, std::memory_order_relaxed);
    return Won;
  }

  /// Thief: steal from the top. Returns false when empty or lost a race.
  bool steal(T &Out) {
    int64_t TTop = Top.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    int64_t B = Bottom.load(std::memory_order_acquire);
    if (TTop >= B)
      return false;
    // Acquire (not the deprecated consume, which compilers promote anyway)
    // pairs with grow()'s release store, ordering the slot copies of a
    // concurrent resize before this read of the ring.
    Ring *R = Buffer.load(std::memory_order_acquire);
    // Read the slot into a local before the CAS: losing the race means
    // another thief (or the owner's pop) owns this slot, and its value
    // must not leak into the caller's Out.
    T Item = R->get(TTop);
    if (!Top.compare_exchange_strong(TTop, TTop + 1,
                                     std::memory_order_seq_cst,
                                     std::memory_order_relaxed))
      return false;
    Out = Item;
    return true;
  }

  /// Approximate size (racy; monitoring only).
  size_t sizeApprox() const {
    int64_t B = Bottom.load(std::memory_order_relaxed);
    int64_t TTop = Top.load(std::memory_order_relaxed);
    return B > TTop ? static_cast<size_t>(B - TTop) : 0;
  }

private:
  Ring *grow(Ring *Old, int64_t TTop, int64_t B) {
    Ring *New = new Ring(Old->LogCap + 1);
    for (int64_t I = TTop; I != B; ++I)
      New->put(I, Old->get(I));
    Buffer.store(New, std::memory_order_release);
    // Old buffers are retired, not freed: in-flight thieves may still read
    // them. They are reclaimed with the deque.
    Retired.push_back(Old);
    return New;
  }

  std::atomic<int64_t> Top;
  std::atomic<int64_t> Bottom;
  std::atomic<Ring *> Buffer;
  std::vector<Ring *> Retired;
};

} // namespace tdr

#endif // TDR_RUNTIME_WORKSTEALINGDEQUE_H
