//===- Runtime.cpp --------------------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <cassert>

using namespace tdr;
using detail::FinishNode;
using detail::Task;

namespace {
/// Per-thread execution context.
thread_local Runtime *CurRuntime = nullptr;
thread_local unsigned CurWorker = 0;
thread_local FinishNode *CurFinish = nullptr;
} // namespace

//===----------------------------------------------------------------------===//
// FinishScope / async
//===----------------------------------------------------------------------===//

FinishScope::FinishScope() {
  assert(CurRuntime && "FinishScope outside Runtime::run");
  Node.Parent = CurFinish;
  CurFinish = &Node;
}

void FinishScope::async(std::function<void()> Fn) {
  assert(CurRuntime && "async outside Runtime::run");
  auto *T = new Task{std::move(Fn), &Node};
  Node.Pending.fetch_add(1, std::memory_order_relaxed);
  CurRuntime->spawn(T);
}

void FinishScope::wait() {
  if (Done)
    return;
  Done = true;
  assert(CurFinish == &Node && "finish scopes must nest (stack discipline)");
  CurRuntime->helpUntil(Node);
  CurFinish = Node.Parent;
}

void tdr::async(std::function<void()> Fn) {
  assert(CurRuntime && CurFinish && "async outside Runtime::run");
  auto *T = new Task{std::move(Fn), CurFinish};
  CurFinish->Pending.fetch_add(1, std::memory_order_relaxed);
  CurRuntime->spawn(T);
}

//===----------------------------------------------------------------------===//
// Runtime
//===----------------------------------------------------------------------===//

Runtime::Runtime(unsigned NumWorkers)
    : CPushes(&obs::counter("runtime.deque_pushes")),
      CSteals(&obs::counter("runtime.steals")),
      CTasks(&obs::counter("runtime.tasks")) {
  if (NumWorkers == 0)
    NumWorkers = 1;
  Deques.reserve(NumWorkers);
  for (unsigned I = 0; I != NumWorkers; ++I)
    Deques.push_back(std::make_unique<WorkStealingDeque<Task *>>());
  // Worker 0 is the thread that calls run(); start the rest.
  for (unsigned I = 1; I != NumWorkers; ++I)
    Threads.emplace_back([this, I] { workerLoop(I); });
}

Runtime::~Runtime() {
  ShuttingDown.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> Lock(IdleMutex);
    WorkEpoch.fetch_add(1, std::memory_order_release);
  }
  IdleCv.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void Runtime::spawn(Task *T) {
  CPushes->inc();
  Deques[CurWorker]->push(T);
  WorkEpoch.fetch_add(1, std::memory_order_release);
  IdleCv.notify_one();
}

Task *Runtime::findWork() {
  Task *T = nullptr;
  if (Deques[CurWorker]->pop(T))
    return T;
  // Random victim order, xorshift over a shared state (contention is
  // unimportant; this just decorrelates thieves).
  unsigned N = numWorkers();
  uint64_t X = RngState.fetch_add(0x9e3779b97f4a7c15ull,
                                  std::memory_order_relaxed);
  X ^= X >> 33;
  for (unsigned I = 0; I != N; ++I) {
    unsigned Victim = static_cast<unsigned>((X + I) % N);
    if (Victim == CurWorker)
      continue;
    if (Deques[Victim]->steal(T)) {
      CSteals->inc();
      Steals.fetch_add(1, std::memory_order_relaxed);
      return T;
    }
  }
  return nullptr;
}

void Runtime::execute(Task *T) {
  FinishNode *SavedFinish = CurFinish;
  CurFinish = T->Finish;
  T->Fn();
  CurFinish = SavedFinish;
  FinishNode *F = T->Finish;
  delete T;
  CTasks->inc();
  TasksExecuted.fetch_add(1, std::memory_order_relaxed);
  if (F)
    F->Pending.fetch_sub(1, std::memory_order_acq_rel);
  // A waiter may be spinning on this count or parked.
  WorkEpoch.fetch_add(1, std::memory_order_release);
  IdleCv.notify_all();
}

void Runtime::workerLoop(unsigned Id) {
  CurRuntime = this;
  CurWorker = Id;
  while (!ShuttingDown.load(std::memory_order_acquire)) {
    if (Task *T = findWork()) {
      execute(T);
      continue;
    }
    // Park until spawn/completion activity.
    uint64_t Epoch = WorkEpoch.load(std::memory_order_acquire);
    std::unique_lock<std::mutex> Lock(IdleMutex);
    IdleCv.wait_for(Lock, std::chrono::milliseconds(1), [&] {
      return ShuttingDown.load(std::memory_order_acquire) ||
             WorkEpoch.load(std::memory_order_acquire) != Epoch;
    });
  }
  CurRuntime = nullptr;
}

void Runtime::helpUntil(FinishNode &Node) {
  while (Node.Pending.load(std::memory_order_acquire) != 0) {
    if (Task *T = findWork()) {
      execute(T);
      continue;
    }
    std::this_thread::yield();
  }
}

void Runtime::run(std::function<void()> Root) {
  assert(!CurRuntime && "Runtime::run is not reentrant");
  obs::ScopedSpan Span(obs::phase::RuntimeRun);
  CurRuntime = this;
  CurWorker = 0;
  {
    FinishScope RootScope; // implicit finish around the whole program
    Root();
  } // joins everything
  CurRuntime = nullptr;
  CurFinish = nullptr;
}
