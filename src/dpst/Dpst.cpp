//===- Dpst.cpp -----------------------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "dpst/Dpst.h"

#include "ast/Ast.h"
#include "obs/Metrics.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <iterator>

using namespace tdr;

std::string DpstNode::label() const {
  const char *K = Kind == DpstKind::Root     ? "Root"
                  : Kind == DpstKind::Async  ? "Async"
                  : Kind == DpstKind::Finish ? "Finish"
                  : Kind == DpstKind::Future ? "Future"
                  : Kind == DpstKind::Scope
                      ? (SKind == ScopeKind::Call ? "Call" : "Scope")
                      : "Step";
  std::string S = strFormat("%s:%u", K, Id);
  if (Kind == DpstKind::Scope && Callee)
    S += strFormat("(%s)", Callee->name().c_str());
  if (Kind == DpstKind::Step && Weight)
    S += strFormat("[w=%llu]", static_cast<unsigned long long>(Weight));
  return S;
}

Dpst::Dpst()
    : CNodes(&obs::counter("dpst.nodes")),
      CQueries(&obs::counter("dpst.mhp_queries")),
      CInserts(&obs::counter("dpst.finish_inserts")) {
  Root = createNode(DpstKind::Root, nullptr);
}

DpstNode *Dpst::createNode(DpstKind K, DpstNode *Parent) {
  CNodes->inc();
  Nodes.emplace_back();
  DpstNode *N = &Nodes.back();
  N->Id = NextId++;
  N->Kind = K;
  N->Parent = Parent;
  if (Parent) {
    N->IndexInParent = static_cast<uint32_t>(Parent->Children.size());
    N->Depth = Parent->Depth + 1;
    Parent->Children.push_back(N);
  }
  return N;
}

const DpstNode *Dpst::lca(const DpstNode *A, const DpstNode *B) const {
  while (A != B) {
    if (A->depth() >= B->depth())
      A = A->parent();
    else
      B = B->parent();
    assert(A && B && "nodes from different trees");
  }
  return A;
}

const DpstNode *Dpst::nsLca(const DpstNode *A, const DpstNode *B) const {
  const DpstNode *L = lca(A, B);
  while (L->isScope())
    L = L->parent();
  return L;
}

const DpstNode *Dpst::childToward(const DpstNode *Ancestor,
                                  const DpstNode *Descendant) const {
  // Depth-directed: hop straight to the ancestor of Descendant one level
  // below Ancestor instead of scanning the whole path to the root.
  uint32_t AD = Ancestor->depth();
  const DpstNode *Cur = Descendant;
  if (Cur->depth() <= AD)
    return nullptr;
  while (Cur->depth() > AD + 1)
    Cur = Cur->parent();
  return Cur->parent() == Ancestor ? Cur : nullptr;
}

const DpstNode *Dpst::nonScopeChildToward(const DpstNode *N,
                                          const DpstNode *Descendant) const {
  // One upward walk: the first non-scope node on the way *down* from N is
  // the shallowest non-scope node strictly below N on the path, i.e. the
  // last one seen walking *up* from Descendant. The old implementation
  // descended with repeated childToward calls, each re-walking from
  // Descendant — O(depth^2) on scope chains.
  uint32_t ND = N->depth();
  const DpstNode *Cur = Descendant;
  if (Cur->depth() <= ND)
    return nullptr;
  const DpstNode *Answer = nullptr;
  while (Cur->depth() > ND) {
    if (Cur->isNonScope())
      Answer = Cur;
    Cur = Cur->parent();
  }
  return Cur == N ? Answer : nullptr;
}

bool Dpst::isLeftOf(const DpstNode *A, const DpstNode *B) const {
  if (A == B)
    return false;
  const DpstNode *L = lca(A, B);
  if (L == A)
    return true; // ancestor precedes descendants
  if (L == B)
    return false;
  const DpstNode *CA = childToward(L, A);
  const DpstNode *CB = childToward(L, B);
  return CA->indexInParent() < CB->indexInParent();
}

bool Dpst::mayHappenInParallel(const DpstNode *S1, const DpstNode *S2) const {
  CQueries->inc();
  assert(S1 != S2 && "parallelism query on a single node");
  assert(S1->isStep() && S2->isStep() && "MHP is defined on step leaves");
  // Single walk to the LCA, tracking per side the shallowest non-scope
  // node strictly below it. Because every node between the LCA and the
  // NS-LCA is a scope by definition, that tracked node IS the non-scope
  // child of the NS-LCA toward that side (Definition 3) — no second pass
  // needed. Steps are leaves, so neither argument is the LCA itself.
  auto Forces = [](const DpstNode *Fut, const DpstNode *Step) {
    const std::vector<uint32_t> *F = Step->forced();
    return F && std::binary_search(F->begin(), F->end(), Fut->futureId());
  };
  const DpstNode *A = S1, *B = S2;
  const DpstNode *AChild = nullptr, *BChild = nullptr;
  const DpstNode *ANs = nullptr, *BNs = nullptr;
  while (A != B) {
    if (A->depth() >= B->depth()) {
      // A future on the path, forced before the other step started, joins
      // this side's subtree into the other step's past: ordered.
      if (A->isFuture() && Forces(A, S2))
        return false;
      if (A->isNonScope())
        ANs = A;
      AChild = A;
      A = A->parent();
    } else {
      if (B->isFuture() && Forces(B, S1))
        return false;
      if (B->isNonScope())
        BNs = B;
      BChild = B;
      B = B->parent();
    }
    assert(A && B && "nodes from different trees");
  }
  assert(AChild && BChild && ANs && BNs &&
         "steps must be strict descendants of their LCA");
  // Theorem 1: the pair may run in parallel iff the NS-LCA's non-scope
  // child toward the left (earlier) step is a task node (async or future).
  const DpstNode *LeftNs =
      AChild->indexInParent() < BChild->indexInParent() ? ANs : BNs;
  return LeftNs->isTaskNode();
}

std::vector<DpstNode *> Dpst::nonScopeChildren(const DpstNode *N) const {
  std::vector<DpstNode *> Result;
  // Iterative DFS preserving left-to-right order: descend through scope
  // nodes, collect the first non-scope node on each path.
  std::vector<const DpstNode *> Work(N->children().rbegin(),
                                     N->children().rend());
  while (!Work.empty()) {
    const DpstNode *Cur = Work.back();
    Work.pop_back();
    if (Cur->isScope()) {
      Work.insert(Work.end(), Cur->children().rbegin(),
                  Cur->children().rend());
      continue;
    }
    Result.push_back(const_cast<DpstNode *>(Cur));
  }
  return Result;
}

DpstNode *Dpst::insertFinish(DpstNode *Parent, size_t Begin, size_t End,
                             const FinishStmt *Site) {
  assert(Begin <= End && End < Parent->Children.size() &&
         "finish insertion range out of bounds");

  CInserts->inc();
  Nodes.emplace_back();
  DpstNode *F = &Nodes.back();
  F->Id = NextId++;
  F->Kind = DpstKind::Finish;
  F->FinishS = Site;
  F->Parent = Parent;
  F->Depth = Parent->Depth + 1;
  F->Owner = Parent->Children[Begin]->Owner;
  F->OwnerLast = Parent->Children[End]->OwnerLast;

  // Adopt the range.
  F->Children.assign(Parent->Children.begin() + Begin,
                     Parent->Children.begin() + End + 1);
  for (size_t I = 0; I != F->Children.size(); ++I) {
    DpstNode *C = F->Children[I];
    C->Parent = F;
    C->IndexInParent = static_cast<uint32_t>(I);
    // The whole adopted subtree gets one level deeper.
    std::vector<DpstNode *> Stack{C};
    while (!Stack.empty()) {
      DpstNode *X = Stack.back();
      Stack.pop_back();
      ++X->Depth;
      Stack.insert(Stack.end(), X->Children.begin(), X->Children.end());
    }
  }

  auto &PC = Parent->Children;
  PC.erase(PC.begin() + Begin, PC.begin() + End + 1);
  PC.insert(PC.begin() + Begin, F);
  for (size_t I = Begin; I != PC.size(); ++I)
    PC[I]->IndexInParent = static_cast<uint32_t>(I);
  return F;
}

uint64_t Dpst::subtreeWork(const DpstNode *N) const {
  uint64_t Total = 0;
  std::vector<const DpstNode *> Stack{N};
  while (!Stack.empty()) {
    const DpstNode *X = Stack.back();
    Stack.pop_back();
    if (X->isStep())
      Total += X->weight();
    Stack.insert(Stack.end(), X->children().begin(), X->children().end());
  }
  return Total;
}

namespace {
/// Recursive completion-time evaluation. Returns the pair (SerialEnd,
/// Pending): SerialEnd is when the node's own sequential thread finishes,
/// relative to its start; Pending is the completion offset of spawned-and-
/// not-yet-joined asyncs.
struct CplResult {
  uint64_t SerialEnd;
  uint64_t Pending;
};

CplResult cplWalk(const DpstNode *N) {
  uint64_t Cur = 0;
  uint64_t Pending = 0;
  for (const DpstNode *C : N->children()) {
    switch (C->kind()) {
    case DpstKind::Step:
      Cur += C->weight();
      break;
    case DpstKind::Scope: {
      CplResult R = cplWalk(C);
      Pending = std::max(Pending, Cur + R.Pending);
      Cur += R.SerialEnd;
      break;
    }
    case DpstKind::Async: {
      CplResult R = cplWalk(C);
      // The child task runs concurrently from the spawn point.
      Pending = std::max({Pending, Cur + R.SerialEnd, Cur + R.Pending});
      break;
    }
    case DpstKind::Future: {
      CplResult R = cplWalk(C);
      // A future runs concurrently like an async, but its implicit finish
      // folds internal pending work into its own completion time.
      Pending = std::max(Pending, Cur + std::max(R.SerialEnd, R.Pending));
      break;
    }
    case DpstKind::Finish: {
      CplResult R = cplWalk(C);
      // The parent resumes only after everything inside completes.
      Cur += std::max(R.SerialEnd, R.Pending);
      break;
    }
    case DpstKind::Root:
      assert(false && "root cannot be a child");
      break;
    }
  }
  return {Cur, Pending};
}
} // namespace

uint64_t Dpst::subtreeCpl(const DpstNode *N) const {
  CplResult R = cplWalk(N);
  return std::max(R.SerialEnd, R.Pending);
}

std::string Dpst::dumpDot() const {
  std::string Out = "digraph sdpst {\n  node [shape=box];\n";
  for (const DpstNode &N : Nodes) {
    Out += strFormat("  n%u [label=\"%s\"];\n", N.id(), N.label().c_str());
    if (N.parent())
      Out += strFormat("  n%u -> n%u;\n", N.parent()->id(), N.id());
  }
  Out += "}\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// DpstBuilder
//===----------------------------------------------------------------------===//

DpstBuilder::DpstBuilder(Dpst &D) : D(D), Cur(D.root()) {
  TaskStack.push_back(D.root());
  // Root slot: exit sets of root-level tasks land here (nothing ever
  // reads it — no code runs after the program's implicit join).
  FinishAccum.push_back(nullptr);
}

DpstBuilder::ForcedSet DpstBuilder::unionForced(const ForcedSet &A,
                                                const ForcedSet &B) {
  if (!A || A->empty())
    return B;
  if (!B || B->empty())
    return A;
  if (A == B)
    return A;
  auto Merged = std::make_shared<std::vector<uint32_t>>();
  Merged->reserve(A->size() + B->size());
  std::set_union(A->begin(), A->end(), B->begin(), B->end(),
                 std::back_inserter(*Merged));
  return Merged;
}

DpstBuilder::ForcedSet DpstBuilder::unionForcedWith(const ForcedSet &A,
                                                    uint32_t Fid) const {
  ForcedSet Base = A;
  if (Fid < FutureById.size() && FutureById[Fid])
    Base = unionForced(Base, FutureById[Fid]->Forced);
  if (Base && std::binary_search(Base->begin(), Base->end(), Fid))
    return Base;
  auto Merged = std::make_shared<std::vector<uint32_t>>(
      Base ? *Base : std::vector<uint32_t>());
  Merged->insert(std::lower_bound(Merged->begin(), Merged->end(), Fid), Fid);
  return Merged;
}

void DpstBuilder::onAsyncEnter(const AsyncStmt *S, const Stmt *Owner) {
  closeStep();
  DpstNode *N = D.createNode(DpstKind::Async, Cur);
  N->Owner = Owner;
  N->OwnerLast = Owner;
  N->AsyncS = S;
  // Null S happens only in synthetic event streams (bench/tests).
  if (S)
    if (const auto *B = dyn_cast<BlockStmt>(S->body()))
      N->Container = B; // informational; the body block still gets a scope
  Cur = N;
  TaskStack.push_back(N);
  // The child context inherits the spawner's completed-future knowledge;
  // the snapshot to restore at exit is the same set (spawning changes
  // nothing for the parent).
  SavedForced.push_back(CurForced);
}

void DpstBuilder::onAsyncExit(const AsyncStmt *) {
  closeStep();
  TaskStack.pop_back();
  Cur = Cur->Parent;
  // The task's final knowledge becomes visible after its join point — the
  // immediately enclosing finish (or future's implicit finish).
  FinishAccum.back() = unionForced(FinishAccum.back(), CurForced);
  CurForced = SavedForced.back();
  SavedForced.pop_back();
}

void DpstBuilder::onFinishEnter(const FinishStmt *S, const Stmt *Owner) {
  closeStep();
  DpstNode *N = D.createNode(DpstKind::Finish, Cur);
  N->Owner = Owner;
  N->OwnerLast = Owner;
  N->FinishS = S;
  if (S)
    if (const auto *B = dyn_cast<BlockStmt>(S->body()))
      N->Container = B;
  Cur = N;
  // Exit sets of tasks joining at this finish accumulate here.
  FinishAccum.push_back(nullptr);
}

void DpstBuilder::onFinishExit(const FinishStmt *) {
  closeStep();
  Cur = Cur->Parent;
  // Everything joined tasks forced is now in this context's past.
  CurForced = unionForced(CurForced, FinishAccum.back());
  FinishAccum.pop_back();
}

void DpstBuilder::onFutureEnter(const FutureStmt *S, const Stmt *Owner,
                                uint32_t Fid) {
  closeStep();
  DpstNode *N = D.createNode(DpstKind::Future, Cur);
  N->Owner = Owner;
  N->OwnerLast = Owner;
  N->FutureS = S;
  N->FutureId = Fid;
  if (FutureById.size() <= Fid)
    FutureById.resize(Fid + 1, nullptr);
  FutureById[Fid] = N;
  Cur = N;
  TaskStack.push_back(N);
  SavedForced.push_back(CurForced);
  FinishAccum.push_back(nullptr); // the future's implicit finish
}

void DpstBuilder::onFutureExit(const FutureStmt *) {
  closeStep();
  TaskStack.pop_back();
  // The future's exit set (its own forces plus those of tasks joined by
  // the implicit finish) is stamped on the node so a later force can
  // propagate it transitively.
  ForcedSet ExitSet = unionForced(CurForced, FinishAccum.back());
  FinishAccum.pop_back();
  Cur->Forced = ExitSet;
  Cur = Cur->Parent;
  // Like an async, the future also joins at its enclosing finish.
  FinishAccum.back() = unionForced(FinishAccum.back(), ExitSet);
  CurForced = SavedForced.back();
  SavedForced.pop_back();
}

void DpstBuilder::onForce(uint32_t Fid) {
  // Accesses after the force are ordered after everything the future did;
  // close the step so they land in a fresh step carrying the new set.
  closeStep();
  CurForced = unionForcedWith(CurForced, Fid);
}

void DpstBuilder::onIsolatedEnter(const IsolatedStmt *, const Stmt *Owner) {
  closeStep();
  PendingOwner = Owner;
  InIsolated = true;
}

void DpstBuilder::onIsolatedExit(const IsolatedStmt *) {
  closeStep();
  InIsolated = false;
}

void DpstBuilder::onScopeEnter(ScopeKind K, const Stmt *Owner,
                               const BlockStmt *Body, const FuncDecl *Callee) {
  closeStep();
  DpstNode *N = D.createNode(DpstKind::Scope, Cur);
  N->Owner = Owner;
  N->OwnerLast = Owner;
  N->SKind = K;
  N->Container = Body;
  N->Callee = Callee;
  Cur = N;
}

void DpstBuilder::onScopeExit() {
  closeStep();
  Cur = Cur->Parent;
}

void DpstBuilder::onStepPoint(const Stmt *Owner) {
  PendingOwner = Owner;
  if (CurStep)
    CurStep->OwnerLast = Owner;
}

void DpstBuilder::onWork(uint64_t Units) { currentStep()->Weight += Units; }

DpstNode *DpstBuilder::currentStep() {
  if (!CurStep) {
    CurStep = D.createNode(DpstKind::Step, Cur);
    CurStep->Owner = PendingOwner;
    CurStep->OwnerLast = PendingOwner;
    CurStep->Isolated = InIsolated;
    CurStep->Forced = CurForced;
  }
  return CurStep;
}
