//===- Dpst.h - Scoped Dynamic Program Structure Tree ------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Scoped Dynamic Program Structure Tree (paper §4.2, Definition 2).
/// Leaves are step instances; interior nodes are async, finish, and scope
/// instances (plus one root task node). Children are ordered left-to-right
/// in execution order. Scope nodes record the lexical container (block or
/// call body) they execute, and every node records the *owner statement*
/// that created it inside its parent's container — the information the
/// static finish placement needs to map S-DPST positions back to source.
///
/// The tree is mutable: the repair pipeline inserts finish nodes
/// (Dpst::insertFinish) and re-asks the parallelism query afterwards.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_DPST_DPST_H
#define TDR_DPST_DPST_H

#include "interp/Monitor.h"

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

namespace tdr {

class AsyncStmt;
class FinishStmt;
class FutureStmt;

namespace obs {
class Counter;
} // namespace obs

/// Kind of an S-DPST node. Future is appended so the original kinds keep
/// their numeric values (recorded traces and dumps stay comparable).
enum class DpstKind : uint8_t { Root, Async, Finish, Scope, Step, Future };

/// One S-DPST node.
class DpstNode {
public:
  uint32_t id() const { return Id; }
  DpstKind kind() const { return Kind; }
  bool isStep() const { return Kind == DpstKind::Step; }
  bool isScope() const { return Kind == DpstKind::Scope; }
  bool isAsync() const { return Kind == DpstKind::Async; }
  bool isFinish() const { return Kind == DpstKind::Finish; }
  bool isRoot() const { return Kind == DpstKind::Root; }
  bool isFuture() const { return Kind == DpstKind::Future; }
  /// A node whose subtree runs concurrently with its parent's continuation
  /// (until joined): asyncs and futures.
  bool isTaskNode() const {
    return Kind == DpstKind::Async || Kind == DpstKind::Future;
  }
  /// Non-scope means async, future, finish, step, or root.
  bool isNonScope() const { return Kind != DpstKind::Scope; }

  DpstNode *parent() const { return Parent; }
  const std::vector<DpstNode *> &children() const { return Children; }
  uint32_t indexInParent() const { return IndexInParent; }
  uint32_t depth() const { return Depth; }

  /// The statement in the parent's container that created this node; null
  /// for the root and for root-level steps. For steps, [owner, ownerLast]
  /// is the range of statements merged into the step.
  const Stmt *owner() const { return Owner; }
  const Stmt *ownerLast() const { return OwnerLast; }

  /// For scope nodes: why the scope exists.
  ScopeKind scopeKind() const { return SKind; }
  /// The statement list this node executes: the block itself for Block
  /// scopes, the callee body for Call scopes and the root, the async or
  /// finish body when that body is a block; null otherwise.
  const BlockStmt *container() const { return Container; }
  const FuncDecl *callee() const { return Callee; }
  const AsyncStmt *asyncStmt() const { return AsyncS; }
  const FinishStmt *finishStmt() const { return FinishS; }
  const FutureStmt *futureStmt() const { return FutureS; }

  /// For Future nodes: the dynamic future id (execution order, from 0).
  uint32_t futureId() const { return FutureId; }

  /// Step weight in abstract work units (steps only).
  uint64_t weight() const { return Weight; }

  /// For steps: true when the step executed inside an isolated section.
  /// Two isolated steps commute (mutual exclusion), so a race between them
  /// is suppressed even though they may run in parallel.
  bool isIsolated() const { return Isolated; }

  /// For steps: the sorted dynamic ids of every future known to have
  /// completed before this step started (directly forced, inherited from
  /// the spawner, joined through an enclosing finish, or reached
  /// transitively through another force). Null means none. For Future
  /// nodes: the same set as of the future's own exit, used for transitive
  /// propagation. Shared immutable snapshots — cheap to attach per step.
  const std::vector<uint32_t> *forced() const { return Forced.get(); }

  /// Short description for dumps, e.g. "Async:12".
  std::string label() const;

private:
  friend class Dpst;
  friend class DpstBuilder;

  uint32_t Id = 0;
  DpstKind Kind = DpstKind::Step;
  DpstNode *Parent = nullptr;
  std::vector<DpstNode *> Children;
  uint32_t IndexInParent = 0;
  uint32_t Depth = 0;

  const Stmt *Owner = nullptr;
  const Stmt *OwnerLast = nullptr;
  ScopeKind SKind = ScopeKind::Block;
  const BlockStmt *Container = nullptr;
  const FuncDecl *Callee = nullptr;
  const AsyncStmt *AsyncS = nullptr;
  const FinishStmt *FinishS = nullptr;
  const FutureStmt *FutureS = nullptr;
  uint32_t FutureId = 0;
  uint64_t Weight = 0;
  bool Isolated = false;
  std::shared_ptr<const std::vector<uint32_t>> Forced;
};

/// Owns the nodes of one S-DPST and answers the structural queries the
/// analyses need. Node ids reflect creation order of the original
/// execution; ordering queries are structural (child indices), so they stay
/// correct after finish insertion.
class Dpst {
public:
  Dpst();

  DpstNode *root() { return Root; }
  const DpstNode *root() const { return Root; }
  size_t numNodes() const { return Nodes.size(); }

  /// Least common ancestor.
  const DpstNode *lca(const DpstNode *A, const DpstNode *B) const;

  /// Non-scope least common ancestor (Definition 4): the first non-scope
  /// node on the path from lca(A, B) to the root.
  const DpstNode *nsLca(const DpstNode *A, const DpstNode *B) const;

  /// True when \p A precedes \p B in the left-to-right (depth-first)
  /// order. A node precedes its own descendants.
  bool isLeftOf(const DpstNode *A, const DpstNode *B) const;

  /// True when \p Anc is \p N or an ancestor of \p N.
  bool isAncestorOrSelf(const DpstNode *Anc, const DpstNode *N) const {
    while (N && N->depth() > Anc->depth())
      N = N->parent();
    return N == Anc;
  }

  /// The child of \p Ancestor on the path down to \p Descendant; null when
  /// Descendant == Ancestor or not a descendant.
  const DpstNode *childToward(const DpstNode *Ancestor,
                              const DpstNode *Descendant) const;

  /// The *non-scope child* of \p N (Definition 3) that is an ancestor of
  /// (or equal to) \p Descendant: the first non-scope node walking down
  /// from N toward Descendant.
  const DpstNode *nonScopeChildToward(const DpstNode *N,
                                      const DpstNode *Descendant) const;

  /// Theorem 1, extended for futures: steps \p S1 (left of) \p S2 may
  /// execute in parallel iff the non-scope child of their NS-LCA on S1's
  /// side is a task node (async or future) AND no future on the path from
  /// either step to the LCA was forced before the other step started (a
  /// force is a join edge: everything the future did happens-before the
  /// forcing step's continuation).
  bool mayHappenInParallel(const DpstNode *S1, const DpstNode *S2) const;

  /// True when both steps ran inside isolated sections, i.e. a pair of
  /// conflicting accesses between them commutes under mutual exclusion and
  /// must not be reported as a race. Orthogonal to mayHappenInParallel:
  /// isolated steps may well run in parallel.
  static bool bothIsolated(const DpstNode *S1, const DpstNode *S2) {
    return S1->isIsolated() && S2->isIsolated();
  }

  /// Collects the non-scope children of \p N in left-to-right order
  /// (Definition 3: direct descendants with only scope nodes in between).
  std::vector<DpstNode *> nonScopeChildren(const DpstNode *N) const;

  /// Inserts a new finish node as a child of \p Parent adopting the child
  /// range [Begin, End] (inclusive). \p Site is the synthesized finish
  /// statement this dynamic node corresponds to. Subtree depths are
  /// updated. Returns the new node.
  DpstNode *insertFinish(DpstNode *Parent, size_t Begin, size_t End,
                         const FinishStmt *Site);

  /// Sum of step weights under \p N (inclusive).
  uint64_t subtreeWork(const DpstNode *N) const;

  /// Critical path length of the subtree rooted at \p N assuming the node
  /// itself joins all its descendants (i.e. the completion time of N when
  /// started at time 0 and followed by a join of everything it spawned).
  uint64_t subtreeCpl(const DpstNode *N) const;

  /// Graphviz dump (small trees; tests and debugging).
  std::string dumpDot() const;

private:
  friend class DpstBuilder;

  DpstNode *createNode(DpstKind K, DpstNode *Parent);

  // Per-event instruments, bound at construction so node creation and the
  // MHP query touch one relaxed atomic each (see obs/Metrics.h).
  obs::Counter *CNodes;
  obs::Counter *CQueries;
  obs::Counter *CInserts;
  std::deque<DpstNode> Nodes;
  DpstNode *Root = nullptr;
  uint32_t NextId = 0;
};

/// Builds an S-DPST from interpreter events.
class DpstBuilder : public ExecMonitor {
public:
  explicit DpstBuilder(Dpst &D);

  void onAsyncEnter(const AsyncStmt *S, const Stmt *Owner) override;
  void onAsyncExit(const AsyncStmt *S) override;
  void onFinishEnter(const FinishStmt *S, const Stmt *Owner) override;
  void onFinishExit(const FinishStmt *S) override;
  void onFutureEnter(const FutureStmt *S, const Stmt *Owner,
                     uint32_t Fid) override;
  void onFutureExit(const FutureStmt *S) override;
  void onForce(uint32_t Fid) override;
  void onIsolatedEnter(const IsolatedStmt *S, const Stmt *Owner) override;
  void onIsolatedExit(const IsolatedStmt *S) override;
  void onScopeEnter(ScopeKind K, const Stmt *Owner, const BlockStmt *Body,
                    const FuncDecl *Callee) override;
  void onScopeExit() override;
  void onStepPoint(const Stmt *Owner) override;
  void onWork(uint64_t Units) override;

  /// The step receiving the current accesses, creating it if needed. Race
  /// detectors call this instead of relying on monitor ordering.
  DpstNode *currentStep();

  /// The innermost task node (root or async) currently executing — the
  /// "current task" of the canonical sequential execution.
  DpstNode *currentTask() const { return TaskStack.back(); }

  /// The tree under construction. Detectors whose happens-before machinery
  /// over-approximates with futures in play (force edges are not bag/clock
  /// merges) confirm positive verdicts against it before recording.
  const Dpst &tree() const { return D; }

private:
  using ForcedSet = std::shared_ptr<const std::vector<uint32_t>>;

  void closeStep() { CurStep = nullptr; }
  /// Sorted-set union of two snapshots (either may be null).
  static ForcedSet unionForced(const ForcedSet &A, const ForcedSet &B);
  /// A ∪ {Fid} ∪ B, for the force edge.
  ForcedSet unionForcedWith(const ForcedSet &A, uint32_t Fid) const;

  Dpst &D;
  DpstNode *Cur;
  DpstNode *CurStep = nullptr;
  const Stmt *PendingOwner = nullptr;
  std::vector<DpstNode *> TaskStack;

  // Force-ordering bookkeeping (see DpstNode::forced). CurForced is the
  // set of completed futures known to the currently executing sequential
  // context; SavedForced restores it across task enter/exit; FinishAccum
  // (one slot per open finish or future, plus a root slot) accumulates
  // the exit sets of joined child tasks.
  ForcedSet CurForced;
  std::vector<ForcedSet> SavedForced;
  std::vector<ForcedSet> FinishAccum;
  std::vector<DpstNode *> FutureById;
  bool InIsolated = false;
};

} // namespace tdr

#endif // TDR_DPST_DPST_H
