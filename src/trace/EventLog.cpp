//===- EventLog.cpp - Out-of-core event log storage -----------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "trace/EventLog.h"

#include <cstdlib>
#include <cstring>

#include <unistd.h>

using namespace tdr::trace;

namespace {

/// Parses TDR_LOG_SPILL: a byte count with an optional K/M/G (KiB/MiB/
/// GiB) suffix. Unset, empty, zero, or unparsable means "never spill".
size_t spillThresholdEnv() {
  const char *V = std::getenv("TDR_LOG_SPILL");
  if (!V || !*V)
    return 0;
  char *End = nullptr;
  unsigned long long N = std::strtoull(V, &End, 10);
  if (End == V)
    return 0;
  switch (*End) {
  case 'k':
  case 'K':
    N <<= 10;
    break;
  case 'm':
  case 'M':
    N <<= 20;
    break;
  case 'g':
  case 'G':
    N <<= 30;
    break;
  default:
    break;
  }
  return static_cast<size_t>(N);
}

} // namespace

void EventLog::FileCloser::operator()(std::FILE *F) const {
  if (F)
    std::fclose(F);
}

EventLog::EventLog() : SpillThreshold(spillThresholdEnv()) {}

EventLog::~EventLog() = default;

void EventLog::setSpillThreshold(size_t Bytes) {
  assert(empty() && "spill threshold must be set before recording");
  SpillThreshold = Bytes;
}

void EventLog::addChunk() {
  if (!SpillThreshold) {
    if (!Arena)
      Arena = std::make_unique<MonotonicArena>();
    Chunks.push_back(static_cast<Event *>(
        Arena->allocate(ChunkBytes, alignof(Event))));
    return;
  }
  // Every existing chunk is full here (a chunk is added only when the log
  // is exactly at a chunk boundary), so the whole resident window is
  // eligible to migrate once it reaches the budget.
  if ((Chunks.size() - NumSpilled) * ChunkBytes >= SpillThreshold)
    spillResident();
  Owned.push_back(std::make_unique<Event[]>(ChunkEvents));
  Chunks.push_back(Owned.back().get());
}

void EventLog::spillResident() {
  if (!Spill) {
    std::FILE *F = std::tmpfile();
    if (!F)
      return; // no temp space: degrade to fully-resident recording
    Spill.reset(F);
  }
  size_t First = NumSpilled;
  for (size_t C = First; C != Chunks.size(); ++C) {
    if (std::fwrite(Chunks[C], 1, ChunkBytes, Spill.get()) != ChunkBytes)
      return; // disk full: keep this and later chunks resident
    Owned[C].reset();
    Chunks[C] = nullptr;
    ++NumSpilled;
  }
  // forEach reads through pread on the raw descriptor; make sure the
  // stdio buffer is on disk before anyone does.
  std::fflush(Spill.get());
  obs::counter("trace.spilled_chunks").inc(NumSpilled - First);
  obs::counter("trace.spilled_bytes").inc((NumSpilled - First) * ChunkBytes);
}

void EventLog::readSpilled(size_t FirstChunk, size_t NumChunks,
                           Event *Out) const {
  int Fd = fileno(Spill.get());
  size_t Bytes = NumChunks * ChunkBytes;
  off_t Off = static_cast<off_t>(FirstChunk * ChunkBytes);
  char *Dst = reinterpret_cast<char *>(Out);
  while (Bytes) {
    ssize_t N = ::pread(Fd, Dst, Bytes, Off);
    if (N <= 0) {
      // A short read here means the temp file was truncated under us.
      // Events are plain data, so degrade the unreadable tail to
      // default-constructed events (Work with 0 units — a no-op for
      // every consumer) instead of handing the replayer torn bytes.
      size_t Done = static_cast<size_t>(Dst - reinterpret_cast<char *>(Out));
      Event *Fill = Out + (Done + sizeof(Event) - 1) / sizeof(Event);
      Event *End = Out + NumChunks * ChunkEvents;
      for (; Fill != End; ++Fill)
        *Fill = Event();
      return;
    }
    Dst += N;
    Bytes -= static_cast<size_t>(N);
    Off += N;
  }
}

void EventLog::clear() {
  Chunks.clear();
  Owned.clear();
  Count = 0;
  NumSpilled = 0;
  Arena.reset();
  Spill.reset();
}
