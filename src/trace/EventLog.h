//===- EventLog.h - Compact execution event trace ----------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Record-once / replay-many: the ExecMonitor event stream of one
/// instrumented interpretation, reified as a compact arena-backed log.
///
/// The repair loop re-detects races after every placement round, but by
/// serial elision inserting finish statements cannot change the canonical
/// depth-first execution — the memory-access and scope event stream is
/// invariant across repair iterations. So the stream is recorded on the
/// first interpretation of each input (RecorderMonitor) and later
/// iterations re-feed it to the DPST builder + detector through
/// replayEvents (see Replay.h), which remaps owners and synthesizes the
/// finish enter/exit events the AST edits would have produced.
///
/// One Event is 32 bytes; events are stored in fixed-size chunks bump-
/// allocated from a MonotonicArena, so recording costs one store and a
/// rare slab allocation per event and the log never relocates.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_TRACE_EVENTLOG_H
#define TDR_TRACE_EVENTLOG_H

#include "interp/Monitor.h"
#include "obs/Metrics.h"
#include "support/PagedArray.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace tdr::trace {

/// Discriminates Event payloads; one tag per ExecMonitor hook.
enum class EvKind : uint8_t {
  AsyncEnter,
  AsyncExit,
  FinishEnter,
  FinishExit,
  ScopeEnter,
  ScopeExit,
  StepPoint,
  Work,
  Read,
  Write,
};

/// One recorded monitor event. Field use per kind:
///
///   AsyncEnter   P0 = AsyncStmt,  P1 = owner
///   AsyncExit    P0 = AsyncStmt
///   FinishEnter  P0 = FinishStmt, P1 = owner
///   FinishExit   P0 = FinishStmt
///   ScopeEnter   SK = scope kind, P0 = owner, P1 = body, U = FuncDecl
///   ScopeExit    —
///   StepPoint    P0 = owner
///   Work         U  = units
///   Read/Write   LK/Id/U = MemLoc kind/id/index
struct Event {
  EvKind K = EvKind::Work;
  uint8_t SK = 0; ///< ScopeKind, narrowed (see scopeKind())
  uint8_t LK = 0;
  uint32_t Id = 0;
  const void *P0 = nullptr;
  const void *P1 = nullptr;
  uint64_t U = 0;

  ScopeKind scopeKind() const { return static_cast<ScopeKind>(SK); }
  MemLoc loc() const {
    MemLoc L;
    L.K = static_cast<MemLoc::Kind>(LK);
    L.Id = Id;
    L.Index = static_cast<int64_t>(U);
    return L;
  }
  static Event access(EvKind K, MemLoc L) {
    Event E;
    E.K = K;
    E.LK = static_cast<uint8_t>(L.K);
    E.Id = L.Id;
    E.U = static_cast<uint64_t>(L.Index);
    return E;
  }
};

static_assert(sizeof(Event) == 32, "Event packing regressed");

/// Append-only, chunked event storage. Chunks are bump-allocated from a
/// private arena and never move, so iteration is a flat scan.
class EventLog {
  static constexpr size_t ChunkEvents = 2048;

public:
  void push(const Event &E) {
    if (Count == Chunks.size() * ChunkEvents) {
      if (!Arena)
        Arena = std::make_unique<MonotonicArena>();
      Chunks.push_back(static_cast<Event *>(
          Arena->allocate(sizeof(Event) * ChunkEvents, alignof(Event))));
    }
    Chunks[Count / ChunkEvents][Count % ChunkEvents] = E;
    ++Count;
  }

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }
  size_t bytesReserved() const { return Arena ? Arena->bytesReserved() : 0; }

  /// Visits every event in recording order.
  template <typename Fn> void forEach(Fn &&F) const {
    size_t Rem = Count;
    for (const Event *C : Chunks) {
      size_t N = Rem < ChunkEvents ? Rem : ChunkEvents;
      for (size_t I = 0; I != N; ++I)
        F(C[I]);
      Rem -= N;
    }
  }

  void clear() {
    Chunks.clear();
    Count = 0;
    Arena.reset();
  }

private:
  std::vector<Event *> Chunks;
  size_t Count = 0;
  std::unique_ptr<MonotonicArena> Arena;
};

/// ExecMonitor that appends every event to an EventLog. Chain it ahead of
/// the detection monitors (detectRaces keeps caller monitors in front of
/// the fused builder/detector) so it records the raw interpreter stream.
///
/// Work events are coalesced: the interpreter reports one unit per
/// statement, so runs of onWork with no other event in between — every
/// locals-only stretch of computation — collapse into a single summed
/// event. Consumers only ever accumulate units into the current step
/// (DpstBuilder::onWork), and a run cannot span a step boundary because
/// step-delimiting events flush it, so the replayed per-step weights are
/// unchanged while compute-heavy logs shrink by the statement count.
class RecorderMonitor final : public ExecMonitor {
public:
  explicit RecorderMonitor(EventLog &Log)
      : Log(Log), CEvents(&obs::counter("trace.events")) {}

  ~RecorderMonitor() { flush(); }

  /// Appends any pending coalesced work. Called on destruction; call it
  /// explicitly when the log is read while the recorder is still alive.
  void flush() {
    if (!PendingWork)
      return;
    Event E;
    E.K = EvKind::Work;
    E.U = PendingWork;
    PendingWork = 0;
    record(E);
  }

  void onAsyncEnter(const AsyncStmt *S, const Stmt *Owner) override {
    Event E;
    E.K = EvKind::AsyncEnter;
    E.P0 = S;
    E.P1 = Owner;
    record(E);
  }
  void onAsyncExit(const AsyncStmt *S) override {
    Event E;
    E.K = EvKind::AsyncExit;
    E.P0 = S;
    record(E);
  }
  void onFinishEnter(const FinishStmt *S, const Stmt *Owner) override {
    Event E;
    E.K = EvKind::FinishEnter;
    E.P0 = S;
    E.P1 = Owner;
    record(E);
  }
  void onFinishExit(const FinishStmt *S) override {
    Event E;
    E.K = EvKind::FinishExit;
    E.P0 = S;
    record(E);
  }
  void onScopeEnter(ScopeKind K, const Stmt *Owner, const BlockStmt *Body,
                    const FuncDecl *Callee) override {
    Event E;
    E.K = EvKind::ScopeEnter;
    E.SK = static_cast<uint8_t>(K);
    E.P0 = Owner;
    E.P1 = Body;
    E.U = reinterpret_cast<uint64_t>(Callee);
    record(E);
  }
  void onScopeExit() override {
    Event E;
    E.K = EvKind::ScopeExit;
    record(E);
  }
  void onStepPoint(const Stmt *Owner) override {
    Event E;
    E.K = EvKind::StepPoint;
    E.P0 = Owner;
    record(E);
  }
  void onWork(uint64_t Units) override { PendingWork += Units; }
  void onRead(MemLoc L) override { record(Event::access(EvKind::Read, L)); }
  void onWrite(MemLoc L) override { record(Event::access(EvKind::Write, L)); }

private:
  void record(const Event &E) {
    flushBefore(E);
    Log.push(E);
    CEvents->inc();
  }

  void flushBefore(const Event &Next) {
    if (!PendingWork || Next.K == EvKind::Work)
      return;
    flush();
  }

  EventLog &Log;
  obs::Counter *CEvents;
  uint64_t PendingWork = 0;
};

} // namespace tdr::trace

#endif // TDR_TRACE_EVENTLOG_H
