//===- EventLog.h - Compact execution event trace ----------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Record-once / replay-many: the ExecMonitor event stream of one
/// instrumented interpretation, reified as a compact arena-backed log.
///
/// The repair loop re-detects races after every placement round, but by
/// serial elision inserting finish statements cannot change the canonical
/// depth-first execution — the memory-access and scope event stream is
/// invariant across repair iterations. So the stream is recorded on the
/// first interpretation of each input (RecorderMonitor) and later
/// iterations re-feed it to the DPST builder + detector through
/// replayEvents (see Replay.h), which remaps owners and synthesizes the
/// finish enter/exit events the AST edits would have produced.
///
/// One Event is 32 bytes; events are stored in fixed-size chunks bump-
/// allocated from a MonotonicArena, so recording costs one store and a
/// rare slab allocation per event and the log never relocates.
///
/// Out-of-core mode: with a spill threshold configured (TDR_LOG_SPILL in
/// the environment, or setSpillThreshold before recording), full chunks
/// past the resident budget are appended sequentially to an anonymous
/// temporary file and freed, so recording a 10^8+-event trace holds a
/// bounded number of chunks in memory. forEach streams the spilled prefix
/// back with sequential readahead (pread into a reusable batch buffer),
/// which is exactly the access pattern replayEvents needs. Events carry
/// raw AST pointers, which stay valid across the disk round trip because
/// a log never outlives the process that recorded it.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_TRACE_EVENTLOG_H
#define TDR_TRACE_EVENTLOG_H

#include "interp/Monitor.h"
#include "obs/Metrics.h"
#include "support/PagedArray.h"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

namespace tdr::trace {

/// Discriminates Event payloads; one tag per ExecMonitor hook.
enum class EvKind : uint8_t {
  AsyncEnter,
  AsyncExit,
  FinishEnter,
  FinishExit,
  ScopeEnter,
  ScopeExit,
  StepPoint,
  Work,
  Read,
  Write,
  // New construct kinds are appended so recorded numeric values of the
  // original kinds stay stable.
  FutureEnter,
  FutureExit,
  Force,
  IsolatedEnter,
  IsolatedExit,
};

/// One recorded monitor event. Field use per kind:
///
///   AsyncEnter   P0 = AsyncStmt,  P1 = owner
///   AsyncExit    P0 = AsyncStmt
///   FinishEnter  P0 = FinishStmt, P1 = owner
///   FinishExit   P0 = FinishStmt
///   ScopeEnter   SK = scope kind, P0 = owner, P1 = body, U = FuncDecl
///   ScopeExit    —
///   StepPoint    P0 = owner
///   Work         U  = units
///   Read/Write   LK/Id/U = MemLoc kind/id/index
///   FutureEnter  P0 = FutureStmt, P1 = owner, Id = dynamic future id
///   FutureExit   P0 = FutureStmt
///   Force        Id = dynamic future id
///   IsolatedEnter P0 = IsolatedStmt, P1 = owner
///   IsolatedExit P0 = IsolatedStmt
struct Event {
  EvKind K = EvKind::Work;
  uint8_t SK = 0; ///< ScopeKind, narrowed (see scopeKind())
  uint8_t LK = 0;
  uint32_t Id = 0;
  const void *P0 = nullptr;
  const void *P1 = nullptr;
  uint64_t U = 0;

  ScopeKind scopeKind() const { return static_cast<ScopeKind>(SK); }
  MemLoc loc() const {
    MemLoc L;
    L.K = static_cast<MemLoc::Kind>(LK);
    L.Id = Id;
    L.Index = static_cast<int64_t>(U);
    return L;
  }
  static Event access(EvKind K, MemLoc L) {
    Event E;
    E.K = K;
    E.LK = static_cast<uint8_t>(L.K);
    E.Id = L.Id;
    E.U = static_cast<uint64_t>(L.Index);
    return E;
  }
};

static_assert(sizeof(Event) == 32, "Event packing regressed");

/// Append-only, chunked event storage. Chunks never move, so iteration is
/// a flat scan; resident chunks are bump-allocated from a private arena.
/// With a spill threshold set (see setSpillThreshold / TDR_LOG_SPILL),
/// chunks are individually heap-owned instead and the full-chunk prefix
/// migrates to an anonymous temporary file whenever resident bytes reach
/// the threshold.
class EventLog {
public:
  static constexpr size_t ChunkEvents = 2048;
  static constexpr size_t ChunkBytes = sizeof(Event) * ChunkEvents;

  /// Picks up the process-default spill threshold (TDR_LOG_SPILL, bytes
  /// with optional K/M/G suffix; unset or 0 keeps the log fully resident).
  EventLog();
  ~EventLog();
  EventLog(EventLog &&) = default;
  EventLog &operator=(EventLog &&) = default;

  /// Sets the resident-byte budget above which full chunks spill to disk
  /// (0 disables spilling). Must be called before the first push — an
  /// already-recorded log is not migrated between storage schemes.
  void setSpillThreshold(size_t Bytes);
  size_t spillThreshold() const { return SpillThreshold; }

  void push(const Event &E) {
    if (Count == Chunks.size() * ChunkEvents)
      addChunk();
    Chunks[Count / ChunkEvents][Count % ChunkEvents] = E;
    ++Count;
  }

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }

  /// Bytes of event storage currently held in memory.
  size_t bytesResident() const {
    return (Arena ? Arena->bytesReserved() : 0) +
           (Chunks.size() - NumSpilled) * (Arena ? 0 : ChunkBytes);
  }
  /// Bytes of event storage migrated to the spill file.
  size_t bytesSpilled() const { return NumSpilled * ChunkBytes; }
  /// Total event storage, wherever it lives.
  size_t bytesReserved() const { return bytesResident() + bytesSpilled(); }
  bool spilled() const { return NumSpilled != 0; }

  /// Visits every event in recording order. The spilled prefix streams
  /// back through a sequential-readahead batch buffer; resident chunks
  /// are scanned in place.
  template <typename Fn> void forEach(Fn &&F) const {
    size_t Chunk = 0;
    if (NumSpilled) {
      // Spilled chunks are always full (only complete chunks migrate), so
      // the prefix carries exactly NumSpilled * ChunkEvents events.
      std::vector<Event> Buf(ReadaheadChunks * ChunkEvents);
      while (Chunk != NumSpilled) {
        size_t Batch = NumSpilled - Chunk < ReadaheadChunks
                           ? NumSpilled - Chunk
                           : ReadaheadChunks;
        readSpilled(Chunk, Batch, Buf.data());
        for (size_t I = 0; I != Batch * ChunkEvents; ++I)
          F(Buf[I]);
        Chunk += Batch;
      }
    }
    size_t Rem = Count - Chunk * ChunkEvents;
    for (; Chunk != Chunks.size(); ++Chunk) {
      const Event *C = Chunks[Chunk];
      size_t N = Rem < ChunkEvents ? Rem : ChunkEvents;
      for (size_t I = 0; I != N; ++I)
        F(C[I]);
      Rem -= N;
    }
  }

  /// Drops all events (and the spill file, if any); the spill threshold
  /// is retained, so the log can be reused for another recording.
  void clear();

private:
  /// Chunks fetched per readahead batch when streaming the spilled
  /// prefix: 16 * 64 KiB = 1 MiB of sequential I/O per pread.
  static constexpr size_t ReadaheadChunks = 16;

  void addChunk();
  void spillResident();
  void readSpilled(size_t FirstChunk, size_t NumChunks, Event *Out) const;

  struct FileCloser {
    void operator()(std::FILE *F) const;
  };

  std::vector<Event *> Chunks; ///< per-chunk storage; spilled prefix nulled
  size_t Count = 0;
  size_t NumSpilled = 0;  ///< chunks migrated to the spill file (a prefix)
  size_t SpillThreshold = 0; ///< resident bytes that trigger a spill; 0=off
  std::unique_ptr<MonotonicArena> Arena; ///< resident-mode chunk storage
  /// Spill-mode chunk ownership, parallel to Chunks (resident mode leaves
  /// it empty); spilling a chunk resets its entry.
  std::vector<std::unique_ptr<Event[]>> Owned;
  std::unique_ptr<std::FILE, FileCloser> Spill; ///< anonymous, auto-deleted
};

/// ExecMonitor that appends every event to an EventLog. Chain it ahead of
/// the detection monitors (detectRaces keeps caller monitors in front of
/// the fused builder/detector) so it records the raw interpreter stream.
///
/// Work events are coalesced: the interpreter reports one unit per
/// statement, so runs of onWork with no other event in between — every
/// locals-only stretch of computation — collapse into a single summed
/// event. Consumers only ever accumulate units into the current step
/// (DpstBuilder::onWork), and a run cannot span a step boundary because
/// step-delimiting events flush it, so the replayed per-step weights are
/// unchanged while compute-heavy logs shrink by the statement count.
class RecorderMonitor final : public ExecMonitor {
public:
  explicit RecorderMonitor(EventLog &Log)
      : Log(Log), CEvents(&obs::counter("trace.events")) {}

  ~RecorderMonitor() { flush(); }

  /// Appends any pending coalesced work. Called on destruction; call it
  /// explicitly when the log is read while the recorder is still alive.
  void flush() {
    if (!PendingWork)
      return;
    Event E;
    E.K = EvKind::Work;
    E.U = PendingWork;
    PendingWork = 0;
    record(E);
  }

  void onAsyncEnter(const AsyncStmt *S, const Stmt *Owner) override {
    Event E;
    E.K = EvKind::AsyncEnter;
    E.P0 = S;
    E.P1 = Owner;
    record(E);
  }
  void onAsyncExit(const AsyncStmt *S) override {
    Event E;
    E.K = EvKind::AsyncExit;
    E.P0 = S;
    record(E);
  }
  void onFinishEnter(const FinishStmt *S, const Stmt *Owner) override {
    Event E;
    E.K = EvKind::FinishEnter;
    E.P0 = S;
    E.P1 = Owner;
    record(E);
  }
  void onFinishExit(const FinishStmt *S) override {
    Event E;
    E.K = EvKind::FinishExit;
    E.P0 = S;
    record(E);
  }
  void onScopeEnter(ScopeKind K, const Stmt *Owner, const BlockStmt *Body,
                    const FuncDecl *Callee) override {
    Event E;
    E.K = EvKind::ScopeEnter;
    E.SK = static_cast<uint8_t>(K);
    E.P0 = Owner;
    E.P1 = Body;
    E.U = reinterpret_cast<uint64_t>(Callee);
    record(E);
  }
  void onScopeExit() override {
    Event E;
    E.K = EvKind::ScopeExit;
    record(E);
  }
  void onStepPoint(const Stmt *Owner) override {
    Event E;
    E.K = EvKind::StepPoint;
    E.P0 = Owner;
    record(E);
  }
  void onFutureEnter(const FutureStmt *S, const Stmt *Owner,
                     uint32_t Fid) override {
    Event E;
    E.K = EvKind::FutureEnter;
    E.P0 = S;
    E.P1 = Owner;
    E.Id = Fid;
    record(E);
  }
  void onFutureExit(const FutureStmt *S) override {
    Event E;
    E.K = EvKind::FutureExit;
    E.P0 = S;
    record(E);
  }
  void onForce(uint32_t Fid) override {
    Event E;
    E.K = EvKind::Force;
    E.Id = Fid;
    record(E);
  }
  void onIsolatedEnter(const IsolatedStmt *S, const Stmt *Owner) override {
    Event E;
    E.K = EvKind::IsolatedEnter;
    E.P0 = S;
    E.P1 = Owner;
    record(E);
  }
  void onIsolatedExit(const IsolatedStmt *S) override {
    Event E;
    E.K = EvKind::IsolatedExit;
    E.P0 = S;
    record(E);
  }
  void onWork(uint64_t Units) override { PendingWork += Units; }
  void onRead(MemLoc L) override { record(Event::access(EvKind::Read, L)); }
  void onWrite(MemLoc L) override { record(Event::access(EvKind::Write, L)); }

private:
  void record(const Event &E) {
    flushBefore(E);
    Log.push(E);
    CEvents->inc();
  }

  void flushBefore(const Event &Next) {
    if (!PendingWork || Next.K == EvKind::Work)
      return;
    flush();
  }

  EventLog &Log;
  obs::Counter *CEvents;
  uint64_t PendingWork = 0;
};

} // namespace tdr::trace

#endif // TDR_TRACE_EVENTLOG_H
