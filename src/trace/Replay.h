//===- Replay.h - Edit-map-aware event stream replay -------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays a recorded EventLog into any ExecMonitor, producing the event
/// stream the *edited* program would emit. Finish insertion is strictly
/// restrictive — it adds join points without changing the depth-first
/// execution — so the replayed stream differs from the recorded one only
/// in (a) synthesized onFinishEnter/Exit (and body-block onScopeEnter/
/// Exit) events bracketing each wrapped range and (b) owner pointers of
/// statements whose enclosing statement-list position changed.
///
/// A ReplayPlan is derived from the *current* AST plus the FinishEditMap's
/// new-statement sets before each replay (a cheap pre-order walk), so
/// nested, adjacent, and iterated edits compose without bookkeeping:
///
///  * segment wraps — new finishes that are direct block children open at
///    the first wrapped statement's segment and close after the last's;
///  * owner remaps — a single statement wrapped directly (no new block)
///    keeps emitting its own events, but their owner becomes the finish;
///  * statement wraps — a new finish occupying an if/while/for body slot
///    brackets the wrapped async/finish statement's own enter/exit;
///  * frame wraps — a new finish occupying an async/finish *body* slot
///    opens right after the owner's enter event and closes right before
///    its exit, remapping owners within that frame.
///
/// The replay driver keeps an explicit frame stack mirroring the
/// interpreter's dynamic nesting, so early flow-outs (a return from inside
/// a wrapped range) close the synthesized constructs exactly where the
/// fresh interpretation of the edited program would.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_TRACE_REPLAY_H
#define TDR_TRACE_REPLAY_H

#include "ast/Transforms.h"
#include "interp/Interpreter.h"
#include "trace/EventLog.h"

#include <deque>
#include <unordered_map>
#include <vector>

namespace tdr {
class Program;
} // namespace tdr

namespace tdr::trace {

/// Everything the replayer needs to know about the AST edits applied since
/// a log was recorded, keyed by statements that appear in the log.
struct ReplayPlan {
  /// One synthesized finish to open when its anchor segment begins.
  struct SegOpen {
    const FinishStmt *F = nullptr;
    const Stmt *EnterOwner = nullptr;  ///< owner for the FinishEnter event
    const BlockStmt *NewBody = nullptr; ///< synthesized body block, if any
    const Stmt *Last = nullptr;         ///< last wrapped original statement
  };

  /// Keyed by the first original statement under each wrap: finishes to
  /// open (outermost first) when that statement's segment starts.
  std::unordered_map<const Stmt *, std::vector<SegOpen>> SegOpens;
  /// Original statement -> the new finish that became its owner (single-
  /// statement wraps; safe globally, the key only ever appears as an owner
  /// within its own segment).
  std::unordered_map<const Stmt *, const Stmt *> OwnerRemap;
  /// Async/finish statement -> new finishes wrapping the statement itself
  /// (outermost first; deep wraps in structured body slots).
  std::unordered_map<const Stmt *, std::vector<const FinishStmt *>> StmtWraps;
  /// Async/finish statement -> new finishes wrapping its *body* (outermost
  /// first; body-slot wraps).
  std::unordered_map<const Stmt *, std::vector<const FinishStmt *>> FrameWraps;

  bool empty() const {
    return SegOpens.empty() && OwnerRemap.empty() && StmtWraps.empty() &&
           FrameWraps.empty();
  }
};

/// Builds the replay plan for \p P given the finish insertions in \p Edits
/// (everything applied since the log was recorded). Walks the current AST
/// once; O(statements).
ReplayPlan buildReplayPlan(const Program &P, const FinishEditMap &Edits);

/// Feeds \p Log to \p M, applying \p Plan. With an empty plan this is a
/// verbatim re-emission of the recorded stream.
void replayEvents(const EventLog &Log, const ReplayPlan &Plan, ExecMonitor &M);

/// A recorded interpretation of one test input: the event stream plus the
/// execution outcome (output / error / total work), which is replay-
/// invariant by serial elision and stands in for ExecResult on replayed
/// detections.
struct InputTrace {
  EventLog Log;
  ExecResult Exec;
};

/// One input's trace plus the edits applied since it was recorded.
struct TraceEntry {
  InputTrace Trace;
  FinishEditMap Edits;
  bool Recorded = false;

  void reset() {
    Trace.Log.clear();
    Trace.Exec = ExecResult();
    Edits.clear();
    Recorded = false;
  }
};

/// Per-input trace storage for multi-input repair. As a FinishEditSink it
/// broadcasts every AST edit to *all* recorded entries — each input's log
/// has its own baseline, so an edit driven by one input must enter every
/// other live edit map to keep those logs replayable.
class TraceStore final : public FinishEditSink {
public:
  TraceEntry &entry(size_t I) {
    while (Entries.size() <= I)
      Entries.emplace_back();
    return Entries[I];
  }
  /// Entry I, or null when it was never created.
  const TraceEntry *find(size_t I) const {
    return I < Entries.size() ? &Entries[I] : nullptr;
  }
  size_t numEntries() const { return Entries.size(); }

  /// Drops every recorded trace. Required after a non-finish repair edit
  /// (force insertion, isolated wrapping): those edits change the event
  /// stream itself, so no recorded log can be replayed against the edited
  /// program. The next detection per input re-interprets and re-records.
  void invalidateAll() {
    for (TraceEntry &E : Entries)
      E.reset();
  }

  void noteBlockWrap(FinishStmt *F, BlockStmt *Parent, Stmt *First,
                     Stmt *Last, BlockStmt *NewBody) override {
    for (TraceEntry &E : Entries)
      if (E.Recorded)
        E.Edits.noteBlockWrap(F, Parent, First, Last, NewBody);
  }
  void noteSlotWrap(FinishStmt *F, Stmt *SlotOwner, Stmt *Wrapped) override {
    for (TraceEntry &E : Entries)
      if (E.Recorded)
        E.Edits.noteSlotWrap(F, SlotOwner, Wrapped);
  }

private:
  std::deque<TraceEntry> Entries; ///< deque: entries never move
};

} // namespace tdr::trace

#endif // TDR_TRACE_REPLAY_H
