//===- Replay.cpp ---------------------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "trace/Replay.h"

#include "ast/AstContext.h"

#include <cassert>

using namespace tdr;
using namespace tdr::trace;

//===----------------------------------------------------------------------===//
// Plan construction
//===----------------------------------------------------------------------===//

namespace {

/// Pre-order walk of the current AST classifying every new finish by the
/// position it occupies (see Replay.h file comment). Anchors — the first
/// and last *original* statements inside a new construct — key the plan
/// entries, because only original statements appear in the log.
class PlanBuilder {
public:
  PlanBuilder(const FinishEditMap &Edits, ReplayPlan &Plan)
      : Edits(Edits), Plan(Plan) {}

  void run(const Program &P) {
    for (const FuncDecl *F : P.funcs())
      planBlockChildren(F->body());
    // Register segment wraps in discovery (pre-order) order so a shared
    // first anchor opens outer wraps before inner ones.
    for (const SegRec &R : Segs) {
      if (!R.First)
        continue; // wrap around an empty new block: nothing ever executes
      Plan.SegOpens[R.First].push_back({R.F, R.EnterOwner, R.NewBody, R.Last});
    }
  }

private:
  struct Anchors {
    const Stmt *First = nullptr;
    const Stmt *Last = nullptr;
  };
  struct SegRec {
    const FinishStmt *F;
    const Stmt *EnterOwner;
    const BlockStmt *NewBody;
    const Stmt *First;
    const Stmt *Last;
  };

  bool isNewFinish(const Stmt *S) const {
    return S && Edits.isNewFinish(S) && isa<FinishStmt>(S);
  }

  void planBlockChildren(const BlockStmt *B) {
    for (const Stmt *C : B->stmts())
      planChild(C);
  }

  /// A direct child of a (original or synthesized) block.
  Anchors planChild(const Stmt *C) {
    if (isNewFinish(C))
      // A new finish standing in a statement list owns itself.
      return planSegNew(cast<FinishStmt>(C), C);
    walkOriginal(C);
    return {C, C};
  }

  /// New finish in block-child position: a segment wrap.
  Anchors planSegNew(const FinishStmt *F, const Stmt *EnterOwner) {
    size_t Idx = Segs.size();
    Segs.push_back({F, EnterOwner, nullptr, nullptr, nullptr});
    Anchors A;
    const Stmt *Body = F->body();
    if (isNewFinish(Body)) {
      A = planSegNew(cast<FinishStmt>(Body), F);
    } else if (auto *NB = dyn_cast<BlockStmt>(Body);
               NB && Edits.isNewBlock(NB)) {
      Segs[Idx].NewBody = NB;
      for (const Stmt *C : NB->stmts()) {
        Anchors CA = planChild(C);
        if (!A.First)
          A.First = CA.First;
        A.Last = CA.Last;
      }
    } else {
      // Single original statement wrapped directly: its recorded events
      // now belong to the finish.
      Plan.OwnerRemap[Body] = F;
      walkOriginal(Body);
      A = {Body, Body};
    }
    Segs[Idx].First = A.First;
    Segs[Idx].Last = A.Last;
    return A;
  }

  /// Peels a chain of new finishes off a slot occupant. Returns the
  /// original occupant; the chain (outermost first) lands in \p Chain.
  const Stmt *peelChain(const Stmt *S,
                        std::vector<const FinishStmt *> &Chain) const {
    while (isNewFinish(S)) {
      const auto *F = cast<FinishStmt>(S);
      Chain.push_back(F);
      S = F->body();
    }
    return S;
  }

  /// If/while/for body slot: new finishes here wrap the slot's original
  /// async/finish occupant (deep wraps), anchored on that statement's own
  /// enter/exit events.
  void planStructuredSlot(const Stmt *SlotStmt) {
    if (!SlotStmt)
      return;
    if (!isNewFinish(SlotStmt)) {
      walkOriginal(SlotStmt);
      return;
    }
    std::vector<const FinishStmt *> Chain;
    const Stmt *W = peelChain(SlotStmt, Chain);
    assert((isa<AsyncStmt>(W) || isa<FinishStmt>(W)) &&
           "structured-slot wraps only apply to async/finish statements");
    auto &Dst = Plan.StmtWraps[W];
    Dst.insert(Dst.end(), Chain.begin(), Chain.end());
    walkOriginal(W);
  }

  /// Async/finish body slot: new finishes here wrap the whole body,
  /// anchored on the owner's frame.
  void planBodySlot(const Stmt *OwnerStmt, const Stmt *Body) {
    if (!isNewFinish(Body)) {
      walkOriginal(Body);
      return;
    }
    std::vector<const FinishStmt *> Chain;
    const Stmt *Inner = peelChain(Body, Chain);
    auto &Dst = Plan.FrameWraps[OwnerStmt];
    Dst.insert(Dst.end(), Chain.begin(), Chain.end());
    walkOriginal(Inner);
  }

  void walkOriginal(const Stmt *S) {
    switch (S->kind()) {
    case Stmt::Kind::Block:
      planBlockChildren(cast<BlockStmt>(S));
      break;
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      planStructuredSlot(I->thenStmt());
      planStructuredSlot(I->elseStmt());
      break;
    }
    case Stmt::Kind::While:
      planStructuredSlot(cast<WhileStmt>(S)->body());
      break;
    case Stmt::Kind::For:
      planStructuredSlot(cast<ForStmt>(S)->body());
      break;
    case Stmt::Kind::Async:
      planBodySlot(S, cast<AsyncStmt>(S)->body());
      break;
    case Stmt::Kind::Finish:
      planBodySlot(S, cast<FinishStmt>(S)->body());
      break;
    case Stmt::Kind::Isolated:
      // No finish can be inserted inside an isolated body (races there are
      // suppressed and sema bans the construct), so just walk through.
      walkOriginal(cast<IsolatedStmt>(S)->body());
      break;
    case Stmt::Kind::VarDecl:
    case Stmt::Kind::Assign:
    case Stmt::Kind::Expr:
    case Stmt::Kind::Return:
    case Stmt::Kind::Future:
    case Stmt::Kind::Forasync:
      break;
    }
  }

  const FinishEditMap &Edits;
  ReplayPlan &Plan;
  std::vector<SegRec> Segs;
};

} // namespace

ReplayPlan trace::buildReplayPlan(const Program &P, const FinishEditMap &Edits) {
  ReplayPlan Plan;
  if (!Edits.empty())
    PlanBuilder(Edits, Plan).run(P);
  return Plan;
}

//===----------------------------------------------------------------------===//
// Replay driver
//===----------------------------------------------------------------------===//

namespace {

/// Gathers runs of same-kind, same-array, ascending consecutive-index
/// access events — the dominant MRW pattern (array sweeps) — and emits
/// each as one batched onReadRun/onWriteRun call instead of N singles, so
/// replayed detection reaches the detectors' page-sweep fast path. A run
/// is flushed by any non-access event, so the relative order of accesses
/// and structure/step/work events is preserved exactly; monitors that do
/// not override the run hooks unroll them back to the identical
/// per-element stream (see ExecMonitor::onReadRun).
class RunCoalescer {
public:
  explicit RunCoalescer(ExecMonitor &M) : M(M) {}

  void read(MemLoc L) { access(false, L); }
  void write(MemLoc L) { access(true, L); }

  void flush() {
    if (!Count)
      return;
    MemLoc L = MemLoc::elem(Id, Start);
    uint64_t N = Count;
    Count = 0;
    if (N == 1)
      IsWrite ? M.onWrite(L) : M.onRead(L);
    else
      IsWrite ? M.onWriteRun(L, N) : M.onReadRun(L, N);
  }

private:
  void access(bool W, MemLoc L) {
    if (L.K != MemLoc::Kind::Elem) {
      flush();
      W ? M.onWrite(L) : M.onRead(L);
      return;
    }
    if (Count && W == IsWrite && L.Id == Id &&
        L.Index == Start + static_cast<int64_t>(Count)) {
      ++Count;
      return;
    }
    flush();
    IsWrite = W;
    Id = L.Id;
    Start = L.Index;
    Count = 1;
  }

  ExecMonitor &M;
  bool IsWrite = false;
  uint32_t Id = 0;
  int64_t Start = 0;
  uint64_t Count = 0;
};

/// Streams a log through the plan. Mirrors the interpreter's dynamic
/// nesting with an explicit frame stack; each frame tracks the segment
/// (direct-child statement) currently executing at its top level plus the
/// synthesized constructs to close when the frame ends.
class Replayer {
public:
  Replayer(const ReplayPlan &Plan, ExecMonitor &M) : Plan(Plan), M(M) {
    // Root frame: global initializers + the main call scope.
    Frames.push_back(Frame{nullptr, 0, true, nullptr, nullptr, nullptr,
                           nullptr});
  }

  void feed(const Event &E) {
    // Any non-access event ends a pending access run (order preservation).
    if (E.K != EvKind::Read && E.K != EvKind::Write)
      Runs.flush();
    switch (E.K) {
    case EvKind::StepPoint: {
      const auto *O = static_cast<const Stmt *>(E.P0);
      transition(O);
      M.onStepPoint(remap(O));
      break;
    }
    case EvKind::Work:
      M.onWork(E.U);
      break;
    case EvKind::Read:
      Runs.read(E.loc());
      break;
    case EvKind::Write:
      Runs.write(E.loc());
      break;
    case EvKind::AsyncEnter: {
      const auto *S = static_cast<const AsyncStmt *>(E.P0);
      const auto *O = static_cast<const Stmt *>(E.P1);
      transition(O);
      Frame NF = enterTaskFrame(S, remap(O),
                                [&](const Stmt *Owner) {
                                  M.onAsyncEnter(S, Owner);
                                });
      Frames.push_back(NF);
      break;
    }
    case EvKind::AsyncExit: {
      Frame F = Frames.back();
      Frames.pop_back();
      exitTaskFrame(F, [&] {
        M.onAsyncExit(static_cast<const AsyncStmt *>(E.P0));
      });
      break;
    }
    case EvKind::FinishEnter: {
      const auto *S = static_cast<const FinishStmt *>(E.P0);
      const auto *O = static_cast<const Stmt *>(E.P1);
      transition(O);
      Frame NF = enterTaskFrame(S, remap(O),
                                [&](const Stmt *Owner) {
                                  M.onFinishEnter(S, Owner);
                                });
      Frames.push_back(NF);
      break;
    }
    case EvKind::FinishExit: {
      Frame F = Frames.back();
      Frames.pop_back();
      exitTaskFrame(F, [&] {
        M.onFinishExit(static_cast<const FinishStmt *>(E.P0));
      });
      break;
    }
    case EvKind::ScopeEnter: {
      const auto *O = static_cast<const Stmt *>(E.P0);
      transition(O);
      M.onScopeEnter(E.scopeKind(), remap(O), static_cast<const BlockStmt *>(E.P1),
                     reinterpret_cast<const FuncDecl *>(E.U));
      Frames.push_back(Frame{nullptr, OpenWraps.size(), true, nullptr,
                             nullptr, nullptr, nullptr});
      break;
    }
    case EvKind::ScopeExit: {
      Frame F = Frames.back();
      Frames.pop_back();
      closeWrapsTo(F.WrapBase);
      M.onScopeExit();
      break;
    }
    case EvKind::FutureEnter: {
      const auto *S = static_cast<const FutureStmt *>(E.P0);
      const auto *O = static_cast<const Stmt *>(E.P1);
      const uint32_t Fid = E.Id;
      transition(O);
      Frame NF = enterTaskFrame(S, remap(O), [&](const Stmt *Owner) {
        M.onFutureEnter(S, Owner, Fid);
      });
      Frames.push_back(NF);
      break;
    }
    case EvKind::FutureExit: {
      Frame F = Frames.back();
      Frames.pop_back();
      exitTaskFrame(F, [&] {
        M.onFutureExit(static_cast<const FutureStmt *>(E.P0));
      });
      break;
    }
    case EvKind::Force:
      // Within a step; no frame or segment change.
      M.onForce(E.Id);
      break;
    case EvKind::IsolatedEnter: {
      const auto *S = static_cast<const IsolatedStmt *>(E.P0);
      const auto *O = static_cast<const Stmt *>(E.P1);
      transition(O);
      M.onIsolatedEnter(S, remap(O));
      break;
    }
    case EvKind::IsolatedExit:
      M.onIsolatedExit(static_cast<const IsolatedStmt *>(E.P0));
      break;
    }
  }

  /// Emits any access run still pending at end of log.
  void finish() { Runs.flush(); }

private:
  struct OpenWrap {
    const FinishStmt *F;
    const BlockStmt *NewBody;
    const Stmt *Last;
  };
  struct Frame {
    /// Owning statement of the current top-level segment.
    const Stmt *Seg;
    /// OpenWraps watermark at frame entry.
    size_t WrapBase;
    /// Scope/root frames host block-child segments; task frames do not.
    bool SegFrame;
    /// Frame-scoped owner remap (body-slot wraps).
    const Stmt *RemapFrom;
    const Stmt *RemapTo;
    /// Synthesized finishes to close before / after the frame's exit event.
    const std::vector<const FinishStmt *> *FrameChain;
    const std::vector<const FinishStmt *> *StmtChain;
  };

  const Stmt *remap(const Stmt *O) const {
    if (!O)
      return O;
    const Frame &F = Frames.back();
    if (O == F.RemapFrom)
      return F.RemapTo;
    // A directly wrapped async/finish only changes owner at its *parent*
    // position (its own enter event); its body still executes under the
    // statement itself (execBody hard-codes it), so inside its task frame
    // the global remap is suppressed.
    if (!F.SegFrame && O == F.Seg)
      return O;
    auto It = Plan.OwnerRemap.find(O);
    return It == Plan.OwnerRemap.end() ? O : It->second;
  }

  /// Emits the closers (body-block ScopeExit + FinishExit) for every open
  /// wrap above \p Base, innermost first.
  void closeWrapsTo(size_t Base) {
    while (OpenWraps.size() > Base) {
      const OpenWrap &W = OpenWraps.back();
      if (W.NewBody)
        M.onScopeExit();
      M.onFinishExit(W.F);
      OpenWraps.pop_back();
    }
  }

  /// Owner-carrying event seen at the current frame's top level: if the
  /// owner statement changed, the previous segment ended — close wraps
  /// anchored on it — and the new one begins — open its wraps.
  void transition(const Stmt *O) {
    Frame &F = Frames.back();
    if (!F.SegFrame || O == F.Seg)
      return;
    while (OpenWraps.size() > F.WrapBase && OpenWraps.back().Last == F.Seg)
      closeWrapsTo(OpenWraps.size() - 1);
    F.Seg = O;
    auto It = Plan.SegOpens.find(O);
    if (It == Plan.SegOpens.end())
      return;
    for (const ReplayPlan::SegOpen &SO : It->second) {
      M.onFinishEnter(SO.F, SO.EnterOwner);
      if (SO.NewBody)
        M.onScopeEnter(ScopeKind::Block, SO.F, SO.NewBody, nullptr);
      OpenWraps.push_back({SO.F, SO.NewBody, SO.Last});
    }
  }

  /// Shared enter logic for async/finish frames: statement wraps open
  /// around the enter event, frame wraps right after it.
  template <typename EmitEnter>
  Frame enterTaskFrame(const Stmt *S, const Stmt *Owner, EmitEnter Emit) {
    const std::vector<const FinishStmt *> *StmtChain = nullptr;
    if (auto It = Plan.StmtWraps.find(S); It != Plan.StmtWraps.end()) {
      StmtChain = &It->second;
      for (const FinishStmt *W : *StmtChain) {
        M.onFinishEnter(W, Owner);
        Owner = W;
      }
    }
    Emit(Owner);
    Frame NF{S, OpenWraps.size(), false, nullptr, nullptr, nullptr,
             StmtChain};
    if (auto It = Plan.FrameWraps.find(S); It != Plan.FrameWraps.end()) {
      const Stmt *FO = S;
      for (const FinishStmt *W : It->second) {
        M.onFinishEnter(W, FO);
        FO = W;
      }
      NF.RemapFrom = S;
      NF.RemapTo = It->second.back();
      NF.FrameChain = &It->second;
    }
    return NF;
  }

  template <typename EmitExit> void exitTaskFrame(const Frame &F, EmitExit Emit) {
    closeWrapsTo(F.WrapBase);
    if (F.FrameChain)
      for (size_t I = F.FrameChain->size(); I--;)
        M.onFinishExit((*F.FrameChain)[I]);
    Emit();
    if (F.StmtChain)
      for (size_t I = F.StmtChain->size(); I--;)
        M.onFinishExit((*F.StmtChain)[I]);
  }

  const ReplayPlan &Plan;
  ExecMonitor &M;
  RunCoalescer Runs{M};
  std::vector<Frame> Frames;
  std::vector<OpenWrap> OpenWraps;
};

} // namespace

void trace::replayEvents(const EventLog &Log, const ReplayPlan &Plan,
                         ExecMonitor &M) {
  if (Plan.empty()) {
    // No edits since the recording: re-emit verbatim, no frame tracking.
    // Access runs still coalesce into batched checks (see RunCoalescer) —
    // this is the steady-state repair-loop path, so it benefits most.
    RunCoalescer Runs(M);
    Log.forEach([&](const Event &E) {
      if (E.K != EvKind::Read && E.K != EvKind::Write)
        Runs.flush();
      switch (E.K) {
      case EvKind::AsyncEnter:
        M.onAsyncEnter(static_cast<const AsyncStmt *>(E.P0),
                       static_cast<const Stmt *>(E.P1));
        break;
      case EvKind::AsyncExit:
        M.onAsyncExit(static_cast<const AsyncStmt *>(E.P0));
        break;
      case EvKind::FinishEnter:
        M.onFinishEnter(static_cast<const FinishStmt *>(E.P0),
                        static_cast<const Stmt *>(E.P1));
        break;
      case EvKind::FinishExit:
        M.onFinishExit(static_cast<const FinishStmt *>(E.P0));
        break;
      case EvKind::ScopeEnter:
        M.onScopeEnter(E.scopeKind(), static_cast<const Stmt *>(E.P0),
                       static_cast<const BlockStmt *>(E.P1),
                       reinterpret_cast<const FuncDecl *>(E.U));
        break;
      case EvKind::ScopeExit:
        M.onScopeExit();
        break;
      case EvKind::StepPoint:
        M.onStepPoint(static_cast<const Stmt *>(E.P0));
        break;
      case EvKind::Work:
        M.onWork(E.U);
        break;
      case EvKind::Read:
        Runs.read(E.loc());
        break;
      case EvKind::Write:
        Runs.write(E.loc());
        break;
      case EvKind::FutureEnter:
        M.onFutureEnter(static_cast<const FutureStmt *>(E.P0),
                        static_cast<const Stmt *>(E.P1), E.Id);
        break;
      case EvKind::FutureExit:
        M.onFutureExit(static_cast<const FutureStmt *>(E.P0));
        break;
      case EvKind::Force:
        M.onForce(E.Id);
        break;
      case EvKind::IsolatedEnter:
        M.onIsolatedEnter(static_cast<const IsolatedStmt *>(E.P0),
                          static_cast<const Stmt *>(E.P1));
        break;
      case EvKind::IsolatedExit:
        M.onIsolatedExit(static_cast<const IsolatedStmt *>(E.P0));
        break;
      }
    });
    Runs.flush();
    return;
  }
  Replayer R(Plan, M);
  Log.forEach([&](const Event &E) { R.feed(E); });
  R.finish();
}
