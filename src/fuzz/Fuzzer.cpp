//===- Fuzzer.cpp - Parallel differential fuzz farm -----------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include "batch/BatchRepair.h"
#include "fuzz/RandomProgram.h"
#include "fuzz/Reduce.h"
#include "fuzz/Trophy.h"
#include "obs/Metrics.h"
#include "support/StringUtils.h"
#include "support/Timer.h"

#include <atomic>
#include <memory>

namespace tdr {
namespace fuzz {

const char *fuzzProfileName(FuzzProfile P) {
  switch (P) {
  case FuzzProfile::Default:
    return "default";
  case FuzzProfile::Constructs:
    return "constructs";
  case FuzzProfile::Sparse:
    return "sparse";
  }
  return "unknown";
}

uint64_t fuzzProgramSeed(uint64_t Base, size_t Index) {
  // One SplitMix64 step per index: decorrelates neighboring programs and
  // is independent of worker scheduling (derived purely from the index).
  Rng R(Base + 0x9e3779b97f4a7c15ull * static_cast<uint64_t>(Index));
  return R.next();
}

FuzzProfile fuzzProgramProfile(size_t Index) {
  switch (Index % 4) {
  case 1:
    return FuzzProfile::Constructs;
  case 2:
    return FuzzProfile::Sparse;
  default:
    return FuzzProfile::Default;
  }
}

std::string generateFuzzProgram(uint64_t Base, size_t Index) {
  RandomProgramGen Gen(fuzzProgramSeed(Base, Index));
  switch (fuzzProgramProfile(Index)) {
  case FuzzProfile::Constructs:
    Gen.enableConstructs();
    break;
  case FuzzProfile::Sparse:
    Gen.enableSparseHeap();
    break;
  case FuzzProfile::Default:
    break;
  }
  return Gen.generate();
}

namespace {

OracleConfig oracleConfigFor(FuzzProfile P, const FuzzOptions &O) {
  OracleConfig C;
  switch (P) {
  case FuzzProfile::Constructs:
    C.AllConstructs = true;
    break;
  case FuzzProfile::Sparse:
    // 2^18-cell heaps make the repair loop (many detect iterations) the
    // dominant cost; the sparse profile targets the shadow maps, so it
    // runs detection-only and leaves repair to the small profiles.
    C.CheckRepair = false;
    break;
  case FuzzProfile::Default:
    break;
  }
  C.CheckRepair = C.CheckRepair && O.CheckRepair;
  return C;
}

size_t countLines(const std::string &Text) {
  size_t Lines = 0;
  bool Pending = false;
  for (char C : Text) {
    Pending = true;
    if (C == '\n') {
      ++Lines;
      Pending = false;
    }
  }
  return Lines + (Pending ? 1 : 0);
}

void escape(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += strFormat("\\u%04x", C);
      else
        Out += C;
    }
  }
  Out += '"';
}

void progressLine(std::string *Progress, const std::string &Line) {
  if (Progress)
    *Progress += Line + "\n";
}

/// Everything one oracle job produced (kept per index; merged in
/// submission order after the pool drains).
struct JobResult {
  bool Skipped = false;
  OracleOutcome Outcome;
  std::unique_ptr<obs::MetricsRegistry> Metrics;
};

} // namespace

FuzzSummary runFuzz(const FuzzOptions &O, std::string *Progress) {
  FuzzSummary S;
  Timer Wall;
  std::atomic<bool> OutOfTime{false};

  progressLine(Progress,
               strFormat("fuzz: %zu program(s), seed %llu, %u job(s)",
                         O.Programs, static_cast<unsigned long long>(O.Seed),
                         O.Jobs ? O.Jobs : 1));

  std::vector<JobResult> Results(O.Programs);
  runJobsOrdered(O.Programs, O.Jobs ? O.Jobs : 1, [&](size_t I) {
    JobResult &R = Results[I];
    if (OutOfTime.load(std::memory_order_relaxed)) {
      R.Skipped = true;
      return;
    }
    if (O.TimeBudgetSec > 0 && Wall.elapsedSec() >= O.TimeBudgetSec) {
      OutOfTime.store(true, std::memory_order_relaxed);
      R.Skipped = true;
      return;
    }
    R.Metrics = std::make_unique<obs::MetricsRegistry>();
    obs::ScopedMetrics Scope(*R.Metrics);
    R.Outcome = runOracle(generateFuzzProgram(O.Seed, I),
                          oracleConfigFor(fuzzProgramProfile(I), O));
  });

  // Merge bookkeeping in submission order: byte-identical across --jobs.
  obs::MetricsRegistry Merged;
  for (size_t I = 0; I != Results.size(); ++I) {
    JobResult &R = Results[I];
    if (R.Skipped) {
      ++S.ProgramsSkipped;
      continue;
    }
    ++S.ProgramsRun;
    S.DetectRuns += R.Outcome.DetectRuns;
    S.ReplayRuns += R.Outcome.ReplayRuns;
    S.RepairRuns += R.Outcome.RepairRuns;
    if (R.Metrics)
      Merged.mergeFrom(*R.Metrics);
    if (R.Outcome.clean())
      continue;

    FuzzFinding F;
    F.ProgramIndex = I;
    F.Seed = fuzzProgramSeed(O.Seed, I);
    F.Profile = fuzzProgramProfile(I);
    F.First = R.Outcome.Findings.front();
    F.FindingCount = R.Outcome.Findings.size();
    F.Source = generateFuzzProgram(O.Seed, I);
    F.SourceLines = countLines(F.Source);
    S.Findings.push_back(std::move(F));
    progressLine(Progress,
                 strFormat("fuzz: FINDING program %zu seed %llx: %s (%s)", I,
                           static_cast<unsigned long long>(
                               S.Findings.back().Seed),
                           findingKindName(S.Findings.back().First.Kind),
                           S.Findings.back().First.Config.c_str()));
  }

  // Minimize sequentially (findings are rare; determinism over speed) and
  // persist each as an "open" trophy for triage and regression.
  if (O.Reduce && !S.Findings.empty()) {
    obs::ScopedMetrics Scope(Merged);
    for (FuzzFinding &F : S.Findings) {
      OracleConfig C = oracleConfigFor(F.Profile, O);
      FindingKind Kind = F.First.Kind;
      ReduceResult RR = reduceProgram(
          F.Source, [&](const std::string &Text) {
            return oracleFires(Text, C, Kind);
          });
      F.Reduced = RR.PredicateHeld;
      F.Minimal = RR.Minimal;
      F.ReduceTests = RR.Tests;
      if (RR.PredicateHeld) {
        F.Source = RR.Text;
        F.SourceLines = countLines(RR.Text);
      }

      Trophy T;
      T.Name = strFormat("s%016llx-%s",
                         static_cast<unsigned long long>(F.Seed),
                         findingKindName(Kind));
      T.Status = "open";
      T.Kind = Kind;
      T.Seed = F.Seed;
      T.Config = C;
      T.Detail = F.First.Detail;
      T.Expected = F.First.Expected;
      T.Actual = F.First.Actual;
      T.Source = F.Source;
      std::string Error;
      if (writeTrophy(O.TrophyDir, T, Error)) {
        F.TrophyName = T.Name;
        progressLine(Progress,
                     strFormat("fuzz: trophy %s (%zu line(s), minimal=%d)",
                               T.Name.c_str(), F.SourceLines,
                               F.Minimal ? 1 : 0));
      } else {
        progressLine(Progress, "fuzz: trophy write failed: " + Error);
      }
    }
  }

  S.WallSec = Wall.elapsedSec();
  S.CountersJson = Merged.dumpJson();
  progressLine(Progress,
               strFormat("fuzz: %zu run, %zu skipped, %zu finding(s), %.2fs",
                         S.ProgramsRun, S.ProgramsSkipped, S.Findings.size(),
                         S.WallSec));
  return S;
}

std::string renderFuzzSummaryJson(const FuzzSummary &S, const FuzzOptions &O) {
  std::string Out;
  Out += "{\n";
  Out += strFormat("  \"schema\": \"%s\",\n", FuzzSummarySchema);
  Out += strFormat("  \"version\": %d,\n", FuzzSummaryVersion);
  Out += strFormat("  \"seed\": %llu,\n",
                   static_cast<unsigned long long>(O.Seed));
  Out += strFormat("  \"jobs\": %u,\n", O.Jobs ? O.Jobs : 1);
  Out += strFormat("  \"time_budget_sec\": %.3f,\n", O.TimeBudgetSec);
  Out += strFormat("  \"reduce\": %s,\n", O.Reduce ? "true" : "false");
  Out += strFormat("  \"check_repair\": %s,\n",
                   O.CheckRepair ? "true" : "false");
  Out += "  \"trophy_dir\": ";
  escape(Out, O.TrophyDir);
  Out += ",\n";
  Out += strFormat("  \"programs_requested\": %zu,\n", O.Programs);
  Out += strFormat("  \"programs_run\": %zu,\n", S.ProgramsRun);
  Out += strFormat("  \"programs_skipped\": %zu,\n", S.ProgramsSkipped);
  Out += strFormat("  \"detect_runs\": %u,\n", S.DetectRuns);
  Out += strFormat("  \"replay_runs\": %u,\n", S.ReplayRuns);
  Out += strFormat("  \"repair_runs\": %u,\n", S.RepairRuns);
  Out += strFormat("  \"wall_sec\": %.3f,\n", S.WallSec);
  Out += strFormat("  \"findings\": [");
  for (size_t I = 0; I != S.Findings.size(); ++I) {
    const FuzzFinding &F = S.Findings[I];
    Out += I ? ",\n    {" : "\n    {";
    Out += strFormat("\"program\": %zu, \"seed\": %llu, ", F.ProgramIndex,
                     static_cast<unsigned long long>(F.Seed));
    Out += strFormat("\"profile\": \"%s\", \"kind\": \"%s\", ",
                     fuzzProfileName(F.Profile),
                     findingKindName(F.First.Kind));
    Out += "\"config\": ";
    escape(Out, F.First.Config);
    Out += ", \"detail\": ";
    escape(Out, F.First.Detail);
    Out += strFormat(", \"finding_count\": %zu, ", F.FindingCount);
    Out += strFormat("\"reduced\": %s, \"minimal\": %s, ",
                     F.Reduced ? "true" : "false",
                     F.Minimal ? "true" : "false");
    Out += strFormat("\"reduce_tests\": %zu, \"source_lines\": %zu, ",
                     F.ReduceTests, F.SourceLines);
    Out += "\"trophy\": ";
    escape(Out, F.TrophyName);
    Out += "}";
  }
  Out += S.Findings.empty() ? "],\n" : "\n  ],\n";
  Out += "  \"counters\": ";
  std::string Counters = S.CountersJson;
  while (!Counters.empty() && Counters.back() == '\n')
    Counters.pop_back();
  Out += Counters.empty() ? "{}" : Counters.c_str();
  Out += "\n}\n";
  return Out;
}

} // namespace fuzz
} // namespace tdr
