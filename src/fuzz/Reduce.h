//===- Reduce.h - Delta-debugging program reducer ----------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shrinks a failure-inducing HJ-mini program to a small reproducer while
/// a caller-supplied predicate keeps holding (classic ddmin, specialized
/// to the AST): chunked statement deletion over every block slot, body
/// hoisting (replace `async { S... }` and friends with `S...`), and
/// top-level declaration removal, iterated to a fixpoint. Candidates are
/// built structurally — parse the current best, edit statement lists,
/// print with AstPrinter — so every candidate is well-formed text and the
/// reduction is deterministic and idempotent: the result is a fixpoint of
/// all passes, and reducing it again returns it unchanged.
///
/// The predicate sees candidate source text and decides everything,
/// including validity (a candidate that no longer parses simply makes the
/// predicate return false for oracle-style predicates). fuzz_reduce_test
/// pins determinism, idempotence, and 1-minimality.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_FUZZ_REDUCE_H
#define TDR_FUZZ_REDUCE_H

#include <cstddef>
#include <functional>
#include <string>

namespace tdr {
namespace fuzz {

/// Returns true when \p Source still reproduces the failure being
/// minimized. Must be deterministic; it is called many times.
using ReducePredicate = std::function<bool(const std::string &Source)>;

struct ReduceOptions {
  /// Outer fixpoint rounds safety cap (each round runs every pass once).
  unsigned MaxRounds = 32;
  /// Predicate-evaluation budget; reduction stops (Minimal=false) when
  /// exhausted.
  size_t MaxTests = 50000;
};

struct ReduceResult {
  /// Reduced program text; equals the input when the predicate never held.
  std::string Text;
  /// The input itself satisfied the predicate (reduction was attempted).
  bool PredicateHeld = false;
  /// Reached the all-passes fixpoint within the budget: no single
  /// statement removal, declaration removal, or hoist keeps the predicate
  /// true (1-minimality at statement granularity).
  bool Minimal = false;
  size_t Tests = 0;        ///< predicate evaluations performed
  size_t RemovedStmts = 0; ///< statements deleted across all passes
  unsigned Rounds = 0;     ///< outer rounds executed
};

/// Minimizes \p Source under \p P. Deterministic: identical inputs yield
/// identical results, with no randomness anywhere in the pass pipeline.
ReduceResult reduceProgram(const std::string &Source, const ReducePredicate &P,
                           const ReduceOptions &O = ReduceOptions());

/// Test hooks for 1-minimality checks: the number of removable statement
/// slots of \p Source (block children, pre-order), and \p Source with the
/// statement in slot \p Slot removed (re-printed). Out-of-range slots and
/// unparsable sources return the input unchanged.
size_t countRemovableSlots(const std::string &Source);
std::string removeSlot(const std::string &Source, size_t Slot);

} // namespace fuzz
} // namespace tdr

#endif // TDR_FUZZ_REDUCE_H
