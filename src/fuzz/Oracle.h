//===- Oracle.h - Differential correctness oracle for fuzzing ----*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The failure predicate of the fuzz farm: runs one HJ-mini program
/// through every configured (backend × fresh/replay × repair) combination
/// and reports any disagreement as a typed Finding. This is the
/// industrialized form of the loops in backend_diff_test / shadow_diff_test
/// / trace_replay_test — one call answers "does the whole detection and
/// repair stack agree with itself on this program?", which makes it
/// reusable as the fuzz driver's oracle, the delta-debugging reducer's
/// predicate, and the trophy runner's regression check.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_FUZZ_ORACLE_H
#define TDR_FUZZ_ORACLE_H

#include "race/Detect.h"

#include <string>
#include <string_view>
#include <vector>

namespace tdr {
namespace fuzz {

/// What went wrong. Every kind names one cross-checked invariant of the
/// pipeline; a healthy tree produces none of them on any input.
enum class FindingKind : uint8_t {
  /// A generated program failed to parse or type-check (generator
  /// invariant: every emitted program is well-formed).
  ParseError,
  /// Interpretation or replay of a well-formed program failed.
  ExecError,
  /// Two detection backends produced different race reports for the same
  /// fresh execution.
  BackendMismatch,
  /// A replayed detection's report differs from the fresh report of the
  /// recorded execution.
  ReplayDivergence,
  /// The repair loop's outcome (success flag, error, or repaired text)
  /// differs across backends.
  RepairDisagree,
  /// A repair reported success but the repaired program is malformed,
  /// fails to execute, or still races.
  RepairNotConverged,
};

/// Stable kebab-case name ("backend-mismatch", ...) used in summaries,
/// trophy files, and CI logs.
const char *findingKindName(FindingKind K);

/// Parses a findingKindName spelling; returns false on anything else,
/// leaving \p Out untouched.
bool parseFindingKind(std::string_view Name, FindingKind &Out);

/// Which combinations the oracle runs.
struct OracleConfig {
  /// Detection backends to cross-check (fresh and replayed). The first
  /// entry is the reference whose fresh report every other run must match.
  std::vector<DetectBackend> Backends = {
      DetectBackend::EspBags, DetectBackend::VectorClock, DetectBackend::Par};
  /// Run the repair loop under the first two backends and require
  /// identical outcomes plus convergence to a race-free program.
  bool CheckRepair = true;
  /// Repair with the full construct vocabulary (finish, future, isolated)
  /// instead of the default allowlist.
  bool AllConstructs = false;
};

/// One invariant violation.
struct Finding {
  FindingKind Kind = FindingKind::BackendMismatch;
  /// The combination that diverged, e.g. "mrw/vc/fresh" or "repair/vc".
  std::string Config;
  /// Human-readable summary.
  std::string Detail;
  /// Reference and divergent values (rendered report keys, outcomes, or
  /// diagnostics — whatever the kind compares).
  std::string Expected;
  std::string Actual;
};

/// Everything one oracle evaluation produced.
struct OracleOutcome {
  std::vector<Finding> Findings;
  unsigned DetectRuns = 0; ///< fresh detections performed
  unsigned ReplayRuns = 0; ///< replayed detections performed
  unsigned RepairRuns = 0; ///< full repair-loop runs performed

  bool clean() const { return Findings.empty(); }
};

/// Runs the full differential oracle over \p Source: both detector modes,
/// every configured backend fresh and replayed against a recorded event
/// log, and (optionally) the repair loop end to end.
OracleOutcome runOracle(const std::string &Source, const OracleConfig &C);

/// Reducer/trophy predicate: does \p Source still exhibit a finding of
/// kind \p K under \p C? (Any matching finding counts; the reducer pins
/// the kind, not the exact config, so a shrink that moves the divergence
/// between modes still reproduces.)
bool oracleFires(const std::string &Source, const OracleConfig &C,
                 FindingKind K);

} // namespace fuzz
} // namespace tdr

#endif // TDR_FUZZ_ORACLE_H
