//===- Fuzzer.h - Parallel differential fuzz farm ----------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `tdr fuzz` engine: generates seeded random HJ-mini programs on the
/// src/batch worker pool, runs each through the differential oracle
/// (every backend fresh and replayed, both shadow modes, the repair loop
/// under two backends — see Oracle.h), delta-minimizes every finding with
/// the ddmin reducer (Reduce.h), and persists minimized reproducers as
/// trophies (Trophy.h). The run is deterministic for a fixed seed:
/// per-program seeds are derived by index (not by worker) and results and
/// per-program metric registries are collected/merged in submission order,
/// so --jobs changes wall-clock time but not programs, findings, or any
/// event counter (only the *_ms timing histograms vary run to run).
///
//===----------------------------------------------------------------------===//

#ifndef TDR_FUZZ_FUZZER_H
#define TDR_FUZZ_FUZZER_H

#include "fuzz/Oracle.h"

#include <cstdint>
#include <string>
#include <vector>

namespace tdr {
namespace fuzz {

/// fuzz-summary JSON schema tag and version; tools/check_fuzz.py is the
/// matching validator and must move in lockstep.
inline constexpr const char *FuzzSummarySchema = "tdr-fuzz-summary";
inline constexpr int FuzzSummaryVersion = 1;

struct FuzzOptions {
  size_t Programs = 2000;   ///< programs to generate and check
  uint64_t Seed = 1;        ///< base seed; program i's seed derives from it
  unsigned Jobs = 1;        ///< worker threads for the oracle phase
  std::string TrophyDir = "fuzz-trophies"; ///< where findings are persisted
  double TimeBudgetSec = 0; ///< stop generating after this long (0 = off)
  bool Reduce = true;       ///< ddmin-minimize findings and write trophies
  bool CheckRepair = true;  ///< include the repair legs in the oracle
};

/// Generator profile of one program (rotated by index so every run
/// exercises plain async-finish, the full construct vocabulary, and the
/// sparse-heap access shape).
enum class FuzzProfile : uint8_t { Default, Constructs, Sparse };

const char *fuzzProfileName(FuzzProfile P);

/// One failing program, with its reduction and trophy bookkeeping.
struct FuzzFinding {
  size_t ProgramIndex = 0;  ///< index within the run
  uint64_t Seed = 0;        ///< derived per-program seed
  FuzzProfile Profile = FuzzProfile::Default;
  Finding First;            ///< first oracle finding (the minimized kind)
  size_t FindingCount = 0;  ///< total findings the oracle reported
  bool Reduced = false;     ///< reducer ran and the predicate held
  bool Minimal = false;     ///< reducer reached its fixpoint in budget
  size_t ReduceTests = 0;   ///< predicate evaluations spent minimizing
  size_t SourceLines = 0;   ///< line count of the (minimized) reproducer
  std::string TrophyName;   ///< persisted trophy stem ("" if not persisted)
  std::string Source;       ///< minimized (or original) reproducer text
};

struct FuzzSummary {
  size_t ProgramsRun = 0;
  size_t ProgramsSkipped = 0; ///< skipped by the time budget
  unsigned DetectRuns = 0;
  unsigned ReplayRuns = 0;
  unsigned RepairRuns = 0;
  std::vector<FuzzFinding> Findings;
  double WallSec = 0;
  /// Merged per-program obs registry dump (submission order; every event
  /// counter is --jobs-independent, timing histograms are not), embedded
  /// in the summary JSON as "counters".
  std::string CountersJson;

  bool clean() const { return Findings.empty(); }
};

/// Runs the farm. Progress lines go to \p Progress when non-null (one line
/// per phase and per finding; CI logs stay readable at --programs 10^6).
FuzzSummary runFuzz(const FuzzOptions &O, std::string *Progress = nullptr);

/// Renders the schema-versioned fuzz-summary JSON document.
std::string renderFuzzSummaryJson(const FuzzSummary &S, const FuzzOptions &O);

/// The per-program seed and profile derivation, exposed so tests and
/// triage can regenerate program \p Index of a run seeded with \p Base.
uint64_t fuzzProgramSeed(uint64_t Base, size_t Index);
FuzzProfile fuzzProgramProfile(size_t Index);

/// Generates program \p Index of a run: seed + profile derivation plus the
/// profile's generator switches, in one place for farm, tests, and triage.
std::string generateFuzzProgram(uint64_t Base, size_t Index);

} // namespace fuzz
} // namespace tdr

#endif // TDR_FUZZ_FUZZER_H
