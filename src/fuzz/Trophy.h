//===- Trophy.h - Persistent minimized-failure corpus ------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A trophy is one minimized fuzz finding, persisted as a pair of files in
/// a corpus directory (tests/trophies/ for the checked-in set):
///
///   <name>.hj           the minimized HJ-mini reproducer
///   <name>.trophy.json  metadata: schema/version, the finding kind, the
///                       oracle config that fired, the generator seed, and
///                       the expected/actual evidence captured at find time
///
/// Trophies carry a status: "open" means the bug still reproduces (the
/// trophy_test runner asserts the recorded finding kind still fires) and
/// "fixed" means it must no longer reproduce (the runner asserts the full
/// oracle is clean — a permanent regression test). `tdr fuzz` persists new
/// findings as "open"; flipping to "fixed" is a reviewed edit made when
/// the underlying bug is repaired.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_FUZZ_TROPHY_H
#define TDR_FUZZ_TROPHY_H

#include "fuzz/Oracle.h"

#include <cstdint>
#include <string>
#include <vector>

namespace tdr {
namespace fuzz {

/// Current .trophy.json schema tag and version; check_fuzz.py and
/// trophy_test reject anything else.
inline constexpr const char *TrophySchema = "tdr-trophy";
inline constexpr int TrophyVersion = 1;

struct Trophy {
  std::string Name;               ///< corpus-unique file stem
  std::string Status = "open";    ///< "open" | "fixed"
  FindingKind Kind = FindingKind::BackendMismatch;
  uint64_t Seed = 0;              ///< generator seed that produced it
  OracleConfig Config;            ///< oracle configuration that fired
  std::string Detail;             ///< finding summary at capture time
  std::string Expected;           ///< reference evidence at capture time
  std::string Actual;             ///< divergent evidence at capture time
  std::string Source;             ///< minimized program text
};

/// Writes <Dir>/<Name>.hj and <Dir>/<Name>.trophy.json, creating \p Dir if
/// needed. Returns false (with \p Error set) on I/O failure.
bool writeTrophy(const std::string &Dir, const Trophy &T, std::string &Error);

/// Loads the trophy described by \p JsonPath (and its sibling .hj).
/// Returns false with \p Error set on I/O, schema, or field errors.
bool readTrophy(const std::string &JsonPath, Trophy &Out, std::string &Error);

/// All .trophy.json paths directly under \p Dir, sorted by path for
/// deterministic iteration. Missing directories yield an empty list.
std::vector<std::string> listTrophies(const std::string &Dir);

} // namespace fuzz
} // namespace tdr

#endif // TDR_FUZZ_TROPHY_H
