//===- Reduce.cpp - Delta-debugging program reducer -----------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Reduce.h"

#include "ast/Ast.h"
#include "ast/AstContext.h"
#include "ast/AstPrinter.h"
#include "frontend/Parser.h"
#include "obs/Metrics.h"
#include "support/Casting.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"

#include <algorithm>
#include <memory>
#include <vector>

namespace tdr {
namespace fuzz {

namespace {

/// A freshly parsed (NOT sema-checked — sema lowers forasync in place and
/// we must print the program as written) copy of the current best text,
/// plus its statement slots in a deterministic pre-order.
struct Parsed {
  std::unique_ptr<SourceManager> SM;
  std::unique_ptr<DiagnosticsEngine> Diags;
  std::unique_ptr<AstContext> Ctx;
  Program *Prog = nullptr;

  /// Every (block, child index) pair, in pre-order over function bodies.
  /// Removal candidates and hoist anchors both index this list, so the
  /// enumeration order is the reducer's unit of determinism.
  std::vector<std::pair<BlockStmt *, size_t>> Slots;

  bool ok() const { return Prog && !Diags->hasErrors(); }
};

void collectSlots(BlockStmt *B, std::vector<std::pair<BlockStmt *, size_t>> &Out);

void collectChildBlocks(Stmt *S,
                        std::vector<std::pair<BlockStmt *, size_t>> &Out) {
  auto Descend = [&Out](Stmt *Body) {
    if (!Body)
      return;
    if (auto *BB = dyn_cast<BlockStmt>(Body))
      collectSlots(BB, Out);
    else
      collectChildBlocks(Body, Out);
  };
  switch (S->kind()) {
  case Stmt::Kind::Block:
    collectSlots(cast<BlockStmt>(S), Out);
    break;
  case Stmt::Kind::If:
    Descend(cast<IfStmt>(S)->thenStmt());
    Descend(cast<IfStmt>(S)->elseStmt());
    break;
  case Stmt::Kind::While:
    Descend(cast<WhileStmt>(S)->body());
    break;
  case Stmt::Kind::For:
    Descend(cast<ForStmt>(S)->body());
    break;
  case Stmt::Kind::Async:
    Descend(cast<AsyncStmt>(S)->body());
    break;
  case Stmt::Kind::Finish:
    Descend(cast<FinishStmt>(S)->body());
    break;
  case Stmt::Kind::Isolated:
    Descend(cast<IsolatedStmt>(S)->body());
    break;
  case Stmt::Kind::Forasync:
    Descend(cast<ForasyncStmt>(S)->body());
    break;
  default:
    break;
  }
}

void collectSlots(BlockStmt *B,
                  std::vector<std::pair<BlockStmt *, size_t>> &Out) {
  for (size_t I = 0; I != B->stmts().size(); ++I) {
    Out.emplace_back(B, I);
    collectChildBlocks(B->stmts()[I], Out);
  }
}

Parsed parseForEdit(const std::string &Source) {
  Parsed P;
  P.SM = std::make_unique<SourceManager>("reduce.hj", Source);
  P.Diags = std::make_unique<DiagnosticsEngine>();
  P.Ctx = std::make_unique<AstContext>();
  Parser Pr(P.SM->buffer(), *P.Ctx, *P.Diags);
  P.Prog = Pr.parseProgram();
  if (!P.ok())
    return P;
  for (FuncDecl *F : P.Prog->funcs())
    if (F->body())
      collectSlots(F->body(), P.Slots);
  return P;
}

/// Rebuilds \p Source with the statements in \p Remove (slot indices into
/// the Parsed enumeration) deleted. Nested slots inside an also-removed
/// subtree are erased from their (detached) blocks harmlessly.
std::string applyRemoval(const Parsed &P, const std::vector<size_t> &Remove) {
  // Group per block, erase descending so indices stay valid.
  std::vector<std::pair<BlockStmt *, size_t>> Victims;
  for (size_t Slot : Remove)
    if (Slot < P.Slots.size())
      Victims.push_back(P.Slots[Slot]);
  std::sort(Victims.begin(), Victims.end(),
            [](const auto &A, const auto &B) {
              if (A.first != B.first)
                return A.first < B.first;
              return A.second > B.second;
            });
  for (const auto &[Block, Idx] : Victims)
    Block->stmts().erase(Block->stmts().begin() +
                         static_cast<ptrdiff_t>(Idx));
  return printProgram(*P.Prog);
}

/// The statements a hoist of \p S splices in its place, or empty when \p S
/// is not hoistable. Bodies that are blocks contribute their children;
/// single-statement bodies contribute themselves.
std::vector<Stmt *> hoistReplacement(Stmt *S) {
  auto Splice = [](Stmt *Body, std::vector<Stmt *> &Out) {
    if (!Body)
      return;
    if (auto *BB = dyn_cast<BlockStmt>(Body))
      Out.insert(Out.end(), BB->stmts().begin(), BB->stmts().end());
    else
      Out.push_back(Body);
  };
  std::vector<Stmt *> R;
  switch (S->kind()) {
  case Stmt::Kind::Block:
    Splice(S, R);
    break;
  case Stmt::Kind::Async:
    Splice(cast<AsyncStmt>(S)->body(), R);
    break;
  case Stmt::Kind::Finish:
    Splice(cast<FinishStmt>(S)->body(), R);
    break;
  case Stmt::Kind::Isolated:
    Splice(cast<IsolatedStmt>(S)->body(), R);
    break;
  case Stmt::Kind::If:
    Splice(cast<IfStmt>(S)->thenStmt(), R);
    Splice(cast<IfStmt>(S)->elseStmt(), R);
    break;
  case Stmt::Kind::While:
    Splice(cast<WhileStmt>(S)->body(), R);
    break;
  case Stmt::Kind::For:
    Splice(cast<ForStmt>(S)->body(), R);
    break;
  case Stmt::Kind::Forasync:
    Splice(cast<ForasyncStmt>(S)->body(), R);
    break;
  default:
    break;
  }
  return R;
}

std::string applyHoist(const Parsed &P, size_t Slot) {
  auto [Block, Idx] = P.Slots[Slot];
  Stmt *S = Block->stmts()[Idx];
  std::vector<Stmt *> R = hoistReplacement(S);
  if (R.size() == 1 && R.front() == S)
    return std::string(); // bare block of itself; nothing to do
  Block->stmts().erase(Block->stmts().begin() + static_cast<ptrdiff_t>(Idx));
  Block->stmts().insert(Block->stmts().begin() + static_cast<ptrdiff_t>(Idx),
                        R.begin(), R.end());
  return printProgram(*P.Prog);
}

/// Driver state threaded through the passes.
struct Reduction {
  std::string Best;
  const ReducePredicate &P;
  const ReduceOptions &O;
  ReduceResult Res;

  Reduction(std::string Seed, const ReducePredicate &P, const ReduceOptions &O)
      : Best(std::move(Seed)), P(P), O(O) {}

  bool budgetLeft() const { return Res.Tests < O.MaxTests; }

  /// Evaluates the predicate on \p Candidate; on success adopts it as the
  /// new best and returns true.
  bool accept(const std::string &Candidate, size_t StmtsRemoved) {
    if (Candidate.empty() || Candidate == Best || !budgetLeft())
      return false;
    ++Res.Tests;
    obs::counter("fuzz.reduce_tests").inc();
    if (!P(Candidate))
      return false;
    Best = Candidate;
    Res.RemovedStmts += StmtsRemoved;
    return true;
  }

  /// Chunked ddmin over statement slots: try deleting runs of chunk
  /// consecutive slots, halving the chunk until single-statement scans
  /// find nothing — at which point the best text is 1-minimal under
  /// statement deletion. Returns true when anything was removed.
  bool statementPass() {
    bool Changed = false;
    size_t N = countSlots();
    size_t Chunk = std::max<size_t>(1, N / 2);
    while (true) {
      size_t Pos = 0;
      while (Pos < N && budgetLeft()) {
        size_t End = std::min(N, Pos + Chunk);
        std::vector<size_t> Remove;
        for (size_t I = Pos; I != End; ++I)
          Remove.push_back(I);
        Parsed Base = parseForEdit(Best);
        if (!Base.ok())
          return Changed; // should not happen: best always parses
        if (accept(applyRemoval(Base, Remove), End - Pos)) {
          Changed = true;
          N = countSlots();
          // Do not advance: the slots shifted down into Pos.
        } else {
          Pos = End;
        }
      }
      if (Chunk == 1 || !budgetLeft())
        break;
      Chunk = std::max<size_t>(1, Chunk / 2);
    }
    return Changed;
  }

  /// Replace structured statements with their bodies (peels one layer of
  /// async/finish/if/loop nesting per accepted hoist).
  bool hoistPass() {
    bool Changed = false;
    size_t Slot = 0;
    while (budgetLeft()) {
      Parsed Base = parseForEdit(Best);
      if (!Base.ok() || Slot >= Base.Slots.size())
        break;
      auto [Block, Idx] = Base.Slots[Slot];
      if (hoistReplacement(Block->stmts()[Idx]).empty()) {
        ++Slot; // not a structured statement
        continue;
      }
      if (accept(applyHoist(Base, Slot), 0))
        Changed = true; // re-scan the same slot: new statements moved in
      else
        ++Slot;
    }
    return Changed;
  }

  /// Drop unreferenced top-level declarations (globals and non-main
  /// functions); sema-invalid candidates are rejected by the predicate.
  bool declPass() {
    bool Changed = false;
    size_t Which = 0;
    while (budgetLeft()) {
      Parsed Base = parseForEdit(Best);
      if (!Base.ok())
        break;
      size_t NumGlobals = Base.Prog->globals().size();
      size_t NumFuncs = Base.Prog->funcs().size();
      if (Which >= NumGlobals + NumFuncs)
        break;
      if (Which < NumGlobals) {
        Base.Prog->globals().erase(Base.Prog->globals().begin() +
                                   static_cast<ptrdiff_t>(Which));
      } else {
        size_t F = Which - NumGlobals;
        if (Base.Prog->funcs()[F]->name() == "main") {
          ++Which;
          continue;
        }
        Base.Prog->funcs().erase(Base.Prog->funcs().begin() +
                                 static_cast<ptrdiff_t>(F));
      }
      if (accept(printProgram(*Base.Prog), 0))
        Changed = true; // same index now names the next declaration
      else
        ++Which;
    }
    return Changed;
  }

  size_t countSlots() {
    Parsed Base = parseForEdit(Best);
    return Base.ok() ? Base.Slots.size() : 0;
  }
};

} // namespace

ReduceResult reduceProgram(const std::string &Source, const ReducePredicate &P,
                           const ReduceOptions &O) {
  Reduction R(Source, P, O);
  R.Res.Text = Source;
  ++R.Res.Tests;
  if (!P(Source))
    return R.Res; // PredicateHeld stays false
  R.Res.PredicateHeld = true;
  if (!parseForEdit(Source).ok()) {
    // The failure is a parse error of the input itself; structural
    // reduction needs a parsable program, so return it untouched.
    R.Res.Minimal = true;
    return R.Res;
  }

  bool Changed = true;
  while (Changed && R.Res.Rounds < O.MaxRounds && R.budgetLeft()) {
    ++R.Res.Rounds;
    Changed = false;
    Changed |= R.statementPass();
    Changed |= R.declPass();
    Changed |= R.hoistPass();
  }
  R.Res.Minimal = !Changed && R.budgetLeft();
  R.Res.Text = R.Best;
  obs::counter("fuzz.reductions").inc();
  return R.Res;
}

size_t countRemovableSlots(const std::string &Source) {
  Parsed P = parseForEdit(Source);
  return P.ok() ? P.Slots.size() : 0;
}

std::string removeSlot(const std::string &Source, size_t Slot) {
  Parsed P = parseForEdit(Source);
  if (!P.ok() || Slot >= P.Slots.size())
    return Source;
  return applyRemoval(P, {Slot});
}

} // namespace fuzz
} // namespace tdr
