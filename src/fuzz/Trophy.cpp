//===- Trophy.cpp - Persistent minimized-failure corpus -------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Trophy.h"

#include "support/Json.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace fs = std::filesystem;

namespace tdr {
namespace fuzz {

namespace {

void escape(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += strFormat("\\u%04x", C);
      else
        Out += C;
    }
  }
  Out += '"';
}

bool writeFile(const std::string &Path, const std::string &Text,
               std::string &Error) {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out) {
    Error = "cannot open " + Path + " for writing";
    return false;
  }
  Out << Text;
  Out.close();
  if (!Out) {
    Error = "write failed for " + Path;
    return false;
  }
  return true;
}

bool readFile(const std::string &Path, std::string &Text, std::string &Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Error = "cannot open " + Path;
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  Text = SS.str();
  return true;
}

} // namespace

bool writeTrophy(const std::string &Dir, const Trophy &T, std::string &Error) {
  std::error_code EC;
  fs::create_directories(Dir, EC);
  if (EC) {
    Error = "cannot create " + Dir + ": " + EC.message();
    return false;
  }

  std::string Json;
  Json += "{\n";
  Json += strFormat("  \"schema\": \"%s\",\n", TrophySchema);
  Json += strFormat("  \"version\": %d,\n", TrophyVersion);
  Json += "  \"name\": ";
  escape(Json, T.Name);
  Json += ",\n  \"status\": ";
  escape(Json, T.Status);
  Json += strFormat(",\n  \"kind\": \"%s\",\n", findingKindName(T.Kind));
  Json += strFormat("  \"seed\": %llu,\n",
                    static_cast<unsigned long long>(T.Seed));
  Json += "  \"config\": {\n    \"backends\": [";
  for (size_t I = 0; I != T.Config.Backends.size(); ++I)
    Json += strFormat("%s\"%s\"", I ? ", " : "",
                      detectBackendName(T.Config.Backends[I]));
  Json += strFormat("],\n    \"check_repair\": %s,\n",
                    T.Config.CheckRepair ? "true" : "false");
  Json += strFormat("    \"all_constructs\": %s\n  },\n",
                    T.Config.AllConstructs ? "true" : "false");
  Json += "  \"detail\": ";
  escape(Json, T.Detail);
  Json += ",\n  \"expected\": ";
  escape(Json, T.Expected);
  Json += ",\n  \"actual\": ";
  escape(Json, T.Actual);
  Json += strFormat(",\n  \"source_file\": \"%s.hj\"\n}\n", T.Name.c_str());

  std::string Base = (fs::path(Dir) / T.Name).string();
  if (!writeFile(Base + ".hj", T.Source, Error))
    return false;
  return writeFile(Base + ".trophy.json", Json, Error);
}

bool readTrophy(const std::string &JsonPath, Trophy &Out, std::string &Error) {
  std::string Text;
  if (!readFile(JsonPath, Text, Error))
    return false;
  json::ParseResult P = json::parse(Text);
  if (!P.Ok) {
    Error = JsonPath + ": " + P.Error;
    return false;
  }
  const json::Value &Doc = P.Doc;
  if (Doc.getString("schema") != TrophySchema) {
    Error = JsonPath + ": not a " + std::string(TrophySchema) + " document";
    return false;
  }
  if (static_cast<int>(Doc.getNumber("version", -1)) != TrophyVersion) {
    Error = JsonPath + ": unsupported trophy version";
    return false;
  }

  Out = Trophy();
  Out.Name = Doc.getString("name");
  Out.Status = Doc.getString("status", "open");
  if (Out.Name.empty()) {
    Error = JsonPath + ": missing name";
    return false;
  }
  if (Out.Status != "open" && Out.Status != "fixed") {
    Error = JsonPath + ": status must be \"open\" or \"fixed\"";
    return false;
  }
  if (!parseFindingKind(Doc.getString("kind"), Out.Kind)) {
    Error = JsonPath + ": unknown finding kind \"" + Doc.getString("kind") +
            "\"";
    return false;
  }
  Out.Seed = static_cast<uint64_t>(Doc.getNumber("seed"));
  Out.Detail = Doc.getString("detail");
  Out.Expected = Doc.getString("expected");
  Out.Actual = Doc.getString("actual");

  if (const json::Value *Config = Doc.get("config")) {
    Out.Config.CheckRepair = Config->getBool("check_repair", true);
    Out.Config.AllConstructs = Config->getBool("all_constructs", false);
    if (const json::Value *Backends = Config->get("backends");
        Backends && Backends->isArray()) {
      Out.Config.Backends.clear();
      for (const json::Value &B : Backends->elements()) {
        DetectBackend Parsed;
        if (!B.isString() || !parseDetectBackend(B.asString(), Parsed)) {
          Error = JsonPath + ": bad backend entry in config";
          return false;
        }
        Out.Config.Backends.push_back(Parsed);
      }
      if (Out.Config.Backends.empty()) {
        Error = JsonPath + ": config.backends is empty";
        return false;
      }
    }
  }

  std::string SourceFile = Doc.getString("source_file", Out.Name + ".hj");
  fs::path SourcePath = fs::path(JsonPath).parent_path() / SourceFile;
  return readFile(SourcePath.string(), Out.Source, Error);
}

std::vector<std::string> listTrophies(const std::string &Dir) {
  std::vector<std::string> Paths;
  std::error_code EC;
  for (fs::directory_iterator It(Dir, EC), End; !EC && It != End;
       It.increment(EC)) {
    const fs::path &P = It->path();
    if (P.native().size() >= 12 &&
        P.string().rfind(".trophy.json") == P.string().size() - 12)
      Paths.push_back(P.string());
  }
  std::sort(Paths.begin(), Paths.end());
  return Paths;
}

} // namespace fuzz
} // namespace tdr
