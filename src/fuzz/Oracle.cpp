//===- Oracle.cpp - Differential correctness oracle for fuzzing -----------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Oracle.h"

#include "ast/AstContext.h"
#include "frontend/Parser.h"
#include "obs/Metrics.h"
#include "repair/RepairDriver.h"
#include "sema/Sema.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"
#include "support/StringUtils.h"
#include "trace/EventLog.h"

#include <memory>

namespace tdr {
namespace fuzz {

const char *findingKindName(FindingKind K) {
  switch (K) {
  case FindingKind::ParseError:
    return "parse-error";
  case FindingKind::ExecError:
    return "exec-error";
  case FindingKind::BackendMismatch:
    return "backend-mismatch";
  case FindingKind::ReplayDivergence:
    return "replay-divergence";
  case FindingKind::RepairDisagree:
    return "repair-disagree";
  case FindingKind::RepairNotConverged:
    return "repair-not-converged";
  }
  return "unknown";
}

bool parseFindingKind(std::string_view Name, FindingKind &Out) {
  for (FindingKind K :
       {FindingKind::ParseError, FindingKind::ExecError,
        FindingKind::BackendMismatch, FindingKind::ReplayDivergence,
        FindingKind::RepairDisagree, FindingKind::RepairNotConverged}) {
    if (Name == findingKindName(K)) {
      Out = K;
      return true;
    }
  }
  return false;
}

namespace {

/// A parsed-and-checked program plus everything that owns it.
struct Loaded {
  std::unique_ptr<SourceManager> SM;
  std::unique_ptr<DiagnosticsEngine> Diags;
  std::unique_ptr<AstContext> Ctx;
  Program *Prog = nullptr;

  bool ok() const { return Prog && !Diags->hasErrors(); }
};

Loaded loadChecked(const std::string &Source) {
  Loaded L;
  L.SM = std::make_unique<SourceManager>("fuzz.hj", Source);
  L.Diags = std::make_unique<DiagnosticsEngine>();
  L.Ctx = std::make_unique<AstContext>();
  Parser P(L.SM->buffer(), *L.Ctx, *L.Diags);
  L.Prog = P.parseProgram();
  if (!L.Diags->hasErrors())
    runSema(*L.Prog, *L.Ctx, *L.Diags);
  return L;
}

const char *modeName(EspBagsDetector::Mode M) {
  return M == EspBagsDetector::Mode::SRW ? "srw" : "mrw";
}

std::string configName(EspBagsDetector::Mode M, DetectBackend B,
                       const char *Feed) {
  return strFormat("%s/%s/%s", modeName(M), detectBackendName(B), Feed);
}

void addFinding(OracleOutcome &O, FindingKind K, std::string Config,
                std::string Detail, std::string Expected = std::string(),
                std::string Actual = std::string()) {
  Finding F;
  F.Kind = K;
  F.Config = std::move(Config);
  F.Detail = std::move(Detail);
  F.Expected = std::move(Expected);
  F.Actual = std::move(Actual);
  O.Findings.push_back(std::move(F));
  obs::counter("fuzz.findings").inc();
}

DetectOptions detectOptions(EspBagsDetector::Mode M, DetectBackend B) {
  DetectOptions O;
  O.Mode = M;
  O.Backend = B;
  return O;
}

/// Detection legs for one mode: record the reference backend's fresh run,
/// cross-check every other backend fresh, then replay the recorded stream
/// through every backend and require the fresh reference report each time.
void runDetectionLegs(const Program &Prog, EspBagsDetector::Mode Mode,
                      const OracleConfig &C, OracleOutcome &Out) {
  DetectBackend Ref = C.Backends.front();

  trace::InputTrace T;
  trace::RecorderMonitor Recorder(T.Log);
  ExecOptions Exec;
  Exec.Monitor = &Recorder;
  Detection Fresh =
      detectRaces(Prog, detectOptions(Mode, Ref), std::move(Exec));
  Recorder.flush();
  ++Out.DetectRuns;
  if (!Fresh.ok()) {
    addFinding(Out, FindingKind::ExecError, configName(Mode, Ref, "fresh"),
               "interpretation failed: " + Fresh.Exec.Error);
    return;
  }
  T.Exec = Fresh.Exec;
  std::string RefKey = renderRaceReportKey(Fresh.Report);

  for (size_t I = 1; I < C.Backends.size(); ++I) {
    DetectBackend B = C.Backends[I];
    Detection D = detectRaces(Prog, detectOptions(Mode, B));
    ++Out.DetectRuns;
    if (!D.ok()) {
      addFinding(Out, FindingKind::ExecError, configName(Mode, B, "fresh"),
                 "interpretation failed: " + D.Exec.Error);
      continue;
    }
    std::string Key = renderRaceReportKey(D.Report);
    if (Key != RefKey)
      addFinding(Out, FindingKind::BackendMismatch,
                 configName(Mode, B, "fresh"),
                 strFormat("fresh %s report differs from %s",
                           detectBackendName(B), detectBackendName(Ref)),
                 RefKey, Key);
  }

  for (DetectBackend B : C.Backends) {
    Detection D =
        detectRaces(Prog, detectOptions(Mode, B), T, trace::ReplayPlan());
    ++Out.ReplayRuns;
    if (!D.ok()) {
      addFinding(Out, FindingKind::ExecError, configName(Mode, B, "replay"),
                 "replay failed: " + D.Exec.Error);
      continue;
    }
    std::string Key = renderRaceReportKey(D.Report);
    if (Key != RefKey)
      addFinding(Out, FindingKind::ReplayDivergence,
                 configName(Mode, B, "replay"),
                 strFormat("replayed %s report differs from fresh %s",
                           detectBackendName(B), detectBackendName(Ref)),
                 RefKey, Key);
  }
}

std::string repairOutcomeKey(const RepairResult &R, const std::string &Text) {
  return strFormat("success=%d error=[%s] finishes=%u forces=%u isolated=%u\n%s",
                   R.Success ? 1 : 0, R.Error.c_str(),
                   R.Stats.FinishesInserted, R.Stats.ForcesInserted,
                   R.Stats.IsolatedInserted, Text.c_str());
}

/// Repair legs: the repair loop under the first two backends must agree
/// byte for byte, and a successful repair must actually converge — the
/// repaired text re-parses and is race free under the reference backend.
void runRepairLegs(const std::string &Source, const OracleConfig &C,
                   OracleOutcome &Out) {
  unsigned Allow = C.AllConstructs ? constructs::All : constructs::Default;
  DetectBackend A = C.Backends.front();
  DetectBackend B = C.Backends.size() > 1 ? C.Backends[1] : A;

  RepairOptions OA;
  OA.Backend = A;
  OA.Constructs = Allow;
  std::string TextA;
  RepairResult RA = repairSource(Source, TextA, OA);
  ++Out.RepairRuns;

  if (B != A) {
    RepairOptions OB;
    OB.Backend = B;
    OB.Constructs = Allow;
    std::string TextB;
    RepairResult RB = repairSource(Source, TextB, OB);
    ++Out.RepairRuns;
    std::string KeyA = repairOutcomeKey(RA, TextA);
    std::string KeyB = repairOutcomeKey(RB, TextB);
    if (KeyA != KeyB)
      addFinding(Out, FindingKind::RepairDisagree,
                 strFormat("repair/%s", detectBackendName(B)),
                 strFormat("repair outcome under %s differs from %s",
                           detectBackendName(B), detectBackendName(A)),
                 KeyA, KeyB);
  }

  if (!RA.Success)
    return; // a failed repair is acceptable as long as the backends agree
  Loaded L = loadChecked(TextA);
  if (!L.ok()) {
    addFinding(Out, FindingKind::RepairNotConverged, "repair/verify",
               "repaired program fails to parse or type-check",
               "well-formed program", L.Diags->render(*L.SM));
    return;
  }
  Detection D = detectRaces(*L.Prog,
                            detectOptions(EspBagsDetector::Mode::MRW, A));
  ++Out.DetectRuns;
  if (!D.ok()) {
    addFinding(Out, FindingKind::RepairNotConverged, "repair/verify",
               "repaired program fails to execute: " + D.Exec.Error);
    return;
  }
  if (!D.Report.Pairs.empty())
    addFinding(Out, FindingKind::RepairNotConverged, "repair/verify",
               strFormat("repaired program still has %zu racing pair(s)",
                         D.Report.Pairs.size()),
               "race-free report", renderRaceReportKey(D.Report));
}

} // namespace

OracleOutcome runOracle(const std::string &Source, const OracleConfig &C) {
  OracleOutcome Out;
  obs::counter("fuzz.programs").inc();
  if (C.Backends.empty()) {
    addFinding(Out, FindingKind::ParseError, "config",
               "oracle configured with no backends");
    return Out;
  }

  Loaded L = loadChecked(Source);
  if (!L.ok()) {
    addFinding(Out, FindingKind::ParseError, "frontend",
               "program fails to parse or type-check", "well-formed program",
               L.Diags->render(*L.SM));
    return Out;
  }

  for (EspBagsDetector::Mode Mode :
       {EspBagsDetector::Mode::SRW, EspBagsDetector::Mode::MRW})
    runDetectionLegs(*L.Prog, Mode, C, Out);

  if (C.CheckRepair)
    runRepairLegs(Source, C, Out);
  return Out;
}

bool oracleFires(const std::string &Source, const OracleConfig &C,
                 FindingKind K) {
  OracleOutcome Out = runOracle(Source, C);
  for (const Finding &F : Out.Findings)
    if (F.Kind == K)
      return true;
  return false;
}

} // namespace fuzz
} // namespace tdr
