//===- RandomProgram.h - Random async-finish program generator ---*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates random HJ-mini programs: nested async / finish / block / if /
/// loop structure around reads and writes of shared global array cells.
/// The generator aims for racy programs (no synchronization discipline),
/// exercising the detectors and the repair pipeline far beyond the
/// hand-written corpus.
///
/// Promoted from tests/RandomProgram.h so the fuzz farm (`tdr fuzz`), the
/// benches, and the property tests all draw from one corpus. The default
/// profile is BYTE-STABLE: for a given seed, generate() returns exactly
/// the text the pre-promotion generator returned, so every seeded
/// differential test keeps its corpus (fuzz_reduce_test pins golden
/// hashes of the default profile).
///
//===----------------------------------------------------------------------===//

#ifndef TDR_FUZZ_RANDOMPROGRAM_H
#define TDR_FUZZ_RANDOMPROGRAM_H

#include "support/Rng.h"
#include "support/StringUtils.h"

#include <string>

namespace tdr {
namespace fuzz {

class RandomProgramGen {
public:
  explicit RandomProgramGen(uint64_t Seed) : R(Seed) {}

  /// Switches to the sparse-heap profile: arrays grow to 2^18 cells and
  /// cell indices are biased to huge strided positions (hot low cells for
  /// race collisions, hot cells near the top of the span, page-hostile
  /// stride sweeps, and uniform tails), which is the access shape the
  /// two-level shadow map exists for. The final checksum loop samples the
  /// arrays with a large stride so interpretation stays fast. The default
  /// profile's generated text is unchanged, so existing seeds reproduce
  /// identical programs.
  void enableSparseHeap() {
    Cells = 1 << 18;
    SumStride = Cells / 8;
  }

  /// Opt-in: also generate the extended constructs — `future`/`force`
  /// pairs (through a shared-array-touching helper), `isolated` sections
  /// over simple statements, and chunked `forasync` loops. Off by default,
  /// and the default profile draws the same random sequence as before, so
  /// existing seeds reproduce byte-identical programs.
  void enableConstructs() { Constructs = true; }

  /// Returns a full HJ-mini program. Shared state: global int arrays
  /// D0..D2 of size Cells; every statement touches random cells.
  std::string generate() {
    std::string Body = stmts(/*Depth=*/0, /*Budget=*/3 + R.nextBelow(12));
    // The future helper reads and writes the shared arrays, so future
    // subtrees participate in races like any async.
    const char *FutureHelper = !Constructs ? ""
                                           : "\nfunc fwork(i: int): int {\n"
                                             "  D0[i] = D0[i] + i;\n"
                                             "  return D1[i] + i;\n"
                                             "}\n";
    return strFormat(R"(
var D0: int[];
var D1: int[];
var D2: int[];

func touch(i: int, v: int) {
  D2[i %% %d] = v + D1[(v + i) %% %d];
}
%s
func main() {
  D0 = new int[%d];
  D1 = new int[%d];
  D2 = new int[%d];
%s  var sum: int = 0;
  for (var i: int = 0; i < %d; i = i + %d) {
    sum = sum + D0[i] + D1[i] * 3 + D2[i] * 7;
  }
  print(sum);
}
)",
                     Cells, Cells, FutureHelper, Cells, Cells, Cells,
                     Body.c_str(), Cells, SumStride);
  }

private:
  uint64_t cellIndex() {
    if (Cells <= 8)
      return R.nextBelow(Cells);
    switch (R.nextBelow(4)) {
    case 0: // hot low cells: dense collisions keep the programs racy
      return R.nextBelow(8);
    case 1: // hot page at the far end of the span
      return static_cast<uint64_t>(Cells) - 16 + R.nextBelow(8);
    case 2: // page-hostile stride sweep across the whole span
      return (R.nextBelow(64) * 4097) % static_cast<uint64_t>(Cells);
    default: // anywhere
      return R.nextBelow(Cells);
    }
  }

  std::string cell(const char *Arr) {
    return strFormat("%s[%llu]", Arr,
                     static_cast<unsigned long long>(cellIndex()));
  }

  const char *arr() {
    const char *Names[3] = {"D0", "D1", "D2"};
    return Names[R.nextBelow(3)];
  }

  /// One random statement at nesting depth Depth.
  std::string stmt(unsigned Depth) {
    unsigned Kind = static_cast<unsigned>(R.nextBelow(Constructs ? 13 : 10));
    std::string Ind(2 * (Depth + 1), ' ');
    if (Depth >= 4 || InIsolated)
      Kind %= 4; // bottom out: only simple statements
    switch (Kind) {
    case 0:
    case 1: // write
      return Ind + cell(arr()) + " = " + cell(arr()) + " + " +
             std::to_string(R.nextBelow(100)) + ";\n";
    case 2: // call that reads and writes
      return Ind +
             strFormat("touch(%llu, %llu);\n",
                       static_cast<unsigned long long>(R.nextBelow(Cells)),
                       static_cast<unsigned long long>(R.nextBelow(50)));
    case 3: // compound write
      return Ind + cell(arr()) + " += " + std::to_string(R.nextBelow(9) + 1) +
             ";\n";
    case 4: { // loop of writes
      std::string Var = strFormat("k%u", VarCounter++);
      return Ind +
             strFormat("for (var %s: int = 0; %s < %llu; %s = %s + 1) {\n",
                       Var.c_str(), Var.c_str(),
                       static_cast<unsigned long long>(1 + R.nextBelow(4)),
                       Var.c_str(), Var.c_str()) +
             stmts(Depth + 1, 1 + R.nextBelow(2)) + Ind + "}\n";
    }
    case 5: { // if
      return Ind +
             strFormat("if (%s > %llu) {\n", cell(arr()).c_str(),
                       static_cast<unsigned long long>(R.nextBelow(60))) +
             stmts(Depth + 1, 1 + R.nextBelow(2)) + Ind + "}\n";
    }
    case 6:
    case 7: { // async
      return Ind + "async {\n" + stmts(Depth + 1, 1 + R.nextBelow(3)) + Ind +
             "}\n";
    }
    case 8: { // finish
      return Ind + "finish {\n" + stmts(Depth + 1, 1 + R.nextBelow(3)) + Ind +
             "}\n";
    }
    case 9: { // bare block
      return Ind + "{\n" + stmts(Depth + 1, 1 + R.nextBelow(2)) + Ind + "}\n";
    }
    case 10: { // future spawned, raced against, then forced
      std::string Var = strFormat("fu%u", VarCounter++);
      uint64_t Idx = cellIndex();
      return Ind + "{\n" + Ind + "  " +
             strFormat("future %s = fwork(%llu);\n", Var.c_str(),
                       static_cast<unsigned long long>(Idx)) +
             stmts(Depth + 1, 1 + R.nextBelow(2)) + Ind + "  " + cell(arr()) +
             " = " + strFormat("force(%s);\n", Var.c_str()) + Ind + "}\n";
    }
    case 11: { // isolated section over simple statements only (sema
               // forbids spawns, finish, force, and return inside)
      InIsolated = true;
      std::string Body = stmts(Depth + 1, 1 + R.nextBelow(2));
      InIsolated = false;
      return Ind + "isolated {\n" + Body + Ind + "}\n";
    }
    default: { // chunked forasync
      std::string Var = strFormat("fa%u", VarCounter++);
      return Ind +
             strFormat("forasync (var %s: int = 0; %s < %llu; chunk %llu) {\n",
                       Var.c_str(), Var.c_str(),
                       static_cast<unsigned long long>(2 + R.nextBelow(6)),
                       static_cast<unsigned long long>(1 + R.nextBelow(3))) +
             stmts(Depth + 1, 1 + R.nextBelow(2)) + Ind + "}\n";
    }
    }
  }

  std::string stmts(unsigned Depth, unsigned Count) {
    std::string Out;
    for (unsigned I = 0; I != Count; ++I)
      Out += stmt(Depth);
    return Out;
  }

  Rng R;
  unsigned VarCounter = 0;
  int Cells = 8;
  int SumStride = 1;
  bool Constructs = false;
  bool InIsolated = false;
};

} // namespace fuzz
} // namespace tdr

#endif // TDR_FUZZ_RANDOMPROGRAM_H
