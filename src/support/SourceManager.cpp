//===- SourceManager.cpp --------------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/SourceManager.h"

#include <algorithm>
#include <cassert>

using namespace tdr;

SourceManager::SourceManager(std::string Name, std::string Text) {
  setBuffer(std::move(Name), std::move(Text));
}

void SourceManager::setBuffer(std::string NewName, std::string NewText) {
  Name = std::move(NewName);
  Text = std::move(NewText);
  LineOffsets.clear();
  LineOffsets.push_back(0);
  for (uint32_t I = 0, E = static_cast<uint32_t>(Text.size()); I != E; ++I)
    if (Text[I] == '\n')
      LineOffsets.push_back(I + 1);
}

LineCol SourceManager::lineCol(SourceLoc Loc) const {
  if (!Loc.isValid() || Loc.offset() > Text.size())
    return LineCol();
  // Find the last line offset <= Loc.
  auto It = std::upper_bound(LineOffsets.begin(), LineOffsets.end(),
                             Loc.offset());
  assert(It != LineOffsets.begin() && "line table always holds offset 0");
  uint32_t Line = static_cast<uint32_t>(It - LineOffsets.begin());
  uint32_t Col = Loc.offset() - LineOffsets[Line - 1] + 1;
  return LineCol{Line, Col};
}

std::string_view SourceManager::lineText(uint32_t Line) const {
  if (Line == 0 || Line > LineOffsets.size())
    return std::string_view();
  uint32_t Begin = LineOffsets[Line - 1];
  uint32_t End = Line < LineOffsets.size()
                     ? LineOffsets[Line] - 1 // exclude the '\n'
                     : static_cast<uint32_t>(Text.size());
  return std::string_view(Text).substr(Begin, End - Begin);
}
