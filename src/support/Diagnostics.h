//===- Diagnostics.h - Diagnostic collection --------------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostics engine. Library code never prints or aborts on user
/// errors: the lexer, parser and semantic analysis report through this
/// engine and the caller decides how to render the collected diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_SUPPORT_DIAGNOSTICS_H
#define TDR_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace tdr {

class SourceManager;

/// Severity of a diagnostic.
enum class DiagKind { Error, Warning, Note };

/// One reported diagnostic.
struct Diagnostic {
  DiagKind Kind = DiagKind::Error;
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics emitted by the frontend and semantic analysis.
class DiagnosticsEngine {
public:
  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Error, Loc, std::move(Message)});
    ++NumErrors;
  }
  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Warning, Loc, std::move(Message)});
  }
  void note(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned numErrors() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

  /// Renders every collected diagnostic as "<name>:<line>:<col>: <severity>:
  /// <message>\n" followed by a source excerpt with a caret (the same
  /// "    <line> | <text>" style the race-witness renderer uses), suitable
  /// for a terminal.
  std::string render(const SourceManager &SM) const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace tdr

#endif // TDR_SUPPORT_DIAGNOSTICS_H
