//===- Timer.h - Wall-clock timing -------------------------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock timing built on one monotonic clock source, Timer::nowNs().
/// The benchmark harnesses report the timing columns of Tables 2 and 3
/// through elapsedMs(), and the tracer (obs/Trace.h) stamps its spans with
/// nowNs() directly, so bench timings and trace timestamps agree.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_SUPPORT_TIMER_H
#define TDR_SUPPORT_TIMER_H

#include <chrono>
#include <cstdint>

namespace tdr {

/// Measures elapsed wall-clock time from construction (or the last reset).
class Timer {
public:
  Timer() : StartNs(nowNs()) {}

  void reset() { StartNs = nowNs(); }

  /// Monotonic nanoseconds since an arbitrary epoch: the single clock
  /// source for timers and trace spans.
  static uint64_t nowNs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  /// Elapsed milliseconds as a double.
  double elapsedMs() const {
    return static_cast<double>(nowNs() - StartNs) / 1e6;
  }

  /// Elapsed seconds as a double.
  double elapsedSec() const {
    return static_cast<double>(nowNs() - StartNs) / 1e9;
  }

private:
  uint64_t StartNs;
};

} // namespace tdr

#endif // TDR_SUPPORT_TIMER_H
