//===- Timer.h - Wall-clock timing -------------------------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Millisecond wall-clock timer used by the benchmark harnesses to report
/// the timing columns of Tables 2 and 3.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_SUPPORT_TIMER_H
#define TDR_SUPPORT_TIMER_H

#include <chrono>

namespace tdr {

/// Measures elapsed wall-clock time from construction (or the last reset).
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  void reset() { Start = Clock::now(); }

  /// Elapsed milliseconds as a double.
  double elapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - Start)
        .count();
  }

  /// Elapsed seconds as a double.
  double elapsedSec() const { return elapsedMs() / 1000.0; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace tdr

#endif // TDR_SUPPORT_TIMER_H
