//===- PagedArray.h - Lazily paged direct-map array --------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A two-level direct-map array: a dense page table over lazily allocated
/// fixed-size pages. Indexing is two shifts and two loads — no hashing, no
/// probing — which is what the detector shadow memory needs on its
/// per-access hot path. Pages come from a shared MonotonicArena so a whole
/// shadow store is a handful of slab allocations torn down wholesale.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_SUPPORT_PAGEDARRAY_H
#define TDR_SUPPORT_PAGEDARRAY_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace tdr {

/// Bump allocator over fixed-size slabs. Never frees individual blocks;
/// everything is released when the arena dies. Oversized requests get a
/// dedicated slab.
class MonotonicArena {
public:
  static constexpr size_t SlabBytes = 1 << 16;

  MonotonicArena() = default;
  MonotonicArena(const MonotonicArena &) = delete;
  MonotonicArena &operator=(const MonotonicArena &) = delete;

  void *allocate(size_t Bytes, size_t Align) {
    assert(Align && (Align & (Align - 1)) == 0 && "alignment must be pow2");
    uintptr_t P = (reinterpret_cast<uintptr_t>(Cur) + Align - 1) & ~(Align - 1);
    if (P + Bytes > reinterpret_cast<uintptr_t>(End)) {
      size_t SlabSize = Bytes + Align <= SlabBytes ? SlabBytes : Bytes + Align;
      Slabs.push_back(std::make_unique<unsigned char[]>(SlabSize));
      Cur = Slabs.back().get();
      End = Cur + SlabSize;
      Allocated += SlabSize;
      P = (reinterpret_cast<uintptr_t>(Cur) + Align - 1) & ~(Align - 1);
    }
    Cur = reinterpret_cast<unsigned char *>(P + Bytes);
    Used += Bytes;
    return reinterpret_cast<void *>(P);
  }

  size_t numSlabs() const { return Slabs.size(); }

  /// Total slab bytes held by the arena, including the unconsumed tail of
  /// the current slab. This is the allocator's footprint, not demand.
  size_t bytesReserved() const { return Allocated; }

  /// Bytes actually handed out by allocate() (alignment padding and slab
  /// tails excluded). bytesUsed() <= bytesReserved() always; a large gap
  /// means the arena is mostly idle slab, not live shadow state.
  size_t bytesUsed() const { return Used; }

private:
  std::vector<std::unique_ptr<unsigned char[]>> Slabs;
  unsigned char *Cur = nullptr;
  unsigned char *End = nullptr;
  size_t Allocated = 0;
  size_t Used = 0;
};

/// Opt-in trait for types whose default-constructed state is all-zero
/// bytes: declare `static constexpr bool AllZeroInit = true;` in \p T and
/// PagedArray materializes pages with one memset instead of a per-element
/// constructor loop. The detector shadow slots (aggregates of SmallVectors
/// and counters) qualify, which makes first touch of a page cheap enough
/// that sparse use of a large direct map stays competitive with a hash map.
template <typename T, typename = void>
struct IsAllZeroInit : std::false_type {};
template <typename T>
struct IsAllZeroInit<T, typename std::enable_if<T::AllZeroInit>::type>
    : std::true_type {};

/// Direct-map array of \p T indexed by uint64, with pages of 2^PageBits
/// elements allocated on first touch. Elements are value-initialized when
/// their page materializes (memset for IsAllZeroInit types); the destructor
/// runs element destructors (the arena only reclaims the raw memory).
template <typename T, unsigned PageBits = 9> class PagedArray {
public:
  static constexpr uint64_t PageSize = 1ull << PageBits;

  explicit PagedArray(MonotonicArena &Arena) : Arena(Arena) {}

  PagedArray(const PagedArray &) = delete;
  PagedArray &operator=(const PagedArray &) = delete;

  ~PagedArray() {
    if (!std::is_trivially_destructible<T>::value)
      for (T *Page : Pages)
        if (Page)
          for (uint64_t I = 0; I != PageSize; ++I)
            Page[I].~T();
  }

  /// The element at \p I, materializing its page if needed.
  T &getOrCreate(uint64_t I) {
    uint64_t P = I >> PageBits;
    if (P >= Pages.size())
      Pages.resize(P + 1, nullptr);
    T *&Page = Pages[P];
    if (!Page) {
      Page = static_cast<T *>(Arena.allocate(sizeof(T) * PageSize, alignof(T)));
      if (IsAllZeroInit<T>::value)
        std::memset(static_cast<void *>(Page), 0, sizeof(T) * PageSize);
      else
        for (uint64_t J = 0; J != PageSize; ++J)
          new (Page + J) T();
    }
    return Page[I & (PageSize - 1)];
  }

  /// The element at \p I, or null when its page was never touched.
  T *lookup(uint64_t I) const {
    uint64_t P = I >> PageBits;
    if (P >= Pages.size() || !Pages[P])
      return nullptr;
    return &Pages[P][I & (PageSize - 1)];
  }

  size_t numPages() const {
    size_t Count = 0;
    for (T *Page : Pages)
      Count += Page != nullptr;
    return Count;
  }

  /// Bytes held by the page-table vector itself. The table is dense in the
  /// highest index touched, so for sparse giant indices this — not the
  /// pages — is the dominant cost; accounting must include it.
  size_t indexBytes() const { return Pages.capacity() * sizeof(T *); }

private:
  MonotonicArena &Arena;
  std::vector<T *> Pages;
};

} // namespace tdr

#endif // TDR_SUPPORT_PAGEDARRAY_H
