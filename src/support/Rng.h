//===- Rng.h - Deterministic pseudo-random numbers ---------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A SplitMix64 generator. Everything random in this repository (benchmark
/// inputs, the synthetic student cohort, property-test programs) is seeded
/// through this class so that runs are reproducible bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_SUPPORT_RNG_H
#define TDR_SUPPORT_RNG_H

#include <cstdint>

namespace tdr {

/// SplitMix64: tiny, fast, and high quality for non-cryptographic use.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ull) : State(Seed) {}

  uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// Uniform in [0, Bound). Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) { return next() % Bound; }

  /// Uniform in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(nextBelow(
                    static_cast<uint64_t>(Hi - Lo + 1)));
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability \p P.
  bool nextBool(double P = 0.5) { return nextDouble() < P; }

private:
  uint64_t State;
};

} // namespace tdr

#endif // TDR_SUPPORT_RNG_H
