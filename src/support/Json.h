//===- Json.h - Minimal JSON document parser ---------------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small recursive-descent JSON parser producing an immutable DOM. The
/// writers in this codebase emit JSON by hand (obs/Metrics, diag/RunReport);
/// this is the matching reader, used by `tdr explain` to load a structured
/// run report back in. Object member order is preserved so explain output
/// follows the report's own ordering.
///
/// Scope: strict JSON except that numbers are parsed with strtod (so any
/// strtod-accepted spelling of a number passes). No streaming, no writer —
/// report files are small.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_SUPPORT_JSON_H
#define TDR_SUPPORT_JSON_H

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace tdr {
namespace json {

/// One JSON value; a tagged union over the seven JSON kinds (objects keep
/// their members as an ordered vector of key/value pairs).
class Value {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Value() = default;

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return B; }
  double asNumber() const { return Num; }
  const std::string &asString() const { return Str; }
  const std::vector<Value> &elements() const { return Elems; }
  const std::vector<std::pair<std::string, Value>> &members() const {
    return Members;
  }

  /// Object member lookup; null when absent or when this is not an object.
  const Value *get(const std::string &Key) const {
    if (K != Kind::Object)
      return nullptr;
    for (const auto &[Name, V] : Members)
      if (Name == Key)
        return &V;
    return nullptr;
  }

  /// Convenience accessors that tolerate missing/mistyped members by
  /// returning a caller-supplied default.
  double getNumber(const std::string &Key, double Default = 0) const {
    const Value *V = get(Key);
    return V && V->isNumber() ? V->Num : Default;
  }
  std::string getString(const std::string &Key,
                        const std::string &Default = "") const {
    const Value *V = get(Key);
    return V && V->isString() ? V->Str : Default;
  }
  bool getBool(const std::string &Key, bool Default = false) const {
    const Value *V = get(Key);
    return V && V->isBool() ? V->B : Default;
  }

  static Value makeNull() { return Value(); }
  static Value makeBool(bool V) {
    Value R;
    R.K = Kind::Bool;
    R.B = V;
    return R;
  }
  static Value makeNumber(double V) {
    Value R;
    R.K = Kind::Number;
    R.Num = V;
    return R;
  }
  static Value makeString(std::string V) {
    Value R;
    R.K = Kind::String;
    R.Str = std::move(V);
    return R;
  }
  static Value makeArray(std::vector<Value> V) {
    Value R;
    R.K = Kind::Array;
    R.Elems = std::move(V);
    return R;
  }
  static Value makeObject(std::vector<std::pair<std::string, Value>> V) {
    Value R;
    R.K = Kind::Object;
    R.Members = std::move(V);
    return R;
  }

private:
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<Value> Elems;
  std::vector<std::pair<std::string, Value>> Members;
};

/// Parse outcome: document plus error state. On failure Ok is false and
/// Error holds a one-line message with a byte offset.
struct ParseResult {
  bool Ok = false;
  Value Doc;
  std::string Error;
};

/// Parses one JSON document from \p Text (trailing whitespace allowed,
/// trailing garbage is an error). Nesting depth is capped at 128.
ParseResult parse(const std::string &Text);

} // namespace json
} // namespace tdr

#endif // TDR_SUPPORT_JSON_H
