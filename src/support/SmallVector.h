//===- SmallVector.h - Vector with inline small-size storage -----*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A vector that stores its first \p N elements inline, deferring the first
/// heap allocation until the inline capacity overflows. The race detectors
/// keep one reader list and one writer list per shadow-memory slot; with
/// inline capacity 2 the SRW detector (one tracked access per list) and the
/// common MRW case never touch the heap on the per-access hot path.
///
/// Restricted to trivially copyable element types so growth is a memcpy and
/// destruction is free — exactly the Access/pointer records the detectors
/// store. Not a general-purpose container.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_SUPPORT_SMALLVECTOR_H
#define TDR_SUPPORT_SMALLVECTOR_H

#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <type_traits>

namespace tdr {

template <typename T, unsigned N> class SmallVector {
  static_assert(std::is_trivially_copyable<T>::value,
                "SmallVector requires trivially copyable elements");
  static_assert(N > 0, "inline capacity must be non-zero");

public:
  /// The default-constructed state is all-zero bytes (Data null means "in
  /// inline storage"), so aggregates of SmallVectors can opt into
  /// PagedArray's memset page materialization (see IsAllZeroInit).
  SmallVector() = default;
  ~SmallVector() {
    if (Data)
      std::free(Data);
  }

  SmallVector(const SmallVector &) = delete;
  SmallVector &operator=(const SmallVector &) = delete;

  bool empty() const { return Size == 0; }
  uint32_t size() const { return Size; }
  uint32_t capacity() const { return Data ? Cap : N; }
  /// True while no heap allocation has happened.
  bool isInline() const { return Data == nullptr; }

  T *begin() { return ptr(); }
  T *end() { return ptr() + Size; }
  const T *begin() const { return ptr(); }
  const T *end() const { return ptr() + Size; }

  T &operator[](uint32_t I) {
    assert(I < Size);
    return ptr()[I];
  }
  const T &operator[](uint32_t I) const {
    assert(I < Size);
    return ptr()[I];
  }

  T &back() {
    assert(Size > 0);
    return ptr()[Size - 1];
  }
  const T &back() const {
    assert(Size > 0);
    return ptr()[Size - 1];
  }

  void push_back(const T &V) {
    if (Size == capacity())
      grow();
    ptr()[Size++] = V;
  }

  void clear() { Size = 0; }

  /// Shrinks to the first \p NewSize elements (compaction); never grows.
  void truncate(uint32_t NewSize) {
    assert(NewSize <= Size);
    Size = NewSize;
  }

private:
  T *inlineBuf() { return reinterpret_cast<T *>(Inline); }
  const T *inlineBuf() const { return reinterpret_cast<const T *>(Inline); }

  T *ptr() { return Data ? Data : inlineBuf(); }
  const T *ptr() const { return Data ? Data : inlineBuf(); }

  void grow() {
    uint32_t NewCap = capacity() * 2;
    T *NewData = static_cast<T *>(std::malloc(sizeof(T) * NewCap));
    std::memcpy(NewData, ptr(), sizeof(T) * Size);
    if (Data)
      std::free(Data);
    Data = NewData;
    Cap = NewCap;
  }

  T *Data = nullptr;
  uint32_t Size = 0;
  /// Heap capacity; meaningful only when Data is non-null.
  uint32_t Cap = 0;
  alignas(T) unsigned char Inline[N * sizeof(T)];
};

} // namespace tdr

#endif // TDR_SUPPORT_SMALLVECTOR_H
