//===- SourceLoc.h - Source locations and ranges ----------------*- C++ -*-===//
//
// Part of the tdr project: test-driven repair of data races in structured
// parallel programs (reproduction of Surendran et al., PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight source locations used throughout the HJ-mini frontend and the
/// repair pipeline. A SourceLoc is a byte offset into the source buffer; the
/// SourceManager translates offsets into line/column pairs for diagnostics
/// and for reporting where a finish statement should be inserted.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_SUPPORT_SOURCELOC_H
#define TDR_SUPPORT_SOURCELOC_H

#include <cstdint>

namespace tdr {

/// A position in a source buffer, encoded as a byte offset.
///
/// An invalid location is represented by the all-ones offset; it is what a
/// synthesized AST node (for example a finish statement inserted by the
/// repair tool) carries before it has been pretty-printed back to text.
class SourceLoc {
public:
  SourceLoc() = default;
  explicit SourceLoc(uint32_t Offset) : Offset(Offset) {}

  static SourceLoc invalid() { return SourceLoc(); }

  bool isValid() const { return Offset != ~0u; }
  uint32_t offset() const { return Offset; }

  friend bool operator==(SourceLoc A, SourceLoc B) {
    return A.Offset == B.Offset;
  }
  friend bool operator!=(SourceLoc A, SourceLoc B) { return !(A == B); }
  friend bool operator<(SourceLoc A, SourceLoc B) {
    return A.Offset < B.Offset;
  }

private:
  uint32_t Offset = ~0u;
};

/// A half-open range [Begin, End) of source text.
struct SourceRange {
  SourceLoc Begin;
  SourceLoc End;

  SourceRange() = default;
  SourceRange(SourceLoc Begin, SourceLoc End) : Begin(Begin), End(End) {}

  bool isValid() const { return Begin.isValid() && End.isValid(); }
};

/// A human-readable line/column pair (both 1-based).
struct LineCol {
  uint32_t Line = 0;
  uint32_t Col = 0;

  friend bool operator==(const LineCol &A, const LineCol &B) {
    return A.Line == B.Line && A.Col == B.Col;
  }
};

} // namespace tdr

#endif // TDR_SUPPORT_SOURCELOC_H
