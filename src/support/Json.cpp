//===- Json.cpp - Minimal JSON document parser ----------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include "support/StringUtils.h"

#include <cstdlib>

using namespace tdr;
using namespace tdr::json;

namespace {

constexpr unsigned MaxDepth = 128;

class Parser {
public:
  explicit Parser(const std::string &Text) : Text(Text) {}

  ParseResult run() {
    ParseResult R;
    skipWs();
    R.Doc = parseValue(0);
    if (!Failed) {
      skipWs();
      if (Pos != Text.size())
        fail("trailing characters after document");
    }
    R.Ok = !Failed;
    R.Error = Error;
    return R;
  }

private:
  void fail(const std::string &Msg) {
    if (!Failed) {
      Failed = true;
      Error = strFormat("json: %s (at byte %zu)", Msg.c_str(), Pos);
    }
  }

  char peek() const { return Pos < Text.size() ? Text[Pos] : '\0'; }
  bool eat(char C) {
    if (peek() != C)
      return false;
    ++Pos;
    return true;
  }

  void skipWs() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C != ' ' && C != '\t' && C != '\n' && C != '\r')
        break;
      ++Pos;
    }
  }

  bool eatKeyword(const char *Word) {
    size_t N = 0;
    while (Word[N])
      ++N;
    if (Text.compare(Pos, N, Word) != 0)
      return false;
    Pos += N;
    return true;
  }

  Value parseValue(unsigned Depth) {
    if (Depth > MaxDepth) {
      fail("nesting too deep");
      return Value();
    }
    switch (peek()) {
    case '{':
      return parseObject(Depth);
    case '[':
      return parseArray(Depth);
    case '"':
      return Value::makeString(parseString());
    case 't':
      if (eatKeyword("true"))
        return Value::makeBool(true);
      fail("invalid token");
      return Value();
    case 'f':
      if (eatKeyword("false"))
        return Value::makeBool(false);
      fail("invalid token");
      return Value();
    case 'n':
      if (eatKeyword("null"))
        return Value();
      fail("invalid token");
      return Value();
    default:
      return parseNumber();
    }
  }

  Value parseObject(unsigned Depth) {
    ++Pos; // '{'
    std::vector<std::pair<std::string, Value>> Members;
    skipWs();
    if (eat('}'))
      return Value::makeObject(std::move(Members));
    while (!Failed) {
      skipWs();
      if (peek() != '"') {
        fail("expected string key");
        break;
      }
      std::string Key = parseString();
      skipWs();
      if (!eat(':')) {
        fail("expected ':' after key");
        break;
      }
      skipWs();
      Members.emplace_back(std::move(Key), parseValue(Depth + 1));
      skipWs();
      if (eat(','))
        continue;
      if (eat('}'))
        break;
      fail("expected ',' or '}' in object");
    }
    return Value::makeObject(std::move(Members));
  }

  Value parseArray(unsigned Depth) {
    ++Pos; // '['
    std::vector<Value> Elems;
    skipWs();
    if (eat(']'))
      return Value::makeArray(std::move(Elems));
    while (!Failed) {
      skipWs();
      Elems.push_back(parseValue(Depth + 1));
      skipWs();
      if (eat(','))
        continue;
      if (eat(']'))
        break;
      fail("expected ',' or ']' in array");
    }
    return Value::makeArray(std::move(Elems));
  }

  /// Reads 4 hex digits of a \uXXXX escape into \p Code. Fails the parse
  /// and returns false on truncation or a non-hex digit.
  bool parseHex4(unsigned &Code) {
    if (Pos + 4 > Text.size()) {
      fail("truncated \\u escape");
      return false;
    }
    Code = 0;
    for (int I = 0; I != 4; ++I) {
      char H = Text[Pos++];
      Code <<= 4;
      if (H >= '0' && H <= '9')
        Code |= static_cast<unsigned>(H - '0');
      else if (H >= 'a' && H <= 'f')
        Code |= static_cast<unsigned>(H - 'a' + 10);
      else if (H >= 'A' && H <= 'F')
        Code |= static_cast<unsigned>(H - 'A' + 10);
      else {
        fail("invalid \\u escape");
        return false;
      }
    }
    return true;
  }

  std::string parseString() {
    ++Pos; // opening quote
    std::string Out;
    while (true) {
      if (Pos >= Text.size()) {
        fail("unterminated string");
        return Out;
      }
      char C = Text[Pos++];
      if (C == '"')
        return Out;
      if (C != '\\') {
        Out.push_back(C);
        continue;
      }
      if (Pos >= Text.size()) {
        fail("unterminated escape");
        return Out;
      }
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out.push_back(E);
        break;
      case 'b':
        Out.push_back('\b');
        break;
      case 'f':
        Out.push_back('\f');
        break;
      case 'n':
        Out.push_back('\n');
        break;
      case 'r':
        Out.push_back('\r');
        break;
      case 't':
        Out.push_back('\t');
        break;
      case 'u': {
        unsigned Code = 0;
        if (!parseHex4(Code))
          return Out;
        // Combine surrogate pairs into the non-BMP code point; a lone or
        // misordered half is not a code point and cannot round-trip, so
        // it is a parse error rather than mojibake in a report.
        if (Code >= 0xDC00 && Code <= 0xDFFF) {
          fail("lone low surrogate in \\u escape");
          return Out;
        }
        if (Code >= 0xD800 && Code <= 0xDBFF) {
          if (Pos + 2 > Text.size() || Text[Pos] != '\\' ||
              Text[Pos + 1] != 'u') {
            fail("unpaired high surrogate in \\u escape");
            return Out;
          }
          Pos += 2;
          unsigned Low = 0;
          if (!parseHex4(Low))
            return Out;
          if (Low < 0xDC00 || Low > 0xDFFF) {
            fail("high surrogate not followed by a low surrogate");
            return Out;
          }
          Code = 0x10000 + ((Code - 0xD800) << 10) + (Low - 0xDC00);
        }
        // UTF-8 encode the code point (1-4 bytes).
        if (Code < 0x80) {
          Out.push_back(static_cast<char>(Code));
        } else if (Code < 0x800) {
          Out.push_back(static_cast<char>(0xC0 | (Code >> 6)));
          Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
        } else if (Code < 0x10000) {
          Out.push_back(static_cast<char>(0xE0 | (Code >> 12)));
          Out.push_back(static_cast<char>(0x80 | ((Code >> 6) & 0x3F)));
          Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
        } else {
          Out.push_back(static_cast<char>(0xF0 | (Code >> 18)));
          Out.push_back(static_cast<char>(0x80 | ((Code >> 12) & 0x3F)));
          Out.push_back(static_cast<char>(0x80 | ((Code >> 6) & 0x3F)));
          Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
        }
        break;
      }
      default:
        fail("invalid escape character");
        return Out;
      }
    }
  }

  Value parseNumber() {
    const char *Begin = Text.c_str() + Pos;
    char *End = nullptr;
    double V = std::strtod(Begin, &End);
    if (End == Begin) {
      fail("invalid value");
      return Value();
    }
    Pos += static_cast<size_t>(End - Begin);
    return Value::makeNumber(V);
  }

  const std::string &Text;
  size_t Pos = 0;
  bool Failed = false;
  std::string Error;
};

} // namespace

ParseResult json::parse(const std::string &Text) { return Parser(Text).run(); }
