//===- Diagnostics.cpp ----------------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include "support/SourceManager.h"
#include "support/StringUtils.h"

using namespace tdr;

std::string DiagnosticsEngine::render(const SourceManager &SM) const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    const char *Severity = D.Kind == DiagKind::Error     ? "error"
                           : D.Kind == DiagKind::Warning ? "warning"
                                                         : "note";
    LineCol LC = SM.lineCol(D.Loc);
    Out += strFormat("%s:%u:%u: %s: %s\n", SM.name().c_str(), LC.Line, LC.Col,
                     Severity, D.Message.c_str());
  }
  return Out;
}
