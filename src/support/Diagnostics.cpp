//===- Diagnostics.cpp ----------------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include "support/SourceManager.h"
#include "support/StringUtils.h"

using namespace tdr;

std::string DiagnosticsEngine::render(const SourceManager &SM) const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    const char *Severity = D.Kind == DiagKind::Error     ? "error"
                           : D.Kind == DiagKind::Warning ? "warning"
                                                         : "note";
    LineCol LC = SM.lineCol(D.Loc);
    Out += strFormat("%s:%u:%u: %s: %s\n", SM.name().c_str(), LC.Line, LC.Col,
                     Severity, D.Message.c_str());
    // Source excerpt with a caret, matching the race-witness renderer.
    std::string_view Text = SM.lineText(LC.Line);
    if (LC.Line != 0 && !Text.empty()) {
      Out += strFormat("    %4u | %.*s\n", LC.Line,
                       static_cast<int>(Text.size()), Text.data());
      Out += "         | ";
      for (uint32_t I = 1; I < LC.Col; ++I)
        Out += (I - 1 < Text.size() && Text[I - 1] == '\t') ? '\t' : ' ';
      Out += "^\n";
    }
  }
  return Out;
}
