//===- SourceManager.h - Source buffer ownership ----------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owns a single source buffer and maps byte offsets to line/column pairs.
/// HJ-mini programs are small, so one buffer per SourceManager is enough;
/// the repair driver creates a fresh manager each time it re-parses a
/// repaired program.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_SUPPORT_SOURCEMANAGER_H
#define TDR_SUPPORT_SOURCEMANAGER_H

#include "support/SourceLoc.h"

#include <string>
#include <string_view>
#include <vector>

namespace tdr {

/// Owns the text of one HJ-mini compilation unit.
class SourceManager {
public:
  SourceManager() = default;
  SourceManager(std::string Name, std::string Text);

  /// Replaces the buffer contents, recomputing the line table.
  void setBuffer(std::string Name, std::string Text);

  std::string_view buffer() const { return Text; }
  const std::string &name() const { return Name; }

  /// Translates \p Loc to a 1-based line/column pair. Invalid or
  /// out-of-range locations map to {0, 0}.
  LineCol lineCol(SourceLoc Loc) const;

  /// Returns the full text of the (1-based) line \p Line, without the
  /// trailing newline, or an empty view if out of range.
  std::string_view lineText(uint32_t Line) const;

  /// Number of lines in the buffer (a trailing partial line counts).
  uint32_t numLines() const { return static_cast<uint32_t>(LineOffsets.size()); }

private:
  std::string Name;
  std::string Text;
  /// Byte offset of the first character of each line.
  std::vector<uint32_t> LineOffsets;
};

} // namespace tdr

#endif // TDR_SUPPORT_SOURCEMANAGER_H
