//===- StringUtils.cpp ----------------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cstdio>

using namespace tdr;

std::string tdr::strFormatV(const char *Fmt, va_list Args) {
  va_list Copy;
  va_copy(Copy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  if (Needed <= 0)
    return std::string();
  std::string Out(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Out.data(), Out.size() + 1, Fmt, Args);
  return Out;
}

std::string tdr::strFormat(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  std::string Out = strFormatV(Fmt, Args);
  va_end(Args);
  return Out;
}

std::vector<std::string> tdr::splitString(const std::string &Text, char Sep) {
  std::vector<std::string> Parts;
  size_t Begin = 0;
  while (true) {
    size_t End = Text.find(Sep, Begin);
    if (End == std::string::npos) {
      Parts.push_back(Text.substr(Begin));
      return Parts;
    }
    Parts.push_back(Text.substr(Begin, End - Begin));
    Begin = End + 1;
  }
}

std::string tdr::withThousandsSep(uint64_t Value) {
  std::string Digits = std::to_string(Value);
  std::string Out;
  size_t N = Digits.size();
  for (size_t I = 0; I != N; ++I) {
    if (I != 0 && (N - I) % 3 == 0)
      Out += ',';
    Out += Digits[I];
  }
  return Out;
}
