//===- Casting.h - LLVM-style isa/cast/dyn_cast -----------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled RTTI in the LLVM style. Classes participate by providing a
/// kind discriminator and a static classof(const Base *). The library is
/// built without dynamic_cast-style RTTI dependence; all AST and S-DPST
/// hierarchies use these templates.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_SUPPORT_CASTING_H
#define TDR_SUPPORT_CASTING_H

#include <cassert>

namespace tdr {

/// Returns true if \p Val is an instance of To (or a subclass).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast; asserts that the cast is valid.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast; returns null when the dynamic type does not match.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// dyn_cast that tolerates a null argument.
template <typename To, typename From> To *dyn_cast_or_null(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast_or_null(const From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace tdr

#endif // TDR_SUPPORT_CASTING_H
