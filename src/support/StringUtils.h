//===- StringUtils.h - printf-style formatting helpers ----------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-style std::string formatting. libstdc++ shipped with GCC 12 does
/// not provide std::format, so benches and reports use these helpers.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_SUPPORT_STRINGUTILS_H
#define TDR_SUPPORT_STRINGUTILS_H

#include <cstdarg>
#include <string>
#include <vector>

namespace tdr {

/// Formats like vsnprintf into a std::string.
std::string strFormatV(const char *Fmt, va_list Args);

/// Formats like snprintf into a std::string.
#if defined(__GNUC__)
__attribute__((format(printf, 1, 2)))
#endif
std::string strFormat(const char *Fmt, ...);

/// Splits \p Text on \p Sep, keeping empty fields.
std::vector<std::string> splitString(const std::string &Text, char Sep);

/// Returns \p Value formatted with thousands separators, e.g. 424436 ->
/// "424,436" (matches how the paper prints race counts).
std::string withThousandsSep(uint64_t Value);

} // namespace tdr

#endif // TDR_SUPPORT_STRINGUTILS_H
