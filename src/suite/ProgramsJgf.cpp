//===- ProgramsJgf.cpp - Java Grande Forum programs -----------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// HJ-mini versions of the JGF benchmarks in Table 1: Series, SOR, Crypt,
// Sparse, LUFact.
//
//===----------------------------------------------------------------------===//

#include "suite/ProgramSources.h"

using namespace tdr;

/// Fourier coefficient analysis: rows independent coefficient pairs of
/// f(x) = (x+1)^x over [0,2], trapezoid rule. arg(0) = rows.
const char *suite::SeriesSrc = R"(
var CoefA: double[];
var CoefB: double[];
var Rows: int;

func fx(x: double): double {
  return exp(x * log(x + 1.0));
}

func trapezoidA(k: int): double {
  var n: int = 64;
  var dx: double = 2.0 / toDouble(n);
  var s: double = 0.0;
  var omega: double = 3.1415926535897931 * toDouble(k);
  for (var i: int = 0; i <= n; i = i + 1) {
    var x: double = dx * toDouble(i);
    var w: double = 1.0;
    if (i == 0 || i == n) { w = 0.5; }
    s = s + w * fx(x) * cos(omega * x);
  }
  return s * dx;
}

func trapezoidB(k: int): double {
  var n: int = 64;
  var dx: double = 2.0 / toDouble(n);
  var s: double = 0.0;
  var omega: double = 3.1415926535897931 * toDouble(k);
  for (var i: int = 0; i <= n; i = i + 1) {
    var x: double = dx * toDouble(i);
    var w: double = 1.0;
    if (i == 0 || i == n) { w = 0.5; }
    s = s + w * fx(x) * sin(omega * x);
  }
  return s * dx;
}

func computeRow(k: int) {
  CoefA[k] = trapezoidA(k);
  CoefB[k] = trapezoidB(k);
}

func main() {
  Rows = arg(0);
  CoefA = new double[Rows];
  CoefB = new double[Rows];
  finish {
    for (var k: int = 0; k < Rows; k = k + 1) {
      async computeRow(k);
    }
  }
  var sum: double = 0.0;
  for (var k: int = 0; k < Rows; k = k + 1) {
    sum = sum + CoefA[k] + CoefB[k];
  }
  print(toInt(sum * 1000000.0));
}
)";

/// Red-black successive over-relaxation on an n x n grid; each color phase
/// updates disjoint cells reading the opposite color, so the finish
/// between phases carries the dependence. arg(0) = n, arg(1) = iterations.
const char *suite::SorSrc = R"(
var G: double[][];
var N: int;

func updateRows(lo: int, hi: int, color: int, omega: double) {
  for (var i: int = lo; i < hi; i = i + 1) {
  for (var j: int = 1; j < N - 1; j = j + 1) {
    if ((i + j) % 2 == color) {
      G[i][j] = omega / 4.0 * (G[i - 1][j] + G[i + 1][j] + G[i][j - 1]
                               + G[i][j + 1])
                + (1.0 - omega) * G[i][j];
    }
  }
  }
}

func main() {
  N = arg(0);
  var iters: int = arg(1);
  var chunk: int = arg(2);
  G = new double[N][N];
  randSeed(99);
  for (var i: int = 0; i < N; i = i + 1) {
    for (var j: int = 0; j < N; j = j + 1) {
      G[i][j] = toDouble(randInt(1000)) / 1000.0;
    }
  }
  var omega: double = 1.25;
  for (var it: int = 0; it < iters; it = it + 1) {
    for (var color: int = 0; color < 2; color = color + 1) {
      finish {
        for (var lo: int = 1; lo < N - 1; lo = lo + chunk) {
          async updateRows(lo, min(lo + chunk, N - 1), color, omega);
        }
      }
    }
  }
  var sum: double = 0.0;
  for (var i: int = 0; i < N; i = i + 1) {
    for (var j: int = 0; j < N; j = j + 1) { sum = sum + G[i][j]; }
  }
  print(toInt(sum * 1000.0));
}
)";

/// IDEA-style block cipher (JGF Crypt): 8 rounds over 64-bit blocks held
/// as four 16-bit words, with the IDEA multiply in GF(2^16 + 1). Blocks
/// are encrypted in parallel chunks. arg(0) = number of 4-word blocks,
/// arg(1) = chunk size.
const char *suite::CryptSrc = R"(
var Data: int[];
var Key: int[];
var NumBlocks: int;

func ideaMul(a: int, b: int): int {
  var x: int = a;
  var y: int = b;
  if (x == 0) { x = 65536; }
  if (y == 0) { y = 65536; }
  var p: int = x * y % 65537;
  return p % 65536;
}

func encryptBlock(b: int) {
  var x0: int = Data[b * 4];
  var x1: int = Data[b * 4 + 1];
  var x2: int = Data[b * 4 + 2];
  var x3: int = Data[b * 4 + 3];
  for (var r: int = 0; r < 8; r = r + 1) {
    var k: int = r * 6;
    x0 = ideaMul(x0, Key[k]);
    x1 = (x1 + Key[k + 1]) % 65536;
    x2 = (x2 + Key[k + 2]) % 65536;
    x3 = ideaMul(x3, Key[k + 3]);
    var t0: int = x0 ^ x2;
    var t1: int = x1 ^ x3;
    t0 = ideaMul(t0, Key[k + 4]);
    t1 = (t1 + t0) % 65536;
    t1 = ideaMul(t1, Key[k + 5]);
    t0 = (t0 + t1) % 65536;
    x0 = x0 ^ t1;
    x2 = x2 ^ t1;
    x1 = x1 ^ t0;
    x3 = x3 ^ t0;
  }
  Data[b * 4] = ideaMul(x0, Key[48]);
  Data[b * 4 + 1] = (x1 + Key[49]) % 65536;
  Data[b * 4 + 2] = (x2 + Key[50]) % 65536;
  Data[b * 4 + 3] = ideaMul(x3, Key[51]);
}

func encryptChunk(lo: int, hi: int) {
  for (var b: int = lo; b < hi; b = b + 1) { encryptBlock(b); }
}

func main() {
  NumBlocks = arg(0);
  var chunk: int = arg(1);
  Data = new int[NumBlocks * 4];
  Key = new int[52];
  randSeed(2024);
  for (var i: int = 0; i < 52; i = i + 1) { Key[i] = randInt(65536); }
  for (var i: int = 0; i < NumBlocks * 4; i = i + 1) {
    Data[i] = randInt(65536);
  }
  finish {
    for (var lo: int = 0; lo < NumBlocks; lo = lo + chunk) {
      async encryptChunk(lo, min(lo + chunk, NumBlocks));
    }
  }
  var sum: int = 0;
  for (var i: int = 0; i < NumBlocks * 4; i = i + 1) {
    sum = sum + Data[i] * (i % 7 + 1);
  }
  print(sum);
}
)";

/// Sparse matrix-vector multiplication (CRS), repeated; rows are divided
/// among asyncs and y feeds back into x between iterations. arg(0) = n,
/// arg(1) = nonzeros per row, arg(2) = iterations, arg(3) = chunk.
const char *suite::SparseSrc = R"(
var RowPtr: int[];
var ColIdx: int[];
var ValNum: int[];
var X: int[];
var Y: int[];
var N: int;

func multRows(lo: int, hi: int) {
  for (var r: int = lo; r < hi; r = r + 1) {
    var acc: int = 0;
    for (var e: int = RowPtr[r]; e < RowPtr[r + 1]; e = e + 1) {
      acc = acc + ValNum[e] * X[ColIdx[e]];
    }
    Y[r] = acc % 1000003;
  }
}

func main() {
  N = arg(0);
  var perRow: int = arg(1);
  var iters: int = arg(2);
  var chunk: int = arg(3);
  RowPtr = new int[N + 1];
  ColIdx = new int[N * perRow];
  ValNum = new int[N * perRow];
  X = new int[N];
  Y = new int[N];
  randSeed(5150);
  var e: int = 0;
  for (var r: int = 0; r < N; r = r + 1) {
    RowPtr[r] = e;
    for (var k: int = 0; k < perRow; k = k + 1) {
      ColIdx[e] = randInt(N);
      ValNum[e] = randInt(100) + 1;
      e = e + 1;
    }
  }
  RowPtr[N] = e;
  for (var i: int = 0; i < N; i = i + 1) { X[i] = randInt(1000); }
  for (var it: int = 0; it < iters; it = it + 1) {
    finish {
      for (var lo: int = 0; lo < N; lo = lo + chunk) {
        async multRows(lo, min(lo + chunk, N));
      }
    }
    for (var i: int = 0; i < N; i = i + 1) { X[i] = Y[i]; }
  }
  var sum: int = 0;
  for (var i: int = 0; i < N; i = i + 1) { sum = sum + Y[i] * (i % 5 + 1); }
  print(sum);
}
)";

/// LU factorization without pivoting on a diagonally dominant matrix; at
/// each elimination step the trailing rows update in parallel, reading the
/// pivot row produced by the previous step. arg(0) = n, arg(1) = chunk.
const char *suite::LUFactSrc = R"(
var M: double[][];
var N: int;

func eliminateRows(k: int, lo: int, hi: int) {
  for (var i: int = lo; i < hi; i = i + 1) {
    var f: double = M[i][k] / M[k][k];
    M[i][k] = f;
    for (var j: int = k + 1; j < N; j = j + 1) {
      M[i][j] = M[i][j] - f * M[k][j];
    }
  }
}

func main() {
  N = arg(0);
  var chunk: int = arg(1);
  M = new double[N][N];
  randSeed(314159);
  for (var i: int = 0; i < N; i = i + 1) {
    var rowSum: double = 0.0;
    for (var j: int = 0; j < N; j = j + 1) {
      M[i][j] = toDouble(randInt(2000)) / 1000.0 - 1.0;
      rowSum = rowSum + abs(M[i][j]);
    }
    M[i][i] = rowSum + 1.0;
  }
  for (var k: int = 0; k < N - 1; k = k + 1) {
    finish {
      for (var lo: int = k + 1; lo < N; lo = lo + chunk) {
        async eliminateRows(k, lo, min(lo + chunk, N));
      }
    }
  }
  var sum: double = 0.0;
  for (var i: int = 0; i < N; i = i + 1) {
    for (var j: int = 0; j < N; j = j + 1) { sum = sum + M[i][j]; }
  }
  print(toInt(sum * 1000.0));
}
)";
