//===- StudentCohort.cpp --------------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "suite/StudentCohort.h"

#include "ast/Transforms.h"
#include "batch/BatchRepair.h"
#include "obs/Metrics.h"
#include "race/Detect.h"
#include "repair/RepairDriver.h"
#include "sched/Schedule.h"
#include "suite/Benchmarks.h"
#include "suite/Experiment.h"
#include "support/Rng.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace tdr;

const char *tdr::studentClassName(StudentClass C) {
  switch (C) {
  case StudentClass::Racy:
    return "racy";
  case StudentClass::OverSync:
    return "over-synchronized";
  case StudentClass::Match:
    return "matches tool";
  }
  return "?";
}

namespace {

/// Builds a quicksort submission. The assignment skeleton (asyncs, no
/// finishes) is fixed; the flags encode where the student put finishes.
struct PlacementChoice {
  const char *Archetype;
  StudentClass Intended;
  bool FinishAroundBothAsyncs;  ///< finish { async; async; } in quicksort
  bool FinishAroundEachAsync;   ///< finish async; finish async;
  bool FinishAroundFirstAsync;  ///< finish async; async;
  bool FinishAroundCallInMain;  ///< finish quicksort(...); (tool's answer)
  bool FinishAroundInitLoop;    ///< harmless extra finish in main
};

std::string buildSubmission(const PlacementChoice &C) {
  std::string Recursion;
  if (C.FinishAroundBothAsyncs) {
    Recursion = "    finish {\n"
                "      async quicksort(m, p[1]);\n"
                "      async quicksort(p[0], n);\n"
                "    }\n";
  } else if (C.FinishAroundEachAsync) {
    Recursion = "    finish async quicksort(m, p[1]);\n"
                "    finish async quicksort(p[0], n);\n";
  } else if (C.FinishAroundFirstAsync) {
    Recursion = "    finish async quicksort(m, p[1]);\n"
                "    async quicksort(p[0], n);\n";
  } else {
    Recursion = "    async quicksort(m, p[1]);\n"
                "    async quicksort(p[0], n);\n";
  }

  std::string InitLoop =
      "  for (var i: int = 0; i < n; i = i + 1) { A[i] = randInt(100000); }\n";
  if (C.FinishAroundInitLoop)
    InitLoop = "  finish\n  " + InitLoop;

  std::string Call = C.FinishAroundCallInMain
                         ? "  finish quicksort(0, n - 1);\n"
                         : "  quicksort(0, n - 1);\n";

  return std::string(R"(
var A: int[];

func partition(lo: int, hi: int, out: int[]) {
  var pivot: int = A[(lo + hi) / 2];
  var i: int = lo;
  var j: int = hi;
  while (i <= j) {
    while (A[i] < pivot) { i = i + 1; }
    while (A[j] > pivot) { j = j - 1; }
    if (i <= j) {
      var t: int = A[i];
      A[i] = A[j];
      A[j] = t;
      i = i + 1;
      j = j - 1;
    }
  }
  out[0] = i;
  out[1] = j;
}

func quicksort(m: int, n: int) {
  if (m < n) {
    var p: int[] = new int[2];
    partition(m, n, p);
)") + Recursion +
         R"(  }
}

func main() {
  var n: int = arg(0);
  A = new int[n];
  randSeed(42);
)" + InitLoop +
         Call + R"(  var sorted: bool = true;
  var sum: int = 0;
  for (var i: int = 0; i < n; i = i + 1) {
    if (i > 0 && A[i - 1] > A[i]) { sorted = false; }
    sum = sum + A[i] * (i % 17 + 1);
  }
  print(sorted);
  print(sum);
}
)";
}

/// The archetype pool, grouped by intended class.
const PlacementChoice RacyChoices[] = {
    {"no synchronization at all", StudentClass::Racy, false, false, false,
     false, false},
    {"finish around the first async only", StudentClass::Racy, false, false,
     true, false, false},
};

// Over-synchronization means a measurably longer critical path. Note that
// a per-level finish around *both* recursive asyncs is NOT over-synchronized
// for quicksort — the parent does nothing after spawning, so CPL =
// partition + max(children) either way. Serializing placements are.
const PlacementChoice OverSyncChoices[] = {
    {"finish around each async (serializes the recursion)",
     StudentClass::OverSync, false, true, false, false, false},
    {"finish around each async plus finish in main", StudentClass::OverSync,
     false, true, false, true, false},
    {"finish around the first async, finish around the call",
     StudentClass::OverSync, false, false, true, true, false},
};

const PlacementChoice MatchChoices[] = {
    {"single finish around the call in main", StudentClass::Match, false,
     false, false, true, false},
    {"finish around the call plus harmless finish on init",
     StudentClass::Match, false, false, false, true, true},
    {"per-level finish inside quicksort", StudentClass::Match, true, false,
     false, false, false},
    {"per-level finish plus finish in main", StudentClass::Match, true,
     false, false, true, false},
};

} // namespace

CohortResult tdr::runStudentCohort(unsigned NumStudents, uint64_t Seed,
                                   int64_t InputSize, unsigned Jobs) {
  CohortResult Result;
  ExecOptions Exec;
  Exec.Args = {InputSize};

  // The tool's own repair of the unsynchronized skeleton sets the grading
  // baseline (as in the paper, students are evaluated "against the finish
  // statements automatically generated by the tool").
  {
    PlacementChoice None = RacyChoices[0];
    std::string Skeleton = buildSubmission(None);
    LoadedBenchmark B = loadBenchmark(Skeleton.c_str());
    RepairOptions Opts;
    Opts.Exec = Exec;
    RepairResult R = repairProgram(*B.Prog, *B.Ctx, Opts);
    if (!R.Success)
      return Result; // empty cohort signals baseline failure
    Detection D = detectRaces(*B.Prog, EspBagsDetector::Mode::SRW, Exec);
    Result.ToolCpl = D.Tree->subtreeCpl(D.Tree->root());
  }

  // Deal the paper's class proportions (5 : 29 : 25 at 59 students),
  // drawing archetypes within each class, then shuffle.
  unsigned NumRacy = NumStudents * 5 / 59;
  unsigned NumOver = NumStudents * 29 / 59;
  unsigned NumMatch = NumStudents - NumRacy - NumOver;
  Rng R(Seed);
  std::vector<PlacementChoice> Cohort;
  for (unsigned I = 0; I != NumRacy; ++I)
    Cohort.push_back(RacyChoices[R.nextBelow(std::size(RacyChoices))]);
  for (unsigned I = 0; I != NumOver; ++I)
    Cohort.push_back(OverSyncChoices[R.nextBelow(std::size(OverSyncChoices))]);
  for (unsigned I = 0; I != NumMatch; ++I)
    Cohort.push_back(MatchChoices[R.nextBelow(std::size(MatchChoices))]);
  for (size_t I = Cohort.size(); I > 1; --I)
    std::swap(Cohort[I - 1], Cohort[R.nextBelow(I)]);

  // Each submission is graded independently — its own program, detection,
  // and metrics registry — so the grading loop shards across workers. The
  // per-student registries fold back in submission order, keeping the
  // global metrics dump identical to the sequential run.
  obs::MetricsRegistry &Parent = obs::MetricsRegistry::current();
  Result.Students.resize(Cohort.size());
  std::vector<std::unique_ptr<obs::MetricsRegistry>> Registries(
      Cohort.size());

  runJobsOrdered(Cohort.size(), Jobs, [&](size_t I) {
    auto Registry = std::make_unique<obs::MetricsRegistry>();
    obs::ScopedMetrics Scope(*Registry);
    const PlacementChoice &C = Cohort[I];
    StudentResult &S = Result.Students[I];
    S.Archetype = C.Archetype;
    S.Intended = C.Intended;

    std::string Src = buildSubmission(C);
    LoadedBenchmark B = loadBenchmark(Src.c_str());
    Detection D = detectRaces(*B.Prog, EspBagsDetector::Mode::MRW, Exec);
    S.Ok = D.ok();
    S.RacePairs = D.Report.Pairs.size();
    if (!D.Report.Pairs.empty()) {
      S.Graded = StudentClass::Racy;
    } else {
      S.Cpl = D.Tree->subtreeCpl(D.Tree->root());
      // Over-synchronized means measurably longer critical path than the
      // tool's repair (0.5% tolerance absorbs step-attribution noise).
      S.Graded = S.Cpl >
                         Result.ToolCpl + Result.ToolCpl / 200
                     ? StudentClass::OverSync
                     : StudentClass::Match;
    }
    Registries[I] = std::move(Registry);
  });

  for (size_t I = 0; I != Result.Students.size(); ++I) {
    Parent.mergeFrom(*Registries[I]);
    const StudentResult &S = Result.Students[I];
    switch (S.Graded) {
    case StudentClass::Racy:
      ++Result.NumRacy;
      break;
    case StudentClass::OverSync:
      ++Result.NumOverSync;
      break;
    case StudentClass::Match:
      ++Result.NumMatch;
      break;
    }
    if (S.Graded == S.Intended)
      ++Result.GradingAgreements;
  }
  return Result;
}
