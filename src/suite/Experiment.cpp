//===- Experiment.cpp -----------------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "suite/Experiment.h"

#include "ast/AstPrinter.h"
#include "ast/Transforms.h"
#include "frontend/Parser.h"
#include "sema/Sema.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"
#include "support/StringUtils.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstdlib>

using namespace tdr;

LoadedBenchmark tdr::loadBenchmark(const char *Source) {
  LoadedBenchmark L;
  L.Ctx = std::make_unique<AstContext>();
  SourceManager SM("bench.hj", Source);
  DiagnosticsEngine Diags;
  Parser P(SM.buffer(), *L.Ctx, Diags);
  L.Prog = P.parseProgram();
  if (!Diags.hasErrors())
    runSema(*L.Prog, *L.Ctx, Diags);
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "benchmark program failed to compile:\n%s\n",
                 Diags.render(SM).c_str());
    std::abort();
  }
  return L;
}

static ExecOptions execFor(const BenchmarkSpec &Spec, bool Perf) {
  ExecOptions E;
  E.Args = Perf ? Spec.PerfArgs : Spec.RepairArgs;
  return E;
}

RepairExperiment tdr::runRepairExperiment(const BenchmarkSpec &Spec,
                                          EspBagsDetector::Mode Mode,
                                          bool UsePerfInput) {
  RepairExperiment R;
  R.Spec = &Spec;
  ExecOptions Exec = execFor(Spec, UsePerfInput);

  // HJ-Seq: uninstrumented sequential time of the correct program.
  LoadedBenchmark Orig = loadBenchmark(Spec.Source);
  {
    Timer T;
    ExecResult Seq = runProgram(*Orig.Prog, Exec);
    R.HjSeqMs = T.elapsedMs();
    if (!Seq.Ok) {
      R.Error = strFormat("original program failed: %s", Seq.Error.c_str());
      return R;
    }
  }

  // The expert baseline's parallelism.
  {
    Detection D = detectRaces(*Orig.Prog, EspBagsDetector::Mode::MRW, Exec);
    if (!D.ok() || !D.Report.Pairs.empty()) {
      R.Error = strFormat("original benchmark is not race free (%zu pairs)",
                          D.Report.Pairs.size());
      return R;
    }
    R.Original = analyzeDpst(*D.Tree, 12);
  }

  // The serial elision output is the specification.
  std::string SpecOutput;
  {
    LoadedBenchmark Elided = loadBenchmark(Spec.Source);
    elideParallelism(*Elided.Prog);
    // Re-run sema to keep decl bindings coherent after the rewrite.
    DiagnosticsEngine Diags;
    runSema(*Elided.Prog, *Elided.Ctx, Diags);
    ExecResult E = runProgram(*Elided.Prog, Exec);
    if (!E.Ok) {
      R.Error = strFormat("serial elision failed: %s", E.Error.c_str());
      return R;
    }
    SpecOutput = E.Output;
  }

  // Build the buggy program (paper §7.1) and repair it.
  LoadedBenchmark Buggy = loadBenchmark(Spec.Source);
  stripFinishes(*Buggy.Prog);
  {
    DiagnosticsEngine Diags;
    runSema(*Buggy.Prog, *Buggy.Ctx, Diags);
  }

  RepairOptions Opts;
  Opts.Mode = Mode;
  Opts.Exec = Exec;
  RepairResult Repair = repairProgram(*Buggy.Prog, *Buggy.Ctx, Opts);
  R.Iterations = Repair.Stats.Iterations;
  R.Finishes = Repair.Stats.FinishesInserted;
  R.DpstNodes = Repair.Stats.DpstNodes;
  R.RawRaces = Repair.Stats.RawRaces;
  R.RacePairs = Repair.Stats.RacePairs;
  R.RepairSecs = Repair.Stats.totalRepairMs() / 1000.0;
  if (!Repair.Stats.DetectMs.empty()) {
    R.DetectMs = Repair.Stats.DetectMs.front();
    R.SecondDetectMs = Repair.Stats.DetectMs.back();
  }
  if (!Repair.Success) {
    R.Error = strFormat("repair failed: %s", Repair.Error.c_str());
    return R;
  }
  R.RepairedSource = printProgram(*Buggy.Prog);

  // Verify: race free, same output as the serial elision, and measure the
  // repaired program's parallelism.
  Detection After = detectRaces(*Buggy.Prog, EspBagsDetector::Mode::MRW, Exec);
  R.RaceFreeAfter = After.ok() && After.Report.Pairs.empty();
  R.OutputMatchesElision = After.ok() && After.Exec.Output == SpecOutput;
  if (After.ok())
    R.Repaired = analyzeDpst(*After.Tree, 12);

  R.Ok = R.RaceFreeAfter && R.OutputMatchesElision;
  if (!R.Ok && R.Error.empty())
    R.Error = !R.RaceFreeAfter ? "races remained after repair"
                               : "repaired output differs from elision";
  return R;
}

PerfPoint tdr::runPerfExperiment(const BenchmarkSpec &Spec,
                                 unsigned NumProcs) {
  PerfPoint P;
  P.Spec = &Spec;
  ExecOptions Exec = execFor(Spec, /*Perf=*/true);

  // Sequential wall clock (uninstrumented, averaged over 3 runs).
  LoadedBenchmark Orig = loadBenchmark(Spec.Source);
  {
    Timer T;
    for (int I = 0; I != 3; ++I) {
      ExecResult Seq = runProgram(*Orig.Prog, Exec);
      if (!Seq.Ok) {
        P.Error = Seq.Error;
        return P;
      }
    }
    P.SeqMs = T.elapsedMs() / 3.0;
  }

  // Original parallel structure.
  {
    Detection D = detectRaces(*Orig.Prog, EspBagsDetector::Mode::SRW, Exec);
    if (!D.ok()) {
      P.Error = D.Exec.Error;
      return P;
    }
    ParallelismStats S = analyzeDpst(*D.Tree, NumProcs);
    P.SeqWork = S.T1;
    P.OriginalT12 = S.TP;
    P.OriginalTinf = S.Tinf;
  }

  // Repaired program's parallel structure.
  LoadedBenchmark Buggy = loadBenchmark(Spec.Source);
  stripFinishes(*Buggy.Prog);
  {
    DiagnosticsEngine Diags;
    runSema(*Buggy.Prog, *Buggy.Ctx, Diags);
  }
  RepairOptions Opts;
  Opts.Exec = Exec;
  RepairResult Repair = repairProgram(*Buggy.Prog, *Buggy.Ctx, Opts);
  if (!Repair.Success) {
    P.Error = Repair.Error;
    return P;
  }
  {
    Detection D = detectRaces(*Buggy.Prog, EspBagsDetector::Mode::SRW, Exec);
    if (!D.ok()) {
      P.Error = D.Exec.Error;
      return P;
    }
    ParallelismStats S = analyzeDpst(*D.Tree, NumProcs);
    P.RepairedT12 = S.TP;
    P.RepairedTinf = S.Tinf;
  }
  P.Ok = true;
  return P;
}
