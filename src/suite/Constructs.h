//===- Constructs.h - Future/isolated/forasync program suite -----*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The construct-repair suite: small HJ-mini programs exercising the
/// language extensions beyond async/finish — `future`/`force`,
/// `isolated { }`, and chunked `forasync` — each with a seeded race the
/// repair layer resolves, and each designed so a specific construct wins
/// the per-edge cost comparison (see repair/ConstructChoice.h):
///
///  * FuturePipeline  — forcing the future in front of the racing read is
///    strictly cheaper than any finish, because a long unrelated async
///    would be joined by every realizable finish range;
///  * IsolatedAccum   — isolating two tiny accumulator updates beats the
///    finish repair, which would serialize the heavy subcomputations the
///    updates trail (needs the opt-in `isolated` allowlist entry);
///  * ForasyncStencil — a chunked forasync whose unawaited chunks race
///    with the reduction that follows; the finish repair wins (neither
///    alternative applies).
///
/// Unlike Table 1 (Benchmarks.h), these are not paper benchmarks; they
/// back bench_constructs, the construct-choice acceptance tests, and the
/// differential suites.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_SUITE_CONSTRUCTS_H
#define TDR_SUITE_CONSTRUCTS_H

#include "suite/Benchmarks.h"

namespace tdr {

/// The construct-repair programs, in the order above. Reuses the Table 1
/// spec shape; PerfArgs are the larger bench_constructs inputs.
const std::vector<BenchmarkSpec> &constructBenchmarks();

/// Lookup by name; null when unknown.
const BenchmarkSpec *findConstructBenchmark(const std::string &Name);

} // namespace tdr

#endif // TDR_SUITE_CONSTRUCTS_H
