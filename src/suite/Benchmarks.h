//===- Benchmarks.h - The paper's 12-benchmark suite -------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark suite of paper Table 1, rewritten in HJ-mini: Fibonacci,
/// Quicksort, Mergesort and Spanning Tree (HJ Bench), Nqueens (BOTS),
/// Series, SOR, Crypt, Sparse and LUFact (JGF), FannKuch and Mandelbrot
/// (Shootout). Every program is the *correct* version (with finishes);
/// the experiment harness strips the finishes to obtain the buggy inputs
/// the repair tool is evaluated on (paper §7.1).
///
/// Input sizes: the "repair" sizes mirror the paper's Table 1 column 4
/// where the interpreter allows; the "perf" sizes replace the paper's
/// native-scale column 5 (e.g. 100,000,000 element sorts) with
/// interpreter-scale inputs — see DESIGN.md, substitutions.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_SUITE_BENCHMARKS_H
#define TDR_SUITE_BENCHMARKS_H

#include <cstdint>
#include <string>
#include <vector>

namespace tdr {

/// One benchmark of Table 1.
struct BenchmarkSpec {
  const char *Name;        ///< e.g. "Fibonacci"
  const char *Suite;       ///< "HJ Bench", "BOTS", "JGF", "Shootout"
  const char *Description; ///< Table 1 description column
  const char *Source;      ///< correct HJ-mini program (with finishes)
  std::vector<int64_t> RepairArgs; ///< arg() values, repair mode
  std::vector<int64_t> PerfArgs;   ///< arg() values, performance mode
  const char *RepairInputDesc;     ///< human-readable input size (repair)
  const char *PerfInputDesc;       ///< human-readable input size (perf)
};

/// All 12 benchmarks, in Table 1 order.
const std::vector<BenchmarkSpec> &allBenchmarks();

/// Lookup by name; null when unknown.
const BenchmarkSpec *findBenchmark(const std::string &Name);

} // namespace tdr

#endif // TDR_SUITE_BENCHMARKS_H
