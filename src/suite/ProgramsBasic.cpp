//===- ProgramsBasic.cpp - HJ Bench programs ------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// The four HJ Bench programs of Table 1. Each is the correct version; the
// harness strips finishes to produce the repair tool's inputs.
//
//===----------------------------------------------------------------------===//

#include "suite/ProgramSources.h"

using namespace tdr;

/// Paper Figure 8/15: recursive Fibonacci; BoxInteger becomes int[1].
/// arg(0) = n.
const char *suite::FibonacciSrc = R"(
func fib(ret: int[], n: int) {
  if (n < 2) {
    ret[0] = n;
    return;
  }
  var x: int[] = new int[1];
  var y: int[] = new int[1];
  finish {
    async fib(x, n - 1);
    async fib(y, n - 2);
  }
  ret[0] = x[0] + y[0];
}

func main() {
  var result: int[] = new int[1];
  fib(result, arg(0));
  print(result[0]);
}
)";

/// Paper Figure 2: parallel quicksort. The expert placement is a single
/// finish around the top-level call (the recursive asyncs work on disjoint
/// ranges, so they need no finish of their own). arg(0) = n.
const char *suite::QuicksortSrc = R"(
var A: int[];

func partition(lo: int, hi: int, out: int[]) {
  var pivot: int = A[(lo + hi) / 2];
  var i: int = lo;
  var j: int = hi;
  while (i <= j) {
    while (A[i] < pivot) { i = i + 1; }
    while (A[j] > pivot) { j = j - 1; }
    if (i <= j) {
      var t: int = A[i];
      A[i] = A[j];
      A[j] = t;
      i = i + 1;
      j = j - 1;
    }
  }
  out[0] = i;
  out[1] = j;
}

func quicksort(m: int, n: int) {
  if (m < n) {
    var p: int[] = new int[2];
    partition(m, n, p);
    async quicksort(m, p[1]);
    async quicksort(p[0], n);
  }
}

func main() {
  var n: int = arg(0);
  A = new int[n];
  randSeed(42);
  for (var i: int = 0; i < n; i = i + 1) { A[i] = randInt(100000); }
  finish quicksort(0, n - 1);
  var sorted: bool = true;
  var sum: int = 0;
  for (var i: int = 0; i < n; i = i + 1) {
    if (i > 0 && A[i - 1] > A[i]) { sorted = false; }
    sum = sum + A[i] * (i % 17 + 1);
  }
  print(sorted);
  print(sum);
}
)";

/// Paper Figure 1: parallel mergesort; the recursive asyncs must be joined
/// before the merge. arg(0) = n.
const char *suite::MergesortSrc = R"(
var A: int[];

func merge(lo: int, mid: int, hi: int) {
  var tmp: int[] = new int[hi - lo + 1];
  var i: int = lo;
  var j: int = mid + 1;
  var k: int = 0;
  while (i <= mid && j <= hi) {
    if (A[i] <= A[j]) {
      tmp[k] = A[i];
      i = i + 1;
    } else {
      tmp[k] = A[j];
      j = j + 1;
    }
    k = k + 1;
  }
  while (i <= mid) { tmp[k] = A[i]; i = i + 1; k = k + 1; }
  while (j <= hi) { tmp[k] = A[j]; j = j + 1; k = k + 1; }
  for (var t: int = 0; t < k; t = t + 1) { A[lo + t] = tmp[t]; }
}

func mergesort(m: int, n: int) {
  if (m < n) {
    var mid: int = m + (n - m) / 2;
    finish {
      async mergesort(m, mid);
      async mergesort(mid + 1, n);
    }
    merge(m, mid, n);
  }
}

func main() {
  var n: int = arg(0);
  A = new int[n];
  randSeed(7);
  for (var i: int = 0; i < n; i = i + 1) { A[i] = randInt(100000); }
  mergesort(0, n - 1);
  var sorted: bool = true;
  var sum: int = 0;
  for (var i: int = 0; i < n; i = i + 1) {
    if (i > 0 && A[i - 1] > A[i]) { sorted = false; }
    sum = sum + A[i] * (i % 13 + 1);
  }
  print(sorted);
  print(sum);
}
)";

/// Spanning tree (BFS forest) of a random undirected graph, level-
/// synchronous: each level, every unvisited vertex scans its neighbors and
/// adopts the lowest-numbered frontier neighbor as parent. Writes are
/// per-vertex (disjoint); the finish between levels orders the level[]
/// reads after the previous level's writes. arg(0) = nodes, arg(1) = max
/// neighbors per node.
const char *suite::SpanningTreeSrc = R"(
var NumNodes: int;
var Deg: int[];
var Nbr: int[][];
var Level: int[];
var Parent: int[];
var Chosen: int[];

func buildGraph(maxDeg: int) {
  Deg = new int[NumNodes];
  Nbr = new int[NumNodes][maxDeg * 2];
  randSeed(1234);
  for (var u: int = 0; u < NumNodes; u = u + 1) { Deg[u] = 0; }
  for (var u: int = 0; u < NumNodes; u = u + 1) {
    var want: int = 1 + randInt(maxDeg);
    for (var e: int = 0; e < want; e = e + 1) {
      var v: int = randInt(NumNodes);
      if (v != u && Deg[u] < maxDeg * 2 && Deg[v] < maxDeg * 2) {
        Nbr[u][Deg[u]] = v;
        Deg[u] = Deg[u] + 1;
        Nbr[v][Deg[v]] = u;
        Deg[v] = Deg[v] + 1;
      }
    }
  }
}

func chooseParents(lo: int, hi: int, cur: int) {
  for (var v: int = lo; v < hi; v = v + 1) {
    var best: int = -1;
    if (Level[v] < 0) {
      for (var e: int = 0; e < Deg[v]; e = e + 1) {
        var u: int = Nbr[v][e];
        if (Level[u] == cur) {
          if (best < 0 || u < best) { best = u; }
        }
      }
    }
    Chosen[v] = best;
  }
}

func main() {
  NumNodes = arg(0);
  var chunk: int = arg(2);
  buildGraph(arg(1));
  Level = new int[NumNodes];
  Parent = new int[NumNodes];
  Chosen = new int[NumNodes];
  for (var v: int = 0; v < NumNodes; v = v + 1) {
    Level[v] = -1;
    Parent[v] = -1;
  }
  Level[0] = 0;
  Parent[0] = 0;
  var cur: int = 0;
  var grew: bool = true;
  while (grew) {
    // Parallel phase: every vertex picks a prospective parent from the
    // current frontier, writing only its own Chosen slot and reading
    // Level[], which this phase never writes.
    finish {
      for (var lo: int = 0; lo < NumNodes; lo = lo + chunk) {
        async chooseParents(lo, min(lo + chunk, NumNodes), cur);
      }
    }
    // Sequential commit of the new level.
    grew = false;
    for (var v: int = 0; v < NumNodes; v = v + 1) {
      if (Chosen[v] >= 0 && Level[v] < 0) {
        Level[v] = cur + 1;
        Parent[v] = Chosen[v];
        grew = true;
      }
    }
    cur = cur + 1;
  }
  var visited: int = 0;
  var checksum: int = 0;
  for (var v: int = 0; v < NumNodes; v = v + 1) {
    if (Level[v] >= 0) { visited = visited + 1; }
    checksum = checksum + Parent[v] * (v % 11 + 1);
  }
  print(visited);
  print(checksum);
}
)";
