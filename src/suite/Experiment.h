//===- Experiment.h - Strip/repair/measure workflows -------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluation workflow of paper §7.1: take a correct benchmark, remove
/// all finish statements, run the repair tool on the buggy program, then
/// measure (a) that the repair is race free and semantics preserving and
/// (b) how the repaired program's parallelism compares with the original
/// expert version. These runners feed every table and figure bench.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_SUITE_EXPERIMENT_H
#define TDR_SUITE_EXPERIMENT_H

#include "race/EspBags.h"
#include "repair/RepairDriver.h"
#include "sched/Schedule.h"
#include "suite/Benchmarks.h"

#include <string>

namespace tdr {

/// Everything one strip-and-repair run produces (Tables 2-4 columns).
struct RepairExperiment {
  const BenchmarkSpec *Spec = nullptr;
  bool Ok = false;
  std::string Error;

  double HjSeqMs = 0;        ///< uninstrumented sequential run (HJ-Seq)
  double DetectMs = 0;       ///< first detection run (S-DPST + races)
  double SecondDetectMs = 0; ///< the confirming detection run
  size_t DpstNodes = 0;
  uint64_t RawRaces = 0;     ///< races reported by the detector (pre-dedup)
  size_t RacePairs = 0;      ///< distinct racing step pairs
  double RepairSecs = 0;     ///< dynamic + static placement time
  unsigned Iterations = 0;   ///< detection runs the driver needed
  unsigned Finishes = 0;     ///< finish statements inserted

  bool RaceFreeAfter = false;
  bool OutputMatchesElision = false;

  /// Work/CPL/greedy-T12 of the original and the repaired program on the
  /// same input.
  ParallelismStats Original;
  ParallelismStats Repaired;

  /// The repaired program text.
  std::string RepairedSource;
};

/// Strips the benchmark's finishes and repairs it with the given detector
/// mode, on the repair-mode input (or the performance input).
RepairExperiment runRepairExperiment(const BenchmarkSpec &Spec,
                                     EspBagsDetector::Mode Mode,
                                     bool UsePerfInput = false);

/// Figure 16 data point: execution measures for sequential, original
/// parallel, and repaired parallel versions on the performance input.
struct PerfPoint {
  const BenchmarkSpec *Spec = nullptr;
  bool Ok = false;
  std::string Error;

  double SeqMs = 0;          ///< measured wall-clock of a sequential run
  uint64_t SeqWork = 0;      ///< T1 in work units
  uint64_t OriginalT12 = 0;  ///< greedy 12-processor schedule, original
  uint64_t RepairedT12 = 0;  ///< greedy 12-processor schedule, repaired
  uint64_t OriginalTinf = 0;
  uint64_t RepairedTinf = 0;

  /// Modeled wall-clock for P processors: SeqMs scaled by TP/T1.
  double originalParMs() const {
    return SeqWork ? SeqMs * static_cast<double>(OriginalT12) /
                         static_cast<double>(SeqWork)
                   : 0;
  }
  double repairedParMs() const {
    return SeqWork ? SeqMs * static_cast<double>(RepairedT12) /
                         static_cast<double>(SeqWork)
                   : 0;
  }
};

/// Runs the Figure 16 measurement for one benchmark with \p NumProcs
/// simulated processors (12 in the paper).
PerfPoint runPerfExperiment(const BenchmarkSpec &Spec, unsigned NumProcs = 12);

/// Parses and checks a benchmark source; aborts the process with a message
/// on failure (suite programs are expected to be valid).
struct LoadedBenchmark {
  std::unique_ptr<AstContext> Ctx;
  Program *Prog = nullptr;
};
LoadedBenchmark loadBenchmark(const char *Source);

} // namespace tdr

#endif // TDR_SUITE_EXPERIMENT_H
