//===- Benchmarks.cpp - Table 1 registry ----------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "suite/Benchmarks.h"

#include "suite/ProgramSources.h"

using namespace tdr;

const std::vector<BenchmarkSpec> &tdr::allBenchmarks() {
  // Repair sizes follow the paper's Table 1 column 4 where the interpreter
  // allows; perf sizes are the interpreter-scale stand-ins for column 5
  // (see DESIGN.md substitutions).
  static const std::vector<BenchmarkSpec> Specs = {
      {"Fibonacci", "HJ Bench", "Compute nth Fibonacci number",
       suite::FibonacciSrc,
       {16},
       {22},
       "n = 16",
       "n = 22"},
      {"Quicksort", "HJ Bench", "Quicksort", suite::QuicksortSrc,
       {200},
       {4000},
       "n = 200",
       "n = 4,000"},
      {"Mergesort", "HJ Bench", "Mergesort", suite::MergesortSrc,
       {200},
       {4000},
       "n = 200",
       "n = 4,000"},
      {"Spanning Tree", "HJ Bench",
       "Compute spanning tree of an undirected graph", suite::SpanningTreeSrc,
       {200, 4, 8},
       {1000, 6, 25},
       "nodes = 200, neighbors = 4",
       "nodes = 1,000, neighbors = 6"},
      {"Nqueens", "BOTS", "N Queens problem", suite::NqueensSrc,
       {6},
       {8},
       "n = 6",
       "n = 8"},
      {"Series", "JGF", "Fourier coefficient analysis", suite::SeriesSrc,
       {25},
       {220},
       "rows = 25",
       "rows = 220"},
      {"SOR", "JGF", "Successive over-relaxation", suite::SorSrc,
       {32, 1, 2},
       {100, 6, 8},
       "size = 32, iters = 1",
       "size = 100, iters = 6"},
      {"Crypt", "JGF", "IDEA encryption", suite::CryptSrc,
       {96, 8},
       {1600, 25},
       "blocks = 96",
       "blocks = 1,600"},
      {"Sparse", "JGF", "Sparse matrix multiplication", suite::SparseSrc,
       {64, 4, 2, 4},
       {700, 6, 4, 10},
       "n = 64",
       "n = 700"},
      {"LUFact", "JGF", "LU factorization", suite::LUFactSrc,
       {16, 2},
       {48, 6},
       "16 x 16",
       "48 x 48"},
      {"FannKuch", "Shootout", "Indexed-access to tiny integer-sequence",
       suite::FannKuchSrc,
       {6},
       {8},
       "n = 6",
       "n = 8"},
      {"Mandelbrot", "Shootout", "Generate Mandelbrot set portable bitmap",
       suite::MandelbrotSrc,
       {24, 24, 40},
       {150, 150, 60},
       "24 x 24",
       "150 x 150"},
  };
  return Specs;
}

const BenchmarkSpec *tdr::findBenchmark(const std::string &Name) {
  for (const BenchmarkSpec &B : allBenchmarks())
    if (Name == B.Name)
      return &B;
  return nullptr;
}
