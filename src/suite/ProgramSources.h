//===- ProgramSources.h - HJ-mini sources of the suite (private) -*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef TDR_SUITE_PROGRAMSOURCES_H
#define TDR_SUITE_PROGRAMSOURCES_H

namespace tdr {
namespace suite {

extern const char *FibonacciSrc;
extern const char *QuicksortSrc;
extern const char *MergesortSrc;
extern const char *SpanningTreeSrc;
extern const char *NqueensSrc;
extern const char *SeriesSrc;
extern const char *SorSrc;
extern const char *CryptSrc;
extern const char *SparseSrc;
extern const char *LUFactSrc;
extern const char *FannKuchSrc;
extern const char *MandelbrotSrc;

} // namespace suite
} // namespace tdr

#endif // TDR_SUITE_PROGRAMSOURCES_H
