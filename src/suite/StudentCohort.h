//===- StudentCohort.h - Synthetic student homework cohort -------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The student homework evaluation of paper §7.4: 59 submissions of a
/// "insert finish statements into this parallel quicksort" assignment,
/// graded against the repair tool's own output. Out of 59, the paper
/// reports 5 still racy, 29 over-synchronized, and 25 matching the tool.
///
/// The original submissions are not public, so this module synthesizes a
/// cohort from placement archetypes observed in such assignments (no
/// synchronization, partial synchronization, per-call joins, per-level
/// joins, fully serializing joins, the optimal single finish, harmless
/// extra finishes), in the paper's class proportions. What is *measured*,
/// not assumed, is the grading: the tool's race detector decides "racy"
/// and the critical-path comparison against the tool's repair decides
/// "over-synchronized" vs "matches the tool".
///
//===----------------------------------------------------------------------===//

#ifndef TDR_SUITE_STUDENTCOHORT_H
#define TDR_SUITE_STUDENTCOHORT_H

#include <cstdint>
#include <string>
#include <vector>

namespace tdr {

/// Grading classes (paper §7.4).
enum class StudentClass { Racy, OverSync, Match };

const char *studentClassName(StudentClass C);

/// One synthesized submission and its grading.
struct StudentResult {
  std::string Archetype;       ///< which placement pattern was generated
  StudentClass Intended;       ///< class the archetype was designed to be
  StudentClass Graded;         ///< class the tool assigned
  size_t RacePairs = 0;        ///< races the detector found
  uint64_t Cpl = 0;            ///< critical path length (race-free only)
  bool Ok = false;             ///< program compiled and ran
};

/// Cohort outcome.
struct CohortResult {
  std::vector<StudentResult> Students;
  uint64_t ToolCpl = 0;        ///< CPL of the tool's own repair
  int NumRacy = 0, NumOverSync = 0, NumMatch = 0;
  int GradingAgreements = 0;   ///< students where Graded == Intended
};

/// Generates and grades a cohort. \p InputSize is the quicksort input the
/// detector/grader runs on. \p Jobs > 1 grades that many submissions
/// concurrently (each on its own program and metrics registry); the result
/// is identical to the sequential run.
CohortResult runStudentCohort(unsigned NumStudents = 59,
                              uint64_t Seed = 2014, int64_t InputSize = 200,
                              unsigned Jobs = 1);

} // namespace tdr

#endif // TDR_SUITE_STUDENTCOHORT_H
