//===- ProgramsMisc.cpp - BOTS and Shootout programs ----------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// Nqueens (BOTS), FannKuch and Mandelbrot (Shootout).
//
//===----------------------------------------------------------------------===//

#include "suite/ProgramSources.h"

using namespace tdr;

/// N-Queens solution counting; each row placement spawns a task with its
/// own copy of the column assignment, counts merge through per-branch
/// slots after the finish. arg(0) = n.
const char *suite::NqueensSrc = R"(
var Size: int;

func safe(pos: int[], row: int, col: int): bool {
  for (var r: int = 0; r < row; r = r + 1) {
    var c: int = pos[r];
    if (c == col) { return false; }
    if (c - col == row - r) { return false; }
    if (col - c == row - r) { return false; }
  }
  return true;
}

func solve(pos: int[], row: int, out: int[], slot: int) {
  if (row == Size) {
    out[slot] = 1;
    return;
  }
  var counts: int[] = new int[Size];
  finish {
    for (var c: int = 0; c < Size; c = c + 1) {
      if (safe(pos, row, c)) {
        async {
          var p2: int[] = new int[Size];
          for (var r: int = 0; r < row; r = r + 1) { p2[r] = pos[r]; }
          p2[row] = c;
          solve(p2, row + 1, counts, c);
        }
      }
    }
  }
  var total: int = 0;
  for (var c: int = 0; c < Size; c = c + 1) { total = total + counts[c]; }
  out[slot] = total;
}

func main() {
  Size = arg(0);
  var result: int[] = new int[1];
  var root: int[] = new int[Size];
  solve(root, 0, result, 0);
  print(result[0]);
}
)";

/// FannKuch: maximum pancake-flip count over permutations of 1..n. Each
/// choice of first element is explored by a task over its own permutation
/// buffer; per-task maxima merge after the finish. arg(0) = n.
const char *suite::FannKuchSrc = R"(
var Size: int;
var MaxFlips: int[];

func countFlips(perm: int[]): int {
  var flips: int = 0;
  var first: int = perm[0];
  while (first != 0) {
    var i: int = 0;
    var j: int = first;
    while (i < j) {
      var t: int = perm[i];
      perm[i] = perm[j];
      perm[j] = t;
      i = i + 1;
      j = j - 1;
    }
    flips = flips + 1;
    first = perm[0];
  }
  return flips;
}

func explore(prefix: int[], used: int[], depth: int, branch: int) {
  if (depth == Size) {
    var work: int[] = new int[Size];
    for (var i: int = 0; i < Size; i = i + 1) { work[i] = prefix[i]; }
    var f: int = countFlips(work);
    if (f > MaxFlips[branch]) { MaxFlips[branch] = f; }
    return;
  }
  for (var v: int = 0; v < Size; v = v + 1) {
    if (used[v] == 0) {
      var p2: int[] = new int[Size];
      for (var i: int = 0; i < depth; i = i + 1) { p2[i] = prefix[i]; }
      p2[depth] = v;
      var u2: int[] = new int[Size];
      for (var i: int = 0; i < Size; i = i + 1) { u2[i] = used[i]; }
      u2[v] = 1;
      explore(p2, u2, depth + 1, branch);
    }
  }
}

func main() {
  Size = arg(0);
  MaxFlips = new int[Size];
  finish {
    for (var first: int = 0; first < Size; first = first + 1) {
      async {
        var prefix: int[] = new int[Size];
        var used: int[] = new int[Size];
        prefix[0] = first;
        used[first] = 1;
        explore(prefix, used, 1, first);
      }
    }
  }
  var best: int = 0;
  for (var b: int = 0; b < Size; b = b + 1) {
    if (MaxFlips[b] > best) { best = MaxFlips[b]; }
  }
  print(best);
}
)";

/// Mandelbrot escape-time over a w x h grid, one task per row writing its
/// own row of iteration counts. arg(0) = width, arg(1) = height,
/// arg(2) = max iterations.
const char *suite::MandelbrotSrc = R"(
var Counts: int[][];
var W: int;
var H: int;
var MaxIter: int;

func computeRow(y: int) {
  var ci: double = toDouble(y) * 2.0 / toDouble(H) - 1.0;
  for (var x: int = 0; x < W; x = x + 1) {
    var cr: double = toDouble(x) * 3.0 / toDouble(W) - 2.0;
    var zr: double = 0.0;
    var zi: double = 0.0;
    var it: int = 0;
    var done: bool = false;
    while (!done) {
      if (it >= MaxIter) { done = true; }
      else {
        if (zr * zr + zi * zi > 4.0) { done = true; }
        else {
          var nzr: double = zr * zr - zi * zi + cr;
          zi = 2.0 * zr * zi + ci;
          zr = nzr;
          it = it + 1;
        }
      }
    }
    Counts[y][x] = it;
  }
}

func main() {
  W = arg(0);
  H = arg(1);
  MaxIter = arg(2);
  Counts = new int[H][W];
  finish {
    for (var y: int = 0; y < H; y = y + 1) {
      async computeRow(y);
    }
  }
  var inside: int = 0;
  var checksum: int = 0;
  for (var y: int = 0; y < H; y = y + 1) {
    for (var x: int = 0; x < W; x = x + 1) {
      if (Counts[y][x] == MaxIter) { inside = inside + 1; }
      checksum = checksum + Counts[y][x] * ((x + y) % 9 + 1);
    }
  }
  print(inside);
  print(checksum);
}
)";
