//===- ProgramsConstructs.cpp - Future/isolated/forasync suite ------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// See Constructs.h for the design of each program. Every source here is
// the *buggy* version: the race is the point, and the repair tool picks
// the construct that cuts it most cheaply.
//
//===----------------------------------------------------------------------===//

#include "suite/Constructs.h"

using namespace tdr;

namespace {

/// A producer future whose writes race with the consumer's early read.
/// The `mix(b, 0, 8n)` async dominates the critical path; every finish
/// range realizable around the future also joins it (or delays it), so
/// `force(f);` in front of the read — which joins only the producer's
/// subtree — is strictly cheaper. The program itself never forces f:
/// a force after the read would pin the handle in the outer scope and
/// make every finish wrap of the future an escaping declaration
/// (StaticPlacer rejects those), killing the fallback this suite
/// compares against. arg(0) = n.
const char *FuturePipelineSrc = R"(
func produce(a: int[], n: int): int {
  var s: int = 0;
  for (var i: int = 0; i < n; i = i + 1) {
    s = s + i;
    a[1] = s;
  }
  return s;
}

func mix(b: int[], slot: int, n: int) {
  var s: int = 0;
  for (var i: int = 0; i < n; i = i + 1) {
    s = s + i * i;
  }
  b[slot] = s;
}

func main() {
  var n: int = arg(0);
  var a: int[] = new int[2];
  var b: int[] = new int[2];
  future f = produce(a, n);
  async mix(b, 0, 8 * n);
  print(a[1]);
  async mix(b, 1, n);
  finish {
  }
  print(b[0] + b[1]);
}
)";

/// Two tasks each run a heavy subcomputation, then fold its result into a
/// shared accumulator with one tiny racing update. A finish would
/// serialize the heavy halves (~2H); isolating the two updates keeps them
/// parallel and pays only the tiny contention penalty (~H). Requires the
/// `isolated` allowlist entry; under the default mask the repair falls
/// back to the finish. arg(0) = n.
const char *IsolatedAccumSrc = R"(
func heavy(b: int[], i: int, n: int) {
  var s: int = 0;
  for (var k: int = 0; k < n; k = k + 1) {
    s = s + k * (i + 1);
  }
  b[i] = s;
}

func main() {
  var n: int = arg(0);
  var a: int[] = new int[1];
  var b: int[] = new int[2];
  finish {
    async {
      finish {
        async heavy(b, 0, n);
      }
      a[0] = a[0] + b[0];
    }
    async {
      finish {
        async heavy(b, 1, n);
      }
      a[0] = a[0] + b[1];
    }
  }
  print(a[0]);
}
)";

/// A chunked forasync stencil whose chunks are never awaited before the
/// reduction reads the array: every chunk races with the serial sum. The
/// source of each edge is a plain async (not a future) and the racing
/// statements are loops (not isolable single statements), so the finish
/// repair wins by default. arg(0) = n, arg(1) = chunk.
const char *ForasyncStencilSrc = R"(
func main() {
  var n: int = arg(0);
  var c: int = arg(1);
  var a: int[] = new int[n + 1];
  forasync (var i: int = 0; i < n; chunk c) {
    a[i] = a[i] + i * i;
  }
  var total: int = 0;
  for (var i: int = 0; i < n; i = i + 1) {
    total = total + a[i];
  }
  print(total);
}
)";

} // namespace

const std::vector<BenchmarkSpec> &tdr::constructBenchmarks() {
  static const std::vector<BenchmarkSpec> Specs = {
      {"FuturePipeline", "Constructs",
       "Producer future raced by an early read", FuturePipelineSrc,
       {40},
       {400},
       "n = 40",
       "n = 400"},
      {"IsolatedAccum", "Constructs",
       "Heavy tasks folding into a shared accumulator", IsolatedAccumSrc,
       {50},
       {500},
       "n = 50",
       "n = 500"},
      {"ForasyncStencil", "Constructs",
       "Chunked forasync raced by its reduction", ForasyncStencilSrc,
       {16, 4},
       {96, 8},
       "n = 16, chunk = 4",
       "n = 96, chunk = 8"},
  };
  return Specs;
}

const BenchmarkSpec *tdr::findConstructBenchmark(const std::string &Name) {
  for (const BenchmarkSpec &B : constructBenchmarks())
    if (Name == B.Name)
      return &B;
  return nullptr;
}
