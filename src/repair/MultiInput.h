//===- MultiInput.h - Multi-input repair and coverage analysis ---*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two pieces around the single-input core:
///
///  * Multi-input repair — the tool "is applied iteratively for different
///    test inputs" (paper §2): repair for input 1, re-detect with input 2,
///    repair the residue, and so on, until every test input is race free.
///
///  * Test-coverage analysis — a §9 future-work item ("test coverage
///    analysis to evaluate the suitability of a given set of test cases
///    for program repair"): a repair is only as trustworthy as the inputs
///    that drove it, so report which async sites the inputs actually
///    exercised. An async statement that never spawned cannot have had
///    its races observed or repaired.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_REPAIR_MULTIINPUT_H
#define TDR_REPAIR_MULTIINPUT_H

#include "repair/RepairDriver.h"

#include <string>
#include <vector>

namespace tdr {

class AsyncStmt;

/// Outcome of a multi-input repair.
struct MultiRepairResult {
  bool Success = false;     ///< race free for every input, verified
  std::string Error;
  unsigned FinishesInserted = 0;
  /// Per input: detection runs the driver needed (1 = already race free).
  std::vector<unsigned> IterationsPerInput;
  /// Inputs (indices) that triggered at least one new finish.
  std::vector<size_t> InputsThatContributed;
  /// True once the final verification pass re-checked every input against
  /// the fully repaired program.
  bool FinalVerified = false;
  /// Index of the input the final verification found racy (or failing at
  /// run time); SIZE_MAX when verification passed or was never reached.
  size_t FailedVerifyInput = static_cast<size_t>(-1);
};

/// Repairs \p P for every input in \p Inputs, in order. Later inputs see
/// the finishes earlier inputs introduced, so the finish set only grows.
/// Finish insertion is strictly restrictive (it only adds ordering), but
/// SRW detection may surface races for an earlier input only after a later
/// input reshaped the tree — so a final verification pass re-detects on
/// every input and Success is claimed only when all of them come back
/// race free.
///
/// Record-once / replay-many across the whole session: input i is
/// interpreted exactly once (its event stream lands in entry i of the
/// trace store); every later detection for that input — including the
/// final verification pass — replays the log against the current edit
/// map. Pass \p Store to keep the recorded logs alive after the call
/// (coverage analysis reuses them); when null a call-local store is used.
/// \p UseReplay = false restores the interpret-every-time behavior.
/// \p Backend selects the detection backend for every run, including the
/// final verification pass (default: the TDR_BACKEND-selectable process
/// default — see race/Detect.h).
MultiRepairResult repairProgramForInputs(Program &P, AstContext &Ctx,
                                         const std::vector<ExecOptions> &Inputs,
                                         EspBagsDetector::Mode Mode =
                                             EspBagsDetector::Mode::MRW,
                                         trace::TraceStore *Store = nullptr,
                                         bool UseReplay = true,
                                         DetectBackend Backend =
                                             defaultDetectBackend());

/// Coverage of one async site across a set of test inputs.
struct AsyncSiteCoverage {
  const AsyncStmt *Site = nullptr;
  SourceLoc Loc;
  /// Dynamic instances per input (parallel to the inputs vector).
  std::vector<uint64_t> InstancesPerInput;

  uint64_t totalInstances() const {
    uint64_t T = 0;
    for (uint64_t I : InstancesPerInput)
      T += I;
    return T;
  }
  bool exercised() const { return totalInstances() != 0; }
};

/// Suitability report for a test-input set (paper §9 future work).
struct CoverageReport {
  /// An input the program failed to execute: it contributes no coverage,
  /// which is different from executing and spawning nothing.
  struct FailedInput {
    size_t Index = 0;
    std::string Error;
  };

  std::vector<AsyncSiteCoverage> Sites;
  std::vector<FailedInput> FailedInputs;
  size_t NumExercised = 0;
  size_t NumUnexercised = 0;

  /// Fraction of async sites exercised by at least one input.
  double asyncCoverage() const {
    size_t N = Sites.size();
    return N ? static_cast<double>(NumExercised) / static_cast<double>(N)
             : 1.0;
  }
  /// A test set is suitable for repair when every async site spawned at
  /// least once (otherwise some potential races were never observable) and
  /// every input actually executed (a crashing input observed nothing).
  bool suitable() const { return NumUnexercised == 0 && FailedInputs.empty(); }
};

/// Runs \p P on every input, counting dynamic instances of every async
/// statement. Inputs that fail at run time are recorded in
/// CoverageReport::FailedInputs rather than silently skipped.
CoverageReport analyzeTestCoverage(Program &P,
                                   const std::vector<ExecOptions> &Inputs);

/// Like the above, but inputs with a recorded trace in \p Store are not
/// re-run: their async-site counts are tallied straight from the recorded
/// event log (an AsyncEnter per dynamic instance), and a recorded run-time
/// failure surfaces as the same FailedInputs entry a fresh run would
/// produce. Inputs without a recorded entry fall back to a fresh run.
CoverageReport analyzeTestCoverage(Program &P,
                                   const std::vector<ExecOptions> &Inputs,
                                   const trace::TraceStore *Store);

} // namespace tdr

#endif // TDR_REPAIR_MULTIINPUT_H
