//===- MultiInput.h - Multi-input repair and coverage analysis ---*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two pieces around the single-input core:
///
///  * Multi-input repair — the tool "is applied iteratively for different
///    test inputs" (paper §2): repair for input 1, re-detect with input 2,
///    repair the residue, and so on, until every test input is race free.
///
///  * Test-coverage analysis — a §9 future-work item ("test coverage
///    analysis to evaluate the suitability of a given set of test cases
///    for program repair"): a repair is only as trustworthy as the inputs
///    that drove it, so report which async sites the inputs actually
///    exercised. An async statement that never spawned cannot have had
///    its races observed or repaired.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_REPAIR_MULTIINPUT_H
#define TDR_REPAIR_MULTIINPUT_H

#include "repair/RepairDriver.h"

#include <string>
#include <vector>

namespace tdr {

class AsyncStmt;

/// Outcome of a multi-input repair.
struct MultiRepairResult {
  bool Success = false;     ///< race free for every input
  std::string Error;
  unsigned FinishesInserted = 0;
  /// Per input: detection runs the driver needed (1 = already race free).
  std::vector<unsigned> IterationsPerInput;
  /// Inputs (indices) that triggered at least one new finish.
  std::vector<size_t> InputsThatContributed;
};

/// Repairs \p P for every input in \p Inputs, in order. Later inputs see
/// the finishes earlier inputs introduced, so the finish set only grows.
MultiRepairResult repairProgramForInputs(Program &P, AstContext &Ctx,
                                         const std::vector<ExecOptions> &Inputs,
                                         EspBagsDetector::Mode Mode =
                                             EspBagsDetector::Mode::MRW);

/// Coverage of one async site across a set of test inputs.
struct AsyncSiteCoverage {
  const AsyncStmt *Site = nullptr;
  SourceLoc Loc;
  /// Dynamic instances per input (parallel to the inputs vector).
  std::vector<uint64_t> InstancesPerInput;

  uint64_t totalInstances() const {
    uint64_t T = 0;
    for (uint64_t I : InstancesPerInput)
      T += I;
    return T;
  }
  bool exercised() const { return totalInstances() != 0; }
};

/// Suitability report for a test-input set (paper §9 future work).
struct CoverageReport {
  std::vector<AsyncSiteCoverage> Sites;
  size_t NumExercised = 0;
  size_t NumUnexercised = 0;

  /// Fraction of async sites exercised by at least one input.
  double asyncCoverage() const {
    size_t N = Sites.size();
    return N ? static_cast<double>(NumExercised) / static_cast<double>(N)
             : 1.0;
  }
  /// A test set is suitable for repair when every async site spawned at
  /// least once (otherwise some potential races were never observable).
  bool suitable() const { return NumUnexercised == 0; }
};

/// Runs \p P on every input, counting dynamic instances of every async
/// statement. The program must execute successfully on each input.
CoverageReport analyzeTestCoverage(Program &P,
                                   const std::vector<ExecOptions> &Inputs);

} // namespace tdr

#endif // TDR_REPAIR_MULTIINPUT_H
