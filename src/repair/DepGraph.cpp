//===- DepGraph.cpp -------------------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "repair/DepGraph.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <unordered_map>

using namespace tdr;

namespace {

/// Coarsens the vertex sequence: consecutive *step* nodes with no outgoing
/// edges and identical incoming-source sets collapse into one vertex whose
/// time is the run's total.
///
/// This is lossless for the DP. Race sources are always asyncs (Theorem
/// 1), so steps never carry outgoing edges. For a run of sink steps with
/// the same sources, every edge into the run imposes the same constraints
/// on finish ranges, and serial step time is invariant under where a
/// finish boundary falls between serial steps. It matters in practice: a
/// benchmark's final checksum loop otherwise contributes one DP vertex per
/// loop iteration, and the DP is O(n^3).
struct Coarsener {
  /// Raw index -> merged index.
  std::vector<uint32_t> Remap;

  void run(std::vector<DpstNode *> &Nodes, PlacementProblem &P,
           const std::vector<std::pair<uint32_t, uint32_t>> &RawEdges) {
    size_t N = Nodes.size();
    std::vector<char> IsSource(N, 0);
    std::vector<std::vector<uint32_t>> Sources(N);
    for (auto [X, Y] : RawEdges) {
      IsSource[X] = 1;
      Sources[Y].push_back(X);
    }
    for (auto &S : Sources) {
      std::sort(S.begin(), S.end());
      S.erase(std::unique(S.begin(), S.end()), S.end());
    }

    std::vector<DpstNode *> NewNodes;
    PlacementProblem NewP;
    Remap.resize(N);
    bool RunMergeable = false;
    bool RunHasSources = false;
    for (size_t I = 0; I != N; ++I) {
      bool Mergeable = Nodes[I]->isStep() && !IsSource[I];
      // A step extends the current run when
      //  * it has no incoming edges (no constraints of its own; loop
      //    bookkeeping steps interleaved with sink steps fall here), or
      //  * the run started at a real sink. Retargeting an edge (x, y) to
      //    the run's first node only strengthens it, and is satisfiable
      //    because every source of every sink in a consecutive step run
      //    precedes the run (a source inside would break the run). What
      //    must never happen is a run that starts with edge-free steps
      //    *gaining* sinks: the edge-free prefix may belong to a source
      //    region's statement extent (e.g. the trailing loop-condition
      //    step of a parallel phase), and moving sink constraints onto it
      //    would forbid wrapping that region in a finish.
      if (Mergeable && RunMergeable &&
          (RunHasSources || Sources[I].empty())) {
        NewP.Times.back() += P.Times[I];
        Remap[I] = static_cast<uint32_t>(NewNodes.size() - 1);
        continue;
      }
      Remap[I] = static_cast<uint32_t>(NewNodes.size());
      NewNodes.push_back(Nodes[I]);
      NewP.Times.push_back(P.Times[I]);
      NewP.IsAsync.push_back(P.IsAsync[I]);
      RunMergeable = Mergeable;
      RunHasSources = !Sources[I].empty();
    }

    std::set<std::pair<uint32_t, uint32_t>> EdgeSet;
    for (auto [X, Y] : RawEdges) {
      uint32_t NX = Remap[X], NY = Remap[Y];
      assert(NX < NY && "merging must preserve edge direction");
      EdgeSet.insert({NX, NY});
    }
    NewP.Edges.assign(EdgeSet.begin(), EdgeSet.end());

    Nodes = std::move(NewNodes);
    P = std::move(NewP);
  }
};

} // namespace

std::vector<DepGroup> tdr::buildDepGroups(const Dpst &Tree,
                                          const std::vector<RacePair> &Races) {
  obs::ScopedSpan Span(obs::phase::DpstGroup);
  obs::Counter &CGroups = obs::counter("repair.groups");
  // Bucket races by NS-LCA.
  std::unordered_map<const DpstNode *, std::vector<RacePair>> Buckets;
  for (const RacePair &R : Races) {
    const DpstNode *L = Tree.nsLca(R.Src, R.Snk);
    Buckets[L].push_back(R);
  }

  std::vector<DepGroup> Groups;
  Groups.reserve(Buckets.size());
  for (auto &[L, GroupRaces] : Buckets) {
    DepGroup G;
    G.Lca = const_cast<DpstNode *>(L);
    G.Nodes = Tree.nonScopeChildren(L);
    G.Races = std::move(GroupRaces);

    std::unordered_map<const DpstNode *, uint32_t> Index;
    Index.reserve(G.Nodes.size());
    for (uint32_t I = 0; I != G.Nodes.size(); ++I)
      Index[G.Nodes[I]] = I;

    G.Problem.Times.reserve(G.Nodes.size());
    G.Problem.IsAsync.reserve(G.Nodes.size());
    for (const DpstNode *N : G.Nodes) {
      G.Problem.Times.push_back(N->isStep() ? N->weight()
                                            : Tree.subtreeCpl(N));
      // Futures are task nodes too: their subtree overlaps the parent's
      // continuation until joined, exactly like an async for the DP's
      // cost/feasibility model.
      G.Problem.IsAsync.push_back(N->isTaskNode());
    }

    std::set<std::pair<uint32_t, uint32_t>> EdgeSet;
    std::vector<std::pair<uint32_t, uint32_t>> RawRaceIdx;
    RawRaceIdx.reserve(G.Races.size());
    for (const RacePair &R : G.Races) {
      const DpstNode *SrcChild = Tree.nonScopeChildToward(L, R.Src);
      const DpstNode *SnkChild = Tree.nonScopeChildToward(L, R.Snk);
      assert(SrcChild && SnkChild && "race steps must be below their NS-LCA");
      auto SrcIt = Index.find(SrcChild);
      auto SnkIt = Index.find(SnkChild);
      assert(SrcIt != Index.end() && SnkIt != Index.end());
      uint32_t X = SrcIt->second, Y = SnkIt->second;
      assert(X != Y && "source and sink cannot share a non-scope child");
      if (X > Y) {
        // The detector orders Src before Snk in depth-first order, so this
        // should not occur; tolerate it defensively.
        std::swap(X, Y);
      }
      EdgeSet.insert({X, Y});
      RawRaceIdx.push_back({X, Y});
    }

    std::vector<std::pair<uint32_t, uint32_t>> RawEdges(EdgeSet.begin(),
                                                        EdgeSet.end());
    Coarsener C;
    C.run(G.Nodes, G.Problem, RawEdges);
    G.RaceIdx.reserve(RawRaceIdx.size());
    for (auto [X, Y] : RawRaceIdx)
      G.RaceIdx.push_back({C.Remap[X], C.Remap[Y]});

    Groups.push_back(std::move(G));
  }

  CGroups.inc(Groups.size());
  // Deepest NS-LCA first; ties by id for determinism.
  std::sort(Groups.begin(), Groups.end(),
            [](const DepGroup &A, const DepGroup &B) {
              if (A.Lca->depth() != B.Lca->depth())
                return A.Lca->depth() > B.Lca->depth();
              return A.Lca->id() < B.Lca->id();
            });
  return Groups;
}
