//===- MultiInput.cpp -----------------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "repair/MultiInput.h"

#include "ast/Transforms.h"
#include "support/StringUtils.h"

#include <cstdlib>
#include <unordered_map>

using namespace tdr;

namespace {

/// Same escape hatch the single-input driver honors (see RepairDriver.cpp).
bool replayCheckEnv() {
  const char *V = std::getenv("TDR_REPLAY_CHECK");
  return V && *V && !(V[0] == '0' && V[1] == '\0');
}

} // namespace

MultiRepairResult
tdr::repairProgramForInputs(Program &P, AstContext &Ctx,
                            const std::vector<ExecOptions> &Inputs,
                            EspBagsDetector::Mode Mode,
                            trace::TraceStore *Store, bool UseReplay,
                            DetectBackend Backend) {
  MultiRepairResult R;
  DetectOptions Detect;
  Detect.Mode = Mode;
  Detect.Backend = Backend;
  // One trace store for the whole session: entry I holds input I's recorded
  // stream and the edit map accumulated against it. Edits made while
  // repairing input J broadcast into every recorded entry, so input I's
  // log replays correctly against the grown finish set.
  trace::TraceStore LocalStore;
  trace::TraceStore &S = Store ? *Store : LocalStore;
  for (size_t I = 0; I != Inputs.size(); ++I) {
    RepairOptions Opts;
    Opts.Mode = Mode;
    Opts.Backend = Backend;
    Opts.Exec = Inputs[I];
    Opts.UseReplay = UseReplay;
    Opts.Store = &S;
    Opts.InputIndex = I;
    RepairResult One = repairProgram(P, Ctx, Opts);
    R.IterationsPerInput.push_back(One.Stats.Iterations);
    if (!One.Success) {
      R.Error = strFormat("input %zu: %s", I, One.Error.c_str());
      return R;
    }
    if (One.Stats.FinishesInserted) {
      R.FinishesInserted += One.Stats.FinishesInserted;
      R.InputsThatContributed.push_back(I);
    }
  }

  // Final verification: re-detect on every input against the finished
  // program. The per-input loop above proves each input race free *at the
  // time it was processed*; this pass proves the conjunction holds for the
  // final finish set and names the offending input when it does not.
  // Every input was recorded by the loop above, so this whole pass replays
  // — zero fresh interpretations.
  const bool Check = replayCheckEnv();
  for (size_t I = 0; I != Inputs.size(); ++I) {
    Detection D;
    const trace::TraceEntry *Entry = S.find(I);
    if (UseReplay && Entry && Entry->Recorded && Entry->Trace.Exec.Ok) {
      trace::ReplayPlan Plan = trace::buildReplayPlan(P, Entry->Edits);
      D = detectRaces(P, Detect, Entry->Trace, Plan);
      if (Check) {
        ExecOptions Fresh = Inputs[I];
        Fresh.Monitor = nullptr;
        Detection FD = detectRaces(P, Detect, std::move(Fresh));
        if (renderRaceReportKey(D.Report) != renderRaceReportKey(FD.Report)) {
          R.FailedVerifyInput = I;
          R.Error = strFormat(
              "verification: replay/fresh detection mismatch for input %zu", I);
          return R;
        }
      }
    } else {
      D = detectRaces(P, Detect, Inputs[I]);
    }
    if (!D.ok()) {
      R.FailedVerifyInput = I;
      R.Error = strFormat("verification: input %zu failed at run time: %s", I,
                          D.Exec.Error.c_str());
      return R;
    }
    if (!D.Report.Pairs.empty()) {
      R.FailedVerifyInput = I;
      R.Error = strFormat("verification: input %zu still has %zu racing "
                          "pair(s) after repair",
                          I, D.Report.Pairs.size());
      return R;
    }
  }
  R.FinalVerified = true;
  R.Success = true;
  return R;
}

namespace {

/// Counts dynamic async instances per static site.
class AsyncCounter : public ExecMonitor {
public:
  void onAsyncEnter(const AsyncStmt *S, const Stmt *) override {
    ++Counts[S];
  }
  std::unordered_map<const AsyncStmt *, uint64_t> Counts;
};

} // namespace

CoverageReport tdr::analyzeTestCoverage(Program &P,
                                        const std::vector<ExecOptions> &Inputs) {
  return analyzeTestCoverage(P, Inputs, nullptr);
}

CoverageReport tdr::analyzeTestCoverage(Program &P,
                                        const std::vector<ExecOptions> &Inputs,
                                        const trace::TraceStore *Store) {
  CoverageReport Report;
  std::vector<AsyncStmt *> Sites = collectAsyncs(P);
  for (AsyncStmt *S : Sites) {
    AsyncSiteCoverage C;
    C.Site = S;
    C.Loc = S->loc();
    C.InstancesPerInput.assign(Inputs.size(), 0);
    Report.Sites.push_back(std::move(C));
  }

  for (size_t I = 0; I != Inputs.size(); ++I) {
    std::unordered_map<const AsyncStmt *, uint64_t> Counts;
    const trace::TraceEntry *Entry = Store ? Store->find(I) : nullptr;
    if (Entry && Entry->Recorded) {
      // A recorded input was already executed once — tally its async
      // instances from the log instead of re-running. The count is valid
      // for the current (possibly repaired) AST because finish insertion
      // never changes how often an async spawns (serial elision), and the
      // coverage sites are the original async statements.
      if (!Entry->Trace.Exec.Ok) {
        Report.FailedInputs.push_back({I, Entry->Trace.Exec.Error});
        continue;
      }
      Entry->Trace.Log.forEach([&](const trace::Event &E) {
        if (E.K == trace::EvKind::AsyncEnter)
          ++Counts[static_cast<const AsyncStmt *>(E.P0)];
      });
    } else {
      AsyncCounter Counter;
      ExecOptions Opts = Inputs[I];
      Opts.Monitor = &Counter;
      ExecResult R = runProgram(P, Opts);
      if (!R.Ok) {
        // A crashing input exercises nothing reliably — record it so
        // callers can distinguish "ran and spawned nothing" from "never
        // ran".
        Report.FailedInputs.push_back({I, R.Error});
        continue;
      }
      Counts = std::move(Counter.Counts);
    }
    for (AsyncSiteCoverage &C : Report.Sites) {
      auto It = Counts.find(C.Site);
      if (It != Counts.end())
        C.InstancesPerInput[I] = It->second;
    }
  }

  for (const AsyncSiteCoverage &C : Report.Sites)
    if (C.exercised())
      ++Report.NumExercised;
    else
      ++Report.NumUnexercised;
  return Report;
}
